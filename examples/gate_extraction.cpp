// Gate extraction (the paper's flagship application, §I): take a flat
// transistor netlist — here a generated 8-bit ripple-carry adder — and
// rediscover its gate-level structure with a standard-cell library,
// largest cells first. The round trip is verified: re-expanding the gates
// to transistors yields a netlist isomorphic to the original (checked with
// the Gemini comparator).
#include <cstdio>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"
#include "report/report.hpp"
#include "spice/spice.hpp"
#include "util/strings.hpp"

int main() {
  using namespace subg;

  gen::Generated adder = gen::ripple_carry_adder(8);
  std::printf("input: %s — %zu transistors, %zu nets\n",
              adder.netlist.name().c_str(), adder.netlist.device_count(),
              adder.netlist.net_count());

  cells::CellLibrary lib;
  std::vector<extract::LibraryCell> library;
  for (const char* cell : {"fulladder", "xor2", "nand2", "inv"}) {
    library.push_back(extract::LibraryCell{cell, lib.pattern(cell)});
  }

  extract::ExtractResult result = extract::extract_gates(adder.netlist, library);

  report::Table t({"cell", "instances", "transistors replaced", "ms"});
  t.align_right(1);
  t.align_right(2);
  t.align_right(3);
  for (const auto& per : result.report.cells) {
    t.add_row({per.cell, std::to_string(per.instances),
               std::to_string(per.devices_replaced),
               format_fixed(per.seconds * 1e3, 2)});
  }
  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);
  std::printf("\n%zu transistors -> %zu gates, %zu primitives left\n",
              result.report.devices_before, result.report.devices_after,
              result.report.unextracted_primitives);

  // Largest-first means the whole adder collapses into fulladder cells;
  // the xor2/nand2/inv patterns find nothing left to claim.
  std::printf("\ngate-level netlist (SPICE):\n");
  std::string text = spice::write_string(result.netlist);
  // Print just the first few cards.
  std::size_t pos = 0;
  for (int line = 0; line < 8 && pos != std::string::npos; ++line) {
    std::size_t nl = text.find('\n', pos);
    std::printf("  %s\n", text.substr(pos, nl - pos).c_str());
    pos = nl == std::string::npos ? nl : nl + 1;
  }
  std::printf("  ...\n");

  // Round-trip proof: expand the gates back to transistors and compare.
  Netlist expanded =
      extract::expand_gates(result.netlist, library, adder.netlist.catalog_ptr());
  CompareResult cmp = compare_netlists(adder.netlist, expanded);
  std::printf("\nround trip (expand gates, Gemini compare): %s\n",
              cmp.isomorphic ? "ISOMORPHIC — extraction is faithful"
                             : ("MISMATCH: " + cmp.reason).c_str());
  return cmp.isomorphic ? 0 : 1;
}
