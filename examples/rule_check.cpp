// Circuit rule checking (paper §I): questionable constructs are described
// as pattern circuits in an extensible library — no hard-coded linting.
// This example checks a small design containing a rail crowbar and an
// always-on pass transistor, then extends the rule library with a custom
// user rule at runtime.
#include <cstdio>

#include "rulecheck/rulecheck.hpp"

int main() {
  using namespace subg;
  using namespace subg::rulecheck;

  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos"), pmos = cat->require("pmos");

  // A design with two planted problems.
  Netlist design(cat, "dut");
  NetId vdd = design.add_net("vdd"), gnd = design.add_net("gnd");
  design.mark_global(vdd);
  design.mark_global(gnd);
  NetId a = design.add_net("a"), y = design.add_net("y");
  design.add_device(pmos, {y, a, vdd}, "mp_inv");
  design.add_device(nmos, {y, a, gnd}, "mn_inv");
  NetId g = design.add_net("g");
  design.add_device(nmos, {vdd, g, gnd}, "m_crowbar");
  NetId p = design.add_net("p"), q = design.add_net("q");
  design.add_device(nmos, {p, vdd, q}, "m_always_on");

  // Built-in rules plus a custom one: "pmos used as a pull-down" — a pmos
  // whose source/drain touches gnd.
  std::vector<Rule> rules = builtin_rules();
  {
    Netlist pat(cat, "pmos_pulldown");
    NetId pv = pat.add_net("vdd"), pg = pat.add_net("gnd");
    pat.mark_global(pv);
    pat.mark_global(pg);
    NetId x = pat.add_net("x"), gg = pat.add_net("g");
    pat.add_device(pmos, {x, gg, pg});
    pat.mark_port(x);
    pat.mark_port(gg);
    rules.push_back(Rule{"pmos-pulldown", "pmos passes gnd (weak/slow)",
                         Severity::kWarning, std::move(pat)});
  }

  CheckReport report = check(design, rules);
  std::printf("checked %zu rules: %zu errors, %zu warnings\n\n",
              report.rules_checked, report.errors, report.warnings);
  for (const Violation& v : report.violations) {
    const char* sev = v.severity == Severity::kError ? "ERROR" : "WARN ";
    std::printf("%s %-22s", sev, v.rule.c_str());
    for (const std::string& d : v.devices) std::printf(" %s", d.c_str());
    std::printf("\n      %s\n", v.message.c_str());
  }
  return report.errors == 0 ? 0 : 2;
}
