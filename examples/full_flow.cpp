// The whole toolchain on one benchmark, end to end:
//
//   ISCAS .bench (c17)
//     → transistor netlist              (benchfmt + cells)
//     → gate extraction                 (SubGemini + extract)
//     → structural Verilog + .bench out (verilog, benchfmt writers)
//     → re-expansion and LVS            (extract, lvs)
//     → rule check                      (rulecheck)
//
// Every arrow is checked: the re-expanded transistors must be isomorphic
// to the original, and the design must be clean of rule violations.
#include <cstdio>

#include "benchfmt/benchfmt.hpp"
#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "lvs/lvs.hpp"
#include "rulecheck/rulecheck.hpp"
#include "sim/sim.hpp"
#include "verilog/verilog.hpp"

int main() {
  using namespace subg;

  // 1. Read the benchmark and expand to transistors.
  benchfmt::BenchCircuit c17 = benchfmt::read_string(benchfmt::c17_text());
  std::printf("c17: %zu logic gates -> %zu transistors, %zu inputs, "
              "%zu outputs\n",
              c17.gate_count(), c17.transistors.device_count(),
              c17.inputs.size(), c17.outputs.size());

  // 2. Rediscover the gates with SubGemini.
  cells::CellLibrary lib;
  std::vector<extract::LibraryCell> cells;
  cells.push_back(extract::LibraryCell{"nand2", lib.pattern("nand2")});
  extract::ExtractResult gates =
      extract::extract_gates(c17.transistors, cells);
  std::printf("extraction: %zu gates, %zu primitives left\n",
              gates.report.devices_after,
              gates.report.unextracted_primitives);

  // 3. Emit the gate netlist in both interchange formats.
  std::printf("\nstructural Verilog:\n%s",
              verilog::write_string(gates.netlist).c_str());
  std::printf("\n.bench:\n%s", benchfmt::write_string(gates.netlist).c_str());

  // 4. Round trip: expand back and run LVS against the original.
  Netlist expanded = extract::expand_gates(gates.netlist, cells,
                                           c17.transistors.catalog_ptr());
  lvs::LvsReport cmp = lvs::compare(expanded, c17.transistors);
  std::printf("\nLVS (re-expanded vs original): %s\n", cmp.summary.c_str());

  // 5. Functional equivalence: exhaustively simulate transistors (switch
  //    level) vs gates (truth functions) on all 2^5 input vectors.
  sim::EquivalenceResult eq = sim::check_equivalence(
      c17.transistors, gates.netlist, c17.inputs, c17.outputs);
  std::printf("simulation: %zu vectors, equivalent: %s, inconclusive: %zu\n",
              eq.vectors_checked, eq.equivalent ? "yes" : "NO",
              eq.inconclusive);

  // 6. Rule check the transistor design.
  rulecheck::CheckReport rules = rulecheck::check(
      c17.transistors,
      rulecheck::builtin_rules(c17.transistors.catalog_ptr()));
  std::printf("rule check: %zu errors, %zu warnings\n", rules.errors,
              rules.warnings);

  return (cmp.clean && eq.equivalent && rules.errors == 0) ? 0 : 1;
}
