// Hierarchy discovery (paper §I: "finding circuit subgraphs plays a key
// role in constructing a hierarchical representation of a circuit from a
// flat representation"). Starting from a FLAT transistor netlist of an
// 8-bit multiplier, rediscover its hierarchy bottom-up: extract leaf gates,
// then recognize the repeated adder blocks among the gates — two levels of
// structure recovered with the same matcher.
#include <cstdio>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "report/report.hpp"

int main() {
  using namespace subg;

  gen::Generated mul = gen::array_multiplier(8);
  std::printf("flat input: %zu transistors (8x8 Braun array multiplier)\n\n",
              mul.netlist.device_count());

  // Level 1: leaf cells.
  cells::CellLibrary lib;
  std::vector<extract::LibraryCell> leafs;
  for (const char* cell : {"xor2", "nand2", "inv"}) {
    leafs.push_back(extract::LibraryCell{cell, lib.pattern(cell)});
  }
  extract::ExtractResult level1 = extract::extract_gates(mul.netlist, leafs);
  std::printf("level 1 (leaf gates): %zu transistors -> %zu gates "
              "(%zu unexplained)\n",
              level1.report.devices_before, level1.report.devices_after,
              level1.report.unextracted_primitives);
  for (const auto& per : level1.report.cells) {
    std::printf("  %-6s x %zu\n", per.cell.c_str(), per.instances);
  }

  // Level 2: recognize full/half adders as subcircuits of the GATE-level
  // netlist. The patterns are themselves gate-level: build them by
  // extracting the cell's transistor pattern with the same leaf library.
  std::vector<extract::LibraryCell> blocks;
  for (const char* cell : {"fulladder", "halfadder"}) {
    extract::ExtractResult p = extract::extract_gates(lib.pattern(cell), leafs);
    // Preserve the original cell ports on the gate-level pattern.
    blocks.push_back(extract::LibraryCell{cell, std::move(p.netlist)});
  }
  extract::ExtractResult level2 =
      extract::extract_gates(level1.netlist, blocks);
  std::printf("\nlevel 2 (arithmetic blocks): %zu gates -> %zu blocks "
              "(%zu gates left)\n",
              level2.report.devices_before, level2.report.devices_after,
              level2.report.unextracted_primitives);
  for (const auto& per : level2.report.cells) {
    std::printf("  %-10s x %zu   (construction placed %zu)\n",
                per.cell.c_str(), per.instances,
                mul.placed_count(per.cell));
  }
  std::printf("\nremaining gates are the partial-product AND array:\n");
  const NetlistStats stats = level2.netlist.stats();
  for (const auto& [type, count] : stats.devices_by_type) {
    std::printf("  %-10s x %zu\n", type.c_str(), count);
  }
  return 0;
}
