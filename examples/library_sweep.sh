#!/bin/sh
# Module-library sweep against a warm match server.
#
# The workload SubGemini's serve mode exists for: load a host design ONCE
# (CSR core + label cache stay warm), then run every cell of a standard-cell
# library against it as one request stream -- the way the original SubGem
# tool swept a chip netlist against a whole module library.  One process,
# one host load, N find requests, N JSON answers.
#
# Usage:  examples/library_sweep.sh [path/to/subgemini]
# (run from the repo root; defaults to the binary in build/tools/)
set -eu

binary=${1:-build/tools/subgemini}
here=$(dirname "$0")
repo=$here/..

# serve_client.py spawns `subgemini serve <host>` as a child, issues one
# `find` per .subckt cell in the library deck, prints each response as a
# JSON line, and shuts the server down.  Exit 0 means every cell answered
# ok; a cell with zero instances still answers ok (empty `instances`).
python3 "$repo/tools/serve_client.py" \
    --binary "$binary" \
    --spawn-host "$repo/testdata/mux_host.sp" \
    sweep --library "$repo/testdata/cells.sp" |
python3 -c '
import json, sys
for line in sys.stdin:
    frame = json.loads(line)
    result = frame["result"]
    cell = result["pattern"]["name"]
    hits = result["instances"]
    print(f"{cell:8s} {len(hits)} instance(s)")
    for inst in hits:
        ports = " ".join(f"{k}={v}" for k, v in inst["ports"].items())
        print(f"         {ports}")
'
