// Technology mapping (paper §I): cover a transistor-level circuit with
// library components — on a GENERAL graph, reconvergent fanout included,
// which tree-covering mappers cannot do. The subject is a Kogge-Stone
// prefix adder (heavily reconvergent); the library offers both macro cells
// and small gates, and the mapper picks the cheapest exact cover per
// overlap cluster.
#include <cstdio>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "report/report.hpp"
#include "util/strings.hpp"
#include "techmap/techmap.hpp"

int main() {
  using namespace subg;

  gen::Generated ks = gen::kogge_stone_adder(8);
  std::printf("subject: 8-bit Kogge-Stone adder, %zu transistors "
              "(reconvergent prefix tree)\n\n",
              ks.netlist.device_count());

  cells::CellLibrary cl;
  std::vector<techmap::MapCell> library;
  auto add = [&](const char* name, double cost) {
    library.push_back(techmap::MapCell{name, cl.pattern(name), cost});
  };
  // Costs: loosely area-shaped; the and2 macro is cheaper than nand2+inv.
  add("and2", 5.0);
  add("xor2", 11.0);
  add("aoi21", 6.0);
  add("nand2", 4.0);
  add("buf", 3.5);
  add("inv", 2.0);

  techmap::MapResult result = techmap::map(ks.netlist, library);

  report::Table t({"cell", "instances", "cost each", "cost total"});
  for (std::size_t c = 1; c < 4; ++c) t.align_right(c);
  std::vector<std::size_t> count(library.size(), 0);
  for (const techmap::Candidate& c : result.chosen) ++count[c.cell];
  for (std::size_t i = 0; i < library.size(); ++i) {
    if (!count[i]) continue;
    t.add_row({library[i].name, std::to_string(count[i]),
               subg::format_fixed(library[i].cost, 1),
               subg::format_fixed(library[i].cost * static_cast<double>(count[i]), 1)});
  }
  std::string s = t.to_string();
  std::fputs(s.c_str(), stdout);
  std::printf("\ncandidates enumerated: %zu\n", result.candidates_enumerated);
  std::printf("total cost: %.1f   complete: %s   per-cluster optimal: %s\n",
              result.total_cost, result.complete() ? "yes" : "NO",
              result.optimal ? "yes" : "no (greedy fallback used)");
  return result.complete() ? 0 : 1;
}
