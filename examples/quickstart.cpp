// Quickstart: find all 2-input NAND gates in a small transistor netlist.
//
// Shows the three steps every SubGemini flow has:
//   1. build (or parse) a pattern netlist — ports marked, rails global;
//   2. build (or parse) the host netlist;
//   3. run SubgraphMatcher and walk the instances.
#include <cstdio>

#include "cells/cells.hpp"
#include "match/matcher.hpp"
#include "spice/spice.hpp"

int main() {
  using namespace subg;

  // The host: a tiny circuit described in SPICE — two NAND2 gates and an
  // inverter sharing the rails.
  const char* deck = R"(
* two nands feeding an inverter
.global vdd gnd
.subckt nand2 a b y
mp0 y a vdd vdd pmos
mp1 y b vdd vdd pmos
mn0 y a x  gnd nmos
mn1 x b gnd gnd nmos
.ends

x0 in0 in1 n0 nand2
x1 n0 in2 n1 nand2
mp2 out n1 vdd vdd pmos
mn2 out n1 gnd gnd nmos
.end
)";
  Netlist host = spice::read_flat(deck);
  std::printf("host: %zu devices, %zu nets\n", host.device_count(),
              host.net_count());

  // The pattern: the standard-cell library's NAND2 at transistor level
  // (ports a0/a1/y, vdd/gnd global).
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");

  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();

  std::printf("phase I: candidate vector of %zu, key vertex in pattern\n",
              report.phase1.candidates.size());
  std::printf("found %zu instance(s) in %.3f ms\n\n", report.count(),
              report.total_seconds() * 1e3);

  for (std::size_t i = 0; i < report.count(); ++i) {
    const SubcircuitInstance& inst = report.instances[i];
    std::printf("instance %zu:\n", i);
    for (std::uint32_t d = 0; d < pattern.device_count(); ++d) {
      std::printf("  pattern %-12s -> host %s\n",
                  pattern.device_name(DeviceId(d)).c_str(),
                  host.device_name(inst.device_image[d]).c_str());
    }
    for (NetId port : pattern.ports()) {
      std::printf("  port    %-12s -> net  %s\n",
                  pattern.net_name(port).c_str(),
                  host.net_name(inst.net_image[port.index()]).c_str());
    }
  }
  return 0;
}
