// The paper's worked example (Figs 1, 2, 4 and Table 1), end to end.
//
// Subgraph S is a 2-input NAND built from 3-pin transistors whose rails are
// ordinary external nets (the paper's setting). The main graph G contains
// one instance of S plus surrounding circuitry, including a decoy net that
// survives Phase I. This program prints:
//   - the Phase I outcome: key vertex and candidate vector (the paper gets
//     CV = {N13, N14}, key = N4 — the series-stack midpoint);
//   - a Table-1-style pass-by-pass trace of Phase II labels;
//   - the final instance mapping.
#include <algorithm>
#include <cstdio>
#include <map>

#include "match/matcher.hpp"
#include "report/report.hpp"

using namespace subg;

namespace {

struct Example {
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId pmos = cat->require("pmos");

  Netlist pattern{cat, "S"};
  Netlist host{cat, "G"};

  Example() {
    // --- subgraph S: NAND2, every net except the stack midpoint external.
    NetId a = pattern.add_net("N3"), b = pattern.add_net("N5");
    NetId y = pattern.add_net("N2"), vdd = pattern.add_net("N1");
    NetId gnd = pattern.add_net("N6"), mid = pattern.add_net("N4");
    pattern.add_device(pmos, {y, b, vdd}, "D1");
    pattern.add_device(pmos, {y, a, vdd}, "D2");
    pattern.add_device(nmos, {y, a, mid}, "D3");
    pattern.add_device(nmos, {mid, b, gnd}, "D4");
    for (NetId port : {a, b, y, vdd, gnd}) pattern.mark_port(port);

    // --- main graph G: the NAND instance, an input inverter, an output
    // inverter, and a decoy series-nmos pair whose midpoint looks like N4.
    NetId vddg = host.add_net("vdd"), gndg = host.add_net("gnd");
    NetId in1 = host.add_net("in1"), in2 = host.add_net("in2"),
          out = host.add_net("out");
    NetId x = host.add_net("N14");  // the true image of N4
    host.add_device(pmos, {out, in2, vddg}, "D6");
    host.add_device(pmos, {out, in1, vddg}, "D7");
    host.add_device(nmos, {out, in1, x}, "D9");
    host.add_device(nmos, {x, in2, gndg}, "D11");
    NetId pi = host.add_net("pi");
    host.add_device(pmos, {in1, pi, vddg}, "D5");
    host.add_device(nmos, {in1, pi, gndg}, "D8");
    NetId da = host.add_net("da"), db = host.add_net("db"),
          dg1 = host.add_net("dg1"), dg2 = host.add_net("dg2"),
          decoy = host.add_net("N13");
    host.add_device(nmos, {da, dg1, decoy}, "D10");
    host.add_device(nmos, {decoy, dg2, db}, "D12");
    NetId out2 = host.add_net("out2");
    host.add_device(pmos, {out2, out, vddg}, "D13");
    host.add_device(nmos, {out2, out, gndg}, "D14");
  }
};

std::string short_label(Label l) {
  if (l == kNoLabel) return "-";
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%04llx",
                static_cast<unsigned long long>(l >> 48));
  return buf;
}

}  // namespace

int main() {
  Example ex;

  Phase2Trace trace;
  MatchOptions opts;
  opts.trace = &trace;
  SubgraphMatcher matcher(ex.pattern, ex.host, opts);
  MatchReport report = matcher.find_all();

  const CircuitGraph& sg = matcher.pattern_graph();
  const CircuitGraph& gg = matcher.host_graph();

  std::printf("Phase I: key vertex = %s, candidate vector = {",
              sg.vertex_name(report.phase1.key).c_str());
  for (std::size_t i = 0; i < report.phase1.candidates.size(); ++i) {
    std::printf("%s%s", i ? ", " : "",
                gg.vertex_name(report.phase1.candidates[i]).c_str());
  }
  std::printf("}  (%zu relabeling rounds)\n\n",
              report.phase1.rounds);

  // Table-1-style trace: one row per vertex, one column per pass. Matched
  // labels are boxed with [..], safe labels are marked with *. Show only
  // the successful candidate's attempt (the paper's Table 1 traces N14).
  std::map<std::size_t, std::size_t> matched_per_candidate;
  for (const auto& e : trace.entries) {
    if (!e.host && e.matched) ++matched_per_candidate[e.candidate];
  }
  std::size_t winner = 0, best = 0;
  for (const auto& [cand, count] : matched_per_candidate) {
    if (count > best) {
      best = count;
      winner = cand;
    }
  }
  std::size_t passes = 0;
  for (const auto& e : trace.entries) {
    if (e.candidate == winner) passes = std::max(passes, e.pass);
  }

  std::map<std::pair<bool, Vertex>, std::map<std::size_t, std::string>> cells;
  for (const auto& e : trace.entries) {
    if (e.candidate != winner) continue;
    std::string text = short_label(e.label);
    if (e.matched) {
      text = "[" + text + "]";
    } else if (e.safe) {
      text += "*";
    }
    cells[{e.host, e.vertex}][e.pass] = text;
  }

  std::vector<std::string> headers = {"vertex"};
  for (std::size_t p = 0; p <= passes; ++p) {
    headers.push_back(p == 0 ? "init" : "pass " + std::to_string(p));
  }
  report::Table table(headers);
  auto emit_side = [&](bool host_side) {
    for (const auto& [key, row] : cells) {
      if (key.first != host_side) continue;
      const auto& graph = host_side ? gg : sg;
      std::vector<std::string> cols = {(host_side ? "G " : "S ") +
                                       graph.vertex_name(key.second)};
      for (std::size_t p = 0; p <= passes; ++p) {
        auto it = row.find(p);
        cols.push_back(it == row.end() ? "" : it->second);
      }
      table.add_row(std::move(cols));
    }
  };
  emit_side(false);
  emit_side(true);
  std::printf("Phase II relabeling trace (labels shown as 16-bit prefixes;\n"
              "* = safe partition, [..] = matched pair):\n\n");
  std::string s = table.to_string();
  std::fputs(s.c_str(), stdout);

  std::printf("\nResult: %zu instance found, %zu candidates tried, "
              "%zu guesses, %zu backtracks\n\n",
              report.count(), report.phase2.candidates_tried,
              report.phase2.guesses, report.phase2.backtracks);
  if (!report.instances.empty()) {
    const SubcircuitInstance& inst = report.instances.front();
    for (std::uint32_t d = 0; d < ex.pattern.device_count(); ++d) {
      std::printf("  %s -> %s\n", ex.pattern.device_name(DeviceId(d)).c_str(),
                  ex.host.device_name(inst.device_image[d]).c_str());
    }
    for (std::uint32_t n = 0; n < ex.pattern.net_count(); ++n) {
      std::printf("  %s -> %s\n", ex.pattern.net_name(NetId(n)).c_str(),
                  ex.host.net_name(inst.net_image[n]).c_str());
    }
  }
  return 0;
}
