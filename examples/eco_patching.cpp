// Worked ECO example: patch a loaded host in place instead of reloading.
//
// An engineering change order arrives as a small edit script against a
// host you have already searched. The naive flow reparses the netlist,
// reflattens the graph, and relabels every vertex from scratch; the
// HostSession flow applies the delta in place and recomputes only the
// labels inside the edit's dirty cone — O(change), not O(host) — while
// producing byte-identical match reports.
//
//   1. build a HostSession over the host netlist;
//   2. search it (this also warms the session's label cache);
//   3. apply a parsed NetlistDelta — atomically: an inapplicable script
//      leaves the session exactly as it was;
//   4. search again; only the patched region is relabeled.
#include <cstdio>

#include "cells/cells.hpp"
#include "session/delta.hpp"
#include "session/session.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"

int main() {
  using namespace subg;

  // The host: two NAND2 gates and an inverter sharing the rails.
  const char* deck = R"(
* two nands feeding an inverter
.global vdd gnd
.subckt nand2 a b y
mp0 y a vdd vdd pmos
mp1 y b vdd vdd pmos
mn0 y a x  gnd nmos
mn1 x b gnd gnd nmos
.ends

x0 in0 in1 n0 nand2
x1 n0 in2 n1 nand2
mp2 out n1 vdd vdd pmos
mn2 out n1 gnd gnd nmos
.end
)";

  // 1. One session owns everything repeated searches share: the flattened
  //    graph, the csr core, and the Phase I label cache.
  HostSession session = HostSession::build(spice::read_flat(deck));
  std::printf("host: %zu devices, %zu nets\n",
              session.netlist().device_count(), session.netlist().net_count());

  // 2. First search — also warms the session's label cache.
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
  MatchReport before = find_in_session(pattern, session);
  std::printf("before the ECO: %zu nand2 instance(s)\n", before.count());

  // 3. The ECO, in the JSON-lines delta grammar: one more nand2 gate off
  //    the inverter output, and a rename for the revised net. The same
  //    text works as a --delta=FILE script or a serve `patch` request.
  const char* eco = R"(
# rev B: nand the inverter output against in0
{"op": "add_device", "type": "pmos", "name": "rp0", "nets": ["rev", "out", "vdd", "vdd"]}
{"op": "add_device", "type": "pmos", "name": "rp1", "nets": ["rev", "in0", "vdd", "vdd"]}
{"op": "add_device", "type": "nmos", "name": "rn0", "nets": ["rev", "out", "rx", "gnd"]}
{"op": "add_device", "type": "nmos", "name": "rn1", "nets": ["rx", "in0", "gnd", "gnd"]}
{"op": "rename_net", "from": "n1", "to": "n1_revb"}
)";
  ApplyStats stats = session.apply(parse_delta(eco));
  // invalidated_labels counts cache entries across all Phase I rounds, so
  // it can exceed the vertex count — the point is it scales with the EDIT.
  std::printf("patch: %llu device ops, %llu renames; "
              "%llu cached labels recomputed (host has %zu vertices), "
              "patch #%llu\n",
              static_cast<unsigned long long>(stats.patched_devices),
              static_cast<unsigned long long>(stats.renames),
              static_cast<unsigned long long>(stats.invalidated_labels),
              session.graph().vertex_count(),
              static_cast<unsigned long long>(session.patch_count()));

  // 4. The next search sees the patched host — identical, byte for byte,
  //    to a cold rebuild over the edited netlist.
  MatchReport after = find_in_session(pattern, session);
  std::printf("after the ECO: %zu nand2 instance(s)\n", after.count());

  // Atomicity: an inapplicable script (net "out" still has pins) changes
  // nothing — not even the ops that preceded the failing line.
  try {
    (void)session.apply(parse_delta(
        "{\"op\": \"add_net\", \"name\": \"tmp\"}\n"
        "{\"op\": \"remove_net\", \"name\": \"out\"}\n"));
  } catch (const Error& e) {
    std::printf("rejected ECO rolls back: %s\n", e.what());
  }
  SUBG_CHECK(!session.netlist().find_net("tmp").has_value());
  std::printf("session still at patch #%llu, %zu devices\n",
              static_cast<unsigned long long>(session.patch_count()),
              session.netlist().device_count());
  return 0;
}
