#include "canon/canon.hpp"

#include <map>

#include "gemini/gemini.hpp"
#include "graph/circuit_graph.hpp"

namespace subg::canon {

std::vector<Label> refined_labels(const CircuitGraph& g,
                                  const Netlist& netlist,
                                  const CanonOptions& options) {
  std::vector<Label> labels(g.vertex_count());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    Label base = g.initial_label(v);
    // Ports are part of the identity: mix the flag in.
    if (g.is_net(v) && netlist.is_port(g.net_of(v))) {
      base = hash_combine(base, hash_string("!port"));
    }
    labels[v] = base;
  }

  std::vector<Label> scratch(labels.size());
  std::size_t distinct_before = 0;
  for (std::size_t round = 0; round < options.max_rounds; ++round) {
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.is_special(v)) {
        scratch[v] = labels[v];
        continue;
      }
      Label sum = 0;
      for (const auto& e : g.edges(v)) {
        sum += edge_contribution(e.coefficient, labels[e.to]);
      }
      scratch[v] = relabel(labels[v], sum);
    }
    labels.swap(scratch);

    // Stop when the partition structure stabilizes.
    std::map<Label, std::size_t> parts;
    for (Label l : labels) ++parts[l];
    if (parts.size() == distinct_before) break;
    distinct_before = parts.size();
  }
  return labels;
}

Label fingerprint(const Netlist& netlist, const CanonOptions& options) {
  CircuitGraph g(netlist);
  const std::vector<Label> labels = refined_labels(g, netlist, options);

  // Order-free combination: histogram of final labels, hashed as sorted
  // (label, count) pairs, plus the overall shape.
  std::map<Label, std::size_t> parts;
  for (Label l : labels) ++parts[l];
  Label out = hash_combine(hash_string("!canon"),
                           static_cast<Label>(netlist.device_count()));
  out = hash_combine(out, static_cast<Label>(netlist.net_count()));
  for (const auto& [label, count] : parts) {
    out = hash_combine(out, hash_combine(label, static_cast<Label>(count)));
  }
  return out;
}

std::vector<std::vector<std::size_t>> isomorphism_classes(
    const std::vector<const Netlist*>& netlists, const CanonOptions& options) {
  std::map<Label, std::vector<std::size_t>> buckets;
  for (std::size_t i = 0; i < netlists.size(); ++i) {
    buckets[fingerprint(*netlists[i], options)].push_back(i);
  }

  std::vector<std::vector<std::size_t>> classes;
  for (auto& [hash, members] : buckets) {
    // Confirm within the bucket: fingerprints can (rarely) collide for
    // non-isomorphic inputs, never the reverse.
    std::vector<std::vector<std::size_t>> confirmed;
    for (std::size_t idx : members) {
      bool placed = false;
      for (auto& group : confirmed) {
        if (compare_netlists(*netlists[group.front()], *netlists[idx])
                .isomorphic) {
          group.push_back(idx);
          placed = true;
          break;
        }
      }
      if (!placed) confirmed.push_back({idx});
    }
    for (auto& group : confirmed) classes.push_back(std::move(group));
  }
  return classes;
}

}  // namespace subg::canon
