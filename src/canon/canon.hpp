// Canonical netlist fingerprinting.
//
// A 64-bit hash that is invariant under device/net renaming and reordering
// (isomorphic netlists always collide) and separates non-isomorphic
// netlists with WL-refinement power — the right prefilter for cell-library
// deduplication and cache keys. Port markings and global-net names are
// part of the identity (an inverter pattern with ports {a,y} differs from
// the same transistors with no ports). `isomorphism_classes` combines the
// prefilter with exact Gemini confirmation, so its grouping is sound, not
// just probabilistic.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "netlist/netlist.hpp"
#include "util/hash.hpp"

namespace subg::canon {

struct CanonOptions {
  /// Refinement rounds (labels stabilize in O(diameter); this is a cap).
  std::size_t max_rounds = 64;
};

/// Per-vertex stable WL labels over `g` (CircuitGraph vertex order:
/// devices then nets). This is the fingerprint's refinement loop without
/// the final order-free combination: two vertices share a label iff
/// iterated refinement cannot tell them apart, so equal labels are a
/// necessary condition for an automorphism to map one onto the other.
/// Port markings and special-net identities participate exactly as in
/// `fingerprint` (ports mix in a flag, specials keep their fixed labels).
[[nodiscard]] std::vector<Label> refined_labels(const CircuitGraph& g,
                                                const Netlist& netlist,
                                                const CanonOptions& options =
                                                    {});

/// Renaming-invariant fingerprint.
[[nodiscard]] Label fingerprint(const Netlist& netlist,
                                const CanonOptions& options = {});

/// Partition netlists into isomorphism classes: fingerprint buckets,
/// confirmed pairwise with the Gemini comparator. Returns groups of
/// indices into `netlists`; singletons included.
[[nodiscard]] std::vector<std::vector<std::size_t>> isomorphism_classes(
    const std::vector<const Netlist*>& netlists,
    const CanonOptions& options = {});

}  // namespace subg::canon
