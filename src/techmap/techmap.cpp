#include "techmap/techmap.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "graph/circuit_graph.hpp"
#include "util/check.hpp"
#include "util/log.hpp"

namespace subg::techmap {

namespace {

struct Cand {
  std::size_t cell;
  SubcircuitInstance instance;
  double cost;
  std::vector<std::uint32_t> devices;  // sorted subject device ids
};

/// Union-find for clustering candidates that share subject devices.
struct UnionFind {
  std::vector<std::size_t> parent;
  explicit UnionFind(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::size_t find(std::size_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::size_t a, std::size_t b) { parent[find(a)] = find(b); }
};

/// Result of solving one overlap cluster.
struct ClusterSolution {
  std::vector<std::size_t> chosen;  // candidate indices (cluster-local)
  std::size_t uncovered = 0;
  double cost = 0;
  bool exact = false;
};

/// Exact exact-cover-with-penalties via branch and bound. `cands` are
/// cluster-local; device ids are cluster-local too (0..device_count).
ClusterSolution solve_exact(const std::vector<const Cand*>& cands,
                            const std::vector<std::vector<std::uint32_t>>& devs,
                            std::size_t device_count) {
  ClusterSolution best;
  best.uncovered = std::numeric_limits<std::size_t>::max();
  best.cost = std::numeric_limits<double>::infinity();

  // For each device: which candidates cover it.
  std::vector<std::vector<std::size_t>> covers(device_count);
  for (std::size_t c = 0; c < devs.size(); ++c) {
    for (std::uint32_t d : devs[c]) covers[d].push_back(c);
  }

  std::vector<int> state(device_count, 0);  // 0 undecided, 1 covered, -1 skipped
  std::vector<bool> used(cands.size(), false);
  std::vector<std::size_t> chosen;

  auto better = [&](std::size_t unc, double cost) {
    return unc < best.uncovered ||
           (unc == best.uncovered && cost < best.cost - 1e-12);
  };

  auto rec = [&](auto&& self, std::size_t uncovered, double cost) -> void {
    if (!better(uncovered, cost)) return;  // bound (both are monotone)
    std::size_t pick = device_count;
    for (std::size_t d = 0; d < device_count; ++d) {
      if (state[d] == 0) {
        pick = d;
        break;
      }
    }
    if (pick == device_count) {
      best.uncovered = uncovered;
      best.cost = cost;
      best.chosen = chosen;
      best.exact = true;
      return;
    }
    // Branch 1..k: a candidate covering `pick` whose devices are all free.
    for (std::size_t c : covers[pick]) {
      if (used[c]) continue;
      bool free = true;
      for (std::uint32_t d : devs[c]) {
        if (state[d] != 0) {
          free = false;
          break;
        }
      }
      if (!free) continue;
      for (std::uint32_t d : devs[c]) state[d] = 1;
      used[c] = true;
      chosen.push_back(c);
      self(self, uncovered, cost + cands[c]->cost);
      chosen.pop_back();
      used[c] = false;
      for (std::uint32_t d : devs[c]) state[d] = 0;
    }
    // Branch 0: leave `pick` uncovered.
    state[pick] = -1;
    self(self, uncovered + 1, cost);
    state[pick] = 0;
  };
  rec(rec, 0, 0);
  return best;
}

/// Greedy: best cost-per-device first, conflicts skipped.
ClusterSolution solve_greedy(const std::vector<const Cand*>& cands,
                             const std::vector<std::vector<std::uint32_t>>& devs,
                             std::size_t device_count) {
  std::vector<std::size_t> order(cands.size());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    const double ra = cands[a]->cost / static_cast<double>(devs[a].size());
    const double rb = cands[b]->cost / static_cast<double>(devs[b].size());
    if (ra != rb) return ra < rb;
    if (devs[a].size() != devs[b].size()) return devs[a].size() > devs[b].size();
    return a < b;
  });
  ClusterSolution out;
  std::vector<bool> taken(device_count, false);
  for (std::size_t c : order) {
    bool free = true;
    for (std::uint32_t d : devs[c]) {
      if (taken[d]) {
        free = false;
        break;
      }
    }
    if (!free) continue;
    for (std::uint32_t d : devs[c]) taken[d] = true;
    out.chosen.push_back(c);
    out.cost += cands[c]->cost;
  }
  for (std::size_t d = 0; d < device_count; ++d) {
    if (!taken[d]) ++out.uncovered;
  }
  return out;
}

}  // namespace

MapResult map(const Netlist& subject, const std::vector<MapCell>& library,
              const MapOptions& options) {
  SUBG_CHECK_MSG(!library.empty(), "techmap needs a non-empty library");

  // 1. Enumerate every instance of every cell (exhaustive semantics).
  CircuitGraph subject_graph(subject);
  std::vector<Cand> cands;
  for (std::size_t i = 0; i < library.size(); ++i) {
    MatchOptions mo = options.match;
    mo.exhaustive = true;
    SubgraphMatcher matcher(library[i].pattern, subject_graph, mo);
    MatchReport report = matcher.find_all();
    const double cost = library[i].cost > 0
                            ? library[i].cost
                            : static_cast<double>(
                                  library[i].pattern.device_count());
    for (SubcircuitInstance& inst : report.instances) {
      Cand c;
      c.cell = i;
      c.cost = cost;
      c.devices.reserve(inst.device_image.size());
      for (DeviceId d : inst.device_image) c.devices.push_back(d.value);
      std::sort(c.devices.begin(), c.devices.end());
      c.instance = std::move(inst);
      cands.push_back(std::move(c));
    }
  }

  MapResult result;
  result.candidates_enumerated = cands.size();

  // 2. Cluster by overlap.
  UnionFind uf(cands.size());
  {
    std::vector<std::size_t> first_owner(subject.device_count(),
                                         std::numeric_limits<std::size_t>::max());
    for (std::size_t c = 0; c < cands.size(); ++c) {
      for (std::uint32_t d : cands[c].devices) {
        if (first_owner[d] == std::numeric_limits<std::size_t>::max()) {
          first_owner[d] = c;
        } else {
          uf.unite(first_owner[d], c);
        }
      }
    }
  }
  std::vector<std::vector<std::size_t>> clusters_by_root(cands.size());
  for (std::size_t c = 0; c < cands.size(); ++c) {
    clusters_by_root[uf.find(c)].push_back(c);
  }

  // 3. Solve each cluster.
  std::vector<bool> device_covered(subject.device_count(), false);
  result.optimal = true;
  for (const auto& cluster : clusters_by_root) {
    if (cluster.empty()) continue;
    // Local device numbering.
    std::vector<std::uint32_t> local_devices;
    for (std::size_t c : cluster) {
      local_devices.insert(local_devices.end(), cands[c].devices.begin(),
                           cands[c].devices.end());
    }
    std::sort(local_devices.begin(), local_devices.end());
    local_devices.erase(std::unique(local_devices.begin(), local_devices.end()),
                        local_devices.end());
    auto local_of = [&](std::uint32_t d) {
      return static_cast<std::uint32_t>(
          std::lower_bound(local_devices.begin(), local_devices.end(), d) -
          local_devices.begin());
    };
    std::vector<const Cand*> cl_cands;
    std::vector<std::vector<std::uint32_t>> cl_devs;
    for (std::size_t c : cluster) {
      cl_cands.push_back(&cands[c]);
      std::vector<std::uint32_t> local;
      for (std::uint32_t d : cands[c].devices) local.push_back(local_of(d));
      cl_devs.push_back(std::move(local));
    }

    ClusterSolution sol;
    if (cluster.size() <= options.exact_cluster_limit) {
      sol = solve_exact(cl_cands, cl_devs, local_devices.size());
    } else {
      sol = solve_greedy(cl_cands, cl_devs, local_devices.size());
      result.optimal = false;
    }
    for (std::size_t local_c : sol.chosen) {
      const Cand& c = *cl_cands[local_c];
      result.chosen.push_back(
          Candidate{c.cell, c.instance, c.cost});
      result.total_cost += c.cost;
      for (std::uint32_t d : c.devices) device_covered[d] = true;
    }
  }

  for (std::uint32_t d = 0; d < subject.device_count(); ++d) {
    if (!device_covered[d]) ++result.uncovered_devices;
  }
  SUBG_DEBUG("techmap: " << result.chosen.size() << " cells, cost "
                         << result.total_cost << ", uncovered "
                         << result.uncovered_devices);
  return result;
}

}  // namespace subg::techmap
