// Technology mapping by subgraph matching (paper §I):
//
//   "Another application arises in the area of technology mapping, which
//    covers a circuit graph with components from a library. Current
//    techniques rely on tree-covering algorithms, which require that both
//    the input circuit and library components be represented as trees. A
//    general subgraph isomorphism algorithm would allow one to find all
//    possible coverings for general component graphs, including those with
//    feedback and reconvergent fanout."
//
// This module does exactly that: enumerate every instance of every library
// cell in the subject netlist (exhaustive matching — overlaps included),
// then choose a cover: a subset of instances such that every subject
// device is claimed exactly once, minimizing total cost. Selection is
// exact branch-and-bound for small conflict clusters and greedy
// (cost-per-device, largest first) beyond a configurable limit.
#pragma once

#include <string>
#include <vector>

#include "match/matcher.hpp"
#include "netlist/netlist.hpp"

namespace subg::techmap {

struct MapCell {
  std::string name;
  Netlist pattern;
  /// Cost of one instance (area, delay proxy, ...). Default: device count
  /// of the pattern (set by map() when <= 0).
  double cost = -1;
};

struct Candidate {
  std::size_t cell;  ///< index into the library
  SubcircuitInstance instance;
  double cost = 0;
};

struct MapResult {
  /// Chosen cover, in selection order.
  std::vector<Candidate> chosen;
  /// All candidate instances that were enumerated (diagnostics).
  std::size_t candidates_enumerated = 0;
  /// Subject devices no candidate could cover (mapping is then partial).
  std::size_t uncovered_devices = 0;
  double total_cost = 0;
  bool optimal = false;  ///< true when every cluster was solved exactly

  [[nodiscard]] bool complete() const { return uncovered_devices == 0; }
};

struct MapOptions {
  /// Exact branch-and-bound is used for overlap clusters with at most this
  /// many candidates; bigger clusters fall back to greedy.
  std::size_t exact_cluster_limit = 24;
  MatchOptions match;
};

/// Cover `subject` with the library. Patterns and subject must share
/// compatible catalogs (same rules as SubgraphMatcher).
[[nodiscard]] MapResult map(const Netlist& subject,
                            const std::vector<MapCell>& library,
                            const MapOptions& options = {});

}  // namespace subg::techmap
