#include "netlist/catalog.hpp"

#include "util/check.hpp"

namespace subg {

DeviceTypeId DeviceCatalog::add_type(std::string name, std::vector<PinSpec> pins) {
  SUBG_CHECK_MSG(!name.empty(), "device type name must be non-empty");
  SUBG_CHECK_MSG(!pins.empty(), "device type '" << name << "' must declare pins");
  SUBG_CHECK_MSG(!by_name_.contains(name),
                 "device type '" << name << "' registered twice");

  DeviceTypeInfo info;
  info.name = name;
  info.type_label = hash_string(name);
  info.pin_class.reserve(pins.size());

  std::unordered_map<std::string_view, std::uint32_t> class_index;
  for (const PinSpec& pin : pins) {
    SUBG_CHECK_MSG(!pin.name.empty(), "pin of '" << name << "' must be named");
    auto [it, inserted] =
        class_index.try_emplace(pin.equivalence_class, info.class_count);
    if (inserted) ++info.class_count;
    info.pin_class.push_back(it->second);
  }
  info.pins = std::move(pins);
  info.class_coefficient.reserve(info.class_count);
  for (std::uint32_t c = 0; c < info.class_count; ++c) {
    info.class_coefficient.push_back(class_coefficient(info.type_label, c));
  }

  DeviceTypeId id(static_cast<std::uint32_t>(types_.size()));
  by_name_.emplace(info.name, id);
  types_.push_back(std::move(info));
  return id;
}

DeviceTypeId DeviceCatalog::add_type_compact(
    std::string name, std::initializer_list<std::string_view> pins) {
  std::vector<PinSpec> specs;
  specs.reserve(pins.size());
  for (std::string_view p : pins) {
    std::size_t colon = p.find(':');
    if (colon == std::string_view::npos) {
      specs.push_back({std::string(p), std::string(p)});
    } else {
      specs.push_back({std::string(p.substr(0, colon)),
                       std::string(p.substr(colon + 1))});
    }
  }
  return add_type(std::move(name), std::move(specs));
}

std::optional<DeviceTypeId> DeviceCatalog::find(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

DeviceTypeId DeviceCatalog::require(std::string_view name) const {
  auto id = find(name);
  SUBG_CHECK_MSG(id.has_value(), "unknown device type '" << name << "'");
  return *id;
}

const DeviceTypeInfo& DeviceCatalog::type(DeviceTypeId id) const {
  SUBG_CHECK_MSG(id.valid() && id.index() < types_.size(),
                 "invalid device type id");
  return types_[id.index()];
}

std::shared_ptr<const DeviceCatalog> DeviceCatalog::cmos() {
  auto cat = std::make_shared<DeviceCatalog>();
  cat->add_type("nmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}, {"b", "bulk"}});
  cat->add_type("pmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}, {"b", "bulk"}});
  cat->add_type("res", {{"p1", "t"}, {"p2", "t"}});
  cat->add_type("cap", {{"p1", "t"}, {"p2", "t"}});
  cat->add_type("diode", {{"a", "anode"}, {"c", "cathode"}});
  return cat;
}

std::shared_ptr<const DeviceCatalog> DeviceCatalog::cmos3() {
  auto cat = std::make_shared<DeviceCatalog>();
  cat->add_type("nmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}});
  cat->add_type("pmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}});
  cat->add_type("res", {{"p1", "t"}, {"p2", "t"}});
  cat->add_type("cap", {{"p1", "t"}, {"p2", "t"}});
  return cat;
}

}  // namespace subg
