// Flat netlist: the circuit representation both sides of the matcher use.
//
// A netlist is a set of devices (instances of catalog device types) and a
// set of nets; each device pin connects to exactly one net. Pattern
// netlists additionally declare *ports* — their external nets (paper §II:
// external nets may connect to arbitrary surrounding circuitry, internal
// nets may not) — and either side may declare *global* nets (the paper's
// "special signals", §IV.A: Vdd/GND/clock rails that mean the same thing in
// pattern and host and are matched by name, not structure).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/catalog.hpp"
#include "netlist/ids.hpp"

namespace subg {

/// Per-device-type instance counts etc.; see Netlist::stats().
struct NetlistStats {
  std::size_t device_count = 0;
  std::size_t net_count = 0;
  std::size_t pin_count = 0;
  std::size_t global_net_count = 0;
  std::size_t port_count = 0;
  std::size_t max_net_degree = 0;
  /// (type name, count) in catalog order, zero-count types omitted.
  std::vector<std::pair<std::string, std::size_t>> devices_by_type;
};

class Netlist {
 public:
  explicit Netlist(std::shared_ptr<const DeviceCatalog> catalog,
                   std::string name = "");

  [[nodiscard]] const std::string& name() const { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  [[nodiscard]] const DeviceCatalog& catalog() const { return *catalog_; }
  [[nodiscard]] const std::shared_ptr<const DeviceCatalog>& catalog_ptr() const {
    return catalog_;
  }

  // --- nets -----------------------------------------------------------

  /// Create a net. Empty name ⇒ an auto-generated unique name "$n<k>".
  /// Named nets must be unique within the netlist.
  NetId add_net(std::string name = "");

  /// Find an existing net by name, or create it.
  NetId ensure_net(std::string_view name);

  [[nodiscard]] std::optional<NetId> find_net(std::string_view name) const;

  [[nodiscard]] const std::string& net_name(NetId n) const;

  /// Number of device pins attached to the net (the paper's degree(n)).
  [[nodiscard]] std::size_t net_degree(NetId n) const;

  /// Mark a net as a global "special signal" (Vdd/GND/clk). Global nets in
  /// pattern and host correspond iff their names match.
  void mark_global(NetId n);
  [[nodiscard]] bool is_global(NetId n) const;

  /// Mark a pattern net as a port (external net). Global nets may also be
  /// ports; globals are matched by name and never corrupt labeling.
  void mark_port(NetId n);
  [[nodiscard]] bool is_port(NetId n) const;

  /// Port nets in declaration order (pattern interface).
  [[nodiscard]] std::span<const NetId> ports() const { return ports_; }

  [[nodiscard]] std::size_t net_count() const { return nets_.size(); }

  // --- devices --------------------------------------------------------

  /// Instantiate a device of `type`, connecting pin i to nets[i].
  /// `nets.size()` must equal the type's pin count. Empty name ⇒
  /// auto-generated "$d<k>".
  DeviceId add_device(DeviceTypeId type, std::span<const NetId> nets,
                      std::string name = "");

  /// Convenience overload taking an initializer list of nets.
  DeviceId add_device(DeviceTypeId type, std::initializer_list<NetId> nets,
                      std::string name = "");

  [[nodiscard]] DeviceTypeId device_type(DeviceId d) const;
  [[nodiscard]] const DeviceTypeInfo& device_type_info(DeviceId d) const;
  [[nodiscard]] const std::string& device_name(DeviceId d) const;
  [[nodiscard]] std::optional<DeviceId> find_device(std::string_view name) const;

  /// Nets attached to the device, in pin order.
  [[nodiscard]] std::span<const NetId> device_pins(DeviceId d) const;

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }

  /// Remove a set of devices (used by gate extraction when a matched
  /// subcircuit is replaced). Invalidates all DeviceIds; net ids survive.
  /// Nets left with degree 0 that are neither ports nor globals are removed
  /// as well (they were internal to the extracted instance); removing nets
  /// invalidates NetIds too, so callers should re-resolve by name.
  void remove_devices(std::span<const DeviceId> victims);

  // --- incremental (ECO) mutators ------------------------------------
  // The delta layer (src/session) edits a netlist in place instead of
  // rebuilding it; these keep the name indexes in sync. Rename keeps ids
  // stable; remove_net shifts every higher NetId down by one.

  /// Rename a net. The new name must be non-empty and unused. Ids stay
  /// valid; only the name index changes.
  void rename_net(NetId n, std::string new_name);

  /// Rename a device. Same contract as rename_net.
  void rename_device(DeviceId d, std::string new_name);

  /// Remove a single net. The net must have degree 0 (no connected pins) —
  /// removing a live net would dangle device pins. Invalidates NetIds at or
  /// above the removed index (they shift down by one); callers re-resolve
  /// by name.
  void remove_net(NetId n);

  // --- connectivity ---------------------------------------------------

  /// (device, pin index) pairs attached to a net.
  struct NetPin {
    DeviceId device;
    std::uint32_t pin;
  };
  [[nodiscard]] std::span<const NetPin> net_pins(NetId n) const;

  // --- misc -----------------------------------------------------------

  [[nodiscard]] NetlistStats stats() const;

  /// Consistency audit: every pin attached to a live net, port/global flags
  /// on live nets, connectivity index in sync. Throws subg::Error with a
  /// description of the first problem found.
  void validate() const;

 private:
  struct Device {
    DeviceTypeId type;
    std::string name;
    std::uint32_t first_pin = 0;  // into pin_nets_
    std::uint32_t pin_count = 0;
  };
  struct Net {
    std::string name;
    std::vector<NetPin> pins;
    bool global = false;
    bool port = false;
  };

  std::shared_ptr<const DeviceCatalog> catalog_;
  std::string name_;
  std::vector<Device> devices_;
  std::vector<Net> nets_;
  std::vector<NetId> pin_nets_;  // flattened pin→net table
  std::vector<NetId> ports_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::unordered_map<std::string, DeviceId> device_by_name_;
  std::uint64_t auto_net_ = 0;
  std::uint64_t auto_dev_ = 0;
};

}  // namespace subg
