// Hierarchical netlist ("design"): modules containing primitive devices and
// instances of other modules. The matcher itself works on flat netlists
// (the paper treats the main circuit as flat); this substrate exists so
// workload generators and the SPICE reader can build circuits
// hierarchically and flatten them — and so the hierarchy-discovery
// application (paper §I) has something to rediscover.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netlist/netlist.hpp"

namespace subg {

class Design;

/// One module (SPICE .SUBCKT): local nets, primitive devices, and child
/// instances. Nets are module-local; ports are the first `port_count`
/// declared nets in order.
class Module {
 public:
  /// A primitive device card as declared (module-local nets, pin order).
  struct Prim {
    DeviceTypeId type;
    std::vector<NetId> nets;
    std::string name;
  };
  /// A child-module instantiation; actuals bind to the child's ports in
  /// order.
  struct Instance {
    ModuleId child;
    std::vector<NetId> actuals;
    std::string name;
  };

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] std::span<const NetId> ports() const { return ports_; }

  NetId add_net(std::string name = "");
  NetId ensure_net(std::string_view name);
  [[nodiscard]] std::optional<NetId> find_net(std::string_view name) const;
  [[nodiscard]] const std::string& net_name(NetId n) const;
  [[nodiscard]] std::size_t net_count() const { return nets_.size(); }

  /// Primitive device: pin i connects to nets[i].
  void add_device(DeviceTypeId type, std::span<const NetId> nets,
                  std::string name = "");
  void add_device(DeviceTypeId type, std::initializer_list<NetId> nets,
                  std::string name = "");

  /// Instance of another module; actuals bind to the child's ports in order.
  void add_instance(ModuleId child, std::span<const NetId> actuals,
                    std::string name = "");
  void add_instance(ModuleId child, std::initializer_list<NetId> actuals,
                    std::string name = "");

  [[nodiscard]] std::size_t device_count() const { return devices_.size(); }
  [[nodiscard]] std::size_t instance_count() const { return instances_.size(); }

  /// Read-only views for analyses (lint) in declaration order.
  [[nodiscard]] std::span<const Prim> devices() const { return devices_; }
  [[nodiscard]] std::span<const Instance> instances() const {
    return instances_;
  }

 private:
  friend class Design;

  explicit Module(Design* design, std::string name)
      : design_(design), name_(std::move(name)) {}

  Design* design_;
  std::string name_;
  std::vector<std::string> nets_;
  std::vector<NetId> ports_;
  std::unordered_map<std::string, NetId> net_by_name_;
  std::vector<Prim> devices_;
  std::vector<Instance> instances_;
  std::uint64_t auto_net_ = 0;
  std::uint64_t auto_inst_ = 0;
};

class Design {
 public:
  explicit Design(std::shared_ptr<const DeviceCatalog> catalog);

  [[nodiscard]] const DeviceCatalog& catalog() const { return *catalog_; }
  [[nodiscard]] const std::shared_ptr<const DeviceCatalog>& catalog_ptr() const {
    return catalog_;
  }

  /// Create a module; `port_names` become its first nets, in order.
  ModuleId add_module(std::string name, std::vector<std::string> port_names = {});

  [[nodiscard]] std::optional<ModuleId> find_module(std::string_view name) const;
  [[nodiscard]] Module& module(ModuleId id);
  [[nodiscard]] const Module& module(ModuleId id) const;
  [[nodiscard]] std::size_t module_count() const { return modules_.size(); }

  /// Declare a net name global: every occurrence anywhere in the hierarchy
  /// refers to one top-level net (SPICE .GLOBAL semantics).
  void add_global(std::string name);
  [[nodiscard]] bool is_global_name(std::string_view name) const;
  [[nodiscard]] const std::vector<std::string>& globals() const { return globals_; }

  /// Expand `top` into a flat netlist. Instance-local nets are named
  /// "<instance path>/<net>"; globals keep their bare names and are marked
  /// global in the result. Throws on recursive hierarchy.
  [[nodiscard]] Netlist flatten(std::string_view top) const;

  /// Total primitive devices a full expansion of `top` would contain.
  [[nodiscard]] std::size_t flattened_device_count(std::string_view top) const;

  /// How many instances of module `target` a full expansion of `top`
  /// contains (counting nested instantiations) — ground truth for the
  /// matcher benchmarks. Returns 1 when top == target.
  [[nodiscard]] std::size_t count_module_instances(std::string_view top,
                                                   std::string_view target) const;

 private:
  void flatten_into(ModuleId id, const std::string& prefix,
                    std::span<const NetId> bound_ports, Netlist& out,
                    std::vector<bool>& on_stack) const;

  std::shared_ptr<const DeviceCatalog> catalog_;
  std::vector<std::unique_ptr<Module>> modules_;
  std::unordered_map<std::string, ModuleId> by_name_;
  std::vector<std::string> globals_;
  std::unordered_set<std::string> global_set_;
};

}  // namespace subg
