#include "netlist/netlist.hpp"

#include <algorithm>
#include <unordered_set>

#include "util/check.hpp"

namespace subg {

Netlist::Netlist(std::shared_ptr<const DeviceCatalog> catalog, std::string name)
    : catalog_(std::move(catalog)), name_(std::move(name)) {
  SUBG_CHECK_MSG(catalog_ != nullptr, "netlist requires a device catalog");
}

NetId Netlist::add_net(std::string name) {
  if (name.empty()) {
    do {
      name = "$n" + std::to_string(auto_net_++);
    } while (net_by_name_.contains(name));
  } else {
    SUBG_CHECK_MSG(!net_by_name_.contains(name),
                   "net '" << name << "' already exists in netlist '" << name_
                           << "'");
  }
  NetId id(static_cast<std::uint32_t>(nets_.size()));
  net_by_name_.emplace(name, id);
  nets_.push_back(Net{std::move(name), {}, false, false});
  return id;
}

NetId Netlist::ensure_net(std::string_view name) {
  SUBG_CHECK_MSG(!name.empty(), "ensure_net requires a name");
  if (auto found = find_net(name)) return *found;
  return add_net(std::string(name));
}

std::optional<NetId> Netlist::find_net(std::string_view name) const {
  auto it = net_by_name_.find(std::string(name));
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

const std::string& Netlist::net_name(NetId n) const {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  return nets_[n.index()].name;
}

std::size_t Netlist::net_degree(NetId n) const {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  return nets_[n.index()].pins.size();
}

void Netlist::mark_global(NetId n) {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  nets_[n.index()].global = true;
}

bool Netlist::is_global(NetId n) const {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  return nets_[n.index()].global;
}

void Netlist::mark_port(NetId n) {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  if (!nets_[n.index()].port) {
    nets_[n.index()].port = true;
    ports_.push_back(n);
  }
}

bool Netlist::is_port(NetId n) const {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  return nets_[n.index()].port;
}

DeviceId Netlist::add_device(DeviceTypeId type, std::span<const NetId> nets,
                             std::string name) {
  const DeviceTypeInfo& info = catalog_->type(type);
  SUBG_CHECK_MSG(nets.size() == info.pin_count(),
                 "device of type '" << info.name << "' needs " << info.pin_count()
                                    << " nets, got " << nets.size());
  if (name.empty()) {
    do {
      name = "$d" + std::to_string(auto_dev_++);
    } while (device_by_name_.contains(name));
  } else {
    SUBG_CHECK_MSG(!device_by_name_.contains(name),
                   "device '" << name << "' already exists in netlist '" << name_
                              << "'");
  }

  DeviceId id(static_cast<std::uint32_t>(devices_.size()));
  Device dev;
  dev.type = type;
  dev.name = std::move(name);
  dev.first_pin = static_cast<std::uint32_t>(pin_nets_.size());
  dev.pin_count = info.pin_count();
  for (std::uint32_t p = 0; p < dev.pin_count; ++p) {
    NetId n = nets[p];
    SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(),
                   "device '" << dev.name << "' pin " << p
                              << " connects to an invalid net");
    pin_nets_.push_back(n);
    nets_[n.index()].pins.push_back(NetPin{id, p});
  }
  device_by_name_.emplace(dev.name, id);
  devices_.push_back(std::move(dev));
  return id;
}

DeviceId Netlist::add_device(DeviceTypeId type, std::initializer_list<NetId> nets,
                             std::string name) {
  return add_device(type, std::span<const NetId>(nets.begin(), nets.size()),
                    std::move(name));
}

DeviceTypeId Netlist::device_type(DeviceId d) const {
  SUBG_CHECK_MSG(d.valid() && d.index() < devices_.size(), "invalid device id");
  return devices_[d.index()].type;
}

const DeviceTypeInfo& Netlist::device_type_info(DeviceId d) const {
  return catalog_->type(device_type(d));
}

const std::string& Netlist::device_name(DeviceId d) const {
  SUBG_CHECK_MSG(d.valid() && d.index() < devices_.size(), "invalid device id");
  return devices_[d.index()].name;
}

std::optional<DeviceId> Netlist::find_device(std::string_view name) const {
  auto it = device_by_name_.find(std::string(name));
  if (it == device_by_name_.end()) return std::nullopt;
  return it->second;
}

std::span<const NetId> Netlist::device_pins(DeviceId d) const {
  SUBG_CHECK_MSG(d.valid() && d.index() < devices_.size(), "invalid device id");
  const Device& dev = devices_[d.index()];
  return {pin_nets_.data() + dev.first_pin, dev.pin_count};
}

std::span<const Netlist::NetPin> Netlist::net_pins(NetId n) const {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  return nets_[n.index()].pins;
}

void Netlist::remove_devices(std::span<const DeviceId> victims) {
  if (victims.empty()) return;
  std::unordered_set<std::uint32_t> dead;
  dead.reserve(victims.size());
  for (DeviceId d : victims) {
    SUBG_CHECK_MSG(d.valid() && d.index() < devices_.size(),
                   "remove_devices: invalid device id");
    dead.insert(d.value);
  }

  // Rebuild devices / pin table, tracking surviving net usage.
  std::vector<Device> new_devices;
  new_devices.reserve(devices_.size() - dead.size());
  std::vector<NetId> new_pin_nets;
  new_pin_nets.reserve(pin_nets_.size());
  device_by_name_.clear();
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    if (dead.contains(i)) continue;
    Device dev = devices_[i];
    std::uint32_t old_first = dev.first_pin;
    dev.first_pin = static_cast<std::uint32_t>(new_pin_nets.size());
    for (std::uint32_t p = 0; p < dev.pin_count; ++p) {
      new_pin_nets.push_back(pin_nets_[old_first + p]);
    }
    DeviceId nid(static_cast<std::uint32_t>(new_devices.size()));
    device_by_name_.emplace(dev.name, nid);
    new_devices.push_back(std::move(dev));
  }
  devices_ = std::move(new_devices);
  pin_nets_ = std::move(new_pin_nets);

  // Recompute net pin lists; drop nets that became disconnected and are
  // neither ports nor globals.
  for (Net& net : nets_) net.pins.clear();
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    const Device& dev = devices_[i];
    for (std::uint32_t p = 0; p < dev.pin_count; ++p) {
      nets_[pin_nets_[dev.first_pin + p].index()].pins.push_back(
          NetPin{DeviceId(i), p});
    }
  }

  std::vector<Net> new_nets;
  new_nets.reserve(nets_.size());
  std::vector<NetId> remap(nets_.size());
  for (std::uint32_t i = 0; i < nets_.size(); ++i) {
    Net& net = nets_[i];
    bool keep = !net.pins.empty() || net.port || net.global;
    if (keep) {
      remap[i] = NetId(static_cast<std::uint32_t>(new_nets.size()));
      new_nets.push_back(std::move(net));
    } else {
      remap[i] = NetId();
    }
  }
  nets_ = std::move(new_nets);

  net_by_name_.clear();
  for (std::uint32_t i = 0; i < nets_.size(); ++i) {
    net_by_name_.emplace(nets_[i].name, NetId(i));
  }
  for (NetId& n : pin_nets_) n = remap[n.index()];
  for (Net& net : nets_) net.pins.clear();
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    const Device& dev = devices_[i];
    for (std::uint32_t p = 0; p < dev.pin_count; ++p) {
      nets_[pin_nets_[dev.first_pin + p].index()].pins.push_back(
          NetPin{DeviceId(i), p});
    }
  }
  std::vector<NetId> new_ports;
  for (NetId p : ports_) {
    if (remap[p.index()].valid()) new_ports.push_back(remap[p.index()]);
  }
  ports_ = std::move(new_ports);
}

void Netlist::rename_net(NetId n, std::string new_name) {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  SUBG_CHECK_MSG(!new_name.empty(), "rename_net requires a name");
  Net& net = nets_[n.index()];
  if (net.name == new_name) return;
  SUBG_CHECK_MSG(!net_by_name_.contains(new_name),
                 "net '" << new_name << "' already exists in netlist '"
                         << name_ << "'");
  net_by_name_.erase(net.name);
  net.name = new_name;
  net_by_name_.emplace(std::move(new_name), n);
}

void Netlist::rename_device(DeviceId d, std::string new_name) {
  SUBG_CHECK_MSG(d.valid() && d.index() < devices_.size(), "invalid device id");
  SUBG_CHECK_MSG(!new_name.empty(), "rename_device requires a name");
  Device& dev = devices_[d.index()];
  if (dev.name == new_name) return;
  SUBG_CHECK_MSG(!device_by_name_.contains(new_name),
                 "device '" << new_name << "' already exists in netlist '"
                            << name_ << "'");
  device_by_name_.erase(dev.name);
  dev.name = new_name;
  device_by_name_.emplace(std::move(new_name), d);
}

void Netlist::remove_net(NetId n) {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid net id");
  const std::uint32_t idx = n.value;
  SUBG_CHECK_MSG(nets_[idx].pins.empty(),
                 "remove_net: net '" << nets_[idx].name
                                     << "' still has connected pins");
  net_by_name_.erase(nets_[idx].name);
  nets_.erase(nets_.begin() + idx);
  // Every id at or above idx shifts down; the degree-0 precondition means
  // no pin references the removed slot itself.
  for (auto& [name, id] : net_by_name_) {
    if (id.index() > idx) id = NetId(id.value - 1);
  }
  for (NetId& pn : pin_nets_) {
    if (pn.index() > idx) pn = NetId(pn.value - 1);
  }
  std::vector<NetId> new_ports;
  new_ports.reserve(ports_.size());
  for (NetId p : ports_) {
    if (p.index() == idx) continue;
    new_ports.push_back(p.index() > idx ? NetId(p.value - 1) : p);
  }
  ports_ = std::move(new_ports);
}

NetlistStats Netlist::stats() const {
  NetlistStats s;
  s.device_count = devices_.size();
  s.net_count = nets_.size();
  s.pin_count = pin_nets_.size();
  s.port_count = ports_.size();
  std::vector<std::size_t> by_type(catalog_->size(), 0);
  for (const Device& d : devices_) ++by_type[d.type.index()];
  for (std::size_t t = 0; t < by_type.size(); ++t) {
    if (by_type[t]) {
      s.devices_by_type.emplace_back(
          catalog_->type(DeviceTypeId(static_cast<std::uint32_t>(t))).name,
          by_type[t]);
    }
  }
  for (const Net& n : nets_) {
    if (n.global) ++s.global_net_count;
    s.max_net_degree = std::max(s.max_net_degree, n.pins.size());
  }
  return s;
}

void Netlist::validate() const {
  std::size_t pin_total = 0;
  for (std::uint32_t i = 0; i < devices_.size(); ++i) {
    const Device& dev = devices_[i];
    const DeviceTypeInfo& info = catalog_->type(dev.type);
    SUBG_CHECK_MSG(dev.pin_count == info.pin_count(),
                   "device '" << dev.name << "' pin count mismatch");
    for (std::uint32_t p = 0; p < dev.pin_count; ++p) {
      NetId n = pin_nets_[dev.first_pin + p];
      SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(),
                     "device '" << dev.name << "' pin " << p << " dangling");
    }
    pin_total += dev.pin_count;
  }
  // Back-reference sweep, linear in the total pin count (scanning each
  // net's pin list per device pin instead would be quadratic on the rails —
  // every transistor touches Vdd or GND, so a rail's list is O(devices)).
  // Each net entry must claim a DISTINCT device pin that points back at the
  // net; with the totals equal below, that claim set is a perfect matching
  // between the pin table and the net connectivity — exactly the property
  // the old per-pin membership scan established.
  std::size_t net_pin_total = 0;
  std::vector<bool> claimed(pin_nets_.size(), false);
  for (std::uint32_t ni = 0; ni < nets_.size(); ++ni) {
    const Net& net = nets_[ni];
    net_pin_total += net.pins.size();
    for (const NetPin& np : net.pins) {
      SUBG_CHECK_MSG(
          np.device.valid() && np.device.index() < devices_.size(),
          "net '" << net.name << "' references a device that does not exist");
      const Device& dev = devices_[np.device.index()];
      SUBG_CHECK_MSG(np.pin < dev.pin_count,
                     "net '" << net.name << "' references pin " << np.pin
                             << " beyond device '" << dev.name << "'");
      const std::size_t slot = dev.first_pin + np.pin;
      SUBG_CHECK_MSG(pin_nets_[slot] == NetId(ni),
                     "net '" << net.name
                             << "' back-reference disagrees with device '"
                             << dev.name << "' pin " << np.pin);
      SUBG_CHECK_MSG(!claimed[slot], "net '" << net.name
                                             << "' lists device '" << dev.name
                                             << "' pin " << np.pin
                                             << " more than once");
      claimed[slot] = true;
    }
  }
  SUBG_CHECK_MSG(pin_total == net_pin_total,
                 "pin table and net connectivity out of sync");
  for (NetId p : ports_) {
    SUBG_CHECK_MSG(p.valid() && p.index() < nets_.size() && nets_[p.index()].port,
                   "port list entry is not a port net");
  }
}

}  // namespace subg
