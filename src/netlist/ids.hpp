// Strongly-typed index handles for netlist entities.
//
// Devices, nets and device types live in per-container vectors; these
// wrappers prevent accidentally indexing one with the other while staying
// trivially copyable and hashable.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>

namespace subg {

namespace detail {
template <class Tag>
struct IdBase {
  std::uint32_t value = kInvalid;

  static constexpr std::uint32_t kInvalid = std::numeric_limits<std::uint32_t>::max();

  constexpr IdBase() = default;
  constexpr explicit IdBase(std::uint32_t v) : value(v) {}
  [[nodiscard]] constexpr bool valid() const { return value != kInvalid; }
  [[nodiscard]] constexpr std::size_t index() const { return value; }

  friend constexpr bool operator==(IdBase, IdBase) = default;
  friend constexpr auto operator<=>(IdBase, IdBase) = default;
};
}  // namespace detail

struct DeviceTag {};
struct NetTag {};
struct DeviceTypeTag {};
struct ModuleTag {};

using DeviceId = detail::IdBase<DeviceTag>;
using NetId = detail::IdBase<NetTag>;
using DeviceTypeId = detail::IdBase<DeviceTypeTag>;
using ModuleId = detail::IdBase<ModuleTag>;

}  // namespace subg

namespace std {
template <class Tag>
struct hash<subg::detail::IdBase<Tag>> {
  size_t operator()(subg::detail::IdBase<Tag> id) const noexcept {
    return std::hash<uint32_t>{}(id.value);
  }
};
}  // namespace std
