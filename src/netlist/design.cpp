#include "netlist/design.hpp"

#include "util/check.hpp"

namespace subg {

// --- Module ------------------------------------------------------------

NetId Module::add_net(std::string name) {
  if (name.empty()) {
    do {
      name = "$n" + std::to_string(auto_net_++);
    } while (net_by_name_.contains(name));
  } else {
    SUBG_CHECK_MSG(!net_by_name_.contains(name),
                   "net '" << name << "' already exists in module '" << name_
                           << "'");
  }
  NetId id(static_cast<std::uint32_t>(nets_.size()));
  net_by_name_.emplace(name, id);
  nets_.push_back(std::move(name));
  return id;
}

NetId Module::ensure_net(std::string_view name) {
  SUBG_CHECK_MSG(!name.empty(), "ensure_net requires a name");
  if (auto found = find_net(name)) return *found;
  return add_net(std::string(name));
}

std::optional<NetId> Module::find_net(std::string_view name) const {
  auto it = net_by_name_.find(std::string(name));
  if (it == net_by_name_.end()) return std::nullopt;
  return it->second;
}

const std::string& Module::net_name(NetId n) const {
  SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(), "invalid module net id");
  return nets_[n.index()];
}

void Module::add_device(DeviceTypeId type, std::span<const NetId> nets,
                        std::string name) {
  const DeviceTypeInfo& info = design_->catalog().type(type);
  SUBG_CHECK_MSG(nets.size() == info.pin_count(),
                 "module '" << name_ << "': device of type '" << info.name
                            << "' needs " << info.pin_count() << " nets, got "
                            << nets.size());
  for (NetId n : nets) {
    SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(),
                   "module '" << name_ << "': device pin bound to invalid net");
  }
  devices_.push_back(Prim{type, {nets.begin(), nets.end()}, std::move(name)});
}

void Module::add_device(DeviceTypeId type, std::initializer_list<NetId> nets,
                        std::string name) {
  add_device(type, std::span<const NetId>(nets.begin(), nets.size()),
             std::move(name));
}

void Module::add_instance(ModuleId child, std::span<const NetId> actuals,
                          std::string name) {
  const Module& c = design_->module(child);
  SUBG_CHECK_MSG(actuals.size() == c.ports().size(),
                 "module '" << name_ << "': instance of '" << c.name()
                            << "' needs " << c.ports().size()
                            << " actuals, got " << actuals.size());
  for (NetId n : actuals) {
    SUBG_CHECK_MSG(n.valid() && n.index() < nets_.size(),
                   "module '" << name_ << "': instance actual is invalid");
  }
  if (name.empty()) name = "x" + std::to_string(auto_inst_++);
  instances_.push_back(Instance{child, {actuals.begin(), actuals.end()},
                                std::move(name)});
}

void Module::add_instance(ModuleId child, std::initializer_list<NetId> actuals,
                          std::string name) {
  add_instance(child, std::span<const NetId>(actuals.begin(), actuals.size()),
               std::move(name));
}

// --- Design ------------------------------------------------------------

Design::Design(std::shared_ptr<const DeviceCatalog> catalog)
    : catalog_(std::move(catalog)) {
  SUBG_CHECK_MSG(catalog_ != nullptr, "design requires a device catalog");
}

ModuleId Design::add_module(std::string name, std::vector<std::string> port_names) {
  SUBG_CHECK_MSG(!name.empty(), "module name must be non-empty");
  SUBG_CHECK_MSG(!by_name_.contains(name),
                 "module '" << name << "' registered twice");
  ModuleId id(static_cast<std::uint32_t>(modules_.size()));
  auto mod = std::unique_ptr<Module>(new Module(this, name));
  for (std::string& p : port_names) {
    NetId n = mod->add_net(std::move(p));
    mod->ports_.push_back(n);
  }
  by_name_.emplace(std::move(name), id);
  modules_.push_back(std::move(mod));
  return id;
}

std::optional<ModuleId> Design::find_module(std::string_view name) const {
  auto it = by_name_.find(std::string(name));
  if (it == by_name_.end()) return std::nullopt;
  return it->second;
}

Module& Design::module(ModuleId id) {
  SUBG_CHECK_MSG(id.valid() && id.index() < modules_.size(), "invalid module id");
  return *modules_[id.index()];
}

const Module& Design::module(ModuleId id) const {
  SUBG_CHECK_MSG(id.valid() && id.index() < modules_.size(), "invalid module id");
  return *modules_[id.index()];
}

void Design::add_global(std::string name) {
  SUBG_CHECK_MSG(!name.empty(), "global net name must be non-empty");
  if (global_set_.insert(name).second) globals_.push_back(std::move(name));
}

bool Design::is_global_name(std::string_view name) const {
  return global_set_.contains(std::string(name));
}

Netlist Design::flatten(std::string_view top) const {
  auto top_id = find_module(top);
  SUBG_CHECK_MSG(top_id.has_value(), "unknown top module '" << top << "'");
  Netlist out(catalog_, std::string(top));

  // Globals first, so they exist even if unused at this level.
  for (const std::string& g : globals_) {
    NetId n = out.ensure_net(g);
    out.mark_global(n);
  }

  const Module& top_mod = module(*top_id);
  // The top module's ports become named nets marked as ports of the result,
  // so a flattened .SUBCKT can serve directly as a matcher pattern.
  std::vector<NetId> top_ports;
  top_ports.reserve(top_mod.ports().size());
  for (NetId p : top_mod.ports()) {
    NetId n = out.ensure_net(top_mod.net_name(p));
    out.mark_port(n);
    top_ports.push_back(n);
  }

  std::vector<bool> on_stack(modules_.size(), false);
  flatten_into(*top_id, "", top_ports, out, on_stack);
  return out;
}

void Design::flatten_into(ModuleId id, const std::string& prefix,
                          std::span<const NetId> bound_ports, Netlist& out,
                          std::vector<bool>& on_stack) const {
  SUBG_CHECK_MSG(!on_stack[id.index()],
                 "recursive hierarchy through module '" << module(id).name()
                                                        << "'");
  on_stack[id.index()] = true;
  const Module& mod = module(id);
  SUBG_CHECK(bound_ports.size() == mod.ports().size());

  // Resolve each module-local net to a net in the flat output.
  std::vector<NetId> resolved(mod.net_count());
  std::vector<bool> have(mod.net_count(), false);
  for (std::size_t i = 0; i < mod.ports().size(); ++i) {
    resolved[mod.ports()[i].index()] = bound_ports[i];
    have[mod.ports()[i].index()] = true;
  }
  for (std::uint32_t i = 0; i < mod.net_count(); ++i) {
    if (have[i]) continue;
    const std::string& local = mod.net_name(NetId(i));
    if (is_global_name(local)) {
      resolved[i] = out.ensure_net(local);
    } else {
      resolved[i] = out.add_net(prefix + local);
    }
    have[i] = true;
  }

  std::vector<NetId> pins;
  for (const Module::Prim& dev : mod.devices_) {
    pins.clear();
    for (NetId n : dev.nets) pins.push_back(resolved[n.index()]);
    std::string flat_name =
        dev.name.empty() ? std::string() : prefix + dev.name;
    out.add_device(dev.type, pins, std::move(flat_name));
  }
  for (const Module::Instance& inst : mod.instances_) {
    pins.clear();
    for (NetId n : inst.actuals) pins.push_back(resolved[n.index()]);
    flatten_into(inst.child, prefix + inst.name + "/", pins, out, on_stack);
  }
  on_stack[id.index()] = false;
}

std::size_t Design::count_module_instances(std::string_view top,
                                           std::string_view target) const {
  auto top_id = find_module(top);
  auto target_id = find_module(target);
  SUBG_CHECK_MSG(top_id.has_value(), "unknown top module '" << top << "'");
  SUBG_CHECK_MSG(target_id.has_value(), "unknown module '" << target << "'");
  std::vector<std::size_t> memo(modules_.size(),
                                std::numeric_limits<std::size_t>::max());
  std::vector<bool> on_stack(modules_.size(), false);
  auto dfs = [&](auto&& self, ModuleId id) -> std::size_t {
    if (id == *target_id) return 1;
    if (memo[id.index()] != std::numeric_limits<std::size_t>::max()) {
      return memo[id.index()];
    }
    SUBG_CHECK_MSG(!on_stack[id.index()], "recursive hierarchy");
    on_stack[id.index()] = true;
    std::size_t total = 0;
    for (const Module::Instance& inst : module(id).instances_) {
      total += self(self, inst.child);
    }
    on_stack[id.index()] = false;
    memo[id.index()] = total;
    return total;
  };
  return dfs(dfs, *top_id);
}

std::size_t Design::flattened_device_count(std::string_view top) const {
  auto top_id = find_module(top);
  SUBG_CHECK_MSG(top_id.has_value(), "unknown top module '" << top << "'");
  // Memoized DFS over the module DAG.
  std::vector<std::size_t> memo(modules_.size(),
                                std::numeric_limits<std::size_t>::max());
  std::vector<bool> on_stack(modules_.size(), false);
  auto dfs = [&](auto&& self, ModuleId id) -> std::size_t {
    if (memo[id.index()] != std::numeric_limits<std::size_t>::max()) {
      return memo[id.index()];
    }
    SUBG_CHECK_MSG(!on_stack[id.index()], "recursive hierarchy");
    on_stack[id.index()] = true;
    const Module& mod = module(id);
    std::size_t total = mod.device_count();
    for (const Module::Instance& inst : mod.instances_) {
      total += self(self, inst.child);
    }
    on_stack[id.index()] = false;
    memo[id.index()] = total;
    return total;
  };
  return dfs(dfs, *top_id);
}

}  // namespace subg
