// Device catalog: the set of device types a netlist may instantiate.
//
// A device type declares named pins, and partitions those pins into
// *terminal equivalence classes* (paper §II): nets attached to pins of the
// same class are interchangeable without changing circuit function (a
// MOSFET's source/drain pins; both ends of a resistor). The matcher keys
// all of its labeling off (type label, pin class index), so a pattern and
// host netlist can use distinct catalog objects as long as type names and
// pin class structure agree.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "netlist/ids.hpp"
#include "util/hash.hpp"

namespace subg {

/// One pin declaration: a pin name plus the name of its equivalence class.
/// Pins that share a class name are interchangeable.
struct PinSpec {
  std::string name;
  std::string equivalence_class;
};

/// Immutable description of a registered device type.
struct DeviceTypeInfo {
  std::string name;
  std::vector<PinSpec> pins;
  /// Per pin: index of its equivalence class within this type (dense, 0-based).
  std::vector<std::uint32_t> pin_class;
  /// Number of distinct equivalence classes.
  std::uint32_t class_count = 0;
  /// Invariant label of devices of this type (hash of the type name).
  Label type_label = kNoLabel;
  /// Per equivalence class: the relabeling coefficient (util/hash.hpp).
  std::vector<Label> class_coefficient;

  [[nodiscard]] std::uint32_t pin_count() const {
    return static_cast<std::uint32_t>(pins.size());
  }
};

/// Registry of device types. Typically shared (via shared_ptr) by all
/// netlists in a flow; see `cmos()` for the standard transistor-level set.
class DeviceCatalog {
 public:
  /// Register a device type. Throws subg::Error on duplicate name or empty
  /// pin list. Pin classes are numbered in order of first appearance.
  DeviceTypeId add_type(std::string name, std::vector<PinSpec> pins);

  /// Convenience: register a type whose pins are given as
  /// "pin:class" strings (class defaults to the pin name when omitted).
  DeviceTypeId add_type_compact(std::string name,
                                std::initializer_list<std::string_view> pins);

  [[nodiscard]] std::optional<DeviceTypeId> find(std::string_view name) const;

  /// Like find(), but throws subg::Error when the type is unknown.
  [[nodiscard]] DeviceTypeId require(std::string_view name) const;

  [[nodiscard]] const DeviceTypeInfo& type(DeviceTypeId id) const;

  [[nodiscard]] std::size_t size() const { return types_.size(); }

  /// All registered types, in registration order.
  [[nodiscard]] std::span<const DeviceTypeInfo> types() const { return types_; }

  /// Standard transistor-level CMOS catalog:
  ///   nmos/pmos: pins d,g,s,b — d and s share class "sd"; g is "gate";
  ///              b is "bulk".
  ///   res, cap:  two interchangeable pins.
  ///   diode:     anode / cathode, distinct classes.
  [[nodiscard]] static std::shared_ptr<const DeviceCatalog> cmos();

  /// 3-pin MOS catalog (d,g,s — no bulk), matching the paper's figures.
  [[nodiscard]] static std::shared_ptr<const DeviceCatalog> cmos3();

 private:
  std::vector<DeviceTypeInfo> types_;
  std::unordered_map<std::string, DeviceTypeId> by_name_;
};

}  // namespace subg
