#include "lint/lint.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace subg::lint {

namespace {

/// Append a name list as " [label: a, b, c]".
void append_names(std::ostream& os, const char* label,
                  const std::vector<std::string>& names) {
  if (names.empty()) return;
  os << " [" << label << ":";
  for (const std::string& n : names) os << ' ' << n;
  os << ']';
}

/// True when pin `pin` of device `d` belongs to the "gate" terminal
/// equivalence class (a MOS control input: it never drives its net).
bool is_gate_pin(const Netlist& netlist, DeviceId d, std::uint32_t pin) {
  const DeviceTypeInfo& info = netlist.device_type_info(d);
  return info.pins[pin].equivalence_class == "gate";
}

void record_metrics(const LintOptions& options, const LintReport& report) {
  if (options.metrics == nullptr) return;
  obs::Metrics& m = *options.metrics;
  m.add("lint.checks", report.checks_run);
  m.add("lint.findings", report.findings.size());
  m.add("lint.errors", report.errors);
  m.add("lint.warnings", report.warnings);
  m.add("lint.suppressed", report.suppressed);
}

}  // namespace

std::string Finding::to_string() const {
  std::ostringstream os;
  os << lint::to_string(severity) << ' ' << check << ": " << message;
  if (!module.empty()) os << " [module: " << module << ']';
  append_names(os, "nets", nets);
  append_names(os, "devices", devices);
  return os.str();
}

void LintReport::add(Finding finding, std::size_t max_per_check) {
  switch (finding.severity) {
    case Severity::kError: ++errors; break;
    case Severity::kWarning: ++warnings; break;
    case Severity::kInfo: ++infos; break;
  }
  for (auto& [check, count] : per_check_) {
    if (check == finding.check) {
      if (count >= max_per_check) {
        ++suppressed;
        return;
      }
      ++count;
      findings.push_back(std::move(finding));
      return;
    }
  }
  per_check_.emplace_back(finding.check, 1);
  findings.push_back(std::move(finding));
}

void LintReport::merge(LintReport other) {
  findings.insert(findings.end(),
                  std::make_move_iterator(other.findings.begin()),
                  std::make_move_iterator(other.findings.end()));
  checks_run += other.checks_run;
  errors += other.errors;
  warnings += other.warnings;
  infos += other.infos;
  suppressed += other.suppressed;
  for (auto& [check, count] : other.per_check_) {
    bool found = false;
    for (auto& [mine, my_count] : per_check_) {
      if (mine == check) {
        my_count += count;
        found = true;
        break;
      }
    }
    if (!found) per_check_.emplace_back(std::move(check), count);
  }
}

void LintReport::write_text(std::ostream& out) const {
  for (const Finding& f : findings) out << f.to_string() << '\n';
  if (suppressed > 0) {
    out << "(" << suppressed << " further findings suppressed)\n";
  }
  if (!findings.empty() || suppressed > 0 || checks_run > 0) {
    out << "# " << checks_run << " checks, " << errors << " errors, "
        << warnings << " warnings, " << infos << " infos\n";
  }
}

RailClass classify_rail(std::string_view name) {
  std::string lower = to_lower(name);
  if (!lower.empty() && lower.back() == '!') lower.pop_back();
  if (lower.rfind("vdd", 0) == 0 || lower.rfind("vcc", 0) == 0 ||
      lower == "pwr" || lower == "power") {
    return RailClass::kSupply;
  }
  if (lower.rfind("gnd", 0) == 0 || lower.rfind("vss", 0) == 0 ||
      lower == "0" || lower == "ground") {
    return RailClass::kGround;
  }
  return RailClass::kNone;
}

LintReport lint_netlist(const Netlist& netlist, const LintOptions& options) {
  LintReport report;
  const std::size_t cap = options.max_findings_per_check;

  // --- unconnected-port: a declared pattern port no device touches ------
  // (Paper §II: ports are the pattern's external nets; a port with no pins
  // makes the interface a lie — the matcher would bind it arbitrarily.)
  if (options.pattern_checks) {
    ++report.checks_run;
    for (NetId port : netlist.ports()) {
      if (netlist.net_degree(port) > 0) continue;
      Finding f;
      f.check = kUnconnectedPort;
      f.severity = Severity::kError;
      f.message = "port '" + netlist.net_name(port) +
                  "' connects to no device pin";
      f.nets.push_back(netlist.net_name(port));
      report.add(std::move(f), cap);
    }
  }

  // --- floating-gate / dangling-net / unused-net ------------------------
  // One sweep classifies every net by its attached pin mix. A net whose
  // every pin is a gate-class MOS input has no driver at all (Phase I
  // degree labels are fine but the circuit is electrically dead); a
  // single-pin net leads nowhere; a zero-pin net is clutter.
  //
  // Severity depends on what the netlist declares: with ports marked, a
  // gate-only net is provably internal and undriven (error); a deck with
  // no ports at all (top-level SPICE cards) cannot distinguish a floating
  // gate from a primary input, so the finding downgrades to a warning.
  const Severity floating_severity =
      netlist.ports().empty() ? Severity::kWarning : Severity::kError;
  ++report.checks_run;  // floating-gate
  ++report.checks_run;  // dangling-net
  ++report.checks_run;  // unused-net
  for (std::uint32_t n = 0; n < netlist.net_count(); ++n) {
    const NetId net(n);
    if (netlist.is_port(net) || netlist.is_global(net)) continue;
    const auto pins = netlist.net_pins(net);
    if (pins.empty()) {
      Finding f;
      f.check = kUnusedNet;
      f.severity = Severity::kInfo;
      f.message = "net '" + netlist.net_name(net) +
                  "' connects to no device pin";
      f.nets.push_back(netlist.net_name(net));
      report.add(std::move(f), cap);
      continue;
    }
    bool all_gates = true;
    for (const Netlist::NetPin& p : pins) {
      if (!is_gate_pin(netlist, p.device, p.pin)) {
        all_gates = false;
        break;
      }
    }
    if (all_gates) {
      Finding f;
      f.check = kFloatingGate;
      f.severity = floating_severity;
      f.message = "net '" + netlist.net_name(net) +
                  "' drives only MOS gates and is driven by nothing";
      f.nets.push_back(netlist.net_name(net));
      for (const Netlist::NetPin& p : pins) {
        f.devices.push_back(netlist.device_name(p.device));
      }
      report.add(std::move(f), cap);
    } else if (pins.size() == 1) {
      Finding f;
      f.check = kDanglingNet;
      f.severity = Severity::kWarning;
      f.message = "net '" + netlist.net_name(net) +
                  "' has a single terminal (dangling)";
      f.nets.push_back(netlist.net_name(net));
      f.devices.push_back(netlist.device_name(pins.front().device));
      report.add(std::move(f), cap);
    }
  }

  // --- unreachable: devices cut off from every port and rail ------------
  // BFS over the net–device bipartite adjacency from all ports and used
  // globals. A device no such anchor reaches belongs to an island the
  // surrounding circuitry cannot observe — in a pattern it can never be
  // placed (matcher.cpp rejects disconnected patterns outright), in a host
  // it is dead weight that still slows refinement.
  ++report.checks_run;
  {
    std::vector<NetId> net_frontier;
    for (std::uint32_t n = 0; n < netlist.net_count(); ++n) {
      const NetId net(n);
      if ((netlist.is_port(net) || netlist.is_global(net)) &&
          netlist.net_degree(net) > 0) {
        net_frontier.push_back(net);
      }
    }
    if (!net_frontier.empty()) {
      std::vector<bool> net_seen(netlist.net_count(), false);
      std::vector<bool> dev_seen(netlist.device_count(), false);
      for (NetId n : net_frontier) net_seen[n.index()] = true;
      while (!net_frontier.empty()) {
        NetId n = net_frontier.back();
        net_frontier.pop_back();
        for (const Netlist::NetPin& p : netlist.net_pins(n)) {
          if (dev_seen[p.device.index()]) continue;
          dev_seen[p.device.index()] = true;
          for (NetId adj : netlist.device_pins(p.device)) {
            if (!net_seen[adj.index()]) {
              net_seen[adj.index()] = true;
              net_frontier.push_back(adj);
            }
          }
        }
      }
      for (std::uint32_t d = 0; d < netlist.device_count(); ++d) {
        if (dev_seen[d]) continue;
        Finding f;
        f.check = kUnreachable;
        f.severity = Severity::kWarning;
        f.message = "device '" + netlist.device_name(DeviceId(d)) +
                    "' is unreachable from every port and global rail";
        f.devices.push_back(netlist.device_name(DeviceId(d)));
        report.add(std::move(f), cap);
      }
    }
  }

  record_metrics(options, report);
  return report;
}

LintReport lint_design(const Design& design, const LintOptions& options) {
  LintReport report;
  const std::size_t cap = options.max_findings_per_check;

  // --- duplicate-instance -----------------------------------------------
  // Module-local device/instance names must be unique: flatten() composes
  // "<path>/<name>" names and Netlist::add_device throws on the collision,
  // so a duplicate here kills the whole flatten with a mid-expansion error.
  ++report.checks_run;
  for (std::uint32_t mi = 0; mi < design.module_count(); ++mi) {
    const Module& mod = design.module(ModuleId(mi));
    std::unordered_map<std::string, std::size_t> seen;
    auto note = [&](const std::string& name) {
      if (name.empty()) return;  // auto-named; always unique
      if (++seen[name] != 2) return;  // report each duplicate name once
      Finding f;
      f.check = kDuplicateInstance;
      f.severity = Severity::kError;
      f.message = "name '" + name + "' is used by more than one "
                  "device/instance in module '" + mod.name() + "'";
      f.module = mod.name();
      f.devices.push_back(name);
      report.add(std::move(f), cap);
    };
    for (const Module::Prim& dev : mod.devices()) note(dev.name);
    for (const Module::Instance& inst : mod.instances()) note(inst.name);
  }

  // --- supply-short / rail-mismatch -------------------------------------
  // A VDD–GND short needs no device to be fatal: binding one actual net to
  // both a supply-class formal and a ground-class formal of a child module
  // fuses the rails through a zero-device path (after flatten they are ONE
  // net, and the paper's special-signal matching (§IV.A) silently treats
  // the merged rail as whichever name survived). A single cross-polarity
  // binding is the milder cousin: probably a swapped port order.
  ++report.checks_run;  // supply-short
  ++report.checks_run;  // rail-mismatch
  for (std::uint32_t mi = 0; mi < design.module_count(); ++mi) {
    const Module& mod = design.module(ModuleId(mi));
    for (const Module::Instance& inst : mod.instances()) {
      const Module& child = design.module(inst.child);
      // Per actual net: the first supply-class and ground-class formal
      // bound to it (-1 = none yet). A handful of rails per instance, so a
      // flat insertion-ordered vector keeps findings deterministic.
      struct RailBinding {
        std::uint32_t actual;
        int supply = -1;
        int ground = -1;
      };
      std::vector<RailBinding> bound;
      for (std::size_t i = 0; i < inst.actuals.size(); ++i) {
        const std::string& formal = child.net_name(child.ports()[i]);
        const RailClass cls = classify_rail(formal);
        if (cls == RailClass::kNone) continue;
        const std::uint32_t actual = inst.actuals[i].value;
        auto it = std::find_if(
            bound.begin(), bound.end(),
            [actual](const RailBinding& b) { return b.actual == actual; });
        if (it == bound.end()) {
          bound.push_back(RailBinding{actual, -1, -1});
          it = bound.end() - 1;
        }
        if (cls == RailClass::kSupply && it->supply < 0) {
          it->supply = static_cast<int>(i);
        } else if (cls == RailClass::kGround && it->ground < 0) {
          it->ground = static_cast<int>(i);
        }
        const RailClass actual_cls =
            classify_rail(mod.net_name(inst.actuals[i]));
        if (actual_cls != RailClass::kNone && actual_cls != cls) {
          Finding f;
          f.check = kRailMismatch;
          f.severity = Severity::kWarning;
          f.message = "instance '" + inst.name + "' binds " +
                      (actual_cls == RailClass::kGround ? "ground" : "supply") +
                      " net '" + mod.net_name(inst.actuals[i]) + "' to " +
                      (cls == RailClass::kSupply ? "supply" : "ground") +
                      " port '" + formal + "' of '" + child.name() + "'";
          f.module = mod.name();
          f.devices.push_back(inst.name);
          f.nets.push_back(mod.net_name(inst.actuals[i]));
          report.add(std::move(f), cap);
        }
      }
      for (const RailBinding& b : bound) {
        if (b.supply < 0 || b.ground < 0) continue;
        Finding f;
        f.check = kSupplyShort;
        f.severity = Severity::kError;
        f.message =
            "instance '" + inst.name + "' ties supply port '" +
            child.net_name(child.ports()[static_cast<std::size_t>(b.supply)]) +
            "' and ground port '" +
            child.net_name(child.ports()[static_cast<std::size_t>(b.ground)]) +
            "' of '" + child.name() + "' to the same net '" +
            mod.net_name(NetId(b.actual)) + "' (zero-device VDD-GND short)";
        f.module = mod.name();
        f.devices.push_back(inst.name);
        f.nets.push_back(mod.net_name(NetId(b.actual)));
        report.add(std::move(f), cap);
      }
    }
  }

  record_metrics(options, report);
  return report;
}

LintReport import_diagnostics(const DiagnosticSink& sink,
                              const LintOptions& options) {
  LintReport report;
  ++report.checks_run;
  for (const Diagnostic& d : sink.diagnostics()) {
    Finding f;
    f.check = kParse;
    f.severity = d.severity == Diagnostic::Severity::kError
                     ? Severity::kError
                     : Severity::kWarning;
    f.message = d.to_string();
    report.add(std::move(f), options.max_findings_per_check);
  }
  // Diagnostics past the sink's own cap still count toward the tallies.
  for (std::size_t i = 0; i < sink.dropped(); ++i) ++report.suppressed;
  record_metrics(options, report);
  return report;
}

DeckLint lint_deck(const Design& design, const std::string& top,
                   const LintOptions& options) {
  DeckLint out;
  // Hierarchy checks must run BEFORE flatten: duplicate instance names and
  // zero-device rail shorts are invisible (or fatal) once flat.
  out.report.merge(lint_design(design, options));
  std::string chosen = top;
  if (chosen.empty() && design.module_count() > 0) {
    // Module 0 is the implicit "main"; prefer the first explicit subckt
    // with content when main is empty (the CLI default-top rule).
    const Module& main_module = design.module(ModuleId(0));
    if (design.module_count() > 1 && main_module.device_count() == 0 &&
        main_module.instance_count() == 0) {
      chosen = design.module(ModuleId(1)).name();
    } else {
      chosen = main_module.name();
    }
  }
  try {
    out.netlist = design.flatten(chosen);
  } catch (const Error& e) {
    // A deck lint can describe but not flatten (duplicate device names,
    // recursive hierarchy): one "flatten" error finding, flat checks
    // skipped.
    Finding f;
    f.check = kFlatten;
    f.severity = Severity::kError;
    f.message = e.what();
    LintReport flatten_report;
    flatten_report.checks_run = 1;
    flatten_report.add(std::move(f), options.max_findings_per_check);
    out.report.merge(std::move(flatten_report));
  }
  if (out.netlist.has_value()) {
    out.report.merge(lint_netlist(*out.netlist, options));
  }
  return out;
}

}  // namespace subg::lint
