// Netlist lint: static analysis of parsed circuits BEFORE matching.
//
// Phase I partition refinement silently degrades on malformed inputs —
// floating gates stop corruption fronts, dangling nets distort degree
// labels, and aliased supply rails break the paper's special-signal
// handling (§IV.A assumes well-formed power/ground connectivity). The lint
// layer turns those latent hazards into structured findings so front ends
// can refuse (or flag) a sick netlist instead of matching garbage.
//
// Three sources feed one LintReport:
//   * lint_netlist()  — structural checks on a flat Netlist (floating
//     gates, dangling/single-terminal nets, unconnected pattern ports,
//     unreachable components);
//   * lint_design()   — hierarchy checks the flat view cannot express
//     (duplicate instance names, VDD–GND shorts through zero-device
//     instance bindings, rail-polarity swaps);
//   * import_diagnostics() — the recovering parsers' DiagnosticSink,
//     surfacing per-card failures (terminal-class arity mismatches,
//     truncated definitions) as findings with file/line context.
//
// Reports are deterministic: checks run in a fixed order and findings are
// emitted in netlist declaration order, so golden-file tests compare bytes.
#pragma once

#include <cstddef>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "util/diagnostics.hpp"

namespace subg::obs {
class Metrics;
}  // namespace subg::obs

namespace subg::lint {

enum class Severity { kInfo, kWarning, kError };

[[nodiscard]] constexpr const char* to_string(Severity severity) {
  switch (severity) {
    case Severity::kInfo: return "info";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "unknown";
}

/// One defect found by a check. `check` is a stable kebab-case identifier
/// (the set below); consumers may key suppressions off it.
struct Finding {
  std::string check;
  Severity severity = Severity::kWarning;
  std::string message;
  /// Nets involved, by name (flat or module-local, per the check's scope).
  std::vector<std::string> nets;
  /// Devices / instances involved, by name.
  std::vector<std::string> devices;
  /// Module context for hierarchy checks; empty for flat-netlist findings.
  std::string module;

  /// "error floating-gate: <message> [nets: ...] [devices: ...]"
  [[nodiscard]] std::string to_string() const;
};

/// Stable check identifiers (also the spelling used in reports/tests).
inline constexpr const char* kFloatingGate = "floating-gate";
inline constexpr const char* kDanglingNet = "dangling-net";
inline constexpr const char* kUnusedNet = "unused-net";
inline constexpr const char* kUnconnectedPort = "unconnected-port";
inline constexpr const char* kUnreachable = "unreachable";
inline constexpr const char* kSupplyShort = "supply-short";
inline constexpr const char* kRailMismatch = "rail-mismatch";
inline constexpr const char* kDuplicateInstance = "duplicate-instance";
inline constexpr const char* kParse = "parse";
inline constexpr const char* kFlatten = "flatten";

struct LintOptions {
  /// Findings stored per check id; overflow only bumps
  /// LintReport::suppressed (a corrupt million-device deck must not produce
  /// a million-line report).
  std::size_t max_findings_per_check = 100;
  /// Run the port checks (unconnected-port). Meaningful for pattern-style
  /// netlists; a flat host with no declared ports skips them anyway.
  bool pattern_checks = true;
  /// Optional counter sink (lint.checks / lint.findings / lint.errors...).
  obs::Metrics* metrics = nullptr;
};

struct LintReport {
  std::vector<Finding> findings;
  std::size_t checks_run = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;
  std::size_t infos = 0;
  /// Findings dropped past LintOptions::max_findings_per_check. Counted,
  /// never silently lost: a report with suppressed > 0 is not clean.
  std::size_t suppressed = 0;

  [[nodiscard]] bool clean() const {
    return findings.empty() && suppressed == 0;
  }
  /// Worst severity present, or nullopt when the report is empty.
  [[nodiscard]] bool has_errors() const { return errors > 0; }
  [[nodiscard]] bool has_warnings() const { return warnings > 0; }

  /// Record a finding, honoring the per-check cap. Bumps the severity
  /// tallies either way.
  void add(Finding finding, std::size_t max_per_check);

  /// Fold `other` into this report (used to combine design-, parse-, and
  /// netlist-level passes into the one report a front end prints).
  void merge(LintReport other);

  /// Text rendering: one line per finding plus a one-line summary; ends
  /// with '\n' unless the report is empty and clean.
  void write_text(std::ostream& out) const;

 private:
  std::vector<std::pair<std::string, std::size_t>> per_check_;
};

/// Structural checks over a flat netlist. Deterministic; read-only.
[[nodiscard]] LintReport lint_netlist(const Netlist& netlist,
                                      const LintOptions& options = {});

/// Hierarchy checks over a parsed design (before flattening — duplicate
/// names make flatten() itself throw, so this must run first).
[[nodiscard]] LintReport lint_design(const Design& design,
                                     const LintOptions& options = {});

/// Surface recovering-parse diagnostics as findings (check id "parse").
[[nodiscard]] LintReport import_diagnostics(const DiagnosticSink& sink,
                                            const LintOptions& options = {});

/// The full deck-lint pipeline over an already-parsed design: hierarchy
/// checks, then flatten (a failure becomes one "flatten" error finding
/// instead of throwing — a lint must DESCRIBE a sick deck), then the flat
/// netlist checks. `top` empty picks the design's first non-empty module.
/// Shared by `subgemini lint` and the serve daemon's lint op, so both
/// surfaces report identical findings for the same deck.
struct DeckLint {
  LintReport report;
  /// The flattened netlist when flatten succeeded (for summaries).
  std::optional<Netlist> netlist;
};
[[nodiscard]] DeckLint lint_deck(const Design& design, const std::string& top,
                                 const LintOptions& options = {});

/// Rail-name classification used by the supply checks: "vdd"/"vcc"/"pwr"
/// prefixes are supplies, "gnd"/"vss"/"0"/"ground" are grounds. Matching is
/// case-insensitive and ignores a trailing '!'.
enum class RailClass { kNone, kSupply, kGround };
[[nodiscard]] RailClass classify_rail(std::string_view name);

}  // namespace subg::lint
