#include "obs/metrics.hpp"

#include <functional>
#include <sstream>
#include <thread>

namespace subg::obs {

std::string Snapshot::to_text() const {
  std::ostringstream os;
  for (const auto& [name, value] : counters) {
    os << "counter " << name << ' ' << value << '\n';
  }
  for (const auto& [name, value] : gauges) {
    os << "gauge " << name << ' ' << value << '\n';
  }
  for (const auto& [name, span] : spans) {
    os << "span " << name << ' ' << span.count << ' ' << span.seconds << '\n';
  }
  return os.str();
}

Metrics::Shard& Metrics::local_shard() {
  // Thread-id hashing pins each thread to one shard for its lifetime, so a
  // parallel lane's updates serialize only against collect() and the rare
  // hash-colliding lane.
  const std::size_t h =
      std::hash<std::thread::id>{}(std::this_thread::get_id());
  return shards_[h % kShards];
}

void Metrics::add(std::string_view name, std::uint64_t delta) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.counters[std::string(name)] += delta;
}

void Metrics::gauge(std::string_view name, double value) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  shard.gauges[std::string(name)] = value;
}

void Metrics::span_add(std::string_view name, double seconds) {
  Shard& shard = local_shard();
  std::lock_guard<std::mutex> lock(shard.mutex);
  Snapshot::Span& span = shard.spans[std::string(name)];
  ++span.count;
  span.seconds += seconds;
}

Snapshot Metrics::collect() const {
  Snapshot out;
  for (const Shard& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard.mutex);
    for (const auto& [name, value] : shard.counters) {
      out.counters[name] += value;
    }
    for (const auto& [name, value] : shard.gauges) {
      auto [it, inserted] = out.gauges.try_emplace(name, value);
      if (!inserted && value > it->second) it->second = value;
    }
    for (const auto& [name, span] : shard.spans) {
      Snapshot::Span& total = out.spans[name];
      total.count += span.count;
      total.seconds += span.seconds;
    }
  }
  return out;
}

}  // namespace subg::obs
