// Search-metrics registry for the matching runtime.
//
// The paper's headline claim is quantitative ("approximately linear in the
// total number of devices"), so the runtime needs first-class counters that
// explain WHY a run was fast or slow: relabeling rounds, candidate-vector
// sizes, backtracks, label-cache hits, lane utilization. A Metrics registry
// collects them as a flat name → value tree that report::Document can
// serialize into the versioned JSON output.
//
// Design:
//  - Three metric kinds. COUNTERS are monotonic uint64 sums ("phase2.seeds
//    tried"); merging shards adds them, so totals are scheduling-order
//    independent and identical at every --jobs value for deterministic
//    quantities. GAUGES are doubles with last-write-wins semantics within a
//    shard and max-across-shards on collect (high-water marks like
//    "phase2.max_guess_depth"). SPANS are wall-clock accumulators (count +
//    total seconds) for phase attribution and lane busy time.
//  - Thread safety via sharding: updates go to one of a fixed set of
//    shards selected by the calling thread's id, each guarded by its own
//    mutex. Parallel lanes therefore almost never contend — a lane's
//    updates hit "its" shard, and collect() merges all shards into one
//    Snapshot. There is no global lock on the update path.
//  - Zero-cost when no sink is attached: every instrumentation site takes
//    an obs::Metrics* that may be null and records through the null-safe
//    free helpers below (a single pointer test). Hot inner loops (Phase II
//    relabeling passes) are NOT instrumented per-iteration; the runtime
//    records its existing per-run aggregates (Phase2Stats, pool stats) at
//    phase boundaries, so the serial hot path is unchanged.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/timer.hpp"

namespace subg::obs {

/// Merged point-in-time view of a registry, with deterministic (sorted)
/// iteration order for serialization and golden tests.
struct Snapshot {
  struct Span {
    std::uint64_t count = 0;
    double seconds = 0;
  };
  std::map<std::string, std::uint64_t> counters;  ///< summed across shards
  std::map<std::string, double> gauges;           ///< max across shards
  std::map<std::string, Span> spans;              ///< summed across shards

  [[nodiscard]] bool empty() const {
    return counters.empty() && gauges.empty() && spans.empty();
  }
  /// Counter value, 0 when absent (collect() never stores absent names).
  [[nodiscard]] std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }

  /// Flat text rendering for --metrics dumps: one "counter <name> <value>"
  /// / "gauge <name> <value>" / "span <name> <count> <seconds>" line per
  /// entry, sorted within each kind (the maps are ordered). Ends with '\n'
  /// unless empty.
  [[nodiscard]] std::string to_text() const;
};

class Metrics {
 public:
  Metrics() = default;
  Metrics(const Metrics&) = delete;
  Metrics& operator=(const Metrics&) = delete;

  /// Add `delta` to the named monotonic counter.
  void add(std::string_view name, std::uint64_t delta = 1);

  /// Set the named gauge; shards merge by maximum on collect.
  void gauge(std::string_view name, double value);

  /// Add one timed interval to the named span.
  void span_add(std::string_view name, double seconds);

  /// Merge every shard into one snapshot. Safe to call while other threads
  /// keep recording (each shard is locked briefly in turn); the result is
  /// then at least as new as the last update that happened-before the call.
  [[nodiscard]] Snapshot collect() const;

  /// RAII wall-clock span: records into `metrics` (when non-null) at
  /// destruction. `name` must outlive the timer (string literals do).
  class SpanTimer {
   public:
    SpanTimer(Metrics* metrics, const char* name)
        : metrics_(metrics), name_(name) {}
    SpanTimer(const SpanTimer&) = delete;
    SpanTimer& operator=(const SpanTimer&) = delete;
    ~SpanTimer() {
      if (metrics_ != nullptr) metrics_->span_add(name_, timer_.seconds());
    }

   private:
    Metrics* metrics_;
    const char* name_;
    Timer timer_;
  };

 private:
  /// Enough shards that concurrent lanes rarely hash-collide; padding keeps
  /// neighbouring shard mutexes off one cache line.
  static constexpr std::size_t kShards = 16;
  struct alignas(64) Shard {
    mutable std::mutex mutex;
    std::unordered_map<std::string, std::uint64_t> counters;
    std::unordered_map<std::string, double> gauges;
    std::unordered_map<std::string, Snapshot::Span> spans;
  };

  [[nodiscard]] Shard& local_shard();

  std::array<Shard, kShards> shards_;
};

// Null-safe helpers — the convention at every instrumentation site. With no
// registry attached each is a single pointer test.
inline void count(Metrics* metrics, std::string_view name,
                  std::uint64_t delta = 1) {
  if (metrics != nullptr) metrics->add(name, delta);
}
inline void gauge(Metrics* metrics, std::string_view name, double value) {
  if (metrics != nullptr) metrics->gauge(name, value);
}
inline void span_add(Metrics* metrics, std::string_view name, double seconds) {
  if (metrics != nullptr) metrics->span_add(name, seconds);
}

}  // namespace subg::obs
