#include "extract/extract.hpp"

#include <algorithm>
#include <optional>
#include <unordered_set>

#include "gemini/gemini.hpp"
#include "match/host_labels.hpp"
#include "obs/metrics.hpp"
#include "session/session.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace subg::extract {

namespace {

/// Copy `pattern`, renaming each port net to the given unique marker name
/// and declaring it global — pinning port identities for an isomorphism
/// test. `swap_a`/`swap_b` (port positions) exchange marker names.
Netlist pin_ports(const Netlist& pattern, std::size_t swap_a,
                  std::size_t swap_b) {
  Netlist out(pattern.catalog_ptr(), pattern.name());
  auto ports = pattern.ports();
  std::vector<std::string> names(pattern.net_count());
  for (std::uint32_t n = 0; n < pattern.net_count(); ++n) {
    names[n] = pattern.net_name(NetId(n));
  }
  for (std::size_t i = 0; i < ports.size(); ++i) {
    std::size_t marker = i;
    if (i == swap_a) marker = swap_b;
    if (i == swap_b) marker = swap_a;
    names[ports[i].index()] = "!pin" + std::to_string(marker);
  }
  for (std::uint32_t n = 0; n < pattern.net_count(); ++n) {
    const NetId id(n);
    NetId nn = out.add_net(names[n]);
    if (pattern.is_global(id) || pattern.is_port(id)) out.mark_global(nn);
  }
  std::vector<NetId> pins;
  for (std::uint32_t d = 0; d < pattern.device_count(); ++d) {
    const DeviceId id(d);
    pins.clear();
    for (NetId pn : pattern.device_pins(id)) pins.push_back(NetId(pn.value));
    out.add_device(pattern.device_type(id), pins);
  }
  return out;
}

}  // namespace

std::vector<std::uint32_t> port_equivalence_classes(const Netlist& pattern) {
  const std::size_t n = pattern.ports().size();
  std::vector<std::uint32_t> parent(n);
  for (std::size_t i = 0; i < n; ++i) parent[i] = static_cast<std::uint32_t>(i);
  auto find = [&](std::uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  };

  const Netlist reference = pin_ports(pattern, n, n);  // no swap
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (find(static_cast<std::uint32_t>(i)) ==
          find(static_cast<std::uint32_t>(j))) {
        continue;
      }
      // Cheap filter: interchangeable ports must at least share a degree.
      if (pattern.net_degree(pattern.ports()[i]) !=
          pattern.net_degree(pattern.ports()[j])) {
        continue;
      }
      Netlist swapped = pin_ports(pattern, i, j);
      if (compare_netlists(reference, swapped).isomorphic) {
        parent[find(static_cast<std::uint32_t>(j))] =
            find(static_cast<std::uint32_t>(i));
      }
    }
  }

  std::vector<std::uint32_t> classes(n);
  std::vector<std::uint32_t> dense(n, 0xFFFFFFFFu);
  std::uint32_t next = 0;
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t root = find(static_cast<std::uint32_t>(i));
    if (dense[root] == 0xFFFFFFFFu) dense[root] = next++;
    classes[i] = dense[root];
  }
  return classes;
}

std::shared_ptr<const DeviceCatalog> extended_catalog(
    const DeviceCatalog& base, const std::vector<LibraryCell>& cells) {
  auto cat = std::make_shared<DeviceCatalog>();
  for (const DeviceTypeInfo& t : base.types()) {
    std::vector<PinSpec> pins = t.pins;
    cat->add_type(t.name, std::move(pins));
  }
  for (const LibraryCell& cell : cells) {
    SUBG_CHECK_MSG(!cat->find(cell.name).has_value(),
                   "library cell '" << cell.name
                                    << "' collides with an existing type");
    std::vector<std::uint32_t> classes = port_equivalence_classes(cell.pattern);
    std::vector<PinSpec> pins;
    auto ports = cell.pattern.ports();
    for (std::size_t i = 0; i < ports.size(); ++i) {
      pins.push_back(PinSpec{cell.pattern.net_name(ports[i]),
                             "c" + std::to_string(classes[i])});
    }
    SUBG_CHECK_MSG(!pins.empty(),
                   "library cell '" << cell.name << "' has no ports");
    cat->add_type(cell.name, std::move(pins));
  }
  return cat;
}

Netlist clone_netlist(const Netlist& source,
                      std::shared_ptr<const DeviceCatalog> catalog) {
  Netlist out(std::move(catalog), source.name());
  for (std::uint32_t n = 0; n < source.net_count(); ++n) {
    const NetId id(n);
    NetId nn = out.add_net(source.net_name(id));
    if (source.is_global(id)) out.mark_global(nn);
    if (source.is_port(id)) out.mark_port(nn);
  }
  std::vector<NetId> pins;
  for (std::uint32_t d = 0; d < source.device_count(); ++d) {
    const DeviceId id(d);
    pins.clear();
    for (NetId pn : source.device_pins(id)) pins.push_back(NetId(pn.value));
    out.add_device(out.catalog().require(source.device_type_info(id).name), pins,
                   source.device_name(id));
  }
  return out;
}

ExtractResult extract_gates(const Netlist& transistors,
                            const std::vector<LibraryCell>& cells,
                            const ExtractOptions& options) {
  auto catalog = extended_catalog(transistors.catalog(), cells);

  // Processing order: the subcircuit partial order approximated by
  // descending size (ties by name for determinism).
  std::vector<const LibraryCell*> order;
  order.reserve(cells.size());
  for (const LibraryCell& c : cells) order.push_back(&c);
  if (options.largest_first) {
    std::stable_sort(order.begin(), order.end(),
                     [](const LibraryCell* a, const LibraryCell* b) {
                       if (a->pattern.device_count() != b->pattern.device_count()) {
                         return a->pattern.device_count() > b->pattern.device_count();
                       }
                       return a->name < b->name;
                     });
  }

  ExtractResult result{clone_netlist(transistors, catalog), {}, {}};
  Netlist& working = result.netlist;
  result.report.devices_before = working.device_count();

  // Resolve the shared pool for the sweep. The same pool drives (a)
  // concurrent per-cell matches within a size tier and (b) each match's own
  // Phase I relabeling / Phase II candidate parallelism, so the lane count
  // is bounded by jobs regardless of nesting.
  ThreadPool* pool = options.match.pool;
  std::optional<ThreadPool> owned_pool;
  const std::size_t jobs =
      pool != nullptr ? pool->thread_count()
                      : (options.match.jobs == 0 ? ThreadPool::default_jobs()
                                                 : options.match.jobs);
  if (pool == nullptr && jobs > 1) {
    owned_pool.emplace(jobs);
    pool = &*owned_pool;
  }
  if (jobs <= 1) pool = nullptr;
  obs::Metrics* metrics = options.match.metrics;
  if (metrics != nullptr && pool != nullptr) pool->enable_timing();

  // Lint preflight: a host with structural defects (floating gates, rail
  // shorts) produces matches that LOOK valid but extract garbage; errors
  // cancel the sweep before any replacement, warnings only inform.
  bool lint_cancelled = false;
  if (options.lint_host) {
    lint::LintOptions lo = options.lint;
    lo.pattern_checks = false;
    if (lo.metrics == nullptr) lo.metrics = metrics;
    result.host_lint = lint::lint_netlist(transistors, lo);
    if (result.host_lint.has_errors()) {
      lint_cancelled = true;
      result.report.cells_skipped = order.size();
      obs::count(metrics, "extract.cells_skipped", result.report.cells_skipped);
      result.report.status.escalate(
          RunOutcome::kCancelled,
          "extract: host netlist failed the lint preflight (" +
              std::to_string(result.host_lint.errors) +
              " error(s)); extraction skipped");
    }
  }

  std::uint64_t gate_serial = 0;
  std::size_t oi = 0;
  while (!lint_cancelled && oi < order.size()) {
    RunOutcome why;
    if (options.match.budget.interrupted(&why)) {
      result.report.cells_skipped = order.size() - oi;
      obs::count(metrics, "extract.cells_skipped", result.report.cells_skipped);
      result.report.status.escalate(
          why, std::string("extract: ") + to_string(why) + " before cell '" +
                   order[oi]->name + "'; " +
                   std::to_string(result.report.cells_skipped) +
                   " cell(s) skipped");
      break;
    }

    // Size tier: the largest-first partial order only constrains cells of
    // DIFFERENT sizes (a cell cannot be a proper subcircuit of an
    // equal-sized one), so equal-sized cells match independently against
    // one host snapshot — concurrently when a pool is available — and their
    // replacements apply serially in cell order afterwards. Tier batching
    // is used for every jobs value, so reports are identical across jobs.
    std::size_t tier_end = oi + 1;
    if (options.largest_first) {
      while (tier_end < order.size() &&
             order[tier_end]->pattern.device_count() ==
                 order[oi]->pattern.device_count()) {
        ++tier_end;
      }
    }
    const std::size_t tier_size = tier_end - oi;

    // One session snapshot (graph + csr core + label cache) shared by
    // every match in the tier.
    obs::Metrics::SpanTimer tier_span(metrics, "extract.tier");
    obs::count(metrics, "extract.tiers");
    obs::count(metrics, "extract.cells_attempted", tier_size);
    SessionOptions tier_so;
    tier_so.core = options.match.core;
    HostSession tier_session = HostSession::build(working, tier_so);
    if (const CsrCore* core = tier_session.core()) {
      obs::span_add(metrics, "csr.build_seconds", core->build_seconds());
      if (metrics != nullptr) {
        metrics->gauge("csr.bytes", static_cast<double>(core->bytes()));
      }
    }
    struct CellMatch {
      MatchReport report;
      double seconds = 0;
    };
    std::vector<CellMatch> tier(tier_size);
    auto run_cell = [&](std::size_t ti) {
      Timer match_timer;
      MatchOptions mo = options.match;
      tier_session.configure(mo);
      mo.pool = pool;
      SubgraphMatcher matcher(order[oi + ti]->pattern, tier_session.graph(),
                              mo);
      tier[ti].report = matcher.find_all();
      tier[ti].seconds = match_timer.seconds();
    };
    if (pool != nullptr && tier_size > 1) {
      pool->parallel_for(tier_size, 1,
                         [&](std::size_t begin, std::size_t end) {
                           for (std::size_t ti = begin; ti < end; ++ti) {
                             run_cell(ti);
                           }
                         });
    } else {
      for (std::size_t ti = 0; ti < tier_size; ++ti) run_cell(ti);
    }

    // Apply replacements serially in cell order. Device ids in every
    // instance refer to the tier-start snapshot, so victims accumulate
    // across the tier and are removed in one compaction at the end.
    std::unordered_set<std::uint32_t> claimed;
    std::vector<DeviceId> victims;
    std::vector<NetId> pins;
    for (std::size_t ti = 0; ti < tier_size; ++ti) {
      const LibraryCell* cell = order[oi + ti];
      ExtractReport::PerCell per;
      per.cell = cell->name;
      per.outcome = tier[ti].report.status.outcome;
      per.infeasible = tier[ti].report.infeasible_shortcuts != 0;
      result.report.infeasible_shortcuts += tier[ti].report.infeasible_shortcuts;
      result.report.status.merge(tier[ti].report.status);

      // Greedy non-overlapping acceptance; `claimed` spans the whole tier
      // so an earlier cell's replacements exclude later cells' overlaps.
      const DeviceTypeId gate_type = working.catalog().require(cell->name);
      std::size_t cell_victims = 0;
      for (const SubcircuitInstance& inst : tier[ti].report.instances) {
        bool free = true;
        for (DeviceId d : inst.device_image) {
          if (claimed.contains(d.value)) {
            free = false;
            break;
          }
        }
        if (!free) continue;
        for (DeviceId d : inst.device_image) claimed.insert(d.value);
        pins.clear();
        for (NetId port : cell->pattern.ports()) {
          pins.push_back(inst.net_image[port.index()]);
        }
        working.add_device(gate_type, pins,
                           cell->name + "_" + std::to_string(gate_serial++));
        for (DeviceId d : inst.device_image) victims.push_back(d);
        ++per.instances;
        cell_victims += inst.device_image.size();
      }
      per.devices_replaced = cell_victims;
      per.seconds = tier[ti].seconds;
      obs::count(metrics, "extract.instances", per.instances);
      obs::count(metrics, "extract.devices_removed", cell_victims);
      if (per.instances > 0) obs::count(metrics, "extract.cells_matched");
      result.report.cells.push_back(std::move(per));
      SUBG_DEBUG("extract: " << cell->name << " x" << per.instances);
    }
    working.remove_devices(victims);
    // The tier's shared label cache dies here; fold its reuse totals in
    // (matches in the tier skip recording for caller-shared caches).
    record_cache_stats(metrics, tier_session.cache().stats());
    oi = tier_end;
  }

  result.report.devices_after = working.device_count();
  if (metrics != nullptr) {
    metrics->add("extract.runs");
    metrics->gauge("extract.devices_before",
                   static_cast<double>(result.report.devices_before));
    metrics->gauge("extract.devices_after",
                   static_cast<double>(result.report.devices_after));
    if (owned_pool.has_value()) {
      const ThreadPool::Stats ps = owned_pool->stats();
      metrics->add("pool.tasks", ps.tasks);
      metrics->add("pool.chunks", ps.chunks);
      metrics->add("pool.chunks_steal_free", ps.caller_chunks);
      metrics->span_add("pool.busy", ps.busy_seconds);
    }
  }
  std::unordered_set<std::string> cell_names;
  for (const LibraryCell& c : cells) cell_names.insert(c.name);
  for (std::uint32_t d = 0; d < working.device_count(); ++d) {
    if (!cell_names.contains(working.device_type_info(DeviceId(d)).name)) {
      ++result.report.unextracted_primitives;
    }
  }
  return result;
}

ExtractResult extract_gates(HostSession& session,
                            const std::vector<LibraryCell>& cells,
                            const ExtractOptions& options) {
  // Extraction re-clones the host onto the extended catalog and mutates it
  // tier by tier, so the session's own graph/core/cache cannot be matched
  // against directly: the sweep builds its per-tier snapshot sessions. This
  // overload is the session-first entry point for callers (CLI, serve) that
  // keep the host in a HostSession for ECO patching.
  return extract_gates(session.netlist(), cells, options);
}

Netlist expand_gates(const Netlist& gates, const std::vector<LibraryCell>& cells,
                     std::shared_ptr<const DeviceCatalog> catalog) {
  Netlist out(catalog, gates.name());
  for (std::uint32_t n = 0; n < gates.net_count(); ++n) {
    const NetId id(n);
    NetId nn = out.add_net(gates.net_name(id));
    if (gates.is_global(id)) out.mark_global(nn);
    if (gates.is_port(id)) out.mark_port(nn);
  }

  std::uint64_t serial = 0;
  std::vector<NetId> pins;
  for (std::uint32_t d = 0; d < gates.device_count(); ++d) {
    const DeviceId id(d);
    const std::string& tname = gates.device_type_info(id).name;
    const LibraryCell* cell = nullptr;
    for (const LibraryCell& c : cells) {
      if (c.name == tname) {
        cell = &c;
        break;
      }
    }
    if (cell == nullptr) {
      // Primitive: copy through.
      pins.clear();
      for (NetId pn : gates.device_pins(id)) pins.push_back(NetId(pn.value));
      out.add_device(out.catalog().require(tname), pins, gates.device_name(id));
      continue;
    }
    // Instantiate the cell's transistors; ports bind to the gate's pins,
    // internal nets get fresh names.
    const Netlist& pat = cell->pattern;
    auto gpins = gates.device_pins(id);
    SUBG_CHECK(gpins.size() == pat.ports().size());
    std::vector<NetId> net_map(pat.net_count(), NetId());
    for (std::size_t p = 0; p < gpins.size(); ++p) {
      net_map[pat.ports()[p].index()] = NetId(gpins[p].value);
    }
    const std::string prefix = "x" + std::to_string(serial++) + "/";
    for (std::uint32_t n = 0; n < pat.net_count(); ++n) {
      const NetId pn(n);
      if (net_map[n].valid()) continue;
      if (pat.is_global(pn)) {
        NetId g = out.ensure_net(pat.net_name(pn));
        out.mark_global(g);
        net_map[n] = g;
      } else {
        net_map[n] = out.add_net(prefix + pat.net_name(pn));
      }
    }
    for (std::uint32_t pd = 0; pd < pat.device_count(); ++pd) {
      const DeviceId pid(pd);
      pins.clear();
      for (NetId pn : pat.device_pins(pid)) pins.push_back(net_map[pn.index()]);
      out.add_device(out.catalog().require(pat.device_type_info(pid).name), pins,
                     prefix + pat.device_name(pid));
    }
  }
  return out;
}

}  // namespace subg::extract
