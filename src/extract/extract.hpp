// Gate extraction: convert a transistor netlist into a gate netlist by
// repeatedly finding library subcircuits and replacing each instance with a
// single higher-level device — the paper's flagship application (§I).
//
// Cells are processed in the subcircuit partial order (largest first, §IV.A:
// "one would first extract the largest gates which are not subcircuits of
// any other gates and then proceed to smaller and smaller gates"), so a
// NAND's pullup/stack pair is not misextracted as an inverter. Overlapping
// matches are resolved greedily: an instance is accepted only if none of
// its transistors is already claimed.
//
// Equal-sized cells form a SIZE TIER: the partial order only constrains
// cells of different sizes, so a tier's cells all match against one host
// snapshot (sharing its CircuitGraph and HostLabelCache) — concurrently
// when match.jobs > 1 — and their replacements then apply serially in cell
// order, with the greedy claimed-set spanning the tier. Tier semantics are
// used at every jobs value, so extraction results are identical whether the
// sweep runs on one lane or many.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "lint/lint.hpp"
#include "match/matcher.hpp"
#include "netlist/netlist.hpp"

namespace subg {
class HostSession;  // session/session.hpp
}

namespace subg::extract {

/// One library entry: the pattern netlist (ports marked, rails global) and
/// the name of the device type each found instance becomes.
struct LibraryCell {
  std::string name;
  Netlist pattern;
};

struct ExtractOptions {
  /// Sort cells by descending transistor count before extracting. Disable
  /// to process in the given order (ablation: shows Fig 7-style
  /// misextraction when inverters run first).
  bool largest_first = true;
  /// match.budget governs the WHOLE sweep: it is polled between cells and
  /// threaded into every per-cell match. An interrupted sweep keeps the
  /// replacements already made (each is individually verified) and reports
  /// the skipped cells in the report status.
  MatchOptions match;
  /// Lint the host netlist before the sweep (CLI --lint). Findings land in
  /// ExtractResult::host_lint; lint ERRORS cancel the sweep outright (a
  /// floating gate or rail short makes every match suspect), while
  /// warnings only inform.
  bool lint_host = false;
  /// Knobs for the preflight when lint_host is set. pattern_checks is
  /// forced off (a host netlist owes nobody connected ports).
  lint::LintOptions lint;
};

struct ExtractReport {
  struct PerCell {
    std::string cell;
    std::size_t instances = 0;
    std::size_t devices_replaced = 0;
    /// How this cell's match sweep ended; anything but kComplete means the
    /// netlist may contain unextracted instances of this cell.
    RunOutcome outcome = RunOutcome::kComplete;
    /// True when the pre-search analyzer proved this cell cannot occur in
    /// the host and its search was skipped (zero instances, exact).
    bool infeasible = false;
    double seconds = 0;
  };
  std::vector<PerCell> cells;
  std::size_t devices_before = 0;
  std::size_t devices_after = 0;
  /// Primitive (transistor-level) devices the library could not explain.
  std::size_t unextracted_primitives = 0;
  /// Library cells never attempted because the sweep was interrupted first.
  std::size_t cells_skipped = 0;
  /// Per-cell searches skipped because an infeasibility certificate proved
  /// them matchless (summed across tiers; see MatchReport).
  std::size_t infeasible_shortcuts = 0;
  /// Aggregate outcome over the whole sweep (worst per-cell outcome, plus
  /// skipped-work counters folded in from every match).
  RunStatus status;
};

struct ExtractResult {
  Netlist netlist;  ///< gate-level netlist (extended catalog)
  ExtractReport report;
  /// Preflight findings (empty unless ExtractOptions::lint_host).
  lint::LintReport host_lint;
};

/// Catalog of `base` plus one device type per cell (pins = the cell's
/// pattern ports). Interchangeable ports — those exchanged by a true
/// structural automorphism of the cell that fixes every other port (a
/// transmission gate's x/y, an SRAM cell's bl/blb, a resistor divider's
/// ends) — share a pin equivalence class. Note that functional
/// commutativity is NOT structural symmetry: NAND inputs stay distinct
/// because a0 always gates the top of the series stack — which is also
/// what makes extraction canonical, so swapped-input instances still
/// extract to isomorphic gate netlists.
[[nodiscard]] std::shared_ptr<const DeviceCatalog> extended_catalog(
    const DeviceCatalog& base, const std::vector<LibraryCell>& cells);

/// Pin equivalence classes of a pattern's ports: result[i] is the class
/// index of port i (dense, by first appearance). Ports are in one class iff
/// swapping them extends to an automorphism fixing the other ports.
[[nodiscard]] std::vector<std::uint32_t> port_equivalence_classes(
    const Netlist& pattern);

/// Rebuild `source` onto another catalog (types resolved by name).
[[nodiscard]] Netlist clone_netlist(const Netlist& source,
                                    std::shared_ptr<const DeviceCatalog> catalog);

/// Extract all library cells from `transistors`.
[[nodiscard]] ExtractResult extract_gates(const Netlist& transistors,
                                          const std::vector<LibraryCell>& cells,
                                          const ExtractOptions& options = {});

/// Session-first entry point: extract from the host a HostSession holds
/// (after any ECO patches). The sweep itself still snapshots per size tier,
/// so this is a thin adapter over the Netlist overload.
[[nodiscard]] ExtractResult extract_gates(HostSession& session,
                                          const std::vector<LibraryCell>& cells,
                                          const ExtractOptions& options = {});

/// Re-expand a gate-level netlist back to transistors using the same
/// library (the inverse of extract_gates up to isomorphism — verified with
/// gemini in the tests).
[[nodiscard]] Netlist expand_gates(const Netlist& gates,
                                   const std::vector<LibraryCell>& cells,
                                   std::shared_ptr<const DeviceCatalog> catalog);

}  // namespace subg::extract
