#include "analyze/analyze.hpp"

#include <algorithm>
#include <limits>
#include <map>
#include <ostream>
#include <set>
#include <utility>

#include "graph/csr_core.hpp"
#include "util/check.hpp"

namespace subg::analyze {

namespace {

std::uint64_t sat_add(std::uint64_t a, std::uint64_t b) {
  const std::uint64_t s = a + b;
  return s < a ? std::numeric_limits<std::uint64_t>::max() : s;
}

// --- automorphism search ---------------------------------------------------

/// Backtracking enumerator over WL-pruned candidate classes. Work is
/// bounded by max_search_nodes assignments and max_automorphisms results;
/// either cap marks the group incomplete (a sound under-approximation).
class AutomorphismSearch {
 public:
  AutomorphismSearch(const CircuitGraph& g, const Netlist& netlist,
                     const AnalyzeOptions& options)
      : g_(g), nl_(netlist), options_(options) {}

  Orbits run() {
    const std::size_t n = g_.vertex_count();
    Orbits out;
    out.orbit_of.resize(n);
    for (Vertex v = 0; v < n; ++v) out.orbit_of[v] = v;
    if (n == 0) return out;

    labels_ = canon::refined_labels(g_, nl_, options_.canon);
    perm_.assign(n, kUnassigned);
    used_.assign(n, false);

    // Assignment order: most-constrained (smallest WL class) first, ties by
    // vertex index — deterministic and it fails early on asymmetric parts.
    std::map<Label, std::size_t> class_size;
    for (Label l : labels_) ++class_size[l];
    order_.resize(n);
    for (Vertex v = 0; v < n; ++v) order_[v] = v;
    std::stable_sort(order_.begin(), order_.end(), [&](Vertex a, Vertex b) {
      return class_size[labels_[a]] < class_size[labels_[b]];
    });

    extend(0, out);

    // Fold the found automorphisms into orbits (union by minimum).
    for (const std::vector<Vertex>& sigma : out.automorphisms) {
      for (Vertex v = 0; v < n; ++v) {
        Vertex a = find(out.orbit_of, v);
        Vertex b = find(out.orbit_of, sigma[v]);
        if (a != b) out.orbit_of[std::max(a, b)] = std::min(a, b);
      }
    }
    for (Vertex v = 0; v < n; ++v) {
      out.orbit_of[v] = find(out.orbit_of, v);
    }
    out.complete = !truncated_;
    return out;
  }

 private:
  static constexpr Vertex kUnassigned = 0xFFFFFFFFu;

  static Vertex find(std::vector<Vertex>& parent, Vertex v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  }

  [[nodiscard]] bool vertex_compatible(Vertex v, Vertex w) const {
    if (labels_[v] != labels_[w]) return false;
    if (g_.is_device(v) != g_.is_device(w)) return false;
    if (g_.degree(v) != g_.degree(w)) return false;
    if (g_.is_device(v)) {
      return nl_.device_type(g_.device_of(v)) == nl_.device_type(g_.device_of(w));
    }
    const NetId nv = g_.net_of(v);
    const NetId nw = g_.net_of(w);
    // Globals are matched by name everywhere else, so an automorphism must
    // fix them; ports must stay ports (the matcher treats them differently).
    if (nl_.is_global(nv) || nl_.is_global(nw)) return v == w;
    return nl_.is_port(nv) == nl_.is_port(nw);
  }

  /// Partial consistency: every already-mapped neighbor of v must be a
  /// neighbor of w with the same per-coefficient multiplicity.
  [[nodiscard]] bool edges_consistent(Vertex v, Vertex w) const {
    for (const auto& ev : g_.edges(v)) {
      if (perm_[ev.to] == kUnassigned) continue;
      std::size_t want = 0;
      for (const auto& e2 : g_.edges(v)) {
        if (e2.to == ev.to && e2.coefficient == ev.coefficient) ++want;
      }
      std::size_t have = 0;
      for (const auto& ew : g_.edges(w)) {
        if (ew.to == perm_[ev.to] && ew.coefficient == ev.coefficient) ++have;
      }
      if (want != have) return false;
    }
    return true;
  }

  /// Full check at a leaf: the permutation preserves every edge multiset
  /// with coefficients (degrees already matched pairwise).
  [[nodiscard]] bool is_automorphism() const {
    std::vector<std::pair<Vertex, Label>> a;
    std::vector<std::pair<Vertex, Label>> b;
    for (Vertex v = 0; v < g_.vertex_count(); ++v) {
      a.clear();
      b.clear();
      for (const auto& e : g_.edges(v)) {
        a.emplace_back(perm_[e.to], e.coefficient);
      }
      for (const auto& e : g_.edges(perm_[v])) {
        b.emplace_back(e.to, e.coefficient);
      }
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      if (a != b) return false;
    }
    return true;
  }

  void extend(std::size_t depth, Orbits& out) {
    if (truncated_) return;
    if (depth == order_.size()) {
      bool identity = true;
      for (Vertex v = 0; v < g_.vertex_count(); ++v) {
        if (perm_[v] != v) {
          identity = false;
          break;
        }
      }
      if (!identity && is_automorphism()) {
        out.automorphisms.push_back(perm_);
        if (out.automorphisms.size() + 1 >= options_.max_automorphisms) {
          truncated_ = true;
        }
      }
      return;
    }
    const Vertex v = order_[depth];
    for (Vertex w = 0; w < g_.vertex_count(); ++w) {
      if (used_[w] || !vertex_compatible(v, w)) continue;
      if (++nodes_ > options_.max_search_nodes) {
        truncated_ = true;
        return;
      }
      if (!edges_consistent(v, w)) continue;
      perm_[v] = w;
      used_[w] = true;
      extend(depth + 1, out);
      perm_[v] = kUnassigned;
      used_[w] = false;
      if (truncated_) return;
    }
  }

  const CircuitGraph& g_;
  const Netlist& nl_;
  const AnalyzeOptions& options_;
  std::vector<Label> labels_;
  std::vector<Vertex> perm_;
  std::vector<bool> used_;
  std::vector<Vertex> order_;
  std::size_t nodes_ = 0;
  bool truncated_ = false;
};

// --- path-label DP ---------------------------------------------------------

/// Adjacency access shared by the CircuitGraph and CsrCore builders: both
/// expose the same vertices, degrees, special flags, and neighbor multisets,
/// so the resulting counts are bit-identical across cores.
struct GraphAdjacency {
  const CircuitGraph& g;
  [[nodiscard]] std::size_t vertex_count() const { return g.vertex_count(); }
  [[nodiscard]] std::size_t degree(Vertex v) const { return g.degree(v); }
  [[nodiscard]] bool is_special(Vertex v) const { return g.is_special(v); }
  template <typename F>
  void for_each_neighbor(Vertex v, F&& f) const {
    for (const auto& e : g.edges(v)) f(e.to);
  }
};

struct CoreAdjacency {
  const CsrCore& core;
  std::size_t vertexes;
  [[nodiscard]] std::size_t vertex_count() const { return vertexes; }
  [[nodiscard]] std::size_t degree(Vertex v) const {
    return core.degree(v);
  }
  [[nodiscard]] bool is_special(Vertex v) const { return core.is_special(v); }
  template <typename F>
  void for_each_neighbor(Vertex v, F&& f) const {
    for (const Vertex to : core.neighbors(v)) f(to);
  }
};

template <typename Adjacency>
void count_closed_walks(const Adjacency& adj, const Netlist& netlist,
                        std::size_t device_count, Side side,
                        const AnalyzeOptions& options, Vertex anchor,
                        std::uint64_t* out_counts,
                        std::vector<std::uint64_t>& cur,
                        std::vector<std::uint64_t>& nxt,
                        std::vector<Vertex>& frontier,
                        std::vector<Vertex>& next_frontier) {
  const std::size_t classes = PathLabels::kTrackedDegrees.size();
  const auto net_allowed = [&](Vertex v, std::uint32_t d) {
    if (adj.degree(v) != d) return false;
    if (side == Side::kPattern) {
      // Pattern walks stay on internal non-global nets: their host images
      // are induced (exact degree), so the injection into host walks of the
      // same class is guaranteed. Host walks impose no such restriction —
      // the host count must upper-bound every possible image.
      if (adj.is_special(v)) return false;
      if (netlist.is_port(NetId(static_cast<std::uint32_t>(
              v - device_count)))) {
        return false;
      }
    }
    return true;
  };

  for (std::size_t c = 0; c < classes; ++c) {
    const std::uint32_t d = PathLabels::kTrackedDegrees[c];
    const bool anchor_is_net = anchor >= device_count;
    if (anchor_is_net && !net_allowed(anchor, d)) {
      out_counts[c] = 0;
      continue;
    }
    frontier.clear();
    frontier.push_back(anchor);
    cur[anchor] = 1;
    for (std::size_t step = 0; step < options.walk_steps; ++step) {
      next_frontier.clear();
      for (const Vertex v : frontier) {
        const std::uint64_t val = cur[v];
        adj.for_each_neighbor(v, [&](Vertex w) {
          if (w >= device_count && !net_allowed(w, d)) return;
          if (nxt[w] == 0) next_frontier.push_back(w);
          nxt[w] = sat_add(nxt[w], val);
        });
      }
      for (const Vertex v : frontier) cur[v] = 0;
      cur.swap(nxt);
      frontier.swap(next_frontier);
    }
    out_counts[c] = cur[anchor];
    for (const Vertex v : frontier) cur[v] = 0;
  }
}

template <typename Adjacency>
PathLabels build_labels(const Adjacency& adj, const Netlist& netlist,
                        Side side, const AnalyzeOptions& options) {
  SUBG_CHECK_MSG(options.walk_steps % 2 == 0,
                 "path-label walk length must be even (bipartite closure)");
  const std::size_t n = adj.vertex_count();
  const std::size_t classes = PathLabels::kTrackedDegrees.size();
  PathLabels out;
  out.walk_steps = options.walk_steps;
  out.vertex_count = n;
  out.counts.assign(n * classes, 0);
  std::vector<std::uint64_t> cur(n, 0);
  std::vector<std::uint64_t> nxt(n, 0);
  std::vector<Vertex> frontier;
  std::vector<Vertex> next_frontier;
  for (Vertex v = 0; v < n; ++v) {
    count_closed_walks(adj, netlist, netlist.device_count(), side, options, v,
                       out.counts.data() + v * classes, cur, nxt, frontier,
                       next_frontier);
  }
  return out;
}

}  // namespace

// --- orbits ----------------------------------------------------------------

std::size_t Orbits::orbit_count() const {
  std::size_t n = 0;
  for (Vertex v = 0; v < orbit_of.size(); ++v) {
    if (orbit_of[v] == v) ++n;
  }
  return n;
}

std::size_t Orbits::nontrivial_orbit_count() const {
  std::map<Vertex, std::size_t> sizes;
  for (Vertex rep : orbit_of) ++sizes[rep];
  std::size_t n = 0;
  for (const auto& [rep, size] : sizes) {
    if (size > 1) ++n;
  }
  return n;
}

Orbits find_orbits(const CircuitGraph& g, const Netlist& netlist,
                   const AnalyzeOptions& options) {
  return AutomorphismSearch(g, netlist, options).run();
}

// --- path labels -----------------------------------------------------------

PathLabels build_path_labels(const CircuitGraph& g, const Netlist& netlist,
                             Side side, const AnalyzeOptions& options) {
  return build_labels(GraphAdjacency{g}, netlist, side, options);
}

PathLabels build_path_labels(const CsrCore& core, const Netlist& netlist,
                             Side side, const AnalyzeOptions& options) {
  return build_labels(
      CoreAdjacency{core, core.graph().vertex_count()}, netlist, side,
      options);
}

PathLabels rebase_path_labels(const PathLabels& old_labels,
                              const CircuitGraph& new_graph,
                              const Netlist& netlist,
                              const std::vector<Vertex>& new_to_old,
                              const std::vector<Vertex>& dirty_seed,
                              const AnalyzeOptions& options) {
  SUBG_CHECK_MSG(old_labels.walk_steps == options.walk_steps,
                 "path-label rebase with mismatched walk length");
  const std::size_t n = new_graph.vertex_count();
  const std::size_t classes = PathLabels::kTrackedDegrees.size();
  PathLabels out;
  out.walk_steps = options.walk_steps;
  out.vertex_count = n;
  out.counts.assign(n * classes, 0);

  // The dirty cone: every anchor within walk_steps hops of a seed (its
  // radius-L ball saw an edge/degree/flag change), plus fresh vertices.
  std::vector<bool> dirty(n, false);
  std::vector<Vertex> frontier;
  for (Vertex v : dirty_seed) {
    if (v < n && !dirty[v]) {
      dirty[v] = true;
      frontier.push_back(v);
    }
  }
  for (Vertex v = 0; v < n; ++v) {
    if (new_to_old[v] == kNoPredecessor && !dirty[v]) {
      dirty[v] = true;
      frontier.push_back(v);
    }
  }
  std::vector<Vertex> next;
  for (std::size_t hop = 0; hop < options.walk_steps && !frontier.empty();
       ++hop) {
    next.clear();
    for (const Vertex v : frontier) {
      for (const auto& e : new_graph.edges(v)) {
        if (!dirty[e.to]) {
          dirty[e.to] = true;
          next.push_back(e.to);
        }
      }
    }
    frontier.swap(next);
  }

  std::vector<std::uint64_t> cur(n, 0);
  std::vector<std::uint64_t> nxt(n, 0);
  std::vector<Vertex> walk_frontier;
  std::vector<Vertex> walk_next;
  const GraphAdjacency adj{new_graph};
  for (Vertex v = 0; v < n; ++v) {
    if (!dirty[v]) {
      const Vertex old = new_to_old[v];
      for (std::size_t c = 0; c < classes; ++c) {
        out.counts[v * classes + c] = old_labels.counts[old * classes + c];
      }
      continue;
    }
    count_closed_walks(adj, netlist, netlist.device_count(), Side::kHost,
                       options, v, out.counts.data() + v * classes, cur, nxt,
                       walk_frontier, walk_next);
  }
  return out;
}

// --- infeasibility certificates --------------------------------------------

std::optional<Certificate> check_feasibility(const Netlist& pattern,
                                             const Netlist& host) {
  // Rule 1: device-type counts must dominate (every pattern device needs a
  // distinct same-type host device).
  {
    const NetlistStats ps = pattern.stats();
    const NetlistStats hs = host.stats();
    std::map<std::string, std::uint64_t> host_types;
    for (const auto& [type, count] : hs.devices_by_type) {
      host_types[type] = count;
    }
    for (const auto& [type, count] : ps.devices_by_type) {
      const auto it = host_types.find(type);
      const std::uint64_t have = it == host_types.end() ? 0 : it->second;
      if (count > have) {
        Certificate cert;
        cert.rule = "device_type_deficit";
        cert.subject = type;
        cert.pattern_count = count;
        cert.host_count = have;
        cert.detail = "pattern instantiates " + std::to_string(count) + " '" +
                      type + "' device(s) but the host has only " +
                      std::to_string(have);
        return cert;
      }
    }
  }

  // Rule 2: every used pattern global must resolve by name (Phase II
  // refuses the whole search otherwise; this states the reason).
  for (std::uint32_t i = 0; i < pattern.net_count(); ++i) {
    const NetId n(i);
    if (!pattern.is_global(n) || pattern.net_degree(n) == 0) continue;
    if (!host.find_net(pattern.net_name(n)).has_value()) {
      Certificate cert;
      cert.rule = "missing_global_net";
      cert.subject = pattern.net_name(n);
      cert.pattern_count = 1;
      cert.host_count = 0;
      cert.detail = "pattern global net '" + pattern.net_name(n) +
                    "' has no same-named net in the host";
      return cert;
    }
  }

  // Host net-degree histogram, shared by rules 3 and 4.
  std::map<std::uint64_t, std::uint64_t> host_degrees;
  std::vector<std::uint64_t> host_degree_list;
  host_degree_list.reserve(host.net_count());
  for (std::uint32_t i = 0; i < host.net_count(); ++i) {
    const std::uint64_t d = host.net_degree(NetId(i));
    ++host_degrees[d];
    host_degree_list.push_back(d);
  }

  // Rule 3: internal (non-port, non-global) pattern nets are induced — each
  // needs its own host net of exactly its degree.
  std::map<std::uint64_t, std::uint64_t> internal_degrees;
  for (std::uint32_t i = 0; i < pattern.net_count(); ++i) {
    const NetId n(i);
    if (pattern.is_global(n) || pattern.is_port(n)) continue;
    ++internal_degrees[pattern.net_degree(n)];
  }
  for (const auto& [degree, count] : internal_degrees) {
    const auto it = host_degrees.find(degree);
    const std::uint64_t have = it == host_degrees.end() ? 0 : it->second;
    if (count > have) {
      Certificate cert;
      cert.rule = "internal_net_degree_deficit";
      cert.degree = degree;
      cert.pattern_count = count;
      cert.host_count = have;
      cert.detail = "pattern has " + std::to_string(count) +
                    " internal net(s) of degree " + std::to_string(degree) +
                    " but the host has only " + std::to_string(have) +
                    " net(s) of that exact degree";
      return cert;
    }
  }

  // Rule 4: port nets only need host degree >=, so sorted-descending greedy
  // assignment is exact for the one-sided constraint.
  std::vector<std::uint64_t> port_degrees;
  for (const NetId n : pattern.ports()) {
    if (pattern.is_global(n)) continue;
    port_degrees.push_back(pattern.net_degree(n));
  }
  std::sort(port_degrees.rbegin(), port_degrees.rend());
  std::sort(host_degree_list.rbegin(), host_degree_list.rend());
  for (std::size_t k = 0; k < port_degrees.size(); ++k) {
    if (k >= host_degree_list.size() || host_degree_list[k] < port_degrees[k]) {
      Certificate cert;
      cert.rule = "port_net_degree_deficit";
      cert.degree = port_degrees[k];
      cert.pattern_count = k + 1;
      cert.host_count =
          k < host_degree_list.size() ? host_degree_list[k] : 0;
      cert.detail = "pattern needs " + std::to_string(k + 1) +
                    " distinct host net(s) of degree >= " +
                    std::to_string(port_degrees[k]) +
                    " for its ports; the host cannot supply them";
      return cert;
    }
  }

  return std::nullopt;
}

// --- combined report -------------------------------------------------------

AnalysisReport analyze(const Netlist& pattern, const Netlist* host,
                       const AnalyzeOptions& options) {
  AnalysisReport report;
  report.pattern_devices = pattern.device_count();
  report.pattern_nets = pattern.net_count();
  report.walk_steps = options.walk_steps;

  const CircuitGraph g(pattern);
  const Orbits orbits = find_orbits(g, pattern, options);
  report.orbit_count = orbits.orbit_count();
  report.nontrivial_orbit_count = orbits.nontrivial_orbit_count();
  report.automorphism_count = orbits.automorphisms.size();
  report.automorphisms_complete = orbits.complete;
  std::map<Vertex, std::vector<Vertex>> members;
  for (Vertex v = 0; v < orbits.orbit_of.size(); ++v) {
    members[orbits.orbit_of[v]].push_back(v);
  }
  for (const auto& [rep, group] : members) {
    if (group.size() < 2) continue;
    std::vector<std::string> names;
    names.reserve(group.size());
    for (const Vertex v : group) names.push_back(g.vertex_name(v));
    report.orbits.push_back(std::move(names));
  }

  const PathLabels paths =
      build_path_labels(g, pattern, Side::kPattern, options);
  std::set<std::vector<std::uint64_t>> signatures;
  const std::size_t classes = PathLabels::kTrackedDegrees.size();
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    signatures.insert(std::vector<std::uint64_t>(
        paths.counts.begin() + static_cast<std::ptrdiff_t>(v * classes),
        paths.counts.begin() + static_cast<std::ptrdiff_t>((v + 1) * classes)));
  }
  report.path_classes = signatures.size();

  if (host != nullptr) {
    report.host_checked = true;
    report.host_name = host->name();
    report.certificate = check_feasibility(pattern, *host);
  }
  return report;
}

void write_text(const AnalysisReport& report, std::ostream& out) {
  out << "pattern: " << report.pattern_devices << " device(s), "
      << report.pattern_nets << " net(s)\n";
  out << "orbits: " << report.orbit_count << " ("
      << report.nontrivial_orbit_count << " non-trivial), "
      << report.automorphism_count << " non-identity automorphism(s)"
      << (report.automorphisms_complete ? "" : " [truncated]") << "\n";
  for (const std::vector<std::string>& group : report.orbits) {
    out << "  orbit:";
    for (const std::string& name : group) out << ' ' << name;
    out << '\n';
  }
  out << "path labels: walk length " << report.walk_steps << ", "
      << report.path_classes << " distinct signature class(es)\n";
  if (report.host_checked) {
    if (report.certificate.has_value()) {
      const Certificate& cert = *report.certificate;
      out << "host '" << report.host_name
          << "': INFEASIBLE (" << cert.rule << ")\n  " << cert.detail << '\n';
    } else {
      out << "host '" << report.host_name
          << "': no static refutation (search required)\n";
    }
  }
  out.flush();
}

}  // namespace subg::analyze
