// Pre-search static analysis: everything the matcher can know about a
// pattern (and a pattern/host pairing) before Phase I runs.
//
// Three independent layers, each consumed by a different part of the
// matcher and all surfaced together through `subgemini analyze`:
//
//  1. Pattern automorphisms and orbits (find_orbits). Iterated WL
//     refinement (canon::refined_labels) partitions the pattern's vertices
//     into equivalence candidates; a small backtracking search then finds
//     the actual label/kind/port/coefficient-preserving automorphisms.
//     Exhaustive enumeration uses them to suppress automorphic copies of
//     completions it has already recorded (Phase2Stats::symmetry_skips) —
//     sound because the matcher-level device-set dedup collapses exactly
//     those copies anyway.
//
//  2. Supplemental path labels (build_path_labels). Per vertex, the number
//     of closed walks of length `walk_steps` whose net vertices all have
//     degree exactly d, for each tracked degree class d — the
//     path-at-a-time idea (Hassaan & Gouda) specialized to the bipartite
//     circuit graph. Pattern-side walks are restricted to internal
//     non-global nets, whose host images are induced (exactly equal
//     degree, final verification enforces it); an injective embedding maps
//     every such pattern walk to a distinct host walk in the same degree
//     class, so pattern_count > host_count refutes the candidate pair.
//     This kills decoy families the degree-sequence signature cannot see:
//     a 6-ring pattern has closed 12-walks that wrap the ring twice, a
//     12-ring host does not, even though every degree multiset agrees.
//     Counts saturate; saturation is monotone, so the comparison stays
//     sound.
//
//  3. Infeasibility certificates (check_feasibility). Label-histogram /
//     degree-multiset dominance checks that statically prove "this pattern
//     cannot occur in this host" — device-type counts, named global nets,
//     exact-degree coverage for internal nets, greedy lower-bound coverage
//     for ports. A certificate names the violated rule with both counts,
//     so a test (or a user) can re-derive the refutation, and lets
//     find/extract short-circuit the whole search
//     (MatchReport::infeasible_shortcuts).
#pragma once

#include <array>
#include <cstdint>
#include <iosfwd>
#include <optional>
#include <string>
#include <vector>

#include "canon/canon.hpp"
#include "graph/circuit_graph.hpp"
#include "netlist/netlist.hpp"

namespace subg {
class CsrCore;
}  // namespace subg

namespace subg::analyze {

struct AnalyzeOptions {
  /// Closed-walk length in bipartite steps (device→net→…→device); must be
  /// even so walks return to their own side. 12 = six device hops, long
  /// enough to see a 6-ring wrap twice.
  std::size_t walk_steps = 12;
  /// Cap on enumerated automorphisms (identity included). Hitting the cap
  /// marks the group incomplete; suppression with a subset of the group is
  /// still sound, only less effective.
  std::size_t max_automorphisms = 256;
  /// Node budget for the automorphism backtracking search.
  std::size_t max_search_nodes = 1u << 16;
  canon::CanonOptions canon;
};

// --- layer 1: automorphisms / orbits ---------------------------------------

struct Orbits {
  /// orbit_of[v] = smallest vertex in v's orbit (the orbit representative).
  /// Identity partition when no non-trivial automorphism was found.
  std::vector<Vertex> orbit_of;
  /// Non-identity automorphisms, each a full vertex permutation. Bounded by
  /// AnalyzeOptions::max_automorphisms.
  std::vector<std::vector<Vertex>> automorphisms;
  /// False when a cap truncated the search: automorphisms/orbit_of are a
  /// sound under-approximation (never merge vertices wrongly).
  bool complete = true;

  [[nodiscard]] std::size_t orbit_count() const;
  [[nodiscard]] std::size_t nontrivial_orbit_count() const;
};

/// Enumerate the pattern's automorphism group (WL-pruned backtracking) and
/// fold it into orbits. Deterministic.
[[nodiscard]] Orbits find_orbits(const CircuitGraph& g, const Netlist& netlist,
                                 const AnalyzeOptions& options = {});

// --- layer 2: supplemental path labels -------------------------------------

struct PathLabels {
  /// Net-degree classes the walks are restricted to. Rails and buses fall
  /// outside and never dilute the counts.
  static constexpr std::array<std::uint32_t, 3> kTrackedDegrees{2, 3, 4};

  std::size_t walk_steps = 0;
  std::size_t vertex_count = 0;
  /// counts[v * kTrackedDegrees.size() + c] = saturating closed-walk count
  /// anchored at v through class-c nets.
  std::vector<std::uint64_t> counts;

  [[nodiscard]] std::uint64_t count(Vertex v, std::size_t cls) const {
    return counts[v * kTrackedDegrees.size() + cls];
  }

  /// Sound refuter: true ⟹ no embedding maps pattern vertex s onto host
  /// vertex g. Both sides must have been built with equal walk_steps.
  [[nodiscard]] static bool refutes(const PathLabels& pattern, Vertex s,
                                    const PathLabels& host, Vertex g) {
    const std::size_t n = kTrackedDegrees.size();
    for (std::size_t c = 0; c < n; ++c) {
      if (pattern.counts[s * n + c] > host.counts[g * n + c]) return true;
    }
    return false;
  }
};

/// Which side's walk restriction to apply: pattern walks may only use
/// internal (non-port) non-global nets — their images are induced; host
/// walks may use any net of the tracked degree (including rails), so the
/// host count is always an upper bound for images of pattern walks.
enum class Side { kPattern, kHost };

[[nodiscard]] PathLabels build_path_labels(const CircuitGraph& g,
                                           const Netlist& netlist, Side side,
                                           const AnalyzeOptions& options = {});

/// Same labels from the flattened core's spans (identical counts — the csr
/// core holds the same adjacency; sums are order-free).
[[nodiscard]] PathLabels build_path_labels(const CsrCore& core,
                                           const Netlist& netlist, Side side,
                                           const AnalyzeOptions& options = {});

/// Rebase host labels after an ECO patch: anchors whose radius-walk_steps
/// ball cannot have changed copy their old count through the pedigree;
/// anchors inside the dirty cone (within walk_steps hops of any dirty
/// seed, plus fresh vertices) are recomputed on the new graph. The result
/// is bit-identical to a cold build_path_labels over the new graph.
/// new_to_old[v] = old vertex of new vertex v, or kNoPredecessor (fresh).
[[nodiscard]] PathLabels rebase_path_labels(
    const PathLabels& old_labels, const CircuitGraph& new_graph,
    const Netlist& netlist, const std::vector<Vertex>& new_to_old,
    const std::vector<Vertex>& dirty_seed, const AnalyzeOptions& options = {});

inline constexpr Vertex kNoPredecessor = 0xFFFFFFFFu;

// --- layer 3: infeasibility certificates -----------------------------------

struct Certificate {
  /// Violated rule, a closed slug set (consumers branch on it):
  ///   device_type_deficit      pattern instantiates more devices of
  ///                            `subject` than the host has
  ///   missing_global_net       pattern global net `subject` (degree > 0)
  ///                            has no same-named host net
  ///   internal_net_degree_deficit  pattern needs more internal nets of
  ///                            exact degree `degree` than the host holds
  ///   port_net_degree_deficit  no injective assignment of port nets to
  ///                            host nets of degree >= `degree`
  std::string rule;
  /// Device-type or net name, when the rule names one.
  std::string subject;
  /// Degree class, when the rule names one.
  std::uint64_t degree = 0;
  std::uint64_t pattern_count = 0;
  std::uint64_t host_count = 0;
  /// Human sentence restating the four fields above.
  std::string detail;
};

/// Statically prove the pattern cannot occur in the host, or return
/// nullopt (which proves nothing). Every rule is a relaxation of the
/// matcher's own acceptance checks, so a certificate can never refute a
/// host that contains an instance.
[[nodiscard]] std::optional<Certificate> check_feasibility(
    const Netlist& pattern, const Netlist& host);

// --- the combined report (the `subgemini analyze` document) ----------------

struct AnalysisReport {
  // Pattern shape.
  std::size_t pattern_devices = 0;
  std::size_t pattern_nets = 0;
  // Layer 1.
  std::size_t orbit_count = 0;
  std::size_t nontrivial_orbit_count = 0;
  /// Non-identity automorphisms found (group order - 1 when complete).
  std::size_t automorphism_count = 0;
  bool automorphisms_complete = true;
  /// Non-trivial orbits as vertex-name groups, for the text rendering.
  std::vector<std::vector<std::string>> orbits;
  // Layer 2.
  std::size_t walk_steps = 0;
  /// Distinct pattern path-signature tuples — how much the supplemental
  /// labels can discriminate beyond the degree filter.
  std::size_t path_classes = 0;
  // Layer 3 (host given).
  bool host_checked = false;
  std::string host_name;
  std::optional<Certificate> certificate;

  [[nodiscard]] bool infeasible() const { return certificate.has_value(); }
};

/// Run all applicable layers. `host` may be null (pattern-only analysis).
[[nodiscard]] AnalysisReport analyze(const Netlist& pattern,
                                     const Netlist* host,
                                     const AnalyzeOptions& options = {});

/// Human rendering of the report (the `subgemini analyze` text output).
void write_text(const AnalysisReport& report, std::ostream& out);

}  // namespace subg::analyze
