// LVS-style netlist comparison with diagnostics.
//
// compare_netlists() (gemini) answers yes/no; a layout-vs-schematic flow
// needs to know *where* two netlists diverge. This module runs the same
// lockstep partition refinement and, on failure, reports the first
// unbalanced partitions with their member device/net names on each side —
// the refinement radius localizes the defect to its neighborhood. An
// optional preprocessing pass applies series/parallel reduction to both
// sides (layouts finger their transistors; schematics don't).
#pragma once

#include <string>
#include <vector>

#include "gemini/gemini.hpp"
#include "netlist/netlist.hpp"

namespace subg::lvs {

struct LvsOptions {
  /// Reduce both netlists (finger merge, ladder collapse) before comparing.
  bool reduce_first = true;
  /// Cap on diagnostic entries.
  std::size_t max_findings = 16;
  CompareOptions compare;
};

/// One divergent partition: vertices that have this label on one side but
/// not (or in different numbers) on the other.
struct Mismatch {
  /// Device or net names on each side sharing the diverging label.
  std::vector<std::string> left;
  std::vector<std::string> right;
  /// Refinement round at which the divergence first appeared (roughly the
  /// graph distance from the defect).
  std::size_t round = 0;
};

struct LvsReport {
  bool clean = false;
  std::string summary;
  std::vector<Mismatch> mismatches;
  /// Statistics after optional reduction.
  std::size_t left_devices = 0;
  std::size_t right_devices = 0;
};

/// Compare `left` (e.g. extracted layout) against `right` (schematic).
[[nodiscard]] LvsReport compare(const Netlist& left, const Netlist& right,
                                const LvsOptions& options = {});

}  // namespace subg::lvs
