#include "lvs/lvs.hpp"

#include <map>
#include <sstream>

#include "graph/circuit_graph.hpp"
#include "reduce/reduce.hpp"

namespace subg::lvs {

namespace {

/// One synchronous refinement round over all vertices (both kinds at once —
/// diagnostics don't need the bipartite alternation).
void relabel(const CircuitGraph& g, std::vector<Label>& labels) {
  std::vector<Label> next(labels.size());
  for (Vertex v = 0; v < g.vertex_count(); ++v) {
    if (g.is_special(v)) {
      next[v] = labels[v];
      continue;
    }
    Label sum = 0;
    for (const auto& e : g.edges(v)) {
      sum += edge_contribution(e.coefficient, labels[e.to]);
    }
    next[v] = subg::relabel(labels[v], sum);
  }
  labels.swap(next);
}

std::string vertex_display(const CircuitGraph& g, Vertex v) {
  return g.vertex_name(v);
}

/// Collect the unbalanced partitions of the current labeling.
std::vector<Mismatch> divergences(const CircuitGraph& ga,
                                  const CircuitGraph& gb,
                                  const std::vector<Label>& la,
                                  const std::vector<Label>& lb,
                                  std::size_t round, std::size_t cap) {
  std::map<Label, std::pair<std::vector<Vertex>, std::vector<Vertex>>> parts;
  for (Vertex v = 0; v < ga.vertex_count(); ++v) parts[la[v]].first.push_back(v);
  for (Vertex v = 0; v < gb.vertex_count(); ++v) parts[lb[v]].second.push_back(v);

  std::vector<Mismatch> out;
  for (const auto& [label, sides] : parts) {
    if (sides.first.size() == sides.second.size()) continue;
    Mismatch m;
    m.round = round;
    for (Vertex v : sides.first) m.left.push_back(vertex_display(ga, v));
    for (Vertex v : sides.second) m.right.push_back(vertex_display(gb, v));
    out.push_back(std::move(m));
    if (out.size() >= cap) break;
  }
  return out;
}

}  // namespace

LvsReport compare(const Netlist& left, const Netlist& right,
                  const LvsOptions& options) {
  LvsReport report;

  const Netlist* a = &left;
  const Netlist* b = &right;
  reduce::Reduced ra{Netlist(left.catalog_ptr()), {}};
  reduce::Reduced rb{Netlist(right.catalog_ptr()), {}};
  if (options.reduce_first) {
    ra = reduce::reduce_netlist(left);
    rb = reduce::reduce_netlist(right);
    a = &ra.netlist;
    b = &rb.netlist;
  }
  report.left_devices = a->device_count();
  report.right_devices = b->device_count();

  CompareResult cmp = compare_netlists(*a, *b, options.compare);
  if (cmp.isomorphic) {
    report.clean = true;
    report.summary = "netlists match (" + std::to_string(a->device_count()) +
                     " devices" +
                     (options.reduce_first ? ", after reduction)" : ")");
    return report;
  }
  report.summary = cmp.reason;

  // Localize: run lockstep refinement and report the first round whose
  // census is unbalanced.
  CircuitGraph ga(*a), gb(*b);
  std::vector<Label> la(ga.vertex_count()), lb(gb.vertex_count());
  for (Vertex v = 0; v < ga.vertex_count(); ++v) la[v] = ga.initial_label(v);
  for (Vertex v = 0; v < gb.vertex_count(); ++v) lb[v] = gb.initial_label(v);

  const std::size_t max_rounds =
      2 * (std::max(ga.vertex_count(), gb.vertex_count()) + 1);
  for (std::size_t round = 0; round <= max_rounds; ++round) {
    std::vector<Mismatch> found =
        divergences(ga, gb, la, lb, round, options.max_findings);
    if (!found.empty()) {
      report.mismatches = std::move(found);
      std::ostringstream os;
      os << report.summary << "; first divergence at refinement round "
         << round;
      report.summary = os.str();
      return report;
    }
    relabel(ga, la);
    relabel(gb, lb);
  }
  // Balanced at every round yet not isomorphic: a symmetric discrepancy
  // (caught by gemini's individuation). Report without localization.
  report.summary += "; divergence not localizable by refinement (symmetric)";
  return report;
}

}  // namespace subg::lvs
