// SPICE-subset reader and writer, so patterns and hosts can come from (and
// go to) ordinary netlist files.
//
// Supported on read:
//   * comment lines (*, ;, $), inline "$ comment", + continuations,
//     case-insensitive keywords and names
//   * .SUBCKT <name> <ports...> / .ENDS [name] — nested definitions are
//     rejected; instances via X cards
//   * .GLOBAL <nets...> — global rails (the matcher's special signals)
//   * .END (optional)
//   * device cards:
//       M<name> <d> <g> <s> [<b>] <model> [k=v ...]   MOSFET — node count
//         follows the catalog's nmos/pmos pin count; model names starting
//         with 'p' map to pmos, otherwise nmos (exact catalog type names
//         win)
//       R/C<name> <p1> <p2> [value]                   resistor / capacitor
//       D<name> <anode> <cathode> [model]             diode
//       X<name> <nets...> <subckt-or-type>            subcircuit instance,
//         or a direct device when the last token names a catalog type
//
// Cards outside any .SUBCKT form the top-level circuit, module "main".
//
// The writer emits .GLOBAL, .SUBCKT (for netlists with ports), M/R/C/D
// cards for the standard types and X cards for any other device type —
// which the reader maps back to catalog types, so gate-level netlists
// round-trip.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/design.hpp"
#include "util/diagnostics.hpp"

namespace subg::spice {

struct ReadOptions {
  std::shared_ptr<const DeviceCatalog> catalog = DeviceCatalog::cmos();
  /// Name for the module collecting top-level cards.
  std::string top_name = "main";
  /// Strict mode (null, the default): throw subg::Error at the first
  /// malformed card. Recovering mode (non-null): record each malformed card
  /// as a Diagnostic in the sink, skip it, and keep parsing — the returned
  /// Design contains everything that did parse. Catalog/environment
  /// problems (e.g. a catalog without an nmos type) still throw.
  DiagnosticSink* diagnostics = nullptr;
  /// Input path used in diagnostics; read_file fills it automatically.
  std::string filename;
};

/// Parse SPICE text into a hierarchical design. Throws subg::Error with a
/// line number on malformed input.
[[nodiscard]] Design read(std::istream& in, const ReadOptions& options = {});
[[nodiscard]] Design read_string(std::string_view text,
                                 const ReadOptions& options = {});
[[nodiscard]] Design read_file(const std::string& path,
                               const ReadOptions& options = {});

/// Parse and flatten in one step (top defaults to "main").
[[nodiscard]] Netlist read_flat(std::string_view text,
                                const ReadOptions& options = {},
                                std::string_view top = "");

/// Write a flat netlist. If it has ports it is wrapped in .SUBCKT/.ENDS.
void write(std::ostream& out, const Netlist& netlist);
[[nodiscard]] std::string write_string(const Netlist& netlist);

}  // namespace subg::spice
