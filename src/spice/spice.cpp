#include "spice/spice.hpp"

#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <vector>

#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/strings.hpp"

namespace subg::spice {

namespace {

/// Logical line (continuations folded), with its starting line number.
struct Card {
  std::string text;
  std::size_t line;
};

/// Recoverable per-card failure; converted to subg::Error (strict mode) or
/// a Diagnostic (recovering mode) at the card boundary.
struct CardFail {
  std::size_t line;
  std::string message;
};

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw CardFail{line, what};
}

/// Strict-mode error text, kept byte-identical to the historical format.
[[noreturn]] void throw_strict(const CardFail& fail) {
  throw Error("spice: line " + std::to_string(fail.line) + ": " +
              fail.message);
}

std::vector<Card> logical_lines(std::istream& in, const ReadOptions& options) {
  std::vector<Card> cards;
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    // Strip inline "$" comments — but only at a token boundary, because
    // auto-generated names may legitimately contain '$' ("x0/$d1").
    for (std::size_t pos = 0; pos < raw.size(); ++pos) {
      if (raw[pos] == '$' &&
          (pos == 0 || std::isspace(static_cast<unsigned char>(raw[pos - 1])))) {
        raw.erase(pos);
        break;
      }
    }
    std::string_view t = trim(raw);
    if (t.empty() || t.front() == '*' || t.front() == ';') continue;
    if (t.front() == '+') {
      if (cards.empty()) {
        CardFail fail{lineno, "continuation with no prior card"};
        if (options.diagnostics == nullptr) throw_strict(fail);
        options.diagnostics->add(options.filename, fail.line,
                                 Diagnostic::Severity::kError, fail.message);
        continue;
      }
      cards.back().text += ' ';
      cards.back().text += std::string(t.substr(1));
    } else {
      cards.push_back(Card{std::string(t), lineno});
    }
  }
  return cards;
}

struct Parser {
  const ReadOptions& options;
  Design design;
  Module* current = nullptr;  // module receiving cards
  Module* top = nullptr;
  bool in_subckt = false;
  std::size_t subckt_line = 0;  // line of the open .SUBCKT (diagnostics)

  explicit Parser(const ReadOptions& opts)
      : options(opts), design(opts.catalog) {
    ModuleId id = design.add_module(opts.top_name);
    top = &design.module(id);
    current = top;
  }

  /// Resolve a MOSFET model name to a catalog type.
  [[nodiscard]] DeviceTypeId mos_type(std::string_view model,
                                      std::size_t line) const {
    std::string lower = to_lower(model);
    if (auto t = design.catalog().find(lower)) return *t;
    if (!lower.empty() && lower.front() == 'p') {
      if (auto t = design.catalog().find("pmos")) return *t;
    }
    if (auto t = design.catalog().find("nmos")) return *t;
    parse_error(line, "cannot resolve MOSFET model '" + std::string(model) + "'");
  }

  [[nodiscard]] static bool is_param(std::string_view tok) {
    return tok.find('=') != std::string_view::npos;
  }

  NetId net(std::string_view name) { return current->ensure_net(to_lower(name)); }

  void device_card(const Card& card) {
    auto toks = split_ws(card.text);
    const char kind =
        static_cast<char>(std::tolower(static_cast<unsigned char>(toks[0][0])));
    const std::string name = to_lower(toks[0]);
    // Non-parameter tokens after the name.
    std::vector<std::string_view> args;
    for (std::size_t i = 1; i < toks.size(); ++i) {
      if (!is_param(toks[i])) args.push_back(toks[i]);
    }

    switch (kind) {
      case 'm': {
        auto nm = design.catalog().find("nmos");
        SUBG_CHECK_MSG(nm.has_value(), "catalog lacks an nmos type");
        const std::size_t pins = design.catalog().type(*nm).pin_count();
        if (args.size() < pins + 1) {
          parse_error(card.line, "MOSFET card needs " + std::to_string(pins) +
                                     " nodes and a model");
        }
        DeviceTypeId type = mos_type(args[pins], card.line);
        std::vector<NetId> nets;
        for (std::size_t i = 0; i < pins; ++i) nets.push_back(net(args[i]));
        current->add_device(type, nets, name);
        return;
      }
      case 'r':
      case 'c': {
        if (args.size() < 2) parse_error(card.line, "R/C card needs two nodes");
        auto type = design.catalog().find(kind == 'r' ? "res" : "cap");
        if (!type) {
          parse_error(card.line, std::string("catalog lacks a '") +
                                     (kind == 'r' ? "res" : "cap") + "' type");
        }
        current->add_device(*type, {net(args[0]), net(args[1])}, name);
        return;
      }
      case 'd': {
        if (args.size() < 2) parse_error(card.line, "D card needs two nodes");
        auto type = design.catalog().find("diode");
        if (!type) parse_error(card.line, "catalog lacks a 'diode' type");
        current->add_device(*type, {net(args[0]), net(args[1])}, name);
        return;
      }
      case 'x': {
        if (args.empty()) parse_error(card.line, "X card needs a target");
        const std::string target = to_lower(args.back());
        args.pop_back();
        // Validate before creating any nets: a card rejected in recovering
        // mode must leave no trace (no phantom degree-0 nets).
        if (auto mod = design.find_module(target)) {
          if (design.module(*mod).ports().size() != args.size()) {
            parse_error(card.line, "instance of '" + target + "' expects " +
                                       std::to_string(
                                           design.module(*mod).ports().size()) +
                                       " nets, got " + std::to_string(args.size()));
          }
          std::vector<NetId> nets;
          for (auto a : args) nets.push_back(net(a));
          current->add_instance(*mod, nets, name);
          return;
        }
        if (auto type = design.catalog().find(target)) {
          if (design.catalog().type(*type).pin_count() != args.size()) {
            parse_error(card.line,
                        "device of type '" + target + "' expects " +
                            std::to_string(design.catalog().type(*type).pin_count()) +
                            " nets, got " + std::to_string(args.size()));
          }
          std::vector<NetId> nets;
          for (auto a : args) nets.push_back(net(a));
          current->add_device(*type, nets, name);
          return;
        }
        parse_error(card.line,
                    "unknown subcircuit or device type '" + target + "'");
      }
      default:
        parse_error(card.line, std::string("unsupported card '") + toks[0][0] +
                                   "'");
    }
  }

  void directive(const Card& card) {
    auto toks = split_ws(card.text);
    const std::string key = to_lower(toks[0]);
    if (key == ".subckt") {
      if (in_subckt) parse_error(card.line, "nested .SUBCKT is not supported");
      if (toks.size() < 2) parse_error(card.line, ".SUBCKT needs a name");
      std::vector<std::string> ports;
      for (std::size_t i = 2; i < toks.size(); ++i) {
        if (!is_param(toks[i])) ports.push_back(to_lower(toks[i]));
      }
      ModuleId id = design.add_module(to_lower(toks[1]), std::move(ports));
      current = &design.module(id);
      in_subckt = true;
      subckt_line = card.line;
    } else if (key == ".ends") {
      if (!in_subckt) parse_error(card.line, ".ENDS without .SUBCKT");
      current = top;
      in_subckt = false;
    } else if (key == ".global") {
      for (std::size_t i = 1; i < toks.size(); ++i) {
        design.add_global(to_lower(toks[i]));
      }
    } else if (key == ".end") {
      // ignore
    } else {
      // Unknown dot-directives (.model, .option, ...) are skipped.
    }
  }

  /// Record a card failure (recovering) or rethrow it as Error (strict).
  void fail(const CardFail& f) {
    if (options.diagnostics == nullptr) throw_strict(f);
    options.diagnostics->add(options.filename, f.line,
                             Diagnostic::Severity::kError, f.message);
  }

  void run(std::istream& in) {
    for (const Card& card : logical_lines(in, options)) {
      try {
        if (card.text.front() == '.') {
          directive(card);
        } else {
          device_card(card);
        }
      } catch (const CardFail& f) {
        fail(f);  // strict: throw; recovering: record and skip the card
      } catch (const Error& e) {
        // Deeper-layer rejection (duplicate module, netlist invariant...):
        // recoverable per card, but catalog misconfiguration is not input-
        // dependent, so strict mode still sees the original Error.
        if (options.diagnostics == nullptr) throw;
        options.diagnostics->add(options.filename, card.line,
                                 Diagnostic::Severity::kError, e.what());
      }
    }
    if (in_subckt) {
      CardFail f{subckt_line,
                 "unterminated .SUBCKT '" + current->name() + "'"};
      if (options.diagnostics == nullptr) {
        throw Error("spice: unterminated .SUBCKT '" + current->name() + "'");
      }
      fail(f);  // recovering: implicitly close the dangling definition
      current = top;
      in_subckt = false;
    }
  }
};

const char* card_letter(const std::string& type) {
  if (type == "nmos" || type == "pmos") return "m";
  if (type == "res") return "r";
  if (type == "cap") return "c";
  if (type == "diode") return "d";
  return "x";
}

/// '$' begins a comment in SPICE only at a token boundary (see
/// logical_lines), so a mid-name '$' ("x0/$n0", "g$nd") survives a
/// write → read round trip verbatim — important for global nets, whose
/// labels derive from their names. Only a LEADING '$' (auto-generated
/// names like "$n0") would start a comment and must be rewritten.
std::string sanitize(const std::string& name) {
  if (name.empty() || name.front() != '$') return name;
  return "_S_" + name.substr(1);
}

}  // namespace

Design read(std::istream& in, const ReadOptions& options) {
  SUBG_FAULT_POINT("parse.netlist");
  Parser parser(options);
  parser.run(in);
  return std::move(parser.design);
}

Design read_string(std::string_view text, const ReadOptions& options) {
  std::istringstream in{std::string(text)};
  return read(in, options);
}

Design read_file(const std::string& path, const ReadOptions& options) {
  std::ifstream in(path);
  SUBG_CHECK_MSG(in.good(), "cannot open SPICE file '" << path << "'");
  ReadOptions opts = options;
  if (opts.filename.empty()) opts.filename = path;
  return read(in, opts);
}

Netlist read_flat(std::string_view text, const ReadOptions& options,
                  std::string_view top) {
  Design design = read_string(text, options);
  return design.flatten(top.empty() ? std::string_view(options.top_name) : top);
}

void write(std::ostream& out, const Netlist& netlist) {
  out << "* " << (netlist.name().empty() ? "netlist" : netlist.name())
      << " — written by subgemini\n";
  bool any_global = false;
  for (std::uint32_t n = 0; n < netlist.net_count(); ++n) {
    if (netlist.is_global(NetId(n))) {
      if (!any_global) {
        out << ".global";
        any_global = true;
      }
      out << ' ' << sanitize(netlist.net_name(NetId(n)));
    }
  }
  if (any_global) out << '\n';

  const bool as_subckt = !netlist.ports().empty();
  if (as_subckt) {
    out << ".subckt " << (netlist.name().empty() ? "cell" : netlist.name());
    for (NetId p : netlist.ports()) out << ' ' << sanitize(netlist.net_name(p));
    out << '\n';
  }
  for (std::uint32_t d = 0; d < netlist.device_count(); ++d) {
    const DeviceId dev(d);
    const DeviceTypeInfo& info = netlist.device_type_info(dev);
    const char* letter = card_letter(info.name);
    out << letter << sanitize(netlist.device_name(dev));
    for (NetId n : netlist.device_pins(dev)) {
      out << ' ' << sanitize(netlist.net_name(n));
    }
    if (*letter == 'm' || *letter == 'x') out << ' ' << info.name;
    out << '\n';
  }
  if (as_subckt) {
    out << ".ends\n";
  } else {
    out << ".end\n";
  }
}

std::string write_string(const Netlist& netlist) {
  std::ostringstream out;
  write(out, netlist);
  return out.str();
}

}  // namespace subg::spice
