#include "gen/generators.hpp"

#include <algorithm>
#include <cstdint>
#include <limits>
#include <vector>

#include "cells/cells.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace subg::gen {

namespace {

using cells::CellLibrary;

// --- overflow guards --------------------------------------------------
// Size parameters are uint64 (generators.hpp): every generator bounds its
// own arithmetic BEFORE allocating. checked_mul/checked_add throw on uint64
// overflow; check_vertex_space throws when the (conservative) device+net
// estimate would not fit the uint32 graph-vertex space CircuitGraph uses.

std::uint64_t checked_mul(std::uint64_t a, std::uint64_t b, const char* what) {
  std::uint64_t out = 0;
  SUBG_CHECK_MSG(!__builtin_mul_overflow(a, b, &out),
                 what << ": size arithmetic overflows uint64 (" << a << " * "
                      << b << ")");
  return out;
}

std::uint64_t checked_add(std::uint64_t a, std::uint64_t b, const char* what) {
  std::uint64_t out = 0;
  SUBG_CHECK_MSG(!__builtin_add_overflow(a, b, &out),
                 what << ": size arithmetic overflows uint64 (" << a << " + "
                      << b << ")");
  return out;
}

void check_vertex_space(std::uint64_t devices, std::uint64_t nets,
                        const char* what) {
  const std::uint64_t vertices = checked_add(devices, nets, what);
  SUBG_CHECK_MSG(vertices <= std::numeric_limits<std::uint32_t>::max(),
                 what << ": workload needs about " << vertices
                      << " graph vertices, exceeding the 32-bit vertex space");
}

/// Builder wrapper that tracks placed-cell counts.
struct TopBuilder {
  CellLibrary lib;
  ModuleId top;
  Module* m;
  std::map<std::string, std::size_t> placed;

  explicit TopBuilder(std::string name, std::vector<std::string> ports = {}) {
    top = lib.design().add_module(std::move(name), std::move(ports));
    m = &lib.design().module(top);
  }

  NetId net(const std::string& name) { return m->ensure_net(name); }

  void place(const std::string& cell, std::initializer_list<NetId> actuals) {
    m->add_instance(lib.module(cell),
                    std::span<const NetId>(actuals.begin(), actuals.size()));
    ++placed[cell];
  }

  Generated finish() {
    const std::string& name =
        lib.design().module(top).name();
    Generated out{lib.design().flatten(name), std::move(placed)};
    out.netlist.validate();
    return out;
  }
};

}  // namespace

Generated ripple_carry_adder(std::uint64_t bits) {
  SUBG_CHECK_MSG(bits >= 1, "adder needs at least 1 bit");
  check_vertex_space(checked_mul(bits, 32, "rca"),
                     checked_mul(bits, 24, "rca"), "rca");
  TopBuilder b("rca" + std::to_string(bits));
  NetId carry = b.net("cin");
  for (std::uint64_t i = 0; i < bits; ++i) {
    const std::string idx = std::to_string(i);
    NetId next = (i == bits - 1) ? b.net("cout") : b.net("c" + idx);
    b.place("fulladder",
            {b.net("a" + idx), b.net("b" + idx), carry, b.net("s" + idx), next});
    carry = next;
  }
  return b.finish();
}

Generated array_multiplier(std::uint64_t bits) {
  SUBG_CHECK_MSG(bits >= 2, "multiplier needs at least 2 bits");
  const std::uint64_t n = bits;
  const std::uint64_t n2 = checked_mul(n, n, "multiplier");
  check_vertex_space(checked_mul(n2, 40, "multiplier"),
                     checked_mul(n2, 28, "multiplier"), "multiplier");
  TopBuilder b("mul" + std::to_string(n));

  // Partial products pp[i][j] = a[i] & b[j] (nand2 + inv).
  std::vector<std::vector<NetId>> pp(n, std::vector<NetId>(n));
  for (std::uint64_t i = 0; i < n; ++i) {
    for (std::uint64_t j = 0; j < n; ++j) {
      NetId nband = b.net("nb_" + std::to_string(i) + "_" + std::to_string(j));
      pp[i][j] = b.net("pp_" + std::to_string(i) + "_" + std::to_string(j));
      b.place("nand2", {b.net("a" + std::to_string(i)),
                        b.net("b" + std::to_string(j)), nband});
      b.place("inv", {nband, pp[i][j]});
    }
  }

  // Braun array: row r (r = 1..n-1) adds pp[*][r] into the running sum.
  // acc[i] holds the current sum bit for weight r+i.
  std::vector<NetId> acc(n);
  for (std::uint64_t i = 0; i < n; ++i) acc[i] = pp[i][0];
  // p0 = acc[0] of row 0.
  for (std::uint64_t r = 1; r < n; ++r) {
    std::vector<NetId> nacc(n);
    NetId carry;  // carry chain within the row
    for (std::uint64_t i = 0; i < n; ++i) {
      const std::string tag = std::to_string(r) + "_" + std::to_string(i);
      // Add acc[i+1] (shifted) + pp[i][r] (+ carry for i>0).
      NetId addend = (i == n - 1) ? pp[n - 1][r - 1] : acc[i + 1];
      NetId x = pp[i][r];
      NetId s = b.net("s_" + tag);
      if (i == 0) {
        carry = b.net("c_" + tag);
        b.place("halfadder", {addend, x, s, carry});
      } else {
        NetId nc = b.net("c_" + tag);
        b.place("fulladder", {addend, x, carry, s, nc});
        carry = nc;
      }
      nacc[i] = s;
    }
    acc = nacc;
  }
  return b.finish();
}

Generated sram_array(std::uint64_t rows, std::uint64_t cols) {
  SUBG_CHECK_MSG(rows >= 4 && cols >= 1, "sram needs rows >= 4, cols >= 1");
  SUBG_CHECK_MSG(rows <= 16, "row decoder supports up to 16 rows (nand4)");
  check_vertex_space(checked_mul(checked_mul(rows, cols, "sram"), 16, "sram"),
                     checked_mul(checked_mul(rows, cols, "sram"), 8, "sram"),
                     "sram");
  // Address width.
  std::uint64_t abits = 2;
  while ((std::uint64_t{1} << abits) < rows) ++abits;

  TopBuilder b("sram" + std::to_string(rows) + "x" + std::to_string(cols));
  // Address lines + complements.
  std::vector<NetId> addr(abits), naddr(abits);
  for (std::uint64_t i = 0; i < abits; ++i) {
    addr[i] = b.net("addr" + std::to_string(i));
    naddr[i] = b.net("naddr" + std::to_string(i));
    b.place("inv", {addr[i], naddr[i]});
  }
  // Row decoder: nand over literals, then inverter to the wordline.
  const std::string nand_cell = "nand" + std::to_string(abits);
  for (std::uint64_t r = 0; r < rows; ++r) {
    NetId nwl = b.net("nwl" + std::to_string(r));
    NetId wl = b.net("wl" + std::to_string(r));
    Module& m = *b.m;
    std::vector<NetId> lits;
    for (std::uint64_t i = 0; i < abits; ++i) {
      lits.push_back(((r >> i) & 1) ? addr[i] : naddr[i]);
    }
    lits.push_back(nwl);
    m.add_instance(b.lib.module(nand_cell), lits);
    ++b.placed[nand_cell];
    b.place("inv", {nwl, wl});
    // Cells along the row.
    for (std::uint64_t c = 0; c < cols; ++c) {
      b.place("sram6t",
              {b.net("bl" + std::to_string(c)), b.net("blb" + std::to_string(c)),
               wl});
    }
  }
  // Column precharge: pmos pair per column, gated by prech.
  {
    Module& m = *b.m;
    const DeviceCatalog& cat = b.lib.design().catalog();
    DeviceTypeId pmos = cat.require("pmos");
    NetId prech = b.net("prech");
    NetId vdd = m.ensure_net("vdd");
    for (std::uint64_t c = 0; c < cols; ++c) {
      m.add_device(pmos, {b.net("bl" + std::to_string(c)), prech, vdd, vdd});
      m.add_device(pmos, {b.net("blb" + std::to_string(c)), prech, vdd, vdd});
    }
  }
  return b.finish();
}

Generated decoder(std::uint64_t addr_bits) {
  SUBG_CHECK_MSG(addr_bits >= 2 && addr_bits <= 4,
                 "decoder supports 2..4 address bits");
  TopBuilder b("dec" + std::to_string(addr_bits));
  std::vector<NetId> addr(addr_bits), naddr(addr_bits);
  for (std::uint64_t i = 0; i < addr_bits; ++i) {
    addr[i] = b.net("addr" + std::to_string(i));
    naddr[i] = b.net("naddr" + std::to_string(i));
    b.place("inv", {addr[i], naddr[i]});
  }
  const std::string nand_cell = "nand" + std::to_string(addr_bits);
  for (std::uint64_t out = 0; out < (std::uint64_t{1} << addr_bits); ++out) {
    NetId nsel = b.net("nsel" + std::to_string(out));
    std::vector<NetId> lits;
    for (std::uint64_t i = 0; i < addr_bits; ++i) {
      lits.push_back(((out >> i) & 1) ? addr[i] : naddr[i]);
    }
    lits.push_back(nsel);
    b.m->add_instance(b.lib.module(nand_cell), lits);
    ++b.placed[nand_cell];
    b.place("inv", {nsel, b.net("sel" + std::to_string(out))});
  }
  return b.finish();
}

Generated register_file(std::uint64_t words, std::uint64_t width) {
  SUBG_CHECK_MSG(words >= 1 && width >= 1, "register file needs words, width >= 1");
  check_vertex_space(
      checked_mul(checked_mul(words, width, "register file"), 64,
                  "register file"),
      checked_mul(checked_mul(words, width, "register file"), 40,
                  "register file"),
      "register file");
  TopBuilder b("rf" + std::to_string(words) + "x" + std::to_string(width));
  NetId clk = b.net("clk");
  for (std::uint64_t w = 0; w < words; ++w) {
    NetId wsel = b.net("wsel" + std::to_string(w));
    for (std::uint64_t i = 0; i < width; ++i) {
      const std::string tag = std::to_string(w) + "_" + std::to_string(i);
      NetId q = b.net("q" + tag);
      NetId d = b.net("d" + tag);
      // d = wsel ? din[i] : q   (write-enable recirculation mux)
      b.place("mux2", {q, b.net("din" + std::to_string(i)), wsel, d});
      b.place("dff", {d, clk, q});
    }
  }
  return b.finish();
}

Generated logic_soup(std::size_t gates, std::uint64_t seed) {
  SUBG_CHECK_MSG(gates >= 1, "soup needs at least one gate");
  TopBuilder b("soup" + std::to_string(gates));
  Xoshiro256 rng(seed);

  // Primary inputs plus a clock.
  std::vector<NetId> nets;
  const std::size_t inputs = 8 + gates / 8;
  for (std::size_t i = 0; i < inputs; ++i) {
    nets.push_back(b.net("pi" + std::to_string(i)));
  }
  NetId clk = b.net("clk");

  // Weighted cell mix, roughly standard-cell-netlist-shaped.
  struct Choice {
    const char* cell;
    int inputs;
    int weight;
  };
  static constexpr Choice kMix[] = {
      {"inv", 1, 24},  {"nand2", 2, 20}, {"nor2", 2, 12}, {"nand3", 3, 8},
      {"nor3", 3, 4},  {"aoi21", 3, 6},  {"oai21", 3, 4}, {"xor2", 2, 6},
      {"xnor2", 2, 3}, {"mux2", 3, 5},   {"aoi22", 4, 3}, {"nand4", 4, 2},
      {"dff", 1, 3},
  };
  int total_weight = 0;
  for (const Choice& c : kMix) total_weight += c.weight;

  for (std::size_t g = 0; g < gates; ++g) {
    int pick = static_cast<int>(rng.below(static_cast<std::uint64_t>(total_weight)));
    const Choice* choice = nullptr;
    for (const Choice& c : kMix) {
      pick -= c.weight;
      if (pick < 0) {
        choice = &c;
        break;
      }
    }
    NetId out = b.net("w" + std::to_string(g));
    std::vector<NetId> actuals;
    if (std::string_view(choice->cell) == "dff") {
      actuals = {nets[rng.below(nets.size())], clk, out};
    } else {
      // Distinct input nets per gate: tying two inputs of one gate together
      // makes a degenerate structure that is not an instance of the cell.
      for (int i = 0; i < choice->inputs; ++i) {
        NetId in;
        do {
          in = nets[rng.below(nets.size())];
        } while (std::find(actuals.begin(), actuals.end(), in) != actuals.end());
        actuals.push_back(in);
      }
      actuals.push_back(out);
    }
    b.m->add_instance(b.lib.module(choice->cell), actuals);
    ++b.placed[choice->cell];
    nets.push_back(out);
  }
  return b.finish();
}

Generated kogge_stone_adder(std::uint64_t bits) {
  SUBG_CHECK_MSG(bits >= 2, "kogge-stone needs at least 2 bits");
  // Device count is O(bits log bits); 64 per bit per level is a safe roof
  // (the log factor is < 64 for any count that fits the vertex space).
  check_vertex_space(checked_mul(bits, 64 * 24, "kogge-stone"),
                     checked_mul(bits, 64 * 12, "kogge-stone"),
                     "kogge-stone");
  TopBuilder b("ks" + std::to_string(bits));

  // Preprocess: g_i = a_i & b_i (nand2+inv), p_i = a_i ^ b_i (xor2).
  std::vector<NetId> g(bits), p(bits);
  for (std::uint64_t i = 0; i < bits; ++i) {
    const std::string idx = std::to_string(i);
    NetId a = b.net("a" + idx), bb = b.net("b" + idx);
    NetId ng = b.net("ng" + idx);
    g[i] = b.net("g0_" + idx);
    p[i] = b.net("p0_" + idx);
    b.place("nand2", {a, bb, ng});
    b.place("inv", {ng, g[i]});
    b.place("xor2", {a, bb, p[i]});
  }

  // Prefix tree: at level L (span s = 2^L), node i >= s combines
  //   G' = G_i | (P_i & G_{i-s})  — aoi21 + inv
  //   P' = P_i & P_{i-s}          — nand2 + inv
  // Each (G_{i-s}, P_{i-s}) pair fans out to every i' >= i: reconvergence.
  std::uint64_t level = 1;
  for (std::uint64_t span = 1; span < bits; span *= 2, ++level) {
    std::vector<NetId> ng(bits), np(bits);
    for (std::uint64_t i = 0; i < bits; ++i) {
      if (i < span) {
        ng[i] = g[i];
        np[i] = p[i];
        continue;
      }
      const std::string tag = std::to_string(level) + "_" + std::to_string(i);
      NetId gi = b.net("gn" + tag);
      ng[i] = b.net("g" + tag);
      // aoi21: y = !((a&b) | c) with a=P_i, b=G_{i-s}, c=G_i.
      b.place("aoi21", {p[i], g[i - span], g[i], gi});
      b.place("inv", {gi, ng[i]});
      NetId pi = b.net("pn" + tag);
      np[i] = b.net("p" + tag);
      b.place("nand2", {p[i], p[i - span], pi});
      b.place("inv", {pi, np[i]});
    }
    g = ng;
    p = np;
  }

  // Sum: s_i = p0_i ^ carry_{i-1}; carry_i = G at the final level.
  for (std::uint64_t i = 0; i < bits; ++i) {
    const std::string idx = std::to_string(i);
    NetId sum = b.net("s" + idx);
    if (i == 0) {
      b.place("buf", {*b.m->find_net("p0_0"), sum});
    } else {
      b.place("xor2", {*b.m->find_net("p0_" + idx), g[i - 1], sum});
    }
  }
  return b.finish();
}

Generated parity_tree(std::uint64_t inputs) {
  SUBG_CHECK_MSG(inputs >= 2, "parity tree needs at least 2 inputs");
  check_vertex_space(checked_mul(inputs, 16, "parity tree"),
                     checked_mul(inputs, 12, "parity tree"), "parity tree");
  TopBuilder b("parity" + std::to_string(inputs));
  std::vector<NetId> layer;
  for (std::uint64_t i = 0; i < inputs; ++i) {
    layer.push_back(b.net("in" + std::to_string(i)));
  }
  std::uint64_t serial = 0;
  while (layer.size() > 1) {
    std::vector<NetId> next;
    for (std::size_t i = 0; i + 1 < layer.size(); i += 2) {
      NetId y = b.net("x" + std::to_string(serial++));
      b.place("xor2", {layer[i], layer[i + 1], y});
      next.push_back(y);
    }
    if (layer.size() % 2) next.push_back(layer.back());
    layer = next;
  }
  return b.finish();
}

Generated soc_grid(std::uint64_t tiles, std::uint64_t tile_units,
                   std::uint64_t pads, std::uint64_t bus_bits) {
  SUBG_CHECK_MSG(tiles >= 1 && tile_units >= 1,
                 "soc needs tiles, tile_units >= 1");
  SUBG_CHECK_MSG(bus_bits >= 1, "soc needs at least one bus net");
  // Guards run BEFORE any allocation: 6 transistors per (nand2, inv) unit,
  // 3 discrete devices per pad, 2 per bus driver; nets are bounded by 4 per
  // unit (chain, nand-internal, x, slack), 2 per pad, 2 per bus bit, one
  // chain head per tile, and the rails.
  const std::uint64_t units = checked_mul(tiles, tile_units, "soc");
  std::uint64_t devices = checked_mul(units, 6, "soc");
  devices = checked_add(devices, checked_mul(pads, 3, "soc"), "soc");
  devices = checked_add(devices, checked_mul(bus_bits, 2, "soc"), "soc");
  std::uint64_t nets = checked_mul(units, 4, "soc");
  nets = checked_add(nets, checked_mul(pads, 2, "soc"), "soc");
  nets = checked_add(nets, checked_mul(bus_bits, 2, "soc"), "soc");
  nets = checked_add(nets, checked_add(tiles, 2, "soc"), "soc");
  check_vertex_space(devices, nets, "soc");

  TopBuilder b("soc" + std::to_string(tiles) + "x" + std::to_string(tile_units));

  // Shared bus district: one inv driver per bus net so the bus ties into
  // the rails like real logic. Each tile taps exactly one bus net (below),
  // so a bus net's fanout is tiles/bus_bits + 1 — scale `tiles` past
  // 64*bus_bits and the bus nets cross any sane shard fanout threshold and
  // become boundary anchors, while every net INSIDE a tile stays degree
  // <= 3. Bounding the per-net fanout this way (instead of wiring every
  // unit to the bus) is what keeps both generation and the per-candidate
  // match cost linear in the device count.
  std::vector<NetId> bus(bus_bits);
  for (std::uint64_t k = 0; k < bus_bits; ++k) {
    bus[k] = b.net("bus" + std::to_string(k));
    b.place("inv", {b.net("busin" + std::to_string(k)), bus[k]});
  }

  // Core tiles: a chain of (nand2 -> inv) units. Unit 0 is the tile's bus
  // tap — its nand2 takes the bus net as second input; every later unit
  // feeds from the previous unit's nand2 output instead, so the intra-tile
  // nets stay degree <= 3 and with the bus/rails as anchors each tile is
  // exactly one connected region for the shard decomposition.
  for (std::uint64_t t = 0; t < tiles; ++t) {
    const std::string tag = "t" + std::to_string(t) + "_";
    NetId chain = b.net(tag + "c0");
    NetId side = bus[t % bus_bits];
    for (std::uint64_t u = 0; u < tile_units; ++u) {
      NetId x = b.net(tag + "x" + std::to_string(u));
      NetId next = b.net(tag + "c" + std::to_string(u + 1));
      b.place("nand2", {chain, side, x});
      b.place("inv", {x, next});
      chain = next;
      side = x;
    }
  }

  // Pad ring: ESD cells from discrete devices — a series resistor into the
  // pad node plus clamp diodes to both rails. Pads touch only res/diode
  // devices and degree-1/3 nets, so a shard of pads shares no round-0 label
  // with a CMOS logic pattern (the prefilter_rejects workload).
  {
    Module& m = *b.m;
    const DeviceCatalog& cat = b.lib.design().catalog();
    const DeviceTypeId res = cat.require("res");
    const DeviceTypeId diode = cat.require("diode");
    NetId vdd = m.ensure_net("vdd");
    NetId gnd = m.ensure_net("gnd");
    for (std::uint64_t i = 0; i < pads; ++i) {
      NetId pad = b.net("pad" + std::to_string(i));
      NetId pnode = b.net("pnode" + std::to_string(i));
      m.add_device(res, {pad, pnode});
      m.add_device(diode, {pnode, vdd});
      m.add_device(diode, {gnd, pnode});
    }
  }
  return b.finish();
}

Generated c17() {
  TopBuilder b("c17");
  NetId n1 = b.net("N1"), n2 = b.net("N2"), n3 = b.net("N3"), n6 = b.net("N6"),
        n7 = b.net("N7");
  NetId n10 = b.net("N10"), n11 = b.net("N11"), n16 = b.net("N16"),
        n19 = b.net("N19"), n22 = b.net("N22"), n23 = b.net("N23");
  b.place("nand2", {n1, n3, n10});
  b.place("nand2", {n3, n6, n11});
  b.place("nand2", {n2, n11, n16});
  b.place("nand2", {n11, n7, n19});
  b.place("nand2", {n10, n16, n22});
  b.place("nand2", {n16, n19, n23});
  return b.finish();
}

std::size_t plant_instances(Netlist& host, const Netlist& pattern,
                            std::size_t count, std::span<const NetId> pool,
                            std::uint64_t seed) {
  SUBG_CHECK_MSG(!pool.empty(), "plant_instances needs a target net pool");
  // Pool slots are consumed globally: two planted instances never share a
  // port net, so each copy is an independent instance (copies that share
  // identically-wired ports can combine into "mixed" instances that a
  // one-per-key-image matcher reports only once).
  SUBG_CHECK_MSG(pool.size() >= count * pattern.ports().size(),
                 "pool needs at least count * port_count nets ("
                     << count * pattern.ports().size() << "), got "
                     << pool.size());
  Xoshiro256 rng(seed);
  std::vector<bool> pool_used(pool.size(), false);
  for (std::size_t k = 0; k < count; ++k) {
    // Map every pattern net to a host net.
    std::vector<NetId> net_map(pattern.net_count());
    for (std::uint32_t n = 0; n < pattern.net_count(); ++n) {
      const NetId pn(n);
      if (pattern.is_global(pn)) {
        net_map[n] = host.ensure_net(pattern.net_name(pn));
        host.mark_global(net_map[n]);
      } else if (pattern.is_port(pn)) {
        std::size_t slot;
        do {
          slot = rng.below(pool.size());
        } while (pool_used[slot]);
        pool_used[slot] = true;
        net_map[n] = pool[slot];
      } else {
        net_map[n] = host.add_net();  // fresh internal net
      }
    }
    std::vector<NetId> pins;
    for (std::uint32_t d = 0; d < pattern.device_count(); ++d) {
      const DeviceId pd(d);
      pins.clear();
      for (NetId pn : pattern.device_pins(pd)) {
        pins.push_back(net_map[pn.index()]);
      }
      // Resolve the device type by name: host and pattern may use distinct
      // catalog objects.
      host.add_device(host.catalog().require(pattern.device_type_info(pd).name),
                      pins);
    }
  }
  return count;
}

}  // namespace subg::gen
