// Transistor-level workload generators (the paper's §VI evaluation used the
// authors' proprietary CMOS chips; these parameterized circuits are the
// open substitute — see DESIGN.md §4). Each generator builds a hierarchical
// design out of the standard-cell library, flattens it, and reports ground
// truth: how many instances of each cell the construction placed.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "netlist/netlist.hpp"

namespace subg::gen {

struct Generated {
  Netlist netlist;
  /// Cell name → number of instances placed by construction. A lower bound
  /// on what a matcher must find (incidental structural copies can exist,
  /// e.g. the cross-coupled inverter pair inside an SRAM cell).
  std::map<std::string, std::size_t> placed;

  [[nodiscard]] std::size_t placed_count(const std::string& cell) const {
    auto it = placed.find(cell);
    return it == placed.end() ? 0 : it->second;
  }
};

/// N-bit ripple-carry adder: a chain of `fulladder` cells.
[[nodiscard]] Generated ripple_carry_adder(int bits);

/// N×N Braun array multiplier: N² AND gates (nand2+inv) plus an adder array
/// of halfadder/fulladder cells.
[[nodiscard]] Generated array_multiplier(int bits);

/// SRAM block: rows×cols 6T cells, a NAND/INV row decoder (rows ≤ 16), and
/// per-column pmos precharge pairs.
[[nodiscard]] Generated sram_array(int rows, int cols);

/// n-to-2^n decoder (n ≤ 4): per-output nand_n + inverter, plus address
/// inverters.
[[nodiscard]] Generated decoder(int addr_bits);

/// words×width register file: dff storage with a write-select mux2 per bit.
[[nodiscard]] Generated register_file(int words, int width);

/// Random combinational/sequential "logic soup": `gates` random cells with
/// random input wiring; realistic fanout distribution, reconvergence, and
/// rails shared by everything.
[[nodiscard]] Generated logic_soup(std::size_t gates, std::uint64_t seed);

/// Kogge–Stone parallel-prefix adder: log-depth carry tree with heavy
/// reconvergent fanout (every prefix node feeds two successors). Exercises
/// the paper's claim that the matcher handles reconvergence, unlike
/// tree-covering technology mappers (§I).
[[nodiscard]] Generated kogge_stone_adder(int bits);

/// Balanced XOR parity tree over n inputs (n rounded up to a power of two
/// internally is NOT done — n-1 xor2 cells in a left-balanced tree).
[[nodiscard]] Generated parity_tree(int inputs);

/// ISCAS-85 c17 (6 NAND2 gates) at transistor level.
[[nodiscard]] Generated c17();

/// Copy `pattern` into `host` `count` times. Internal pattern nets get
/// fresh host nets (so every copy is a true induced instance); port nets
/// are wired to nets drawn from `pool` (distinct nets within one copy).
/// Pool nets must not be internal to anything the caller cares about.
/// Returns the number of instances planted (== count).
std::size_t plant_instances(Netlist& host, const Netlist& pattern,
                            std::size_t count, std::span<const NetId> pool,
                            std::uint64_t seed);

}  // namespace subg::gen
