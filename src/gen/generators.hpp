// Transistor-level workload generators (the paper's §VI evaluation used the
// authors' proprietary CMOS chips; these parameterized circuits are the
// open substitute — see DESIGN.md §4). Each generator builds a hierarchical
// design out of the standard-cell library, flattens it, and reports ground
// truth: how many instances of each cell the construction placed.
#pragma once

#include <cstdint>
#include <map>
#include <span>
#include <string>

#include "netlist/netlist.hpp"

namespace subg::gen {

struct Generated {
  Netlist netlist;
  /// Cell name → number of instances placed by construction. A lower bound
  /// on what a matcher must find (incidental structural copies can exist,
  /// e.g. the cross-coupled inverter pair inside an SRAM cell).
  std::map<std::string, std::size_t> placed;

  [[nodiscard]] std::size_t placed_count(const std::string& cell) const {
    auto it = placed.find(cell);
    return it == placed.end() ? 0 : it->second;
  }
};

/// Size parameters are uint64 throughout (ISSUE 10 / ROADMAP "million-device
/// hosts"): callers can request arbitrarily large workloads and every
/// generator guards its own arithmetic — a size whose device+net total would
/// overflow the uint32 graph-vertex space (or whose intermediate products
/// would overflow uint64) throws subg::Error BEFORE allocating anything.

/// N-bit ripple-carry adder: a chain of `fulladder` cells.
[[nodiscard]] Generated ripple_carry_adder(std::uint64_t bits);

/// N×N Braun array multiplier: N² AND gates (nand2+inv) plus an adder array
/// of halfadder/fulladder cells.
[[nodiscard]] Generated array_multiplier(std::uint64_t bits);

/// SRAM block: rows×cols 6T cells, a NAND/INV row decoder (rows ≤ 16), and
/// per-column pmos precharge pairs.
[[nodiscard]] Generated sram_array(std::uint64_t rows, std::uint64_t cols);

/// n-to-2^n decoder (n ≤ 4): per-output nand_n + inverter, plus address
/// inverters.
[[nodiscard]] Generated decoder(std::uint64_t addr_bits);

/// words×width register file: dff storage with a write-select mux2 per bit.
[[nodiscard]] Generated register_file(std::uint64_t words, std::uint64_t width);

/// Random combinational/sequential "logic soup": `gates` random cells with
/// random input wiring; realistic fanout distribution, reconvergence, and
/// rails shared by everything.
[[nodiscard]] Generated logic_soup(std::size_t gates, std::uint64_t seed);

/// Kogge–Stone parallel-prefix adder: log-depth carry tree with heavy
/// reconvergent fanout (every prefix node feeds two successors). Exercises
/// the paper's claim that the matcher handles reconvergence, unlike
/// tree-covering technology mappers (§I).
[[nodiscard]] Generated kogge_stone_adder(std::uint64_t bits);

/// Balanced XOR parity tree over n inputs (n rounded up to a power of two
/// internally is NOT done — n-1 xor2 cells in a left-balanced tree).
[[nodiscard]] Generated parity_tree(std::uint64_t inputs);

/// Tiled synthetic SoC at transistor level — the multi-million-device host
/// behind bench_shard's E10 experiment (DESIGN.md §11). Three structurally
/// distinct districts, chosen so a fanout-bounded shard decomposition of the
/// flattened netlist has real work to do:
///
///   cores    `tiles` tiles, each a chain of `tile_units` (nand2 → inv)
///            units — 6 transistors per unit. Unit 0's nand2 takes its
///            second input from bus[t % bus_bits] (one bus tap per tile);
///            later units feed from the previous unit's nand2 output, so
///            intra-tile nets stay degree ≤ 3 (each tile is one connected
///            region, and per-candidate match cost stays O(1) in the SoC
///            size).
///   bus      `bus_bits` shared nets driven by one inv each (so no net
///            dangles). Bus fanout is tiles/bus_bits + 1: at tiles ≥
///            64·bus_bits the bus nets cross the default --shard fanout
///            threshold and become boundary anchors.
///   pad ring `pads` ESD cells: res(pad_i → pnode_i) plus clamp diodes
///            pnode_i → vdd and gnd → pnode_i. Pads touch only res/diode
///            devices and degree-1/3 nets — a shard of pads shares no
///            round-0 label with a CMOS logic pattern, which is what makes
///            `shards.prefilter_rejects` > 0 on this workload.
///
/// Devices = 6·tiles·tile_units + 3·pads + 2·bus_bits. placed["nand2"] is
/// exactly tiles·tile_units (the ground truth bench_shard checks).
[[nodiscard]] Generated soc_grid(std::uint64_t tiles, std::uint64_t tile_units,
                                 std::uint64_t pads,
                                 std::uint64_t bus_bits = 8);

/// ISCAS-85 c17 (6 NAND2 gates) at transistor level.
[[nodiscard]] Generated c17();

/// Copy `pattern` into `host` `count` times. Internal pattern nets get
/// fresh host nets (so every copy is a true induced instance); port nets
/// are wired to nets drawn from `pool` (distinct nets within one copy).
/// Pool nets must not be internal to anything the caller cares about.
/// Returns the number of instances planted (== count).
std::size_t plant_instances(Netlist& host, const Netlist& pattern,
                            std::size_t count, std::span<const NetId> pool,
                            std::uint64_t seed);

}  // namespace subg::gen
