#include "gemini/gemini.hpp"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_map>

#include "graph/circuit_graph.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace subg {

namespace {

struct GeminiState {
  const CircuitGraph& a;
  const CircuitGraph& b;
  std::vector<Label> label_a, label_b;
  std::vector<Label> scratch_a, scratch_b;
  SplitMix64 rng;

  GeminiState(const CircuitGraph& ga, const CircuitGraph& gb, std::uint64_t seed)
      : a(ga), b(gb), rng(seed) {
    label_a.resize(a.vertex_count());
    label_b.resize(b.vertex_count());
    for (Vertex v = 0; v < a.vertex_count(); ++v) label_a[v] = a.initial_label(v);
    for (Vertex v = 0; v < b.vertex_count(); ++v) label_b[v] = b.initial_label(v);
    scratch_a = label_a;
    scratch_b = label_b;
  }

  static void relabel_graph(const CircuitGraph& g, const std::vector<Label>& old_l,
                            std::vector<Label>& new_l) {
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (g.is_special(v)) {
        new_l[v] = old_l[v];  // rails keep their name labels
        continue;
      }
      Label sum = 0;
      for (const auto& e : g.edges(v)) {
        sum += edge_contribution(e.coefficient, old_l[e.to]);
      }
      new_l[v] = relabel(old_l[v], sum);
    }
  }

  void relabel_round() {
    relabel_graph(a, label_a, scratch_a);
    relabel_graph(b, label_b, scratch_b);
    label_a.swap(scratch_a);
    label_b.swap(scratch_b);
  }

  /// Partition census: label → (count in a, count in b, sample vertices).
  struct Census {
    std::map<Label, std::pair<std::size_t, std::size_t>> counts;
    bool balanced = true;
    std::size_t partitions = 0;
    std::size_t singletons = 0;
  };

  [[nodiscard]] Census census() const {
    Census c;
    for (Vertex v = 0; v < a.vertex_count(); ++v) ++c.counts[label_a[v]].first;
    for (Vertex v = 0; v < b.vertex_count(); ++v) ++c.counts[label_b[v]].second;
    for (const auto& [lbl, cnt] : c.counts) {
      if (cnt.first != cnt.second) c.balanced = false;
      ++c.partitions;
      if (cnt.first == 1 && cnt.second == 1) ++c.singletons;
    }
    return c;
  }
};

/// Verify an all-singleton label correspondence edge-by-edge and build the
/// explicit mapping.
bool finalize(const GeminiState& st, CompareResult* out) {
  const CircuitGraph& a = st.a;
  const CircuitGraph& b = st.b;
  std::unordered_map<Label, Vertex> where_b;
  where_b.reserve(b.vertex_count());
  for (Vertex v = 0; v < b.vertex_count(); ++v) {
    if (!where_b.emplace(st.label_b[v], v).second) return false;
  }
  std::vector<Vertex> map_ab(a.vertex_count());
  for (Vertex v = 0; v < a.vertex_count(); ++v) {
    auto it = where_b.find(st.label_a[v]);
    if (it == where_b.end()) return false;
    if (a.is_device(v) != b.is_device(it->second)) return false;
    map_ab[v] = it->second;
  }

  const Netlist& na = a.netlist();
  const Netlist& nb = b.netlist();
  for (std::uint32_t d = 0; d < na.device_count(); ++d) {
    const DeviceId ad(d);
    const DeviceId bd = b.device_of(map_ab[a.vertex_of(ad)]);
    const DeviceTypeInfo& at = na.device_type_info(ad);
    const DeviceTypeInfo& bt = nb.device_type_info(bd);
    if (at.name != bt.name || at.pin_class != bt.pin_class) return false;
    auto apins = na.device_pins(ad);
    auto bpins = nb.device_pins(bd);
    if (apins.size() != bpins.size()) return false;
    std::vector<std::pair<std::uint32_t, Vertex>> want, have;
    for (std::uint32_t p = 0; p < apins.size(); ++p) {
      want.emplace_back(at.pin_class[p], map_ab[a.vertex_of(apins[p])]);
      have.emplace_back(bt.pin_class[p], b.vertex_of(bpins[p]));
    }
    std::sort(want.begin(), want.end());
    std::sort(have.begin(), have.end());
    if (want != have) return false;
  }

  out->device_map.assign(na.device_count(), DeviceId());
  out->net_map.assign(na.net_count(), NetId());
  for (Vertex v = 0; v < a.vertex_count(); ++v) {
    if (a.is_device(v)) {
      out->device_map[v] = b.device_of(map_ab[v]);
    } else {
      out->net_map[a.net_of(v).index()] = b.net_of(map_ab[v]);
    }
  }
  return true;
}

/// Severity-ordered outcome escalation (see RunStatus::escalate).
void escalate(CompareResult* out, RunOutcome to) {
  if (static_cast<int>(to) > static_cast<int>(out->outcome)) out->outcome = to;
}

/// Refine until all-singleton (try finalize), imbalanced (fail), or stall
/// (individuate + recurse).
bool solve(GeminiState& st, const CompareOptions& options, CompareResult* out) {
  std::size_t prev_partitions = 0;
  while (out->rounds < options.max_rounds) {
    RunOutcome why;
    if (options.budget.interrupted(&why)) {
      escalate(out, why);
      out->reason =
          std::string(to_string(why)) + " before refinement converged";
      return false;
    }
    GeminiState::Census c = st.census();
    if (!c.balanced) {
      out->reason = "partition sizes diverge after " +
                    std::to_string(out->rounds) + " refinement rounds";
      return false;
    }
    if (c.singletons == c.partitions &&
        c.partitions == st.a.vertex_count()) {
      if (finalize(st, out)) return true;
      out->reason = "label correspondence failed edge verification";
      return false;
    }
    if (c.partitions == prev_partitions) {
      // Stall: automorphism symmetry. Individuate the first vertex of the
      // smallest non-singleton partition of `a` against each choice in `b`.
      Label target = kNoLabel;
      std::size_t best = 0;
      for (const auto& [lbl, cnt] : c.counts) {
        if (cnt.first >= 2 && (target == kNoLabel || cnt.first < best)) {
          target = lbl;
          best = cnt.first;
        }
      }
      if (target == kNoLabel) {
        out->reason = "refinement stalled without non-singleton partitions";
        return false;
      }
      Vertex va = 0;
      while (st.label_a[va] != target) ++va;
      Label fresh;
      do {
        fresh = st.rng();
      } while (fresh == kNoLabel);
      const std::vector<Label> save_a = st.label_a;
      const std::vector<Label> save_b = st.label_b;
      for (Vertex vb = 0; vb < st.b.vertex_count(); ++vb) {
        if (st.label_b[vb] != target) continue;
        if (++out->individuations > options.max_individuations) {
          out->reason = "individuation budget exhausted";
          escalate(out, RunOutcome::kTruncated);
          return false;
        }
        st.label_a[va] = fresh;
        st.label_b[vb] = fresh;
        CompareResult attempt = *out;
        if (solve(st, options, &attempt)) {
          *out = attempt;
          return true;
        }
        out->rounds = attempt.rounds;
        out->individuations = attempt.individuations;
        if (attempt.outcome != RunOutcome::kComplete) {
          // A branch that was cut short (not refuted) poisons completeness;
          // keep its explanation in case we end up failing overall.
          escalate(out, attempt.outcome);
          out->reason = attempt.reason;
        }
        st.label_a = save_a;
        st.label_b = save_b;
      }
      if (out->outcome == RunOutcome::kComplete) {
        out->reason = "no consistent individuation for a symmetric partition";
      }
      return false;
    }
    prev_partitions = c.partitions;
    st.relabel_round();
    ++out->rounds;
  }
  out->reason = "round budget exhausted";
  escalate(out, RunOutcome::kTruncated);
  return false;
}

}  // namespace

CompareResult compare_netlists(const Netlist& a, const Netlist& b,
                               const CompareOptions& options) {
  CompareResult result;
  if (a.device_count() != b.device_count()) {
    result.reason = "device counts differ (" + std::to_string(a.device_count()) +
                    " vs " + std::to_string(b.device_count()) + ")";
    return result;
  }
  if (a.net_count() != b.net_count()) {
    result.reason = "net counts differ (" + std::to_string(a.net_count()) +
                    " vs " + std::to_string(b.net_count()) + ")";
    return result;
  }
  CircuitGraph ga(a), gb(b);
  GeminiState st(ga, gb, options.seed);
  if (solve(st, options, &result)) {
    result.isomorphic = true;
    result.reason.clear();
    // A found-and-verified correspondence is definitive even if some other
    // branch was cut short along the way.
    result.outcome = RunOutcome::kComplete;
  }
  return result;
}

}  // namespace subg
