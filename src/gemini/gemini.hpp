// Gemini-style netlist comparison (graph isomorphism) — the substrate the
// SubGemini paper builds on (refs [3,4]).
//
// Two circuit graphs are relabeled in lockstep by the same partition
// refinement SubGemini uses for subgraph matching, but with no
// corrupt/suspect machinery: both graphs are complete, so every vertex
// invariant (device type, net degree, rail names) is trustworthy. When the
// partitions of the two graphs ever disagree, the netlists are not
// isomorphic; when refinement reaches all-singleton partitions, the label
// correspondence IS the isomorphism. Automorphic (symmetric) circuits
// stall with paired non-singleton partitions; then one vertex pair is
// individuated (given a fresh shared label) and refinement resumes, with
// backtracking across the choice.
//
// Used here to verify gate-extraction round trips (extract, re-expand,
// compare to the original) and as a standalone LVS-lite utility.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/budget.hpp"

namespace subg {

struct CompareOptions {
  std::uint64_t seed = 0x47454D494E49ULL;  // "GEMINI"
  std::size_t max_rounds = 10'000;
  std::size_t max_individuations = 100'000;
  /// Wall-clock / cancellation envelope, polled once per refinement round.
  Budget budget;
};

struct CompareResult {
  bool isomorphic = false;
  /// kComplete: `isomorphic` is a definitive verdict. Anything else means
  /// the comparison was cut short (round/individuation caps, deadline, or
  /// cancellation) and a false `isomorphic` is NOT a proof of difference.
  RunOutcome outcome = RunOutcome::kComplete;
  /// Human-readable cause when not isomorphic (first divergence found).
  std::string reason;
  /// When isomorphic: device i of `a` corresponds to device_map[i] of `b`,
  /// net i of `a` to net_map[i] of `b`.
  std::vector<DeviceId> device_map;
  std::vector<NetId> net_map;
  std::size_t rounds = 0;
  std::size_t individuations = 0;
};

/// Decide whether two netlists are isomorphic (same devices, same
/// connectivity up to pin equivalence classes, rails matched by name).
[[nodiscard]] CompareResult compare_netlists(const Netlist& a, const Netlist& b,
                                             const CompareOptions& options = {});

}  // namespace subg
