// Selector for the matching-core data layout.
//
// kCsr (the default) runs Phase I/II and the host label cache over the
// flattened structure-of-arrays core (graph/csr_core.hpp); kLegacy walks
// the original CircuitGraph edge records. Both cores compute the same
// label arithmetic in the same order, so every report is byte-identical
// across the toggle — kLegacy exists as the reference path for the
// equivalence tests and as an escape hatch, not as a different algorithm.
#pragma once

#include <optional>
#include <string_view>

namespace subg {

enum class CoreMode { kCsr, kLegacy };

[[nodiscard]] constexpr const char* to_string(CoreMode mode) {
  return mode == CoreMode::kCsr ? "csr" : "legacy";
}

[[nodiscard]] inline std::optional<CoreMode> parse_core_mode(
    std::string_view text) {
  if (text == "csr") return CoreMode::kCsr;
  if (text == "legacy") return CoreMode::kLegacy;
  return std::nullopt;
}

}  // namespace subg
