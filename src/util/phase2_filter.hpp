// Selector for the Phase II candidate-prefilter strength.
//
// kPaths (the default) runs the neighborhood-signature check plus the
// supplemental path-label refuter (src/analyze: closed-walk counts through
// tracked net-degree classes); kOn runs the signature check alone; kOff
// reproduces the pure census search. All three are sound — instances and
// statuses are identical across the toggle; only the work counters shrink
// as the filter strengthens — so kOn/kOff exist for A/B measurement
// (--phase2-filter), not as different algorithms.
#pragma once

#include <optional>
#include <string_view>

namespace subg {

enum class Phase2Filter { kOff, kOn, kPaths };

[[nodiscard]] constexpr const char* to_string(Phase2Filter filter) {
  switch (filter) {
    case Phase2Filter::kOff: return "off";
    case Phase2Filter::kOn: return "on";
    case Phase2Filter::kPaths: return "paths";
  }
  return "unknown";
}

[[nodiscard]] inline std::optional<Phase2Filter> parse_phase2_filter(
    std::string_view text) {
  if (text == "off") return Phase2Filter::kOff;
  if (text == "on") return Phase2Filter::kOn;
  if (text == "paths") return Phase2Filter::kPaths;
  return std::nullopt;
}

}  // namespace subg
