// Monotonic wall-clock timing for the benchmark harnesses.
#pragma once

#include <chrono>
#include <cstdint>

namespace subg {

/// Simple monotonic stopwatch.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void reset() { start_ = Clock::now(); }

  /// Elapsed time since construction/reset, in seconds.
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Elapsed time in milliseconds.
  [[nodiscard]] double millis() const { return seconds() * 1e3; }

  /// Elapsed time in microseconds.
  [[nodiscard]] double micros() const { return seconds() * 1e6; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// Accumulates time across multiple start/stop windows (Phase I vs Phase II
/// attribution in the results tables).
class Accumulator {
 public:
  void start() { timer_.reset(); running_ = true; }
  void stop() {
    if (running_) {
      total_ += timer_.seconds();
      running_ = false;
    }
  }
  void add_seconds(double s) { total_ += s; }
  [[nodiscard]] double seconds() const { return total_; }
  [[nodiscard]] double millis() const { return total_ * 1e3; }
  void reset() { total_ = 0; running_ = false; }

 private:
  Timer timer_;
  double total_ = 0;
  bool running_ = false;
};

}  // namespace subg
