// Line-framed IO over POSIX file descriptors, for the serve protocol.
//
// The serve daemon frames requests and responses as newline-terminated
// JSON. std::getline cannot serve that loop: it blocks uninterruptibly (a
// SIGTERM drain must be able to wake the reader), and it buffers an
// arbitrarily long line before the caller can reject it (an oversized
// request must be refused after max_line_bytes, not after exhausting
// memory). LineReader reads through poll(2) with a bounded buffer:
//
//   LineReader reader(STDIN_FILENO, 1 << 20);
//   std::string line;
//   switch (reader.read_line(&line, &stop_flag)) { ... }
//
// Oversized lines are consumed to their newline (framing survives) and
// reported as kOversized with the truncated prefix in *line, so the server
// can answer with a structured rejection and keep serving.
//
// write_line appends '\n' and writes the whole frame with a retry loop
// (partial writes, EINTR), returning false on a broken pipe instead of
// raising SIGPIPE — callers must have SIGPIPE ignored or blocked.
#pragma once

#include <atomic>
#include <cstddef>
#include <string>
#include <string_view>

namespace subg {

class LineReader {
 public:
  enum class Status {
    kLine,         ///< *line holds one complete line (no terminator)
    kOversized,    ///< line exceeded max_line_bytes; discarded to newline
    kEof,          ///< end of stream (a final unterminated line IS returned
                   ///< as kLine first)
    kInterrupted,  ///< *interrupt became true while waiting for input
    kError,        ///< unrecoverable read error (errno-level)
  };

  /// Reads from `fd`, which stays owned by the caller. Lines longer than
  /// `max_line_bytes` (terminator excluded) report kOversized.
  LineReader(int fd, std::size_t max_line_bytes);

  /// Block until one line, EOF, an error, or (when `interrupt` is non-null)
  /// the flag turning true; the flag is polled every `poll_interval_ms`.
  Status read_line(std::string* line,
                   const std::atomic<bool>* interrupt = nullptr,
                   int poll_interval_ms = 100);

  /// Bytes discarded by the most recent kOversized result (terminator
  /// excluded; includes the prefix returned in *line).
  [[nodiscard]] std::size_t last_line_bytes() const {
    return last_line_bytes_;
  }

 private:
  /// Refill buf_ from fd; returns kLine when data arrived.
  Status fill(const std::atomic<bool>* interrupt, int poll_interval_ms);
  /// Drop the consumed prefix of buf_ when it gets large.
  void compact();

  int fd_;
  std::size_t max_line_bytes_;
  std::string buf_;      ///< bytes read but not yet consumed
  std::size_t start_ = 0;  ///< consumed prefix of buf_
  std::size_t last_line_bytes_ = 0;
  bool eof_ = false;
};

/// Write `line` plus '\n' as one frame, retrying partial writes and EINTR.
/// Returns false when the peer is gone (EPIPE/ECONNRESET) or on any other
/// write error.
bool write_line(int fd, std::string_view line);

}  // namespace subg
