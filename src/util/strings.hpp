// Small string helpers shared by the SPICE parser and the report printers.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace subg {

/// Split on any run of whitespace; no empty tokens.
[[nodiscard]] std::vector<std::string_view> split_ws(std::string_view line);

/// Split on a single delimiter character; keeps empty fields.
[[nodiscard]] std::vector<std::string_view> split_char(std::string_view s, char delim);

/// ASCII lower-case copy (SPICE is case-insensitive).
[[nodiscard]] std::string to_lower(std::string_view s);

/// ASCII upper-case copy.
[[nodiscard]] std::string to_upper(std::string_view s);

/// Trim ASCII whitespace from both ends.
[[nodiscard]] std::string_view trim(std::string_view s);

/// True if `s` starts with `prefix`, ignoring ASCII case.
[[nodiscard]] bool starts_with_icase(std::string_view s, std::string_view prefix);

/// True if `s` ends with `suffix`, ignoring ASCII case.
[[nodiscard]] bool ends_with_icase(std::string_view s, std::string_view suffix);

/// Case-insensitive ASCII equality.
[[nodiscard]] bool equals_icase(std::string_view a, std::string_view b);

/// Format a double with fixed precision into a string (no locale surprises).
[[nodiscard]] std::string format_fixed(double value, int precision);

/// Thousands-separated integer rendering for tables ("123,456").
[[nodiscard]] std::string with_commas(long long value);

}  // namespace subg
