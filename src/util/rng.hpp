// Deterministic pseudo-random number generation for reproducible runs.
//
// SubGemini's Phase II assigns "unique random labels" to matched vertex
// pairs (paper §IV). Reproducibility of a run therefore requires that all
// randomness come from an explicitly seeded stream. We provide SplitMix64
// (used both as a stream generator and as a 64-bit finalizer/mixer) and
// xoshiro256** for bulk workload generation.
#pragma once

#include <array>
#include <cstdint>
#include <limits>

namespace subg {

/// SplitMix64 finalizer: a high-quality 64-bit bijective mixing function.
/// Used to derive label hashes; see util/hash.hpp for the labeling helpers.
[[nodiscard]] constexpr std::uint64_t splitmix64_mix(std::uint64_t z) noexcept {
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Minimal SplitMix64 stream generator. Satisfies UniformRandomBitGenerator.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed = 0x8D0C5DE3F0E2B1A7ULL) noexcept
      : state_(seed) {}

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    state_ += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = state_;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    // Multiply-shift rejection-free mapping (Lemire); tiny bias is
    // irrelevant for workload generation.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Stream equality = identical future draws (the Phase II trail audit
  /// cross-checks restored state, rng stream included).
  [[nodiscard]] friend constexpr bool operator==(const SplitMix64&,
                                                 const SplitMix64&) = default;

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — fast, high-quality generator for bulk random
/// workload generation (logic soup wiring, instance placement).
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed = 1) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm();
  }

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return std::numeric_limits<result_type>::max();
  }

  constexpr result_type operator()() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  constexpr std::uint64_t below(std::uint64_t bound) noexcept {
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(operator()()) * bound) >> 64);
  }

  /// Uniform double in [0, 1).
  constexpr double uniform() noexcept {
    return static_cast<double>(operator()() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  constexpr bool chance(double p) noexcept { return uniform() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> s_;
};

}  // namespace subg
