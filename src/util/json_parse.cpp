#include "util/json_parse.hpp"

#include <cerrno>
#include <charconv>
#include <cstdint>
#include <cstdlib>

namespace subg::json {

namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth)
      : text_(text), max_depth_(max_depth) {}

  ParseResult run() {
    ParseResult result;
    skip_ws();
    if (!parse_value(&result.value)) {
      result.error = error_;
      result.offset = error_at_;
      return result;
    }
    skip_ws();
    if (pos_ != text_.size()) {
      result.value = Value();
      result.error = "trailing characters after the value";
      result.offset = pos_;
    }
    return result;
  }

 private:
  bool fail(const std::string& message) {
    // Keep the FIRST failure: callees may fail deeper first.
    if (error_.empty()) {
      error_ = message;
      error_at_ = pos_;
    }
    return false;
  }

  [[nodiscard]] bool at_end() const { return pos_ >= text_.size(); }
  [[nodiscard]] char peek() const { return text_[pos_]; }

  void skip_ws() {
    while (!at_end()) {
      const char c = peek();
      if (c != ' ' && c != '\t' && c != '\n' && c != '\r') break;
      ++pos_;
    }
  }

  bool consume_literal(std::string_view word, Value value, Value* out) {
    if (text_.substr(pos_, word.size()) != word) {
      return fail("invalid literal");
    }
    pos_ += word.size();
    *out = std::move(value);
    return true;
  }

  bool parse_value(Value* out) {
    if (depth_ >= max_depth_) return fail("nesting too deep");
    if (at_end()) return fail("unexpected end of input");
    switch (peek()) {
      case 'n': return consume_literal("null", Value(), out);
      case 't': return consume_literal("true", Value(true), out);
      case 'f': return consume_literal("false", Value(false), out);
      case '"': {
        std::string s;
        if (!parse_string(&s)) return false;
        *out = Value(std::move(s));
        return true;
      }
      case '[': return parse_array(out);
      case '{': return parse_object(out);
      default: return parse_number(out);
    }
  }

  bool parse_array(Value* out) {
    ++pos_;  // '['
    ++depth_;
    Value array = Value::array();
    skip_ws();
    if (!at_end() && peek() == ']') {
      ++pos_;
      --depth_;
      *out = std::move(array);
      return true;
    }
    while (true) {
      Value element;
      skip_ws();
      if (!parse_value(&element)) return false;
      array.push(std::move(element));
      skip_ws();
      if (at_end()) return fail("unterminated array");
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        --depth_;
        *out = std::move(array);
        return true;
      }
      return fail("expected ',' or ']' in array");
    }
  }

  bool parse_object(Value* out) {
    ++pos_;  // '{'
    ++depth_;
    Value object = Value::object();
    skip_ws();
    if (!at_end() && peek() == '}') {
      ++pos_;
      --depth_;
      *out = std::move(object);
      return true;
    }
    while (true) {
      skip_ws();
      if (at_end() || peek() != '"') return fail("expected object key string");
      std::string key;
      if (!parse_string(&key)) return false;
      skip_ws();
      if (at_end() || peek() != ':') return fail("expected ':' after key");
      ++pos_;
      skip_ws();
      Value member;
      if (!parse_value(&member)) return false;
      // Duplicate keys: last one wins (set() replaces), like most parsers.
      object.set(std::move(key), std::move(member));
      skip_ws();
      if (at_end()) return fail("unterminated object");
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        --depth_;
        *out = std::move(object);
        return true;
      }
      return fail("expected ',' or '}' in object");
    }
  }

  /// Append one code point as UTF-8.
  static void append_utf8(std::string* s, std::uint32_t cp) {
    if (cp < 0x80) {
      s->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      s->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      s->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      s->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      s->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  bool parse_hex4(std::uint32_t* out) {
    if (pos_ + 4 > text_.size()) return fail("truncated \\u escape");
    std::uint32_t value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = text_[pos_ + static_cast<std::size_t>(i)];
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<std::uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<std::uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<std::uint32_t>(c - 'A' + 10);
      } else {
        return fail("invalid \\u escape digit");
      }
    }
    pos_ += 4;
    *out = value;
    return true;
  }

  bool parse_string(std::string* out) {
    ++pos_;  // opening quote
    out->clear();
    while (true) {
      if (at_end()) return fail("unterminated string");
      const char c = text_[pos_];
      if (c == '"') {
        ++pos_;
        return true;
      }
      if (static_cast<unsigned char>(c) < 0x20) {
        return fail("unescaped control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        ++pos_;
        continue;
      }
      ++pos_;
      if (at_end()) return fail("truncated escape");
      const char esc = text_[pos_++];
      switch (esc) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          std::uint32_t cp = 0;
          if (!parse_hex4(&cp)) return false;
          if (cp >= 0xD800 && cp <= 0xDBFF) {
            // High surrogate: require the low half.
            if (pos_ + 2 > text_.size() || text_[pos_] != '\\' ||
                text_[pos_ + 1] != 'u') {
              return fail("unpaired surrogate");
            }
            pos_ += 2;
            std::uint32_t low = 0;
            if (!parse_hex4(&low)) return false;
            if (low < 0xDC00 || low > 0xDFFF) {
              return fail("invalid low surrogate");
            }
            cp = 0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
          } else if (cp >= 0xDC00 && cp <= 0xDFFF) {
            return fail("unpaired surrogate");
          }
          append_utf8(out, cp);
          break;
        }
        default: return fail("invalid escape character");
      }
    }
  }

  bool parse_number(Value* out) {
    const std::size_t start = pos_;
    const bool negative = !at_end() && peek() == '-';
    if (negative) ++pos_;
    if (at_end() || peek() < '0' || peek() > '9') {
      pos_ = start;
      return fail("invalid number");
    }
    // Leading zero must not be followed by another digit.
    if (peek() == '0' && pos_ + 1 < text_.size() && text_[pos_ + 1] >= '0' &&
        text_[pos_ + 1] <= '9') {
      return fail("leading zero in number");
    }
    bool integral = true;
    while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    if (!at_end() && peek() == '.') {
      integral = false;
      ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digit required after decimal point");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    if (!at_end() && (peek() == 'e' || peek() == 'E')) {
      integral = false;
      ++pos_;
      if (!at_end() && (peek() == '+' || peek() == '-')) ++pos_;
      if (at_end() || peek() < '0' || peek() > '9') {
        return fail("digit required in exponent");
      }
      while (!at_end() && peek() >= '0' && peek() <= '9') ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (integral) {
      // from_chars range failure (not a syntax failure — the grammar was
      // already checked) means the magnitude needs a double.
      if (negative) {
        std::int64_t i = 0;
        const auto res =
            std::from_chars(token.data(), token.data() + token.size(), i);
        if (res.ec == std::errc() && res.ptr == token.data() + token.size()) {
          *out = Value(i);
          return true;
        }
      } else {
        std::uint64_t u = 0;
        const auto res =
            std::from_chars(token.data(), token.data() + token.size(), u);
        if (res.ec == std::errc() && res.ptr == token.data() + token.size()) {
          *out = Value(u);
          return true;
        }
      }
    }
    // strtod over a bounded copy: from_chars<double> is missing on some
    // libstdc++ versions this project still builds with.
    const std::string copy(token);
    errno = 0;
    char* end = nullptr;
    const double d = std::strtod(copy.c_str(), &end);
    if (end != copy.c_str() + copy.size()) return fail("invalid number");
    *out = Value(d);
    return true;
  }

  std::string_view text_;
  std::size_t max_depth_;
  std::size_t pos_ = 0;
  std::size_t depth_ = 0;
  std::string error_;
  std::size_t error_at_ = 0;
};

}  // namespace

ParseResult parse(std::string_view text, std::size_t max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace subg::json
