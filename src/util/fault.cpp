#include "util/fault.hpp"

#include <cstdlib>

namespace subg::fault {

bool arm_from_env() {
  const char* spec = std::getenv("SUBG_FAULT");
  if (spec == nullptr || *spec == '\0') return false;
  const std::string text(spec);
  std::string site = text;
  std::uint64_t nth = 1;
  const std::size_t colon = text.rfind(':');
  if (colon != std::string::npos) {
    site = text.substr(0, colon);
    const std::string ordinal = text.substr(colon + 1);
    SUBG_CHECK_MSG(!ordinal.empty() &&
                       ordinal.find_first_not_of("0123456789") ==
                           std::string::npos,
                   "SUBG_FAULT: ordinal '" << ordinal
                                           << "' is not a positive integer");
    nth = std::strtoull(ordinal.c_str(), nullptr, 10);
  }
  SUBG_CHECK_MSG(arm(site, nth), "SUBG_FAULT: unknown site '"
                                     << site << "' or zero ordinal (sites: "
                                     << [] {
                                          std::string all;
                                          for (const auto& s : kSites) {
                                            if (!all.empty()) all += ", ";
                                            all += s;
                                          }
                                          return all;
                                        }() << ")");
  return true;
}

}  // namespace subg::fault
