// Precondition / invariant checking.
//
// SUBG_CHECK is always on (API misuse should fail loudly, per the C++ Core
// Guidelines' interface rules); SUBG_DCHECK compiles out in release builds
// and guards internal invariants on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace subg {

/// Thrown on violated preconditions and malformed inputs.
class Error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << file << ':' << line << ": check failed: " << expr;
  if (!msg.empty()) os << " — " << msg;
  throw Error(os.str());
}
}  // namespace detail

}  // namespace subg

#define SUBG_CHECK(expr)                                                     \
  do {                                                                       \
    if (!(expr)) ::subg::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define SUBG_CHECK_MSG(expr, msg)                                      \
  do {                                                                 \
    if (!(expr)) {                                                     \
      std::ostringstream subg_os_;                                     \
      subg_os_ << msg;                                                 \
      ::subg::detail::check_failed(#expr, __FILE__, __LINE__,          \
                                   subg_os_.str());                   \
    }                                                                  \
  } while (0)

#ifdef NDEBUG
#define SUBG_DCHECK(expr) ((void)0)
#else
#define SUBG_DCHECK(expr) SUBG_CHECK(expr)
#endif

// SUBG_AUDIT / SUBG_AUDIT_MSG: the internal invariant auditor. Deeper (and
// costlier) than SUBG_DCHECK — these verify algorithmic invariants of the
// matching runtime itself (partition-refinement monotonicity, corrupt-bit
// propagation, candidate-vector ⊆ host-partition consistency, label-cache
// key stability), some of which need O(n) scans per round. They compile to
// nothing unless the build sets -DSUBG_AUDIT=ON (cmake option; defines
// SUBG_AUDIT_ENABLED), so production and benchmark binaries pay zero cost.
// DESIGN.md ("Invariant catalog") enumerates every assertion and the paper
// property it guards. kAuditEnabled lets tests and reports state whether
// the auditor was compiled in.
#ifdef SUBG_AUDIT_ENABLED
#define SUBG_AUDIT(expr) SUBG_CHECK(expr)
#define SUBG_AUDIT_MSG(expr, msg) SUBG_CHECK_MSG(expr, msg)
namespace subg {
inline constexpr bool kAuditEnabled = true;
}  // namespace subg
#else
// Unevaluated sizeof: the expression still type-checks (and its operands
// count as used) in non-audit builds, but no code is emitted.
#define SUBG_AUDIT(expr) ((void)sizeof(expr))
#define SUBG_AUDIT_MSG(expr, msg) ((void)sizeof(expr))
namespace subg {
inline constexpr bool kAuditEnabled = false;
}  // namespace subg
#endif
