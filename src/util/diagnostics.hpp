// Recovering-parse diagnostics for the netlist front ends (SPICE, Verilog,
// .bench).
//
// By default every parser keeps its historical strict semantics: throw
// subg::Error at the first malformed card. Pointing ReadOptions at a
// DiagnosticSink switches the parser to best-effort recovery: each
// malformed card is recorded as a Diagnostic and skipped, parsing
// continues, and the caller inspects the sink afterwards. Reported
// diagnostics are capped (a corrupt multi-megabyte deck should not produce
// a multi-megabyte error list); overflow is counted, never silently lost.
#pragma once

#include <cstddef>
#include <sstream>
#include <string>
#include <vector>

namespace subg {

struct Diagnostic {
  enum class Severity { kWarning, kError };

  std::string file;  ///< input path; empty for in-memory text
  std::size_t line = 0;
  Severity severity = Severity::kError;
  std::string message;

  [[nodiscard]] std::string to_string() const {
    std::ostringstream os;
    if (!file.empty()) os << file << ':';
    os << line << ": "
       << (severity == Severity::kError ? "error" : "warning") << ": "
       << message;
    return os.str();
  }
};

/// Collects parse diagnostics in recovering mode. Capped: at most
/// `max_diagnostics` entries are stored; later ones only bump `dropped`.
class DiagnosticSink {
 public:
  explicit DiagnosticSink(std::size_t max_diagnostics = 100)
      : max_diagnostics_(max_diagnostics) {}

  void add(Diagnostic diag) {
    if (diag.severity == Diagnostic::Severity::kError) ++error_count_;
    if (diagnostics_.size() < max_diagnostics_) {
      diagnostics_.push_back(std::move(diag));
    } else {
      ++dropped_;
    }
  }
  void add(std::string file, std::size_t line, Diagnostic::Severity severity,
           std::string message) {
    add(Diagnostic{std::move(file), line, severity, std::move(message)});
  }

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const {
    return diagnostics_;
  }
  [[nodiscard]] bool empty() const {
    return diagnostics_.empty() && dropped_ == 0;
  }
  /// Errors seen, including ones dropped past the cap.
  [[nodiscard]] std::size_t error_count() const { return error_count_; }
  [[nodiscard]] std::size_t dropped() const { return dropped_; }

  [[nodiscard]] std::string summary() const {
    std::ostringstream os;
    for (const Diagnostic& d : diagnostics_) os << d.to_string() << '\n';
    if (dropped_ > 0) {
      os << "(" << dropped_ << " further diagnostics suppressed)\n";
    }
    return os.str();
  }

 private:
  std::size_t max_diagnostics_;
  std::vector<Diagnostic> diagnostics_;
  std::size_t error_count_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace subg
