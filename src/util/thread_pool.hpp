// Shared worker pool for the matching runtime.
//
// SubGemini's hot paths parallelize along two natural axes: Phase I host
// relabeling is data-parallel over vertices (every new label is a pure
// function of the previous round), and the Phase II candidate sweep is
// task-parallel over candidate-vector seeds (each seed is an independent
// rooted search). Both run on one ThreadPool so a whole extract sweep —
// many matches, each with many candidates — shares a fixed set of threads
// instead of oversubscribing.
//
// Design notes:
//  - ThreadPool(jobs) provides `jobs` lanes of parallelism INCLUDING the
//    calling thread: jobs-1 workers are spawned, and parallel_for's caller
//    claims chunks alongside them. ThreadPool(1) spawns no threads and runs
//    everything inline on the caller — the exact serial code path.
//  - parallel_for may be called from inside a parallel_for body (extract
//    runs per-cell matches on the pool, and each match parallelizes its
//    candidate sweep on the same pool). This cannot deadlock: the nested
//    caller always makes progress on its own job, and idle workers steal
//    chunks from any active job.
//  - Work distribution is dynamic (atomic chunk counter), so callers that
//    need determinism must make each index's work independent of
//    scheduling order — which is exactly how the matching code uses it
//    (results land in per-index slots and are merged in index order).
//  - The first exception thrown by a body is captured and rethrown on the
//    calling thread after the loop drains; remaining chunks are skipped.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace subg {

class ThreadPool {
 public:
  /// A pool with `jobs` lanes of parallelism (caller included); jobs == 0
  /// means default_jobs(). ThreadPool(1) is the inline/serial pool.
  explicit ThreadPool(std::size_t jobs = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Lanes of parallelism: worker threads + the calling thread.
  [[nodiscard]] std::size_t thread_count() const { return workers_.size() + 1; }

  /// Run body(begin, end) over [0, n) in chunks of at most `grain`
  /// indices, distributed dynamically over the pool. Blocks until every
  /// index is done. The calling thread participates, so this works (and
  /// stays deadlock-free) when called from inside another parallel_for
  /// body on the same pool.
  void parallel_for(std::size_t n, std::size_t grain,
                    const std::function<void(std::size_t, std::size_t)>& body);

  /// Hardware concurrency, clamped to at least 1.
  [[nodiscard]] static std::size_t default_jobs();

  /// Lifetime totals of the pool's work distribution, for the metrics
  /// registry. Counters are always on (relaxed atomics, bumped once per
  /// chunk — chunks are coarse); busy-time sampling costs two clock reads
  /// per chunk and is off until enable_timing().
  struct Stats {
    std::uint64_t tasks = 0;          ///< parallel_for jobs that used workers
    std::uint64_t chunks = 0;         ///< chunks claimed and executed
    std::uint64_t caller_chunks = 0;  ///< chunks run by the submitting thread
                                      ///< (steal-free claims; the rest were
                                      ///< taken by workers)
    double busy_seconds = 0;          ///< summed chunk wall time, all lanes
  };
  [[nodiscard]] Stats stats() const;

  /// Turn on per-chunk busy-time measurement (sticky; used when a metrics
  /// sink is attached to the run).
  void enable_timing() { timing_.store(true, std::memory_order_relaxed); }

 private:
  struct Job {
    std::size_t total = 0;
    std::size_t grain = 1;
    const std::function<void(std::size_t, std::size_t)>* body = nullptr;
    std::atomic<std::size_t> next{0};  // next unclaimed index
    std::size_t done = 0;              // completed indices; guarded by pool mutex
    std::exception_ptr error;          // first failure; guarded by pool mutex
    std::condition_variable complete;
  };

  void worker_loop();
  /// Claim and run one chunk of `job`; false when nothing is left to claim.
  /// `caller` marks the submitting thread's own claims for Stats.
  bool run_chunk(Job& job, bool caller = false);

  std::vector<std::thread> workers_;
  std::mutex mutex_;
  std::condition_variable wake_;
  std::vector<std::shared_ptr<Job>> active_;  // jobs with unclaimed chunks
  bool shutdown_ = false;

  std::atomic<bool> timing_{false};
  std::atomic<std::uint64_t> tasks_{0};
  std::atomic<std::uint64_t> chunks_{0};
  std::atomic<std::uint64_t> caller_chunks_{0};
  std::atomic<std::uint64_t> busy_ns_{0};
};

}  // namespace subg
