// Dependency-free JSON document model and writer.
//
// Backs the versioned machine-readable reports (report::Document): a small
// ordered value tree plus a pretty-printing serializer. Deliberately tiny —
// write-side only (no parser), no external dependency, and deterministic
// output so golden-file tests can compare bytes:
//  - object members keep insertion order (set() of an existing key updates
//    in place);
//  - doubles serialize via std::to_chars (shortest round-trip form,
//    locale-independent); non-finite doubles become null, JSON having no
//    representation for them;
//  - strings are escaped per RFC 8259 (control characters as \u00XX).
#pragma once

#include <charconv>
#include <cmath>
#include <cstdint>
#include <ostream>
#include <sstream>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "util/check.hpp"

namespace subg::json {

class Value {
 public:
  enum class Kind {
    kNull,
    kBool,
    kInt,
    kUint,
    kDouble,
    kString,
    kArray,
    kObject,
  };

  Value() : kind_(Kind::kNull) {}
  Value(bool b) : kind_(Kind::kBool), bool_(b) {}  // NOLINT(google-explicit-constructor)
  Value(std::int64_t i) : kind_(Kind::kInt), int_(i) {}  // NOLINT
  Value(std::uint64_t u) : kind_(Kind::kUint), uint_(u) {}  // NOLINT
  Value(int i) : Value(static_cast<std::int64_t>(i)) {}  // NOLINT
  Value(unsigned u) : Value(static_cast<std::uint64_t>(u)) {}  // NOLINT
  Value(double d) : kind_(Kind::kDouble), double_(d) {}  // NOLINT
  Value(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT
  Value(std::string_view s) : Value(std::string(s)) {}  // NOLINT
  Value(const char* s) : Value(std::string(s)) {}  // NOLINT

  [[nodiscard]] static Value object() {
    Value v;
    v.kind_ = Kind::kObject;
    return v;
  }
  [[nodiscard]] static Value array() {
    Value v;
    v.kind_ = Kind::kArray;
    return v;
  }

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }

  /// Object member set/update; keeps first-insertion order. Returns *this
  /// for chaining.
  Value& set(std::string key, Value value) {
    SUBG_CHECK_MSG(kind_ == Kind::kObject, "json: set() on a non-object");
    for (auto& member : members_) {
      if (member.first == key) {
        member.second = std::move(value);
        return *this;
      }
    }
    members_.emplace_back(std::move(key), std::move(value));
    return *this;
  }

  /// Array append. Returns *this for chaining.
  Value& push(Value value) {
    SUBG_CHECK_MSG(kind_ == Kind::kArray, "json: push() on a non-array");
    elements_.push_back(std::move(value));
    return *this;
  }

  /// Object member lookup; nullptr when absent (or not an object).
  [[nodiscard]] const Value* find(std::string_view key) const {
    if (kind_ != Kind::kObject) return nullptr;
    for (const auto& member : members_) {
      if (member.first == key) return &member.second;
    }
    return nullptr;
  }
  [[nodiscard]] Value* find(std::string_view key) {
    return const_cast<Value*>(std::as_const(*this).find(key));
  }
  /// Remove an object member if present; true when something was removed.
  bool erase(std::string_view key) {
    if (kind_ != Kind::kObject) return false;
    for (auto it = members_.begin(); it != members_.end(); ++it) {
      if (it->first == key) {
        members_.erase(it);
        return true;
      }
    }
    return false;
  }

  /// Mutable views for tree rewriting (golden-test normalization).
  [[nodiscard]] std::vector<std::pair<std::string, Value>>& members() {
    SUBG_CHECK(kind_ == Kind::kObject);
    return members_;
  }
  [[nodiscard]] const std::vector<std::pair<std::string, Value>>& members()
      const {
    SUBG_CHECK(kind_ == Kind::kObject);
    return members_;
  }
  [[nodiscard]] std::vector<Value>& elements() {
    SUBG_CHECK(kind_ == Kind::kArray);
    return elements_;
  }
  [[nodiscard]] const std::vector<Value>& elements() const {
    SUBG_CHECK(kind_ == Kind::kArray);
    return elements_;
  }

  [[nodiscard]] double as_double() const {
    switch (kind_) {
      case Kind::kDouble: return double_;
      case Kind::kInt: return static_cast<double>(int_);
      case Kind::kUint: return static_cast<double>(uint_);
      default: SUBG_CHECK_MSG(false, "json: as_double() on a non-number");
    }
    return 0;
  }
  [[nodiscard]] std::uint64_t as_uint() const {
    SUBG_CHECK_MSG(kind_ == Kind::kUint || kind_ == Kind::kInt,
                   "json: as_uint() on a non-integer");
    return kind_ == Kind::kUint ? uint_ : static_cast<std::uint64_t>(int_);
  }
  [[nodiscard]] const std::string& as_string() const {
    SUBG_CHECK_MSG(kind_ == Kind::kString, "json: as_string() on a non-string");
    return string_;
  }
  [[nodiscard]] bool as_bool() const {
    SUBG_CHECK_MSG(kind_ == Kind::kBool, "json: as_bool() on a non-boolean");
    return bool_;
  }

  /// Serialize. indent == 0 emits compact one-line JSON; indent > 0 pretty
  /// prints with that many spaces per depth level.
  void write(std::ostream& out, int indent = 2, int depth = 0) const {
    switch (kind_) {
      case Kind::kNull:
        out << "null";
        return;
      case Kind::kBool:
        out << (bool_ ? "true" : "false");
        return;
      case Kind::kInt:
        out << int_;
        return;
      case Kind::kUint:
        out << uint_;
        return;
      case Kind::kDouble:
        write_double(out, double_);
        return;
      case Kind::kString:
        write_escaped(out, string_);
        return;
      case Kind::kArray: {
        if (elements_.empty()) {
          out << "[]";
          return;
        }
        out << '[';
        for (std::size_t i = 0; i < elements_.size(); ++i) {
          if (i > 0) out << ',';
          newline(out, indent, depth + 1);
          elements_[i].write(out, indent, depth + 1);
        }
        newline(out, indent, depth);
        out << ']';
        return;
      }
      case Kind::kObject: {
        if (members_.empty()) {
          out << "{}";
          return;
        }
        out << '{';
        for (std::size_t i = 0; i < members_.size(); ++i) {
          if (i > 0) out << ',';
          newline(out, indent, depth + 1);
          write_escaped(out, members_[i].first);
          out << (indent > 0 ? ": " : ":");
          members_[i].second.write(out, indent, depth + 1);
        }
        newline(out, indent, depth);
        out << '}';
        return;
      }
    }
  }

  [[nodiscard]] std::string dump(int indent = 2) const {
    std::ostringstream os;
    write(os, indent);
    return os.str();
  }

  static void write_escaped(std::ostream& out, std::string_view s) {
    out << '"';
    for (const char c : s) {
      switch (c) {
        case '"': out << "\\\""; break;
        case '\\': out << "\\\\"; break;
        case '\b': out << "\\b"; break;
        case '\f': out << "\\f"; break;
        case '\n': out << "\\n"; break;
        case '\r': out << "\\r"; break;
        case '\t': out << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            constexpr char kHex[] = "0123456789abcdef";
            out << "\\u00" << kHex[(c >> 4) & 0xF] << kHex[c & 0xF];
          } else {
            out << c;  // UTF-8 bytes pass through untouched
          }
      }
    }
    out << '"';
  }

 private:
  static void newline(std::ostream& out, int indent, int depth) {
    if (indent <= 0) return;
    out << '\n';
    for (int i = 0; i < indent * depth; ++i) out << ' ';
  }

  static void write_double(std::ostream& out, double d) {
    if (!std::isfinite(d)) {
      out << "null";  // JSON has no NaN/Inf
      return;
    }
    // Integral doubles print as integers ("3" not "3.0"): shorter, and
    // stable across compilers' shortest-round-trip tie-breaking.
    if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
        d >= -9.0e15 && d <= 9.0e15) {
      out << static_cast<std::int64_t>(d);
      return;
    }
    char buf[32];
    const auto res = std::to_chars(buf, buf + sizeof(buf), d);
    out.write(buf, res.ptr - buf);
  }

  Kind kind_;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0;
  std::string string_;
  std::vector<std::pair<std::string, Value>> members_;
  std::vector<Value> elements_;
};

}  // namespace subg::json
