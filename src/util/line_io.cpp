#include "util/line_io.hpp"

#include <cerrno>
#include <cstring>

#include <poll.h>
#include <unistd.h>

namespace subg {

namespace {
constexpr std::size_t kReadChunk = 64 * 1024;
}  // namespace

LineReader::LineReader(int fd, std::size_t max_line_bytes)
    : fd_(fd), max_line_bytes_(max_line_bytes) {}

LineReader::Status LineReader::fill(const std::atomic<bool>* interrupt,
                                    int poll_interval_ms) {
  while (true) {
    if (interrupt != nullptr) {
      if (interrupt->load(std::memory_order_acquire)) {
        return Status::kInterrupted;
      }
      struct pollfd pfd;
      pfd.fd = fd_;
      pfd.events = POLLIN;
      pfd.revents = 0;
      const int ready = ::poll(&pfd, 1, poll_interval_ms);
      if (ready < 0) {
        if (errno == EINTR) continue;
        return Status::kError;
      }
      if (ready == 0) continue;  // timeout: re-check the interrupt flag
    }
    char chunk[kReadChunk];
    const ssize_t n = ::read(fd_, chunk, sizeof(chunk));
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::kError;
    }
    if (n == 0) {
      eof_ = true;
      return Status::kEof;
    }
    buf_.append(chunk, static_cast<std::size_t>(n));
    return Status::kLine;
  }
}

LineReader::Status LineReader::read_line(std::string* line,
                                         const std::atomic<bool>* interrupt,
                                         int poll_interval_ms) {
  line->clear();
  std::size_t scanned = start_;  // newline search resumes where it left off
  while (true) {
    const std::size_t nl = buf_.find('\n', scanned);
    if (nl != std::string::npos) {
      const std::size_t length = nl - start_;
      if (length > max_line_bytes_) {
        last_line_bytes_ = length;
        line->assign(buf_, start_, max_line_bytes_);
        start_ = nl + 1;
        compact();
        return Status::kOversized;
      }
      line->assign(buf_, start_, length);
      last_line_bytes_ = length;
      start_ = nl + 1;
      compact();
      return Status::kLine;
    }
    // No terminator yet. An over-limit partial line is already rejectable:
    // keep only the reportable prefix and discard until its newline shows
    // up, so a hostile endless line cannot grow the buffer unboundedly.
    if (buf_.size() - start_ > max_line_bytes_ + 1) {
      std::size_t discarded = buf_.size() - start_;
      std::string prefix(buf_, start_, max_line_bytes_);
      buf_.clear();
      start_ = 0;
      while (true) {
        const Status st = fill(interrupt, poll_interval_ms);
        if (st == Status::kEof) {
          last_line_bytes_ = discarded;
          *line = std::move(prefix);
          return Status::kOversized;
        }
        if (st != Status::kLine) return st;
        const std::size_t end = buf_.find('\n');
        if (end != std::string::npos) {
          discarded += end;
          buf_.erase(0, end + 1);
          last_line_bytes_ = discarded;
          *line = std::move(prefix);
          return Status::kOversized;
        }
        discarded += buf_.size();
        buf_.clear();
      }
    }
    scanned = buf_.size();
    if (eof_) {
      if (scanned > start_) {
        // Final line without a terminator.
        line->assign(buf_, start_, scanned - start_);
        last_line_bytes_ = scanned - start_;
        buf_.clear();
        start_ = 0;
        return Status::kLine;
      }
      return Status::kEof;
    }
    const Status st = fill(interrupt, poll_interval_ms);
    if (st == Status::kEof) continue;  // flush any final partial line above
    if (st != Status::kLine) return st;
  }
}

void LineReader::compact() {
  // Drop the consumed prefix once it dominates the buffer, so a long
  // session cannot accrete every past request.
  if (start_ > 4096 && start_ * 2 > buf_.size()) {
    buf_.erase(0, start_);
    start_ = 0;
  }
}

bool write_line(int fd, std::string_view line) {
  std::string frame;
  frame.reserve(line.size() + 1);
  frame.append(line);
  frame.push_back('\n');
  std::size_t written = 0;
  while (written < frame.size()) {
    const ssize_t n =
        ::write(fd, frame.data() + written, frame.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return false;
    }
    written += static_cast<std::size_t>(n);
  }
  return true;
}

}  // namespace subg
