// Bump arena for per-round scratch arrays.
//
// Phase I's consistency censuses and refinement-shape checks need a few
// label/count arrays EVERY round; allocating fresh vectors (or rehashing
// unordered_maps) per round is pure heap churn on the hot path. The arena
// hands out typed spans from one contiguous buffer instead.
//
// Lifetime rules (see DESIGN.md "CSR core"):
//   1. reserve() the worst-case byte footprint ONCE, before the round
//      loop. take() never grows the buffer — growth would invalidate the
//      spans already handed out this round — so an undersized arena is a
//      programming error and trips SUBG_CHECK.
//   2. reset() at the top of each round; every span from the previous
//      round is dead after that.
//   3. Spans are uninitialized storage for trivial types; callers fill
//      them before reading.
//
// high_water_bytes() reports the peak live footprint for the obs layer
// ("csr.arena_bytes").
#pragma once

#include <cstddef>
#include <span>
#include <type_traits>
#include <vector>

#include "util/check.hpp"

namespace subg {

class Arena {
 public:
  Arena() = default;

  /// Fix the capacity for the coming take() calls. Only grows; safe to
  /// call repeatedly with different estimates (e.g. once per Phase I run).
  /// Must not be called while spans from the current round are live.
  void reserve(std::size_t bytes) {
    const std::size_t blocks = (bytes + sizeof(Block) - 1) / sizeof(Block);
    if (blocks > blocks_.size()) blocks_.resize(blocks);
  }

  /// Start a new round: all previously taken spans are dead.
  void reset() { used_ = 0; }

  /// Take `count` elements of trivial type T from the buffer. The storage
  /// is uninitialized; the span is valid until the next reset().
  template <typename T>
  [[nodiscard]] std::span<T> take(std::size_t count) {
    static_assert(std::is_trivial_v<T>,
                  "arena spans are raw storage; non-trivial types would "
                  "need construction/destruction");
    static_assert(alignof(T) <= alignof(std::max_align_t));
    const std::size_t aligned =
        (used_ + alignof(T) - 1) / alignof(T) * alignof(T);
    const std::size_t end = aligned + count * sizeof(T);
    SUBG_CHECK_MSG(end <= capacity_bytes(),
                   "arena overflow: reserve() was not called with the "
                   "worst-case footprint");
    used_ = end;
    if (used_ > high_water_) high_water_ = used_;
    // blocks_ is max-aligned, so any block-granular base pointer plus a
    // T-aligned offset is correctly aligned for T.
    unsigned char* base = reinterpret_cast<unsigned char*>(blocks_.data());
    return {reinterpret_cast<T*>(base + aligned), count};
  }

  [[nodiscard]] std::size_t capacity_bytes() const {
    return blocks_.size() * sizeof(Block);
  }
  [[nodiscard]] std::size_t high_water_bytes() const { return high_water_; }

 private:
  struct alignas(alignof(std::max_align_t)) Block {
    unsigned char bytes[alignof(std::max_align_t)];
  };
  std::vector<Block> blocks_;
  std::size_t used_ = 0;
  std::size_t high_water_ = 0;
};

}  // namespace subg
