// Deterministic fault injection for robustness testing.
//
// A daemon's failure paths are only trustworthy if they are exercised, not
// theoretical. This header plants site-keyed trigger points in the risky
// layers of the runtime — request parsing, netlist parsing, Phase I, Phase
// II, the host label cache, and the serve dispatch loop — that can be armed
// to throw an InjectedFault on the nth execution of a given site:
//
//   SUBG_FAULT=phase1:3 subgemini serve host.sp     # env arming
//   fault::arm("phase1", 3);                        # programmatic arming
//
// The trigger points compile to nothing unless the build sets
// -DSUBG_FAULTS=ON (cmake option; defines SUBG_FAULTS_ENABLED), so
// production binaries pay zero cost. The arming/inspection API is always
// compiled so callers (the serve `status` op, tests) can report whether the
// machinery is live.
//
// Semantics: exactly ONE throw per arming — the armed site's counter is
// compared against `nth` (1-based) and the fault fires once, so a server
// that survives the fault then serves normally (which is exactly what the
// soak test asserts). Counters and the armed state are atomics: trigger
// points run on pool worker threads.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/check.hpp"

namespace subg::fault {

#ifdef SUBG_FAULTS_ENABLED
inline constexpr bool kFaultsEnabled = true;
#else
inline constexpr bool kFaultsEnabled = false;
#endif

/// Thrown by an armed trigger point. Derives from subg::Error so existing
/// catch(const Error&) isolation boundaries contain it; handlers that want
/// to label the failure distinctly catch this type first.
class InjectedFault : public Error {
 public:
  explicit InjectedFault(const std::string& site)
      : Error("injected fault at site '" + site + "'"), site_(site) {}
  [[nodiscard]] const std::string& site() const { return site_; }

 private:
  std::string site_;
};

/// The registered sites, in a fixed order. Every SUBG_FAULT_POINT in the
/// tree uses one of these names; arm() rejects anything else so a typo in a
/// test or CI matrix fails loudly instead of silently never firing.
///   parse.request  serve request-line JSON decoding
///   parse.netlist  SPICE deck parsing (read/read_string/read_file)
///   parse.delta    ECO delta (JSON-lines) parsing
///   phase1         Phase I refinement entry
///   phase2         Phase II candidate verification entry
///   cache          host label cache lookup/extension
///   serve.dispatch serve request handler dispatch
///   session.patch  HostSession::apply, just before commit (a fault here
///                  must leave the session byte-identical to before)
inline constexpr std::string_view kSites[] = {
    "parse.request", "parse.netlist",  "parse.delta",
    "phase1",        "phase2",         "cache",
    "serve.dispatch", "session.patch",
};
inline constexpr std::size_t kSiteCount = sizeof(kSites) / sizeof(kSites[0]);

namespace detail {
struct State {
  /// Armed site index into kSites, or -1 when disarmed.
  std::atomic<int> armed_site{-1};
  /// 1-based hit ordinal that fires the fault.
  std::atomic<std::uint64_t> armed_nth{0};
  /// Set once the armed fault has fired (one throw per arming).
  std::atomic<bool> fired{false};
  /// Per-site lifetime hit counters.
  std::atomic<std::uint64_t> hits[kSiteCount]{};
};
inline State& state() {
  static State s;
  return s;
}
inline int site_index(std::string_view site) {
  for (std::size_t i = 0; i < kSiteCount; ++i) {
    if (kSites[i] == site) return static_cast<int>(i);
  }
  return -1;
}
}  // namespace detail

/// Arm `site` to throw on its nth (1-based) execution from now. Resets the
/// site's hit counter and the fired latch. Returns false (and disarms
/// nothing) for an unknown site or nth == 0.
inline bool arm(std::string_view site, std::uint64_t nth) {
  const int idx = detail::site_index(site);
  if (idx < 0 || nth == 0) return false;
  detail::State& s = detail::state();
  s.hits[idx].store(0, std::memory_order_relaxed);
  s.fired.store(false, std::memory_order_relaxed);
  s.armed_nth.store(nth, std::memory_order_relaxed);
  s.armed_site.store(idx, std::memory_order_release);
  return true;
}

/// Disarm whatever is armed; trigger points become pure counters again.
inline void disarm() {
  detail::state().armed_site.store(-1, std::memory_order_release);
}

/// Arm from the SUBG_FAULT environment variable ("<site>:<nth>"; nth
/// defaults to 1 when omitted). Returns false when the variable is unset;
/// throws subg::Error when it is set but malformed or names an unknown site
/// (a CI matrix iterating sites must not silently no-op on a typo).
bool arm_from_env();

/// The armed site name, or "" when disarmed (or already fired).
[[nodiscard]] inline std::string armed_site() {
  detail::State& s = detail::state();
  const int idx = s.armed_site.load(std::memory_order_acquire);
  if (idx < 0 || s.fired.load(std::memory_order_relaxed)) return "";
  return std::string(kSites[idx]);
}

/// All registered site names, in registration order.
[[nodiscard]] inline std::vector<std::string> sites() {
  return {kSites, kSites + kSiteCount};
}

/// The body of a trigger point: count the hit and throw iff this site is
/// armed, the ordinal matches, and the fault has not fired yet. Called via
/// SUBG_FAULT_POINT only, so a non-faults build never reaches it.
inline void hit(std::string_view site) {
  detail::State& s = detail::state();
  const int armed = s.armed_site.load(std::memory_order_acquire);
  const int idx = detail::site_index(site);
  SUBG_DCHECK(idx >= 0);
  if (idx < 0) return;
  const std::uint64_t n =
      s.hits[idx].fetch_add(1, std::memory_order_relaxed) + 1;
  if (armed != idx) return;
  if (n != s.armed_nth.load(std::memory_order_relaxed)) return;
  bool expected = false;
  if (!s.fired.compare_exchange_strong(expected, true,
                                       std::memory_order_acq_rel)) {
    return;  // another thread's hit already threw for this arming
  }
  throw InjectedFault(std::string(site));
}

}  // namespace subg::fault

// The trigger-point macro. Zero cost (not even a branch) unless the build
// compiled the fault layer in; the unevaluated sizeof keeps the site
// expression type-checked either way.
#ifdef SUBG_FAULTS_ENABLED
#define SUBG_FAULT_POINT(site) ::subg::fault::hit(site)
#else
#define SUBG_FAULT_POINT(site) ((void)sizeof(site))
#endif
