#include "util/thread_pool.hpp"

#include <algorithm>
#include <chrono>

#include "util/check.hpp"

namespace subg {

ThreadPool::Stats ThreadPool::stats() const {
  Stats s;
  s.tasks = tasks_.load(std::memory_order_relaxed);
  s.chunks = chunks_.load(std::memory_order_relaxed);
  s.caller_chunks = caller_chunks_.load(std::memory_order_relaxed);
  s.busy_seconds = static_cast<double>(busy_ns_.load(std::memory_order_relaxed)) * 1e-9;
  return s;
}

std::size_t ThreadPool::default_jobs() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<std::size_t>(hw);
}

ThreadPool::ThreadPool(std::size_t jobs) {
  if (jobs == 0) jobs = default_jobs();
  workers_.reserve(jobs - 1);
  for (std::size_t i = 0; i + 1 < jobs; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& t : workers_) t.join();
}

bool ThreadPool::run_chunk(Job& job, bool caller) {
  const std::size_t begin = job.next.fetch_add(job.grain);
  if (begin >= job.total) return false;
  const std::size_t end = std::min(begin + job.grain, job.total);
  chunks_.fetch_add(1, std::memory_order_relaxed);
  if (caller) caller_chunks_.fetch_add(1, std::memory_order_relaxed);
  const bool timed = timing_.load(std::memory_order_relaxed);
  const auto t0 = timed ? std::chrono::steady_clock::now()
                        : std::chrono::steady_clock::time_point{};
  std::exception_ptr error;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    error = job.error;
  }
  if (error == nullptr) {
    // Skip the work (but still account for it) once a sibling chunk failed.
    try {
      (*job.body)(begin, end);
    } catch (...) {
      error = std::current_exception();
    }
  }
  if (timed) {
    const auto dt = std::chrono::steady_clock::now() - t0;
    busy_ns_.fetch_add(
        std::chrono::duration_cast<std::chrono::nanoseconds>(dt).count(),
        std::memory_order_relaxed);
  }
  bool finished;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    if (error != nullptr && job.error == nullptr) job.error = error;
    job.done += end - begin;
    finished = job.done == job.total;
  }
  if (finished) job.complete.notify_all();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mutex_);
      wake_.wait(lock, [&] {
        if (shutdown_) return true;
        for (auto it = active_.begin(); it != active_.end();) {
          if ((*it)->next.load(std::memory_order_relaxed) >= (*it)->total) {
            it = active_.erase(it);  // fully claimed; drop from the scan list
          } else {
            job = *it;
            return true;
          }
        }
        return false;
      });
      if (job == nullptr) return;  // shutdown
    }
    while (run_chunk(*job)) {
    }
  }
}

void ThreadPool::parallel_for(
    std::size_t n, std::size_t grain,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (n == 0) return;
  if (grain == 0) grain = 1;
  if (workers_.empty() || n <= grain) {
    body(0, n);  // inline serial path
    return;
  }
  auto job = std::make_shared<Job>();
  job->total = n;
  job->grain = grain;
  job->body = &body;
  tasks_.fetch_add(1, std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mutex_);
    active_.push_back(job);
  }
  wake_.notify_all();
  while (run_chunk(*job, /*caller=*/true)) {
  }
  std::unique_lock<std::mutex> lock(mutex_);
  job->complete.wait(lock, [&] { return job->done == job->total; });
  std::exception_ptr error = job->error;
  lock.unlock();
  if (error != nullptr) std::rethrow_exception(error);
}

}  // namespace subg
