// Run governance: wall-clock deadlines, cooperative cancellation, and
// structured run outcomes, shared by every search entry point (Phase I,
// Phase II, SubgraphMatcher, the Gemini comparator, the baselines, and the
// extract sweep).
//
// SubGemini's worst case is exponential; the pass/guess/node caps leash it,
// but a cap that silently truncates results is a soundness hazard for the
// caller: a truncated "found 3 instances" is indistinguishable from a
// complete one. Every governed entry point therefore reports a RunOutcome
// alongside its results — instances that ARE reported are always fully
// verified (soundness is never affected); the outcome states whether the
// *sweep* was complete.
//
//   Budget budget = Budget::after(0.5);      // 500 ms from now
//   MatchOptions opts;
//   opts.budget = budget;
//   MatchReport r = SubgraphMatcher(pattern, host, opts).find_all();
//   if (r.status.outcome != RunOutcome::kComplete) { /* partial sweep */ }
//
// Deadlines are absolute (steady_clock) so one Budget composes across the
// phases of a run and across the cells of an extract sweep. Cancellation is
// cooperative: searches poll the token at pass/guess/node granularity, so a
// cancel (from another thread or a signal handler via a pre-armed token)
// takes effect within one pass, never mid-structure.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <string>

namespace subg {

/// How a governed run ended. Ordered by severity: merging two outcomes
/// keeps the larger value.
enum class RunOutcome {
  kComplete = 0,          ///< the sweep covered everything it was asked to
  kTruncated = 1,         ///< a pass/guess/node cap abandoned part of the search
  kDeadlineExceeded = 2,  ///< the wall-clock deadline expired
  kCancelled = 3,         ///< the caller's CancelToken was triggered
};

[[nodiscard]] constexpr const char* to_string(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kComplete: return "complete";
    case RunOutcome::kTruncated: return "truncated";
    case RunOutcome::kDeadlineExceeded: return "deadline-exceeded";
    case RunOutcome::kCancelled: return "cancelled";
  }
  return "unknown";
}

/// Cooperative cancellation flag. Thread-safe; the requesting side calls
/// request(), the search polls cancelled() between passes. The token must
/// outlive every Budget that references it.
class CancelToken {
 public:
  void request() { cancelled_.store(true, std::memory_order_relaxed); }
  void reset() { cancelled_.store(false, std::memory_order_relaxed); }
  [[nodiscard]] bool cancelled() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

 private:
  std::atomic<bool> cancelled_{false};
};

/// A run's resource envelope: an optional absolute wall-clock deadline and
/// an optional cancellation token. Copyable — copies share the same
/// absolute deadline and the same token, which is what threading one budget
/// through nested phases wants. The default Budget is unlimited.
class Budget {
 public:
  using Clock = std::chrono::steady_clock;

  Budget() = default;

  /// A budget expiring `seconds` from now.
  [[nodiscard]] static Budget after(double seconds) {
    Budget b;
    b.set_deadline_after(seconds);
    return b;
  }

  void set_deadline_after(double seconds) {
    deadline_ = Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(seconds));
    has_deadline_ = true;
  }
  void set_deadline(Clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }
  void clear_deadline() { has_deadline_ = false; }
  void set_cancel_token(const CancelToken* token) { cancel_ = token; }

  [[nodiscard]] bool has_deadline() const { return has_deadline_; }
  [[nodiscard]] bool limited() const {
    return has_deadline_ || cancel_ != nullptr;
  }

  /// True once the deadline has passed or cancellation was requested;
  /// `*why` (when non-null) is set to the triggering outcome. Cancellation
  /// wins over the deadline. Cheap enough for per-pass / per-search-node
  /// polling: the atomic token is read every call, the clock is sampled
  /// only every kStride calls (and on the first).
  [[nodiscard]] bool interrupted(RunOutcome* why = nullptr) const {
    if (cancel_ != nullptr && cancel_->cancelled()) {
      if (why != nullptr) *why = RunOutcome::kCancelled;
      return true;
    }
    if (!has_deadline_) return false;
    if (expired_) {
      if (why != nullptr) *why = RunOutcome::kDeadlineExceeded;
      return true;
    }
    if (poll_++ % kStride != 0) return false;
    if (Clock::now() >= deadline_) {
      expired_ = true;
      if (why != nullptr) *why = RunOutcome::kDeadlineExceeded;
      return true;
    }
    return false;
  }

 private:
  static constexpr std::uint32_t kStride = 64;

  Clock::time_point deadline_{};
  bool has_deadline_ = false;
  /// Deadlines never un-expire; latching saves clock reads after expiry.
  mutable bool expired_ = false;
  mutable std::uint32_t poll_ = 0;
  const CancelToken* cancel_ = nullptr;
};

/// Structured account of how a governed run went, surfaced in MatchReport,
/// BaselineResult, CompareResult, and ExtractReport.
struct RunStatus {
  RunOutcome outcome = RunOutcome::kComplete;
  /// Human-readable cause when outcome != kComplete (first escalation wins).
  std::string reason;
  /// Phase II candidates (or extract cells / baseline branches) never tried
  /// because the run was interrupted first.
  std::size_t candidates_skipped = 0;
  /// Guess branches abandoned by a cap or interruption — each one is a
  /// region of the search space the run cannot vouch for.
  std::size_t guesses_abandoned = 0;

  [[nodiscard]] bool complete() const {
    return outcome == RunOutcome::kComplete;
  }

  /// Record an escalation: severity only ever increases, and the reason of
  /// the first escalation to each level is kept.
  void escalate(RunOutcome to, const std::string& why) {
    if (static_cast<int>(to) > static_cast<int>(outcome)) {
      outcome = to;
      reason = why;
    }
  }

  /// Fold another status (e.g. a per-cell report) into this one.
  void merge(const RunStatus& other) {
    escalate(other.outcome, other.reason);
    candidates_skipped += other.candidates_skipped;
    guesses_abandoned += other.guesses_abandoned;
  }
};

}  // namespace subg
