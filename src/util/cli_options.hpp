// Shared global-flag handling for the command-line front ends.
//
// The subgemini tool and the bench mains accept one common set of global
// flags; this is the single parser for them, so a flag added here appears
// everywhere with the same spelling, validation, and error message:
//
//   --timeout=<sec>      wall-clock budget (arms GlobalOptions::budget)
//   --jobs=<n>           parallel lanes; n >= 1 (0 stays "unset")
//   --lenient            recovering parse mode
//   --format=text|json   output format (text is the historical default)
//   --metrics[=FILE]     collect search metrics; dump the counter tree to
//                        FILE (stderr when omitted)
//   --top=NAME           top module of the host / second / sole input
//   --pattern-top=NAME   top module of the pattern / first input
//   --fail-on=warn|error severity threshold for a nonzero lint exit
//   --lint               run the lint checks before extraction
//   --core=csr|legacy    matching-core layout (csr is the default)
//   --shard=on|off|N     Phase I host sharding: off (default), on (regions
//                        of at most 65536 devices), or an explicit region
//                        size N >= 1; results are byte-identical either way
//   --phase2-filter=paths|on|off
//                        Phase II prefilter strength: paths (default;
//                        signature + supplemental path-label refuter), on
//                        (signature alone), off (pure census) — all sound,
//                        the weaker modes are the A/B measurement paths
//   --analyze=on|off     pre-search static analysis: infeasibility
//                        certificates + symmetry-aware enumeration dedup
//                        (on is the default)
//   --delta=FILE         ECO delta (JSON-lines) applied to the host before
//                        matching (find/extract)
//
// Flags may appear anywhere; everything else is returned as a positional.
// Unknown --flags are an error (callers map it to a usage exit), so typos
// fail loudly instead of being read as file names. A literal "--" ends flag
// parsing.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "util/budget.hpp"
#include "util/core_mode.hpp"
#include "util/phase2_filter.hpp"

namespace subg::cli {

enum class Format { kText, kJson };

/// --fail-on: lowest finding severity that turns into a nonzero exit.
/// kError is the default (warnings inform, errors gate); kWarn tightens the
/// gate for CI runs that want a warning-clean deck.
enum class FailOn { kError, kWarn };

struct GlobalOptions {
  /// Armed iff --timeout was given; default-unlimited otherwise.
  Budget budget;
  /// 0 = unset (front ends map it to their own default, typically hardware
  /// concurrency); --jobs rejects 0 explicitly.
  std::size_t jobs = 0;
  bool lenient = false;
  Format format = Format::kText;
  /// --metrics[=FILE]: collect counters during the run.
  bool metrics = false;
  /// Dump target for the text counter tree; empty = stderr.
  std::string metrics_path;
  /// --top / --pattern-top; empty = not given.
  std::string top;
  std::string pattern_top;
  /// --fail-on severity threshold for lint-style commands.
  FailOn fail_on = FailOn::kError;
  /// --lint: run the lint checks as a preflight (extract).
  bool lint = false;
  /// --core: matching-core layout (graph/csr_core.hpp). csr (the default)
  /// runs the flattened SoA sweeps; legacy walks the CircuitGraph directly.
  /// Reports are byte-identical either way.
  CoreMode core = CoreMode::kCsr;
  /// --shard: Phase I host sharding (graph/shard_plan.hpp). 0 (the default,
  /// --shard=off) matches the whole host as one monolith; --shard=on uses
  /// 65536-device regions; --shard=N sets the region size explicitly.
  /// Reports are byte-identical at every value — sharding changes the sweep
  /// schedule and adds the shards_* counters, never the result.
  std::size_t shard_target_devices = 0;
  /// --phase2-filter: Phase II prefilter strength (util/phase2_filter.hpp).
  /// paths (the default) adds the supplemental path-label refuter on top of
  /// the signature prefilter and nogood memo; on/off are the weaker A/B
  /// measurement settings. All sound — results identical at any value.
  Phase2Filter phase2_filter = Phase2Filter::kPaths;
  /// --analyze: pre-search static analysis (src/analyze) — infeasibility
  /// certificates short-circuit provably matchless searches, pattern
  /// automorphisms dedup symmetric exhaustive enumeration. Off reproduces
  /// the pre-analyzer pipeline.
  bool analyze = true;
  /// --delta=FILE: ECO delta applied to the host session before matching
  /// (see session/delta.hpp for the grammar); empty = none.
  std::string delta_path;
  /// serve-only knobs (see serve/server.hpp for semantics; inert for the
  /// one-shot commands).
  std::size_t serve_workers = 1;
  std::size_t max_pending = 64;
  std::size_t max_request_bytes = 1 << 20;
  /// Server-default per-request budget, seconds; 0 = unlimited.
  double request_timeout = 0;
  /// AF_UNIX socket path; empty = stdin/stdout.
  std::string socket_path;
};

struct ParsedArgs {
  GlobalOptions options;
  std::vector<std::string> positionals;
  /// Empty on success; otherwise a one-line message (no tool-name prefix,
  /// no trailing newline) and the other fields are unspecified.
  std::string error;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parse argv-style arguments (not including the program / command name).
[[nodiscard]] ParsedArgs parse_args(const std::vector<std::string>& args);

/// Convenience overload over raw argv, starting at index `first`.
[[nodiscard]] ParsedArgs parse_args(int argc, char** argv, int first = 1);

/// The flags block for usage text, one indented line per flag.
[[nodiscard]] const char* global_flags_help();

}  // namespace subg::cli
