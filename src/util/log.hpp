// Tiny leveled logger. Off by default above `warn` so library users are not
// spammed; benches/examples raise the level to trace algorithm internals
// (Phase I/II pass traces).
#pragma once

#include <sstream>
#include <string>

namespace subg {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

/// Global log threshold; messages below it are discarded.
void set_log_level(LogLevel level);
[[nodiscard]] LogLevel log_level();

namespace detail {
void log_emit(LogLevel level, const std::string& message);
}

}  // namespace subg

#define SUBG_LOG(level, expr)                                       \
  do {                                                              \
    if (static_cast<int>(level) >=                                  \
        static_cast<int>(::subg::log_level())) {                    \
      std::ostringstream subg_log_os_;                              \
      subg_log_os_ << expr;                                         \
      ::subg::detail::log_emit(level, subg_log_os_.str());          \
    }                                                               \
  } while (0)

#define SUBG_TRACE(expr) SUBG_LOG(::subg::LogLevel::kTrace, expr)
#define SUBG_DEBUG(expr) SUBG_LOG(::subg::LogLevel::kDebug, expr)
#define SUBG_INFO(expr) SUBG_LOG(::subg::LogLevel::kInfo, expr)
#define SUBG_WARN(expr) SUBG_LOG(::subg::LogLevel::kWarn, expr)
#define SUBG_ERROR(expr) SUBG_LOG(::subg::LogLevel::kError, expr)
