#include "util/cli_options.hpp"

#include <cstdlib>

namespace subg::cli {

namespace {

/// Value of `--name=value` when `arg` starts with "--name="; nullptr
/// otherwise. An exact "--name" (no '=') returns nullptr too — flags that
/// allow the bare form check for it separately.
[[nodiscard]] const char* flag_value(const std::string& arg,
                                     const char* prefix) {
  const std::size_t n = std::string::traits_type::length(prefix);
  if (arg.compare(0, n, prefix) != 0) return nullptr;
  return arg.c_str() + n;
}

}  // namespace

ParsedArgs parse_args(const std::vector<std::string>& args) {
  ParsedArgs out;
  bool flags_done = false;
  for (const std::string& arg : args) {
    if (flags_done || arg.size() < 2 || arg.compare(0, 2, "--") != 0) {
      out.positionals.push_back(arg);
      continue;
    }
    if (arg == "--") {
      flags_done = true;
      continue;
    }
    if (const char* v = flag_value(arg, "--timeout=")) {
      char* end = nullptr;
      const double seconds = std::strtod(v, &end);
      if (end == v || *end != '\0' || seconds <= 0) {
        out.error = std::string("bad --timeout value '") + v + "'";
        return out;
      }
      out.options.budget.set_deadline_after(seconds);
      continue;
    }
    if (const char* v = flag_value(arg, "--jobs=")) {
      char* end = nullptr;
      const unsigned long jobs = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || jobs == 0) {
        out.error = std::string("bad --jobs value '") + v + "'";
        return out;
      }
      out.options.jobs = static_cast<std::size_t>(jobs);
      continue;
    }
    if (arg == "--lenient") {
      out.options.lenient = true;
      continue;
    }
    if (const char* v = flag_value(arg, "--format=")) {
      const std::string value = v;
      if (value == "text") {
        out.options.format = Format::kText;
      } else if (value == "json") {
        out.options.format = Format::kJson;
      } else {
        out.error = "bad --format value '" + value + "' (want text or json)";
        return out;
      }
      continue;
    }
    if (arg == "--metrics") {
      out.options.metrics = true;
      continue;
    }
    if (const char* v = flag_value(arg, "--metrics=")) {
      if (*v == '\0') {
        out.error = "bad --metrics value: empty file name";
        return out;
      }
      out.options.metrics = true;
      out.options.metrics_path = v;
      continue;
    }
    if (const char* v = flag_value(arg, "--top=")) {
      if (*v == '\0') {
        out.error = "bad --top value: empty module name";
        return out;
      }
      out.options.top = v;
      continue;
    }
    if (const char* v = flag_value(arg, "--pattern-top=")) {
      if (*v == '\0') {
        out.error = "bad --pattern-top value: empty module name";
        return out;
      }
      out.options.pattern_top = v;
      continue;
    }
    if (const char* v = flag_value(arg, "--fail-on=")) {
      const std::string value = v;
      if (value == "warn") {
        out.options.fail_on = FailOn::kWarn;
      } else if (value == "error") {
        out.options.fail_on = FailOn::kError;
      } else {
        out.error = "bad --fail-on value '" + value + "' (want warn or error)";
        return out;
      }
      continue;
    }
    if (arg == "--lint") {
      out.options.lint = true;
      continue;
    }
    if (const char* v = flag_value(arg, "--core=")) {
      const auto mode = parse_core_mode(v);
      if (!mode.has_value()) {
        out.error = std::string("bad --core value '") + v +
                    "' (want csr or legacy)";
        return out;
      }
      out.options.core = *mode;
      continue;
    }
    if (const char* v = flag_value(arg, "--shard=")) {
      const std::string value = v;
      if (value == "off") {
        out.options.shard_target_devices = 0;
      } else if (value == "on") {
        out.options.shard_target_devices = std::size_t{1} << 16;
      } else {
        char* end = nullptr;
        const unsigned long target = std::strtoul(v, &end, 10);
        if (end == v || *end != '\0' || target == 0) {
          out.error = std::string("bad --shard value '") + v +
                      "' (want on, off, or a region size >= 1)";
          return out;
        }
        out.options.shard_target_devices = static_cast<std::size_t>(target);
      }
      continue;
    }
    if (const char* v = flag_value(arg, "--phase2-filter=")) {
      const auto filter = parse_phase2_filter(v);
      if (!filter.has_value()) {
        out.error = std::string("bad --phase2-filter value '") + v +
                    "' (want paths, on, or off)";
        return out;
      }
      out.options.phase2_filter = *filter;
      continue;
    }
    if (const char* v = flag_value(arg, "--analyze=")) {
      const std::string value = v;
      if (value == "on") {
        out.options.analyze = true;
      } else if (value == "off") {
        out.options.analyze = false;
      } else {
        out.error = "bad --analyze value '" + value + "' (want on or off)";
        return out;
      }
      continue;
    }
    if (const char* v = flag_value(arg, "--delta=")) {
      if (*v == '\0') {
        out.error = "bad --delta value: empty file name";
        return out;
      }
      out.options.delta_path = v;
      continue;
    }
    if (const char* v = flag_value(arg, "--serve-workers=")) {
      char* end = nullptr;
      const unsigned long workers = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || workers == 0) {
        out.error = std::string("bad --serve-workers value '") + v + "'";
        return out;
      }
      out.options.serve_workers = static_cast<std::size_t>(workers);
      continue;
    }
    if (const char* v = flag_value(arg, "--max-pending=")) {
      char* end = nullptr;
      const unsigned long pending = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || pending == 0) {
        out.error = std::string("bad --max-pending value '") + v + "'";
        return out;
      }
      out.options.max_pending = static_cast<std::size_t>(pending);
      continue;
    }
    if (const char* v = flag_value(arg, "--max-request-bytes=")) {
      char* end = nullptr;
      const unsigned long bytes = std::strtoul(v, &end, 10);
      if (end == v || *end != '\0' || bytes == 0) {
        out.error = std::string("bad --max-request-bytes value '") + v + "'";
        return out;
      }
      out.options.max_request_bytes = static_cast<std::size_t>(bytes);
      continue;
    }
    if (const char* v = flag_value(arg, "--request-timeout=")) {
      char* end = nullptr;
      const double seconds = std::strtod(v, &end);
      if (end == v || *end != '\0' || seconds <= 0) {
        out.error = std::string("bad --request-timeout value '") + v + "'";
        return out;
      }
      out.options.request_timeout = seconds;
      continue;
    }
    if (const char* v = flag_value(arg, "--socket=")) {
      if (*v == '\0') {
        out.error = "bad --socket value: empty path";
        return out;
      }
      out.options.socket_path = v;
      continue;
    }
    out.error = "unknown flag '" + arg + "'";
    return out;
  }
  return out;
}

ParsedArgs parse_args(int argc, char** argv, int first) {
  std::vector<std::string> args;
  for (int i = first; i < argc; ++i) args.emplace_back(argv[i]);
  return parse_args(args);
}

const char* global_flags_help() {
  return
      "  --timeout=<sec>    wall-clock budget; a run cut short exits 75\n"
      "  --jobs=<n>         parallel lanes (default: hardware concurrency;\n"
      "                     1 = serial; results are identical at every value)\n"
      "  --lenient          recover from malformed input lines (diagnostics\n"
      "                     go to stderr) instead of failing\n"
      "  --format=<fmt>     output format: text (default) or json (one\n"
      "                     schema_version-1 document on stdout)\n"
      "  --metrics[=FILE]   collect search metrics; dump the counter tree\n"
      "                     to FILE (default stderr), and embed it in json\n"
      "                     output\n"
      "  --top=NAME         top module of the host (second or sole) input\n"
      "  --pattern-top=NAME top module of the pattern (first) input\n"
      "  --fail-on=<sev>    lowest lint severity that fails the run: error\n"
      "                     (default) or warn\n"
      "  --lint             extract: lint the host netlist first; lint\n"
      "                     errors skip the extraction sweep\n"
      "  --core=<layout>    matching-core layout: csr (default; flattened\n"
      "                     index arrays) or legacy (direct graph walks);\n"
      "                     reports are byte-identical either way\n"
      "  --shard=<mode>     Phase I host sharding: off (default; one\n"
      "                     monolithic sweep), on (fanout-bounded regions of\n"
      "                     at most 65536 devices), or an explicit region\n"
      "                     size N >= 1; reports are byte-identical at every\n"
      "                     value, sharding only reschedules the sweeps and\n"
      "                     adds the shards_* counters\n"
      "  --phase2-filter=<mode> Phase II prefilter strength: paths (default;\n"
      "                     signature check + supplemental path-label\n"
      "                     refuter), on (signature alone), or off (pure\n"
      "                     census); results are identical, the weaker modes\n"
      "                     exist for A/B perf comparison\n"
      "  --analyze=<mode>   pre-search static analysis: on (default) checks\n"
      "                     infeasibility certificates (a refuted pairing\n"
      "                     skips the search and reports why) and dedups\n"
      "                     symmetric exhaustive enumeration; off reproduces\n"
      "                     the pre-analyzer pipeline\n"
      "  --delta=FILE       find/extract: apply an ECO delta (JSON-lines,\n"
      "                     one op per line) to the host before matching\n"
      "  serve-only flags:\n"
      "  --serve-workers=<n>    concurrent request workers (default 1)\n"
      "  --max-pending=<n>      queued-request bound; beyond it requests\n"
      "                         are answered `overloaded` (default 64)\n"
      "  --max-request-bytes=<n> longest accepted request line; longer\n"
      "                         lines are answered `oversized` (default 1M)\n"
      "  --request-timeout=<sec> default per-request budget; an expired\n"
      "                         request answers `deadline_expired`\n"
      "  --socket=PATH          serve an AF_UNIX socket at PATH instead of\n"
      "                         stdin/stdout\n";
}

}  // namespace subg::cli
