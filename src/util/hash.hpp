// Label hashing for the Gemini/SubGemini relabeling function (paper Fig 3).
//
// The paper labels vertices with integers that "approximate exact labels
// ... with a very high probability". A relabeling step computes
//
//   new(v) = f( old(v), { (class(e), old(u)) : e = (v,u) incident } )
//
// and must be (a) commutative over the incident edges — neighbor order is
// arbitrary — and (b) sensitive to the terminal class of each edge (the
// gate pin of a MOSFET must contribute differently from a source/drain
// pin). We realize f over uint64 as
//
//   new(v) = mix(old(v)) + Σ_e  mix( old(u) ^ coeff(class(e)) )
//
// with wrapping addition (commutative) and SplitMix64 as the mixer. A
// collision between inequivalent vertices requires a 64-bit hash collision;
// Phase II additionally verifies every reported match explicitly, so
// collisions can cost time but never soundness.
#pragma once

#include <cstdint>
#include <string_view>

#include "util/rng.hpp"

namespace subg {

/// Label type used throughout the partition-refinement machinery.
/// Label 0 is reserved to mean "unlabeled" (Phase II starts nets blank).
using Label = std::uint64_t;

inline constexpr Label kNoLabel = 0;

/// FNV-1a over a string, finalized with SplitMix64. Used for the initial
/// invariant labels (device type names) and special-net fixed labels.
[[nodiscard]] constexpr Label hash_string(std::string_view s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ULL;
  }
  Label out = splitmix64_mix(h);
  return out == kNoLabel ? 1 : out;
}

/// Combine two 64-bit values order-dependently (for tuples, not multisets).
[[nodiscard]] constexpr Label hash_combine(Label a, Label b) noexcept {
  Label out = splitmix64_mix(a ^ (splitmix64_mix(b) + 0x9E3779B97F4A7C15ULL));
  return out == kNoLabel ? 1 : out;
}

/// Initial invariant label of a net vertex of the given degree.
[[nodiscard]] constexpr Label degree_label(std::size_t degree) noexcept {
  Label out = splitmix64_mix(0xA076'1D64'78BD'642FULL ^ static_cast<Label>(degree));
  return out == kNoLabel ? 1 : out;
}

/// Per-edge coefficient for a terminal class. `type_label` identifies the
/// device type; `class_index` is the pin equivalence class within the type.
[[nodiscard]] constexpr Label class_coefficient(Label type_label,
                                                std::uint32_t class_index) noexcept {
  return splitmix64_mix(type_label + 0x2545F4914F6CDD1DULL * (class_index + 1));
}

/// One incident edge's contribution to a relabeling sum. The neighbor label
/// is mixed BEFORE the coefficient is added: pairing them with a bare XOR
/// (or add) would let contributions from two different pin classes collide
/// via the trivial differential neighbor2 = neighbor1 ^ (coeff1 ^ coeff2),
/// silently erasing class sensitivity for correlated labels. With the
/// pre-mix, equal cross-class contributions require inverting SplitMix64 —
/// i.e. a deliberate attack, not a structural accident.
[[nodiscard]] constexpr Label edge_contribution(Label coefficient,
                                                Label neighbor_label) noexcept {
  return splitmix64_mix(splitmix64_mix(neighbor_label) + coefficient);
}

/// Finalize a relabeling: mixed old label plus the commutative edge sum.
[[nodiscard]] constexpr Label relabel(Label old_label, Label edge_sum) noexcept {
  Label out = splitmix64_mix(old_label) + edge_sum;
  return out == kNoLabel ? 1 : out;
}

}  // namespace subg
