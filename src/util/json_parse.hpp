// Dependency-free JSON parser — the read side of util/json.hpp.
//
// The serve protocol reads one JSON request per line from untrusted
// clients, so unlike the writer this code must be defensive: every
// malformed input returns a structured error (position + message), nesting
// depth is bounded (hostile "[[[[..." input must not overflow the stack),
// and numbers out of integer range fall back to double instead of invoking
// UB. Values parse into the same json::Value tree the writer serializes,
// so parse(dump(v)) round-trips for every tree the writer can emit (modulo
// non-finite doubles, which the writer encodes as null).
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace subg::json {

struct ParseResult {
  Value value;
  /// Empty on success; otherwise a one-line description and `offset` is the
  /// byte position in the input where parsing failed.
  std::string error;
  std::size_t offset = 0;

  [[nodiscard]] bool ok() const { return error.empty(); }
};

/// Parse one complete JSON document. Trailing non-whitespace is an error
/// (a request line must be exactly one value). `max_depth` bounds
/// container nesting.
[[nodiscard]] ParseResult parse(std::string_view text,
                                std::size_t max_depth = 64);

}  // namespace subg::json
