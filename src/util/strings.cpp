#include "util/strings.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace subg {

std::vector<std::string_view> split_ws(std::string_view line) {
  std::vector<std::string_view> out;
  std::size_t i = 0;
  while (i < line.size()) {
    while (i < line.size() && std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    std::size_t start = i;
    while (i < line.size() && !std::isspace(static_cast<unsigned char>(line[i]))) ++i;
    if (i > start) out.push_back(line.substr(start, i - start));
  }
  return out;
}

std::vector<std::string_view> split_char(std::string_view s, char delim) {
  std::vector<std::string_view> out;
  std::size_t start = 0;
  while (true) {
    std::size_t pos = s.find(delim, start);
    if (pos == std::string_view::npos) {
      out.push_back(s.substr(start));
      return out;
    }
    out.push_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::tolower(c)); });
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  std::transform(out.begin(), out.end(), out.begin(),
                 [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
  return out;
}

std::string_view trim(std::string_view s) {
  std::size_t b = 0;
  while (b < s.size() && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  std::size_t e = s.size();
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

bool starts_with_icase(std::string_view s, std::string_view prefix) {
  if (s.size() < prefix.size()) return false;
  return equals_icase(s.substr(0, prefix.size()), prefix);
}

bool ends_with_icase(std::string_view s, std::string_view suffix) {
  if (s.size() < suffix.size()) return false;
  return equals_icase(s.substr(s.size() - suffix.size()), suffix);
}

bool equals_icase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

std::string format_fixed(double value, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", precision, value);
  return buf;
}

std::string with_commas(long long value) {
  std::string digits = std::to_string(value < 0 ? -value : value);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  if (value < 0) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

}  // namespace subg
