// ECO netlist deltas: the edit language of a HostSession.
//
// A delta is an ORDERED list of edits to an already-loaded host netlist,
// parsed from a JSON-lines text (one op object per line; blank lines and
// `#` comment lines are skipped). The grammar, per op:
//
//   {"op":"add_net",       "name":"X", "global":bool?, "port":bool?}
//   {"op":"remove_net",    "name":"X"}            # must have degree 0
//   {"op":"add_device",    "type":"nmos", "name":"M1",
//                          "nets":["a","b","c"]}  # missing nets are created
//   {"op":"remove_device", "name":"M1"}           # internal nets left at
//                                                 # degree 0 are dropped too
//   {"op":"rename_net",    "from":"a", "to":"b"}
//   {"op":"rename_device", "from":"m1", "to":"m2"}
//
// Ops apply strictly in order; every name resolves against the netlist
// state produced by the preceding ops. Malformed lines and inapplicable
// ops (unknown name, duplicate name, removing a live net) throw
// subg::Error prefixed "delta line N: ...".
//
// apply_delta() additionally tracks the PEDIGREE of the edit — which
// post-edit entities are fresh, which were renamed (and from what), and
// which nets had their pin set changed. HostSession::apply uses that to
// map vertices across the edit and to seed the label-cache dirty cone; see
// session.hpp.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "netlist/netlist.hpp"

namespace subg {

enum class DeltaOpKind : std::uint8_t {
  kAddNet,
  kRemoveNet,
  kAddDevice,
  kRemoveDevice,
  kRenameNet,
  kRenameDevice,
};

struct DeltaOp {
  DeltaOpKind kind = DeltaOpKind::kAddNet;
  /// add_net / remove_net / add_device / remove_device target name.
  /// add_device accepts "" (auto-named, like Netlist::add_device).
  std::string name;
  /// add_device only: catalog type name.
  std::string type;
  /// add_device only: pin nets in pin order (created when missing).
  std::vector<std::string> nets;
  /// rename_* only.
  std::string from;
  std::string to;
  /// add_net only.
  bool global = false;
  bool port = false;
  /// 1-based source line, for apply-time error messages.
  std::size_t line = 0;
};

struct NetlistDelta {
  std::vector<DeltaOp> ops;
};

/// Parse a JSON-lines delta text. Throws subg::Error ("delta line N: ...")
/// on the first malformed line. Fault site "parse.delta".
[[nodiscard]] NetlistDelta parse_delta(std::string_view text);

/// parse_delta over the contents of `path`; throws subg::Error when the
/// file cannot be read.
[[nodiscard]] NetlistDelta parse_delta_file(const std::string& path);

/// What a delta did to the netlist, in post-edit names — the bookkeeping
/// HostSession needs to rebase caches in O(change). All sets/maps speak
/// CURRENT (post-edit) names; entities removed again by a later op are
/// cleaned out, so the final state describes exactly the surviving edit.
struct DeltaEffects {
  /// Devices/nets that did not exist before the delta (a remove+re-add of
  /// the same name counts as fresh — conservative, always sound).
  std::unordered_set<std::string> fresh_devices;
  std::unordered_set<std::string> fresh_nets;
  /// Pre-existing nets whose pin set changed (gained or lost pins).
  std::unordered_set<std::string> touched_nets;
  /// Surviving renamed entities: current name -> pre-delta name.
  std::unordered_map<std::string, std::string> device_pre_name;
  std::unordered_map<std::string, std::string> net_pre_name;
  /// Op counts actually applied (for the eco.* counters).
  std::uint64_t device_ops = 0;
  std::uint64_t net_ops = 0;
  std::uint64_t rename_ops = 0;
};

/// Apply `delta` to `netlist` in order. Throws subg::Error on the first
/// inapplicable op, leaving the netlist in the partially-applied state —
/// callers needing atomicity (HostSession::apply) edit a copy and commit
/// by swap.
DeltaEffects apply_delta(Netlist& netlist, const NetlistDelta& delta);

}  // namespace subg
