// HostSession — the owned handle for a loaded host (ISSUE 8 / ROADMAP
// "incremental ECO matching").
//
// Everything the matcher shares across repeated searches of one host —
// the flattened CircuitGraph, the --core=csr SoA arrays, and the
// HostLabelCache of Phase I label sequences — used to be built ad hoc by
// every consumer (CLI one-shot, serve `load`, extract per-tier, bench
// mains). A HostSession owns the whole bundle:
//
//   HostSession session = HostSession::build(netlist);
//   MatchReport r = find_in_session(pattern, session, options);
//   session.apply(parse_delta(delta_text));   // ECO edit, O(change) labels
//   MatchReport r2 = find_in_session(pattern, session, options);
//
// apply() is ATOMIC (apply-or-rollback): every fallible step — delta
// application, graph rebuild, capacity check, cache rebase — runs on
// copies; the session swaps them in only after all of them succeed, so a
// thrown Error (or an injected "session.patch" fault) leaves the session
// byte-identical to before. The CSR core is refilled IN PLACE into its
// retained storage; capacity beyond the new live size is the spill that
// spill_bytes() reports and that compaction reclaims once it crosses
// SessionOptions::spill_compaction_bytes.
//
// The invariant contract: a patched session produces byte-identical
// reports/traces/JSON to a cold HostSession::build over the edited
// netlist, in both cores, at every --jobs. Under SUBG_AUDIT this is
// enforced structurally on every apply (A17: patched CSR equals a cold
// CSR build; A18: rebased label rounds equal a cold recompute — see
// HostLabelCache::rebase).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "analyze/analyze.hpp"
#include "graph/circuit_graph.hpp"
#include "graph/csr_core.hpp"
#include "graph/shard_plan.hpp"
#include "match/host_labels.hpp"
#include "match/matcher.hpp"
#include "netlist/netlist.hpp"
#include "session/delta.hpp"

namespace subg {

struct SessionOptions {
  /// Core layout the session maintains. kCsr builds (and patches) the flat
  /// SoA core; kLegacy skips it — matches then walk the CircuitGraph.
  CoreMode core = CoreMode::kCsr;
  /// Edge budget for the csr core. Defaults to the real offset limit of
  /// the configured width (32-bit unless built with -DSUBG_CSR_OFFSET64=ON;
  /// see graph/csr_core.hpp); tests lower it to exercise the overflow path (core dropped
  /// with a kTruncated core_status(), matching falls back to legacy, and
  /// patches keep working) without a four-billion-edge host.
  std::size_t max_core_edges = CsrCore::kMaxEdges;
  /// Compact the core (release retained-but-unused storage) when a patch
  /// leaves more spill than this many bytes.
  std::size_t spill_compaction_bytes = std::size_t{1} << 20;
  /// Shard the host for Phase I (graph/shard_plan.hpp): 0 (the default)
  /// matches the whole host as one monolith; > 0 decomposes it into
  /// fanout-bounded regions of at most this many owned devices, rebuilt on
  /// every apply(). Reports stay byte-identical either way at every --jobs
  /// and in both cores — sharding changes the sweep schedule and adds the
  /// shards_* counters, never the result.
  std::size_t shard_target_devices = 0;
  /// Nets with at least this many pins become boundary anchors (replicated
  /// by reference, never owned) when sharding is on. Tests lower it to
  /// force many regions out of small hosts.
  std::size_t shard_anchor_fanout = 64;
};

/// What one apply() did — the per-patch numbers behind the eco.* counters
/// and the serve `patch` response.
struct ApplyStats {
  /// Device add/remove ops applied ("eco.patched_devices").
  std::uint64_t patched_devices = 0;
  /// Net add/remove ops applied.
  std::uint64_t patched_nets = 0;
  /// Rename ops applied.
  std::uint64_t renames = 0;
  /// Label-cache entries recomputed by the rebase — the dirty-cone size,
  /// which scales with the EDIT, not the host ("eco.invalidated_labels").
  std::uint64_t invalidated_labels = 0;
  /// 1 when this patch triggered a core compaction ("eco.compactions").
  std::uint64_t compactions = 0;
};

class HostSession {
 public:
  /// Build a session over (a copy of) `netlist`. Pass by value: callers
  /// that are done with their netlist move it in. When the csr core does
  /// not fit max_core_edges the session still builds — core() is null,
  /// core_status() carries the structured refusal, and configure() routes
  /// matches through the legacy core.
  [[nodiscard]] static HostSession build(Netlist netlist,
                                         SessionOptions options = {});

  HostSession(HostSession&&) = default;
  HostSession& operator=(HostSession&&) = default;
  HostSession(const HostSession&) = delete;
  HostSession& operator=(const HostSession&) = delete;

  /// Apply an ECO delta atomically. Throws subg::Error (delta inapplicable,
  /// "delta line N: ..." messages) or fault::InjectedFault ("session.patch")
  /// with the session unchanged. On success the graph/core/cache are
  /// rebased and the per-patch stats returned.
  ApplyStats apply(const NetlistDelta& delta);

  /// Wire this session's shared host structures into match options:
  /// phase1.host_cache and host_core point at the session, and core falls
  /// back to kLegacy when the session holds no csr core. NOTE: because the
  /// cache is session-owned, Phase I does not fold its reuse totals into
  /// metrics — callers that want them call
  /// record_cache_stats(metrics, session.cache().stats()) themselves.
  void configure(MatchOptions& options);

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }
  [[nodiscard]] const CircuitGraph& graph() const { return *graph_; }
  /// Null when SessionOptions::core == kLegacy or the host overflows the
  /// edge budget (see core_status()).
  [[nodiscard]] const CsrCore* core() const { return core_.get(); }
  [[nodiscard]] HostLabelCache& cache() { return *cache_; }
  /// Session-owned supplemental path labels over the host (src/analyze),
  /// shared across matches via configure() and REBASED through apply() —
  /// only anchors inside the patch's dirty cone recompute, the rest copy
  /// through the vertex pedigree (audit A19 pins the rebase against a cold
  /// rebuild).
  [[nodiscard]] const analyze::PathLabels& path_labels() const {
    return *paths_;
  }
  /// kComplete, or the kTruncated refusal explaining the missing core.
  [[nodiscard]] const RunStatus& core_status() const { return core_status_; }
  /// Null unless SessionOptions::shard_target_devices > 0. Rebuilt cold on
  /// every apply() (the plan is a pure function of the patched graph, so a
  /// patched session's shards equal a cold build's).
  [[nodiscard]] const ShardPlan* shards() const { return shards_.get(); }
  [[nodiscard]] const SessionOptions& options() const { return options_; }

  // --- session generation (serve `status`, eco.* counters) -------------
  [[nodiscard]] std::uint64_t patch_count() const { return patch_count_; }
  /// Retained-but-unused core storage right now (0 without a core).
  [[nodiscard]] std::size_t spill_bytes() const {
    return core_ ? core_->spill_bytes() : 0;
  }
  /// Patch ordinal (1-based) of the most recent compaction; 0 = never.
  [[nodiscard]] std::uint64_t last_compaction() const {
    return last_compaction_;
  }
  /// Cumulative apply() stats since build().
  [[nodiscard]] const ApplyStats& totals() const { return totals_; }

 private:
  HostSession() = default;

  SessionOptions options_;
  std::unique_ptr<Netlist> netlist_;
  std::unique_ptr<CircuitGraph> graph_;
  std::unique_ptr<CsrCore> core_;
  std::unique_ptr<ShardPlan> shards_;
  std::unique_ptr<HostLabelCache> cache_;
  std::unique_ptr<analyze::PathLabels> paths_;
  RunStatus core_status_;
  std::uint64_t patch_count_ = 0;
  std::uint64_t last_compaction_ = 0;
  ApplyStats totals_;
};

/// Match `pattern` against the session's host, sharing its graph, core,
/// and label cache. The session-aware replacement for constructing a
/// SubgraphMatcher per call; the old constructors remain as thin shims for
/// callers that have no session.
[[nodiscard]] MatchReport find_in_session(const Netlist& pattern,
                                          HostSession& session,
                                          MatchOptions options = {});

/// Fold one apply()'s stats into the eco.* counters (eco.patched_devices,
/// eco.patched_nets, eco.renames, eco.invalidated_labels, eco.compactions).
/// Null-safe, like record_cache_stats.
void record_eco_stats(obs::Metrics* metrics, const ApplyStats& stats);

}  // namespace subg
