#include "session/session.hpp"

#include <utility>
#include <vector>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"

namespace subg {

namespace {

/// Build a fresh core when the graph fits `max_edges`; otherwise leave the
/// core null and report the refusal. Shared by build() and apply().
RunStatus core_capacity(const CircuitGraph& graph, std::size_t max_edges) {
  return CsrCore::capacity_status(graph, max_edges);
}

}  // namespace

HostSession HostSession::build(Netlist netlist, SessionOptions options) {
  HostSession session;
  session.options_ = options;
  session.netlist_ = std::make_unique<Netlist>(std::move(netlist));
  session.graph_ = std::make_unique<CircuitGraph>(*session.netlist_);
  session.cache_ = std::make_unique<HostLabelCache>(*session.graph_);
  if (options.core == CoreMode::kCsr) {
    session.core_status_ = core_capacity(*session.graph_, options.max_core_edges);
    if (session.core_status_.complete()) {
      session.core_ = std::make_unique<CsrCore>(*session.graph_);
    }
  }
  if (options.shard_target_devices > 0) {
    session.shards_ = std::make_unique<ShardPlan>(ShardPlan::build(
        *session.graph_, {.target_devices = options.shard_target_devices,
                          .anchor_fanout = options.shard_anchor_fanout}));
  }
  // Supplemental path labels, built once per session and shared by every
  // match (configure() wires them into MatchOptions::host_path_labels).
  // The core overload is preferred only as the faster walk; counts are
  // bit-identical either way.
  session.paths_ = std::make_unique<analyze::PathLabels>(
      session.core_ != nullptr
          ? analyze::build_path_labels(*session.core_, *session.netlist_,
                                       analyze::Side::kHost)
          : analyze::build_path_labels(*session.graph_, *session.netlist_,
                                       analyze::Side::kHost));
  return session;
}

ApplyStats HostSession::apply(const NetlistDelta& delta) {
  // Every fallible step runs on copies; nothing the session owns is
  // touched until the commit below, so a throw anywhere in this block —
  // including the injected "session.patch" fault — rolls back for free.
  auto new_netlist = std::make_unique<Netlist>(*netlist_);
  const DeltaEffects fx = apply_delta(*new_netlist, delta);
  if constexpr (kAuditEnabled) {
    new_netlist->validate();
  }
  auto new_graph = std::make_unique<CircuitGraph>(*new_netlist);

  // Vertex pedigree across the edit: resolve every post-edit entity back
  // to its pre-edit id by name (through the rename map), skipping fresh
  // ones. Unmatched vertices on either side map to kNoVertex.
  const Vertex kNone = HostLabelCache::kNoVertex;
  std::vector<Vertex> old_to_new(graph_->vertex_count(), kNone);
  std::vector<Vertex> new_to_old(new_graph->vertex_count(), kNone);
  for (std::uint32_t d = 0; d < new_netlist->device_count(); ++d) {
    const std::string& name = new_netlist->device_name(DeviceId(d));
    if (fx.fresh_devices.contains(name)) continue;
    const auto pre = fx.device_pre_name.find(name);
    const auto old_id = netlist_->find_device(
        pre == fx.device_pre_name.end() ? name : pre->second);
    if (!old_id) continue;
    const Vertex ov = graph_->vertex_of(*old_id);
    const Vertex nv = new_graph->vertex_of(DeviceId(d));
    old_to_new[ov] = nv;
    new_to_old[nv] = ov;
  }
  for (std::uint32_t n = 0; n < new_netlist->net_count(); ++n) {
    const std::string& name = new_netlist->net_name(NetId(n));
    if (fx.fresh_nets.contains(name)) continue;
    const auto pre = fx.net_pre_name.find(name);
    const auto old_id = netlist_->find_net(
        pre == fx.net_pre_name.end() ? name : pre->second);
    if (!old_id) continue;
    const Vertex ov = graph_->vertex_of(*old_id);
    const Vertex nv = new_graph->vertex_of(NetId(n));
    old_to_new[ov] = nv;
    new_to_old[nv] = ov;
  }

  // Dirty-cone seed, in new-graph vertices: nets whose pin set changed,
  // plus renamed entities (a renamed GLOBAL net changes its fixed label —
  // special_net_label hashes the name; renamed devices are included
  // defensively, their labels are name-independent). Fresh vertices seed
  // implicitly inside rebase (no old value to copy).
  std::vector<Vertex> dirty_seed;
  for (const std::string& name : fx.touched_nets) {
    if (const auto id = new_netlist->find_net(name)) {
      dirty_seed.push_back(new_graph->vertex_of(*id));
    }
  }
  for (const auto& [name, pre] : fx.net_pre_name) {
    if (const auto id = new_netlist->find_net(name)) {
      dirty_seed.push_back(new_graph->vertex_of(*id));
    }
  }
  for (const auto& [name, pre] : fx.device_pre_name) {
    if (const auto id = new_netlist->find_device(name)) {
      dirty_seed.push_back(new_graph->vertex_of(*id));
    }
  }

  // Capacity is re-checked against the edited graph: a patch pushing the
  // edge count past the budget drops the core (structured kTruncated
  // status, legacy matching) instead of corrupting or aborting.
  RunStatus new_core_status;
  bool want_core = false;
  if (options_.core == CoreMode::kCsr) {
    new_core_status = core_capacity(*new_graph, options_.max_core_edges);
    want_core = new_core_status.complete();
  }

  ApplyStats stats;
  stats.patched_devices = fx.device_ops;
  stats.patched_nets = fx.net_ops;
  stats.renames = fx.rename_ops;
  auto new_cache = cache_->rebase(*new_graph, old_to_new, new_to_old,
                                  dirty_seed, &stats.invalidated_labels);
  // Path-label rebase rides the same pedigree and dirty seeds: every
  // changed edge is incident to a touched net or a fresh vertex, so the
  // radius-walk_steps cone around the seeds covers every anchor whose
  // closed-walk ball saw the edit; the rest copy through new_to_old.
  auto new_paths = std::make_unique<analyze::PathLabels>(
      analyze::rebase_path_labels(*paths_, *new_graph, *new_netlist,
                                  new_to_old, dirty_seed));
  // The shard plan rebuilds cold over the edited graph (a pure function of
  // it, so a patched session's plan equals a cold build's by construction);
  // like every other fallible step it runs before the commit point.
  std::unique_ptr<ShardPlan> new_shards;
  if (shards_ != nullptr) {
    new_shards = std::make_unique<ShardPlan>(
        ShardPlan::build(*new_graph, shards_->options()));
  }

  SUBG_FAULT_POINT("session.patch");

  // --- commit (infallible modulo bad_alloc) ---------------------------
  netlist_ = std::move(new_netlist);
  graph_ = std::move(new_graph);
  cache_ = std::move(new_cache);
  paths_ = std::move(new_paths);
  shards_ = std::move(new_shards);
  core_status_ = new_core_status;
  if (want_core) {
    if (core_ != nullptr) {
      core_->rebuild(*graph_);  // refill retained storage (the spill path)
    } else {
      core_ = std::make_unique<CsrCore>(*graph_);
    }
  } else {
    core_.reset();
  }
  ++patch_count_;
  if (core_ != nullptr &&
      core_->spill_bytes() > options_.spill_compaction_bytes) {
    core_->shrink();
    stats.compactions = 1;
    last_compaction_ = patch_count_;
  }
  if constexpr (kAuditEnabled) {
    if (core_ != nullptr) {
      // A17 — patched-core fidelity: the in-place refill must be
      // element-wise identical to a cold flatten of the edited graph.
      const CsrCore cold(*graph_);
      SUBG_AUDIT_MSG(core_->structurally_equal(cold),
                     "session audit (A17): patched csr core diverged from "
                     "a cold rebuild of the edited host");
    }
    // A19 — path-label rebase fidelity: dirty-cone recompute + pedigree
    // copy must be bit-identical to a cold build over the edited host.
    const analyze::PathLabels cold_paths =
        analyze::build_path_labels(*graph_, *netlist_, analyze::Side::kHost);
    SUBG_AUDIT_MSG(paths_->counts == cold_paths.counts &&
                       paths_->vertex_count == cold_paths.vertex_count,
                   "session audit (A19): rebased path labels diverged from "
                   "a cold rebuild of the edited host");
  }
  totals_.patched_devices += stats.patched_devices;
  totals_.patched_nets += stats.patched_nets;
  totals_.renames += stats.renames;
  totals_.invalidated_labels += stats.invalidated_labels;
  totals_.compactions += stats.compactions;
  return stats;
}

void HostSession::configure(MatchOptions& options) {
  options.phase1.host_cache = cache_.get();
  options.phase1.shards = shards_.get();
  options.host_core = core_.get();
  options.host_path_labels = paths_.get();
  if (core_ == nullptr) options.core = CoreMode::kLegacy;
}

MatchReport find_in_session(const Netlist& pattern, HostSession& session,
                            MatchOptions options) {
  session.configure(options);
  SubgraphMatcher matcher(pattern, session.graph(), options);
  return matcher.find_all();
}

void record_eco_stats(obs::Metrics* metrics, const ApplyStats& stats) {
  obs::count(metrics, "eco.patched_devices", stats.patched_devices);
  obs::count(metrics, "eco.patched_nets", stats.patched_nets);
  obs::count(metrics, "eco.renames", stats.renames);
  obs::count(metrics, "eco.invalidated_labels", stats.invalidated_labels);
  obs::count(metrics, "eco.compactions", stats.compactions);
}

}  // namespace subg
