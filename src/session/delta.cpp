#include "session/delta.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/json_parse.hpp"

namespace subg {

namespace {

[[noreturn]] void fail_line(std::size_t line, const std::string& what) {
  throw Error("delta line " + std::to_string(line) + ": " + what);
}

/// Required string member, non-empty unless `allow_empty`.
std::string need_string(const json::Value& obj, std::string_view key,
                        std::size_t line, bool allow_empty = false) {
  const json::Value* member = obj.find(key);
  if (member == nullptr || member->kind() != json::Value::Kind::kString) {
    fail_line(line, "missing string member \"" + std::string(key) + "\"");
  }
  const std::string& s = member->as_string();
  if (s.empty() && !allow_empty) {
    fail_line(line, "member \"" + std::string(key) + "\" must be non-empty");
  }
  return s;
}

bool optional_bool(const json::Value& obj, std::string_view key,
                   std::size_t line) {
  const json::Value* member = obj.find(key);
  if (member == nullptr) return false;
  if (member->kind() != json::Value::Kind::kBool) {
    fail_line(line, "member \"" + std::string(key) + "\" must be a boolean");
  }
  return member->as_bool();
}

DeltaOp parse_op(const json::Value& obj, std::size_t line) {
  DeltaOp op;
  op.line = line;
  const std::string kind = need_string(obj, "op", line);
  if (kind == "add_net") {
    op.kind = DeltaOpKind::kAddNet;
    op.name = need_string(obj, "name", line);
    op.global = optional_bool(obj, "global", line);
    op.port = optional_bool(obj, "port", line);
  } else if (kind == "remove_net") {
    op.kind = DeltaOpKind::kRemoveNet;
    op.name = need_string(obj, "name", line);
  } else if (kind == "add_device") {
    op.kind = DeltaOpKind::kAddDevice;
    op.type = need_string(obj, "type", line);
    const json::Value* name = obj.find("name");
    if (name != nullptr) op.name = need_string(obj, "name", line);
    const json::Value* nets = obj.find("nets");
    if (nets == nullptr || !nets->is_array()) {
      fail_line(line, "missing array member \"nets\"");
    }
    for (const json::Value& net : nets->elements()) {
      if (net.kind() != json::Value::Kind::kString ||
          net.as_string().empty()) {
        fail_line(line, "\"nets\" entries must be non-empty strings");
      }
      op.nets.push_back(net.as_string());
    }
  } else if (kind == "remove_device") {
    op.kind = DeltaOpKind::kRemoveDevice;
    op.name = need_string(obj, "name", line);
  } else if (kind == "rename_net" || kind == "rename_device") {
    op.kind = kind == "rename_net" ? DeltaOpKind::kRenameNet
                                   : DeltaOpKind::kRenameDevice;
    op.from = need_string(obj, "from", line);
    op.to = need_string(obj, "to", line);
  } else {
    fail_line(line, "unknown op \"" + kind + "\"");
  }
  return op;
}

}  // namespace

NetlistDelta parse_delta(std::string_view text) {
  SUBG_FAULT_POINT("parse.delta");
  NetlistDelta delta;
  std::size_t line_no = 0;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    const std::size_t eol = text.find('\n', pos);
    const std::string_view line =
        text.substr(pos, eol == std::string_view::npos ? std::string_view::npos
                                                       : eol - pos);
    ++line_no;
    pos = eol == std::string_view::npos ? text.size() + 1 : eol + 1;

    std::size_t first = line.find_first_not_of(" \t\r");
    if (first == std::string_view::npos || line[first] == '#') continue;

    const json::ParseResult parsed = json::parse(line);
    if (!parsed.ok()) {
      fail_line(line_no, "invalid JSON at byte " +
                             std::to_string(parsed.offset) + ": " +
                             parsed.error);
    }
    if (!parsed.value.is_object()) {
      fail_line(line_no, "each delta line must be a JSON object");
    }
    delta.ops.push_back(parse_op(parsed.value, line_no));
  }
  return delta;
}

NetlistDelta parse_delta_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw Error("cannot read delta file '" + path + "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return parse_delta(buffer.str());
}

namespace {

/// Move `name`'s membership/mappings when a rename lands, and resolve the
/// pedigree of a name: fresh, renamed survivor, or untouched original.
struct PedigreeTracker {
  DeltaEffects* fx;

  void net_created(const std::string& name) { fx->fresh_nets.insert(name); }

  void net_pins_changed(const std::string& name) {
    // Pin changes on fresh nets are already covered by freshness.
    if (!fx->fresh_nets.contains(name)) fx->touched_nets.insert(name);
  }

  /// A net vanished (explicit remove_net, or dropped at degree 0 by
  /// remove_devices): forget everything recorded under its name.
  void net_gone(const std::string& name) {
    fx->fresh_nets.erase(name);
    fx->touched_nets.erase(name);
    fx->net_pre_name.erase(name);
  }

  void net_renamed(const std::string& from, const std::string& to) {
    if (auto fresh = fx->fresh_nets.find(from); fresh != fx->fresh_nets.end()) {
      fx->fresh_nets.erase(fresh);
      fx->fresh_nets.insert(to);
    } else {
      auto pre = fx->net_pre_name.find(from);
      const std::string origin =
          pre == fx->net_pre_name.end() ? from : pre->second;
      if (pre != fx->net_pre_name.end()) fx->net_pre_name.erase(pre);
      fx->net_pre_name.emplace(to, origin);
    }
    if (auto touched = fx->touched_nets.find(from);
        touched != fx->touched_nets.end()) {
      fx->touched_nets.erase(touched);
      fx->touched_nets.insert(to);
    }
  }

  void device_created(const std::string& name) {
    fx->fresh_devices.insert(name);
  }

  void device_gone(const std::string& name) {
    fx->fresh_devices.erase(name);
    fx->device_pre_name.erase(name);
  }

  void device_renamed(const std::string& from, const std::string& to) {
    if (auto fresh = fx->fresh_devices.find(from);
        fresh != fx->fresh_devices.end()) {
      fx->fresh_devices.erase(fresh);
      fx->fresh_devices.insert(to);
    } else {
      auto pre = fx->device_pre_name.find(from);
      const std::string origin =
          pre == fx->device_pre_name.end() ? from : pre->second;
      if (pre != fx->device_pre_name.end()) fx->device_pre_name.erase(pre);
      fx->device_pre_name.emplace(to, origin);
    }
  }
};

}  // namespace

DeltaEffects apply_delta(Netlist& netlist, const NetlistDelta& delta) {
  DeltaEffects fx;
  PedigreeTracker tracker{&fx};
  for (const DeltaOp& op : delta.ops) {
    switch (op.kind) {
      case DeltaOpKind::kAddNet: {
        if (netlist.find_net(op.name)) {
          fail_line(op.line, "net '" + op.name + "' already exists");
        }
        const NetId n = netlist.add_net(op.name);
        if (op.global) netlist.mark_global(n);
        if (op.port) netlist.mark_port(n);
        tracker.net_created(op.name);
        ++fx.net_ops;
        break;
      }
      case DeltaOpKind::kRemoveNet: {
        const auto n = netlist.find_net(op.name);
        if (!n) fail_line(op.line, "unknown net '" + op.name + "'");
        if (netlist.net_degree(*n) != 0) {
          fail_line(op.line, "net '" + op.name +
                                 "' still has connected pins; remove its "
                                 "devices first");
        }
        netlist.remove_net(*n);
        tracker.net_gone(op.name);
        ++fx.net_ops;
        break;
      }
      case DeltaOpKind::kAddDevice: {
        const auto type = netlist.catalog().find(op.type);
        if (!type) {
          fail_line(op.line, "unknown device type '" + op.type + "'");
        }
        if (!op.name.empty() && netlist.find_device(op.name)) {
          fail_line(op.line, "device '" + op.name + "' already exists");
        }
        const std::uint32_t want = netlist.catalog().type(*type).pin_count();
        if (op.nets.size() != want) {
          fail_line(op.line, "device type '" + op.type + "' has " +
                                 std::to_string(want) + " pins, got " +
                                 std::to_string(op.nets.size()) + " nets");
        }
        std::vector<NetId> pins;
        pins.reserve(op.nets.size());
        for (const std::string& net_name : op.nets) {
          if (!netlist.find_net(net_name)) {
            tracker.net_created(net_name);
          } else {
            tracker.net_pins_changed(net_name);
          }
          pins.push_back(netlist.ensure_net(net_name));
        }
        const DeviceId d = netlist.add_device(*type, pins, op.name);
        tracker.device_created(netlist.device_name(d));
        ++fx.device_ops;
        break;
      }
      case DeltaOpKind::kRemoveDevice: {
        const auto d = netlist.find_device(op.name);
        if (!d) fail_line(op.line, "unknown device '" + op.name + "'");
        // The victim's nets lose a pin each; capture names first, because
        // remove_devices also drops internal nets that reach degree 0.
        std::vector<std::string> pin_nets;
        for (const NetId n : netlist.device_pins(*d)) {
          pin_nets.push_back(netlist.net_name(n));
        }
        const DeviceId victim = *d;
        netlist.remove_devices({&victim, 1});
        tracker.device_gone(op.name);
        for (const std::string& net_name : pin_nets) {
          if (netlist.find_net(net_name)) {
            tracker.net_pins_changed(net_name);
          } else {
            tracker.net_gone(net_name);
          }
        }
        ++fx.device_ops;
        break;
      }
      case DeltaOpKind::kRenameNet: {
        const auto n = netlist.find_net(op.from);
        if (!n) fail_line(op.line, "unknown net '" + op.from + "'");
        if (netlist.find_net(op.to)) {
          fail_line(op.line, "net '" + op.to + "' already exists");
        }
        netlist.rename_net(*n, op.to);
        tracker.net_renamed(op.from, op.to);
        ++fx.rename_ops;
        break;
      }
      case DeltaOpKind::kRenameDevice: {
        const auto d = netlist.find_device(op.from);
        if (!d) fail_line(op.line, "unknown device '" + op.from + "'");
        if (netlist.find_device(op.to)) {
          fail_line(op.line, "device '" + op.to + "' already exists");
        }
        netlist.rename_device(*d, op.to);
        tracker.device_renamed(op.from, op.to);
        ++fx.rename_ops;
        break;
      }
    }
  }
  return fx;
}

}  // namespace subg
