// The serve wire protocol: JSON-lines requests and responses.
//
// One request per line, one response per line, both JSON objects. The
// response schema is an extension of report schema v1 (additive-only; see
// README.md "Match-server mode"):
//
//   request:  {"op": "find", "id": 7, "pattern": "...", "host": "chip"}
//   success:  {"schema_version": 1, "id": 7, "op": "find", "ok": true,
//              "result": {...}}
//   failure:  {"schema_version": 1, "id": 7, "op": "find", "ok": false,
//              "error": {"code": "deadline_expired", "message": "..."},
//              "result": {...partial...}}
//
// The "result" of a find/extract/lint response carries exactly the members
// the one-shot CLI document does ("pattern", "host", "instances",
// "report", ...), built by the SAME helpers below — so a serve answer and a
// `subgemini find --format=json` answer agree byte for byte on every
// deterministic member. "id" is echoed verbatim (any JSON value; null when
// the request had none), so pipelined clients can correlate out-of-order
// responses from a multi-worker server.
//
// Error codes are a closed, documented set (to_string below): consumers
// branch on "error.code", never on message text.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "util/budget.hpp"
#include "util/json.hpp"

namespace subg {
struct MatchReport;
}  // namespace subg

namespace subg::serve {

/// Structured failure classes, in the "error.code" member. The set may grow
/// within schema v1; existing codes keep their meaning.
enum class ErrorCode {
  kParseError,       ///< request line or an inline netlist failed to parse
  kBadRequest,       ///< well-formed JSON, but not a valid request
  kUnknownOp,        ///< "op" names no handler
  kUnknownHost,      ///< "host" names no loaded host
  kOversized,        ///< request line exceeded max_request_bytes
  kDeadlineExpired,  ///< per-request budget expired (the in-band exit-75)
  kResourceLimit,    ///< a search cap truncated the sweep
  kCancelled,        ///< the run's cancel token fired
  kOverloaded,       ///< admission control shed the request (queue full)
  kShuttingDown,     ///< request was queued behind a drain
  kInjectedFault,    ///< a SUBG_FAULT trigger point fired (test builds)
  kInternal,         ///< unexpected exception; the daemon itself survived
  kAlreadyLoaded,    ///< `load` would replace an existing host name
  kBadDelta,         ///< `patch` delta failed to parse or apply
};

[[nodiscard]] constexpr const char* to_string(ErrorCode code) {
  switch (code) {
    case ErrorCode::kParseError: return "parse_error";
    case ErrorCode::kBadRequest: return "bad_request";
    case ErrorCode::kUnknownOp: return "unknown_op";
    case ErrorCode::kUnknownHost: return "unknown_host";
    case ErrorCode::kOversized: return "oversized";
    case ErrorCode::kDeadlineExpired: return "deadline_expired";
    case ErrorCode::kResourceLimit: return "resource_limit";
    case ErrorCode::kCancelled: return "cancelled";
    case ErrorCode::kOverloaded: return "overloaded";
    case ErrorCode::kShuttingDown: return "shutting_down";
    case ErrorCode::kInjectedFault: return "injected_fault";
    case ErrorCode::kInternal: return "internal";
    case ErrorCode::kAlreadyLoaded: return "already_loaded";
    case ErrorCode::kBadDelta: return "bad_delta";
  }
  return "unknown";
}

/// The incomplete-sweep outcomes as in-band error codes: the one-shot CLI
/// maps them all to exit 75; a daemon cannot exit per request, so the same
/// contract rides in "error.code" (with the partial result attached).
[[nodiscard]] constexpr ErrorCode outcome_error(RunOutcome outcome) {
  switch (outcome) {
    case RunOutcome::kComplete: return ErrorCode::kInternal;  // not an error
    case RunOutcome::kTruncated: return ErrorCode::kResourceLimit;
    case RunOutcome::kDeadlineExceeded: return ErrorCode::kDeadlineExpired;
    case RunOutcome::kCancelled: return ErrorCode::kCancelled;
  }
  return ErrorCode::kInternal;
}

/// One decoded request. Unknown members are ignored (additive schema);
/// which members are REQUIRED depends on the op and is enforced by the
/// server's handlers, not here.
struct Request {
  /// Correlation id, echoed verbatim into the response ("id": null when the
  /// request carried none).
  json::Value id;
  std::string op;
  /// Loaded-host name for find/extract/lint; "" = the sole loaded host.
  std::string host;
  /// Inline SPICE text of the pattern deck (find).
  std::string pattern;
  std::string pattern_top;
  /// Inline SPICE text of the library deck (extract).
  std::string library;
  /// Inline SPICE text of a netlist (lint, load).
  std::string netlist;
  /// File path of a netlist (load).
  std::string path;
  /// Host name to register (load).
  std::string name;
  /// Top module for flatten (lint, load).
  std::string top;
  /// Inline ECO delta text, JSON-lines (patch) — see session/delta.hpp.
  std::string delta;
  /// Per-request wall-clock budget; < 0 = use the server default.
  double timeout_ms = -1;
  /// find: stop after this many instances; 0 = unlimited.
  std::uint64_t max_matches = 0;
  /// find: enumerate every instance (all Phase II guess branches per
  /// candidate) instead of one per key image — MatchOptions::exhaustive.
  bool exhaustive = false;
};

/// Decode one request line. On failure returns nullopt with *code (always
/// kParseError or kBadRequest here) and *message filled. Contains the
/// "parse.request" fault trigger point.
[[nodiscard]] std::optional<Request> parse_request(std::string_view line,
                                                   ErrorCode* code,
                                                   std::string* message);

/// A success response frame: {"schema_version", "id", "op", "ok": true,
/// "result"} serialized compact, no trailing newline.
[[nodiscard]] std::string ok_response(const Request& request,
                                      json::Value result);

/// A failure response frame ("ok": false, "error": {"code", "message"}).
/// `id` may be null (unparseable request). A non-null `partial` is attached
/// as "result" — incomplete sweeps still report what they verified.
[[nodiscard]] std::string error_response(const json::Value& id,
                                         std::string_view op, ErrorCode code,
                                         std::string_view message,
                                         std::optional<json::Value> partial =
                                             std::nullopt);

// ---------------------------------------------------------------------------
// Shared document builders: the single source of truth for the members both
// the one-shot CLI and the serve handlers emit.

/// {"name", "devices", "nets"} — how a loaded netlist appears in documents.
[[nodiscard]] json::Value netlist_summary(const Netlist& netlist);

/// The "instances" array of a find document: per instance a {"ports": {
/// pattern port -> host net}, "devices": [host device names]} object.
[[nodiscard]] json::Value instances_json(const Netlist& pattern,
                                         const Netlist& host,
                                         const MatchReport& report);

/// Default top-module choice for a SPICE design: module 0 (the implicit
/// "main"), or the first explicit .SUBCKT when main is empty. `requested`
/// non-empty short-circuits.
[[nodiscard]] std::string default_top(const Design& design,
                                      const std::string& requested);

}  // namespace subg::serve
