// The subgemini match server: load hosts once, answer many requests.
//
// A library sweep or an interactive front end pays the host-side setup
// (parse, CircuitGraph, CsrCore flatten, Phase I label rounds) once per
// host, not once per query: the daemon keeps each loaded host's graph,
// flattened core, and HostLabelCache warm, and every `find` against it
// reuses them through the same MatchOptions::host_core / host_cache hooks
// the extract sweep uses.
//
// Robustness model (the reason this is a subsystem and not a loop):
//
//  * Isolation domains. Each request is parsed, validated, and executed
//    inside one try/catch at the worker boundary. A malformed line, a sick
//    inline netlist, an internal SUBG_CHECK failure, or an injected fault
//    produces one structured error response (protocol.hpp) — the daemon
//    keeps serving. Only the transport failing (stdin EOF, socket gone)
//    ends the loop.
//  * Admission control. The reader thread enqueues at most max_pending
//    requests; beyond that it answers `overloaded` immediately (load
//    shedding, counted in serve.shed) instead of buffering without bound.
//    Lines longer than max_request_bytes are consumed to their newline and
//    answered `oversized` — framing survives hostile input.
//  * Budgets. Every request runs under a Budget: its own timeout_ms, else
//    the server default. The one-shot CLI's exit-75 contract maps in-band:
//    an expired request answers ok=false / error.code=deadline_expired and
//    carries the partial (verified-only) result.
//  * Graceful drain. SIGTERM/SIGINT (install_signal_handlers) or a
//    `shutdown` request stops intake; in-flight requests finish (or
//    expire), queued-but-unstarted ones answer `shutting_down`, then the
//    process exits 0.
//
// Concurrency: one reader thread (the run() caller), `workers` request
// workers, responses serialized by a write mutex (the "id" echo lets
// clients correlate out-of-order answers). Heavy match work runs on the
// shared ThreadPool (jobs lanes), so concurrent finds cooperate instead of
// oversubscribing.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <thread>
#include <vector>

#include "netlist/netlist.hpp"
#include "serve/protocol.hpp"
#include "session/session.hpp"
#include "util/core_mode.hpp"
#include "util/thread_pool.hpp"

namespace subg::obs {
class Metrics;
}  // namespace subg::obs

namespace subg::serve {

struct ServeOptions {
  struct HostSpec {
    std::string name;  ///< registry key (defaults to the path's stem)
    std::string path;  ///< SPICE / Verilog / .bench file
    std::string top;   ///< top module ("" = format default)
  };
  /// Hosts loaded before serving begins. May be empty: a client can `load`.
  std::vector<HostSpec> hosts;
  /// Request workers (concurrent in-flight requests).
  std::size_t workers = 1;
  /// Admission-control bound on queued (accepted, unstarted) requests.
  std::size_t max_pending = 64;
  /// Longest accepted request line; longer answers `oversized`.
  std::size_t max_request_bytes = 1 << 20;
  /// Server-default per-request budget, seconds; 0 = unlimited.
  double request_timeout = 0;
  /// ThreadPool lanes for match work (shared by all workers); 0 = hardware.
  std::size_t jobs = 1;
  CoreMode core = CoreMode::kCsr;
  /// Phase I host sharding for every session the server builds (the
  /// --shard flag; see SessionOptions::shard_target_devices). 0 = off.
  std::size_t shard_target_devices = 0;
  /// Recovering parse mode for host loads (parse diagnostics to stderr).
  bool lenient = false;
  obs::Metrics* metrics = nullptr;
  /// Transport: the fd pair (stdin/stdout by default), or — when
  /// socket_path is non-empty — an AF_UNIX listening socket at that path
  /// (connections served one at a time, each a JSON-lines stream).
  int in_fd = 0;
  int out_fd = 1;
  std::string socket_path;
};

class Server {
 public:
  explicit Server(ServeOptions options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Load the configured hosts and serve until EOF / shutdown / SIGTERM.
  /// Returns the process exit code: 0 clean (including drains), 65 when a
  /// configured host failed to load, 70 on a transport-level failure.
  int run();

  /// Begin a graceful drain (async-signal-safe: two atomic stores).
  void request_shutdown() {
    draining_.store(true, std::memory_order_relaxed);
    stop_.store(true, std::memory_order_release);
  }

  /// Route SIGTERM/SIGINT to request_shutdown() of this server. At most
  /// one server per process may install; the registration is cleared by
  /// the destructor.
  void install_signal_handlers();

 private:
  /// Everything kept warm for one loaded host: a HostSession (netlist +
  /// graph + csr core + label cache, session/session.hpp). Reads (find,
  /// extract, lint, status) take the session lock shared; `patch` takes it
  /// exclusive while it rebases the session in place. Concurrent requests
  /// share a context through shared_ptr, so a context is never destroyed
  /// under an in-flight request.
  struct HostContext {
    std::string name;
    HostSession session;
    /// Reader/writer lock over `session`: patch mutates, everything else
    /// reads (the label cache inside has its own finer-grained mutex).
    std::shared_mutex session_mutex;

    HostContext(std::string host_name, Netlist host_netlist, CoreMode mode,
                std::size_t shard_target_devices);
    HostContext(const HostContext&) = delete;
    HostContext& operator=(const HostContext&) = delete;
  };

  struct Pending {
    std::string line;
    int out_fd = 1;
  };

  /// Serve one JSON-lines stream (reader side). Returns false only on an
  /// unrecoverable read error.
  bool serve_stream(int in_fd, int out_fd);
  int serve_socket();
  void worker_loop();
  /// The per-request isolation domain: parse, dispatch, respond. Never
  /// throws.
  void process(const Pending& pending);
  [[nodiscard]] std::string dispatch(const Request& request);

  /// Frame builders that also keep the lifetime tallies / metrics: every
  /// handler funnels its answer through one of these.
  [[nodiscard]] std::string succeed(const Request& request,
                                    json::Value result);
  [[nodiscard]] std::string fail(const json::Value& id, std::string_view op,
                                 ErrorCode code, std::string_view message,
                                 std::optional<json::Value> partial =
                                     std::nullopt);

  [[nodiscard]] std::string handle_find(const Request& request);
  [[nodiscard]] std::string handle_analyze(const Request& request);
  [[nodiscard]] std::string handle_extract(const Request& request);
  [[nodiscard]] std::string handle_lint(const Request& request);
  [[nodiscard]] std::string handle_status(const Request& request);
  [[nodiscard]] std::string handle_load(const Request& request);
  [[nodiscard]] std::string handle_patch(const Request& request);
  [[nodiscard]] std::string handle_shutdown(const Request& request);

  /// Resolve the request's host ("" = the sole loaded host). Null with
  /// *code/*message set on failure.
  [[nodiscard]] std::shared_ptr<HostContext> resolve_host(
      const Request& request, ErrorCode* code, std::string* message);
  /// Parse + flatten + wrap a netlist file / inline text into a context.
  [[nodiscard]] std::shared_ptr<HostContext> load_host_file(
      const std::string& name, const std::string& path,
      const std::string& top);
  [[nodiscard]] Budget request_budget(const Request& request) const;
  void respond(int out_fd, std::string_view frame);

  ServeOptions options_;
  ThreadPool pool_;

  std::mutex hosts_mutex_;
  std::map<std::string, std::shared_ptr<HostContext>> hosts_;

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Pending> queue_;
  /// True once no further requests will be enqueued (EOF or drain).
  bool intake_done_ = false;
  /// Requests popped but not yet answered; guarded by queue_mutex_ (the
  /// socket loop waits on it before recycling a connection fd).
  std::size_t in_flight_ = 0;
  std::vector<std::thread> workers_;

  std::mutex write_mutex_;

  /// stop_: leave the read loop. draining_: additionally answer queued
  /// requests with `shutting_down` instead of executing them (EOF sets only
  /// stop_ — a client that closed stdin still gets every answer).
  std::atomic<bool> stop_{false};
  std::atomic<bool> draining_{false};

  /// Lifetime tallies, independent of the optional metrics sink (the
  /// `status` op reports them unconditionally).
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> oversized_{0};
};

}  // namespace subg::serve
