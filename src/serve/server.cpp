#include "serve/server.hpp"

#include <poll.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cstdio>
#include <cstring>
#include <utility>

#include "analyze/analyze.hpp"
#include "benchfmt/benchfmt.hpp"
#include "extract/extract.hpp"
#include "lint/lint.hpp"
#include "match/matcher.hpp"
#include "obs/metrics.hpp"
#include "report/document.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/line_io.hpp"
#include "util/strings.hpp"
#include "verilog/verilog.hpp"

namespace subg::serve {

namespace {

[[nodiscard]] bool is_verilog(const std::string& path) {
  return ends_with_icase(path, ".v") || ends_with_icase(path, ".sv") ||
         ends_with_icase(path, ".vh");
}

[[nodiscard]] bool is_bench(const std::string& path) {
  return ends_with_icase(path, ".bench");
}

/// Signal routing: the handler may only touch lock-free atomics, so it
/// loads the registered server pointer and flips its stop flags.
std::atomic<Server*> g_signal_target{nullptr};

extern "C" void serve_signal_handler(int) {
  Server* server = g_signal_target.load(std::memory_order_acquire);
  if (server != nullptr) server->request_shutdown();
}

}  // namespace

Server::HostContext::HostContext(std::string host_name, Netlist host_netlist,
                                 CoreMode mode,
                                 std::size_t shard_target_devices)
    : name(std::move(host_name)),
      // An overflowing host falls back to the legacy core instead of
      // refusing every request (the session builds with core() == nullptr
      // and a structured core_status()): the daemon serves what it can.
      session(HostSession::build(
          std::move(host_netlist),
          SessionOptions{.core = mode,
                         .shard_target_devices = shard_target_devices})) {}

Server::Server(ServeOptions options)
    : options_(std::move(options)), pool_(options_.jobs) {
  if (options_.workers == 0) options_.workers = 1;
  if (options_.max_pending == 0) options_.max_pending = 1;
}

Server::~Server() {
  Server* self = this;
  g_signal_target.compare_exchange_strong(self, nullptr,
                                          std::memory_order_acq_rel);
}

void Server::install_signal_handlers() {
  Server* expected = nullptr;
  SUBG_CHECK_MSG(g_signal_target.compare_exchange_strong(
                     expected, this, std::memory_order_acq_rel),
                 "serve: signal handlers already routed to another server");
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = serve_signal_handler;
  sigaction(SIGTERM, &action, nullptr);
  sigaction(SIGINT, &action, nullptr);
}

std::shared_ptr<Server::HostContext> Server::load_host_file(
    const std::string& name, const std::string& path, const std::string& top) {
  DiagnosticSink sink;
  DiagnosticSink* diags = options_.lenient ? &sink : nullptr;
  Netlist netlist = [&] {
    if (is_bench(path)) {
      benchfmt::ReadOptions opts;
      opts.diagnostics = diags;
      return std::move(benchfmt::read_file(path, opts).transistors);
    }
    if (is_verilog(path)) {
      verilog::ReadOptions opts;
      opts.diagnostics = diags;
      Design design = verilog::read_file(path, opts);
      std::string chosen = top;
      if (chosen.empty() && design.module_count() > 0) {
        chosen = design
                     .module(ModuleId(static_cast<std::uint32_t>(
                         design.module_count() - 1)))
                     .name();
      }
      return design.flatten(chosen);
    }
    spice::ReadOptions opts;
    opts.diagnostics = diags;
    Design design = spice::read_file(path, opts);
    return design.flatten(default_top(design, top));
  }();
  const std::string text = sink.summary();
  if (!text.empty()) std::fwrite(text.data(), 1, text.size(), stderr);
  return std::make_shared<HostContext>(name, std::move(netlist),
                                       options_.core,
                                       options_.shard_target_devices);
}

int Server::run() {
  // Responses to a vanished peer must come back as a write error, not a
  // process-killing SIGPIPE.
  signal(SIGPIPE, SIG_IGN);

  for (const ServeOptions::HostSpec& spec : options_.hosts) {
    try {
      std::shared_ptr<HostContext> context =
          load_host_file(spec.name, spec.path, spec.top);
      std::lock_guard<std::mutex> lock(hosts_mutex_);
      hosts_[spec.name] = std::move(context);
    } catch (const Error& e) {
      std::fprintf(stderr, "subgemini serve: %s: %s\n", spec.path.c_str(),
                   e.what());
      return 65;
    }
  }

  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i) {
    workers_.emplace_back(&Server::worker_loop, this);
  }

  int code = 0;
  if (!options_.socket_path.empty()) {
    code = serve_socket();
  } else if (!serve_stream(options_.in_fd, options_.out_fd)) {
    code = 70;
  }

  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    intake_done_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
  return code;
}

bool Server::serve_stream(int in_fd, int out_fd) {
  LineReader reader(in_fd, options_.max_request_bytes);
  std::string line;
  while (!stop_.load(std::memory_order_acquire)) {
    const LineReader::Status status = reader.read_line(&line, &stop_, 50);
    if (status == LineReader::Status::kInterrupted) break;
    if (status == LineReader::Status::kEof) return true;
    if (status == LineReader::Status::kError) return false;
    if (status == LineReader::Status::kOversized) {
      oversized_.fetch_add(1, std::memory_order_relaxed);
      obs::count(options_.metrics, "serve.oversized");
      respond(out_fd,
              error_response(
                  json::Value(), "", ErrorCode::kOversized,
                  "request line of " +
                      std::to_string(reader.last_line_bytes()) +
                      " bytes exceeds max_request_bytes=" +
                      std::to_string(options_.max_request_bytes)));
      continue;
    }
    if (line.empty()) continue;  // blank lines are keepalives

    bool accepted = false;
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      if (queue_.size() < options_.max_pending) {
        queue_.push_back(Pending{std::move(line), out_fd});
        accepted = true;
      }
    }
    if (accepted) {
      queue_cv_.notify_one();
    } else {
      // Load shedding: a full queue answers immediately instead of
      // buffering without bound. Fast, id-less by design — parsing the
      // line to echo its id would defeat the fast-rejection point.
      shed_.fetch_add(1, std::memory_order_relaxed);
      obs::count(options_.metrics, "serve.shed");
      respond(out_fd, error_response(
                          json::Value(), "", ErrorCode::kOverloaded,
                          "request queue full (max_pending=" +
                              std::to_string(options_.max_pending) + ")"));
    }
    line.clear();
  }
  return true;
}

int Server::serve_socket() {
  const int listen_fd = socket(AF_UNIX, SOCK_STREAM, 0);
  if (listen_fd < 0) {
    std::perror("subgemini serve: socket");
    return 70;
  }
  sockaddr_un addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  if (options_.socket_path.size() >= sizeof(addr.sun_path)) {
    std::fprintf(stderr, "subgemini serve: socket path too long: %s\n",
                 options_.socket_path.c_str());
    close(listen_fd);
    return 70;
  }
  std::memcpy(addr.sun_path, options_.socket_path.c_str(),
              options_.socket_path.size() + 1);
  unlink(options_.socket_path.c_str());
  if (bind(listen_fd, reinterpret_cast<const sockaddr*>(&addr),
           sizeof(addr)) != 0 ||
      listen(listen_fd, 8) != 0) {
    std::perror("subgemini serve: bind/listen");
    close(listen_fd);
    return 70;
  }

  while (!stop_.load(std::memory_order_acquire)) {
    pollfd pfd{listen_fd, POLLIN, 0};
    const int ready = poll(&pfd, 1, 50);
    if (ready <= 0 || (pfd.revents & POLLIN) == 0) continue;
    const int conn = accept(listen_fd, nullptr, nullptr);
    if (conn < 0) continue;
    // Connections are served one at a time, each its own JSON-lines
    // stream; requests from one still execute on all workers.
    serve_stream(conn, conn);
    // The connection's fd number must not be recycled while queued
    // requests still reference it: wait until everything enqueued for it
    // has been answered before closing.
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] {
        for (const Pending& pending : queue_) {
          if (pending.out_fd == conn) return false;
        }
        return in_flight_ == 0;
      });
    }
    close(conn);
  }
  close(listen_fd);
  unlink(options_.socket_path.c_str());
  return 0;
}

void Server::worker_loop() {
  for (;;) {
    Pending pending;
    {
      std::unique_lock<std::mutex> lock(queue_mutex_);
      queue_cv_.wait(lock, [&] { return !queue_.empty() || intake_done_; });
      if (queue_.empty()) return;
      pending = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
    }
    process(pending);
    {
      std::lock_guard<std::mutex> lock(queue_mutex_);
      --in_flight_;
    }
    queue_cv_.notify_all();
  }
}

void Server::process(const Pending& pending) {
  // THE isolation domain: everything a request does — decode, parse inline
  // netlists, match — happens under this try. Any failure becomes one
  // structured error response; the daemon keeps serving.
  json::Value id;
  std::string op;
  std::string frame;
  try {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
    std::optional<Request> request = parse_request(pending.line, &code,
                                                   &message);
    if (!request.has_value()) {
      frame = fail(id, op, code, message);
    } else {
      id = request->id;
      op = request->op;
      if (draining_.load(std::memory_order_acquire) && op != "status" &&
          op != "shutdown") {
        // Queued behind a drain: answered, never executed.
        frame = fail(id, op, ErrorCode::kShuttingDown,
                     "server is draining; request not executed");
      } else {
        frame = dispatch(*request);
      }
    }
  } catch (const fault::InjectedFault& e) {
    frame = fail(id, op, ErrorCode::kInjectedFault, e.what());
  } catch (const std::exception& e) {
    frame = fail(id, op, ErrorCode::kInternal, e.what());
  } catch (...) {
    frame = fail(id, op, ErrorCode::kInternal, "unknown exception");
  }
  respond(pending.out_fd, frame);
}

std::string Server::dispatch(const Request& request) {
  SUBG_FAULT_POINT("serve.dispatch");
  obs::count(options_.metrics, "serve.requests");
  if (request.op == "find") return handle_find(request);
  if (request.op == "analyze") return handle_analyze(request);
  if (request.op == "extract") return handle_extract(request);
  if (request.op == "lint") return handle_lint(request);
  if (request.op == "status") return handle_status(request);
  if (request.op == "load") return handle_load(request);
  if (request.op == "patch") return handle_patch(request);
  if (request.op == "shutdown") return handle_shutdown(request);
  return fail(request.id, request.op, ErrorCode::kUnknownOp,
              "unknown op '" + request.op + "'");
}

std::string Server::succeed(const Request& request, json::Value result) {
  served_.fetch_add(1, std::memory_order_relaxed);
  obs::count(options_.metrics, "serve.ok");
  return ok_response(request, std::move(result));
}

std::string Server::fail(const json::Value& id, std::string_view op,
                         ErrorCode code, std::string_view message,
                         std::optional<json::Value> partial) {
  failed_.fetch_add(1, std::memory_order_relaxed);
  obs::count(options_.metrics, "serve.errors");
  return error_response(id, op, code, message, std::move(partial));
}

std::shared_ptr<Server::HostContext> Server::resolve_host(
    const Request& request, ErrorCode* code, std::string* message) {
  std::lock_guard<std::mutex> lock(hosts_mutex_);
  if (request.host.empty()) {
    if (hosts_.size() == 1) return hosts_.begin()->second;
    *code = ErrorCode::kBadRequest;
    *message = hosts_.empty()
                   ? "no host loaded (use the load op first)"
                   : "several hosts are loaded; name one in 'host'";
    return nullptr;
  }
  auto it = hosts_.find(request.host);
  if (it == hosts_.end()) {
    *code = ErrorCode::kUnknownHost;
    *message = "no loaded host named '" + request.host + "'";
    return nullptr;
  }
  return it->second;
}

Budget Server::request_budget(const Request& request) const {
  // timeout_ms > 0: that deadline. timeout_ms == 0: explicitly unlimited
  // (overrides the server default). Absent (< 0): the server default.
  Budget budget;
  if (request.timeout_ms > 0) {
    budget.set_deadline_after(request.timeout_ms / 1000.0);
  } else if (request.timeout_ms < 0 && options_.request_timeout > 0) {
    budget.set_deadline_after(options_.request_timeout);
  }
  return budget;
}

std::string Server::handle_find(const Request& request) {
  if (request.pattern.empty()) {
    return fail(request.id, request.op, ErrorCode::kBadRequest,
                "find requires 'pattern' (inline SPICE text)");
  }
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  std::shared_ptr<HostContext> host = resolve_host(request, &code, &message);
  if (host == nullptr) return fail(request.id, request.op, code, message);

  std::optional<Netlist> pattern;
  try {
    Design design = spice::read_string(request.pattern);
    pattern.emplace(design.flatten(default_top(design, request.pattern_top)));
  } catch (const fault::InjectedFault&) {
    throw;  // label distinctly at the process() boundary, not parse_error
  } catch (const Error& e) {
    return fail(request.id, request.op, ErrorCode::kParseError,
                std::string("pattern: ") + e.what());
  }

  MatchOptions options;
  options.budget = request_budget(request);
  if (request.max_matches > 0) options.max_matches = request.max_matches;
  options.exhaustive = request.exhaustive;
  options.pool = &pool_;
  options.metrics = options_.metrics;
  options.core = options_.core;

  // Shared lock: many finds run concurrently against one session; a patch
  // waits for them (and vice versa) on the exclusive side.
  std::shared_lock<std::shared_mutex> session_lock(host->session_mutex);
  MatchReport report = find_in_session(*pattern, host->session, options);

  json::Value result = json::Value::object();
  result.set("pattern", netlist_summary(*pattern));
  result.set("host", netlist_summary(host->session.netlist()));
  result.set("instances",
             instances_json(*pattern, host->session.netlist(), report));
  result.set("report", report::to_json(report));
  if (!report.status.complete()) {
    // The one-shot exit-75 contract, in-band: partial results attach, the
    // error code says the sweep was incomplete.
    return fail(request.id, request.op, outcome_error(report.status.outcome),
                report.status.reason, std::move(result));
  }
  return succeed(request, std::move(result));
}

std::string Server::handle_analyze(const Request& request) {
  if (request.pattern.empty()) {
    return fail(request.id, request.op, ErrorCode::kBadRequest,
                "analyze requires 'pattern' (inline SPICE text)");
  }
  // Host resolution mirrors find, except static analysis is meaningful
  // without one: an omitted 'host' with nothing loaded still runs the
  // pattern-only layers (orbits, path labels). A named-but-unknown host is
  // an unknown_host frame, exactly like find.
  std::shared_ptr<HostContext> host;
  {
    bool want_host = !request.host.empty();
    if (!want_host) {
      std::lock_guard<std::mutex> lock(hosts_mutex_);
      want_host = !hosts_.empty();
    }
    if (want_host) {
      ErrorCode code = ErrorCode::kInternal;
      std::string message;
      host = resolve_host(request, &code, &message);
      if (host == nullptr) return fail(request.id, request.op, code, message);
    }
  }

  std::optional<Netlist> pattern;
  try {
    Design design = spice::read_string(request.pattern);
    pattern.emplace(design.flatten(default_top(design, request.pattern_top)));
  } catch (const fault::InjectedFault&) {
    throw;  // label distinctly at the process() boundary, not parse_error
  } catch (const Error& e) {
    return fail(request.id, request.op, ErrorCode::kParseError,
                std::string("pattern: ") + e.what());
  }

  json::Value result = json::Value::object();
  result.set("pattern", netlist_summary(*pattern));
  analyze::AnalysisReport report;
  if (host != nullptr) {
    std::shared_lock<std::shared_mutex> session_lock(host->session_mutex);
    report = analyze::analyze(*pattern, &host->session.netlist(), {});
    result.set("host", netlist_summary(host->session.netlist()));
  } else {
    report = analyze::analyze(*pattern, nullptr, {});
  }
  result.set("analysis", report::to_json(report));
  return succeed(request, std::move(result));
}

std::string Server::handle_extract(const Request& request) {
  if (request.library.empty()) {
    return fail(request.id, request.op, ErrorCode::kBadRequest,
                "extract requires 'library' (inline SPICE deck)");
  }
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  std::shared_ptr<HostContext> host = resolve_host(request, &code, &message);
  if (host == nullptr) return fail(request.id, request.op, code, message);

  std::vector<extract::LibraryCell> cells;
  try {
    Design library = spice::read_string(request.library);
    for (std::uint32_t m = 0; m < library.module_count(); ++m) {
      const Module& module = library.module(ModuleId(m));
      if (module.ports().empty() ||
          (module.device_count() == 0 && module.instance_count() == 0)) {
        continue;  // the implicit 'main', or an empty stub
      }
      cells.push_back(
          extract::LibraryCell{module.name(), library.flatten(module.name())});
    }
  } catch (const fault::InjectedFault&) {
    throw;  // label distinctly at the process() boundary, not parse_error
  } catch (const Error& e) {
    return fail(request.id, request.op, ErrorCode::kParseError,
                std::string("library: ") + e.what());
  }
  if (cells.empty()) {
    return fail(request.id, request.op, ErrorCode::kBadRequest,
                "library deck has no usable .SUBCKT");
  }

  extract::ExtractOptions options;
  options.match.budget = request_budget(request);
  options.match.pool = &pool_;
  options.match.metrics = options_.metrics;
  options.match.core = options_.core;
  std::shared_lock<std::shared_mutex> session_lock(host->session_mutex);
  extract::ExtractResult extracted =
      extract::extract_gates(host->session, cells, options);

  json::Value result = json::Value::object();
  result.set("host", netlist_summary(host->session.netlist()));
  result.set("library_cells", cells.size());
  result.set("report", report::to_json(extracted.report));
  json::Value netlist_member = json::Value::object();
  netlist_member.set("format", "spice");
  netlist_member.set("text", spice::write_string(extracted.netlist));
  result.set("netlist", std::move(netlist_member));
  if (!extracted.report.status.complete()) {
    return fail(request.id, request.op,
                outcome_error(extracted.report.status.outcome),
                extracted.report.status.reason, std::move(result));
  }
  return succeed(request, std::move(result));
}

std::string Server::handle_lint(const Request& request) {
  lint::LintOptions options;
  options.metrics = options_.metrics;
  lint::LintReport report;
  std::optional<json::Value> host_summary;

  if (!request.netlist.empty()) {
    // Inline deck: recovering parse (card failures become findings), the
    // same lint_deck pipeline the CLI runs — both surfaces agree.
    DiagnosticSink sink;
    spice::ReadOptions read_options;
    read_options.diagnostics = &sink;
    Design design = spice::read_string(request.netlist, read_options);
    report.merge(lint::import_diagnostics(sink, options));
    lint::DeckLint deck = lint::lint_deck(design, request.top, options);
    report.merge(std::move(deck.report));
    if (deck.netlist.has_value()) {
      host_summary = netlist_summary(*deck.netlist);
    }
  } else {
    ErrorCode code = ErrorCode::kInternal;
    std::string message;
    std::shared_ptr<HostContext> host =
        resolve_host(request, &code, &message);
    if (host == nullptr) return fail(request.id, request.op, code, message);
    std::shared_lock<std::shared_mutex> session_lock(host->session_mutex);
    report = lint::lint_netlist(host->session.netlist(), options);
    host_summary = netlist_summary(host->session.netlist());
  }

  json::Value result = json::Value::object();
  if (host_summary.has_value()) result.set("host", std::move(*host_summary));
  result.set("lint", report::to_json(report));
  return succeed(request, std::move(result));
}

std::string Server::handle_status(const Request& request) {
  json::Value result = json::Value::object();
  json::Value hosts = json::Value::array();
  {
    std::lock_guard<std::mutex> lock(hosts_mutex_);
    for (const auto& [name, context] : hosts_) {
      std::shared_lock<std::shared_mutex> session_lock(context->session_mutex);
      const HostSession& session = context->session;
      json::Value one = json::Value::object();
      one.set("host", name);
      one.set("summary", netlist_summary(session.netlist()));
      one.set("csr_core", session.core() != nullptr);
      // Shard-plan summary, mirroring the --shard flag: absent fields mean
      // the session matches monolithically.
      json::Value shards = json::Value::object();
      shards.set("enabled", session.shards() != nullptr);
      if (const ShardPlan* plan = session.shards()) {
        shards.set("total", plan->shards().size());
        shards.set("anchors", plan->anchor_nets().size());
        shards.set("max_devices", plan->max_shard_devices());
        shards.set("bytes", plan->bytes());
      }
      one.set("shards", std::move(shards));
      json::Value eco = json::Value::object();
      eco.set("patch_count", session.patch_count());
      eco.set("spill_bytes", session.spill_bytes());
      eco.set("last_compaction", session.last_compaction());
      one.set("eco", std::move(eco));
      hosts.push(std::move(one));
    }
  }
  result.set("hosts", std::move(hosts));
  result.set("workers", options_.workers);
  json::Value queue = json::Value::object();
  {
    std::lock_guard<std::mutex> lock(queue_mutex_);
    queue.set("pending", queue_.size());
    queue.set("in_flight", in_flight_);
  }
  queue.set("max_pending", options_.max_pending);
  queue.set("max_request_bytes", options_.max_request_bytes);
  result.set("queue", std::move(queue));
  json::Value counters = json::Value::object();
  counters.set("served", served_.load(std::memory_order_relaxed));
  counters.set("failed", failed_.load(std::memory_order_relaxed));
  counters.set("shed", shed_.load(std::memory_order_relaxed));
  counters.set("oversized", oversized_.load(std::memory_order_relaxed));
  result.set("counters", std::move(counters));
  json::Value faults = json::Value::object();
  faults.set("enabled", fault::kFaultsEnabled);
  faults.set("armed", fault::armed_site());
  json::Value sites = json::Value::array();
  for (const std::string& site : fault::sites()) sites.push(site);
  faults.set("sites", std::move(sites));
  result.set("faults", std::move(faults));
  result.set("draining", draining_.load(std::memory_order_relaxed));
  return succeed(request, std::move(result));
}

std::string Server::handle_load(const Request& request) {
  if (request.name.empty()) {
    return fail(request.id, request.op, ErrorCode::kBadRequest,
                "load requires 'name' (the registry key)");
  }
  if (request.netlist.empty() == request.path.empty()) {
    return fail(request.id, request.op, ErrorCode::kBadRequest,
                "load requires exactly one of 'netlist' (inline SPICE) or "
                "'path' (a file)");
  }
  std::shared_ptr<HostContext> context;
  try {
    if (!request.netlist.empty()) {
      Design design = spice::read_string(request.netlist);
      context = std::make_shared<HostContext>(
          request.name, design.flatten(default_top(design, request.top)),
          options_.core, options_.shard_target_devices);
    } else {
      context = load_host_file(request.name, request.path, request.top);
    }
  } catch (const fault::InjectedFault&) {
    throw;  // label distinctly at the process() boundary, not parse_error
  } catch (const Error& e) {
    return fail(request.id, request.op, ErrorCode::kParseError, e.what());
  }
  {
    // A name is registered once: silently replacing a host under clients
    // that patched it loses their edits, so a duplicate name is a
    // structured refusal (evolve a loaded host with `patch` instead).
    std::lock_guard<std::mutex> lock(hosts_mutex_);
    if (hosts_.contains(request.name)) {
      return fail(request.id, request.op, ErrorCode::kAlreadyLoaded,
                  "a host named '" + request.name +
                      "' is already loaded (use patch to edit it)");
    }
    hosts_[request.name] = context;
  }
  json::Value result = json::Value::object();
  result.set("host", request.name);
  result.set("summary", netlist_summary(context->session.netlist()));
  result.set("csr_core", context->session.core() != nullptr);
  return succeed(request, std::move(result));
}

std::string Server::handle_patch(const Request& request) {
  if (request.delta.empty()) {
    return fail(request.id, request.op, ErrorCode::kBadRequest,
                "patch requires 'delta' (inline JSON-lines edit script)");
  }
  ErrorCode code = ErrorCode::kInternal;
  std::string message;
  std::shared_ptr<HostContext> host = resolve_host(request, &code, &message);
  if (host == nullptr) return fail(request.id, request.op, code, message);

  ApplyStats stats;
  try {
    NetlistDelta delta = parse_delta(request.delta);
    // Exclusive lock: the rebase swaps the session's graph/core/cache, so
    // no find/extract/lint may be walking them. apply() itself is
    // atomic — a throw below leaves the session byte-identical to before.
    std::unique_lock<std::shared_mutex> session_lock(host->session_mutex);
    stats = host->session.apply(delta);
  } catch (const fault::InjectedFault&) {
    throw;  // label distinctly at the process() boundary, not bad_delta
  } catch (const Error& e) {
    return fail(request.id, request.op, ErrorCode::kBadDelta, e.what());
  }
  record_eco_stats(options_.metrics, stats);

  std::shared_lock<std::shared_mutex> session_lock(host->session_mutex);
  json::Value result = json::Value::object();
  result.set("host", host->name);
  result.set("summary", netlist_summary(host->session.netlist()));
  json::Value eco = json::Value::object();
  eco.set("patched_devices", stats.patched_devices);
  eco.set("patched_nets", stats.patched_nets);
  eco.set("renames", stats.renames);
  eco.set("invalidated_labels", stats.invalidated_labels);
  eco.set("compactions", stats.compactions);
  result.set("eco", std::move(eco));
  result.set("patch_count", host->session.patch_count());
  return succeed(request, std::move(result));
}

std::string Server::handle_shutdown(const Request& request) {
  request_shutdown();
  queue_cv_.notify_all();
  json::Value result = json::Value::object();
  result.set("draining", true);
  return succeed(request, std::move(result));
}

void Server::respond(int out_fd, std::string_view frame) {
  std::lock_guard<std::mutex> lock(write_mutex_);
  // A vanished peer is not the server's failure: the write error is
  // swallowed and the next request (possibly from a new connection) is
  // served normally.
  (void)write_line(out_fd, frame);
}

}  // namespace subg::serve
