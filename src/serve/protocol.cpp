#include "serve/protocol.hpp"

#include <utility>

#include "match/matcher.hpp"
#include "report/document.hpp"
#include "util/fault.hpp"
#include "util/json_parse.hpp"

namespace subg::serve {

namespace {

/// Read an optional string member; false (with *message set) when present
/// but not a string — a request with {"host": 7} must be rejected, not
/// silently matched against no host.
bool read_string(const json::Value& object, std::string_view key,
                 std::string* out, std::string* message) {
  const json::Value* member = object.find(key);
  if (member == nullptr) return true;
  if (member->kind() != json::Value::Kind::kString) {
    *message = std::string("member '") + std::string(key) + "' must be a string";
    return false;
  }
  *out = member->as_string();
  return true;
}

/// Read an optional boolean member; same rejection contract as read_string.
bool read_bool(const json::Value& object, std::string_view key, bool* out,
               std::string* message) {
  const json::Value* member = object.find(key);
  if (member == nullptr) return true;
  if (member->kind() != json::Value::Kind::kBool) {
    *message =
        std::string("member '") + std::string(key) + "' must be a boolean";
    return false;
  }
  *out = member->as_bool();
  return true;
}

bool read_number(const json::Value& object, std::string_view key, double* out,
                 std::string* message) {
  const json::Value* member = object.find(key);
  if (member == nullptr) return true;
  switch (member->kind()) {
    case json::Value::Kind::kInt:
    case json::Value::Kind::kUint:
    case json::Value::Kind::kDouble: *out = member->as_double(); return true;
    default:
      *message =
          std::string("member '") + std::string(key) + "' must be a number";
      return false;
  }
}

}  // namespace

std::optional<Request> parse_request(std::string_view line, ErrorCode* code,
                                     std::string* message) {
  SUBG_FAULT_POINT("parse.request");
  json::ParseResult parsed = json::parse(line);
  if (!parsed.ok()) {
    *code = ErrorCode::kParseError;
    *message = "request line is not valid JSON: " + parsed.error +
               " (at byte " + std::to_string(parsed.offset) + ")";
    return std::nullopt;
  }
  if (!parsed.value.is_object()) {
    *code = ErrorCode::kBadRequest;
    *message = "request must be a JSON object";
    return std::nullopt;
  }
  const json::Value& object = parsed.value;

  Request request;
  if (const json::Value* id = object.find("id"); id != nullptr) {
    request.id = *id;
  }
  *code = ErrorCode::kBadRequest;
  if (!read_string(object, "op", &request.op, message)) return std::nullopt;
  if (request.op.empty()) {
    *message = "request is missing the required 'op' member";
    return std::nullopt;
  }
  if (!read_string(object, "host", &request.host, message) ||
      !read_string(object, "pattern", &request.pattern, message) ||
      !read_string(object, "pattern_top", &request.pattern_top, message) ||
      !read_string(object, "library", &request.library, message) ||
      !read_string(object, "netlist", &request.netlist, message) ||
      !read_string(object, "path", &request.path, message) ||
      !read_string(object, "name", &request.name, message) ||
      !read_string(object, "top", &request.top, message) ||
      !read_string(object, "delta", &request.delta, message)) {
    return std::nullopt;
  }
  double timeout_ms = -1;
  if (!read_number(object, "timeout_ms", &timeout_ms, message)) {
    return std::nullopt;
  }
  if (object.find("timeout_ms") != nullptr && timeout_ms < 0) {
    *message = "member 'timeout_ms' must be >= 0";
    return std::nullopt;
  }
  request.timeout_ms = timeout_ms;
  double max_matches = 0;
  if (!read_number(object, "max_matches", &max_matches, message)) {
    return std::nullopt;
  }
  if (max_matches < 0) {
    *message = "member 'max_matches' must be >= 0";
    return std::nullopt;
  }
  request.max_matches = static_cast<std::uint64_t>(max_matches);
  if (!read_bool(object, "exhaustive", &request.exhaustive, message)) {
    return std::nullopt;
  }
  return request;
}

namespace {

/// The response frame members every answer starts with. Keeping
/// "schema_version" first matches report::Document's layout.
json::Value response_head(const json::Value& id, std::string_view op,
                          bool ok) {
  json::Value head = json::Value::object();
  head.set("schema_version", report::kSchemaVersion);
  head.set("id", id);
  head.set("op", std::string(op));
  head.set("ok", ok);
  return head;
}

}  // namespace

std::string ok_response(const Request& request, json::Value result) {
  json::Value response = response_head(request.id, request.op, true);
  response.set("result", std::move(result));
  return response.dump(0);
}

std::string error_response(const json::Value& id, std::string_view op,
                           ErrorCode code, std::string_view message,
                           std::optional<json::Value> partial) {
  json::Value response = response_head(id, op, false);
  json::Value error = json::Value::object();
  error.set("code", to_string(code));
  error.set("message", std::string(message));
  response.set("error", std::move(error));
  if (partial.has_value()) response.set("result", std::move(*partial));
  return response.dump(0);
}

json::Value netlist_summary(const Netlist& netlist) {
  json::Value v = json::Value::object();
  v.set("name", netlist.name());
  v.set("devices", netlist.device_count());
  v.set("nets", static_cast<std::size_t>(netlist.net_count()));
  return v;
}

json::Value instances_json(const Netlist& pattern, const Netlist& host,
                           const MatchReport& report) {
  json::Value instances = json::Value::array();
  for (const SubcircuitInstance& inst : report.instances) {
    json::Value one = json::Value::object();
    json::Value ports = json::Value::object();
    for (NetId port : pattern.ports()) {
      ports.set(pattern.net_name(port),
                host.net_name(inst.net_image[port.index()]));
    }
    json::Value devices = json::Value::array();
    for (DeviceId d : inst.device_image) {
      devices.push(host.device_name(d));
    }
    one.set("ports", std::move(ports));
    one.set("devices", std::move(devices));
    instances.push(std::move(one));
  }
  return instances;
}

std::string default_top(const Design& design, const std::string& requested) {
  if (!requested.empty()) return requested;
  if (design.module_count() > 1 &&
      design.module(ModuleId(0)).device_count() == 0 &&
      design.module(ModuleId(0)).instance_count() == 0) {
    return design.module(ModuleId(1)).name();
  }
  return design.module(ModuleId(0)).name();
}

}  // namespace subg::serve
