#include "graph/csr_core.hpp"

#include <algorithm>
#include <limits>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace subg {

std::size_t CsrCore::edge_count(const CircuitGraph& graph) {
  const std::size_t nv = graph.vertex_count();
  std::size_t total_edges = 0;
  for (Vertex v = 0; v < nv; ++v) total_edges += graph.degree(v);
  return total_edges;
}

RunStatus CsrCore::capacity_status(const CircuitGraph& graph) {
  return capacity_status(graph, kMaxEdges);
}

RunStatus CsrCore::capacity_status(const CircuitGraph& graph,
                                   std::size_t max_edges) {
  RunStatus status;
  const std::size_t total_edges = edge_count(graph);
  if (total_edges > max_edges || !offsets_fit(total_edges)) {
    status.escalate(RunOutcome::kTruncated,
                    "csr core: host graph has " + std::to_string(total_edges) +
                        " edges, exceeding the configured csr edge-offset limit of " +
                        std::to_string(std::min(max_edges, kMaxEdges)) +
                        "; rerun with --core=legacy");
  }
  return status;
}

CsrCore::CsrCore(const CircuitGraph& graph) : graph_(&graph) {
  rebuild(graph);
}

void CsrCore::rebuild(const CircuitGraph& graph) {
  graph_ = &graph;
  Timer timer;
  const std::size_t nv = graph.vertex_count();
  edge_begin_.resize(nv + 1);
  initial_label_.resize(nv);
  host_base_label_.resize(nv);
  special_.resize(nv);

  const std::size_t total_edges = edge_count(graph);
  SUBG_CHECK_MSG(offsets_fit(total_edges),
                 "graph too large for the configured CSR edge-offset width");
  edge_to_.resize(total_edges);
  edge_coeff_.resize(total_edges);

  const Netlist& nl = graph.netlist();
  Offset e = 0;
  for (Vertex v = 0; v < nv; ++v) {
    edge_begin_[v] = e;
    for (const CircuitGraph::Edge& edge : graph.edges(v)) {
      edge_to_[e] = edge.to;
      edge_coeff_[e] = edge.coefficient;
      ++e;
    }
    initial_label_[v] = graph.initial_label(v);
    host_base_label_[v] = graph.is_device(v)
                              ? graph.initial_label(v)
                              : degree_label(nl.net_degree(graph.net_of(v)));
    special_[v] = graph.is_special(v) ? 1 : 0;
  }
  edge_begin_[nv] = e;

  // assign, not resize: the loop below only writes device-vertex ranges, so
  // a shrinking rebuild must zero-fill the net-vertex slots a previous,
  // larger build left behind (structural equality with a cold core depends
  // on it). Capacity is retained either way — that is the spill.
  neighbor_degree_.assign(total_edges, 0);
  for (Vertex v = 0; v < nv; ++v) {
    if (!graph.is_device(v)) continue;
    const Offset begin = edge_begin_[v];
    const Offset end = edge_begin_[v + 1];
    for (Offset k = begin; k < end; ++k) {
      neighbor_degree_[k] =
          static_cast<std::uint32_t>(graph.degree(edge_to_[k]));
    }
    std::sort(neighbor_degree_.begin() + static_cast<std::ptrdiff_t>(begin),
              neighbor_degree_.begin() + static_cast<std::ptrdiff_t>(end));
  }
  build_seconds_ = timer.seconds();
}

std::size_t CsrCore::bytes() const {
  return edge_begin_.capacity() * sizeof(Offset) +
         edge_to_.capacity() * sizeof(Vertex) +
         edge_coeff_.capacity() * sizeof(Label) +
         initial_label_.capacity() * sizeof(Label) +
         host_base_label_.capacity() * sizeof(Label) +
         special_.capacity() * sizeof(std::uint8_t) +
         neighbor_degree_.capacity() * sizeof(std::uint32_t);
}

std::size_t CsrCore::used_bytes() const {
  return edge_begin_.size() * sizeof(Offset) +
         edge_to_.size() * sizeof(Vertex) +
         edge_coeff_.size() * sizeof(Label) +
         initial_label_.size() * sizeof(Label) +
         host_base_label_.size() * sizeof(Label) +
         special_.size() * sizeof(std::uint8_t) +
         neighbor_degree_.size() * sizeof(std::uint32_t);
}

void CsrCore::shrink() {
  edge_begin_.shrink_to_fit();
  edge_to_.shrink_to_fit();
  edge_coeff_.shrink_to_fit();
  initial_label_.shrink_to_fit();
  host_base_label_.shrink_to_fit();
  special_.shrink_to_fit();
  neighbor_degree_.shrink_to_fit();
}

bool CsrCore::structurally_equal(const CsrCore& other) const {
  return edge_begin_ == other.edge_begin_ && edge_to_ == other.edge_to_ &&
         edge_coeff_ == other.edge_coeff_ &&
         initial_label_ == other.initial_label_ &&
         host_base_label_ == other.host_base_label_ &&
         special_ == other.special_ &&
         neighbor_degree_ == other.neighbor_degree_;
}

}  // namespace subg
