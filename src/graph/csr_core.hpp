// Flattened structure-of-arrays matching core (the `--core=csr` layout).
//
// CircuitGraph already stores CSR adjacency, but as an array-of-structs
// (Edge{to, coefficient}) over the pointer-rich Netlist. The hot Phase I/II
// loops touch the two edge fields in different places — corruption checks
// and frontier expansion only need `to`; the relabel sum needs both — so
// the AoS layout drags the unused 8 bytes of every edge through the cache,
// and the host round-0 labels chase Netlist degree lookups per vertex.
//
// CsrCore is a one-shot flattening into parallel contiguous arrays:
//
//   edge_begin_[v..v+1]  edge range of vertex v (CsrOffset offsets —
//                        uint32 by default, uint64 under SUBG_CSR_OFFSET64)
//   edge_to_[e]          neighbor vertex (the expansion/corruption array)
//   edge_coeff_[e]       terminal-class coefficient (the relabel array)
//   initial_label_[v]    invariant label (flat copy)
//   host_base_label_[v]  round-0 host label: initial for devices, the
//                        degree label for nets (precomputed, so building
//                        round 0 never touches the Netlist)
//   special_[v]          rail tag as uint8 (vector<bool> proxies are not
//                        addressable and cost a shift+mask per probe)
//
// Edge order is EXACTLY CircuitGraph's edge order. The relabel arithmetic
// (util/hash.hpp) is commutative but the code must not rely on that: equal
// iteration order makes the csr and legacy cores bit-identical by
// construction, which is what the --core equivalence tests pin down.
//
// The core borrows the graph (and the graph borrows the netlist); both
// must outlive it. Build cost is one linear pass (build_seconds(), for the
// "csr.build_seconds" span) and the footprint is bytes() (for the
// "csr.bytes" gauge).
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <type_traits>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "util/budget.hpp"

namespace subg {

/// Offset-width policy, parameterized so both widths stay unit-testable
/// regardless of how the build was configured (DESIGN.md §11): a core with
/// OffsetT offsets holds at most max_edges edges and must refuse larger
/// graphs BEFORE construction.
template <typename OffsetT>
struct CsrOffsetLimits {
  static_assert(std::is_unsigned_v<OffsetT>);
  static constexpr std::uint64_t max_edges =
      std::numeric_limits<OffsetT>::max();
  [[nodiscard]] static constexpr bool fits(std::uint64_t edge_count) {
    return edge_count <= max_edges;
  }
};

/// Compile-time offset selection: the default core spends 4 bytes per
/// vertex slot and caps at ~4.29e9 edges; configuring -DSUBG_CSR_OFFSET64=ON
/// doubles the offset column for hosts past the uint32 boundary. bytes() /
/// used_bytes() account the width automatically via sizeof(Offset).
#if defined(SUBG_CSR_OFFSET64)
using CsrOffset = std::uint64_t;
#else
using CsrOffset = std::uint32_t;
#endif

class CsrCore {
 public:
  /// The configured offset width (see CsrOffset above).
  using Offset = CsrOffset;

  /// Edge-offset capacity at the configured width. Larger graphs
  /// (ROADMAP's multi-million-device hosts can exceed the 32-bit limit
  /// once net fanout is counted twice, device- and net-side) must be
  /// refused BEFORE construction: capacity_status() turns the limit into a
  /// structured RunStatus instead of UB or silent truncation.
  static constexpr std::size_t kMaxEdges =
      static_cast<std::size_t>(CsrOffsetLimits<Offset>::max_edges);

  /// True iff `edge_count` edges fit the configured CSR offset width.
  [[nodiscard]] static constexpr bool offsets_fit(std::size_t edge_count) {
    return CsrOffsetLimits<Offset>::fits(edge_count);
  }

  /// Total directed edge slots a core over `graph` would need.
  [[nodiscard]] static std::size_t edge_count(const CircuitGraph& graph);

  /// kComplete when `graph` fits; otherwise a kTruncated status whose
  /// reason names the limit and the --core=legacy escape hatch. Callers
  /// (SubgraphMatcher::init_cores) consult this instead of letting the
  /// constructor throw mid-run.
  [[nodiscard]] static RunStatus capacity_status(const CircuitGraph& graph);

  /// Same check against a caller-imposed edge budget (<= kMaxEdges). The
  /// session layer uses this as a test seam: a tiny limit exercises the
  /// overflow path (core dropped, structured status) without a 4-billion-
  /// edge host.
  [[nodiscard]] static RunStatus capacity_status(const CircuitGraph& graph,
                                                 std::size_t max_edges);

  /// Requires offsets_fit(edge_count(graph)) — checked.
  explicit CsrCore(const CircuitGraph& graph);

  /// Refill the flat arrays from `graph`, which replaces the borrowed
  /// graph. Storage is RETAINED: vectors are resized, not reallocated when
  /// the new graph fits the old capacity — this is what makes an ECO patch
  /// cheaper than a cold build, and what spill_bytes() measures afterwards.
  /// Same precondition as the constructor (offsets must fit — checked).
  void rebuild(const CircuitGraph& graph);

  [[nodiscard]] const CircuitGraph& graph() const { return *graph_; }

  [[nodiscard]] std::size_t vertex_count() const {
    return edge_begin_.size() - 1;
  }

  [[nodiscard]] std::span<const Vertex> neighbors(Vertex v) const {
    return {edge_to_.data() + edge_begin_[v],
            edge_begin_[v + 1] - edge_begin_[v]};
  }
  [[nodiscard]] std::span<const Label> coefficients(Vertex v) const {
    return {edge_coeff_.data() + edge_begin_[v],
            edge_begin_[v + 1] - edge_begin_[v]};
  }
  [[nodiscard]] std::size_t degree(Vertex v) const {
    return edge_begin_[v + 1] - edge_begin_[v];
  }

  /// Neighborhood signature of a DEVICE vertex: the degrees of its neighbor
  /// nets, sorted ascending, one entry per edge slot (a pin wired to the
  /// same net twice contributes its degree twice). Precomputed at build so
  /// the Phase II signature prefilter rejects K↔c postulates without
  /// touching the adjacency. Undefined for net vertices (empty span).
  [[nodiscard]] std::span<const std::uint32_t> sorted_neighbor_degrees(
      Vertex v) const {
    return {neighbor_degree_.data() + edge_begin_[v],
            graph_->is_device(v) ? edge_begin_[v + 1] - edge_begin_[v] : 0};
  }

  [[nodiscard]] Label initial_label(Vertex v) const {
    return initial_label_[v];
  }
  /// Round-0 host label BEFORE rail overrides: the invariant label for
  /// devices, degree_label(degree) for nets.
  [[nodiscard]] Label host_base_label(Vertex v) const {
    return host_base_label_[v];
  }
  [[nodiscard]] bool is_special(Vertex v) const { return special_[v] != 0; }

  /// Wall-clock cost of the flattening pass (for "csr.build_seconds").
  [[nodiscard]] double build_seconds() const { return build_seconds_; }
  /// Heap footprint of the flat arrays (for the "csr.bytes" gauge).
  /// CAPACITY-based: after a rebuild() into retained storage this includes
  /// the spill (capacity beyond the live size), so footprint reports stay
  /// honest across ECO patches.
  [[nodiscard]] std::size_t bytes() const;
  /// Bytes actually occupied by the live arrays (size-based).
  [[nodiscard]] std::size_t used_bytes() const;
  /// Retained-but-unused storage: bytes() − used_bytes(). Grows when a
  /// patch shrinks the graph; the session compacts when it crosses the
  /// configured threshold.
  [[nodiscard]] std::size_t spill_bytes() const {
    return bytes() - used_bytes();
  }
  /// Release spill storage (shrink_to_fit on every array) — the session's
  /// compaction step.
  void shrink();

  /// True iff the flat arrays of both cores are element-wise identical
  /// (offsets, adjacency, coefficients, labels, rail tags). Backs the A17
  /// audit: a patched core must equal a cold build over the same graph.
  [[nodiscard]] bool structurally_equal(const CsrCore& other) const;

 private:
  const CircuitGraph* graph_;
  std::vector<Offset> edge_begin_;  // size vertex_count()+1
  std::vector<Vertex> edge_to_;
  std::vector<Label> edge_coeff_;
  std::vector<Label> initial_label_;
  std::vector<Label> host_base_label_;
  std::vector<std::uint8_t> special_;
  /// Per-edge neighbor degrees, sorted within each DEVICE vertex's edge
  /// range (net ranges stay zero — device fanin is bounded by the pin
  /// count, so the sort is O(E); net fanout is not).
  std::vector<std::uint32_t> neighbor_degree_;
  double build_seconds_ = 0;
};

}  // namespace subg
