// Bipartite circuit-graph view over a Netlist (paper §II, Figs 1–2).
//
// Vertices 0..D-1 are devices, D..D+N-1 are nets. Each device pin yields
// one undirected edge between the device vertex and the net vertex; the
// edge carries the relabeling coefficient of the pin's terminal equivalence
// class, so that — per Fig 3 — a neighbor's label contributes through the
// class of the connecting terminal. Adjacency is CSR (one contiguous edge
// array) because Phase I sweeps the whole host graph every iteration.
#pragma once

#include <span>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/hash.hpp"

namespace subg {

/// Graph vertex index (devices first, then nets).
using Vertex = std::uint32_t;

class CircuitGraph {
 public:
  struct Edge {
    Vertex to;
    Label coefficient;  // terminal-class coefficient of this connection
  };

  /// Build the view. The netlist must outlive the graph and must not be
  /// mutated while the graph is in use.
  explicit CircuitGraph(const Netlist& netlist);

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

  [[nodiscard]] std::size_t device_count() const { return device_count_; }
  [[nodiscard]] std::size_t net_count() const { return net_count_; }
  [[nodiscard]] std::size_t vertex_count() const {
    return device_count_ + net_count_;
  }

  [[nodiscard]] bool is_device(Vertex v) const { return v < device_count_; }
  [[nodiscard]] bool is_net(Vertex v) const { return v >= device_count_; }

  [[nodiscard]] Vertex vertex_of(DeviceId d) const {
    return static_cast<Vertex>(d.index());
  }
  [[nodiscard]] Vertex vertex_of(NetId n) const {
    return static_cast<Vertex>(device_count_ + n.index());
  }
  [[nodiscard]] DeviceId device_of(Vertex v) const {
    return DeviceId(v);
  }
  [[nodiscard]] NetId net_of(Vertex v) const {
    return NetId(static_cast<std::uint32_t>(v - device_count_));
  }

  [[nodiscard]] std::span<const Edge> edges(Vertex v) const {
    return {edge_store_.data() + edge_begin_[v],
            edge_begin_[v + 1] - edge_begin_[v]};
  }

  [[nodiscard]] std::size_t degree(Vertex v) const {
    return edge_begin_[v + 1] - edge_begin_[v];
  }

  /// True for global nets (the paper's "special signals").
  [[nodiscard]] bool is_special(Vertex v) const { return special_[v]; }

  /// Initial invariant label (paper §III): device type hash for devices,
  /// degree hash for nets, fixed name-derived label for special nets.
  [[nodiscard]] Label initial_label(Vertex v) const { return initial_label_[v]; }

  /// Fixed label of a special net, derived from its (global) name — equal in
  /// pattern and host exactly when the rails have the same name.
  [[nodiscard]] static Label special_net_label(std::string_view name) {
    return hash_string(std::string("!global:") += name);
  }

  /// Human-readable vertex name for traces and error messages.
  [[nodiscard]] std::string vertex_name(Vertex v) const;

 private:
  const Netlist* netlist_;
  std::size_t device_count_ = 0;
  std::size_t net_count_ = 0;
  std::vector<std::size_t> edge_begin_;  // size vertex_count()+1
  std::vector<Edge> edge_store_;
  std::vector<Label> initial_label_;
  std::vector<bool> special_;
};

}  // namespace subg
