#include "graph/shard_plan.hpp"

#include <algorithm>
#include <map>
#include <queue>

#include "util/check.hpp"
#include "util/timer.hpp"

namespace subg {

namespace {

/// splitmix64 finisher — spreads a label over the 256-bit bloom space so
/// the two probe indices are independent of the label's low bits (degree
/// labels share structure there).
[[nodiscard]] std::uint64_t bloom_mix(Label l) {
  std::uint64_t z = l + 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

void bloom_add(std::array<std::uint64_t, 4>& bits, Label l) {
  const std::uint64_t h = bloom_mix(l);
  const std::uint64_t a = h & 255;
  const std::uint64_t b = (h >> 32) & 255;
  bits[a >> 6] |= std::uint64_t{1} << (a & 63);
  bits[b >> 6] |= std::uint64_t{1} << (b & 63);
}

[[nodiscard]] bool bloom_maybe(const std::array<std::uint64_t, 4>& bits,
                               Label l) {
  const std::uint64_t h = bloom_mix(l);
  const std::uint64_t a = h & 255;
  const std::uint64_t b = (h >> 32) & 255;
  return ((bits[a >> 6] >> (a & 63)) & 1) != 0 &&
         ((bits[b >> 6] >> (b & 63)) & 1) != 0;
}

/// One anchor-free connected component, vertices in BFS discovery order
/// (the order oversized components are split along).
struct Component {
  std::vector<Vertex> order;
  std::size_t device_count = 0;
  /// Sorted distinct device type labels — the packing-bucket signature.
  std::vector<Label> signature;
};

[[nodiscard]] ShardPlan::Shard make_shard(const CircuitGraph& g,
                                          const std::vector<Vertex>& verts,
                                          const std::vector<char>& anchor) {
  ShardPlan::Shard sh;
  for (Vertex v : verts) {
    (g.is_device(v) ? sh.devices : sh.nets).push_back(v);
  }
  std::sort(sh.devices.begin(), sh.devices.end());
  std::sort(sh.nets.begin(), sh.nets.end());

  // Boundary: every anchor net an owned device touches, once, ascending.
  for (Vertex d : sh.devices) {
    for (const auto& e : g.edges(d)) {
      if (anchor[e.to] != 0) sh.anchor_refs.push_back(e.to);
    }
  }
  std::sort(sh.anchor_refs.begin(), sh.anchor_refs.end());
  sh.anchor_refs.erase(
      std::unique(sh.anchor_refs.begin(), sh.anchor_refs.end()),
      sh.anchor_refs.end());

  // Device-side CSR slice over local ids [devices | nets | anchor_refs].
  const std::size_t net_base = sh.devices.size();
  const std::size_t anchor_base = net_base + sh.nets.size();
  sh.slice_begin.reserve(sh.devices.size() + 1);
  sh.slice_begin.push_back(0);
  for (Vertex d : sh.devices) {
    for (const auto& e : g.edges(d)) {
      std::size_t local;
      if (anchor[e.to] != 0) {
        const auto it = std::lower_bound(sh.anchor_refs.begin(),
                                         sh.anchor_refs.end(), e.to);
        local = anchor_base +
                static_cast<std::size_t>(it - sh.anchor_refs.begin());
      } else {
        const auto it =
            std::lower_bound(sh.nets.begin(), sh.nets.end(), e.to);
        local = net_base + static_cast<std::size_t>(it - sh.nets.begin());
      }
      sh.slice_adj.push_back(static_cast<std::uint32_t>(local));
    }
    sh.slice_begin.push_back(sh.slice_adj.size());
  }

  // Prefilter columns + blooms + the device-type histogram.
  std::vector<Label> column;
  column.reserve(sh.devices.size());
  for (Vertex d : sh.devices) column.push_back(g.initial_label(d));
  std::sort(column.begin(), column.end());
  for (std::size_t i = 0; i < column.size(); ++i) {
    if (i == 0 || column[i] != column[i - 1]) {
      sh.device_labels.push_back(column[i]);
      sh.type_histogram.emplace_back(column[i], 0);
      bloom_add(sh.device_bloom, column[i]);
    }
    ++sh.type_histogram.back().second;
  }
  column.clear();
  for (Vertex n : sh.nets) column.push_back(g.initial_label(n));
  std::sort(column.begin(), column.end());
  for (std::size_t i = 0; i < column.size(); ++i) {
    if (i == 0 || column[i] != column[i - 1]) {
      sh.net_labels.push_back(column[i]);
      bloom_add(sh.net_bloom, column[i]);
    }
  }
  return sh;
}

[[nodiscard]] std::uint64_t vector_bytes(const auto& v) {
  return static_cast<std::uint64_t>(v.size() * sizeof(v[0]));
}

}  // namespace

Round0PatternLabels pattern_round0_labels(const CircuitGraph& pattern) {
  // Mirror of Phase1State's valid_s init: everything starts valid, then the
  // non-global ports are corrupted; specials never enter the census.
  std::vector<char> valid(pattern.vertex_count(), 1);
  const Netlist& pnl = pattern.netlist();
  for (NetId port : pnl.ports()) {
    if (!pnl.is_global(port)) valid[pattern.vertex_of(port)] = 0;
  }
  Round0PatternLabels out;
  for (Vertex v = 0; v < pattern.vertex_count(); ++v) {
    if (pattern.is_special(v) || valid[v] == 0) continue;
    (pattern.is_device(v) ? out.devices : out.nets)
        .push_back(pattern.initial_label(v));
  }
  for (auto* column : {&out.nets, &out.devices}) {
    std::sort(column->begin(), column->end());
    column->erase(std::unique(column->begin(), column->end()), column->end());
  }
  return out;
}

bool ShardPlan::Shard::rejects(std::span<const Label> sorted_labels,
                               bool device_kind) const {
  const std::vector<Label>& column = device_kind ? device_labels : net_labels;
  const std::array<std::uint64_t, 4>& bloom =
      device_kind ? device_bloom : net_bloom;
  if (column.empty()) return true;
  for (Label l : sorted_labels) {
    if (!bloom_maybe(bloom, l)) continue;  // definite miss
    if (std::binary_search(column.begin(), column.end(), l)) return false;
  }
  return true;
}

ShardPlan ShardPlan::build(const CircuitGraph& graph,
                           ShardPlanOptions options) {
  SUBG_CHECK_MSG(options.target_devices > 0,
                 "shard plan needs target_devices >= 1");
  Timer timer;
  ShardPlan plan;
  plan.graph_ = &graph;
  plan.options_ = options;

  const std::size_t nv = graph.vertex_count();
  std::vector<char> anchor(nv, 0);
  for (Vertex v = 0; v < nv; ++v) {
    if (!graph.is_net(v)) continue;
    if (graph.is_special(v) || graph.degree(v) >= options.anchor_fanout) {
      anchor[v] = 1;
      plan.anchors_.push_back(v);
    }
  }

  // Connected components of the anchor-free graph, discovered in ascending
  // seed order (BFS never crosses an anchor net, so the anchors are the
  // region boundaries).
  std::vector<char> visited(nv, 0);
  std::vector<Component> components;
  std::vector<Vertex> queue;
  for (Vertex seed = 0; seed < nv; ++seed) {
    if (visited[seed] != 0 || anchor[seed] != 0) continue;
    Component comp;
    visited[seed] = 1;
    queue.clear();
    queue.push_back(seed);
    for (std::size_t head = 0; head < queue.size(); ++head) {
      const Vertex v = queue[head];
      comp.order.push_back(v);
      if (graph.is_device(v)) {
        ++comp.device_count;
        comp.signature.push_back(graph.initial_label(v));
      }
      for (const auto& e : graph.edges(v)) {
        if (anchor[e.to] != 0 || visited[e.to] != 0) continue;
        visited[e.to] = 1;
        queue.push_back(e.to);
      }
    }
    std::sort(comp.signature.begin(), comp.signature.end());
    comp.signature.erase(
        std::unique(comp.signature.begin(), comp.signature.end()),
        comp.signature.end());
    components.push_back(std::move(comp));
  }

  // Bucket components by type signature (first-appearance order — a pure
  // function of the vertex numbering), then pack each bucket greedily into
  // shards of at most target_devices owned devices. Homogeneous buckets are
  // what lets the prefilter reject whole shards: a pad-ring shard never
  // dilutes its label columns with logic-tile types.
  std::map<std::vector<Label>, std::size_t> bucket_of;
  std::vector<std::vector<std::size_t>> buckets;
  std::vector<std::size_t> bucket_order;
  for (std::size_t c = 0; c < components.size(); ++c) {
    auto [it, inserted] =
        bucket_of.try_emplace(components[c].signature, buckets.size());
    if (inserted) {
      buckets.emplace_back();
      bucket_order.push_back(it->second);
    }
    buckets[it->second].push_back(c);
  }

  std::vector<Vertex> current;
  std::size_t current_devices = 0;
  auto flush = [&] {
    if (current.empty()) return;
    plan.shards_.push_back(make_shard(graph, current, anchor));
    current.clear();
    current_devices = 0;
  };
  for (std::size_t b : bucket_order) {
    for (std::size_t c : buckets[b]) {
      const Component& comp = components[c];
      if (comp.device_count > options.target_devices) {
        // Oversized component: split along its BFS order so every chunk
        // stays within the target (owned nets follow their discovery
        // position — ownership is a partition, not a locality promise).
        flush();
        for (Vertex v : comp.order) {
          if (graph.is_device(v) && current_devices == options.target_devices) {
            flush();
          }
          current.push_back(v);
          if (graph.is_device(v)) ++current_devices;
        }
        flush();
        continue;
      }
      if (!current.empty() &&
          current_devices + comp.device_count > options.target_devices) {
        flush();
      }
      current.insert(current.end(), comp.order.begin(), comp.order.end());
      current_devices += comp.device_count;
    }
    flush();  // shards never span buckets
  }

  plan.build_seconds_ = timer.seconds();
  return plan;
}

std::uint64_t ShardPlan::bytes() const {
  std::uint64_t total = vector_bytes(anchors_);
  for (const Shard& sh : shards_) {
    total += vector_bytes(sh.devices) + vector_bytes(sh.nets) +
             vector_bytes(sh.anchor_refs) + vector_bytes(sh.slice_begin) +
             vector_bytes(sh.slice_adj) + vector_bytes(sh.device_labels) +
             vector_bytes(sh.net_labels) + vector_bytes(sh.type_histogram) +
             sizeof(sh.device_bloom) + sizeof(sh.net_bloom);
  }
  return total;
}

std::size_t ShardPlan::max_shard_devices() const {
  std::size_t most = 0;
  for (const Shard& sh : shards_) most = std::max(most, sh.devices.size());
  return most;
}

}  // namespace subg
