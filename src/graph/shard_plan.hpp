// ShardPlan — region decomposition of a flattened host for sharded Phase I
// (ISSUE 10 / ROADMAP "million-device hosts"; DESIGN.md §11).
//
// The host is cut into fanout-bounded regions: rail/global nets and other
// very-high-fanout nets become BOUNDARY ANCHORS (replicated by reference
// into every region that touches them, never owned), and the connected
// components that remain once anchors are removed are packed into shards of
// at most `target_devices` owned devices. Components are bucketed by their
// device-type signature before packing, so structurally homogeneous regions
// (logic tiles, pad cells, analog islands) land in homogeneous shards — the
// property that makes the per-shard prefilter bite.
//
// Each shard carries:
//   - the owned device/net vertex lists (ascending global ids),
//   - a device-side CSR slice over local ids (owned devices' adjacency,
//     with owned nets and boundary-anchor references remapped locally),
//   - a structural prefilter: sorted distinct initial-label columns per
//     vertex kind, a 256-bit bloom filter over each, and a device-type
//     histogram.
//
// The prefilter answers one question — `rejects(labels, kind)`: does NO
// owned vertex of the kind carry an initial label in the given set? That is
// exactly the per-vertex test Phase I's round-0 consistency sweep applies,
// so a rejected shard can be bulk-pruned without per-vertex label lookups
// and the result stays byte-identical to the monolithic sweep (the
// soundness argument lives in DESIGN.md §11 and is enforced by the
// `shard`-labeled test suite).
//
// A plan is a pure function of (graph, options): building it twice yields
// identical shards, so sharded counters are deterministic at every --jobs.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace subg {

struct ShardPlanOptions {
  /// Maximum owned devices per shard; oversized components are split along
  /// their discovery (BFS) order.
  std::size_t target_devices = std::size_t{1} << 16;
  /// Nets with degree >= this become boundary anchors alongside the
  /// host-declared globals. Anchors are swept individually every round and
  /// are never part of a shard's bulk-skip.
  std::size_t anchor_fanout = 64;
};

/// Sorted distinct round-0 labels of the VALID pattern vertices, per kind —
/// the label sets Phase I's initial consistency sweep tests host vertices
/// against (non-global ports start corrupt, specials are matched by name).
/// Shared by the sharded sweep's skip rule and the soundness tests so the
/// two cannot drift.
struct Round0PatternLabels {
  std::vector<Label> nets;
  std::vector<Label> devices;
};

[[nodiscard]] Round0PatternLabels pattern_round0_labels(
    const CircuitGraph& pattern);

class ShardPlan {
 public:
  struct Shard {
    /// Owned devices / owned non-anchor nets, ascending global vertex ids.
    std::vector<Vertex> devices;
    std::vector<Vertex> nets;
    /// Anchor nets adjacent to an owned device, ascending global ids —
    /// the region's replicated boundary.
    std::vector<Vertex> anchor_refs;
    /// Device-side CSR slice: slice_adj[slice_begin[i]..slice_begin[i+1])
    /// are the local net ids adjacent to devices[i]. Local ids index
    /// [devices | nets | anchor_refs] in that order.
    std::vector<std::uint64_t> slice_begin;
    std::vector<std::uint32_t> slice_adj;
    /// Sorted distinct initial labels of the owned vertices, per kind.
    std::vector<Label> device_labels;
    std::vector<Label> net_labels;
    /// 256-bit bloom over each label column (two probes per label); a
    /// negative is definite, a positive falls through to binary search.
    std::array<std::uint64_t, 4> device_bloom{};
    std::array<std::uint64_t, 4> net_bloom{};
    /// Owned-device census by type label, ascending label.
    std::vector<std::pair<Label, std::uint64_t>> type_histogram;

    /// True iff NO owned vertex of the kind has an initial label in
    /// `sorted_labels` (ascending, distinct) — the round-0 bulk-skip test.
    [[nodiscard]] bool rejects(std::span<const Label> sorted_labels,
                               bool device_kind) const;
  };

  /// Decompose `graph`. The plan stores a pointer to the graph; the graph
  /// must outlive the plan (HostSession rebuilds the plan on every patch).
  [[nodiscard]] static ShardPlan build(const CircuitGraph& graph,
                                       ShardPlanOptions options = {});

  [[nodiscard]] const CircuitGraph& graph() const { return *graph_; }
  [[nodiscard]] const std::vector<Shard>& shards() const { return shards_; }
  /// All anchor nets, ascending global ids. Together with the shards'
  /// owned lists this partitions the vertex set: every device is owned by
  /// exactly one shard, every net is owned xor an anchor.
  [[nodiscard]] std::span<const Vertex> anchor_nets() const {
    return anchors_;
  }
  [[nodiscard]] const ShardPlanOptions& options() const { return options_; }

  /// Heap footprint of the plan (owned vectors), for the obs gauges and
  /// the serve status summary.
  [[nodiscard]] std::uint64_t bytes() const;
  [[nodiscard]] std::size_t max_shard_devices() const;
  [[nodiscard]] double build_seconds() const { return build_seconds_; }

 private:
  const CircuitGraph* graph_ = nullptr;
  ShardPlanOptions options_;
  std::vector<Shard> shards_;
  std::vector<Vertex> anchors_;
  double build_seconds_ = 0;
};

}  // namespace subg
