#include "graph/circuit_graph.hpp"

#include "util/check.hpp"

namespace subg {

CircuitGraph::CircuitGraph(const Netlist& netlist) : netlist_(&netlist) {
  device_count_ = netlist.device_count();
  net_count_ = netlist.net_count();
  const std::size_t nv = vertex_count();

  // Count edges per vertex, then fill CSR.
  edge_begin_.assign(nv + 1, 0);
  for (std::uint32_t d = 0; d < device_count_; ++d) {
    const DeviceId dev(d);
    auto pins = netlist.device_pins(dev);
    edge_begin_[vertex_of(dev) + 1] += pins.size();
    for (NetId n : pins) {
      edge_begin_[vertex_of(n) + 1] += 1;
    }
  }
  for (std::size_t v = 0; v < nv; ++v) edge_begin_[v + 1] += edge_begin_[v];
  edge_store_.resize(edge_begin_[nv]);

  std::vector<std::size_t> cursor(edge_begin_.begin(), edge_begin_.end() - 1);
  for (std::uint32_t d = 0; d < device_count_; ++d) {
    const DeviceId dev(d);
    const DeviceTypeInfo& info = netlist.device_type_info(dev);
    auto pins = netlist.device_pins(dev);
    const Vertex dv = vertex_of(dev);
    for (std::uint32_t p = 0; p < pins.size(); ++p) {
      const Label coeff = info.class_coefficient[info.pin_class[p]];
      const Vertex nv_ = vertex_of(pins[p]);
      edge_store_[cursor[dv]++] = Edge{nv_, coeff};
      edge_store_[cursor[nv_]++] = Edge{dv, coeff};
    }
  }

  // Invariant labels and special flags.
  initial_label_.resize(nv);
  special_.assign(nv, false);
  for (std::uint32_t d = 0; d < device_count_; ++d) {
    initial_label_[d] =
        netlist.device_type_info(DeviceId(d)).type_label;
  }
  for (std::uint32_t n = 0; n < net_count_; ++n) {
    const NetId net(n);
    const Vertex v = vertex_of(net);
    if (netlist.is_global(net)) {
      special_[v] = true;
      initial_label_[v] = special_net_label(netlist.net_name(net));
    } else {
      initial_label_[v] = degree_label(netlist.net_degree(net));
    }
  }
}

std::string CircuitGraph::vertex_name(Vertex v) const {
  SUBG_CHECK_MSG(v < vertex_count(), "invalid vertex");
  if (is_device(v)) return "dev:" + netlist_->device_name(device_of(v));
  return "net:" + netlist_->net_name(net_of(v));
}

}  // namespace subg
