// Netlist reduction: canonicalize device-level redundancy before matching.
//
// Real layouts implement one logical transistor as several parallel
// "fingers" and one logical resistor as a series ladder; a pattern drawn
// with single devices then fails to match structurally. Reducing *both*
// netlists first restores matchability (and shrinks the graphs):
//
//  - parallel merge: devices of the same type whose pins connect to the
//    same nets through the same pin classes collapse into one device with
//    a multiplicity;
//  - series merge (two-pin devices with one interchangeable pin class,
//    i.e. res/cap): chains through exclusive degree-2 internal nodes
//    collapse into one device.
//
// Reductions iterate to a fixpoint (a ladder of parallel pairs reduces
// fully). The result records, for every surviving device, which original
// devices it absorbed, so match results on the reduced netlist can be
// mapped back.
#pragma once

#include <vector>

#include "netlist/netlist.hpp"

namespace subg::reduce {

struct ReduceOptions {
  bool parallel = true;
  bool series = true;
  /// Nets whose name appears here are never elided by series merging
  /// (ports and globals are always protected).
  std::vector<std::string> protected_nets;
};

struct Reduced {
  Netlist netlist;
  /// merged_from[i] = original device ids absorbed into reduced device i
  /// (singleton for untouched devices), in the reduced netlist's order.
  std::vector<std::vector<DeviceId>> merged_from;

  [[nodiscard]] std::size_t multiplicity(DeviceId reduced_device) const {
    return merged_from[reduced_device.index()].size();
  }
};

/// Reduce to fixpoint. Ports and globals survive with names intact; elided
/// series-internal nets are dropped.
[[nodiscard]] Reduced reduce_netlist(const Netlist& input,
                                     const ReduceOptions& options = {});

}  // namespace subg::reduce
