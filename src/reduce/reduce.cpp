#include "reduce/reduce.hpp"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "util/check.hpp"

namespace subg::reduce {

namespace {

struct WorkDev {
  DeviceTypeId type;
  std::string name;
  std::vector<NetId> pins;
  std::vector<DeviceId> origin;
  bool dead = false;
};

/// Canonical pin signature: (pin class, net) pairs, sorted — identical for
/// devices that are connected identically up to pin interchangeability.
std::vector<std::pair<std::uint32_t, std::uint32_t>> signature(
    const DeviceTypeInfo& info, const WorkDev& dev) {
  std::vector<std::pair<std::uint32_t, std::uint32_t>> sig;
  sig.reserve(dev.pins.size());
  for (std::size_t p = 0; p < dev.pins.size(); ++p) {
    sig.emplace_back(info.pin_class[p], dev.pins[p].value);
  }
  std::sort(sig.begin(), sig.end());
  return sig;
}

/// True for types eligible for series merging: exactly two pins, both in
/// one equivalence class (res, cap).
bool series_eligible(const DeviceTypeInfo& info) {
  return info.pin_count() == 2 && info.class_count == 1;
}

}  // namespace

Reduced reduce_netlist(const Netlist& input, const ReduceOptions& options) {
  const DeviceCatalog& catalog = input.catalog();

  std::vector<WorkDev> devs;
  devs.reserve(input.device_count());
  for (std::uint32_t d = 0; d < input.device_count(); ++d) {
    const DeviceId id(d);
    WorkDev w;
    w.type = input.device_type(id);
    w.name = input.device_name(id);
    auto pins = input.device_pins(id);
    w.pins.assign(pins.begin(), pins.end());
    w.origin = {id};
    devs.push_back(std::move(w));
  }

  std::unordered_set<std::string> protected_names(options.protected_nets.begin(),
                                                  options.protected_nets.end());
  auto net_protected = [&](NetId n) {
    return input.is_port(n) || input.is_global(n) ||
           protected_names.contains(input.net_name(n));
  };

  auto parallel_pass = [&]() {
    bool changed = false;
    std::map<std::pair<std::uint32_t,
                       std::vector<std::pair<std::uint32_t, std::uint32_t>>>,
             std::size_t>
        groups;
    for (std::size_t i = 0; i < devs.size(); ++i) {
      if (devs[i].dead) continue;
      const DeviceTypeInfo& info = catalog.type(devs[i].type);
      auto key = std::make_pair(devs[i].type.value, signature(info, devs[i]));
      auto [it, inserted] = groups.try_emplace(std::move(key), i);
      if (!inserted) {
        WorkDev& keeper = devs[it->second];
        keeper.origin.insert(keeper.origin.end(), devs[i].origin.begin(),
                             devs[i].origin.end());
        devs[i].dead = true;
        changed = true;
      }
    }
    return changed;
  };

  auto series_pass = [&]() {
    bool changed = false;
    // Live two-pin single-class device endpoints per net.
    std::unordered_map<std::uint32_t, std::vector<std::size_t>> at_net;
    std::vector<std::size_t> live_uses(input.net_count(), 0);
    for (std::size_t i = 0; i < devs.size(); ++i) {
      if (devs[i].dead) continue;
      for (NetId n : devs[i].pins) ++live_uses[n.index()];
      if (!series_eligible(catalog.type(devs[i].type))) continue;
      for (NetId n : devs[i].pins) at_net[n.value].push_back(i);
    }
    for (auto& [net_value, users] : at_net) {
      const NetId net(net_value);
      if (net_protected(net)) continue;
      if (live_uses[net.index()] != 2) continue;  // must be exclusive
      if (users.size() != 2) continue;
      std::size_t a = users[0], b = users[1];
      if (a == b || devs[a].dead || devs[b].dead) continue;
      if (devs[a].type != devs[b].type) continue;
      // Other endpoints (each device has exactly 2 pins).
      auto other = [&](std::size_t i) {
        return devs[i].pins[0] == net ? devs[i].pins[1] : devs[i].pins[0];
      };
      NetId oa = other(a), ob = other(b);
      if (oa == net || ob == net) continue;  // self-loop, leave alone
      devs[a].pins = {oa, ob};
      devs[a].origin.insert(devs[a].origin.end(), devs[b].origin.begin(),
                            devs[b].origin.end());
      devs[b].dead = true;
      changed = true;
      // Net usage changed; conservative: finish this sweep, fixpoint loop
      // re-runs with fresh indices.
      break;
    }
    return changed;
  };

  bool changed = true;
  while (changed) {
    changed = false;
    if (options.parallel) changed |= parallel_pass();
    if (options.series) changed |= series_pass();
  }

  // Rebuild the output netlist: keep every net that is still used, plus
  // ports and globals (name-preserving).
  Reduced out{Netlist(input.catalog_ptr(), input.name()), {}};
  std::vector<bool> used(input.net_count(), false);
  for (const WorkDev& w : devs) {
    if (w.dead) continue;
    for (NetId n : w.pins) used[n.index()] = true;
  }
  std::vector<NetId> remap(input.net_count());
  for (std::uint32_t n = 0; n < input.net_count(); ++n) {
    const NetId id(n);
    if (!used[n] && !input.is_port(id) && !input.is_global(id)) continue;
    NetId nn = out.netlist.add_net(input.net_name(id));
    if (input.is_global(id)) out.netlist.mark_global(nn);
    if (input.is_port(id)) out.netlist.mark_port(nn);
    remap[n] = nn;
  }
  std::vector<NetId> pins;
  for (const WorkDev& w : devs) {
    if (w.dead) continue;
    pins.clear();
    for (NetId n : w.pins) pins.push_back(remap[n.index()]);
    out.netlist.add_device(w.type, pins, w.name);
    out.merged_from.push_back(w.origin);
  }
  out.netlist.validate();
  return out;
}

}  // namespace subg::reduce
