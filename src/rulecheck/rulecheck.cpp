#include "rulecheck/rulecheck.hpp"

#include "util/check.hpp"

namespace subg::rulecheck {

namespace {

/// Bulk rail for a 4-pin MOS: nmos bulk goes to gnd, pmos to vdd.
NetId bulk_rail(Netlist& nl, const char* type) {
  return *nl.find_net(std::string_view(type) == "nmos" ? "gnd" : "vdd");
}

void add_mos(Netlist& nl, const char* type, NetId d, NetId g, NetId s) {
  DeviceTypeId id = nl.catalog().require(type);
  const std::uint32_t pins = nl.catalog().type(id).pin_count();
  SUBG_CHECK_MSG(pins == 3 || pins == 4,
                 "builtin rules support 3- or 4-pin MOS types");
  if (pins == 3) {
    nl.add_device(id, {d, g, s});
  } else {
    nl.add_device(id, {d, g, s, bulk_rail(nl, type)});
  }
}

Netlist rail_short_pattern(const std::shared_ptr<const DeviceCatalog>& cat,
                           const char* type) {
  Netlist nl(cat, std::string("rule_crowbar_") + type);
  NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd"), g = nl.add_net("g");
  nl.mark_global(vdd);
  nl.mark_global(gnd);
  nl.mark_port(g);
  add_mos(nl, type, vdd, g, gnd);
  return nl;
}

Netlist stuck_gate_pattern(const std::shared_ptr<const DeviceCatalog>& cat,
                           const char* type, const char* rail) {
  Netlist nl(cat, std::string("rule_stuck_") + type);
  NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd");
  NetId a = nl.add_net("a"), b = nl.add_net("b");
  nl.mark_global(vdd);
  nl.mark_global(gnd);
  nl.mark_port(a);
  nl.mark_port(b);
  NetId gate = *nl.find_net(rail);
  add_mos(nl, type, a, gate, b);
  return nl;
}

}  // namespace

std::vector<Rule> builtin_rules(std::shared_ptr<const DeviceCatalog> cat) {
  std::vector<Rule> rules;
  rules.push_back(Rule{"crowbar-nmos",
                       "nmos connects vdd directly to gnd (static short when on)",
                       Severity::kError, rail_short_pattern(cat, "nmos")});
  rules.push_back(Rule{"crowbar-pmos",
                       "pmos connects vdd directly to gnd (static short when on)",
                       Severity::kError, rail_short_pattern(cat, "pmos")});
  rules.push_back(Rule{"nmos-gate-tied-high",
                       "nmos gate tied to vdd: always-on pass device",
                       Severity::kWarning,
                       stuck_gate_pattern(cat, "nmos", "vdd")});
  rules.push_back(Rule{"pmos-gate-tied-low",
                       "pmos gate tied to gnd: always-on pass device",
                       Severity::kWarning,
                       stuck_gate_pattern(cat, "pmos", "gnd")});
  return rules;
}

CheckReport check(const Netlist& design, const std::vector<Rule>& rules,
                  const MatchOptions& match_options) {
  CheckReport report;
  for (const Rule& rule : rules) {
    ++report.rules_checked;
    SubgraphMatcher matcher(rule.pattern, design, match_options);
    MatchReport matches = matcher.find_all();
    for (const SubcircuitInstance& inst : matches.instances) {
      Violation v;
      v.rule = rule.name;
      v.message = rule.message;
      v.severity = rule.severity;
      for (DeviceId d : inst.device_image) {
        v.devices.push_back(design.device_name(d));
      }
      for (NetId n : inst.net_image) {
        if (n.valid() && !design.is_global(n)) {
          v.nets.push_back(design.net_name(n));
        }
      }
      if (rule.severity == Severity::kError) {
        ++report.errors;
      } else if (rule.severity == Severity::kWarning) {
        ++report.warnings;
      }
      report.violations.push_back(std::move(v));
    }
  }
  return report;
}

}  // namespace subg::rulecheck
