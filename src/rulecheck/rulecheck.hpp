// Circuit rule checking via pattern matching (paper §I): questionable
// constructs are described *as circuits* in an extensible library instead
// of being hard-coded into a linting program. Each rule is a pattern
// netlist; every instance found in the design under check is a violation,
// reported with the device and net names involved.
#pragma once

#include <string>
#include <vector>

#include "match/matcher.hpp"
#include "netlist/netlist.hpp"

namespace subg::rulecheck {

enum class Severity { kInfo, kWarning, kError };

struct Rule {
  std::string name;
  std::string message;
  Severity severity = Severity::kWarning;
  Netlist pattern;
};

struct Violation {
  std::string rule;
  std::string message;
  Severity severity;
  /// Host devices forming the flagged construct.
  std::vector<std::string> devices;
  /// Host nets touched by it.
  std::vector<std::string> nets;
};

struct CheckReport {
  std::vector<Violation> violations;
  std::size_t rules_checked = 0;
  std::size_t errors = 0;
  std::size_t warnings = 0;

  [[nodiscard]] bool clean() const { return violations.empty(); }
};

/// A small built-in rule library: rail-shorting transistors and always-on
/// pass devices. Works with both the 3-pin (cmos3) and 4-pin (cmos)
/// MOS catalogs; 4-pin patterns tie bulk to the appropriate rail.
[[nodiscard]] std::vector<Rule> builtin_rules(
    std::shared_ptr<const DeviceCatalog> catalog = DeviceCatalog::cmos3());

/// Run every rule against the design.
[[nodiscard]] CheckReport check(const Netlist& design,
                                const std::vector<Rule>& rules,
                                const MatchOptions& match_options = {});

}  // namespace subg::rulecheck
