#include "report/report.hpp"

#include <algorithm>
#include <cmath>
#include <ostream>
#include <sstream>

#include "util/check.hpp"

namespace subg::report {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {
  SUBG_CHECK_MSG(!headers_.empty(), "table needs at least one column");
  right_.assign(headers_.size(), false);
}

void Table::add_row(std::vector<std::string> cells) {
  SUBG_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void Table::align_right(std::size_t column) {
  SUBG_CHECK(column < right_.size());
  right_[column] = true;
}

void Table::print(std::ostream& out) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    width[c] = headers_[c].size();
  }
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << "  ";
      const std::size_t pad = width[c] - cells[c].size();
      if (right_[c]) out << std::string(pad, ' ');
      out << cells[c];
      if (!right_[c] && c + 1 < cells.size()) out << std::string(pad, ' ');
    }
    out << '\n';
  };
  emit(headers_);
  std::size_t total = 0;
  for (std::size_t c = 0; c < width.size(); ++c) total += width[c] + (c ? 2 : 0);
  out << std::string(total, '-') << '\n';
  for (const auto& row : rows_) emit(row);
}

void Table::print_csv(std::ostream& out) const {
  auto emit = [&](const std::vector<std::string>& cells) {
    for (std::size_t c = 0; c < cells.size(); ++c) {
      if (c) out << ',';
      const std::string& cell = cells[c];
      if (cell.find_first_of(",\"\n\r") == std::string::npos) {
        out << cell;
        continue;
      }
      out << '"';
      for (const char ch : cell) {
        if (ch == '"') out << '"';
        out << ch;
      }
      out << '"';
    }
    out << '\n';
  };
  emit(headers_);
  for (const auto& row : rows_) emit(row);
}

std::string Table::to_string() const {
  std::ostringstream os;
  print(os);
  return os.str();
}

LinearFit fit_line(std::span<const double> x, std::span<const double> y) {
  SUBG_CHECK_MSG(x.size() == y.size() && x.size() >= 2,
                 "fit_line needs two equal-length series with >= 2 points");
  const double n = static_cast<double>(x.size());
  double sx = 0, sy = 0, sxx = 0, sxy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  LinearFit fit;
  if (denom == 0) return fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;

  const double mean_y = sy / n;
  double ss_res = 0, ss_tot = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    const double pred = fit.slope * x[i] + fit.intercept;
    ss_res += (y[i] - pred) * (y[i] - pred);
    ss_tot += (y[i] - mean_y) * (y[i] - mean_y);
  }
  fit.r2 = ss_tot == 0 ? 1.0 : 1.0 - ss_res / ss_tot;
  return fit;
}

double scaling_exponent(std::span<const double> x, std::span<const double> y) {
  std::vector<double> lx, ly;
  lx.reserve(x.size());
  ly.reserve(y.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    if (x[i] > 0 && y[i] > 0) {
      lx.push_back(std::log(x[i]));
      ly.push_back(std::log(y[i]));
    }
  }
  return fit_line(lx, ly).slope;
}

}  // namespace subg::report
