#include "report/document.hpp"

#include <ostream>
#include <sstream>

#include "analyze/analyze.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "lint/lint.hpp"
#include "match/matcher.hpp"
#include "obs/metrics.hpp"
#include "report/report.hpp"
#include "util/budget.hpp"

namespace subg::report {

json::Value to_json(const RunStatus& status) {
  json::Value v = json::Value::object();
  v.set("outcome", to_string(status.outcome));
  v.set("reason", status.reason);
  v.set("candidates_skipped", status.candidates_skipped);
  v.set("guesses_abandoned", status.guesses_abandoned);
  return v;
}

json::Value to_json(const Phase1Result& phase1) {
  json::Value v = json::Value::object();
  v.set("feasible", phase1.feasible);
  v.set("outcome", to_string(phase1.outcome));
  v.set("rounds", phase1.rounds);
  v.set("key_vertex", static_cast<std::uint64_t>(phase1.key));
  v.set("key_is_device", phase1.key_is_device);
  v.set("candidates", phase1.candidates.size());
  v.set("valid_pattern_vertices", phase1.valid_pattern_vertices);
  v.set("possible_host_vertices", phase1.possible_host_vertices);
  v.set("relabel_ops", phase1.relabel_ops);
  return v;
}

json::Value to_json(const Phase2Stats& stats) {
  json::Value v = json::Value::object();
  v.set("candidates_tried", stats.candidates_tried);
  v.set("candidates_matched", stats.candidates_matched);
  v.set("passes", stats.passes);
  v.set("bindings", stats.bindings);
  v.set("guesses", stats.guesses);
  v.set("backtracks", stats.backtracks);
  v.set("verify_failures", stats.verify_failures);
  v.set("max_guess_depth", stats.max_guess_depth);
  v.set("expansion_ops", stats.expansion_ops);
  // Fast-path counters are additive-only schema members, emitted only when
  // they fired so pre-existing golden reports stay byte-identical.
  if (stats.domain_prunes != 0) v.set("domain_prunes", stats.domain_prunes);
  if (stats.nogood_hits != 0) v.set("nogood_hits", stats.nogood_hits);
  if (stats.trail_undos != 0) v.set("trail_undos", stats.trail_undos);
  if (stats.path_label_prunes != 0) {
    v.set("path_label_prunes", stats.path_label_prunes);
  }
  if (stats.symmetry_skips != 0) {
    v.set("symmetry_skips", stats.symmetry_skips);
  }
  return v;
}

json::Value to_json(const analyze::Certificate& cert) {
  json::Value v = json::Value::object();
  v.set("rule", cert.rule);
  if (!cert.subject.empty()) v.set("subject", cert.subject);
  if (cert.degree != 0) v.set("degree", cert.degree);
  v.set("pattern_count", cert.pattern_count);
  v.set("host_count", cert.host_count);
  v.set("detail", cert.detail);
  return v;
}

json::Value to_json(const analyze::AnalysisReport& report) {
  json::Value v = json::Value::object();
  v.set("pattern_devices", report.pattern_devices);
  v.set("pattern_nets", report.pattern_nets);
  v.set("orbit_count", report.orbit_count);
  v.set("nontrivial_orbit_count", report.nontrivial_orbit_count);
  v.set("automorphism_count", report.automorphism_count);
  v.set("automorphisms_complete", report.automorphisms_complete);
  json::Value orbits = json::Value::array();
  for (const std::vector<std::string>& group : report.orbits) {
    json::Value one = json::Value::array();
    for (const std::string& name : group) one.push(name);
    orbits.push(std::move(one));
  }
  v.set("orbits", std::move(orbits));
  v.set("walk_steps", report.walk_steps);
  v.set("path_classes", report.path_classes);
  if (report.host_checked) {
    v.set("host", report.host_name);
    v.set("infeasible", report.infeasible());
    if (report.certificate.has_value()) {
      v.set("certificate", to_json(*report.certificate));
    }
  }
  return v;
}

json::Value to_json(const MatchReport& report) {
  json::Value v = json::Value::object();
  v.set("instances_found", report.instances.size());
  json::Value instances = json::Value::array();
  for (const SubcircuitInstance& inst : report.instances) {
    json::Value one = json::Value::object();
    json::Value devices = json::Value::array();
    for (DeviceId d : inst.device_image) {
      devices.push(static_cast<std::uint64_t>(d.value));
    }
    json::Value nets = json::Value::array();
    for (NetId n : inst.net_image) {
      nets.push(static_cast<std::uint64_t>(n.value));
    }
    one.set("device_image", std::move(devices));
    one.set("net_image", std::move(nets));
    instances.push(std::move(one));
  }
  v.set("instances", std::move(instances));
  v.set("phase1", to_json(report.phase1));
  v.set("phase2", to_json(report.phase2));
  v.set("status", to_json(report.status));
  // Additive-only: present iff the pre-search analyzer refuted the pairing
  // and the search never ran (pre-existing goldens are unchanged).
  if (report.infeasible_shortcuts != 0) {
    v.set("infeasible_shortcuts", report.infeasible_shortcuts);
  }
  v.set("phase1_seconds", report.phase1_seconds);
  v.set("phase2_seconds", report.phase2_seconds);
  return v;
}

json::Value to_json(const extract::ExtractReport& report) {
  json::Value v = json::Value::object();
  json::Value cells = json::Value::array();
  for (const extract::ExtractReport::PerCell& per : report.cells) {
    json::Value one = json::Value::object();
    one.set("cell", per.cell);
    one.set("instances", per.instances);
    one.set("devices_replaced", per.devices_replaced);
    one.set("outcome", to_string(per.outcome));
    // Additive-only: present iff the analyzer statically refuted the cell.
    if (per.infeasible) one.set("infeasible", true);
    one.set("seconds", per.seconds);
    cells.push(std::move(one));
  }
  v.set("cells", std::move(cells));
  v.set("devices_before", report.devices_before);
  v.set("devices_after", report.devices_after);
  v.set("unextracted_primitives", report.unextracted_primitives);
  v.set("cells_skipped", report.cells_skipped);
  if (report.infeasible_shortcuts != 0) {
    v.set("infeasible_shortcuts", report.infeasible_shortcuts);
  }
  v.set("status", to_json(report.status));
  return v;
}

json::Value to_json(const lint::LintReport& report) {
  json::Value v = json::Value::object();
  json::Value findings = json::Value::array();
  for (const lint::Finding& f : report.findings) {
    json::Value one = json::Value::object();
    one.set("check", f.check);
    one.set("severity", lint::to_string(f.severity));
    one.set("message", f.message);
    json::Value nets = json::Value::array();
    for (const std::string& n : f.nets) nets.push(n);
    one.set("nets", std::move(nets));
    json::Value devices = json::Value::array();
    for (const std::string& d : f.devices) devices.push(d);
    one.set("devices", std::move(devices));
    one.set("module", f.module);
    findings.push(std::move(one));
  }
  v.set("findings", std::move(findings));
  v.set("checks_run", report.checks_run);
  v.set("errors", report.errors);
  v.set("warnings", report.warnings);
  v.set("infos", report.infos);
  v.set("suppressed", report.suppressed);
  return v;
}

json::Value to_json(const CompareResult& result) {
  json::Value v = json::Value::object();
  v.set("isomorphic", result.isomorphic);
  v.set("outcome", to_string(result.outcome));
  v.set("reason", result.reason);
  v.set("rounds", result.rounds);
  v.set("individuations", result.individuations);
  json::Value devices = json::Value::array();
  for (DeviceId d : result.device_map) {
    devices.push(static_cast<std::uint64_t>(d.value));
  }
  json::Value nets = json::Value::array();
  for (NetId n : result.net_map) {
    nets.push(static_cast<std::uint64_t>(n.value));
  }
  v.set("device_map", std::move(devices));
  v.set("net_map", std::move(nets));
  return v;
}

json::Value to_json(const obs::Snapshot& snapshot) {
  json::Value v = json::Value::object();
  json::Value counters = json::Value::object();
  for (const auto& [name, value] : snapshot.counters) {
    counters.set(name, value);
  }
  json::Value gauges = json::Value::object();
  for (const auto& [name, value] : snapshot.gauges) {
    gauges.set(name, value);
  }
  json::Value spans = json::Value::object();
  for (const auto& [name, span] : snapshot.spans) {
    json::Value one = json::Value::object();
    one.set("count", span.count);
    one.set("seconds", span.seconds);
    spans.set(name, std::move(one));
  }
  v.set("counters", std::move(counters));
  v.set("gauges", std::move(gauges));
  v.set("spans", std::move(spans));
  return v;
}

json::Value to_json(const Table& table) {
  json::Value v = json::Value::object();
  json::Value headers = json::Value::array();
  for (const std::string& h : table.headers()) headers.push(h);
  json::Value rows = json::Value::array();
  for (const std::vector<std::string>& row : table.row_data()) {
    json::Value cells = json::Value::array();
    for (const std::string& cell : row) cells.push(cell);
    rows.push(std::move(cells));
  }
  v.set("headers", std::move(headers));
  v.set("rows", std::move(rows));
  return v;
}

json::Value to_json(const LinearFit& fit) {
  json::Value v = json::Value::object();
  v.set("slope", fit.slope);
  v.set("intercept", fit.intercept);
  v.set("r2", fit.r2);
  return v;
}

Document::Document(std::string_view tool, std::string_view command) {
  root_ = json::Value::object();
  root_.set("schema_version", kSchemaVersion);
  root_.set("tool", tool);
  root_.set("command", command);
}

Document& Document::set(std::string key, json::Value value) {
  root_.set(std::move(key), std::move(value));
  return *this;
}

Document& Document::set_metrics(const obs::Snapshot& snapshot) {
  if (!snapshot.empty()) root_.set("metrics", to_json(snapshot));
  return *this;
}

void Document::write(std::ostream& out) const {
  root_.write(out, 2);
  out << '\n';
}

std::string Document::dump() const {
  std::ostringstream os;
  write(os);
  return os.str();
}

}  // namespace subg::report
