// Experiment-harness glue: aligned ASCII tables (the shape of the paper's
// results tables) and the least-squares fit behind the linearity figure
// (experiment E5).
#pragma once

#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace subg::report {

/// Column-aligned ASCII table with a header rule.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);

  /// Right-align the given column (numbers look better that way).
  void align_right(std::size_t column);

  void print(std::ostream& out) const;
  /// RFC 4180 CSV: header row first, fields quoted only when they contain a
  /// comma, quote, or newline (quotes doubled). No alignment padding.
  void print_csv(std::ostream& out) const;
  [[nodiscard]] std::string to_string() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }
  [[nodiscard]] const std::vector<std::string>& headers() const {
    return headers_;
  }
  [[nodiscard]] const std::vector<std::vector<std::string>>& row_data() const {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
  std::vector<bool> right_;
};

/// Ordinary least squares y = slope*x + intercept.
struct LinearFit {
  double slope = 0;
  double intercept = 0;
  /// Coefficient of determination in [0,1]; 1 = perfectly linear.
  double r2 = 0;
};

[[nodiscard]] LinearFit fit_line(std::span<const double> x,
                                 std::span<const double> y);

/// log-log slope: fits log(y) = k*log(x) + c and returns k — the empirical
/// scaling exponent (≈1 for linear behaviour).
[[nodiscard]] double scaling_exponent(std::span<const double> x,
                                      std::span<const double> y);

}  // namespace subg::report
