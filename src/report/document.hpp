// Versioned machine-readable run reports — the JSON surface of the runtime.
//
// Every front-end (the subgemini subcommands under --format=json, the bench
// mains) emits one report::Document: a JSON object whose first member is
// "schema_version". Schema version 1 is ADDITIVE-ONLY: consumers may rely
// on every documented member keeping its name, type, and meaning; new
// members may appear in any object in later releases of the same version,
// so consumers must ignore unknown keys. Removing or retyping a member
// requires bumping the version. See README.md ("Machine-readable output")
// for the documented layout.
//
// The to_json() overloads are the single source of truth for how runtime
// structs (MatchReport, ExtractReport, CompareResult, RunStatus, metric
// snapshots, tables, fits) appear on the wire; front-ends compose documents
// out of them instead of hand-rolling JSON.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "util/json.hpp"

namespace subg {
struct RunStatus;
struct Phase1Result;
struct Phase2Stats;
struct MatchReport;
struct CompareResult;
}  // namespace subg

namespace subg::analyze {
struct Certificate;
struct AnalysisReport;
}  // namespace subg::analyze

namespace subg::extract {
struct ExtractReport;
}  // namespace subg::extract

namespace subg::lint {
struct LintReport;
}  // namespace subg::lint

namespace subg::obs {
struct Snapshot;
}  // namespace subg::obs

namespace subg::report {

class Table;
struct LinearFit;

/// The wire schema emitted by this build. Bumped only on a breaking change;
/// additions within a version are allowed (consumers ignore unknown keys).
inline constexpr std::uint64_t kSchemaVersion = 1;

[[nodiscard]] json::Value to_json(const RunStatus& status);
[[nodiscard]] json::Value to_json(const Phase1Result& phase1);
[[nodiscard]] json::Value to_json(const Phase2Stats& stats);
/// Full match report including the verified instances (device/net images as
/// host vertex indices).
[[nodiscard]] json::Value to_json(const MatchReport& report);
/// Infeasibility certificate: {"rule", "subject"?, "degree"?,
/// "pattern_count", "host_count", "detail"} — the "certificate" member of
/// analyze documents and the "analysis" member find/extract emit when the
/// pre-search analyzer refuted the pairing.
[[nodiscard]] json::Value to_json(const analyze::Certificate& cert);
/// Full static-analysis report (the `subgemini analyze` document body).
[[nodiscard]] json::Value to_json(const analyze::AnalysisReport& report);
[[nodiscard]] json::Value to_json(const extract::ExtractReport& report);
/// Lint report: {"findings": [{"check", "severity", "message", "nets",
/// "devices", "module"}...], "checks_run", "errors", "warnings", "infos",
/// "suppressed"} — the "lint" member of lint/extract documents.
[[nodiscard]] json::Value to_json(const lint::LintReport& report);
/// Comparison verdict including the device/net correspondence when one was
/// found (indices into netlist `b`, positionally matching `a`).
[[nodiscard]] json::Value to_json(const CompareResult& result);
/// Metrics snapshot: {"counters": {...}, "gauges": {...}, "spans":
/// {name: {"count": n, "seconds": s}}}, each map sorted by name.
[[nodiscard]] json::Value to_json(const obs::Snapshot& snapshot);
/// {"headers": [...], "rows": [[cell, ...], ...]} — cells stay strings,
/// exactly as the ASCII rendering would print them.
[[nodiscard]] json::Value to_json(const Table& table);
[[nodiscard]] json::Value to_json(const LinearFit& fit);

/// One machine-readable run report. Members keep insertion order, so a
/// document always starts {"schema_version": 1, "tool": ..., "command":
/// ...} followed by whatever the front-end set()s.
class Document {
 public:
  /// `tool` is the emitting program ("subgemini", "bench_table2");
  /// `command` the subcommand or experiment within it ("find", "extract").
  Document(std::string_view tool, std::string_view command);

  [[nodiscard]] json::Value& root() { return root_; }
  [[nodiscard]] const json::Value& root() const { return root_; }

  /// Set/replace a top-level member. Returns *this for chaining.
  Document& set(std::string key, json::Value value);

  /// Attach a collected metrics snapshot under "metrics". An empty
  /// snapshot (metrics were never enabled) attaches nothing, so the member
  /// is present exactly when the run recorded something.
  Document& set_metrics(const obs::Snapshot& snapshot);

  /// Pretty-print (2-space indent) with a trailing newline.
  void write(std::ostream& out) const;
  [[nodiscard]] std::string dump() const;

 private:
  json::Value root_;
};

}  // namespace subg::report
