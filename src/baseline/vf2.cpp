// VF2-style adjacency-directed depth-first matcher — the paper's "simple
// approach": exhaustively search from a start vertex, extending a partial
// mapping one vertex at a time (§IV, ref [6]). No partition refinement, no
// candidate filtering beyond local feasibility; wrong early guesses cost
// exponential time, which is exactly what SubGemini's Phase II avoids.
#include <unordered_set>

#include "baseline/baseline.hpp"
#include "baseline/common.hpp"
#include "util/timer.hpp"

namespace subg {

namespace {

using baseline_detail::kInvalid;
using baseline_detail::Prep;

struct Vf2Search {
  const Prep& prep;
  const BaselineOptions& options;
  BaselineResult& result;
  std::vector<Vertex> mapping;       // pattern vertex → host vertex
  std::vector<bool> used;            // host vertex claimed
  std::set<std::vector<std::uint32_t>> seen;

  Vf2Search(const Prep& p, const BaselineOptions& o, BaselineResult& r)
      : prep(p), options(o), result(r) {
    mapping.assign(prep.sg.vertex_count(), kInvalid);
    used.assign(prep.gg.vertex_count(), false);
  }

  [[nodiscard]] bool done() const {
    return result.instances.size() >= options.max_matches ||
           !result.status.complete();
  }

  /// Candidate host vertices for pattern vertex s given the current partial
  /// mapping: neighbors of an assigned neighbor's image (through the right
  /// pin class), falling back to a rail's fanout, falling back to a full
  /// host scan for the very first vertex.
  void candidates(Vertex s, std::vector<Vertex>* out) const {
    out->clear();
    // Prefer an assigned non-special neighbor: its image's adjacency is the
    // tightest candidate source.
    for (const auto& e : prep.sg.edges(s)) {
      const Vertex img = prep.sg.is_special(e.to) ? kInvalid : mapping[e.to];
      if (img == kInvalid) continue;
      for (const auto& he : prep.gg.edges(img)) {
        if (he.coefficient == e.coefficient) out->push_back(he.to);
      }
      dedup(out);
      return;
    }
    for (const auto& e : prep.sg.edges(s)) {
      if (!prep.sg.is_special(e.to)) continue;
      const Vertex rail = prep.special_image[e.to];
      if (rail == kInvalid) continue;
      for (const auto& he : prep.gg.edges(rail)) {
        if (he.coefficient == e.coefficient) out->push_back(he.to);
      }
      dedup(out);
      return;
    }
    // First vertex (or disconnected pattern handled by caller's contract).
    for (Vertex g = 0; g < prep.gg.vertex_count(); ++g) out->push_back(g);
  }

  static void dedup(std::vector<Vertex>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  }

  void search(std::size_t depth) {
    if (done()) return;
    if (depth == prep.order.size()) {
      if (auto inst = prep.extract(mapping)) {
        if (seen.insert(baseline_detail::device_set_key(*inst)).second) {
          result.instances.push_back(std::move(*inst));
        }
      }
      return;
    }
    const Vertex s = prep.order[depth];
    std::vector<Vertex> cands;
    candidates(s, &cands);
    for (Vertex g : cands) {
      if (done()) return;
      if (++result.nodes_explored > options.node_budget) {
        result.budget_exhausted = true;
        result.status.escalate(RunOutcome::kTruncated,
                               "vf2: search-node budget exhausted; instance "
                               "count is a lower bound");
        return;
      }
      RunOutcome why;
      if (options.budget.interrupted(&why)) {
        result.status.escalate(why, std::string("vf2: ") + to_string(why) +
                                        " during the search");
        return;
      }
      if (used[g] || !prep.compatible(s, g)) continue;
      if (!prep.edges_consistent(s, g, mapping)) continue;
      mapping[s] = g;
      used[g] = true;
      search(depth + 1);
      mapping[s] = kInvalid;
      used[g] = false;
    }
  }
};

}  // namespace

BaselineResult match_vf2(const Netlist& pattern, const Netlist& host,
                         const BaselineOptions& options) {
  Timer timer;
  BaselineResult result;
  Prep prep(pattern, host);
  if (prep.feasible) {
    Vf2Search search(prep, options, result);
    search.search(0);
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace subg
