// Ullmann's subgraph-isomorphism algorithm (JACM 1976), adapted to labeled
// bipartite circuit graphs: a |S|×|G| candidate bit-matrix is initialized
// from vertex compatibility, refined to arc consistency, and searched
// depth-first with re-refinement after every tentative assignment. The
// generic, technology-independent comparison point for experiment E7.
#include <cstring>

#include "baseline/baseline.hpp"
#include "baseline/common.hpp"
#include "util/timer.hpp"

namespace subg {

namespace {

using baseline_detail::kInvalid;
using baseline_detail::Prep;

/// Flat bit matrix: rows = assignment order index, columns = host vertices.
class BitMatrix {
 public:
  BitMatrix(std::size_t rows, std::size_t cols)
      : rows_(rows), words_(static_cast<std::size_t>((cols + 63) / 64)),
        bits_(rows * words_, 0) {}

  [[nodiscard]] bool get(std::size_t r, std::size_t c) const {
    return (bits_[r * words_ + c / 64] >> (c % 64)) & 1u;
  }
  void set(std::size_t r, std::size_t c) {
    bits_[r * words_ + c / 64] |= std::uint64_t{1} << (c % 64);
  }
  void clear(std::size_t r, std::size_t c) {
    bits_[r * words_ + c / 64] &= ~(std::uint64_t{1} << (c % 64));
  }
  [[nodiscard]] bool row_empty(std::size_t r) const {
    for (std::size_t w = 0; w < words_; ++w) {
      if (bits_[r * words_ + w]) return false;
    }
    return true;
  }
  /// Iterate set columns of a row.
  template <class Fn>
  void for_each(std::size_t r, Fn&& fn) const {
    for (std::size_t w = 0; w < words_; ++w) {
      std::uint64_t word = bits_[r * words_ + w];
      while (word) {
        const int bit = __builtin_ctzll(word);
        fn(w * 64 + static_cast<std::size_t>(bit));
        word &= word - 1;
      }
    }
  }

 private:
  std::size_t rows_, words_;
  std::vector<std::uint64_t> bits_;
};

struct UllmannSearch {
  const Prep& prep;
  const BaselineOptions& options;
  BaselineResult& result;
  /// order index per pattern vertex (kInvalid for specials).
  std::vector<std::uint32_t> row_of;
  std::set<std::vector<std::uint32_t>> seen;
  std::vector<Vertex> mapping;

  UllmannSearch(const Prep& p, const BaselineOptions& o, BaselineResult& r)
      : prep(p), options(o), result(r) {
    row_of.assign(prep.sg.vertex_count(), kInvalid);
    for (std::size_t i = 0; i < prep.order.size(); ++i) {
      row_of[prep.order[i]] = static_cast<std::uint32_t>(i);
    }
    mapping.assign(prep.sg.vertex_count(), kInvalid);
  }

  [[nodiscard]] BitMatrix initial_matrix() const {
    BitMatrix m(prep.order.size(), prep.gg.vertex_count());
    for (std::size_t r = 0; r < prep.order.size(); ++r) {
      const Vertex s = prep.order[r];
      for (Vertex g = 0; g < prep.gg.vertex_count(); ++g) {
        if (!prep.compatible(s, g)) continue;
        // Rail adjacency: edges to resolved globals must exist now.
        bool ok = true;
        for (const auto& e : prep.sg.edges(s)) {
          if (!prep.sg.is_special(e.to)) continue;
          const Vertex rail = prep.special_image[e.to];
          if (rail == kInvalid) continue;
          if (Prep::edge_multiplicity(prep.gg, g, rail, e.coefficient) <
              Prep::edge_multiplicity(prep.sg, s, e.to, e.coefficient)) {
            ok = false;
            break;
          }
        }
        if (ok) m.set(r, g);
      }
    }
    return m;
  }

  /// Ullmann refinement to arc consistency. Returns false if a row empties
  /// (or the run is interrupted — the caller's status then explains why).
  [[nodiscard]] bool refine(BitMatrix& m) const {
    bool changed = true;
    while (changed) {
      changed = false;
      RunOutcome why;
      if (options.budget.interrupted(&why)) {
        result.status.escalate(why, std::string("ullmann: ") + to_string(why) +
                                        " during matrix refinement");
        return false;
      }
      for (std::size_t r = 0; r < prep.order.size(); ++r) {
        const Vertex s = prep.order[r];
        std::vector<std::size_t> to_clear;
        m.for_each(r, [&](std::size_t g) {
          for (const auto& e : prep.sg.edges(s)) {
            if (prep.sg.is_special(e.to)) continue;  // handled in init
            const std::uint32_t nr = row_of[e.to];
            bool witness = false;
            for (const auto& he : prep.gg.edges(static_cast<Vertex>(g))) {
              if (he.coefficient == e.coefficient && m.get(nr, he.to)) {
                witness = true;
                break;
              }
            }
            if (!witness) {
              to_clear.push_back(g);
              return;
            }
          }
        });
        for (std::size_t g : to_clear) m.clear(r, g);
        if (!to_clear.empty()) {
          changed = true;
          if (m.row_empty(r)) return false;
        }
      }
    }
    return true;
  }

  [[nodiscard]] bool done() const {
    return result.instances.size() >= options.max_matches ||
           !result.status.complete();
  }

  void search(std::size_t depth, const BitMatrix& m) {
    if (done()) return;
    if (depth == prep.order.size()) {
      if (auto inst = prep.extract(mapping)) {
        if (seen.insert(baseline_detail::device_set_key(*inst)).second) {
          result.instances.push_back(std::move(*inst));
        }
      }
      return;
    }
    const Vertex s = prep.order[depth];
    std::vector<std::size_t> cands;
    m.for_each(depth, [&](std::size_t g) { cands.push_back(g); });
    for (std::size_t g : cands) {
      if (done()) return;
      if (++result.nodes_explored > options.node_budget) {
        result.budget_exhausted = true;
        result.status.escalate(RunOutcome::kTruncated,
                               "ullmann: search-node budget exhausted; "
                               "instance count is a lower bound");
        return;
      }
      RunOutcome why;
      if (options.budget.interrupted(&why)) {
        result.status.escalate(why, std::string("ullmann: ") + to_string(why) +
                                        " during the search");
        return;
      }
      BitMatrix next = m;
      // Commit s→g: row becomes {g}, column g leaves every other row.
      for (std::size_t r = 0; r < prep.order.size(); ++r) {
        if (r != depth) next.clear(r, g);
      }
      std::vector<std::size_t> row_bits;
      next.for_each(depth, [&](std::size_t c) { row_bits.push_back(c); });
      for (std::size_t c : row_bits) {
        if (c != g) next.clear(depth, c);
      }
      if (!refine(next)) continue;
      mapping[s] = static_cast<Vertex>(g);
      search(depth + 1, next);
      mapping[s] = kInvalid;
    }
  }
};

}  // namespace

BaselineResult match_ullmann(const Netlist& pattern, const Netlist& host,
                             const BaselineOptions& options) {
  Timer timer;
  BaselineResult result;
  Prep prep(pattern, host);
  if (prep.feasible) {
    UllmannSearch search(prep, options, result);
    BitMatrix m = search.initial_matrix();
    if (search.refine(m)) {
      search.search(0, m);
    }
  }
  result.seconds = timer.seconds();
  return result;
}

}  // namespace subg
