// Shared machinery for the baseline matchers: special-net resolution,
// vertex compatibility, assignment ordering, instance extraction, dedup.
#pragma once

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "match/instance.hpp"
#include "match/verify.hpp"
#include "util/check.hpp"

namespace subg::baseline_detail {

inline constexpr Vertex kInvalid = 0xFFFFFFFFu;

/// Preprocessed view of a (pattern, host) matching problem.
struct Prep {
  CircuitGraph sg;
  CircuitGraph gg;
  /// Pattern vertex → forced host image (resolved globals); kInvalid else.
  std::vector<Vertex> special_image;
  /// Host vertices already claimed by resolved globals.
  std::vector<bool> host_bound;
  /// Non-special pattern vertices in assignment order (BFS from vertex 0 so
  /// each vertex after the first has an already-assigned neighbor whenever
  /// the pattern is connected without rails).
  std::vector<Vertex> order;
  /// False when a used pattern global has no same-named host net — no
  /// instance can exist.
  bool feasible = true;

  Prep(const Netlist& pattern, const Netlist& host) : sg(pattern), gg(host) {
    SUBG_CHECK_MSG(pattern.device_count() > 0, "pattern netlist has no devices");
    special_image.assign(sg.vertex_count(), kInvalid);
    host_bound.assign(gg.vertex_count(), false);
    for (Vertex v = 0; v < sg.vertex_count(); ++v) {
      if (!sg.is_special(v)) continue;
      auto hn = host.find_net(pattern.net_name(sg.net_of(v)));
      if (!hn) {
        if (sg.degree(v) > 0) feasible = false;
        continue;
      }
      special_image[v] = gg.vertex_of(*hn);
      host_bound[gg.vertex_of(*hn)] = true;
    }

    // BFS order over non-special vertices, crossing rails as connectors;
    // restarted per component (the baselines handle disconnected patterns,
    // unlike SubgraphMatcher).
    std::vector<bool> seen(sg.vertex_count(), false);
    std::vector<Vertex> queue;
    for (Vertex start = 0; start < sg.vertex_count(); ++start) {
      if (seen[start] || sg.is_special(start)) continue;
      queue.clear();
      queue.push_back(start);
      seen[start] = true;
      for (std::size_t head = 0; head < queue.size(); ++head) {
        Vertex v = queue[head];
        if (!sg.is_special(v)) order.push_back(v);
        for (const auto& e : sg.edges(v)) {
          if (!seen[e.to]) {
            seen[e.to] = true;
            queue.push_back(e.to);
          }
        }
      }
    }
  }

  /// Static vertex-pair compatibility (kind, type, degree, rail exclusion).
  [[nodiscard]] bool compatible(Vertex s, Vertex g) const {
    if (sg.is_device(s) != gg.is_device(g)) return false;
    if (gg.is_net(g) && host_bound[g]) return false;  // claimed by a rail
    if (sg.is_device(s)) {
      return sg.initial_label(s) == gg.initial_label(g);
    }
    const Netlist& pnl = sg.netlist();
    const NetId pn = sg.net_of(s);
    const std::size_t sd = sg.degree(s);
    const std::size_t gd = gg.degree(g);
    return pnl.is_port(pn) ? gd >= sd : gd == sd;
  }

  /// Count of edges between u and w in `graph` carrying coefficient c.
  [[nodiscard]] static std::size_t edge_multiplicity(const CircuitGraph& graph,
                                                     Vertex u, Vertex w,
                                                     Label c) {
    std::size_t n = 0;
    for (const auto& e : graph.edges(u)) {
      if (e.to == w && e.coefficient == c) ++n;
    }
    return n;
  }

  /// Check that all pattern edges from s to already-placed vertices are
  /// present between g and their images (with multiplicity).
  [[nodiscard]] bool edges_consistent(
      Vertex s, Vertex g, const std::vector<Vertex>& mapping) const {
    for (const auto& e : sg.edges(s)) {
      Vertex image = sg.is_special(e.to) ? special_image[e.to] : mapping[e.to];
      if (image == kInvalid) continue;  // not yet placed
      if (edge_multiplicity(gg, g, image, e.coefficient) <
          edge_multiplicity(sg, s, e.to, e.coefficient)) {
        return false;
      }
    }
    return true;
  }

  /// Build a SubcircuitInstance from a full mapping; returns nullopt if the
  /// explicit verification rejects it.
  [[nodiscard]] std::optional<SubcircuitInstance> extract(
      const std::vector<Vertex>& mapping) const {
    SubcircuitInstance inst;
    inst.device_image.assign(sg.device_count(), DeviceId());
    inst.net_image.assign(sg.net_count(), NetId());
    for (Vertex v = 0; v < sg.vertex_count(); ++v) {
      Vertex image = sg.is_special(v) ? special_image[v] : mapping[v];
      if (image == kInvalid) {
        if (sg.is_special(v) && sg.degree(v) == 0) continue;
        return std::nullopt;
      }
      if (sg.is_device(v)) {
        inst.device_image[v] = gg.device_of(image);
      } else {
        inst.net_image[sg.net_of(v).index()] = gg.net_of(image);
      }
    }
    if (!verify_instance(sg.netlist(), gg.netlist(), inst)) return std::nullopt;
    return inst;
  }
};

/// Dedup key: sorted host device ids.
inline std::vector<std::uint32_t> device_set_key(const SubcircuitInstance& inst) {
  std::vector<std::uint32_t> key;
  key.reserve(inst.device_image.size());
  for (DeviceId d : inst.device_image) key.push_back(d.value);
  std::sort(key.begin(), key.end());
  return key;
}

}  // namespace subg::baseline_detail
