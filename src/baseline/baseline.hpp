// Baseline subgraph-isomorphism matchers for comparison against SubGemini
// (experiment E7) and for cross-validating its results.
//
// Two classic approaches:
//  - `match_ullmann`: Ullmann's 1976 algorithm — candidate matrix over
//    (pattern vertex, host vertex) pairs, iterative matrix refinement, and
//    depth-first assignment with re-refinement at every search node.
//  - `match_vf2`: a VF2-flavoured DFS that extends a partial mapping along
//    adjacency — the "exhaustive search from the key vertex" strawman the
//    paper contrasts Phase II against (§IV, reference [6]).
//
// Both enumerate ALL instances (deduplicated by host device set) and both
// honour the same pattern semantics as SubgraphMatcher: ports may have
// extra host connections, internal nets are induced, pattern globals bind
// by name. Every reported instance passes verify_instance().
#pragma once

#include <cstddef>
#include <vector>

#include "match/instance.hpp"
#include "netlist/netlist.hpp"
#include "util/budget.hpp"

namespace subg {

struct BaselineOptions {
  std::size_t max_matches = static_cast<std::size_t>(-1);
  /// Abort the search after this many explored search-tree nodes (the
  /// exponential worst case is the point of these baselines; benches need a
  /// leash). When hit, `budget_exhausted` is set in the result.
  std::size_t node_budget = 200'000'000;
  /// Wall-clock / cancellation envelope, polled once per search node.
  Budget budget;
};

struct BaselineResult {
  std::vector<SubcircuitInstance> instances;
  std::size_t nodes_explored = 0;
  /// True iff `node_budget` specifically was hit (kept for Table-2-style
  /// reporting); status.outcome is the full structured account.
  bool budget_exhausted = false;
  /// kComplete iff the enumeration covered the whole search space —
  /// `count()` is then exact, otherwise a lower bound.
  RunStatus status;
  double seconds = 0;

  [[nodiscard]] std::size_t count() const { return instances.size(); }
};

/// Ullmann's algorithm. Throws subg::Error on an empty pattern.
[[nodiscard]] BaselineResult match_ullmann(const Netlist& pattern,
                                           const Netlist& host,
                                           const BaselineOptions& options = {});

/// VF2-style adjacency-directed DFS. Throws subg::Error on an empty
/// pattern; disconnected patterns are handled (slowly — the far component
/// falls back to a full host scan).
[[nodiscard]] BaselineResult match_vf2(const Netlist& pattern,
                                       const Netlist& host,
                                       const BaselineOptions& options = {});

}  // namespace subg
