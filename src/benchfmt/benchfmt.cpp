#include "benchfmt/benchfmt.hpp"

#include <fstream>
#include <sstream>
#include <unordered_set>

#include "cells/cells.hpp"
#include "util/check.hpp"
#include "util/strings.hpp"

namespace subg::benchfmt {

namespace {

/// Recoverable per-line failure; converted to subg::Error (strict mode) or
/// a Diagnostic (recovering mode) at the line/statement boundary.
struct LineFail {
  std::size_t line;
  std::string message;
};

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw LineFail{line, what};
}

/// Strict-mode error text, kept byte-identical to the historical format.
[[noreturn]] void throw_strict(const LineFail& fail) {
  throw Error("bench: line " + std::to_string(fail.line) + ": " +
              fail.message);
}

struct Statement {
  std::size_t line;
  std::string kind;               // INPUT / OUTPUT / function name
  std::string target;             // lhs (empty for INPUT/OUTPUT)
  std::vector<std::string> args;  // operands
};

std::vector<Statement> parse_statements(std::string_view text,
                                        const ReadOptions& options) {
  std::vector<Statement> out;
  std::istringstream in{std::string(text)};
  std::string raw;
  std::size_t lineno = 0;
  while (std::getline(in, raw)) {
    ++lineno;
    if (auto pos = raw.find('#'); pos != std::string::npos) raw.erase(pos);
    std::string_view line = trim(raw);
    if (line.empty()) continue;

    try {
      Statement st;
      st.line = lineno;
      std::string_view rest = line;
      if (auto eq = line.find('='); eq != std::string_view::npos) {
        st.target = std::string(trim(line.substr(0, eq)));
        rest = trim(line.substr(eq + 1));
        if (st.target.empty()) parse_error(lineno, "missing assignment target");
      }
      auto open = rest.find('(');
      auto close = rest.rfind(')');
      if (open == std::string_view::npos || close == std::string_view::npos ||
          close < open) {
        parse_error(lineno, "expected FUNC(args)");
      }
      st.kind = to_upper(trim(rest.substr(0, open)));
      for (std::string_view arg :
           split_char(rest.substr(open + 1, close - open - 1), ',')) {
        std::string_view t = trim(arg);
        if (t.empty()) parse_error(lineno, "empty operand");
        st.args.push_back(std::string(t));
      }
      if (st.kind.empty()) parse_error(lineno, "missing function name");
      out.push_back(std::move(st));
    } catch (const LineFail& f) {
      if (options.diagnostics == nullptr) throw_strict(f);
      options.diagnostics->add(options.filename, f.line,
                               Diagnostic::Severity::kError, f.message);
    }
  }
  return out;
}

/// Function → cell family. Wide fan-ins decompose through 2-input
/// reductions of the base (AND/OR) function.
struct Func {
  const char* reducer;    // 2-input tree cell for wide fan-in ("" = none)
  const char* final_base; // cell prefix for the final gate ("nand" → nand2..4)
  int max_final;          // widest direct cell
};

const Func* lookup(const std::string& kind) {
  static const std::map<std::string, Func> kFuncs = {
      {"NAND", {"and2", "nand", 4}}, {"AND", {"and2", "and", 4}},
      {"NOR", {"or2", "nor", 4}},    {"OR", {"or2", "or", 4}},
  };
  auto it = kFuncs.find(kind);
  return it == kFuncs.end() ? nullptr : &it->second;
}

struct Builder {
  cells::CellLibrary lib;
  ModuleId top_id;
  Module* top = nullptr;
  std::map<std::string, std::size_t> gates;
  std::uint64_t serial = 0;

  NetId net(const std::string& name) { return top->ensure_net(name); }

  NetId fresh() { return top->add_net("$t" + std::to_string(serial++)); }

  void place(const std::string& cell, std::vector<NetId> actuals) {
    top->add_instance(lib.module(cell), actuals);
    ++gates[cell];
  }

  void emit(const Statement& st) {
    NetId out = net(st.target);
    const std::string& kind = st.kind;
    std::vector<NetId> ins;
    for (const auto& a : st.args) ins.push_back(net(a));

    if (kind == "NOT" || kind == "INV") {
      if (ins.size() != 1) parse_error(st.line, "NOT takes one operand");
      place("inv", {ins[0], out});
      return;
    }
    if (kind == "BUF" || kind == "BUFF") {
      if (ins.size() != 1) parse_error(st.line, "BUF takes one operand");
      place("buf", {ins[0], out});
      return;
    }
    if (kind == "DFF") {
      if (ins.size() != 1) parse_error(st.line, "DFF takes one operand");
      place("dff", {ins[0], net("clk"), out});
      return;
    }
    if (kind == "XOR" || kind == "XNOR") {
      if (ins.size() < 2) parse_error(st.line, kind + " needs two operands");
      // Fold: parity of all but the last pair, final gate sets polarity.
      NetId acc = ins[0];
      for (std::size_t i = 1; i + 1 < ins.size(); ++i) {
        NetId t = fresh();
        place("xor2", {acc, ins[i], t});
        acc = t;
      }
      place(kind == "XOR" ? "xor2" : "xnor2", {acc, ins.back(), out});
      return;
    }
    if (const Func* f = lookup(kind)) {
      if (ins.size() < 2) parse_error(st.line, kind + " needs two operands");
      // Reduce wide fan-in with 2-input trees of the base function.
      while (static_cast<int>(ins.size()) > f->max_final) {
        NetId t = fresh();
        place(f->reducer, {ins[ins.size() - 2], ins[ins.size() - 1], t});
        ins.pop_back();
        ins.back() = t;
      }
      std::vector<NetId> actuals = ins;
      actuals.push_back(out);
      place(std::string(f->final_base) + std::to_string(ins.size()),
            std::move(actuals));
      return;
    }
    parse_error(st.line, "unsupported function '" + kind + "'");
  }
};

}  // namespace

BenchCircuit read_string(std::string_view text, const ReadOptions& options) {
  // Strict mode: first failure escapes as subg::Error. Recovering mode:
  // record it and drop the offending statement, keeping the rest.
  auto fail = [&options](const LineFail& f) {
    if (options.diagnostics == nullptr) throw_strict(f);
    options.diagnostics->add(options.filename, f.line,
                             Diagnostic::Severity::kError, f.message);
  };
  std::vector<Statement> statements = parse_statements(text, options);

  std::vector<std::string> inputs, outputs;
  for (const Statement& st : statements) {
    try {
      if (st.kind == "INPUT") {
        if (st.args.size() != 1) parse_error(st.line, "INPUT takes one name");
        inputs.push_back(st.args[0]);
      } else if (st.kind == "OUTPUT") {
        if (st.args.size() != 1) parse_error(st.line, "OUTPUT takes one name");
        outputs.push_back(st.args[0]);
      }
    } catch (const LineFail& f) {
      fail(f);
    }
  }

  Builder b;
  std::vector<std::string> ports = inputs;
  ports.insert(ports.end(), outputs.begin(), outputs.end());
  // An output may repeat an input name; Module rejects duplicates.
  {
    std::unordered_set<std::string> seen;
    std::vector<std::string> unique_ports;
    for (std::string& p : ports) {
      if (seen.insert(p).second) unique_ports.push_back(std::move(p));
    }
    ports = std::move(unique_ports);
  }
  b.top_id = b.lib.design().add_module("main", std::move(ports));
  b.top = &b.lib.design().module(b.top_id);

  bool any_dff = false;
  for (const Statement& st : statements) {
    if (st.kind == "INPUT" || st.kind == "OUTPUT") continue;
    try {
      if (st.target.empty()) parse_error(st.line, "gate without a target net");
      if (st.kind == "DFF") any_dff = true;
      b.emit(st);
    } catch (const LineFail& f) {
      fail(f);
    } catch (const Error& e) {
      // Deeper-layer rejection (netlist invariant) — recoverable per gate.
      if (options.diagnostics == nullptr) throw;
      options.diagnostics->add(options.filename, st.line,
                               Diagnostic::Severity::kError, e.what());
    }
  }
  if (any_dff) b.lib.design().add_global("clk");

  BenchCircuit out{b.lib.design().flatten("main"), std::move(b.gates),
                   std::move(inputs), std::move(outputs)};
  out.transistors.validate();
  return out;
}

BenchCircuit read_file(const std::string& path, const ReadOptions& options) {
  std::ifstream in(path);
  SUBG_CHECK_MSG(in.good(), "cannot open bench file '" << path << "'");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  ReadOptions opts = options;
  if (opts.filename.empty()) opts.filename = path;
  return read_string(buffer.str(), opts);
}

std::string write_string(const Netlist& gates) {
  // Function name per device type; the LAST pin of every supported cell is
  // its output.
  auto func_of = [](const std::string& type) -> std::string {
    if (type == "inv") return "NOT";
    if (type == "buf") return "BUF";
    if (type == "dff") return "DFF";
    if (type == "xor2") return "XOR";
    if (type == "xnor2") return "XNOR";
    for (const char* base : {"nand", "nor", "and", "or"}) {
      const std::string b(base);
      if (type.size() == b.size() + 1 && type.compare(0, b.size(), b) == 0 &&
          std::isdigit(static_cast<unsigned char>(type.back()))) {
        return to_upper(b);
      }
    }
    throw Error("bench: device type '" + type + "' is not expressible");
  };

  std::vector<bool> driven(gates.net_count(), false);
  std::ostringstream body;
  for (std::uint32_t d = 0; d < gates.device_count(); ++d) {
    const DeviceId id(d);
    const DeviceTypeInfo& info = gates.device_type_info(id);
    const std::string func = func_of(info.name);
    auto pins = gates.device_pins(id);
    const NetId out = pins[pins.size() - 1];
    driven[out.index()] = true;
    body << gates.net_name(out) << " = " << func << '(';
    bool first = true;
    for (std::uint32_t p = 0; p + 1 < pins.size(); ++p) {
      if (info.name == "dff" && info.pins[p].name == "clk") continue;
      if (!first) body << ", ";
      body << gates.net_name(pins[p]);
      first = false;
    }
    body << ")\n";
  }

  std::ostringstream head;
  head << "# " << (gates.name().empty() ? "netlist" : gates.name())
       << " — written by subgemini\n";
  for (std::uint32_t n = 0; n < gates.net_count(); ++n) {
    const NetId id(n);
    if (gates.is_global(id) || driven[n] || gates.net_degree(id) == 0) continue;
    head << "INPUT(" << gates.net_name(id) << ")\n";
  }
  for (NetId p : gates.ports()) {
    if (driven[p.index()]) head << "OUTPUT(" << gates.net_name(p) << ")\n";
  }
  return head.str() + body.str();
}

const char* c17_text() {
  return R"(# ISCAS-85 c17
INPUT(1)
INPUT(2)
INPUT(3)
INPUT(6)
INPUT(7)
OUTPUT(22)
OUTPUT(23)
10 = NAND(1, 3)
11 = NAND(3, 6)
16 = NAND(2, 11)
19 = NAND(11, 7)
22 = NAND(10, 16)
23 = NAND(16, 19)
)";
}

}  // namespace subg::benchfmt
