// ISCAS-85/89 ".bench" netlist format:
//
//     # c17
//     INPUT(1)
//     OUTPUT(22)
//     10 = NAND(1, 3)
//     22 = NAND(10, 16)
//     G5 = DFF(G4)
//
// The classic open benchmark suites for this literature are distributed in
// this format. The reader expands each logic function to transistor-level
// standard cells (src/cells/): NOT→inv, BUF→buf, NAND/AND/NOR/OR→the n-ary
// cell (wider fan-ins are decomposed with and2/or2 trees), XOR/XNOR→the
// 2-input cells, DFF→the master-slave dff clocked by a global "clk" net.
// The writer emits .bench from a GATE-level netlist whose device types are
// the supported cells (inv/buf/nandN/andN/norN/orN/xor2/xnor2/dff).
#pragma once

#include <map>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/netlist.hpp"
#include "util/diagnostics.hpp"

namespace subg::benchfmt {

struct ReadOptions {
  /// Strict mode (null, the default): throw subg::Error at the first
  /// malformed line. Recovering mode (non-null): record each malformed line
  /// or unsupported gate as a Diagnostic, skip it, and keep parsing.
  DiagnosticSink* diagnostics = nullptr;
  /// Input path used in diagnostics; read_file fills it automatically.
  std::string filename;
};

struct BenchCircuit {
  /// Flattened transistor-level netlist (4-pin cmos catalog, vdd/gnd/clk
  /// global as needed).
  Netlist transistors;
  /// Logic gates instantiated per cell name (after decomposition).
  std::map<std::string, std::size_t> gates;
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;

  [[nodiscard]] std::size_t gate_count() const {
    std::size_t n = 0;
    for (const auto& [cell, count] : gates) n += count;
    return n;
  }
};

/// Parse .bench text. Throws subg::Error with a line number on malformed
/// input or unsupported functions.
[[nodiscard]] BenchCircuit read_string(std::string_view text,
                                       const ReadOptions& options = {});
[[nodiscard]] BenchCircuit read_file(const std::string& path,
                                     const ReadOptions& options = {});

/// Emit .bench from a gate-level netlist (e.g. extract_gates output) whose
/// device types are all expressible. Ports become INPUT/OUTPUT lines:
/// a port is an OUTPUT if some device output pin drives it, else an INPUT.
/// Throws subg::Error for inexpressible device types.
[[nodiscard]] std::string write_string(const Netlist& gates);

/// The ISCAS-85 c17 circuit, embedded for tests and demos.
[[nodiscard]] const char* c17_text();

}  // namespace subg::benchfmt
