// Switch-level / gate-level logic simulation.
//
// The structural tools in this library (extraction, techmap, LVS) argue
// about graph shape; this module closes the loop FUNCTIONALLY: simulate a
// transistor netlist as bidirectional switches (nmos conducts on gate=1,
// pmos on gate=0; rails drive; conduction groups resolve to 0/1/X/Z) and a
// gate-level netlist by evaluating cell truth functions — then check that
// an extracted/mapped netlist computes the same outputs as its source on
// exhaustive or random vectors.
//
// Scope: steady-state combinational analysis with 4-valued logic
// (0, 1, X = unknown/conflict, Z = undriven). Feedback structures settle
// to X unless their state is forced; sequential cells are out of scope for
// equivalence checking (check_equivalence rejects netlists it cannot
// evaluate).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.hpp"

namespace subg::sim {

enum class V : std::uint8_t { k0, k1, kX, kZ };

[[nodiscard]] char to_char(V v);

struct SolveResult {
  /// Value per net, indexed by NetId.
  std::vector<V> values;
  bool converged = true;
  std::size_t iterations = 0;

  [[nodiscard]] V value(NetId n) const { return values[n.index()]; }
};

/// Steady-state solver for one netlist. Construction cost is O(netlist);
/// each solve() is a fixpoint iteration. Handles three device kinds:
///   - nmos/pmos: bidirectional switches (3- or 4-pin; bulk ignored);
///   - recognized gate-level cell types (inv, buf, nand/nor/and/or 2..4,
///     xor2, xnor2, aoi21, aoi22, oai21, mux2, halfadder, fulladder):
///     evaluated functionally, outputs drive;
///   - res: treated as a closed switch (always conducting); cap: ignored.
/// Throws subg::Error for any other device type (dff, dlatch, tgate at
/// gate level, custom types).
class Simulator {
 public:
  explicit Simulator(const Netlist& netlist);

  /// Net names "vdd"/"vcc" preset to 1 and "gnd"/"vss" to 0; `inputs`
  /// (by net name) are fixed for the run. Unknown names throw.
  [[nodiscard]] SolveResult solve(
      const std::map<std::string, V>& inputs) const;

  [[nodiscard]] const Netlist& netlist() const { return *netlist_; }

 private:
  struct Switch {
    std::uint32_t gate_net;
    std::uint32_t a, b;  // source/drain nets
    bool is_pmos;
    bool always_on;  // res
  };
  struct Gate {
    std::uint32_t device;  // for diagnostics
    std::string type;
    std::vector<std::uint32_t> input_nets;
    std::vector<std::uint32_t> output_nets;  // 1 or 2 (halfadder/fulladder)
  };

  const Netlist* netlist_;
  std::vector<Switch> switches_;
  std::vector<Gate> gates_;
};

struct EquivalenceResult {
  bool equivalent = true;
  std::size_t vectors_checked = 0;
  /// Vectors where some output was X/Z on either side (not a mismatch, but
  /// reported — clean CMOS combinational logic should have none).
  std::size_t inconclusive = 0;
  std::string counterexample;  // human-readable, set when !equivalent
};

/// Drive both netlists with the same values on `inputs` (shared net names)
/// and compare `outputs`. Exhaustive when 2^|inputs| <= max_vectors, else
/// that many random vectors.
[[nodiscard]] EquivalenceResult check_equivalence(
    const Netlist& a, const Netlist& b, std::span<const std::string> inputs,
    std::span<const std::string> outputs, std::size_t max_vectors = 4096,
    std::uint64_t seed = 1);

}  // namespace subg::sim
