#include "sim/sim.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace subg::sim {

namespace {

// --- 4-valued (Kleene) logic ---------------------------------------------

V v_not(V a) {
  switch (a) {
    case V::k0: return V::k1;
    case V::k1: return V::k0;
    default: return V::kX;
  }
}

V v_and2(V a, V b) {
  if (a == V::k0 || b == V::k0) return V::k0;
  if (a == V::k1 && b == V::k1) return V::k1;
  return V::kX;
}

V v_or2(V a, V b) {
  if (a == V::k1 || b == V::k1) return V::k1;
  if (a == V::k0 && b == V::k0) return V::k0;
  return V::kX;
}

V v_xor2(V a, V b) {
  if ((a != V::k0 && a != V::k1) || (b != V::k0 && b != V::k1)) return V::kX;
  return a == b ? V::k0 : V::k1;
}

V v_and(std::span<const V> in) {
  V acc = V::k1;
  for (V v : in) acc = v_and2(acc, v);
  return acc;
}

V v_or(std::span<const V> in) {
  V acc = V::k0;
  for (V v : in) acc = v_or2(acc, v);
  return acc;
}

/// Merge a driver value into an accumulating resolution.
V resolve(V acc, V drv) {
  if (drv == V::kZ) return acc;
  if (acc == V::kZ) return drv;
  if (acc == drv) return acc;
  return V::kX;
}

// --- gate truth functions -------------------------------------------------

struct CellFn {
  std::vector<std::string> inputs;
  std::vector<std::string> outputs;
  /// outputs.size() values from inputs.size() values.
  std::vector<V> (*eval)(std::span<const V>);
};

const std::map<std::string, CellFn>& cell_functions() {
  static const std::map<std::string, CellFn> kFns = [] {
    std::map<std::string, CellFn> m;
    auto nary = [&](const std::string& base, int n,
                    std::vector<V> (*fn)(std::span<const V>)) {
      CellFn f;
      for (int i = 0; i < n; ++i) f.inputs.push_back("a" + std::to_string(i));
      f.outputs = {"y"};
      f.eval = fn;
      m[base + std::to_string(n)] = std::move(f);
    };
    for (int n = 2; n <= 4; ++n) {
      nary("nand", n, +[](std::span<const V> in) {
        return std::vector<V>{v_not(v_and(in))};
      });
      nary("nor", n, +[](std::span<const V> in) {
        return std::vector<V>{v_not(v_or(in))};
      });
      nary("and", n, +[](std::span<const V> in) {
        return std::vector<V>{v_and(in)};
      });
      nary("or", n, +[](std::span<const V> in) {
        return std::vector<V>{v_or(in)};
      });
    }
    m["inv"] = CellFn{{"a"}, {"y"}, +[](std::span<const V> in) {
                        return std::vector<V>{v_not(in[0])};
                      }};
    m["buf"] = CellFn{{"a"}, {"y"}, +[](std::span<const V> in) {
                        V v = in[0] == V::kZ ? V::kX : in[0];
                        return std::vector<V>{v};
                      }};
    m["xor2"] = CellFn{{"a", "b"}, {"y"}, +[](std::span<const V> in) {
                         return std::vector<V>{v_xor2(in[0], in[1])};
                       }};
    m["xnor2"] = CellFn{{"a", "b"}, {"y"}, +[](std::span<const V> in) {
                          return std::vector<V>{v_not(v_xor2(in[0], in[1]))};
                        }};
    m["aoi21"] = CellFn{{"a", "b", "c"}, {"y"}, +[](std::span<const V> in) {
                          return std::vector<V>{v_not(
                              v_or2(v_and2(in[0], in[1]), in[2]))};
                        }};
    m["aoi22"] =
        CellFn{{"a", "b", "c", "d"}, {"y"}, +[](std::span<const V> in) {
                 return std::vector<V>{v_not(
                     v_or2(v_and2(in[0], in[1]), v_and2(in[2], in[3])))};
               }};
    m["oai21"] = CellFn{{"a", "b", "c"}, {"y"}, +[](std::span<const V> in) {
                          return std::vector<V>{v_not(
                              v_and2(v_or2(in[0], in[1]), in[2]))};
                        }};
    m["mux2"] = CellFn{{"a", "b", "s"}, {"y"}, +[](std::span<const V> in) {
                         if (in[2] == V::k0) return std::vector<V>{in[0]};
                         if (in[2] == V::k1) return std::vector<V>{in[1]};
                         V v = (in[0] == in[1] &&
                                (in[0] == V::k0 || in[0] == V::k1))
                                   ? in[0]
                                   : V::kX;
                         return std::vector<V>{v};
                       }};
    m["halfadder"] =
        CellFn{{"a", "b"}, {"s", "c"}, +[](std::span<const V> in) {
                 return std::vector<V>{v_xor2(in[0], in[1]),
                                       v_and2(in[0], in[1])};
               }};
    m["fulladder"] =
        CellFn{{"a", "b", "cin"}, {"s", "cout"}, +[](std::span<const V> in) {
                 V axb = v_xor2(in[0], in[1]);
                 return std::vector<V>{
                     v_xor2(axb, in[2]),
                     v_or2(v_and2(in[0], in[1]), v_and2(in[2], axb))};
               }};
    return m;
  }();
  return kFns;
}

/// Disjoint-set over nets for conduction groups.
struct Dsu {
  std::vector<std::uint32_t> parent;
  explicit Dsu(std::size_t n) : parent(n) {
    std::iota(parent.begin(), parent.end(), 0);
  }
  std::uint32_t find(std::uint32_t x) {
    while (parent[x] != x) x = parent[x] = parent[parent[x]];
    return x;
  }
  void unite(std::uint32_t a, std::uint32_t b) { parent[find(a)] = find(b); }
};

}  // namespace

char to_char(V v) {
  switch (v) {
    case V::k0: return '0';
    case V::k1: return '1';
    case V::kX: return 'X';
    case V::kZ: return 'Z';
  }
  return '?';
}

Simulator::Simulator(const Netlist& netlist) : netlist_(&netlist) {
  const auto& fns = cell_functions();
  for (std::uint32_t d = 0; d < netlist.device_count(); ++d) {
    const DeviceId id(d);
    const DeviceTypeInfo& info = netlist.device_type_info(id);
    auto pins = netlist.device_pins(id);
    if (info.name == "nmos" || info.name == "pmos") {
      // Pins d,g,s[,b]; bulk ignored.
      switches_.push_back(Switch{pins[1].value, pins[0].value, pins[2].value,
                                 info.name == "pmos", false});
      continue;
    }
    if (info.name == "res") {
      switches_.push_back(Switch{0, pins[0].value, pins[1].value, false, true});
      continue;
    }
    if (info.name == "cap") continue;  // no steady-state effect
    auto fn = fns.find(info.name);
    SUBG_CHECK_MSG(fn != fns.end(),
                   "simulator cannot evaluate device type '" << info.name
                                                             << "'");
    Gate gate;
    gate.device = d;
    gate.type = info.name;
    auto pin_by_name = [&](const std::string& name) -> std::uint32_t {
      for (std::uint32_t p = 0; p < info.pins.size(); ++p) {
        if (info.pins[p].name == name) return pins[p].value;
      }
      SUBG_CHECK_MSG(false, "cell '" << info.name << "' lacks pin '" << name
                                     << "'");
    };
    for (const std::string& in : fn->second.inputs) {
      gate.input_nets.push_back(pin_by_name(in));
    }
    for (const std::string& out : fn->second.outputs) {
      gate.output_nets.push_back(pin_by_name(out));
    }
    gates_.push_back(std::move(gate));
  }
}

SolveResult Simulator::solve(const std::map<std::string, V>& inputs) const {
  const Netlist& nl = *netlist_;
  const std::size_t n = nl.net_count();
  SolveResult result;
  result.values.assign(n, V::kZ);

  std::vector<V> fixed(n, V::kZ);
  std::vector<bool> is_fixed(n, false);
  auto fix_by_name = [&](const char* name, V v) {
    if (auto net = nl.find_net(name)) {
      fixed[net->index()] = v;
      is_fixed[net->index()] = true;
    }
  };
  fix_by_name("vdd", V::k1);
  fix_by_name("vcc", V::k1);
  fix_by_name("gnd", V::k0);
  fix_by_name("vss", V::k0);
  for (const auto& [name, v] : inputs) {
    auto net = nl.find_net(name);
    SUBG_CHECK_MSG(net.has_value(), "no net named '" << name << "'");
    fixed[net->index()] = v;
    is_fixed[net->index()] = true;
  }
  for (std::size_t i = 0; i < n; ++i) {
    if (is_fixed[i]) result.values[i] = fixed[i];
  }

  const auto& fns = cell_functions();
  const std::size_t cap = 2 * (n + gates_.size()) + 20;
  for (result.iterations = 0; result.iterations < cap; ++result.iterations) {
    const std::vector<V>& old = result.values;

    // Gate outputs drive their nets.
    std::vector<V> drive(n, V::kZ);
    for (std::size_t i = 0; i < n; ++i) {
      if (is_fixed[i]) drive[i] = fixed[i];
    }
    for (const Gate& gate : gates_) {
      std::vector<V> in;
      in.reserve(gate.input_nets.size());
      for (std::uint32_t net : gate.input_nets) {
        in.push_back(old[net] == V::kZ ? V::kX : old[net]);
      }
      std::vector<V> out = fns.at(gate.type).eval(in);
      for (std::size_t o = 0; o < out.size(); ++o) {
        drive[gate.output_nets[o]] = resolve(drive[gate.output_nets[o]], out[o]);
      }
    }

    // Conduction groups over definitely-on switches.
    Dsu dsu(n);
    std::vector<const Switch*> maybes;
    for (const Switch& sw : switches_) {
      bool on, maybe = false;
      if (sw.always_on) {
        on = true;
      } else {
        const V g = old[sw.gate_net];
        const V active = sw.is_pmos ? V::k0 : V::k1;
        const V inactive = sw.is_pmos ? V::k1 : V::k0;
        on = g == active;
        maybe = g != active && g != inactive;  // X or Z gate
      }
      if (on) {
        dsu.unite(sw.a, sw.b);
      } else if (maybe) {
        maybes.push_back(&sw);
      }
    }
    std::vector<V> group_value(n, V::kZ);
    for (std::uint32_t i = 0; i < n; ++i) {
      std::uint32_t root = dsu.find(i);
      group_value[root] = resolve(group_value[root], drive[i]);
    }
    std::vector<V> next(n);
    for (std::uint32_t i = 0; i < n; ++i) {
      next[i] = is_fixed[i] ? fixed[i] : group_value[dsu.find(i)];
    }
    // Maybe-conducting switches taint: a definite value may or may not
    // reach the other side.
    for (const Switch* sw : maybes) {
      const V va = next[sw->a], vb = next[sw->b];
      if (va == vb) continue;
      if (!is_fixed[sw->a] && vb != V::kZ) next[sw->a] = V::kX;
      if (!is_fixed[sw->b] && va != V::kZ) next[sw->b] = V::kX;
    }

    if (next == result.values) {
      result.converged = true;
      return result;
    }
    result.values = std::move(next);
  }
  result.converged = false;
  return result;
}

EquivalenceResult check_equivalence(const Netlist& a, const Netlist& b,
                                    std::span<const std::string> inputs,
                                    std::span<const std::string> outputs,
                                    std::size_t max_vectors,
                                    std::uint64_t seed) {
  Simulator sa(a), sb(b);
  EquivalenceResult result;

  const std::size_t n = inputs.size();
  const bool exhaustive = n < 20 && (std::size_t{1} << n) <= max_vectors;
  const std::size_t total =
      exhaustive ? (std::size_t{1} << n) : max_vectors;
  Xoshiro256 rng(seed);

  for (std::size_t k = 0; k < total; ++k) {
    std::uint64_t bits = exhaustive ? k : rng();
    std::map<std::string, V> vec;
    for (std::size_t i = 0; i < n; ++i) {
      vec[inputs[i]] = ((bits >> i) & 1) ? V::k1 : V::k0;
    }
    SolveResult ra = sa.solve(vec);
    SolveResult rb = sb.solve(vec);
    ++result.vectors_checked;

    bool inconclusive = !ra.converged || !rb.converged;
    for (const std::string& out : outputs) {
      auto na = a.find_net(out);
      auto nb = b.find_net(out);
      SUBG_CHECK_MSG(na && nb, "output net '" << out << "' missing");
      const V va = ra.value(*na);
      const V vb = rb.value(*nb);
      const bool da = va == V::k0 || va == V::k1;
      const bool db = vb == V::k0 || vb == V::k1;
      if (da && db && va != vb) {
        result.equivalent = false;
        std::ostringstream os;
        os << "output " << out << ": " << to_char(va) << " vs " << to_char(vb)
           << " for inputs {";
        for (std::size_t i = 0; i < n; ++i) {
          if (i) os << ", ";
          os << inputs[i] << '=' << (((bits >> i) & 1) ? '1' : '0');
        }
        os << '}';
        result.counterexample = os.str();
        return result;
      }
      if (!da || !db) inconclusive = true;
    }
    if (inconclusive) ++result.inconclusive;
  }
  return result;
}

}  // namespace subg::sim
