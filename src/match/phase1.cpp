#include "match/phase1.hpp"

#include <algorithm>
#include <unordered_map>

#include "graph/csr_core.hpp"
#include "graph/shard_plan.hpp"
#include "match/host_labels.hpp"
#include "obs/metrics.hpp"
#include "util/arena.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"

namespace subg {

namespace {

/// Vertex kind selector for the alternating rounds.
enum class Kind { kNet, kDevice };

struct Phase1State {
  const CircuitGraph& s;
  const CircuitGraph& g;
  HostLabelCache& cache;
  ThreadPool* pool = nullptr;
  /// Non-null = the csr core layout (flat SoA edge walks, arena-backed
  /// censuses); null = the legacy CircuitGraph walks. Labels, prunes, and
  /// every counter come out identical either way.
  const CsrCore* s_core = nullptr;
  const CsrCore* g_core = nullptr;
  /// Per-round scratch for the flat censuses (csr mode only); reserved
  /// once, reset per census, never grown mid-round.
  Arena arena;
  /// Pattern-side edge contributions computed (work counter; counted by
  /// the same rule in both cores).
  std::uint64_t relabel_ops = 0;
  HostLabelCache::RailKey rail_key;

  /// Optional host shard plan: consistency sweeps run per region, with the
  /// round-0 prefilter bulk-skip (see consistency_sharded). Byte-identical
  /// to the monolithic sweep by construction.
  const ShardPlan* shards = nullptr;
  /// Per-shard round-0 skip flags (sized to the plan), for the counters.
  std::vector<std::uint8_t> shard_skip_net;
  std::vector<std::uint8_t> shard_skip_dev;
  /// Sharded-sweep scratch (per-lane census columns and prune counts),
  /// reused across rounds.
  std::vector<std::uint64_t> shard_cnt;
  std::vector<std::size_t> shard_pruned;

  std::vector<Label> label_s;
  std::vector<Label> scratch_s;
  std::vector<bool> valid_s;  // pattern: valid (not corrupt)
  /// Host: still a possible image of a valid vertex. Bytes, not bits: the
  /// sharded sweep writes lanes in parallel, and shards own disjoint
  /// vertices — distinct bytes are race-free where vector<bool> words are
  /// not.
  std::vector<std::uint8_t> possible_g;
  /// Host vertices treated as special for THIS match: a host net is special
  /// iff the pattern declares a same-named global (paper §IV.A — special
  /// signals are matched by name). A host rail that the pattern does not
  /// name is an ordinary net here.
  std::vector<bool> special_g;
  /// Host labels after `round` relabeling steps (shared via the cache).
  const std::vector<Label>* label_g;
  std::size_t round = 0;

  explicit Phase1State(const CircuitGraph& pattern, const CircuitGraph& host,
                       HostLabelCache& host_cache, const Phase1Options& options)
      : s(pattern),
        g(host),
        cache(host_cache),
        pool(options.pool),
        s_core(options.pattern_core),
        g_core(options.host_core),
        shards(options.shards) {
    if (shards != nullptr) {
      shard_skip_net.assign(shards->shards().size(), 0);
      shard_skip_dev.assign(shards->shards().size(), 0);
    }
    if (s_core != nullptr) {
      SUBG_CHECK_MSG(&s_core->graph() == &s,
                     "pattern csr core was built over a different graph");
      // Worst case one census holds live at a time: the sorted label
      // column plus the unique-label column and two count columns, all
      // bounded by the pattern vertex count (plus alignment slack).
      arena.reserve(s.vertex_count() *
                        (2 * sizeof(Label) + 2 * sizeof(std::uint32_t)) +
                    4 * alignof(std::max_align_t));
    }
    label_s.resize(s.vertex_count());
    for (Vertex v = 0; v < s.vertex_count(); ++v) label_s[v] = s.initial_label(v);
    scratch_s = label_s;

    // Resolve the pattern's rails against the host by name; they form the
    // cache key and are excluded from candidacy.
    special_g.assign(g.vertex_count(), false);
    const Netlist& pnl = s.netlist();
    const Netlist& hnl = g.netlist();
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (!s.is_special(v)) continue;
      auto hn = hnl.find_net(pnl.net_name(s.net_of(v)));
      if (hn.has_value()) {
        const Vertex hv = g.vertex_of(*hn);
        special_g[hv] = true;
        rail_key.emplace_back(hv, s.initial_label(v));
      }
    }
    // Sort AND deduplicate: two pattern specials resolving to the same host
    // net (aliased globals) must not leave a duplicate entry in the cache
    // key — that would miss the cache and double-apply the rail override.
    HostLabelCache::normalize(rail_key);
    label_g = &cache.labels(rail_key, 0, pool, g_core);

    valid_s.assign(s.vertex_count(), true);
    for (NetId port : pnl.ports()) {
      if (!pnl.is_global(port)) valid_s[s.vertex_of(port)] = false;
    }
    // Host: special nets are matched by name, never by candidate search.
    possible_g.assign(g.vertex_count(), 1);
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (special_g[v]) possible_g[v] = 0;
    }
  }

  [[nodiscard]] static bool kind_of(const CircuitGraph& graph, Vertex v,
                                    Kind kind) {
    return kind == Kind::kDevice ? graph.is_device(v) : graph.is_net(v);
  }

  /// Non-special pattern vertices still valid (both kinds) — the auditor's
  /// monotonicity census.
  [[nodiscard]] std::size_t valid_count() const {
    std::size_t n = 0;
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (!s.is_special(v) && valid_s[v]) ++n;
    }
    return n;
  }

  /// One synchronous relabeling round over all vertices of `kind`.
  /// Pattern vertices whose neighbor (of the other kind) is corrupt become
  /// corrupt themselves instead of being relabeled; host labels advance via
  /// the shared cache.
  void relabel_round(Kind kind) {
    std::size_t audit_valid_before = 0;
    if constexpr (kAuditEnabled) audit_valid_before = valid_count();
    std::uint64_t ops = 0;
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (!kind_of(s, v, kind) || s.is_special(v) || !valid_s[v]) continue;
      Label sum = 0;
      bool corrupt = false;
      if (s_core != nullptr) {
        const std::span<const Vertex> to = s_core->neighbors(v);
        const std::span<const Label> coeff = s_core->coefficients(v);
        for (std::size_t i = 0; i < to.size(); ++i) {
          if (!valid_s[to[i]]) {
            corrupt = true;
            break;
          }
          sum += edge_contribution(coeff[i], label_s[to[i]]);
          ++ops;
        }
      } else {
        for (const auto& e : s.edges(v)) {
          if (!valid_s[e.to]) {
            corrupt = true;
            break;
          }
          sum += edge_contribution(e.coefficient, label_s[e.to]);
          ++ops;
        }
      }
      if (corrupt) {
        valid_s[v] = false;
      } else {
        scratch_s[v] = relabel(label_s[v], sum);
      }
    }
    relabel_ops += ops;
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (kind_of(s, v, kind) && !s.is_special(v) && valid_s[v]) {
        label_s[v] = scratch_s[v];
      }
    }
    if constexpr (kAuditEnabled) {
      // Monotonicity (paper §III): corruption only ever spreads; a round
      // never resurrects a corrupt vertex.
      SUBG_AUDIT_MSG(valid_count() <= audit_valid_before,
                     "phase1 audit: valid set grew during a relabel round");
      // Corrupt-bit propagation: a vertex of `kind` that survived this
      // round can have no corrupt neighbor (neighbors are the other kind
      // and did not change validity this round).
      for (Vertex v = 0; v < s.vertex_count(); ++v) {
        if (!kind_of(s, v, kind) || s.is_special(v) || !valid_s[v]) continue;
        for (const auto& e : s.edges(v)) {
          SUBG_AUDIT_MSG(valid_s[e.to],
                         "phase1 audit: valid vertex kept a corrupt neighbor");
        }
      }
    }
    ++round;
    label_g = &cache.labels(rail_key, round, pool, g_core);
  }

  [[nodiscard]] bool any_valid(Kind kind) const {
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (kind_of(s, v, kind) && !s.is_special(v) && valid_s[v]) return true;
    }
    return false;
  }

  /// (valid vertex count, distinct label count) over valid pattern vertices
  /// of a kind — used to detect that refinement has stabilized (patterns
  /// with few or no ports may never corrupt a whole side). The csr mode
  /// sorts an arena column instead of filling a hash map; the pair is a
  /// pure function of the labels either way.
  [[nodiscard]] std::pair<std::size_t, std::size_t> refinement_shape(
      Kind kind) {
    if (s_core != nullptr) {
      arena.reset();
      std::span<Label> labels = arena.take<Label>(s.vertex_count());
      std::size_t count = 0;
      for (Vertex v = 0; v < s.vertex_count(); ++v) {
        if (kind_of(s, v, kind) && !s.is_special(v) && valid_s[v]) {
          labels[count++] = label_s[v];
        }
      }
      std::sort(labels.begin(), labels.begin() + count);
      std::size_t distinct = 0;
      for (std::size_t i = 0; i < count; ++i) {
        if (i == 0 || labels[i] != labels[i - 1]) ++distinct;
      }
      return {count, distinct};
    }
    std::unordered_map<Label, std::size_t> parts;
    std::size_t count = 0;
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (kind_of(s, v, kind) && !s.is_special(v) && valid_s[v]) {
        ++count;
        ++parts[label_s[v]];
      }
    }
    return {count, parts.size()};
  }

  bool prune = true;
  /// Host vertices pruned by the consistency checks, for the metrics sink.
  std::size_t pruned = 0;

  /// Prune host vertices whose label matches no valid pattern partition;
  /// detect infeasibility when a host partition is smaller than its valid
  /// pattern twin. Returns false on infeasibility. Both paths prune the
  /// same host vertices and reach the same verdict: the censuses are pure
  /// functions of the label multisets, independent of container.
  [[nodiscard]] bool consistency(Kind kind) {
    if (!prune) return true;
    if (shards != nullptr) return consistency_sharded(kind);
    if (s_core != nullptr) return consistency_flat(kind);
    std::unordered_map<Label, std::size_t> s_count;
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (kind_of(s, v, kind) && !s.is_special(v) && valid_s[v]) {
        ++s_count[label_s[v]];
      }
    }
    std::unordered_map<Label, std::size_t> g_count;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (!kind_of(g, v, kind) || !possible_g[v]) continue;
      auto it = s_count.find((*label_g)[v]);
      if (it == s_count.end()) {
        possible_g[v] = false;  // cannot be the image of any valid vertex
        ++pruned;
      } else {
        ++g_count[(*label_g)[v]];
      }
    }
    for (const auto& [lbl, need] : s_count) {
      auto it = g_count.find(lbl);
      const std::size_t have = it == g_count.end() ? 0 : it->second;
      if (have < need) return false;  // no induced subgraph can exist
    }
    return true;
  }

  /// csr-mode consistency: the pattern census is a sorted arena column
  /// (run-length counted), the host sweep binary-searches it. Patterns are
  /// tiny, so the search column lives in L1 where a per-round hash map
  /// would churn the heap.
  [[nodiscard]] bool consistency_flat(Kind kind) {
    arena.reset();
    std::span<Label> labels = arena.take<Label>(s.vertex_count());
    std::size_t n = 0;
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (kind_of(s, v, kind) && !s.is_special(v) && valid_s[v]) {
        labels[n++] = label_s[v];
      }
    }
    std::sort(labels.begin(), labels.begin() + n);
    std::span<Label> uniq = arena.take<Label>(n);
    std::span<std::uint32_t> s_cnt = arena.take<std::uint32_t>(n);
    std::span<std::uint32_t> g_cnt = arena.take<std::uint32_t>(n);
    std::size_t u = 0;
    for (std::size_t i = 0; i < n; ++i) {
      if (u == 0 || uniq[u - 1] != labels[i]) {
        uniq[u] = labels[i];
        s_cnt[u] = 0;
        g_cnt[u] = 0;
        ++u;
      }
      ++s_cnt[u - 1];
    }
    const Label* ubegin = uniq.data();
    const Label* uend = uniq.data() + u;
    for (Vertex v = 0; v < g.vertex_count(); ++v) {
      if (!kind_of(g, v, kind) || !possible_g[v]) continue;
      const Label l = (*label_g)[v];
      const Label* it = std::lower_bound(ubegin, uend, l);
      if (it == uend || *it != l) {
        possible_g[v] = false;  // cannot be the image of any valid vertex
        ++pruned;
      } else {
        ++g_cnt[static_cast<std::size_t>(it - ubegin)];
      }
    }
    for (std::size_t i = 0; i < u; ++i) {
      if (g_cnt[i] < s_cnt[i]) return false;  // no induced subgraph can exist
    }
    return true;
  }

  /// Sharded consistency (both cores route here when a plan is wired in):
  /// the host sweep runs per region on the pool, each lane pruning its own
  /// vertices against the shared sorted pattern-label column and keeping a
  /// private census/prune count; lanes merge in shard-id order. At round 0
  /// a shard whose prefilter proves NO owned vertex of the kind carries a
  /// valid pattern label is bulk-marked impossible without per-vertex label
  /// lookups — precisely the set of vertices the monolithic sweep would
  /// prune one by one (labels at round 0 are the initial labels the plan
  /// indexed; rails are already impossible and contribute to neither path).
  /// The anchor boundary is its own lane, swept every round, never skipped.
  [[nodiscard]] bool consistency_sharded(Kind kind) {
    // Pattern census → sorted distinct labels + needed counts (a pure
    // function of the label multiset, so legacy and csr agree).
    std::vector<Label> sorted;
    sorted.reserve(s.vertex_count());
    for (Vertex v = 0; v < s.vertex_count(); ++v) {
      if (kind_of(s, v, kind) && !s.is_special(v) && valid_s[v]) {
        sorted.push_back(label_s[v]);
      }
    }
    std::sort(sorted.begin(), sorted.end());
    std::vector<Label> uniq;
    std::vector<std::uint64_t> s_cnt;
    for (std::size_t i = 0; i < sorted.size(); ++i) {
      if (uniq.empty() || uniq.back() != sorted[i]) {
        uniq.push_back(sorted[i]);
        s_cnt.push_back(0);
      }
      ++s_cnt.back();
    }
    const std::size_t u = uniq.size();
    const std::vector<ShardPlan::Shard>& regions = shards->shards();
    const std::size_t lanes = regions.size() + 1;  // + the anchor boundary
    const bool device_kind = kind == Kind::kDevice;
    shard_cnt.assign(lanes * u, 0);
    shard_pruned.assign(lanes, 0);

    const std::vector<Label>& lg = *label_g;
    const Label* ubegin = uniq.data();
    const Label* uend = uniq.data() + u;
    auto sweep = [&](std::span<const Vertex> verts, std::uint64_t* cnt,
                     std::size_t* pr) {
      for (Vertex v : verts) {
        if (possible_g[v] == 0) continue;
        const Label l = lg[v];
        const Label* it = std::lower_bound(ubegin, uend, l);
        if (it == uend || *it != l) {
          possible_g[v] = 0;  // cannot be the image of any valid vertex
          ++*pr;
        } else {
          ++cnt[static_cast<std::size_t>(it - ubegin)];
        }
      }
    };
    auto lane = [&](std::size_t i) {
      std::uint64_t* cnt = shard_cnt.data() + i * u;
      std::size_t* pr = &shard_pruned[i];
      if (i == regions.size()) {
        // Anchor lane: the boundary nets (devices are never anchors).
        if (!device_kind) sweep(shards->anchor_nets(), cnt, pr);
        return;
      }
      const ShardPlan::Shard& sh = regions[i];
      const std::span<const Vertex> verts =
          device_kind ? std::span<const Vertex>(sh.devices)
                      : std::span<const Vertex>(sh.nets);
      if (round == 0 && sh.rejects({ubegin, u}, device_kind)) {
        for (Vertex v : verts) {
          if (possible_g[v] != 0) {
            possible_g[v] = 0;
            ++*pr;
          }
        }
        (device_kind ? shard_skip_dev : shard_skip_net)[i] = 1;
        return;
      }
      sweep(verts, cnt, pr);
    };
    if (pool != nullptr) {
      pool->parallel_for(lanes, 1, [&](std::size_t begin, std::size_t end) {
        for (std::size_t i = begin; i < end; ++i) lane(i);
      });
    } else {
      for (std::size_t i = 0; i < lanes; ++i) lane(i);
    }

    // Deterministic merge in shard-id order (sums commute; the order is
    // fixed anyway so the reduction is scheduling-independent by
    // construction, not by arithmetic accident).
    for (std::size_t i = 0; i < lanes; ++i) pruned += shard_pruned[i];
    for (std::size_t j = 0; j < u; ++j) {
      std::uint64_t have = 0;
      for (std::size_t i = 0; i < lanes; ++i) have += shard_cnt[i * u + j];
      if (have < s_cnt[j]) return false;  // no induced subgraph can exist
    }
    return true;
  }
};

}  // namespace

namespace {

/// The refinement loop proper; `st`'s prune counter survives the return so
/// the wrapper can report it to the metrics sink on every exit path.
Phase1Result run_phase1_refinement(const CircuitGraph& pattern,
                                   const CircuitGraph& host,
                                   const Phase1Options& options,
                                   Phase1State& st) {
  Phase1Result result;

  // Initial consistency pass over both sides of the bipartition (Fig 4:
  // degree-/type-infeasible host vertices are pruned before any round).
  if (!st.consistency(Kind::kNet) || !st.consistency(Kind::kDevice)) {
    result.feasible = false;
    return result;
  }

  auto prev_shape = std::make_pair(st.refinement_shape(Kind::kNet),
                                   st.refinement_shape(Kind::kDevice));
  while (result.rounds < options.max_rounds) {
    if (options.budget.interrupted(&result.outcome)) break;
    st.relabel_round(Kind::kNet);
    ++result.rounds;
    if (!st.any_valid(Kind::kNet)) break;
    if (!st.consistency(Kind::kNet)) {
      result.feasible = false;
      return result;
    }

    st.relabel_round(Kind::kDevice);
    ++result.rounds;
    if (!st.any_valid(Kind::kDevice)) break;
    if (!st.consistency(Kind::kDevice)) {
      result.feasible = false;
      return result;
    }

    // No vertex corrupted and no partition split this full cycle ⇒
    // refinement is stable and further rounds cannot sharpen the CV.
    auto shape = std::make_pair(st.refinement_shape(Kind::kNet),
                                st.refinement_shape(Kind::kDevice));
    if (shape == prev_shape) break;
    prev_shape = shape;
  }

  // Candidate-vector selection: for every label of a valid pattern vertex,
  // count eligible host vertices; pick the label with the smallest host
  // partition (least Phase II work). Ties break deterministically.
  std::unordered_map<Label, std::pair<std::size_t, Vertex>> s_parts;  // count, first
  for (Vertex v = 0; v < pattern.vertex_count(); ++v) {
    if (pattern.is_special(v) || !st.valid_s[v]) continue;
    auto [it, inserted] = s_parts.try_emplace(st.label_s[v], 1, v);
    if (!inserted) {
      ++it->second.first;
      it->second.second = std::min(it->second.second, v);
    }
  }
  SUBG_CHECK_MSG(!s_parts.empty(),
                 "phase I: no valid pattern vertices remain (pattern is all "
                 "ports/globals?)");

  const std::vector<Label>& label_g = *st.label_g;
  std::unordered_map<Label, std::size_t> g_count;
  for (Vertex v = 0; v < host.vertex_count(); ++v) {
    if (!st.possible_g[v]) continue;
    if (s_parts.contains(label_g[v])) ++g_count[label_g[v]];
  }

  bool found = false;
  Label best_label = 0;
  std::size_t best_g = 0, best_s = 0;
  for (const auto& [lbl, part] : s_parts) {
    auto it = g_count.find(lbl);
    const std::size_t have = it == g_count.end() ? 0 : it->second;
    if (have < part.first) {
      // Smaller host partition than pattern partition: infeasible.
      result.feasible = false;
      return result;
    }
    if (!found || have < best_g ||
        (have == best_g && (part.first < best_s ||
                            (part.first == best_s && lbl < best_label)))) {
      found = true;
      best_label = lbl;
      best_g = have;
      best_s = part.first;
    }
  }
  SUBG_CHECK(found);

  result.key = s_parts[best_label].second;
  result.key_is_device = pattern.is_device(result.key);
  result.candidates.reserve(best_g);
  for (Vertex v = 0; v < host.vertex_count(); ++v) {
    if (st.possible_g[v] && label_g[v] == best_label) {
      result.candidates.push_back(v);
    }
  }
  // Candidate-vector ⊆ host-partition consistency: the vector just built
  // must agree with the census taken above (two independent sweeps), be at
  // least as large as the pattern partition it images, and never contain a
  // by-name-matched special net (possible_g excludes them from round 0 and
  // is only ever cleared).
  SUBG_AUDIT_MSG(result.candidates.size() == best_g,
                 "phase1 audit: candidate vector disagrees with the host "
                 "partition census");
  SUBG_AUDIT_MSG(best_g >= best_s,
                 "phase1 audit: candidate vector smaller than its pattern "
                 "partition");
  if constexpr (kAuditEnabled) {
    for (Vertex v : result.candidates) {
      SUBG_AUDIT_MSG(!st.special_g[v],
                     "phase1 audit: special host net in the candidate vector");
    }
  }
  for (Vertex v = 0; v < pattern.vertex_count(); ++v) {
    if (!pattern.is_special(v) && st.valid_s[v]) ++result.valid_pattern_vertices;
  }
  for (Vertex v = 0; v < host.vertex_count(); ++v) {
    if (st.possible_g[v]) ++result.possible_host_vertices;
  }
  if (options.keep_labels) {
    result.pattern_labels = st.label_s;
    result.pattern_valid = st.valid_s;
    result.host_labels = *st.label_g;
  }

  SUBG_DEBUG("phase1: rounds=" << result.rounds << " cv=" << result.candidates.size()
                               << " key=" << pattern.vertex_name(result.key));
  return result;
}

}  // namespace

Phase1Result run_phase1(const CircuitGraph& pattern, const CircuitGraph& host,
                        const Phase1Options& options) {
  SUBG_FAULT_POINT("phase1");
  SUBG_CHECK_MSG(pattern.device_count() > 0, "pattern has no devices");

  // Fall back to a call-local cache when the caller does not share one.
  HostLabelCache local_cache(host);
  HostLabelCache& cache =
      options.host_cache != nullptr ? *options.host_cache : local_cache;
  SUBG_CHECK_MSG(&cache.host() == &host,
                 "host label cache was built over a different host graph");

  if (options.shards != nullptr) {
    SUBG_CHECK_MSG(&options.shards->graph() == &host,
                   "host shard plan was built over a different host graph");
  }

  Phase1State st(pattern, host, cache, options);
  st.prune = options.consistency_checks;

  Phase1Result result = run_phase1_refinement(pattern, host, options, st);
  result.relabel_ops = st.relabel_ops;
  if (st.shards != nullptr) {
    result.shards_total = st.shards->shards().size();
    for (std::size_t i = 0; i < result.shards_total; ++i) {
      const bool skip_net = st.shard_skip_net[i] != 0;
      const bool skip_dev = st.shard_skip_dev[i] != 0;
      if (skip_net || skip_dev) ++result.shards_skipped;
      if (skip_net && skip_dev) ++result.shards_prefilter_rejects;
    }
  }

  if (options.metrics != nullptr) {
    obs::Metrics& m = *options.metrics;
    m.add("phase1.runs");
    m.add("phase1.rounds", result.rounds);
    m.add("phase1.relabel_ops", result.relabel_ops);
    m.add("phase1.consistency_prunes", st.pruned);
    if (st.shards != nullptr) {
      // Recorded only for sharded runs, so an unsharded metric tree is
      // byte-identical to the pre-shard pipeline's.
      m.add("phase1.shards.total", result.shards_total);
      m.add("phase1.shards.skipped", result.shards_skipped);
      m.add("phase1.shards.prefilter_rejects", result.shards_prefilter_rejects);
      m.gauge("phase1.shards.bytes", static_cast<double>(st.shards->bytes()));
    }
    if (st.s_core != nullptr) {
      m.gauge("csr.arena_bytes",
              static_cast<double>(st.arena.high_water_bytes()));
    }
    if (result.outcome != RunOutcome::kComplete) m.add("phase1.interrupted");
    if (!result.feasible) {
      m.add("phase1.infeasible");
    } else {
      m.add("phase1.candidates", result.candidates.size());
      // Corruption front: non-special pattern vertices reached by the
      // corruption spread from the ports when refinement stopped.
      std::size_t matchable = 0;
      for (Vertex v = 0; v < pattern.vertex_count(); ++v) {
        if (!pattern.is_special(v)) ++matchable;
      }
      m.add("phase1.corrupt_pattern_vertices",
            matchable - result.valid_pattern_vertices);
      m.gauge("phase1.max_candidates",
              static_cast<double>(result.candidates.size()));
    }
    // A caller-shared cache spans many runs; its totals are recorded once
    // by whoever owns it (see extract_gates). The local fallback cache
    // dies here, so its reuse numbers are recorded now.
    if (options.host_cache == nullptr) {
      record_cache_stats(&m, local_cache.stats());
    }
  }
  return result;
}

}  // namespace subg
