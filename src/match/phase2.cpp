#include "match/phase2.hpp"

#include <algorithm>
#include <bit>
#include <set>

#include "graph/csr_core.hpp"
#include "match/verify.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace subg {

namespace {
/// Relabel base: devices restate their type each pass, nets have no
/// trustworthy invariant (an external net's host degree differs from its
/// pattern degree), so they start from nothing (paper Table 1: "D3: A = n +
/// sKV" vs "N2: B = sA").
Label base_label(const CircuitGraph& graph, Vertex v) {
  return graph.is_device(v) ? graph.initial_label(v) : kNoLabel;
}

/// Heterogeneous comparator for binary-searching the flat (label, member)
/// census by label.
struct LabelLess {
  bool operator()(const std::pair<Label, std::uint32_t>& a, Label b) const {
    return a.first < b;
  }
  bool operator()(Label a, const std::pair<Label, std::uint32_t>& b) const {
    return a < b.first;
  }
};
}  // namespace

Phase2Verifier::Phase2Verifier(const CircuitGraph& pattern,
                               const CircuitGraph& host, Phase2Options options)
    : s_(pattern), g_(host), options_(options) {
  if (options_.pattern_core != nullptr) {
    SUBG_CHECK_MSG(&options_.pattern_core->graph() == &s_,
                   "pattern csr core was built over a different graph");
  }
  if (options_.host_core != nullptr) {
    SUBG_CHECK_MSG(&options_.host_core->graph() == &g_,
                   "host csr core was built over a different graph");
  }
  special_image_.assign(s_.vertex_count(), kInvalidVertex);
  host_fixed_label_.assign(g_.vertex_count(), kNoLabel);

  // Resolve pattern globals to same-named host nets (paper §IV.A: special
  // signals mean the same thing in both circuits, so they match by name;
  // the host need not have marked the net global itself). An unused
  // (degree-0) pattern global places no constraint.
  const Netlist& pnl = s_.netlist();
  const Netlist& hnl = g_.netlist();
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (!s_.is_special(v)) {
      ++matchable_total_;
      continue;
    }
    const std::string& name = pnl.net_name(s_.net_of(v));
    auto hn = hnl.find_net(name);
    if (!hn) {
      if (s_.degree(v) > 0) {
        globals_resolved_ = false;
        SUBG_WARN("pattern global net '" << name
                                         << "' has no same-named net in host");
      }
      continue;
    }
    special_image_[v] = g_.vertex_of(*hn);
    host_fixed_label_[g_.vertex_of(*hn)] = s_.initial_label(v);
  }

  // Signature profiles for the prefilter. Rail pins are skipped: they bind
  // by name, and leaving the host's rail pins as unconstrained "extra"
  // entries in the matching below only weakens the filter — never makes it
  // unsound.
  profile_.resize(s_.vertex_count());
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v)) continue;
    PinProfile& p = profile_[v];
    if (s_.is_device(v)) {
      for (const auto& e : s_.edges(v)) {
        if (s_.is_special(e.to)) continue;
        const auto d = static_cast<std::uint32_t>(s_.degree(e.to));
        if (pnl.is_port(s_.net_of(e.to))) {
          p.lower.push_back(d);
        } else {
          p.exact.push_back(d);
        }
      }
      std::sort(p.exact.begin(), p.exact.end());
      std::sort(p.lower.begin(), p.lower.end());
    } else {
      p.degree = static_cast<std::uint32_t>(s_.degree(v));
      p.is_port = pnl.is_port(s_.net_of(v));
      for (const auto& e : s_.edges(v)) {
        p.nbr_labels.push_back(s_.initial_label(e.to));
      }
      std::sort(p.nbr_labels.begin(), p.nbr_labels.end());
    }
  }
}

Label Phase2Verifier::fresh_label(State& st) {
  Label l;
  do {
    l = st.rng();
  } while (l == kNoLabel);
  return l;
}

// --- live-slot bitset ------------------------------------------------------

void Phase2Verifier::live_push(State& st) {
  const std::size_t i = st.slots.size() - 1;
  if (i % 64 == 0) st.live.push_back(0);
  st.live[i / 64] |= std::uint64_t{1} << (i % 64);
}

void Phase2Verifier::live_refresh(State& st, std::uint32_t i) {
  const Slot& slot = st.slots[i];
  const std::uint64_t bit = std::uint64_t{1} << (i % 64);
  if (!slot.excluded && slot.matched_to == kInvalidVertex) {
    st.live[i / 64] |= bit;
  } else {
    st.live[i / 64] &= ~bit;
  }
}

void Phase2Verifier::live_shrink(State& st, std::size_t slot_count) {
  st.live.resize((slot_count + 63) / 64);
  if (slot_count % 64 != 0) {
    // Clear the ghost bits of truncated slots in the tail word so bitset
    // equality (and the set-bit iteration) stays canonical.
    st.live.back() &= (std::uint64_t{1} << (slot_count % 64)) - 1;
  }
}

bool Phase2Verifier::live_test(const State& st, std::size_t i) {
  return (st.live[i / 64] >> (i % 64)) & 1;
}

// --- trail-journaled mutators ----------------------------------------------

void Phase2Verifier::set_label_s(State& st, Vertex v, Label l) {
  if (st.label_s[v] == l) return;
  if (trail_depth_ > 0) {
    trail_.push_back({TrailEntry::Kind::kLabelS, v, st.label_s[v]});
  }
  st.label_s[v] = l;
}

void Phase2Verifier::set_considered_s(State& st, Vertex v) {
  if (st.considered_s[v]) return;
  if (trail_depth_ > 0) {
    trail_.push_back({TrailEntry::Kind::kConsideredS, v, 0});
  }
  st.considered_s[v] = true;
}

void Phase2Verifier::set_safe_s(State& st, Vertex v, bool safe) {
  if (st.safe_s[v] == safe) return;
  if (trail_depth_ > 0) {
    trail_.push_back({TrailEntry::Kind::kSafeS, v, safe ? 0u : 1u});
  }
  st.safe_s[v] = safe;
}

void Phase2Verifier::set_matched_s(State& st, Vertex v, Vertex g) {
  if (st.matched_s[v] == g) return;
  if (trail_depth_ > 0) {
    trail_.push_back({TrailEntry::Kind::kMatchedS, v, st.matched_s[v]});
  }
  st.matched_s[v] = g;
}

void Phase2Verifier::set_slot_label(State& st, std::uint32_t i, Label l) {
  if (st.slots[i].label == l) return;
  if (trail_depth_ > 0) {
    trail_.push_back({TrailEntry::Kind::kSlotLabel, i, st.slots[i].label});
  }
  st.slots[i].label = l;
}

void Phase2Verifier::set_slot_safe(State& st, std::uint32_t i, bool safe) {
  if (st.slots[i].safe == safe) return;
  if (trail_depth_ > 0) {
    trail_.push_back({TrailEntry::Kind::kSlotSafe, i, safe ? 0u : 1u});
  }
  st.slots[i].safe = safe;
}

void Phase2Verifier::set_slot_excluded(State& st, std::uint32_t i,
                                       bool excluded) {
  if (st.slots[i].excluded == excluded) return;
  if (trail_depth_ > 0) {
    trail_.push_back({TrailEntry::Kind::kSlotExcluded, i, excluded ? 0u : 1u});
  }
  st.slots[i].excluded = excluded;
  live_refresh(st, i);
}

void Phase2Verifier::set_slot_matched_to(State& st, std::uint32_t i,
                                         Vertex s) {
  if (st.slots[i].matched_to == s) return;
  if (trail_depth_ > 0) {
    trail_.push_back(
        {TrailEntry::Kind::kSlotMatchedTo, i, st.slots[i].matched_to});
  }
  st.slots[i].matched_to = s;
  live_refresh(st, i);
}

Phase2Verifier::TrailMark Phase2Verifier::trail_mark(const State& st) const {
  return TrailMark{trail_.size(),       st.slots.size(), st.matched_count,
                   st.safe_unmatched,   st.passes,       st.rng};
}

void Phase2Verifier::undo_to(State& st, const TrailMark& mark) {
  std::size_t reverted = trail_.size() - mark.entries;
  for (std::size_t i = trail_.size(); i > mark.entries; --i) {
    const TrailEntry& e = trail_[i - 1];
    switch (e.kind) {
      case TrailEntry::Kind::kLabelS:
        st.label_s[e.index] = e.old_value;
        break;
      case TrailEntry::Kind::kConsideredS:
        st.considered_s[e.index] = false;
        break;
      case TrailEntry::Kind::kSafeS:
        st.safe_s[e.index] = e.old_value != 0;
        break;
      case TrailEntry::Kind::kMatchedS:
        st.matched_s[e.index] = static_cast<Vertex>(e.old_value);
        break;
      case TrailEntry::Kind::kSlotLabel:
        st.slots[e.index].label = e.old_value;
        break;
      case TrailEntry::Kind::kSlotSafe:
        st.slots[e.index].safe = e.old_value != 0;
        break;
      case TrailEntry::Kind::kSlotExcluded:
        st.slots[e.index].excluded = e.old_value != 0;
        live_refresh(st, e.index);
        break;
      case TrailEntry::Kind::kSlotMatchedTo:
        st.slots[e.index].matched_to = static_cast<Vertex>(e.old_value);
        live_refresh(st, e.index);
        break;
    }
  }
  trail_.resize(mark.entries);
  // Slots only grow inside a branch, so rollback truncates; entries above
  // were undone first, while their indices were still in range.
  reverted += st.slots.size() - mark.slots;
  for (std::size_t i = st.slots.size(); i > mark.slots; --i) {
    st.slot_of.erase(st.slots[i - 1].vertex);
  }
  st.slots.resize(mark.slots);
  live_shrink(st, mark.slots);
  st.matched_count = mark.matched_count;
  st.safe_unmatched = mark.safe_unmatched;
  st.passes = mark.passes;
  st.rng = mark.rng;
  stats_.trail_undos += reverted;
}

bool Phase2Verifier::states_equal(const State& a, const State& b) {
  return a.label_s == b.label_s && a.considered_s == b.considered_s &&
         a.safe_s == b.safe_s && a.matched_s == b.matched_s &&
         a.matched_count == b.matched_count &&
         a.safe_unmatched == b.safe_unmatched && a.slot_of == b.slot_of &&
         a.slots == b.slots && a.live == b.live && a.rng == b.rng &&
         a.passes == b.passes;
}

// --- neighborhood-signature prefilter --------------------------------------

bool Phase2Verifier::device_compatible(Vertex s, Vertex g) {
  const PinProfile& p = profile_[s];
  if (p.exact.empty() && p.lower.empty()) return true;
  std::span<const std::uint32_t> hd;
  if (options_.host_core != nullptr) {
    hd = options_.host_core->sorted_neighbor_degrees(g);
  } else {
    // Host degrees never change while the verifier lives, so sort each
    // device's neighbor degrees once and serve every later query (same
    // candidate or not) from the memo — the csr core precomputes the same
    // sequence at build time.
    if (host_degree_memo_offset_.empty()) {
      host_degree_memo_offset_.assign(g_.vertex_count(), kNoMemo);
    }
    std::size_t& off = host_degree_memo_offset_[g];
    if (off == kNoMemo) {
      off = host_degree_memo_.size();
      for (const auto& e : g_.edges(g)) {
        host_degree_memo_.push_back(
            static_cast<std::uint32_t>(g_.degree(e.to)));
      }
      std::sort(host_degree_memo_.begin() +
                    static_cast<std::ptrdiff_t>(off),
                host_degree_memo_.end());
    }
    hd = {host_degree_memo_.data() + off, g_.degree(g)};
  }
  // Injectively assign every pattern pin requirement to a distinct host pin
  // (extra host pins — e.g. the candidate's rail pins — stay free). Exact
  // requirements first: equal values are interchangeable, so consuming any
  // match preserves feasibility. Then the lower bounds greedily take the
  // smallest remaining value that satisfies them, which is exact for
  // one-sided intervals.
  degree_rem_scratch_.clear();
  std::size_t j = 0;
  for (const std::uint32_t need : p.exact) {
    for (; j < hd.size() && hd[j] < need; ++j) {
      degree_rem_scratch_.push_back(hd[j]);
    }
    if (j >= hd.size() || hd[j] != need) return false;
    ++j;
  }
  for (; j < hd.size(); ++j) degree_rem_scratch_.push_back(hd[j]);
  std::size_t k = 0;
  for (const std::uint32_t need : p.lower) {
    while (k < degree_rem_scratch_.size() && degree_rem_scratch_[k] < need) {
      ++k;
    }
    if (k >= degree_rem_scratch_.size()) return false;
    ++k;
  }
  return true;
}

bool Phase2Verifier::net_compatible(Vertex s, Vertex g) {
  const PinProfile& p = profile_[s];
  const auto hd = static_cast<std::uint32_t>(g_.degree(g));
  // Internal pattern nets are induced (final verification enforces it), so
  // their host image must have exactly the pattern degree; ports may fan
  // out further in the host.
  if (p.is_port ? hd < p.degree : hd != p.degree) return false;
  host_label_scratch_.clear();
  if (options_.host_core != nullptr) {
    for (const Vertex to : options_.host_core->neighbors(g)) {
      host_label_scratch_.push_back(options_.host_core->initial_label(to));
    }
  } else {
    for (const auto& e : g_.edges(g)) {
      host_label_scratch_.push_back(g_.initial_label(e.to));
    }
  }
  std::sort(host_label_scratch_.begin(), host_label_scratch_.end());
  // Each pattern pin maps to a distinct host pin on a device of the same
  // type: multiset inclusion of the neighbor-type sequences.
  std::size_t k = 0;
  for (const Label need : p.nbr_labels) {
    while (k < host_label_scratch_.size() && host_label_scratch_[k] < need) {
      ++k;
    }
    if (k >= host_label_scratch_.size() || host_label_scratch_[k] != need) {
      return false;
    }
    ++k;
  }
  return true;
}

bool Phase2Verifier::signature_ok(Vertex s, Vertex g) {
  if (s_.is_special(s)) return true;
  const std::uint64_t key = (static_cast<std::uint64_t>(s) << 32) | g;
  auto it = compat_cache_.find(key);
  if (it != compat_cache_.end()) {
    // Nogood memo hit: the refutation (or acceptance) was derived earlier
    // in THIS candidate's search — sibling guess branches skip the recheck.
    if (!it->second) ++stats_.nogood_hits;
    return it->second;
  }
  // A type-mismatched pair can never complete (extract_mapping requires the
  // images to preserve device/net kind), so refuting it is exact.
  bool ok = s_.is_device(s) == g_.is_device(g) &&
            (s_.is_device(s) ? device_compatible(s, g)
                             : net_compatible(s, g));
  if (!ok) {
    ++stats_.domain_prunes;
  } else if (options_.pattern_paths != nullptr &&
             options_.host_paths != nullptr &&
             analyze::PathLabels::refutes(*options_.pattern_paths, s,
                                          *options_.host_paths, g)) {
    // Supplemental path-label refuter: the pattern anchor owns more closed
    // walks through some tracked net-degree class than the host vertex can
    // supply, so no embedding maps s onto g (analyze.hpp proves soundness).
    ok = false;
    ++stats_.path_label_prunes;
  }
  compat_cache_.emplace(key, ok);
  return ok;
}

// --- search ----------------------------------------------------------------

std::uint32_t Phase2Verifier::ensure_slot(State& st, Vertex g) {
  auto [it, inserted] =
      st.slot_of.try_emplace(g, static_cast<std::uint32_t>(st.slots.size()));
  if (inserted) {
    Slot slot;
    slot.vertex = g;
    st.slots.push_back(slot);
    live_push(st);
  }
  return it->second;
}

void Phase2Verifier::postulate(State& st, Vertex s, Vertex g) {
  SUBG_AUDIT_MSG(!s_.is_special(s),
                 "phase2 audit: special rails match by name, never by "
                 "postulate");
  SUBG_AUDIT_MSG(st.matched_s[s] == kInvalidVertex,
                 "phase2 audit: pattern vertex postulated twice");
  ++stats_.bindings;
  const Label l = fresh_label(st);
  set_label_s(st, s, l);
  set_considered_s(st, s);
  set_safe_s(st, s, true);
  set_matched_s(st, s, g);
  ++st.matched_count;
  SUBG_AUDIT_MSG(st.matched_count <= matchable_total_,
                 "phase2 audit: matched count exceeds the matchable pattern "
                 "vertices");

  const std::uint32_t i = ensure_slot(st, g);
  SUBG_AUDIT_MSG(st.slots[i].matched_to == kInvalidVertex,
                 "phase2 audit: host vertex bound to two pattern vertices");
  set_slot_label(st, i, l);
  set_slot_safe(st, i, true);
  set_slot_excluded(st, i, false);
  set_slot_matched_to(st, i, s);
}

void Phase2Verifier::reset_candidate_scratch() {
  SUBG_AUDIT_MSG(trail_depth_ == 0,
                 "phase2 audit: guess frames leaked across candidates");
  trail_.clear();
  trail_depth_ = 0;
  compat_cache_.clear();
}

std::optional<SubcircuitInstance> Phase2Verifier::verify(Vertex key,
                                                         Vertex candidate) {
  SUBG_FAULT_POINT("phase2");
  ++stats_.candidates_tried;
  if (!globals_resolved_) return std::nullopt;
  if (s_.is_device(key) != g_.is_device(candidate)) return std::nullopt;
  if (s_.is_device(key)) {
    // Cheap pre-check: the candidate must at least share the device type.
    if (s_.initial_label(key) != g_.initial_label(candidate)) return std::nullopt;
  }
  reset_candidate_scratch();
  if (options_.signature_filter && !signature_ok(key, candidate)) {
    return std::nullopt;
  }

  State st;
  st.label_s.assign(s_.vertex_count(), kNoLabel);
  st.considered_s.assign(s_.vertex_count(), false);
  st.safe_s.assign(s_.vertex_count(), false);
  st.matched_s.assign(s_.vertex_count(), kInvalidVertex);
  st.rng = SplitMix64(options_.seed ^ splitmix64_mix(candidate));
  postulate(st, key, candidate);
  record_trace(st, 0);

  SubcircuitInstance inst;
  if (run(st, 0, &inst) == Outcome::kSuccess) {
    ++stats_.candidates_matched;
    return inst;
  }
  return std::nullopt;
}

std::vector<SubcircuitInstance> Phase2Verifier::enumerate(Vertex key,
                                                          Vertex candidate,
                                                          std::size_t limit) {
  SUBG_FAULT_POINT("phase2");
  ++stats_.candidates_tried;
  std::vector<SubcircuitInstance> found;
  if (!globals_resolved_ || limit == 0) return found;
  if (s_.is_device(key) != g_.is_device(candidate)) return found;
  if (s_.is_device(key) &&
      s_.initial_label(key) != g_.initial_label(candidate)) {
    return found;
  }
  reset_candidate_scratch();
  if (options_.signature_filter && !signature_ok(key, candidate)) {
    return found;
  }

  State st;
  st.label_s.assign(s_.vertex_count(), kNoLabel);
  st.considered_s.assign(s_.vertex_count(), false);
  st.safe_s.assign(s_.vertex_count(), false);
  st.matched_s.assign(s_.vertex_count(), kInvalidVertex);
  st.rng = SplitMix64(options_.seed ^ splitmix64_mix(candidate));
  postulate(st, key, candidate);
  record_trace(st, 0);

  SubcircuitInstance scratch;
  (void)run(st, 0, &scratch, &found, limit);

  // Automorphic branches revisit the same wiring; dedup on the exact
  // (device image, net image) mapping — the position-indexed vectors, NOT
  // sorted value sets — keeping first-found order (deterministic). Keying
  // on sorted sets would silently merge matches that differ only in the
  // assignment of external nets — e.g. the two orientations of a pass
  // transistor cover the same net set {h1, h2} but are distinct mappings.
  std::set<std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>>
      seen;
  std::vector<SubcircuitInstance> unique;
  // Suppression is pure work-saving: skip it when the budget already
  // expired — an interrupted sweep would otherwise spend unbounded
  // post-deadline time permuting the abandoned completions, and the
  // matcher-level device-set dedup collapses the copies regardless.
  const analyze::Orbits* orbits =
      options_.symmetry_dedup && !options_.budget.interrupted()
          ? options_.pattern_orbits
          : nullptr;
  const std::size_t device_count = s_.netlist().device_count();
  for (SubcircuitInstance& inst : found) {
    std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>> key_map;
    key_map.first.reserve(inst.device_image.size());
    for (DeviceId d : inst.device_image) key_map.first.push_back(d.value);
    key_map.second.reserve(inst.net_image.size());
    for (NetId n : inst.net_image) key_map.second.push_back(n.value);
    if (seen.contains(key_map)) continue;
    // Symmetry-aware dedup (exhaustive, no binding limit): if some pattern
    // automorphism σ turns this mapping into one already recorded, the two
    // cover the same host device set and the matcher-level set dedup would
    // collapse them anyway — suppress the copy here and count it.
    if (orbits != nullptr && !orbits->automorphisms.empty()) {
      bool suppressed = false;
      std::pair<std::vector<std::uint32_t>, std::vector<std::uint32_t>>
          permuted;
      for (const std::vector<Vertex>& sigma : orbits->automorphisms) {
        permuted.first.assign(inst.device_image.size(), 0);
        for (std::size_t i = 0; i < inst.device_image.size(); ++i) {
          permuted.first[i] = inst.device_image[sigma[i]].value;
        }
        permuted.second.assign(inst.net_image.size(), 0);
        for (std::size_t n = 0; n < inst.net_image.size(); ++n) {
          permuted.second[n] =
              inst.net_image[sigma[device_count + n] - device_count].value;
        }
        if (seen.contains(permuted)) {
          suppressed = true;
          ++stats_.symmetry_skips;
          break;
        }
      }
      if (suppressed) continue;
    }
    seen.insert(std::move(key_map));
    unique.push_back(std::move(inst));
  }
  if (!unique.empty()) ++stats_.candidates_matched;
  return unique;
}

Phase2Verifier::Outcome Phase2Verifier::run(
    State& st, std::size_t depth, SubcircuitInstance* out,
    std::vector<SubcircuitInstance>* sink, std::size_t sink_limit) {
  stats_.max_guess_depth = std::max(stats_.max_guess_depth, depth);
  while (true) {
    if (st.matched_count == matchable_total_) {
      if constexpr (kAuditEnabled) {
        // The matched_count ledger claims a full binding; cross-check it
        // against the actual matched_s contents and verify injectivity
        // (every host vertex used at most once).
        std::set<Vertex> image;
        for (Vertex v = 0; v < s_.vertex_count(); ++v) {
          if (s_.is_special(v)) continue;
          SUBG_AUDIT_MSG(st.matched_s[v] != kInvalidVertex,
                         "phase2 audit: matched count is full but a pattern "
                         "vertex is unbound");
          image.insert(st.matched_s[v]);
        }
        SUBG_AUDIT_MSG(image.size() == matchable_total_,
                       "phase2 audit: pattern-to-host binding is not "
                       "injective");
      }
      if (!extract_mapping(st, out)) return Outcome::kFail;
      if (!verify_mapping(*out)) {
        ++stats_.verify_failures;
        return Outcome::kFail;
      }
      if (sink != nullptr) {
        // Enumerate mode: record and pretend failure so the parent guess
        // loop explores the remaining branches.
        sink->push_back(*out);
        return Outcome::kFail;
      }
      return Outcome::kSuccess;
    }
    if (sink != nullptr && sink->size() >= sink_limit) return Outcome::kFail;
    RunOutcome why;
    if (options_.budget.interrupted(&why)) {
      status_.escalate(why, std::string("phase2: ") + to_string(why) +
                                " while verifying a candidate");
      return Outcome::kFail;
    }
    if (st.passes >= options_.max_passes_per_candidate) {
      status_.escalate(RunOutcome::kTruncated,
                       "phase2: pass budget exhausted; candidate rejected "
                       "without a full search");
      SUBG_WARN("phase2: pass budget exhausted; rejecting candidate");
      return Outcome::kFail;
    }

    bool progress = false;
    if (!pass(st, &progress)) return Outcome::kFail;
    if (progress) continue;

    // Stalled: refinement can make no further distinction (symmetric
    // pattern, Fig 5). Guess a match in the most constrained stalled
    // partition and recurse with backtracking.
    if (depth >= options_.max_guess_depth) {
      status_.escalate(RunOutcome::kTruncated,
                       "phase2: guess depth budget exhausted; candidate "
                       "rejected without a full search");
      ++status_.guesses_abandoned;
      SUBG_WARN("phase2: guess depth budget exhausted; rejecting candidate");
      return Outcome::kFail;
    }

    // Candidate domains per pattern label among live host slots: the flat
    // label-sorted census, grouped by equal label — each group is the
    // domain of the pattern partition carrying that label.
    part_g_.clear();
    for (std::size_t w = 0; w < st.live.size(); ++w) {
      std::uint64_t bits = st.live[w];
      while (bits != 0) {
        const auto i =
            static_cast<std::uint32_t>(w * 64 + std::countr_zero(bits));
        bits &= bits - 1;
        if (st.slots[i].label != kNoLabel) {
          part_g_.emplace_back(st.slots[i].label, i);
        }
      }
    }
    std::stable_sort(part_g_.begin(), part_g_.end(),
                     [](const auto& a, const auto& b) {
                       return a.first < b.first;
                     });

    Vertex guess_s = kInvalidVertex;
    std::size_t best_size = 0;
    std::size_t best_begin = 0;
    for (Vertex v = 0; v < s_.vertex_count(); ++v) {
      if (s_.is_special(v) || !st.considered_s[v]) continue;
      if (st.matched_s[v] != kInvalidVertex || st.label_s[v] == kNoLabel) continue;
      const auto [lo, hi] = std::equal_range(part_g_.begin(), part_g_.end(),
                                             st.label_s[v], LabelLess{});
      if (lo == hi) {
        // A completed pass guarantees every live pattern partition has a
        // host twin at least as large; an empty domain here means the
        // census is corrupt. Refute deterministically instead of searching
        // on a broken hypothesis.
        SUBG_AUDIT_MSG(false,
                       "phase2 audit: stalled pattern partition has no live "
                       "host twin");
        return Outcome::kFail;
      }
      const auto size = static_cast<std::size_t>(hi - lo);
      if (guess_s == kInvalidVertex || size < best_size) {
        guess_s = v;
        best_size = size;
        best_begin = static_cast<std::size_t>(lo - part_g_.begin());
      }
    }

    std::vector<Vertex> pool;
    if (guess_s != kInvalidVertex) {
      pool.reserve(best_size);
      for (std::size_t k = best_begin; k < best_begin + best_size; ++k) {
        const Vertex gv = st.slots[part_g_[k].second].vertex;
        if (options_.signature_filter && !signature_ok(guess_s, gv)) continue;
        pool.push_back(gv);
      }
    } else {
      // No labeled unmatched pattern vertex: the remaining pattern region is
      // reachable only through a special rail (frontier expansion does not
      // cross rails). Seed it by guessing a device hanging off a rail.
      for (Vertex v = 0; v < s_.device_count() && guess_s == kInvalidVertex;
           ++v) {
        if (st.matched_s[v] != kInvalidVertex) continue;
        for (const auto& e : s_.edges(v)) {
          if (s_.is_special(e.to) && special_image_[e.to] != kInvalidVertex) {
            guess_s = v;
            // Pool: same-type host devices on the image rail, unmatched.
            for (const auto& he : g_.edges(special_image_[e.to])) {
              if (!g_.is_device(he.to)) continue;
              if (g_.initial_label(he.to) != s_.initial_label(v)) continue;
              auto sit = st.slot_of.find(he.to);
              if (sit != st.slot_of.end()) {
                const Slot& slot = st.slots[sit->second];
                if (slot.excluded || slot.matched_to != kInvalidVertex) continue;
              }
              pool.push_back(he.to);
            }
            break;
          }
        }
      }
      if (guess_s == kInvalidVertex) {
        // Disconnected pattern component with no rail anchor: unreachable by
        // refinement. The public matcher rejects such patterns up front.
        return Outcome::kFail;
      }
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
      if (options_.signature_filter) {
        std::erase_if(pool,
                      [&](Vertex gv) { return !signature_ok(guess_s, gv); });
      }
    }

    for (std::size_t pi = 0; pi < pool.size(); ++pi) {
      if (sink != nullptr && sink->size() >= sink_limit) break;
      RunOutcome pool_why;
      if (options_.budget.interrupted(&pool_why)) {
        status_.escalate(pool_why, std::string("phase2: ") +
                                       to_string(pool_why) +
                                       " while exploring guess branches");
        status_.guesses_abandoned += pool.size() - pi;
        break;
      }
      const TrailMark mark = trail_mark(st);
      std::optional<State> audit_snapshot;
      if constexpr (kAuditEnabled) audit_snapshot = st;
      ++trail_depth_;
      ++stats_.guesses;
      postulate(st, guess_s, pool[pi]);
      const Outcome outcome = run(st, depth + 1, out, sink, sink_limit);
      --trail_depth_;
      if (outcome == Outcome::kSuccess) return Outcome::kSuccess;
      ++stats_.backtracks;
      undo_to(st, mark);
      if constexpr (kAuditEnabled) {
        SUBG_AUDIT_MSG(states_equal(st, *audit_snapshot),
                       "phase2 audit: trail undo did not restore the "
                       "pre-guess state");
      }
    }
    return Outcome::kFail;
  }
}

bool Phase2Verifier::pass(State& st, bool* progress) {
  ++st.passes;
  ++stats_.passes;
  const CsrCore* s_core = options_.pattern_core;
  const CsrCore* g_core = options_.host_core;
  if constexpr (kAuditEnabled) {
    for (std::uint32_t i = 0; i < st.slots.size(); ++i) {
      SUBG_AUDIT_MSG(live_test(st, i) ==
                         (!st.slots[i].excluded &&
                          st.slots[i].matched_to == kInvalidVertex),
                     "phase2 audit: live-slot bitset diverged from the slot "
                     "flags");
    }
  }
  // Edge visits this pass (frontier expansion + relabel sums, both sides).
  // Accumulated locally and folded into stats_ once at the end — and
  // counted by the same rule in both cores, so reports stay byte-identical
  // across --core.
  std::size_t ops = 0;

  // --- 1. Frontier expansion: neighbors of safe vertices join the search.
  // Special rails never expand the frontier (they would drag their whole
  // host fanout in); their labels still contribute below. Expansion only
  // reads the neighbor column, so the csr core skips the coefficients
  // entirely.
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v) || !st.considered_s[v] || !st.safe_s[v]) continue;
    if (s_core != nullptr) {
      for (const Vertex to : s_core->neighbors(v)) {
        ++ops;
        if (!s_core->is_special(to)) set_considered_s(st, to);
      }
    } else {
      for (const auto& e : s_.edges(v)) {
        ++ops;
        if (!s_.is_special(e.to)) set_considered_s(st, e.to);
      }
    }
  }
  const std::size_t slot_count_before = st.slots.size();
  for (std::size_t i = 0; i < slot_count_before; ++i) {
    // Indexed loop over ALL slots: matched slots are safe and keep
    // expanding the frontier, so this one iterates flags, not live bits.
    // ensure_slot may grow st.slots.
    if (!st.slots[i].safe) continue;
    const Vertex v = st.slots[i].vertex;
    if (g_core != nullptr) {
      for (const Vertex to : g_core->neighbors(v)) {
        ++ops;
        if (host_fixed_label_[to] == kNoLabel) ensure_slot(st, to);
      }
    } else {
      for (const auto& e : g_.edges(v)) {
        ++ops;
        if (host_fixed_label_[e.to] == kNoLabel) ensure_slot(st, e.to);
      }
    }
  }

  // --- 2. Synchronous relabel of every live vertex on both sides.
  // Contributions come only from neighbors that were safe as of the last
  // completed pass (matched and special vertices are always safe).
  auto safe_label_s = [&](Vertex u) -> Label {
    if (s_.is_special(u)) {
      return special_image_[u] != kInvalidVertex ? s_.initial_label(u) : kNoLabel;
    }
    return st.safe_s[u] ? st.label_s[u] : kNoLabel;
  };
  auto safe_label_g = [&](Vertex u) -> Label {
    if (host_fixed_label_[u] != kNoLabel) return host_fixed_label_[u];
    auto it = st.slot_of.find(u);
    if (it == st.slot_of.end()) return kNoLabel;
    const Slot& slot = st.slots[it->second];
    return (slot.safe && !slot.excluded) ? slot.label : kNoLabel;
  };

  new_s_.clear();
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v) || !st.considered_s[v]) continue;
    if (st.matched_s[v] != kInvalidVertex) continue;
    Label sum = 0;
    if (s_core != nullptr) {
      const auto nbrs = s_core->neighbors(v);
      const auto coeffs = s_core->coefficients(v);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        ++ops;
        const Label nl = safe_label_s(nbrs[k]);
        if (nl != kNoLabel) sum += edge_contribution(coeffs[k], nl);
      }
    } else {
      for (const auto& e : s_.edges(v)) {
        ++ops;
        const Label nl = safe_label_s(e.to);
        if (nl != kNoLabel) sum += edge_contribution(e.coefficient, nl);
      }
    }
    new_s_.emplace_back(v, relabel(base_label(s_, v), sum));
  }
  new_g_.clear();
  for (std::size_t w = 0; w < st.live.size(); ++w) {
    std::uint64_t bits = st.live[w];
    while (bits != 0) {
      const auto i =
          static_cast<std::uint32_t>(w * 64 + std::countr_zero(bits));
      bits &= bits - 1;
      const Slot& slot = st.slots[i];
      Label sum = 0;
      if (g_core != nullptr) {
        const auto nbrs = g_core->neighbors(slot.vertex);
        const auto coeffs = g_core->coefficients(slot.vertex);
        for (std::size_t k = 0; k < nbrs.size(); ++k) {
          ++ops;
          const Label nl = safe_label_g(nbrs[k]);
          if (nl != kNoLabel) sum += edge_contribution(coeffs[k], nl);
        }
      } else {
        for (const auto& e : g_.edges(slot.vertex)) {
          ++ops;
          const Label nl = safe_label_g(e.to);
          if (nl != kNoLabel) sum += edge_contribution(e.coefficient, nl);
        }
      }
      new_g_.emplace_back(i, relabel(base_label(g_, slot.vertex), sum));
    }
  }
  for (const auto& [v, l] : new_s_) set_label_s(st, v, l);
  for (const auto& [i, l] : new_g_) set_slot_label(st, i, l);
  // Fold the work counter in before the partition comparison below — a
  // refuted hypothesis (early return) still did this pass's edge visits.
  stats_.expansion_ops += ops;

  // --- 3. Partition census: flat (label, member) pairs, stable-sorted by
  // label (insertion order — vertex/slot index — survives within a group,
  // matching the hash-map-era push order), then one merge walk. Equal
  // sizes ⇒ safe; host-only labels ⇒ excluded; undersized host partitions
  // ⇒ hypothesis refuted.
  part_s_.clear();
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v) || !st.considered_s[v]) continue;
    if (st.matched_s[v] != kInvalidVertex) continue;
    part_s_.emplace_back(st.label_s[v], v);
  }
  part_g_.clear();
  for (std::size_t w = 0; w < st.live.size(); ++w) {
    std::uint64_t bits = st.live[w];
    while (bits != 0) {
      const auto i =
          static_cast<std::uint32_t>(w * 64 + std::countr_zero(bits));
      bits &= bits - 1;
      part_g_.emplace_back(st.slots[i].label, i);
    }
  }
  const auto by_label = [](const auto& a, const auto& b) {
    return a.first < b.first;
  };
  std::stable_sort(part_s_.begin(), part_s_.end(), by_label);
  std::stable_sort(part_g_.begin(), part_g_.end(), by_label);

  const std::size_t matched_before = st.matched_count;
  std::size_t safe_unmatched = 0;
  to_match_.clear();
  std::size_t i = 0;
  std::size_t j = 0;
  const std::size_t ns = part_s_.size();
  const std::size_t ng = part_g_.size();
  while (i < ns || j < ng) {
    if (j >= ng || (i < ns && part_s_[i].first < part_g_[j].first)) {
      // Pattern partition with no live host twin: undersized (0 < n).
      return false;
    }
    if (i >= ns || part_g_[j].first < part_s_[i].first) {
      const Label l = part_g_[j].first;
      for (; j < ng && part_g_[j].first == l; ++j) {
        set_slot_excluded(st, part_g_[j].second, true);
      }
      continue;
    }
    const Label l = part_s_[i].first;
    const std::size_t si = i;
    const std::size_t sj = j;
    while (i < ns && part_s_[i].first == l) ++i;
    while (j < ng && part_g_[j].first == l) ++j;
    const std::size_t s_count = i - si;
    const std::size_t g_count = j - sj;
    if (g_count < s_count) return false;
    const bool safe = g_count == s_count;
    for (std::size_t k = si; k < i; ++k) set_safe_s(st, part_s_[k].second, safe);
    for (std::size_t k = sj; k < j; ++k) {
      set_slot_safe(st, part_g_[k].second, safe);
    }
    if (safe) {
      safe_unmatched += s_count;
      if (s_count == 1) {
        to_match_.emplace_back(part_s_[si].second,
                               st.slots[part_g_[sj].second].vertex);
      }
    }
  }

  // --- 4. Match singleton safe pairs (fresh fixed labels). A forced pair
  // whose signatures cannot coexist refutes the whole hypothesis — the
  // pairing is forced, so there is no other branch to take.
  for (const auto& [sv, gv] : to_match_) {
    if (options_.signature_filter && !signature_ok(sv, gv)) return false;
    ++stats_.bindings;
    const Label l = fresh_label(st);
    set_label_s(st, sv, l);
    set_matched_s(st, sv, gv);
    ++st.matched_count;
    const std::uint32_t gi = st.slot_of.at(gv);
    set_slot_label(st, gi, l);
    set_slot_safe(st, gi, true);
    set_slot_matched_to(st, gi, sv);
    --safe_unmatched;
  }

  *progress = st.matched_count > matched_before ||
              safe_unmatched > st.safe_unmatched;
  st.safe_unmatched = safe_unmatched;
  record_trace(st, st.passes);
  return true;
}

bool Phase2Verifier::extract_mapping(const State& st,
                                     SubcircuitInstance* out) const {
  out->device_image.assign(s_.device_count(), DeviceId());
  out->net_image.assign(s_.net_count(), NetId());
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    Vertex image;
    if (s_.is_special(v)) {
      image = special_image_[v];
      if (image == kInvalidVertex && s_.degree(v) == 0) {
        continue;  // unused pattern global: no image required
      }
    } else {
      image = st.matched_s[v];
    }
    if (image == kInvalidVertex) return false;
    if (s_.is_device(v)) {
      if (!g_.is_device(image)) return false;
      out->device_image[v] = g_.device_of(image);
    } else {
      if (!g_.is_net(image)) return false;
      out->net_image[s_.net_of(v).index()] = g_.net_of(image);
    }
  }
  return true;
}

bool Phase2Verifier::verify_mapping(const SubcircuitInstance& inst) const {
  return verify_instance(s_.netlist(), g_.netlist(), inst);
}

void Phase2Verifier::record_trace(const State& st, std::size_t pass) const {
  if (options_.trace == nullptr) return;
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v) || !st.considered_s[v]) continue;
    options_.trace->entries.push_back(Phase2Trace::Entry{
        stats_.candidates_tried, pass, false, v, st.label_s[v], st.safe_s[v],
        st.matched_s[v] != kInvalidVertex});
  }
  for (const Slot& slot : st.slots) {
    if (slot.excluded) continue;
    options_.trace->entries.push_back(Phase2Trace::Entry{
        stats_.candidates_tried, pass, true, slot.vertex, slot.label,
        slot.safe, slot.matched_to != kInvalidVertex});
  }
}

}  // namespace subg
