#include "match/phase2.hpp"

#include <algorithm>
#include <set>

#include "graph/csr_core.hpp"
#include "match/verify.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/log.hpp"

namespace subg {

namespace {
/// Relabel base: devices restate their type each pass, nets have no
/// trustworthy invariant (an external net's host degree differs from its
/// pattern degree), so they start from nothing (paper Table 1: "D3: A = n +
/// sKV" vs "N2: B = sA").
Label base_label(const CircuitGraph& graph, Vertex v) {
  return graph.is_device(v) ? graph.initial_label(v) : kNoLabel;
}
}  // namespace

Phase2Verifier::Phase2Verifier(const CircuitGraph& pattern,
                               const CircuitGraph& host, Phase2Options options)
    : s_(pattern), g_(host), options_(options) {
  if (options_.pattern_core != nullptr) {
    SUBG_CHECK_MSG(&options_.pattern_core->graph() == &s_,
                   "pattern csr core was built over a different graph");
  }
  if (options_.host_core != nullptr) {
    SUBG_CHECK_MSG(&options_.host_core->graph() == &g_,
                   "host csr core was built over a different graph");
  }
  special_image_.assign(s_.vertex_count(), kInvalidVertex);
  host_fixed_label_.assign(g_.vertex_count(), kNoLabel);

  // Resolve pattern globals to same-named host nets (paper §IV.A: special
  // signals mean the same thing in both circuits, so they match by name;
  // the host need not have marked the net global itself). An unused
  // (degree-0) pattern global places no constraint.
  const Netlist& pnl = s_.netlist();
  const Netlist& hnl = g_.netlist();
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (!s_.is_special(v)) {
      ++matchable_total_;
      continue;
    }
    const std::string& name = pnl.net_name(s_.net_of(v));
    auto hn = hnl.find_net(name);
    if (!hn) {
      if (s_.degree(v) > 0) {
        globals_resolved_ = false;
        SUBG_WARN("pattern global net '" << name
                                         << "' has no same-named net in host");
      }
      continue;
    }
    special_image_[v] = g_.vertex_of(*hn);
    host_fixed_label_[g_.vertex_of(*hn)] = s_.initial_label(v);
  }
}

Label Phase2Verifier::fresh_label(State& st) {
  Label l;
  do {
    l = st.rng();
  } while (l == kNoLabel);
  return l;
}

std::uint32_t Phase2Verifier::ensure_slot(State& st, Vertex g) {
  auto [it, inserted] =
      st.slot_of.try_emplace(g, static_cast<std::uint32_t>(st.slots.size()));
  if (inserted) {
    Slot slot;
    slot.vertex = g;
    st.slots.push_back(slot);
  }
  return it->second;
}

void Phase2Verifier::postulate(State& st, Vertex s, Vertex g) {
  SUBG_AUDIT_MSG(!s_.is_special(s),
                 "phase2 audit: special rails match by name, never by "
                 "postulate");
  SUBG_AUDIT_MSG(st.matched_s[s] == kInvalidVertex,
                 "phase2 audit: pattern vertex postulated twice");
  ++stats_.bindings;
  const Label l = fresh_label(st);
  st.label_s[s] = l;
  st.considered_s[s] = true;
  st.safe_s[s] = true;
  st.matched_s[s] = g;
  ++st.matched_count;
  SUBG_AUDIT_MSG(st.matched_count <= matchable_total_,
                 "phase2 audit: matched count exceeds the matchable pattern "
                 "vertices");

  Slot& slot = st.slots[ensure_slot(st, g)];
  SUBG_AUDIT_MSG(slot.matched_to == kInvalidVertex,
                 "phase2 audit: host vertex bound to two pattern vertices");
  slot.label = l;
  slot.safe = true;
  slot.excluded = false;
  slot.matched_to = s;
}

std::optional<SubcircuitInstance> Phase2Verifier::verify(Vertex key,
                                                         Vertex candidate) {
  SUBG_FAULT_POINT("phase2");
  ++stats_.candidates_tried;
  if (!globals_resolved_) return std::nullopt;
  if (s_.is_device(key) != g_.is_device(candidate)) return std::nullopt;
  if (s_.is_device(key)) {
    // Cheap pre-check: the candidate must at least share the device type.
    if (s_.initial_label(key) != g_.initial_label(candidate)) return std::nullopt;
  }

  State st;
  st.label_s.assign(s_.vertex_count(), kNoLabel);
  st.considered_s.assign(s_.vertex_count(), false);
  st.safe_s.assign(s_.vertex_count(), false);
  st.matched_s.assign(s_.vertex_count(), kInvalidVertex);
  st.rng = SplitMix64(options_.seed ^ splitmix64_mix(candidate));
  postulate(st, key, candidate);
  record_trace(st, 0);

  SubcircuitInstance inst;
  if (run(st, 0, &inst) == Outcome::kSuccess) {
    ++stats_.candidates_matched;
    return inst;
  }
  return std::nullopt;
}

std::vector<SubcircuitInstance> Phase2Verifier::enumerate(Vertex key,
                                                          Vertex candidate,
                                                          std::size_t limit) {
  ++stats_.candidates_tried;
  std::vector<SubcircuitInstance> found;
  if (!globals_resolved_ || limit == 0) return found;
  if (s_.is_device(key) != g_.is_device(candidate)) return found;
  if (s_.is_device(key) &&
      s_.initial_label(key) != g_.initial_label(candidate)) {
    return found;
  }

  State st;
  st.label_s.assign(s_.vertex_count(), kNoLabel);
  st.considered_s.assign(s_.vertex_count(), false);
  st.safe_s.assign(s_.vertex_count(), false);
  st.matched_s.assign(s_.vertex_count(), kInvalidVertex);
  st.rng = SplitMix64(options_.seed ^ splitmix64_mix(candidate));
  postulate(st, key, candidate);
  record_trace(st, 0);

  SubcircuitInstance scratch;
  (void)run(st, 0, &scratch, &found, limit);

  // Automorphic branches revisit the same device set; dedup locally,
  // keeping first-found order (deterministic).
  std::set<std::vector<std::uint32_t>> seen;
  std::vector<SubcircuitInstance> unique;
  for (SubcircuitInstance& inst : found) {
    std::vector<std::uint32_t> key_set;
    key_set.reserve(inst.device_image.size());
    for (DeviceId d : inst.device_image) key_set.push_back(d.value);
    std::sort(key_set.begin(), key_set.end());
    if (seen.insert(std::move(key_set)).second) {
      unique.push_back(std::move(inst));
    }
  }
  if (!unique.empty()) ++stats_.candidates_matched;
  return unique;
}

Phase2Verifier::Outcome Phase2Verifier::run(
    State& st, std::size_t depth, SubcircuitInstance* out,
    std::vector<SubcircuitInstance>* sink, std::size_t sink_limit) {
  stats_.max_guess_depth = std::max(stats_.max_guess_depth, depth);
  while (true) {
    if (st.matched_count == matchable_total_) {
      if constexpr (kAuditEnabled) {
        // The matched_count ledger claims a full binding; cross-check it
        // against the actual matched_s contents and verify injectivity
        // (every host vertex used at most once).
        std::set<Vertex> image;
        for (Vertex v = 0; v < s_.vertex_count(); ++v) {
          if (s_.is_special(v)) continue;
          SUBG_AUDIT_MSG(st.matched_s[v] != kInvalidVertex,
                         "phase2 audit: matched count is full but a pattern "
                         "vertex is unbound");
          image.insert(st.matched_s[v]);
        }
        SUBG_AUDIT_MSG(image.size() == matchable_total_,
                       "phase2 audit: pattern-to-host binding is not "
                       "injective");
      }
      if (!extract_mapping(st, out)) return Outcome::kFail;
      if (!verify_mapping(*out)) {
        ++stats_.verify_failures;
        return Outcome::kFail;
      }
      if (sink != nullptr) {
        // Enumerate mode: record and pretend failure so the parent guess
        // loop explores the remaining branches.
        sink->push_back(*out);
        return Outcome::kFail;
      }
      return Outcome::kSuccess;
    }
    if (sink != nullptr && sink->size() >= sink_limit) return Outcome::kFail;
    RunOutcome why;
    if (options_.budget.interrupted(&why)) {
      status_.escalate(why, std::string("phase2: ") + to_string(why) +
                                " while verifying a candidate");
      return Outcome::kFail;
    }
    if (st.passes >= options_.max_passes_per_candidate) {
      status_.escalate(RunOutcome::kTruncated,
                       "phase2: pass budget exhausted; candidate rejected "
                       "without a full search");
      SUBG_WARN("phase2: pass budget exhausted; rejecting candidate");
      return Outcome::kFail;
    }

    bool progress = false;
    if (!pass(st, &progress)) return Outcome::kFail;
    if (progress) continue;

    // Stalled: refinement can make no further distinction (symmetric
    // pattern, Fig 5). Guess a match in the most constrained stalled
    // partition and recurse with backtracking.
    if (depth >= options_.max_guess_depth) {
      status_.escalate(RunOutcome::kTruncated,
                       "phase2: guess depth budget exhausted; candidate "
                       "rejected without a full search");
      ++status_.guesses_abandoned;
      SUBG_WARN("phase2: guess depth budget exhausted; rejecting candidate");
      return Outcome::kFail;
    }

    // Candidate images per pattern label among live host slots.
    std::unordered_map<Label, std::vector<Vertex>> g_parts;
    for (const Slot& slot : st.slots) {
      if (slot.excluded || slot.matched_to != kInvalidVertex) continue;
      if (slot.label != kNoLabel) g_parts[slot.label].push_back(slot.vertex);
    }

    Vertex guess_s = kInvalidVertex;
    std::size_t best_size = 0;
    for (Vertex v = 0; v < s_.vertex_count(); ++v) {
      if (s_.is_special(v) || !st.considered_s[v]) continue;
      if (st.matched_s[v] != kInvalidVertex || st.label_s[v] == kNoLabel) continue;
      auto it = g_parts.find(st.label_s[v]);
      if (it == g_parts.end()) return Outcome::kFail;  // should not happen
      if (guess_s == kInvalidVertex || it->second.size() < best_size) {
        guess_s = v;
        best_size = it->second.size();
      }
    }

    std::vector<Vertex> pool;
    if (guess_s != kInvalidVertex) {
      pool = g_parts[st.label_s[guess_s]];
    } else {
      // No labeled unmatched pattern vertex: the remaining pattern region is
      // reachable only through a special rail (frontier expansion does not
      // cross rails). Seed it by guessing a device hanging off a rail.
      for (Vertex v = 0; v < s_.device_count() && guess_s == kInvalidVertex;
           ++v) {
        if (st.matched_s[v] != kInvalidVertex) continue;
        for (const auto& e : s_.edges(v)) {
          if (s_.is_special(e.to) && special_image_[e.to] != kInvalidVertex) {
            guess_s = v;
            // Pool: same-type host devices on the image rail, unmatched.
            for (const auto& he : g_.edges(special_image_[e.to])) {
              if (!g_.is_device(he.to)) continue;
              if (g_.initial_label(he.to) != s_.initial_label(v)) continue;
              auto sit = st.slot_of.find(he.to);
              if (sit != st.slot_of.end()) {
                const Slot& slot = st.slots[sit->second];
                if (slot.excluded || slot.matched_to != kInvalidVertex) continue;
              }
              pool.push_back(he.to);
            }
            break;
          }
        }
      }
      if (guess_s == kInvalidVertex) {
        // Disconnected pattern component with no rail anchor: unreachable by
        // refinement. The public matcher rejects such patterns up front.
        return Outcome::kFail;
      }
      std::sort(pool.begin(), pool.end());
      pool.erase(std::unique(pool.begin(), pool.end()), pool.end());
    }

    for (std::size_t pi = 0; pi < pool.size(); ++pi) {
      if (sink != nullptr && sink->size() >= sink_limit) break;
      RunOutcome pool_why;
      if (options_.budget.interrupted(&pool_why)) {
        status_.escalate(pool_why, std::string("phase2: ") +
                                       to_string(pool_why) +
                                       " while exploring guess branches");
        status_.guesses_abandoned += pool.size() - pi;
        break;
      }
      State snapshot = st;
      ++stats_.guesses;
      postulate(st, guess_s, pool[pi]);
      if (run(st, depth + 1, out, sink, sink_limit) == Outcome::kSuccess) {
        return Outcome::kSuccess;
      }
      ++stats_.backtracks;
      st = std::move(snapshot);
    }
    return Outcome::kFail;
  }
}

bool Phase2Verifier::pass(State& st, bool* progress) {
  ++st.passes;
  ++stats_.passes;
  const CsrCore* s_core = options_.pattern_core;
  const CsrCore* g_core = options_.host_core;
  // Edge visits this pass (frontier expansion + relabel sums, both sides).
  // Accumulated locally and folded into stats_ once at the end — and
  // counted by the same rule in both cores, so reports stay byte-identical
  // across --core.
  std::size_t ops = 0;

  // --- 1. Frontier expansion: neighbors of safe vertices join the search.
  // Special rails never expand the frontier (they would drag their whole
  // host fanout in); their labels still contribute below. Expansion only
  // reads the neighbor column, so the csr core skips the coefficients
  // entirely.
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v) || !st.considered_s[v] || !st.safe_s[v]) continue;
    if (s_core != nullptr) {
      for (const Vertex to : s_core->neighbors(v)) {
        ++ops;
        if (!s_core->is_special(to)) st.considered_s[to] = true;
      }
    } else {
      for (const auto& e : s_.edges(v)) {
        ++ops;
        if (!s_.is_special(e.to)) st.considered_s[e.to] = true;
      }
    }
  }
  const std::size_t slot_count_before = st.slots.size();
  for (std::size_t i = 0; i < slot_count_before; ++i) {
    // Indexed loop: ensure_slot may grow st.slots.
    if (!st.slots[i].safe) continue;
    const Vertex v = st.slots[i].vertex;
    if (g_core != nullptr) {
      for (const Vertex to : g_core->neighbors(v)) {
        ++ops;
        if (host_fixed_label_[to] == kNoLabel) ensure_slot(st, to);
      }
    } else {
      for (const auto& e : g_.edges(v)) {
        ++ops;
        if (host_fixed_label_[e.to] == kNoLabel) ensure_slot(st, e.to);
      }
    }
  }

  // --- 2. Synchronous relabel of every live vertex on both sides.
  // Contributions come only from neighbors that were safe as of the last
  // completed pass (matched and special vertices are always safe).
  auto safe_label_s = [&](Vertex u) -> Label {
    if (s_.is_special(u)) {
      return special_image_[u] != kInvalidVertex ? s_.initial_label(u) : kNoLabel;
    }
    return st.safe_s[u] ? st.label_s[u] : kNoLabel;
  };
  auto safe_label_g = [&](Vertex u) -> Label {
    if (host_fixed_label_[u] != kNoLabel) return host_fixed_label_[u];
    auto it = st.slot_of.find(u);
    if (it == st.slot_of.end()) return kNoLabel;
    const Slot& slot = st.slots[it->second];
    return (slot.safe && !slot.excluded) ? slot.label : kNoLabel;
  };

  new_s_.clear();
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v) || !st.considered_s[v]) continue;
    if (st.matched_s[v] != kInvalidVertex) continue;
    Label sum = 0;
    if (s_core != nullptr) {
      const auto nbrs = s_core->neighbors(v);
      const auto coeffs = s_core->coefficients(v);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        ++ops;
        const Label nl = safe_label_s(nbrs[k]);
        if (nl != kNoLabel) sum += edge_contribution(coeffs[k], nl);
      }
    } else {
      for (const auto& e : s_.edges(v)) {
        ++ops;
        const Label nl = safe_label_s(e.to);
        if (nl != kNoLabel) sum += edge_contribution(e.coefficient, nl);
      }
    }
    new_s_.emplace_back(v, relabel(base_label(s_, v), sum));
  }
  new_g_.clear();
  for (std::uint32_t i = 0; i < st.slots.size(); ++i) {
    const Slot& slot = st.slots[i];
    if (slot.excluded || slot.matched_to != kInvalidVertex) continue;
    Label sum = 0;
    if (g_core != nullptr) {
      const auto nbrs = g_core->neighbors(slot.vertex);
      const auto coeffs = g_core->coefficients(slot.vertex);
      for (std::size_t k = 0; k < nbrs.size(); ++k) {
        ++ops;
        const Label nl = safe_label_g(nbrs[k]);
        if (nl != kNoLabel) sum += edge_contribution(coeffs[k], nl);
      }
    } else {
      for (const auto& e : g_.edges(slot.vertex)) {
        ++ops;
        const Label nl = safe_label_g(e.to);
        if (nl != kNoLabel) sum += edge_contribution(e.coefficient, nl);
      }
    }
    new_g_.emplace_back(i, relabel(base_label(g_, slot.vertex), sum));
  }
  for (const auto& [v, l] : new_s_) st.label_s[v] = l;
  for (const auto& [i, l] : new_g_) st.slots[i].label = l;
  // Fold the work counter in before the partition comparison below — a
  // refuted hypothesis (early return) still did this pass's edge visits.
  stats_.expansion_ops += ops;

  // --- 3. Partition comparison: equal sizes ⇒ safe; host-only labels ⇒
  // excluded; undersized host partitions ⇒ hypothesis refuted.
  struct Part {
    std::vector<Vertex> s_members;
    std::vector<std::uint32_t> g_slots;
  };
  std::unordered_map<Label, Part> parts;
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v) || !st.considered_s[v]) continue;
    if (st.matched_s[v] != kInvalidVertex) continue;
    parts[st.label_s[v]].s_members.push_back(v);
  }
  for (std::uint32_t i = 0; i < st.slots.size(); ++i) {
    const Slot& slot = st.slots[i];
    if (slot.excluded || slot.matched_to != kInvalidVertex) continue;
    parts[slot.label].g_slots.push_back(i);
  }

  const std::size_t matched_before = st.matched_count;
  std::size_t safe_unmatched = 0;
  std::vector<std::pair<Vertex, Vertex>> to_match;
  for (auto& [label, part] : parts) {
    if (part.s_members.empty()) {
      for (std::uint32_t i : part.g_slots) st.slots[i].excluded = true;
      continue;
    }
    if (part.g_slots.size() < part.s_members.size()) return false;
    const bool safe = part.g_slots.size() == part.s_members.size();
    for (Vertex v : part.s_members) st.safe_s[v] = safe;
    for (std::uint32_t i : part.g_slots) st.slots[i].safe = safe;
    if (safe) {
      safe_unmatched += part.s_members.size();
      if (part.s_members.size() == 1) {
        to_match.emplace_back(part.s_members.front(),
                              st.slots[part.g_slots.front()].vertex);
      }
    }
  }

  // --- 4. Match singleton safe pairs (fresh fixed labels).
  for (const auto& [sv, gv] : to_match) {
    ++stats_.bindings;
    const Label l = fresh_label(st);
    st.label_s[sv] = l;
    st.matched_s[sv] = gv;
    ++st.matched_count;
    Slot& slot = st.slots[st.slot_of.at(gv)];
    slot.label = l;
    slot.safe = true;
    slot.matched_to = sv;
    --safe_unmatched;
  }

  *progress = st.matched_count > matched_before ||
              safe_unmatched > st.safe_unmatched;
  st.safe_unmatched = safe_unmatched;
  record_trace(st, st.passes);
  return true;
}

bool Phase2Verifier::extract_mapping(const State& st,
                                     SubcircuitInstance* out) const {
  out->device_image.assign(s_.device_count(), DeviceId());
  out->net_image.assign(s_.net_count(), NetId());
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    Vertex image;
    if (s_.is_special(v)) {
      image = special_image_[v];
      if (image == kInvalidVertex && s_.degree(v) == 0) {
        continue;  // unused pattern global: no image required
      }
    } else {
      image = st.matched_s[v];
    }
    if (image == kInvalidVertex) return false;
    if (s_.is_device(v)) {
      if (!g_.is_device(image)) return false;
      out->device_image[v] = g_.device_of(image);
    } else {
      if (!g_.is_net(image)) return false;
      out->net_image[s_.net_of(v).index()] = g_.net_of(image);
    }
  }
  return true;
}

bool Phase2Verifier::verify_mapping(const SubcircuitInstance& inst) const {
  return verify_instance(s_.netlist(), g_.netlist(), inst);
}

void Phase2Verifier::record_trace(const State& st, std::size_t pass) const {
  if (options_.trace == nullptr) return;
  for (Vertex v = 0; v < s_.vertex_count(); ++v) {
    if (s_.is_special(v) || !st.considered_s[v]) continue;
    options_.trace->entries.push_back(Phase2Trace::Entry{
        stats_.candidates_tried, pass, false, v, st.label_s[v], st.safe_s[v],
        st.matched_s[v] != kInvalidVertex});
  }
  for (const Slot& slot : st.slots) {
    if (slot.excluded) continue;
    options_.trace->entries.push_back(Phase2Trace::Entry{
        stats_.candidates_tried, pass, true, slot.vertex, slot.label,
        slot.safe, slot.matched_to != kInvalidVertex});
  }
}

}  // namespace subg
