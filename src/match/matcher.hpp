// SubgraphMatcher — the public entry point of the SubGemini algorithm.
//
// Given a pattern netlist (the subcircuit, with its external nets marked as
// ports and its rails marked global) and a host netlist, find the instances
// of the pattern inside the host:
//
//   SubgraphMatcher matcher(nand2, chip);
//   MatchReport report = matcher.find_all();
//   for (const SubcircuitInstance& inst : report.instances) { ... }
//
// Phase I computes a key vertex and candidate vector; Phase II verifies
// each candidate. find_all() reports at most one instance per candidate —
// distinct instances have distinct images of the key vertex, so every
// instance is discovered; overlapping instances that share a key image
// resolve to one representative (the paper's semantics, which is what gate
// extraction wants). Results are deduplicated by their device set, so
// pattern automorphisms do not double-count.
#pragma once

#include <memory>
#include <optional>

#include "analyze/analyze.hpp"
#include "graph/circuit_graph.hpp"
#include "graph/csr_core.hpp"
#include "match/instance.hpp"
#include "match/phase1.hpp"
#include "match/phase2.hpp"
#include "util/core_mode.hpp"
#include "util/phase2_filter.hpp"

namespace subg::obs {
class Metrics;
}  // namespace subg::obs

namespace subg {

class ThreadPool;

struct MatchOptions {
  /// Stop after this many verified instances.
  std::size_t max_matches = static_cast<std::size_t>(-1);
  /// Drop instances whose host device set equals an earlier instance's.
  bool deduplicate = true;
  /// Exhaustive semantics: enumerate EVERY instance (like the baselines) by
  /// exploring all Phase II guess branches per candidate, instead of the
  /// paper's one-instance-per-key-image. Costs extra only where instances
  /// overlap or patterns are symmetric. Implies deduplication. Note the two
  /// dedup granularities: Phase II's enumerate() keeps matches that differ
  /// only in external-net bindings (full (device, net)-image key), while the
  /// matcher-level dedup below collapses to one instance per host DEVICE
  /// set — matching the Ullmann/VF2 baselines' counting convention.
  bool exhaustive = false;
  /// Phase II prefilter strength (util/phase2_filter.hpp). kPaths (the
  /// default) = the neighborhood-signature prefilter and nogood memo PLUS
  /// the supplemental path-label refuter (src/analyze closed-walk counts);
  /// kOn = signature alone; kOff = the pure census search. All settings
  /// are sound — instances and statuses are identical; kOn/kOff exist for
  /// A/B measurement (--phase2-filter).
  Phase2Filter phase2_filter = Phase2Filter::kPaths;
  /// Pre-search static analysis (src/analyze): check the infeasibility
  /// certificates before Phase I — a certificate short-circuits the whole
  /// search (MatchReport::infeasible_shortcuts, with the certificate
  /// carried in the report) — and, in exhaustive mode with no binding
  /// match limit, use the pattern's automorphisms to suppress symmetric
  /// enumeration copies (Phase2Stats::symmetry_skips). Off reproduces the
  /// pre-analyzer pipeline byte for byte.
  bool analyze = true;
  /// Optional externally owned host path labels (HostSession shares one
  /// set across matches and rebases it through ECO patches). Must have
  /// been built over THIS host with default AnalyzeOptions; only consulted
  /// when phase2_filter == kPaths. Null = the matcher builds its own.
  const analyze::PathLabels* host_path_labels = nullptr;
  /// Seed for the fixed labels Phase II assigns to matched pairs.
  std::uint64_t seed = 0x53554247454D494EULL;
  /// Wall-clock / cancellation envelope for the WHOLE run: threaded through
  /// Phase I refinement, the candidate sweep, and Phase II verification
  /// (it overrides phase1.budget). An interrupted run returns the verified
  /// instances found so far and reports how it ended in
  /// MatchReport::status — reported instances are always sound; only the
  /// completeness of the sweep is at stake.
  Budget budget;
  Phase1Options phase1;
  std::size_t max_phase2_passes_per_candidate = 1u << 20;
  std::size_t max_guess_depth = 4096;
  /// Optional Phase II pass trace (small examples only).
  Phase2Trace* trace = nullptr;
  /// Lanes of parallelism for Phase I host relabeling and the Phase II
  /// candidate sweep. 1 (the default) is the exact serial code path; 0
  /// means hardware concurrency. Each candidate-vector seed is an
  /// independent rooted search, so seeds are verified concurrently and the
  /// results merged in seed-index order — the report's instances, order,
  /// and status are identical to the serial run's. A trace implies the
  /// serial path (trace entries interleave across candidates).
  std::size_t jobs = 1;
  /// Optional externally owned pool, shared across matches (the extract
  /// sweep passes one). Overrides `jobs` when set; the pool must outlive
  /// the matcher calls that use it.
  ThreadPool* pool = nullptr;
  /// Optional metrics sink (see obs/metrics.hpp), threaded into Phase I and
  /// recorded against at phase boundaries: seeds tried, bindings,
  /// backtracks, ambiguity events, per-lane seed throughput, phase timings.
  /// Null (the default) records nothing and costs nothing — the Phase II
  /// inner loops are never instrumented per-pass.
  obs::Metrics* metrics = nullptr;
  /// Matching-core layout (see graph/csr_core.hpp). kCsr (the default)
  /// flattens both graphs into contiguous SoA index arrays once per matcher
  /// and runs every relabel sweep over them; kLegacy walks the CircuitGraph
  /// adjacency directly. Reports are byte-identical either way — the csr
  /// core visits the same edges in the same order with the same arithmetic.
  CoreMode core = CoreMode::kCsr;
  /// Optional externally owned host core, shared across a library sweep
  /// (extract builds one per tier). Must have been built over the host
  /// graph handed to the matcher; only consulted when core == kCsr.
  const CsrCore* host_core = nullptr;
};

struct MatchReport {
  std::vector<SubcircuitInstance> instances;
  Phase1Result phase1;
  Phase2Stats phase2;
  /// kComplete iff every candidate was fully searched within every limit;
  /// otherwise the first interruption/cap hit, with skipped-work counters.
  RunStatus status;
  /// 1 when a pre-search infeasibility certificate proved the pattern
  /// cannot occur in the host and the search never ran (0 otherwise);
  /// `infeasibility` then holds the certificate. The empty instance list
  /// is exact, not truncated — status stays kComplete.
  std::size_t infeasible_shortcuts = 0;
  std::optional<analyze::Certificate> infeasibility;
  double phase1_seconds = 0;
  double phase2_seconds = 0;

  [[nodiscard]] std::size_t count() const { return instances.size(); }
  [[nodiscard]] double total_seconds() const {
    return phase1_seconds + phase2_seconds;
  }
};

class SubgraphMatcher {
 public:
  /// Both netlists must outlive the matcher and stay unmodified while it is
  /// in use. Throws subg::Error when the pattern is empty, when it is
  /// disconnected (counting global rails as connectors), or when the two
  /// catalogs disagree on the pin structure of a shared device type.
  SubgraphMatcher(const Netlist& pattern, const Netlist& host,
                  MatchOptions options = {});

  /// Same, but over a caller-owned host graph — build one CircuitGraph (and
  /// optionally one HostLabelCache, via options.phase1.host_cache) and share
  /// them across a whole library sweep.
  SubgraphMatcher(const Netlist& pattern, const CircuitGraph& host_graph,
                  MatchOptions options = {});

  /// Find all instances (per the key-image semantics above).
  [[nodiscard]] MatchReport find_all();

  /// Find at most one instance.
  [[nodiscard]] std::optional<SubcircuitInstance> find_first();

  [[nodiscard]] const CircuitGraph& pattern_graph() const { return pattern_graph_; }
  [[nodiscard]] const CircuitGraph& host_graph() const { return *host_graph_; }

  /// Throws subg::Error if shared device-type names have mismatched pin
  /// structure across the two catalogs.
  static void check_catalog_compatibility(const Netlist& pattern,
                                          const Netlist& host);

 private:
  MatchReport run(std::size_t limit);
  void validate_inputs() const;
  /// Build (or adopt) the flattened cores when options_.core == kCsr, and
  /// record their build time / footprint against the metrics sink.
  void init_cores();
  /// Lazily build the analyzer artifacts a run() needs: the feasibility
  /// certificate (options_.analyze), path labels for both sides (kPaths),
  /// pattern orbits (exhaustive, unlimited). Each is computed at most once
  /// per matcher and reused across runs.
  void ensure_certificate();
  void ensure_path_labels();
  void ensure_orbits();

  const Netlist& pattern_;
  const Netlist& host_;
  MatchOptions options_;
  CircuitGraph pattern_graph_;
  std::optional<CircuitGraph> owned_host_graph_;
  const CircuitGraph* host_graph_;
  std::optional<CsrCore> pattern_core_;
  std::optional<CsrCore> owned_host_core_;
  const CsrCore* host_core_ = nullptr;
  /// Non-complete when the csr core refused to build (edge-offset
  /// overflow): run() returns it immediately instead of searching.
  RunStatus core_status_;
  // Cached analyzer artifacts (see ensure_*).
  bool certificate_checked_ = false;
  std::optional<analyze::Certificate> infeasibility_;
  std::optional<analyze::PathLabels> pattern_paths_;
  std::optional<analyze::PathLabels> owned_host_paths_;
  const analyze::PathLabels* host_paths_ = nullptr;
  std::optional<analyze::Orbits> pattern_orbits_;
};

}  // namespace subg
