#include "match/verify.hpp"

#include <algorithm>
#include <vector>

namespace subg {

bool verify_instance(const Netlist& pnl, const Netlist& hnl,
                     const SubcircuitInstance& inst) {
  if (inst.device_image.size() != pnl.device_count()) return false;
  if (inst.net_image.size() != pnl.net_count()) return false;

  // Injectivity.
  {
    std::vector<std::uint32_t> devs;
    devs.reserve(inst.device_image.size());
    for (DeviceId d : inst.device_image) {
      if (!d.valid()) return false;
      devs.push_back(d.value);
    }
    std::sort(devs.begin(), devs.end());
    if (std::adjacent_find(devs.begin(), devs.end()) != devs.end()) return false;

    std::vector<std::uint32_t> nets;
    nets.reserve(inst.net_image.size());
    for (std::uint32_t i = 0; i < inst.net_image.size(); ++i) {
      const NetId n = inst.net_image[i];
      if (!n.valid()) {
        const NetId pn(i);
        if (pnl.is_global(pn) && pnl.net_degree(pn) == 0) continue;
        return false;
      }
      nets.push_back(n.value);
    }
    std::sort(nets.begin(), nets.end());
    if (std::adjacent_find(nets.begin(), nets.end()) != nets.end()) return false;
  }

  // Device structure: same type; pin connections agree up to pin
  // equivalence classes.
  for (std::uint32_t d = 0; d < pnl.device_count(); ++d) {
    const DeviceId pd(d);
    const DeviceId hd = inst.device_image[d];
    const DeviceTypeInfo& pt = pnl.device_type_info(pd);
    const DeviceTypeInfo& ht = hnl.device_type_info(hd);
    if (pt.name != ht.name || pt.pin_class != ht.pin_class) return false;

    auto ppins = pnl.device_pins(pd);
    auto hpins = hnl.device_pins(hd);
    if (ppins.size() != hpins.size()) return false;
    std::vector<std::pair<std::uint32_t, std::uint32_t>> want, have;
    want.reserve(ppins.size());
    have.reserve(hpins.size());
    for (std::uint32_t p = 0; p < ppins.size(); ++p) {
      want.emplace_back(pt.pin_class[p], inst.net_image[ppins[p].index()].value);
      have.emplace_back(ht.pin_class[p], hpins[p].value);
    }
    std::sort(want.begin(), want.end());
    std::sort(have.begin(), have.end());
    if (want != have) return false;
  }

  // Net structure: internal nets must be fully accounted for — the image is
  // an *induced* subgraph (paper §II). Port images may be fatter.
  for (std::uint32_t n = 0; n < pnl.net_count(); ++n) {
    const NetId pn(n);
    if (pnl.is_global(pn)) continue;  // matched by name; any degree
    const NetId hn = inst.net_image[n];
    const std::size_t pd = pnl.net_degree(pn);
    const std::size_t hd = hnl.net_degree(hn);
    if (pnl.is_port(pn)) {
      if (hd < pd) return false;
    } else {
      if (hd != pd) return false;
    }
  }
  return true;
}

}  // namespace subg
