// Explicit embedding verification, shared by the SubGemini Phase II
// verifier and the baseline matchers: label machinery aside, an instance
// is only reported if this check passes, so results are sound even under
// 64-bit label collisions.
#pragma once

#include "match/instance.hpp"
#include "netlist/netlist.hpp"

namespace subg {

/// True iff `inst` is a valid embedding of `pattern` into `host`:
///  - injective on devices and on nets (unused pattern globals may have an
///    invalid image and are skipped),
///  - device types equal and pin connections agree up to pin equivalence
///    classes,
///  - internal pattern nets (neither port nor global) have images of equal
///    degree — the induced-subgraph condition; port images may have extra
///    host connections.
[[nodiscard]] bool verify_instance(const Netlist& pattern, const Netlist& host,
                                   const SubcircuitInstance& inst);

}  // namespace subg
