// Phase I — candidate vector generation (paper §III).
//
// Iterative partition refinement over pattern S and host G with a
// *valid/corrupt* bit on pattern vertices. External (port) nets of the
// pattern start corrupt — their host images see extra connections the
// pattern cannot know about — and corruption spreads one ring per
// relabeling round. Relabeling alternates net rounds and device rounds
// (the graph is bipartite, so a round corrupts only one side) and stops
// when an entire side of the pattern is corrupt. Throughout,
//
//   Label Invariant (1): if g = image(s) and s is valid,
//                        label(g) == label(s).
//
// Consistency checks prune host vertices whose label matches no valid
// pattern partition (they cannot be images of valid pattern vertices), and
// declare the whole search infeasible when a host partition is smaller
// than its valid pattern twin. At exit, the smallest surviving host
// partition becomes the candidate vector CV and a pattern vertex of the
// matching partition becomes the key vertex K: every image of K in G is
// guaranteed to be in CV.
#pragma once

#include <cstddef>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "util/budget.hpp"

namespace subg::obs {
class Metrics;
}  // namespace subg::obs

namespace subg {

class CsrCore;
class HostLabelCache;
class ShardPlan;
class ThreadPool;

struct Phase1Options {
  /// Hard cap on relabeling rounds (corruption reaches the whole pattern in
  /// O(pattern diameter) rounds; this is a safety net only).
  std::size_t max_rounds = 256;
  /// Wall-clock / cancellation envelope, polled once per relabeling round.
  /// An interrupted Phase I still selects a candidate vector from the
  /// rounds already run (sound — refinement only ever narrows the CV) and
  /// reports the interruption in Phase1Result::outcome.
  Budget budget;
  /// Optional cache of the host's label sequence (see host_labels.hpp) —
  /// share one across patterns searched against the same host. Must have
  /// been constructed over the same host graph.
  HostLabelCache* host_cache = nullptr;
  /// Optional worker pool: host relabeling rounds become data-parallel over
  /// vertices (two-buffer synchronous update, bit-identical to the serial
  /// sweep). The pattern side stays serial — patterns are tiny.
  ThreadPool* pool = nullptr;
  /// Ablation switch: disable the per-round consistency checks (host-vertex
  /// pruning and early infeasibility detection, paper §III). Candidates are
  /// then selected from final-round labels alone. Correct but slower /
  /// weaker — exists so bench_ablation can quantify the checks' value.
  bool consistency_checks = true;
  /// Diagnostics: copy the final labels and validity flags into the result
  /// (costs O(|S| + |G|) memory) so tests can check Label Invariant (1).
  bool keep_labels = false;
  /// Optional metrics sink (see obs/metrics.hpp): rounds, candidate-vector
  /// size, consistency-check prunes, corruption front, label-cache
  /// hits/misses. Null (the default) records nothing and costs nothing —
  /// counters are recorded once per run, never inside the relabeling loop.
  obs::Metrics* metrics = nullptr;
  /// Flattened cores (graph/csr_core.hpp) for the `--core=csr` layout:
  /// `pattern_core` over the pattern graph drives the pattern-side relabel
  /// sweep and the arena-backed censuses; `host_core` over the host graph
  /// is handed to the label cache. Null (the default) runs the legacy
  /// CircuitGraph walks. Either may be set independently; results are
  /// byte-identical in every combination.
  const CsrCore* pattern_core = nullptr;
  const CsrCore* host_core = nullptr;
  /// Optional shard plan over the host (graph/shard_plan.hpp; wired by
  /// HostSession when SessionOptions::shard_target_devices > 0). The
  /// host-side consistency sweeps then run per shard on `pool`, with the
  /// round-0 sweep bulk-skipping shards whose prefilter proves no owned
  /// vertex matches any valid pattern label. Must have been built over the
  /// same host graph. Results — prunes, censuses, candidates, every
  /// counter — are byte-identical to the unsharded sweep at every --jobs;
  /// only the shards_* counters below are new.
  const ShardPlan* shards = nullptr;
};

struct Phase1Result {
  /// False ⇒ Phase I proved no instance of the pattern exists in the host.
  bool feasible = true;

  /// kComplete, or the interruption that cut refinement short (the CV is
  /// then valid but possibly wider than a full run would produce).
  RunOutcome outcome = RunOutcome::kComplete;

  /// Key vertex in the pattern graph (valid iff feasible).
  Vertex key = 0;
  bool key_is_device = false;

  /// Candidate vector: all host vertices that may be images of `key`.
  std::vector<Vertex> candidates;

  /// Relabeling rounds executed (net rounds + device rounds).
  std::size_t rounds = 0;

  /// Pattern vertices still valid at exit.
  std::size_t valid_pattern_vertices = 0;

  /// Host vertices still eligible (not pruned by consistency checks) at
  /// exit — a measure of how sharp the filter was before CV selection.
  std::size_t possible_host_vertices = 0;

  /// Pattern-side edge contributions computed across all relabel rounds —
  /// a deterministic work counter, identical across --jobs and --core.
  /// (Host-side relabel work is accounted by the label cache; see
  /// HostLabelCache::CacheStats::relabel_ops.)
  std::uint64_t relabel_ops = 0;

  /// Sharded-sweep counters (all zero when Phase1Options::shards is null).
  /// Deterministic: the plan is a pure function of the host, the skip rule
  /// a pure function of (plan, pattern). `shards_total` counts the plan's
  /// regions (the anchor boundary sweeps separately and is never skipped);
  /// `shards_skipped` counts regions bulk-skipped for at least one vertex
  /// kind by the round-0 prefilter; `shards_prefilter_rejects` counts
  /// regions rejected for BOTH kinds — fully dead before any search.
  std::size_t shards_total = 0;
  std::size_t shards_skipped = 0;
  std::size_t shards_prefilter_rejects = 0;

  /// Filled only when Phase1Options::keep_labels is set: final labels and
  /// the pattern's valid (non-corrupt) flags, for invariant checking.
  std::vector<Label> pattern_labels;
  std::vector<bool> pattern_valid;
  std::vector<Label> host_labels;
};

/// Run Phase I for `pattern` against `host`.
[[nodiscard]] Phase1Result run_phase1(const CircuitGraph& pattern,
                                      const CircuitGraph& host,
                                      const Phase1Options& options = {});

}  // namespace subg
