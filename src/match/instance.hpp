// Match records and statistics shared by Phase II and the public matcher.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/ids.hpp"

namespace subg {

/// One verified instance of the pattern inside the host: a full
/// vertex-to-vertex mapping, indexed by pattern device/net index.
struct SubcircuitInstance {
  /// device_image[i] = host device matched to pattern device i.
  std::vector<DeviceId> device_image;
  /// net_image[i] = host net matched to pattern net i (globals included,
  /// resolved by name).
  std::vector<NetId> net_image;
};

/// Phase II counters, accumulated across all candidates of a search.
struct Phase2Stats {
  std::size_t candidates_tried = 0;
  std::size_t candidates_matched = 0;
  std::size_t passes = 0;            ///< relabeling passes, all candidates
  std::size_t guesses = 0;           ///< postulated matches at ambiguity points
  std::size_t backtracks = 0;        ///< failed guesses undone
  std::size_t verify_failures = 0;   ///< final explicit verification rejected
  std::size_t max_guess_depth = 0;
};

}  // namespace subg
