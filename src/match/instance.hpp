// Match records and statistics shared by Phase II and the public matcher.
#pragma once

#include <cstddef>
#include <vector>

#include "netlist/ids.hpp"

namespace subg {

/// One verified instance of the pattern inside the host: a full
/// vertex-to-vertex mapping, indexed by pattern device/net index.
struct SubcircuitInstance {
  /// device_image[i] = host device matched to pattern device i.
  std::vector<DeviceId> device_image;
  /// net_image[i] = host net matched to pattern net i (globals included,
  /// resolved by name).
  std::vector<NetId> net_image;
};

/// Phase II counters, accumulated across all candidates of a search.
struct Phase2Stats {
  std::size_t candidates_tried = 0;
  std::size_t candidates_matched = 0;
  std::size_t passes = 0;            ///< relabeling passes, all candidates
  std::size_t bindings = 0;          ///< pattern↔host pairs postulated (key
                                     ///< postulates, singleton matches, and
                                     ///< guesses; re-bindings after a
                                     ///< backtrack count again)
  std::size_t guesses = 0;           ///< postulated matches at ambiguity points
  std::size_t backtracks = 0;        ///< failed guesses undone
  std::size_t verify_failures = 0;   ///< final explicit verification rejected
  std::size_t max_guess_depth = 0;
  std::size_t expansion_ops = 0;     ///< edge visits in the relabel passes
                                     ///< (frontier expansion + label sums,
                                     ///< both sides) — a deterministic work
                                     ///< counter, identical across --jobs
                                     ///< and --core
  std::size_t domain_prunes = 0;     ///< postulates rejected by the
                                     ///< neighborhood-signature prefilter
                                     ///< before any relabeling pass ran
  std::size_t nogood_hits = 0;       ///< rejections served from the
                                     ///< per-candidate nogood memo without
                                     ///< re-running the signature check
  std::size_t trail_undos = 0;       ///< trail entries rolled back while
                                     ///< backtracking (replaces whole-state
                                     ///< snapshot copies)
  std::size_t path_label_prunes = 0; ///< postulates rejected by the
                                     ///< supplemental path-label refuter
                                     ///< (--phase2-filter=paths) after the
                                     ///< signature check passed
  std::size_t symmetry_skips = 0;    ///< exhaustive-enumeration completions
                                     ///< suppressed because they are an
                                     ///< automorphic image of one already
                                     ///< recorded for this candidate

  /// Fold another verifier's counters in (parallel sweeps keep per-worker
  /// stats and merge them; sums are scheduling-order independent).
  void merge(const Phase2Stats& other) {
    candidates_tried += other.candidates_tried;
    candidates_matched += other.candidates_matched;
    passes += other.passes;
    bindings += other.bindings;
    guesses += other.guesses;
    backtracks += other.backtracks;
    verify_failures += other.verify_failures;
    if (other.max_guess_depth > max_guess_depth) {
      max_guess_depth = other.max_guess_depth;
    }
    expansion_ops += other.expansion_ops;
    domain_prunes += other.domain_prunes;
    nogood_hits += other.nogood_hits;
    trail_undos += other.trail_undos;
    path_label_prunes += other.path_label_prunes;
    symmetry_skips += other.symmetry_skips;
  }
};

}  // namespace subg
