// Phase II — candidate verification (paper §IV, Algorithm VerifyImage).
//
// For a candidate c, postulate image(K) = c, give both vertices one fresh
// fixed label, and relabel outward. Only *safe* labels may contribute to a
// relabeling: a partition (same-label vertex group) is safe when its
// pattern and host sides have equal size — under the working hypothesis
// that an instance exists, an equal-sized host partition can contain only
// image vertices. Oversized host partitions are suspect; host vertices
// whose label matches no pattern partition are excluded (not in the image);
// an undersized host partition refutes the hypothesis. Singleton safe
// pairs are matched and receive a fresh fixed label that keeps refining
// their neighborhoods. Throughout,
//
//   Label Invariant (2): if g = image(s) then label(g) == label(s), and
//                        g and s are both safe or both suspect.
//
// When refinement stalls (symmetric patterns, Fig 5) the verifier guesses a
// match inside the smallest stalled partition and recurses with full state
// save/restore (backtracking). A fully matched mapping is then verified
// explicitly — edges, pin equivalence classes, induced-ness of internal
// nets — so reported instances are sound even if 64-bit labels collide.
//
// Special signals (paper §IV.A): global nets are pre-matched by name,
// carry fixed name-derived labels, are never relabeled and never expand the
// search frontier — matching a pattern against a 100k-fanout rail must not
// drag the whole rail fanout into the refinement.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "graph/circuit_graph.hpp"
#include "match/instance.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace subg {

class CsrCore;

/// Optional pass-by-pass trace (used to regenerate the paper's Table 1).
struct Phase2Trace {
  struct Entry {
    std::size_t candidate;  ///< 1-based index of the verify() call
    std::size_t pass;   ///< relabeling pass, 1-based; 0 = initial postulate
    bool host;          ///< false: pattern-side vertex; true: host-side
    Vertex vertex;
    Label label;
    bool safe;
    bool matched;
  };
  std::vector<Entry> entries;
};

struct Phase2Options {
  std::uint64_t seed = 0x53554247454D494EULL;  // "SUBGEMIN"
  std::size_t max_passes_per_candidate = 1u << 20;
  std::size_t max_guess_depth = 4096;
  /// Wall-clock / cancellation envelope, polled once per relabeling pass
  /// and per guess branch. Hitting any limit (caps included) is recorded in
  /// the verifier's RunStatus — never silently.
  Budget budget;
  /// When non-null, every pass appends the labels of both graphs' live
  /// vertices. Only use on small examples.
  Phase2Trace* trace = nullptr;
  /// Flattened cores for the `--core=csr` layout (see graph/csr_core.hpp):
  /// the relabel passes then iterate the SoA edge arrays. Null = legacy
  /// CircuitGraph walks; labels, matches, and traces are bit-identical
  /// either way (same arithmetic in the same edge order).
  const CsrCore* pattern_core = nullptr;
  const CsrCore* host_core = nullptr;
};

class Phase2Verifier {
 public:
  /// Both graphs must outlive the verifier. Pattern global nets are
  /// resolved against same-named host global nets at construction.
  Phase2Verifier(const CircuitGraph& pattern, const CircuitGraph& host,
                 Phase2Options options = {});

  /// False when some pattern global net has no same-named global net in the
  /// host — then no instance can exist and verify() always returns nullopt.
  [[nodiscard]] bool globals_resolved() const { return globals_resolved_; }

  /// Attempt to find one instance in which `candidate` is the image of
  /// `key`. Returns the full mapping on success.
  [[nodiscard]] std::optional<SubcircuitInstance> verify(Vertex key,
                                                         Vertex candidate);

  /// Enumerate EVERY instance in which `candidate` is the image of `key`
  /// (deduplicated by host device set), by exploring all guess branches
  /// instead of stopping at the first completion. Forced (refinement)
  /// steps are shared by all such instances, so only ambiguity points
  /// branch; symmetric patterns still enumerate automorphic assignments,
  /// so `limit` caps the work. Used for exhaustive matching semantics.
  [[nodiscard]] std::vector<SubcircuitInstance> enumerate(Vertex key,
                                                          Vertex candidate,
                                                          std::size_t limit);

  [[nodiscard]] const Phase2Stats& stats() const { return stats_; }

  /// How the verification work done so far went: kComplete, or the first
  /// cap/deadline/cancellation that abandoned part of the search, with
  /// counters for abandoned guess branches. Accumulated across verify() /
  /// enumerate() calls, like stats().
  [[nodiscard]] const RunStatus& status() const { return status_; }

  /// Return the accumulated status and reset it to kComplete. Parallel
  /// sweeps call this after every candidate so per-candidate statuses can
  /// be merged in seed-index order — reproducing the serial run's report
  /// regardless of which worker verified which candidate.
  [[nodiscard]] RunStatus take_status() {
    RunStatus out = std::move(status_);
    status_ = RunStatus{};
    return out;
  }

 private:
  struct Slot {
    Vertex vertex;
    Label label = kNoLabel;
    bool safe = false;      // as of the last completed pass
    bool excluded = false;  // proven outside the image under this hypothesis
    Vertex matched_to = kInvalidVertex;  // pattern vertex, if matched
  };

  /// Complete mutable search state; copied wholesale for backtracking.
  struct State {
    // Pattern side (dense arrays over pattern vertices).
    std::vector<Label> label_s;
    std::vector<bool> considered_s;
    std::vector<bool> safe_s;                 // as of the last completed pass
    std::vector<Vertex> matched_s;            // host vertex, if matched
    std::size_t matched_count = 0;            // matched non-special vertices
    std::size_t safe_unmatched = 0;           // |safe ∧ ¬matched| pattern side
    // Host side (sparse: only vertices the refinement has touched).
    std::unordered_map<Vertex, std::uint32_t> slot_of;
    std::vector<Slot> slots;
    SplitMix64 rng;
    std::size_t passes = 0;
  };

  enum class Outcome { kSuccess, kFail };

  static constexpr Vertex kInvalidVertex = 0xFFFFFFFFu;

  /// In enumerate mode `sink` collects completions and run() keeps
  /// backtracking (returns kFail upward) until branches are exhausted or
  /// `sink_limit` is reached.
  Outcome run(State& st, std::size_t depth, SubcircuitInstance* out,
              std::vector<SubcircuitInstance>* sink = nullptr,
              std::size_t sink_limit = 0);
  /// One relabel + partition + safety + match pass. Returns false on
  /// refuted hypothesis; sets *progress.
  bool pass(State& st, bool* progress);
  void postulate(State& st, Vertex s, Vertex g);
  std::uint32_t ensure_slot(State& st, Vertex g);
  [[nodiscard]] Label fresh_label(State& st);
  [[nodiscard]] bool extract_mapping(const State& st,
                                     SubcircuitInstance* out) const;
  [[nodiscard]] bool verify_mapping(const SubcircuitInstance& inst) const;
  void record_trace(const State& st, std::size_t pass) const;

  const CircuitGraph& s_;
  const CircuitGraph& g_;
  Phase2Options options_;
  Phase2Stats stats_;
  /// Per-pass relabel result buffers, reused across passes (cleared, never
  /// reallocated) — contents and iteration order are identical to fresh
  /// vectors, so this is safe for bit-identical reports in BOTH cores.
  std::vector<std::pair<Vertex, Label>> new_s_;
  std::vector<std::pair<std::uint32_t, Label>> new_g_;
  RunStatus status_;
  bool globals_resolved_ = true;
  /// Pattern special net vertex → host special net vertex (by name).
  std::vector<Vertex> special_image_;  // indexed by pattern vertex; kInvalidVertex
  /// Host vertices acting as special rails for THIS pattern (same-named
  /// pattern global exists): their fixed label; kNoLabel for ordinary
  /// vertices — including host-declared globals the pattern does not name.
  std::vector<Label> host_fixed_label_;
  std::size_t matchable_total_ = 0;    // non-special pattern vertices
};

}  // namespace subg
