// Phase II — candidate verification (paper §IV, Algorithm VerifyImage).
//
// For a candidate c, postulate image(K) = c, give both vertices one fresh
// fixed label, and relabel outward. Only *safe* labels may contribute to a
// relabeling: a partition (same-label vertex group) is safe when its
// pattern and host sides have equal size — under the working hypothesis
// that an instance exists, an equal-sized host partition can contain only
// image vertices. Oversized host partitions are suspect; host vertices
// whose label matches no pattern partition are excluded (not in the image);
// an undersized host partition refutes the hypothesis. Singleton safe
// pairs are matched and receive a fresh fixed label that keeps refining
// their neighborhoods. Throughout,
//
//   Label Invariant (2): if g = image(s) then label(g) == label(s), and
//                        g and s are both safe or both suspect.
//
// When refinement stalls (symmetric patterns, Fig 5) the verifier guesses a
// match inside the smallest stalled partition and recurses with
// backtracking. Guess branches are unwound by a mutation trail (every state
// write inside a guess subtree is journaled and rolled back in reverse)
// instead of copying the whole State per branch. A fully matched mapping is
// then verified explicitly — edges, pin equivalence classes, induced-ness
// of internal nets — so reported instances are sound even if 64-bit labels
// collide.
//
// The fast path (Phase2Options::signature_filter, on by default) rejects
// postulates before any relabeling runs: a cheap neighborhood signature —
// degree plus the sorted neighbor-degree sequence (devices) or the sorted
// neighbor-type multiset (nets), precomputed in the csr core — is checked
// at candidate entry, on every forced singleton match, and across every
// guess pool. The check is sound (it never rejects a pair that could
// complete: port nets demand host degree >=, internal nets demand equality,
// which final verification enforces anyway), so instances and reports are
// identical with the filter off; only the work counters shrink. Refuted
// pairs are memoized per candidate (nogood recording), so symmetric
// patterns stop re-deriving the same refutation across sibling branches.
//
// Special signals (paper §IV.A): global nets are pre-matched by name,
// carry fixed name-derived labels, are never relabeled and never expand the
// search frontier — matching a pattern against a 100k-fanout rail must not
// drag the whole rail fanout into the refinement.
#pragma once

#include <cstdint>
#include <optional>
#include <unordered_map>
#include <vector>

#include "analyze/analyze.hpp"
#include "graph/circuit_graph.hpp"
#include "match/instance.hpp"
#include "util/budget.hpp"
#include "util/rng.hpp"

namespace subg {

class CsrCore;

/// Optional pass-by-pass trace (used to regenerate the paper's Table 1).
struct Phase2Trace {
  struct Entry {
    std::size_t candidate;  ///< 1-based index of the verify() call
    std::size_t pass;   ///< relabeling pass, 1-based; 0 = initial postulate
    bool host;          ///< false: pattern-side vertex; true: host-side
    Vertex vertex;
    Label label;
    bool safe;
    bool matched;
  };
  std::vector<Entry> entries;
};

struct Phase2Options {
  std::uint64_t seed = 0x53554247454D494EULL;  // "SUBGEMIN"
  std::size_t max_passes_per_candidate = 1u << 20;
  std::size_t max_guess_depth = 4096;
  /// Wall-clock / cancellation envelope, polled once per relabeling pass
  /// and per guess branch. Hitting any limit (caps included) is recorded in
  /// the verifier's RunStatus — never silently.
  Budget budget;
  /// When non-null, every pass appends the labels of both graphs' live
  /// vertices. Only use on small examples.
  Phase2Trace* trace = nullptr;
  /// Flattened cores for the `--core=csr` layout (see graph/csr_core.hpp):
  /// the relabel passes then iterate the SoA edge arrays. Null = legacy
  /// CircuitGraph walks; labels, matches, and traces are bit-identical
  /// either way (same arithmetic in the same edge order).
  const CsrCore* pattern_core = nullptr;
  const CsrCore* host_core = nullptr;
  /// Phase II fast path: the neighborhood-signature prefilter on postulates
  /// (candidate entry, forced singleton matches, guess pools) plus the
  /// per-candidate nogood memo over refuted (pattern, host) pairs. Off
  /// reproduces the pure census search — same instances, same reports,
  /// strictly more passes/guesses — which is what the A/B equivalence
  /// tests and the EXPERIMENTS.md comparisons run.
  bool signature_filter = true;
  /// Supplemental path-label refuter (--phase2-filter=paths). When both
  /// pointers are set, signature_ok additionally compares the closed-walk
  /// counts (analyze::PathLabels::refutes) and rejects pairs the degree
  /// signature cannot tell apart. Sound by the same argument as the
  /// signature filter: a refuted pair can never complete, so instances and
  /// statuses are unchanged; Phase2Stats::path_label_prunes counts the
  /// extra rejections. Both must be built with equal walk_steps over
  /// exactly these two graphs.
  const analyze::PathLabels* pattern_paths = nullptr;
  const analyze::PathLabels* host_paths = nullptr;
  /// Pattern automorphism group for exhaustive enumeration. When set (and
  /// symmetry_dedup), enumerate() suppresses a completion if applying any
  /// automorphism to it yields a mapping already recorded for this
  /// candidate — those copies cover the same host device set, which the
  /// public matcher collapses anyway (matcher.hpp on exhaustive dedup), so
  /// suppression only removes work (Phase2Stats::symmetry_skips), never an
  /// instance from the final report. The matcher enables this only when no
  /// match limit binds: under a limit, suppressed copies could change
  /// WHICH instances fill the quota.
  const analyze::Orbits* pattern_orbits = nullptr;
  bool symmetry_dedup = false;
};

class Phase2Verifier {
 public:
  /// Both graphs must outlive the verifier. Pattern global nets are
  /// resolved against same-named host global nets at construction.
  Phase2Verifier(const CircuitGraph& pattern, const CircuitGraph& host,
                 Phase2Options options = {});

  /// False when some pattern global net has no same-named global net in the
  /// host — then no instance can exist and verify() always returns nullopt.
  [[nodiscard]] bool globals_resolved() const { return globals_resolved_; }

  /// Attempt to find one instance in which `candidate` is the image of
  /// `key`. Returns the full mapping on success.
  [[nodiscard]] std::optional<SubcircuitInstance> verify(Vertex key,
                                                         Vertex candidate);

  /// Enumerate EVERY instance in which `candidate` is the image of `key`,
  /// by exploring all guess branches instead of stopping at the first
  /// completion. Deduplicated by the full (device image, net image) pair —
  /// automorphic branches that permute the pattern onto the same wiring
  /// collapse, while matches that differ only in external-net bindings
  /// (e.g. the two orientations of a pass transistor) are distinct.
  /// Forced (refinement) steps are shared by all such instances, so only
  /// ambiguity points branch; symmetric patterns still enumerate
  /// automorphic assignments, so `limit` caps the work. Used for
  /// exhaustive matching semantics (the public matcher then collapses to
  /// one instance per device set — matcher.hpp documents why).
  [[nodiscard]] std::vector<SubcircuitInstance> enumerate(Vertex key,
                                                          Vertex candidate,
                                                          std::size_t limit);

  [[nodiscard]] const Phase2Stats& stats() const { return stats_; }

  /// How the verification work done so far went: kComplete, or the first
  /// cap/deadline/cancellation that abandoned part of the search, with
  /// counters for abandoned guess branches. Accumulated across verify() /
  /// enumerate() calls, like stats().
  [[nodiscard]] const RunStatus& status() const { return status_; }

  /// Return the accumulated status and reset it to kComplete. Parallel
  /// sweeps call this after every candidate so per-candidate statuses can
  /// be merged in seed-index order — reproducing the serial run's report
  /// regardless of which worker verified which candidate.
  [[nodiscard]] RunStatus take_status() {
    RunStatus out = std::move(status_);
    status_ = RunStatus{};
    return out;
  }

 private:
  static constexpr Vertex kInvalidVertex = 0xFFFFFFFFu;

  struct Slot {
    Vertex vertex;
    Label label = kNoLabel;
    bool safe = false;      // as of the last completed pass
    bool excluded = false;  // proven outside the image under this hypothesis
    Vertex matched_to = kInvalidVertex;  // pattern vertex, if matched
    friend bool operator==(const Slot&, const Slot&) = default;
  };

  /// Complete mutable search state. Guess branches journal their writes on
  /// the trail and roll back on backtrack; whole-State copies survive only
  /// in the SUBG_AUDIT cross-check of that rollback.
  struct State {
    // Pattern side (dense arrays over pattern vertices).
    std::vector<Label> label_s;
    std::vector<bool> considered_s;
    std::vector<bool> safe_s;                 // as of the last completed pass
    std::vector<Vertex> matched_s;            // host vertex, if matched
    std::size_t matched_count = 0;            // matched non-special vertices
    std::size_t safe_unmatched = 0;           // |safe ∧ ¬matched| pattern side
    // Host side (sparse: only vertices the refinement has touched).
    std::unordered_map<Vertex, std::uint32_t> slot_of;
    std::vector<Slot> slots;
    /// Live-slot bitset over the slot array: bit i ⇔ slots[i] is neither
    /// excluded nor matched. Maintained incrementally by every slot write
    /// (and by trail rollback), so relabeling, the partition census, and
    /// the guess-pool domains iterate set bits instead of re-testing flags.
    std::vector<std::uint64_t> live;
    SplitMix64 rng;
    std::size_t passes = 0;
  };

  enum class Outcome { kSuccess, kFail };

  /// One journaled state mutation: enough to restore the old value.
  struct TrailEntry {
    enum class Kind : std::uint8_t {
      kLabelS,
      kConsideredS,
      kSafeS,
      kMatchedS,
      kSlotLabel,
      kSlotSafe,
      kSlotExcluded,
      kSlotMatchedTo,
    };
    Kind kind;
    std::uint32_t index;       // pattern vertex or slot index
    std::uint64_t old_value;
  };

  /// Restore point for one guess branch: trail length + slot count (slots
  /// only grow inside a branch, so rollback truncates) + the scalar
  /// counters and the rng stream, which are cheaper to snapshot than to
  /// journal per mutation.
  struct TrailMark {
    std::size_t entries;
    std::size_t slots;
    std::size_t matched_count;
    std::size_t safe_unmatched;
    std::size_t passes;
    SplitMix64 rng;
  };

  /// Per-vertex signature requirements, precomputed over the pattern at
  /// construction. Devices: the degrees their non-rail pins demand of the
  /// host candidate's pins — exact for internal nets (final verification
  /// enforces induced-ness), lower bounds for ports. Nets: own degree,
  /// port-ness, and the sorted multiset of neighbor device types.
  struct PinProfile {
    std::vector<std::uint32_t> exact;  // sorted ascending
    std::vector<std::uint32_t> lower;  // sorted ascending
    std::vector<Label> nbr_labels;     // sorted ascending (nets only)
    std::uint32_t degree = 0;          // nets only
    bool is_port = false;              // nets only
  };

  /// In enumerate mode `sink` collects completions and run() keeps
  /// backtracking (returns kFail upward) until branches are exhausted or
  /// `sink_limit` is reached.
  Outcome run(State& st, std::size_t depth, SubcircuitInstance* out,
              std::vector<SubcircuitInstance>* sink = nullptr,
              std::size_t sink_limit = 0);
  /// One relabel + partition + safety + match pass. Returns false on
  /// refuted hypothesis; sets *progress.
  bool pass(State& st, bool* progress);
  void postulate(State& st, Vertex s, Vertex g);
  std::uint32_t ensure_slot(State& st, Vertex g);
  [[nodiscard]] Label fresh_label(State& st);
  [[nodiscard]] bool extract_mapping(const State& st,
                                     SubcircuitInstance* out) const;
  [[nodiscard]] bool verify_mapping(const SubcircuitInstance& inst) const;
  void record_trace(const State& st, std::size_t pass) const;
  void reset_candidate_scratch();

  // --- trail-journaled state mutators (recording only inside a guess
  // branch: writes at depth 0 are never rolled back, they die with the
  // candidate's State).
  void set_label_s(State& st, Vertex v, Label l);
  void set_considered_s(State& st, Vertex v);
  void set_safe_s(State& st, Vertex v, bool safe);
  void set_matched_s(State& st, Vertex v, Vertex g);
  void set_slot_label(State& st, std::uint32_t i, Label l);
  void set_slot_safe(State& st, std::uint32_t i, bool safe);
  void set_slot_excluded(State& st, std::uint32_t i, bool excluded);
  void set_slot_matched_to(State& st, std::uint32_t i, Vertex s);
  [[nodiscard]] TrailMark trail_mark(const State& st) const;
  void undo_to(State& st, const TrailMark& mark);
  [[nodiscard]] static bool states_equal(const State& a, const State& b);

  // --- live-slot bitset maintenance.
  static void live_push(State& st);
  static void live_refresh(State& st, std::uint32_t i);
  static void live_shrink(State& st, std::size_t slot_count);
  [[nodiscard]] static bool live_test(const State& st, std::size_t i);

  // --- neighborhood-signature prefilter (the fast path).
  [[nodiscard]] bool signature_ok(Vertex s, Vertex g);
  [[nodiscard]] bool device_compatible(Vertex s, Vertex g);
  [[nodiscard]] bool net_compatible(Vertex s, Vertex g);

  const CircuitGraph& s_;
  const CircuitGraph& g_;
  Phase2Options options_;
  Phase2Stats stats_;
  /// Per-pass relabel result buffers, reused across passes (cleared, never
  /// reallocated) — contents and iteration order are identical to fresh
  /// vectors, so this is safe for bit-identical reports in BOTH cores.
  std::vector<std::pair<Vertex, Label>> new_s_;
  std::vector<std::pair<std::uint32_t, Label>> new_g_;
  /// Partition census buffers: flat (label, member) pairs, stable-sorted by
  /// label — groups replace the per-pass hash maps. Reused like new_*_.
  std::vector<std::pair<Label, Vertex>> part_s_;
  std::vector<std::pair<Label, std::uint32_t>> part_g_;
  std::vector<std::pair<Vertex, Vertex>> to_match_;
  /// Mutation journal for guess-branch rollback, with the active-branch
  /// depth gating what gets recorded.
  std::vector<TrailEntry> trail_;
  std::size_t trail_depth_ = 0;
  /// Per-candidate signature memo: (pattern vertex, host vertex) → checked
  /// verdict. Refuted entries are the nogood set; cleared per candidate so
  /// counters stay deterministic across --jobs lane assignments.
  std::unordered_map<std::uint64_t, bool> compat_cache_;
  /// Legacy-core memo: each queried host device's neighbor degrees, sorted
  /// once (host degrees are fixed for the verifier's lifetime) and served
  /// as a span on every later signature check — mirrors the csr core's
  /// precomputed sorted_neighbor_degrees. offset[g] = start of g's run in
  /// the flat store, kNoMemo until first queried.
  static constexpr std::size_t kNoMemo = static_cast<std::size_t>(-1);
  std::vector<std::uint32_t> host_degree_memo_;
  std::vector<std::size_t> host_degree_memo_offset_;
  /// Signature scratch (device lower-bound matching, host net neighbor
  /// types).
  std::vector<std::uint32_t> degree_rem_scratch_;
  std::vector<Label> host_label_scratch_;
  std::vector<PinProfile> profile_;
  RunStatus status_;
  bool globals_resolved_ = true;
  /// Pattern special net vertex → host special net vertex (by name).
  std::vector<Vertex> special_image_;  // indexed by pattern vertex; kInvalidVertex
  /// Host vertices acting as special rails for THIS pattern (same-named
  /// pattern global exists): their fixed label; kNoLabel for ordinary
  /// vertices — including host-declared globals the pattern does not name.
  std::vector<Label> host_fixed_label_;
  std::size_t matchable_total_ = 0;    // non-special pattern vertices
};

}  // namespace subg
