#include "match/matcher.hpp"

#include <algorithm>
#include <atomic>
#include <optional>
#include <set>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/log.hpp"
#include "util/thread_pool.hpp"
#include "util/timer.hpp"

namespace subg {

namespace {
/// Pattern must be connected when global rails are allowed as connectors:
/// Phase II refinement spreads along edges (crossing rails only via the
/// guess fallback), so an island with no rail anchor could never be placed.
void check_pattern_connected(const CircuitGraph& s) {
  const std::size_t nv = s.vertex_count();
  if (nv == 0) return;
  std::vector<bool> seen(nv, false);
  std::vector<Vertex> stack;
  // Start from any device (patterns always have one).
  stack.push_back(0);
  seen[0] = true;
  while (!stack.empty()) {
    Vertex v = stack.back();
    stack.pop_back();
    for (const auto& e : s.edges(v)) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  for (Vertex v = 0; v < nv; ++v) {
    // Unconnected special rails declared but unused are harmless.
    if (!seen[v] && !(s.is_net(v) && s.degree(v) == 0)) {
      SUBG_CHECK_MSG(false, "pattern netlist is disconnected at "
                                << s.vertex_name(v)
                                << "; split it into connected patterns");
    }
  }
}
}  // namespace

void SubgraphMatcher::check_catalog_compatibility(const Netlist& pattern,
                                                  const Netlist& host) {
  if (&pattern.catalog() == &host.catalog()) return;
  for (const DeviceTypeInfo& pt : pattern.catalog().types()) {
    auto hid = host.catalog().find(pt.name);
    if (!hid) continue;  // host simply has no such devices
    const DeviceTypeInfo& ht = host.catalog().type(*hid);
    SUBG_CHECK_MSG(pt.pin_class == ht.pin_class,
                   "device type '" << pt.name
                                   << "' has different pin structure in the "
                                      "pattern and host catalogs");
  }
}

SubgraphMatcher::SubgraphMatcher(const Netlist& pattern, const Netlist& host,
                                 MatchOptions options)
    : pattern_(pattern),
      host_(host),
      options_(options),
      pattern_graph_(pattern),
      owned_host_graph_(std::in_place, host),
      host_graph_(&*owned_host_graph_) {
  validate_inputs();
  init_cores();
}

SubgraphMatcher::SubgraphMatcher(const Netlist& pattern,
                                 const CircuitGraph& host_graph,
                                 MatchOptions options)
    : pattern_(pattern),
      host_(host_graph.netlist()),
      options_(options),
      pattern_graph_(pattern),
      host_graph_(&host_graph) {
  validate_inputs();
  init_cores();
}

void SubgraphMatcher::init_cores() {
  if (options_.core != CoreMode::kCsr) return;
  // Capacity is a structured refusal, not a crash: a host whose edge count
  // overflows the configured CSR offset width makes find_all() return immediately
  // with this status (instances empty, outcome truncated) — the caller can
  // retry with --core=legacy. Checked here, before any allocation, so the
  // constructor's SUBG_CHECK backstop can never fire through this path.
  core_status_ = CsrCore::capacity_status(pattern_graph_);
  if (core_status_.complete() && options_.host_core == nullptr) {
    core_status_ = CsrCore::capacity_status(*host_graph_);
  }
  if (!core_status_.complete()) return;
  pattern_core_.emplace(pattern_graph_);
  if (options_.host_core != nullptr) {
    SUBG_CHECK_MSG(&options_.host_core->graph() == host_graph_,
                   "external csr core was built over a different host graph");
    host_core_ = options_.host_core;
  } else {
    owned_host_core_.emplace(*host_graph_);
    host_core_ = &*owned_host_core_;
  }
  if (options_.metrics != nullptr) {
    obs::Metrics& m = *options_.metrics;
    m.span_add("csr.build_seconds", pattern_core_->build_seconds());
    std::size_t bytes = pattern_core_->bytes();
    if (owned_host_core_.has_value()) {
      m.span_add("csr.build_seconds", owned_host_core_->build_seconds());
      bytes += owned_host_core_->bytes();
    }
    m.gauge("csr.bytes", static_cast<double>(bytes));
  }
}

void SubgraphMatcher::ensure_certificate() {
  if (certificate_checked_) return;
  certificate_checked_ = true;
  infeasibility_ = analyze::check_feasibility(pattern_, host_);
}

void SubgraphMatcher::ensure_path_labels() {
  const analyze::AnalyzeOptions defaults;
  if (!pattern_paths_.has_value()) {
    // The csr overload walks the same adjacency in the same order, so the
    // counts are bit-identical to the CircuitGraph build — the --core
    // equivalence tests rely on it.
    pattern_paths_ =
        pattern_core_.has_value()
            ? analyze::build_path_labels(*pattern_core_, pattern_,
                                         analyze::Side::kPattern, defaults)
            : analyze::build_path_labels(pattern_graph_, pattern_,
                                         analyze::Side::kPattern, defaults);
  }
  if (host_paths_ == nullptr) {
    if (options_.host_path_labels != nullptr) {
      SUBG_CHECK_MSG(options_.host_path_labels->vertex_count ==
                         host_graph_->vertex_count(),
                     "external host path labels cover a different host");
      host_paths_ = options_.host_path_labels;
    } else {
      owned_host_paths_ =
          host_core_ != nullptr
              ? analyze::build_path_labels(*host_core_, host_,
                                           analyze::Side::kHost, defaults)
              : analyze::build_path_labels(*host_graph_, host_,
                                           analyze::Side::kHost, defaults);
      host_paths_ = &*owned_host_paths_;
    }
  }
}

void SubgraphMatcher::ensure_orbits() {
  if (!pattern_orbits_.has_value()) {
    pattern_orbits_ = analyze::find_orbits(pattern_graph_, pattern_);
  }
}

void SubgraphMatcher::validate_inputs() const {
  SUBG_CHECK_MSG(pattern_.device_count() > 0, "pattern netlist has no devices");
  check_catalog_compatibility(pattern_, host_);
  check_pattern_connected(pattern_graph_);
}

MatchReport SubgraphMatcher::run(std::size_t limit) {
  MatchReport report;
  if (!core_status_.complete()) {
    report.status = core_status_;
    return report;
  }
  if (options_.analyze) {
    // Pre-search infeasibility certificates: each rule is a relaxation of
    // the matcher's own acceptance checks (analyze.hpp), so a certificate
    // means the full search would provably return zero instances — skip it
    // and carry the explanation instead.
    ensure_certificate();
    if (infeasibility_.has_value()) {
      report.infeasible_shortcuts = 1;
      report.infeasibility = infeasibility_;
      if (options_.metrics != nullptr) {
        options_.metrics->add("match.runs");
        options_.metrics->add("match.infeasible_shortcuts");
      }
      return report;
    }
  }
  Timer timer;

  // Resolve the parallelism lanes for this run. An external pool (shared
  // across an extract sweep) wins; otherwise jobs > 1 spins up a private
  // pool for the duration of the call. jobs == 1 keeps pool == nullptr and
  // every downstream branch takes the exact serial code path.
  ThreadPool* pool = options_.pool;
  std::optional<ThreadPool> owned_pool;
  std::size_t jobs = pool != nullptr
                         ? pool->thread_count()
                         : (options_.jobs == 0 ? ThreadPool::default_jobs()
                                               : options_.jobs);
  if (pool == nullptr && jobs > 1) {
    owned_pool.emplace(jobs);
    pool = &*owned_pool;
  }
  if (jobs <= 1) pool = nullptr;
  if (options_.metrics != nullptr && pool != nullptr) pool->enable_timing();

  Phase1Options p1 = options_.phase1;
  p1.budget = options_.budget;  // one envelope governs the whole run
  p1.pool = pool;
  p1.metrics = options_.metrics;
  p1.pattern_core = pattern_core_.has_value() ? &*pattern_core_ : nullptr;
  p1.host_core = host_core_;
  report.phase1 = run_phase1(pattern_graph_, *host_graph_, p1);
  report.phase1_seconds = timer.seconds();
  obs::span_add(options_.metrics, "phase1.seconds", report.phase1_seconds);
  report.status.escalate(report.phase1.outcome,
                         "phase1: refinement interrupted; candidate vector "
                         "selected from a partial refinement");
  if (!report.phase1.feasible) return report;

  Phase2Options p2;
  p2.seed = options_.seed;
  p2.max_passes_per_candidate = options_.max_phase2_passes_per_candidate;
  p2.max_guess_depth = options_.max_guess_depth;
  p2.budget = options_.budget;
  p2.trace = options_.trace;
  p2.signature_filter = options_.phase2_filter != Phase2Filter::kOff;
  p2.pattern_core = pattern_core_.has_value() ? &*pattern_core_ : nullptr;
  p2.host_core = host_core_;
  if (options_.phase2_filter == Phase2Filter::kPaths) {
    ensure_path_labels();
    p2.pattern_paths = &*pattern_paths_;
    p2.host_paths = host_paths_;
  }
  if (options_.analyze && options_.exhaustive &&
      limit == static_cast<std::size_t>(-1)) {
    // Symmetry-aware enumeration dedup is gated off whenever the match
    // limit binds: suppressing a copy could then change WHICH instances
    // fill the quota (phase2.hpp documents the soundness argument).
    ensure_orbits();
    p2.pattern_orbits = &*pattern_orbits_;
    p2.symmetry_dedup = true;
  }

  timer.reset();
  // Matcher-level dedup is by host DEVICE set — the counting convention the
  // Ullmann/VF2 baselines use (and baseline_test pins). Phase II's
  // enumerate() already dedups finer, on the full (device, net) image, so
  // external-net automorphisms are distinguishable there but collapse here.
  std::set<std::vector<std::uint32_t>> seen_device_sets;
  auto accept = [&](SubcircuitInstance&& inst) {
    if (options_.deduplicate || options_.exhaustive) {
      std::vector<std::uint32_t> key_set;
      key_set.reserve(inst.device_image.size());
      for (DeviceId d : inst.device_image) key_set.push_back(d.value);
      std::sort(key_set.begin(), key_set.end());
      if (!seen_device_sets.insert(std::move(key_set)).second) return;
    }
    report.instances.push_back(std::move(inst));
  };
  const std::vector<Vertex>& candidates = report.phase1.candidates;

  // The sweep parallelizes only when the match limit cannot cut it short
  // (each seed's work must be independent of earlier seeds' results) and
  // no pass trace is requested (trace entries interleave).
  const bool limit_binds = options_.exhaustive
                               ? limit != static_cast<std::size_t>(-1)
                               : limit < candidates.size();
  if (pool == nullptr || limit_binds || options_.trace != nullptr ||
      candidates.size() < 2) {
    // Serial sweep: one verifier, candidates in order.
    Phase2Verifier verifier(pattern_graph_, *host_graph_, p2);
    for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
      if (report.instances.size() >= limit) break;
      RunOutcome why;
      if (options_.budget.interrupted(&why)) {
        report.status.escalate(why, std::string("matcher: ") + to_string(why) +
                                        " during the candidate sweep");
        report.status.candidates_skipped += candidates.size() - ci;
        break;
      }
      if (options_.exhaustive) {
        std::vector<SubcircuitInstance> found = verifier.enumerate(
            report.phase1.key, candidates[ci], limit - report.instances.size());
        for (SubcircuitInstance& inst : found) accept(std::move(inst));
      } else {
        auto inst = verifier.verify(report.phase1.key, candidates[ci]);
        if (inst) accept(std::move(*inst));
      }
    }
    report.phase2 = verifier.stats();
    report.status.merge(verifier.status());
  } else {
    // Parallel sweep: every candidate-vector seed is an independent rooted
    // search (verify/enumerate is a pure function of the seed), so lanes
    // claim seeds dynamically; results land in per-seed slots and are
    // merged in seed-index order below. Instances, order, and status come
    // out identical to the serial sweep.
    struct SeedResult {
      std::vector<SubcircuitInstance> found;
      RunStatus status;
      bool skipped = false;
    };
    std::vector<SeedResult> seeds(candidates.size());
    std::atomic<std::size_t> next{0};
    std::atomic<int> first_interrupt{-1};

    RunOutcome why;
    if (options_.budget.interrupted(&why)) {
      // Mirrors the serial loop's check before the first candidate.
      report.status.escalate(why, std::string("matcher: ") + to_string(why) +
                                      " during the candidate sweep");
      report.status.candidates_skipped += candidates.size();
    } else {
      const std::size_t lanes = std::min(jobs, candidates.size());
      std::vector<Phase2Stats> lane_stats(lanes);
      pool->parallel_for(lanes, 1, [&](std::size_t lane_begin,
                                       std::size_t lane_end) {
        for (std::size_t lane = lane_begin; lane < lane_end; ++lane) {
          // Per-lane verifier and budget: verifier state (stats, per-seed
          // status) and the budget's poll/latch counters are lane-private;
          // the budget copies still share the deadline and cancel token.
          Phase2Verifier verifier(pattern_graph_, *host_graph_, p2);
          Budget budget = options_.budget;
          Timer lane_timer;
          std::size_t lane_seeds = 0;
          for (;;) {
            const std::size_t ci =
                next.fetch_add(1, std::memory_order_relaxed);
            if (ci >= candidates.size()) break;
            RunOutcome lane_why;
            if (budget.interrupted(&lane_why)) {
              int expected = -1;
              first_interrupt.compare_exchange_strong(
                  expected, static_cast<int>(lane_why));
              seeds[ci].skipped = true;
              continue;  // keep claiming so every unattempted seed is counted
            }
            ++lane_seeds;
            if (options_.exhaustive) {
              seeds[ci].found = verifier.enumerate(
                  report.phase1.key, candidates[ci], limit);
            } else {
              auto inst = verifier.verify(report.phase1.key, candidates[ci]);
              if (inst) seeds[ci].found.push_back(std::move(*inst));
            }
            seeds[ci].status = verifier.take_status();
          }
          lane_stats[lane] = verifier.stats();
          // Per-lane seed throughput: each lane is its own thread, so these
          // land in distinct shards; the span merge yields (lane count,
          // total busy seconds) and the counter the total seeds claimed.
          obs::span_add(options_.metrics, "phase2.lane_busy",
                        lane_timer.seconds());
          obs::count(options_.metrics, "phase2.lane_seeds_claimed",
                     lane_seeds);
          SUBG_DEBUG("matcher: lane " << lane << " tried "
                                      << lane_stats[lane].candidates_tried
                                      << " seeds, " << lane_stats[lane].passes
                                      << " passes");
        }
      });
      for (const Phase2Stats& stats : lane_stats) report.phase2.merge(stats);

      std::size_t skipped = 0;
      for (const SeedResult& seed : seeds) {
        if (seed.skipped) ++skipped;
      }
      if (skipped > 0) {
        const RunOutcome sweep_why =
            first_interrupt.load() >= 0
                ? static_cast<RunOutcome>(first_interrupt.load())
                : RunOutcome::kCancelled;
        report.status.escalate(sweep_why, std::string("matcher: ") +
                                              to_string(sweep_why) +
                                              " during the candidate sweep");
        report.status.candidates_skipped += skipped;
      }
      // Deterministic seed-index merge: same escalation order and the same
      // acceptance/deduplication order as the serial sweep.
      for (SeedResult& seed : seeds) {
        report.status.merge(seed.status);
        for (SubcircuitInstance& inst : seed.found) accept(std::move(inst));
      }
    }
  }
  report.phase2_seconds = timer.seconds();

  if constexpr (kAuditEnabled) {
    // Both sweep shapes must respect the match limit and hand back complete
    // images (one host device per pattern device, one host net per pattern
    // net — globals resolved by name included).
    SUBG_AUDIT_MSG(report.instances.size() <= limit,
                   "matcher audit: sweep exceeded the match limit");
    for (const SubcircuitInstance& inst : report.instances) {
      SUBG_AUDIT_MSG(inst.device_image.size() == pattern_.device_count(),
                     "matcher audit: instance device image is incomplete");
      SUBG_AUDIT_MSG(inst.net_image.size() == pattern_.net_count(),
                     "matcher audit: instance net image is incomplete");
    }
  }

  if (options_.metrics != nullptr) {
    obs::Metrics& m = *options_.metrics;
    m.span_add("phase2.seconds", report.phase2_seconds);
    const Phase2Stats& stats = report.phase2;
    m.add("phase2.seeds_tried", stats.candidates_tried);
    m.add("phase2.seeds_matched", stats.candidates_matched);
    m.add("phase2.passes", stats.passes);
    m.add("phase2.bindings", stats.bindings);
    m.add("phase2.ambiguity_guesses", stats.guesses);
    m.add("phase2.backtracks", stats.backtracks);
    m.add("phase2.verify_failures", stats.verify_failures);
    m.add("phase2.expansion_ops", stats.expansion_ops);
    // Fast-path counters only when they fired, so runs that never prune or
    // guess (and their golden metric snapshots) are unchanged.
    if (stats.domain_prunes != 0) m.add("phase2.domain_prunes", stats.domain_prunes);
    if (stats.nogood_hits != 0) m.add("phase2.nogood_hits", stats.nogood_hits);
    if (stats.trail_undos != 0) m.add("phase2.trail_undos", stats.trail_undos);
    if (stats.path_label_prunes != 0) {
      m.add("phase2.path_label_prunes", stats.path_label_prunes);
    }
    if (stats.symmetry_skips != 0) {
      m.add("phase2.symmetry_skips", stats.symmetry_skips);
    }
    m.gauge("phase2.max_guess_depth",
            static_cast<double>(stats.max_guess_depth));
    m.add("match.runs");
    m.add("match.instances", report.instances.size());
    if (owned_pool.has_value()) {
      const ThreadPool::Stats ps = owned_pool->stats();
      m.add("pool.tasks", ps.tasks);
      m.add("pool.chunks", ps.chunks);
      m.add("pool.chunks_steal_free", ps.caller_chunks);
      m.span_add("pool.busy", ps.busy_seconds);
    }
  }

  SUBG_DEBUG("matcher: cv=" << report.phase1.candidates.size() << " found="
                            << report.instances.size() << " in "
                            << report.total_seconds() * 1e3 << " ms");
  return report;
}

MatchReport SubgraphMatcher::find_all() { return run(options_.max_matches); }

std::optional<SubcircuitInstance> SubgraphMatcher::find_first() {
  MatchReport report = run(1);
  if (report.instances.empty()) return std::nullopt;
  return std::move(report.instances.front());
}

}  // namespace subg
