#include "match/matcher.hpp"

#include <algorithm>
#include <set>

#include "util/check.hpp"
#include "util/log.hpp"
#include "util/timer.hpp"

namespace subg {

namespace {
/// Pattern must be connected when global rails are allowed as connectors:
/// Phase II refinement spreads along edges (crossing rails only via the
/// guess fallback), so an island with no rail anchor could never be placed.
void check_pattern_connected(const CircuitGraph& s) {
  const std::size_t nv = s.vertex_count();
  if (nv == 0) return;
  std::vector<bool> seen(nv, false);
  std::vector<Vertex> stack;
  // Start from any device (patterns always have one).
  stack.push_back(0);
  seen[0] = true;
  while (!stack.empty()) {
    Vertex v = stack.back();
    stack.pop_back();
    for (const auto& e : s.edges(v)) {
      if (!seen[e.to]) {
        seen[e.to] = true;
        stack.push_back(e.to);
      }
    }
  }
  for (Vertex v = 0; v < nv; ++v) {
    // Unconnected special rails declared but unused are harmless.
    if (!seen[v] && !(s.is_net(v) && s.degree(v) == 0)) {
      SUBG_CHECK_MSG(false, "pattern netlist is disconnected at "
                                << s.vertex_name(v)
                                << "; split it into connected patterns");
    }
  }
}
}  // namespace

void SubgraphMatcher::check_catalog_compatibility(const Netlist& pattern,
                                                  const Netlist& host) {
  if (&pattern.catalog() == &host.catalog()) return;
  for (const DeviceTypeInfo& pt : pattern.catalog().types()) {
    auto hid = host.catalog().find(pt.name);
    if (!hid) continue;  // host simply has no such devices
    const DeviceTypeInfo& ht = host.catalog().type(*hid);
    SUBG_CHECK_MSG(pt.pin_class == ht.pin_class,
                   "device type '" << pt.name
                                   << "' has different pin structure in the "
                                      "pattern and host catalogs");
  }
}

SubgraphMatcher::SubgraphMatcher(const Netlist& pattern, const Netlist& host,
                                 MatchOptions options)
    : pattern_(pattern),
      host_(host),
      options_(options),
      pattern_graph_(pattern),
      owned_host_graph_(std::in_place, host),
      host_graph_(&*owned_host_graph_) {
  validate_inputs();
}

SubgraphMatcher::SubgraphMatcher(const Netlist& pattern,
                                 const CircuitGraph& host_graph,
                                 MatchOptions options)
    : pattern_(pattern),
      host_(host_graph.netlist()),
      options_(options),
      pattern_graph_(pattern),
      host_graph_(&host_graph) {
  validate_inputs();
}

void SubgraphMatcher::validate_inputs() const {
  SUBG_CHECK_MSG(pattern_.device_count() > 0, "pattern netlist has no devices");
  check_catalog_compatibility(pattern_, host_);
  check_pattern_connected(pattern_graph_);
}

MatchReport SubgraphMatcher::run(std::size_t limit) {
  MatchReport report;
  Timer timer;
  Phase1Options p1 = options_.phase1;
  p1.budget = options_.budget;  // one envelope governs the whole run
  report.phase1 = run_phase1(pattern_graph_, *host_graph_, p1);
  report.phase1_seconds = timer.seconds();
  report.status.escalate(report.phase1.outcome,
                         "phase1: refinement interrupted; candidate vector "
                         "selected from a partial refinement");
  if (!report.phase1.feasible) return report;

  Phase2Options p2;
  p2.seed = options_.seed;
  p2.max_passes_per_candidate = options_.max_phase2_passes_per_candidate;
  p2.max_guess_depth = options_.max_guess_depth;
  p2.budget = options_.budget;
  p2.trace = options_.trace;

  timer.reset();
  Phase2Verifier verifier(pattern_graph_, *host_graph_, p2);
  std::set<std::vector<std::uint32_t>> seen_device_sets;
  auto accept = [&](SubcircuitInstance&& inst) {
    if (options_.deduplicate || options_.exhaustive) {
      std::vector<std::uint32_t> key_set;
      key_set.reserve(inst.device_image.size());
      for (DeviceId d : inst.device_image) key_set.push_back(d.value);
      std::sort(key_set.begin(), key_set.end());
      if (!seen_device_sets.insert(std::move(key_set)).second) return;
    }
    report.instances.push_back(std::move(inst));
  };
  const std::vector<Vertex>& candidates = report.phase1.candidates;
  for (std::size_t ci = 0; ci < candidates.size(); ++ci) {
    if (report.instances.size() >= limit) break;
    RunOutcome why;
    if (options_.budget.interrupted(&why)) {
      report.status.escalate(why, std::string("matcher: ") + to_string(why) +
                                      " during the candidate sweep");
      report.status.candidates_skipped += candidates.size() - ci;
      break;
    }
    if (options_.exhaustive) {
      std::vector<SubcircuitInstance> found = verifier.enumerate(
          report.phase1.key, candidates[ci], limit - report.instances.size());
      for (SubcircuitInstance& inst : found) accept(std::move(inst));
    } else {
      auto inst = verifier.verify(report.phase1.key, candidates[ci]);
      if (inst) accept(std::move(*inst));
    }
  }
  report.phase2 = verifier.stats();
  report.status.merge(verifier.status());
  report.phase2_seconds = timer.seconds();

  SUBG_DEBUG("matcher: cv=" << report.phase1.candidates.size() << " found="
                            << report.instances.size() << " in "
                            << report.total_seconds() * 1e3 << " ms");
  return report;
}

MatchReport SubgraphMatcher::find_all() { return run(options_.max_matches); }

std::optional<SubcircuitInstance> SubgraphMatcher::find_first() {
  MatchReport report = run(1);
  if (report.instances.empty()) return std::nullopt;
  return std::move(report.instances.front());
}

}  // namespace subg
