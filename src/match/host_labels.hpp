// Host-side Phase I label sequences, cacheable across patterns.
//
// Phase I relabels the WHOLE host every round (host labels are "true"
// labels — every neighbor contributes, no corrupt bits), so the label array
// after k rounds is a pure function of (host graph, which host nets act as
// special rails and with what fixed labels). Pattern structure only decides
// how many rounds get used and which labels survive consistency pruning.
// Searching one host for a whole cell library therefore recomputes the
// same arrays once per cell; a HostLabelCache shares them.
//
//   HostLabelCache cache(host_graph);
//   Phase1Options opts;
//   opts.host_cache = &cache;
//   run_phase1(pattern1, host_graph, opts);  // computes rounds 0..k1
//   run_phase1(pattern2, host_graph, opts);  // reuses them
//
// Rounds alternate like Phase I does: round 0 = initial invariant labels,
// odd rounds relabel nets, even rounds relabel devices.
//
// Thread safety: labels() may be called concurrently from matches running
// on different threads (the extract sweep shares one cache across a cell
// tier). Lookup and extension are serialized by an internal mutex; the
// returned array reference stays valid for the cache's lifetime (storage is
// a deque, so finished rounds never move) and is immutable once returned,
// so callers may read it without holding any lock.
//
// Core toggle: when a CsrCore over the same host graph is passed, the
// relabel sweep iterates the flat SoA arrays and round 0 is built from the
// precomputed base labels (no Netlist degree lookups). Both paths compute
// the identical label values in the identical edge order, so memoized
// sequences are interchangeable regardless of which core filled them.
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <span>
#include <utility>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace subg::obs {
class Metrics;
}  // namespace subg::obs

namespace subg {

class CsrCore;
class ThreadPool;

class HostLabelCache {
 public:
  /// Identifies a rail configuration: (host net vertex, fixed label) pairs,
  /// sorted by vertex. Built by Phase I from the pattern's global nets.
  using RailKey = std::vector<std::pair<Vertex, Label>>;

  explicit HostLabelCache(const CircuitGraph& host) : g_(&host) {}

  /// Canonicalize a rail key in place: sort and drop duplicate entries.
  /// Aliased globals (two pattern specials resolving to the same host net)
  /// would otherwise pollute the cache key with duplicates — missing the
  /// cache and applying the same rail override twice. Conflicting labels
  /// for one vertex are kept (both sorted, deterministic; the last override
  /// wins when the initial round is built).
  static void normalize(RailKey& rails);

  /// Label array after `round` relabeling steps under `rails`; computed
  /// (and memoized) on demand. The key is canonicalized via normalize()
  /// before lookup. When `pool` is non-null the relabeling sweep is
  /// data-parallel over host vertices (two-buffer synchronous update, so
  /// the result is bit-identical to the serial sweep). When `core` is
  /// non-null (it must flatten this cache's host graph) the sweep runs on
  /// the flat SoA arrays — same values, same order.
  const std::vector<Label>& labels(const RailKey& rails, std::size_t round,
                                   ThreadPool* pool = nullptr,
                                   const CsrCore* core = nullptr);

  [[nodiscard]] const CircuitGraph& host() const { return *g_; }

  /// Number of label arrays currently memoized (for tests/benches).
  [[nodiscard]] std::size_t cached_rounds() const;

  /// Reuse accounting for the metrics registry: a labels() call that only
  /// reads memoized rounds is a hit; every round it has to compute is a
  /// miss, and each computed round adds its edge visits to relabel_ops.
  /// Updated under the cache mutex, so reads are exact.
  struct CacheStats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Edge contributions computed by relabel sweeps (a pure function of
    /// which rounds were computed — identical across --jobs and --core).
    std::uint64_t relabel_ops = 0;
  };
  [[nodiscard]] CacheStats stats() const;

  /// "No corresponding vertex" sentinel for the rebase vertex maps.
  static constexpr Vertex kNoVertex = static_cast<Vertex>(-1);

  /// Rebase the memoized sequences onto `new_host` after an ECO edit,
  /// returning a fresh cache (the class owns a mutex, so it cannot move).
  /// `old_to_new[old_v]` / `new_to_old[new_v]` map vertices across the edit
  /// (kNoVertex = removed/created); `dirty_seed` lists new-graph vertices
  /// whose labels may differ from their mapped old values (edited nets,
  /// fresh vertices are added implicitly). Only labels inside the seed's
  /// r-hop neighborhood are recomputed at round r — everything else copies
  /// its old value, which is sound because a non-dirty vertex's round-r
  /// label depends only on non-dirty round-(r-1) neighbors with unchanged
  /// adjacency (device pins are immutable and nets are only removable at
  /// degree 0, so a mapped vertex whose pin set changed is in the seed).
  /// Cache keys whose rail vertex was removed are dropped. Reuse stats
  /// carry over (session-cumulative); the recomputed-label count is added
  /// to *invalidated (the eco.invalidated_labels counter) when non-null.
  /// Under SUBG_AUDIT every rebased round is checked against a cold
  /// recompute over the new host (A18).
  [[nodiscard]] std::unique_ptr<HostLabelCache> rebase(
      const CircuitGraph& new_host, std::span<const Vertex> old_to_new,
      std::span<const Vertex> new_to_old, std::span<const Vertex> dirty_seed,
      std::uint64_t* invalidated) const;

 private:
  const CircuitGraph* g_;
  /// Deque per rail key: push_back never moves finished rounds, so label
  /// array references handed out survive concurrent extension.
  std::map<RailKey, std::deque<std::vector<Label>>> sequences_;
  mutable std::mutex mutex_;
  CacheStats stats_;
};

/// Record a cache's reuse totals under the uniform metric names
/// ("phase1.label_cache.hits" / ".misses" / ".relabel_ops"). Null-safe;
/// every owner of a cache — the Phase I local fallback, the extract tier
/// sweep, the benches — funnels through here so `--metrics` output and the
/// bench comparator see cache behavior spelled the same way.
void record_cache_stats(obs::Metrics* metrics,
                        const HostLabelCache::CacheStats& stats);

}  // namespace subg
