// Host-side Phase I label sequences, cacheable across patterns.
//
// Phase I relabels the WHOLE host every round (host labels are "true"
// labels — every neighbor contributes, no corrupt bits), so the label array
// after k rounds is a pure function of (host graph, which host nets act as
// special rails and with what fixed labels). Pattern structure only decides
// how many rounds get used and which labels survive consistency pruning.
// Searching one host for a whole cell library therefore recomputes the
// same arrays once per cell; a HostLabelCache shares them.
//
//   HostLabelCache cache(host_graph);
//   Phase1Options opts;
//   opts.host_cache = &cache;
//   run_phase1(pattern1, host_graph, opts);  // computes rounds 0..k1
//   run_phase1(pattern2, host_graph, opts);  // reuses them
//
// Rounds alternate like Phase I does: round 0 = initial invariant labels,
// odd rounds relabel nets, even rounds relabel devices.
#pragma once

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "graph/circuit_graph.hpp"

namespace subg {

class HostLabelCache {
 public:
  /// Identifies a rail configuration: (host net vertex, fixed label) pairs,
  /// sorted by vertex. Built by Phase I from the pattern's global nets.
  using RailKey = std::vector<std::pair<Vertex, Label>>;

  explicit HostLabelCache(const CircuitGraph& host) : g_(&host) {}

  /// Label array after `round` relabeling steps under `rails`; computed
  /// (and memoized) on demand.
  const std::vector<Label>& labels(const RailKey& rails, std::size_t round);

  [[nodiscard]] const CircuitGraph& host() const { return *g_; }

  /// Number of label arrays currently memoized (for tests/benches).
  [[nodiscard]] std::size_t cached_rounds() const;

 private:
  const CircuitGraph* g_;
  std::map<RailKey, std::vector<std::vector<Label>>> sequences_;
};

}  // namespace subg
