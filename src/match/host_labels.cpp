#include "match/host_labels.hpp"

#include <algorithm>

#include "graph/csr_core.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/fault.hpp"
#include "util/thread_pool.hpp"

namespace subg {

namespace {
/// Vertex-parallel grain: small enough to balance, large enough that chunk
/// claiming is noise. Host sweeps are memory-bound, so finer doesn't help.
constexpr std::size_t kRelabelGrain = 4096;
}  // namespace

void HostLabelCache::normalize(RailKey& rails) {
  std::sort(rails.begin(), rails.end());
  rails.erase(std::unique(rails.begin(), rails.end()), rails.end());
}

const std::vector<Label>& HostLabelCache::labels(const RailKey& rails,
                                                 std::size_t round,
                                                 ThreadPool* pool,
                                                 const CsrCore* core) {
  SUBG_FAULT_POINT("cache");
  RailKey key = rails;
  normalize(key);
  if (core != nullptr) {
    SUBG_CHECK_MSG(&core->graph() == g_,
                   "csr core was built over a different host graph");
  }
  if constexpr (kAuditEnabled) {
    // Cache-key stability: every lookup of the same rail set must hash to
    // the same normalized key, or concurrent jobs would fork divergent
    // label sequences for one host.
    SUBG_AUDIT_MSG(std::is_sorted(key.begin(), key.end()),
                   "label-cache audit: rail key not normalized (unsorted)");
    SUBG_AUDIT_MSG(std::adjacent_find(key.begin(), key.end()) == key.end(),
                   "label-cache audit: rail key not normalized (duplicate)");
    for (std::size_t i = 1; i < key.size(); ++i) {
      SUBG_AUDIT_MSG(key[i - 1].first != key[i].first,
                     "label-cache audit: one rail bound to two labels");
    }
  }

  std::lock_guard<std::mutex> lock(mutex_);
  std::deque<std::vector<Label>>& seq = sequences_[key];
  if (seq.size() > round) {
    ++stats_.hits;
  } else {
    // One miss per round actually computed (round 0 included).
    stats_.misses += round + 1 - seq.size();
  }
  if (seq.empty()) {
    // Round 0: invariant labels, with rail overrides. Host-declared globals
    // that are NOT in the rail set get ordinary degree labels (specialness
    // is pattern-driven; see phase1.cpp). The csr core has the base labels
    // precomputed; the legacy path derives net degrees from the Netlist.
    std::vector<Label> init(g_->vertex_count());
    if (core != nullptr) {
      for (Vertex v = 0; v < g_->vertex_count(); ++v) {
        init[v] = core->host_base_label(v);
      }
    } else {
      const Netlist& hnl = g_->netlist();
      for (Vertex v = 0; v < g_->vertex_count(); ++v) {
        init[v] = g_->is_device(v)
                      ? g_->initial_label(v)
                      : degree_label(hnl.net_degree(g_->net_of(v)));
      }
    }
    for (const auto& [vertex, label] : key) {
      SUBG_CHECK_MSG(vertex < g_->vertex_count(), "rail vertex out of range");
      init[vertex] = label;
    }
    seq.push_back(std::move(init));
  }
  if (seq.size() > round) return seq[round];

  // Rail bitmap and per-kind edge-visit totals, hoisted out of the round
  // loop (they depend only on the key): byte flags probe flat, and each
  // computed round's relabel_ops is the degree sum over the side it sweeps.
  std::vector<std::uint8_t> is_rail(g_->vertex_count(), 0);
  for (const auto& [vertex, label] : key) is_rail[vertex] = 1;
  std::uint64_t net_ops = 0, device_ops = 0;
  for (Vertex v = 0; v < g_->vertex_count(); ++v) {
    if (is_rail[v]) continue;
    (g_->is_net(v) ? net_ops : device_ops) += g_->degree(v);
  }

  while (seq.size() <= round) {
    const std::size_t r = seq.size();  // computing labels after round r
    const bool net_round = (r % 2) == 1;
    const std::vector<Label>& prev = seq.back();
    std::vector<Label> next = prev;

    // Two-buffer synchronous update: next[v] depends only on prev, so the
    // vertex sweep is data-parallel and scheduling-order independent. Both
    // cores visit edges in the same order — equal sums bit for bit.
    auto sweep_legacy = [&](std::vector<Label>& out, std::size_t begin,
                            std::size_t end) {
      for (Vertex v = static_cast<Vertex>(begin); v < end; ++v) {
        const bool is_net = g_->is_net(v);
        if (is_net != net_round || is_rail[v] != 0) continue;
        Label sum = 0;
        for (const auto& e : g_->edges(v)) {
          sum += edge_contribution(e.coefficient, prev[e.to]);
        }
        out[v] = relabel(prev[v], sum);
      }
    };
    auto sweep_csr = [&](std::vector<Label>& out, std::size_t begin,
                         std::size_t end) {
      for (Vertex v = static_cast<Vertex>(begin); v < end; ++v) {
        const bool is_net = g_->is_net(v);
        if (is_net != net_round || is_rail[v] != 0) continue;
        const std::span<const Vertex> to = core->neighbors(v);
        const std::span<const Label> coeff = core->coefficients(v);
        Label sum = 0;
        for (std::size_t i = 0; i < to.size(); ++i) {
          sum += edge_contribution(coeff[i], prev[to[i]]);
        }
        out[v] = relabel(prev[v], sum);
      }
    };
    auto sweep_into = [&](std::vector<Label>& out, std::size_t begin,
                          std::size_t end) {
      if (core != nullptr) {
        sweep_csr(out, begin, end);
      } else {
        sweep_legacy(out, begin, end);
      }
    };
    if (pool != nullptr) {
      pool->parallel_for(g_->vertex_count(), kRelabelGrain,
                         [&](std::size_t begin, std::size_t end) {
                           sweep_into(next, begin, end);
                         });
      if constexpr (kAuditEnabled) {
        // Stability across jobs: the parallel sweep must produce exactly
        // the serial labels, or cached rounds would depend on --jobs.
        std::vector<Label> serial = prev;
        sweep_into(serial, 0, g_->vertex_count());
        SUBG_AUDIT_MSG(serial == next,
                       "label-cache audit: parallel relabel sweep diverged "
                       "from the serial sweep");
      }
    } else {
      sweep_into(next, 0, g_->vertex_count());
    }
    if constexpr (kAuditEnabled) {
      // Rail overrides are pinned at round 0 and skipped by every sweep;
      // their labels must never drift between rounds.
      for (const auto& [vertex, label] : key) {
        SUBG_AUDIT_MSG(next[vertex] == label,
                       "label-cache audit: rail override drifted across "
                       "rounds");
      }
    }
    // Work accounting stays out of the (possibly parallel) sweep: the edge
    // visits of a round are a closed form of the swept side's degrees.
    stats_.relabel_ops += net_round ? net_ops : device_ops;
    seq.push_back(std::move(next));
  }
  return seq[round];
}

std::unique_ptr<HostLabelCache> HostLabelCache::rebase(
    const CircuitGraph& new_host, std::span<const Vertex> old_to_new,
    std::span<const Vertex> new_to_old, std::span<const Vertex> dirty_seed,
    std::uint64_t* invalidated) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const std::size_t nv = new_host.vertex_count();
  SUBG_CHECK_MSG(old_to_new.size() == g_->vertex_count() &&
                     new_to_old.size() == nv,
                 "rebase: vertex map sizes do not match the graphs");

  auto fresh = std::make_unique<HostLabelCache>(new_host);
  fresh->stats_ = stats_;

  std::size_t max_round = 0;
  for (const auto& [key, seq] : sequences_) {
    if (!seq.empty()) max_round = std::max(max_round, seq.size() - 1);
  }

  // Dirty BFS level: dist[v] = hop distance from the seed (fresh vertices
  // included), so "dirty at round r" is dist[v] <= r — the k-hop cone an
  // edit can influence after r relabeling steps. One BFS serves every key:
  // dirtiness over-approximates (rails inside the cone stay pinned anyway),
  // and recomputing an unchanged label is sound, just not free.
  constexpr std::uint32_t kUnreached = static_cast<std::uint32_t>(-1);
  std::vector<std::uint32_t> dist(nv, kUnreached);
  std::vector<Vertex> frontier;
  for (Vertex v : dirty_seed) {
    SUBG_CHECK_MSG(v < nv, "rebase: dirty seed vertex out of range");
    if (dist[v] != 0) {
      dist[v] = 0;
      frontier.push_back(v);
    }
  }
  for (Vertex v = 0; v < nv; ++v) {
    if (new_to_old[v] == kNoVertex && dist[v] != 0) {
      dist[v] = 0;
      frontier.push_back(v);
    }
  }
  std::vector<Vertex> next_frontier;
  for (std::uint32_t level = 1;
       level <= max_round && !frontier.empty(); ++level) {
    next_frontier.clear();
    for (Vertex v : frontier) {
      for (const CircuitGraph::Edge& e : new_host.edges(v)) {
        if (dist[e.to] > level) {
          dist[e.to] = level;
          next_frontier.push_back(e.to);
        }
      }
    }
    std::swap(frontier, next_frontier);
  }
  auto is_dirty = [&dist](Vertex v, std::size_t r) { return dist[v] <= r; };

  std::uint64_t recomputed = 0;
  std::uint64_t recompute_edge_visits = 0;
  const Netlist& hnl = new_host.netlist();
  for (const auto& [old_key, old_seq] : sequences_) {
    if (old_seq.empty()) continue;
    // Remap the rail key; a key whose rail net was removed is dropped (no
    // pattern can ask for it again without re-resolving the rail, which
    // would produce a new key).
    RailKey key;
    key.reserve(old_key.size());
    bool lost_rail = false;
    for (const auto& [v, label] : old_key) {
      const Vertex mapped = old_to_new[v];
      if (mapped == kNoVertex) {
        lost_rail = true;
        break;
      }
      key.emplace_back(mapped, label);
    }
    if (lost_rail) continue;
    normalize(key);
    std::vector<std::uint8_t> is_rail(nv, 0);
    for (const auto& [v, label] : key) is_rail[v] = 1;

    std::deque<std::vector<Label>> seq;
    std::vector<Label> init(nv);
    for (Vertex v = 0; v < nv; ++v) {
      if (is_dirty(v, 0)) {
        init[v] = new_host.is_device(v)
                      ? new_host.initial_label(v)
                      : degree_label(hnl.net_degree(new_host.net_of(v)));
        ++recomputed;
      } else {
        init[v] = old_seq[0][new_to_old[v]];
      }
    }
    for (const auto& [v, label] : key) init[v] = label;
    seq.push_back(std::move(init));

    for (std::size_t r = 1; r < old_seq.size(); ++r) {
      const bool net_round = (r % 2) == 1;
      const std::vector<Label>& prev = seq.back();
      std::vector<Label> next = prev;
      for (Vertex v = 0; v < nv; ++v) {
        if (new_host.is_net(v) != net_round || is_rail[v] != 0) continue;
        if (is_dirty(v, r)) {
          Label sum = 0;
          for (const CircuitGraph::Edge& e : new_host.edges(v)) {
            sum += edge_contribution(e.coefficient, prev[e.to]);
          }
          next[v] = relabel(prev[v], sum);
          ++recomputed;
          recompute_edge_visits += new_host.degree(v);
        } else {
          next[v] = old_seq[r][new_to_old[v]];
        }
      }
      seq.push_back(std::move(next));
    }

    if constexpr (kAuditEnabled) {
      // A18 — cache-invalidation completeness: every rebased round must
      // equal a cold recompute over the edited host. A miss here means the
      // dirty cone was too small (an invalidation bug), not a label bug.
      HostLabelCache cold(new_host);
      for (std::size_t r = 0; r < seq.size(); ++r) {
        SUBG_AUDIT_MSG(cold.labels(key, r) == seq[r],
                       "label-cache audit (A18): rebased round diverged "
                       "from a cold recompute of the edited host");
      }
    }
    fresh->sequences_.emplace(std::move(key), std::move(seq));
  }
  fresh->stats_.relabel_ops += recompute_edge_visits;
  if (invalidated != nullptr) *invalidated += recomputed;
  return fresh;
}

HostLabelCache::CacheStats HostLabelCache::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return stats_;
}

std::size_t HostLabelCache::cached_rounds() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::size_t total = 0;
  for (const auto& [key, seq] : sequences_) total += seq.size();
  return total;
}

void record_cache_stats(obs::Metrics* metrics,
                        const HostLabelCache::CacheStats& stats) {
  if (metrics == nullptr) return;
  metrics->add("phase1.label_cache.hits", stats.hits);
  metrics->add("phase1.label_cache.misses", stats.misses);
  metrics->add("phase1.label_cache.relabel_ops", stats.relabel_ops);
}

}  // namespace subg
