#include "verilog/verilog.hpp"

#include <cctype>
#include <fstream>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/check.hpp"
#include "util/strings.hpp"

namespace subg::verilog {

namespace {

// --- tokenizer ----------------------------------------------------------

struct Token {
  std::string text;
  std::size_t line;
};

/// Recoverable parse failure; converted to subg::Error (strict mode) or a
/// Diagnostic (recovering mode) at a statement or module boundary.
struct StmtFail {
  std::size_t line;
  std::string message;
};

[[noreturn]] void parse_error(std::size_t line, const std::string& what) {
  throw StmtFail{line, what};
}

/// Strict-mode error text, kept byte-identical to the historical format.
[[noreturn]] void throw_strict(const StmtFail& fail) {
  throw Error("verilog: line " + std::to_string(fail.line) + ": " +
              fail.message);
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '$';
}

std::vector<Token> tokenize(std::istream& in, const ReadOptions& options) {
  std::vector<Token> out;
  std::string line;
  std::size_t lineno = 0;
  bool in_block_comment = false;
  while (std::getline(in, line)) {
    ++lineno;
    std::size_t i = 0;
    while (i < line.size()) {
      if (in_block_comment) {
        auto end = line.find("*/", i);
        if (end == std::string::npos) {
          i = line.size();
        } else {
          i = end + 2;
          in_block_comment = false;
        }
        continue;
      }
      char c = line[i];
      if (std::isspace(static_cast<unsigned char>(c))) {
        ++i;
        continue;
      }
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '/') break;
      if (c == '/' && i + 1 < line.size() && line[i + 1] == '*') {
        in_block_comment = true;
        i += 2;
        continue;
      }
      if (c == '(' && i + 1 < line.size() && line[i + 1] == '*') {
        out.push_back({"(*", lineno});
        i += 2;
        continue;
      }
      if (c == '*' && i + 1 < line.size() && line[i + 1] == ')') {
        out.push_back({"*)", lineno});
        i += 2;
        continue;
      }
      if (std::string_view("().,;").find(c) != std::string_view::npos) {
        out.push_back({std::string(1, c), lineno});
        ++i;
        continue;
      }
      if (c == '\\') {
        // Escaped identifier: up to whitespace.
        std::size_t start = ++i;
        while (i < line.size() &&
               !std::isspace(static_cast<unsigned char>(line[i]))) {
          ++i;
        }
        out.push_back({line.substr(start, i - start), lineno});
        continue;
      }
      if (ident_char(c)) {
        std::size_t start = i;
        while (i < line.size() && ident_char(line[i])) ++i;
        out.push_back({line.substr(start, i - start), lineno});
        continue;
      }
      StmtFail fail{lineno, std::string("unexpected character '") + c + "'"};
      if (options.diagnostics == nullptr) throw_strict(fail);
      options.diagnostics->add(options.filename, fail.line,
                               Diagnostic::Severity::kError, fail.message);
      ++i;  // recovering: drop the character and keep scanning
    }
  }
  return out;
}

// --- parser -------------------------------------------------------------

struct Parser {
  const ReadOptions& options;
  std::vector<Token> toks;
  std::size_t pos = 0;
  Design design;
  std::string last_module;

  explicit Parser(const ReadOptions& opts)
      : options(opts), design(opts.catalog) {}

  [[nodiscard]] bool done() const { return pos >= toks.size(); }
  [[nodiscard]] bool recovering() const { return options.diagnostics != nullptr; }
  [[nodiscard]] std::size_t eof_line() const {
    return toks.empty() ? 0 : toks.back().line;
  }
  /// Line for an error discovered "here" (next token, or EOF).
  [[nodiscard]] std::size_t here() const {
    return done() ? eof_line() : toks[pos].line;
  }
  void diag(const StmtFail& f) const {
    options.diagnostics->add(options.filename, f.line,
                             Diagnostic::Severity::kError, f.message);
  }
  /// After a failed statement, skip to the start of the next one: consume
  /// up to and including the next ';'. Returns false at EOF or a 'module'
  /// boundary (the caller should give up on this body); leaves 'endmodule'
  /// for the statement loop to consume normally.
  bool sync_statement() {
    while (!done()) {
      const std::string& t = toks[pos].text;
      if (t == ";") {
        ++pos;
        return true;
      }
      if (t == "endmodule") return true;
      if (t == "module") return false;
      ++pos;
    }
    return false;
  }
  [[nodiscard]] const Token& peek() const {
    if (done()) throw StmtFail{eof_line(), "unexpected end of input"};
    return toks[pos];
  }
  Token next() {
    Token t = peek();
    ++pos;
    return t;
  }
  void expect(std::string_view text) {
    Token t = next();
    if (t.text != text) {
      parse_error(t.line, "expected '" + std::string(text) + "', got '" +
                              t.text + "'");
    }
  }
  bool accept(std::string_view text) {
    if (!done() && peek().text == text) {
      ++pos;
      return true;
    }
    return false;
  }

  /// Skip "(* ... *)" and return true if subg_global appeared.
  bool attributes() {
    bool global = false;
    while (accept("(*")) {
      while (!accept("*)")) {
        Token t = next();
        if (t.text == "subg_global") global = true;
      }
    }
    return global;
  }

  /// Pass 1: record every module's name and port list so any definition
  /// order works.
  void scan_modules() {
    std::size_t save = pos;
    while (!done()) {
      if (next().text != "module") continue;
      const std::size_t at = here();
      try {
        Token name = next();
        std::vector<std::string> ports;
        if (accept("(")) {
          while (!accept(")")) {
            Token t = next();
            if (t.text == ",") continue;
            ports.push_back(to_lower(t.text));
          }
        }
        expect(";");
        design.add_module(to_lower(name.text), std::move(ports));
      } catch (const StmtFail& f) {
        if (!recovering()) throw;
        diag(f);
      } catch (const Error& e) {
        // Deeper-layer rejection (duplicate module name...) — recoverable
        // per header; the body parse then skips the unregistered module.
        if (!recovering()) throw;
        diag(StmtFail{at, e.what()});
      }
    }
    pos = save;
  }

  void parse_all() {
    scan_modules();
    while (!done()) {
      const std::size_t at = here();
      try {
        attributes();
        Token t = next();
        if (t.text != "module") {
          parse_error(t.line, "expected 'module', got '" + t.text + "'");
        }
        parse_module();
      } catch (const StmtFail& f) {
        if (!recovering()) throw;
        diag(f);
        while (!done() && toks[pos].text != "module") ++pos;
      } catch (const Error& e) {
        if (!recovering()) throw;
        diag(StmtFail{at, e.what()});
        while (!done() && toks[pos].text != "module") ++pos;
      }
    }
  }

  void parse_module() {
    Token name = next();
    auto found = design.find_module(to_lower(name.text));
    if (!found) {
      // Pass 1 rejected (and skipped) this module's header.
      parse_error(name.line,
                  "module '" + to_lower(name.text) + "' has no usable header");
    }
    Module& mod = design.module(*found);
    last_module = mod.name();
    if (accept("(")) {
      while (!accept(")")) next();  // ports already recorded in pass 1
    }
    expect(";");

    while (true) {
      const std::size_t at = here();
      try {
        bool global = attributes();
        Token t = next();
        if (t.text == "endmodule") return;
        if (t.text == "wire" || t.text == "input" || t.text == "output" ||
            t.text == "inout" || t.text == "supply0" || t.text == "supply1") {
          // Declaration list. supply0/1 and subg_global mark design globals.
          const bool is_global =
              global || t.text == "supply0" || t.text == "supply1";
          if (accept("wire")) {
            // "inout wire a" style.
          }
          while (true) {
            Token n = next();
            std::string net = to_lower(n.text);
            mod.ensure_net(net);
            if (is_global) design.add_global(net);
            Token sep = next();
            if (sep.text == ";") break;
            if (sep.text != ",") parse_error(sep.line, "expected ',' or ';'");
          }
          continue;
        }
        // Instance: TYPE NAME ( connections ) ;
        parse_instance(mod, t);
      } catch (const StmtFail& f) {
        if (!recovering()) throw;
        diag(f);
        if (!sync_statement()) return;
      } catch (const Error& e) {
        if (!recovering()) throw;
        diag(StmtFail{at, e.what()});
        if (!sync_statement()) return;
      }
    }
  }

  void parse_instance(Module& mod, const Token& type_tok) {
    const std::string type_name = to_lower(type_tok.text);
    Token inst_name = next();
    expect("(");

    auto target_module = design.find_module(type_name);
    std::optional<DeviceTypeId> target_type;
    if (!target_module) target_type = design.catalog().find(type_name);
    if (!target_module && !target_type) {
      parse_error(type_tok.line,
                  "unknown module or device type '" + type_name + "'");
    }

    // Formal pin order.
    std::vector<std::string> formals;
    if (target_module) {
      const Module& m = design.module(*target_module);
      for (NetId p : m.ports()) formals.push_back(m.net_name(p));
    } else {
      for (const PinSpec& p : design.catalog().type(*target_type).pins) {
        formals.push_back(p.name);
      }
    }

    std::vector<NetId> actuals(formals.size(), NetId());
    std::vector<bool> bound(formals.size(), false);
    std::size_t positional = 0;
    bool named = false;
    while (!accept(")")) {
      if (accept(",")) continue;
      if (accept(".")) {
        named = true;
        Token pin = next();
        expect("(");
        Token net = next();
        expect(")");
        const std::string pin_name = to_lower(pin.text);
        bool found = false;
        for (std::size_t i = 0; i < formals.size(); ++i) {
          if (equals_icase(formals[i], pin_name)) {
            if (bound[i]) {
              parse_error(pin.line, "pin '" + pin_name + "' bound twice");
            }
            actuals[i] = mod.ensure_net(to_lower(net.text));
            bound[i] = true;
            found = true;
            break;
          }
        }
        if (!found) {
          parse_error(pin.line, "no pin '" + pin_name + "' on '" + type_name +
                                    "'");
        }
      } else {
        if (named) {
          parse_error(peek().line, "cannot mix positional and named "
                                   "connections");
        }
        Token net = next();
        if (positional >= formals.size()) {
          parse_error(net.line, "too many connections for '" + type_name + "'");
        }
        actuals[positional] = mod.ensure_net(to_lower(net.text));
        bound[positional] = true;
        ++positional;
      }
    }
    expect(";");
    for (std::size_t i = 0; i < formals.size(); ++i) {
      if (!bound[i]) {
        parse_error(inst_name.line, "pin '" + formals[i] + "' of '" +
                                        type_name + "' left unconnected");
      }
    }
    if (target_module) {
      mod.add_instance(*target_module, actuals, to_lower(inst_name.text));
    } else {
      mod.add_device(*target_type, actuals, to_lower(inst_name.text));
    }
  }
};

// --- writer -------------------------------------------------------------

/// Verilog identifier: letters, digits, _, non-leading $.
std::string vsanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size() + 2);
  for (char c : name) {
    if (c == '/') {
      out += "__";
    } else if (ident_char(c)) {
      out.push_back(c);
    } else {
      out.push_back('_');
    }
  }
  if (out.empty() ||
      std::isdigit(static_cast<unsigned char>(out.front())) ||
      out.front() == '$') {
    out.insert(out.begin(), '_');
  }
  return out;
}

}  // namespace

Design read(std::istream& in, const ReadOptions& options) {
  Parser parser(options);
  parser.toks = tokenize(in, options);
  try {
    parser.parse_all();
  } catch (const StmtFail& f) {
    throw_strict(f);  // strict mode: anything unrecovered becomes an Error
  }
  return std::move(parser.design);
}

Design read_string(std::string_view text, const ReadOptions& options) {
  std::istringstream in{std::string(text)};
  return read(in, options);
}

Design read_file(const std::string& path, const ReadOptions& options) {
  std::ifstream in(path);
  SUBG_CHECK_MSG(in.good(), "cannot open Verilog file '" << path << "'");
  ReadOptions opts = options;
  if (opts.filename.empty()) opts.filename = path;
  return read(in, opts);
}

Netlist read_flat(std::string_view text, const ReadOptions& options,
                  std::string_view top) {
  std::istringstream in{std::string(text)};
  Parser parser(options);
  parser.toks = tokenize(in, options);
  try {
    parser.parse_all();
  } catch (const StmtFail& f) {
    throw_strict(f);
  }
  std::string chosen =
      top.empty() ? parser.last_module : to_lower(top);
  SUBG_CHECK_MSG(!chosen.empty(), "verilog: no module found");
  return parser.design.flatten(chosen);
}

void write(std::ostream& out, const Netlist& netlist) {
  const std::string mod_name =
      vsanitize(netlist.name().empty() ? "top" : netlist.name());
  out << "// " << mod_name << " — written by subgemini\n";
  out << "module " << mod_name << " (";
  for (std::size_t i = 0; i < netlist.ports().size(); ++i) {
    if (i) out << ", ";
    out << vsanitize(netlist.net_name(netlist.ports()[i]));
  }
  out << ");\n";
  for (NetId p : netlist.ports()) {
    out << "  inout " << vsanitize(netlist.net_name(p)) << ";\n";
  }
  for (std::uint32_t n = 0; n < netlist.net_count(); ++n) {
    const NetId id(n);
    if (netlist.is_port(id)) continue;
    if (netlist.is_global(id)) {
      out << "  (* subg_global *) wire " << vsanitize(netlist.net_name(id))
          << ";\n";
    } else if (netlist.net_degree(id) > 0) {
      out << "  wire " << vsanitize(netlist.net_name(id)) << ";\n";
    }
  }
  for (std::uint32_t d = 0; d < netlist.device_count(); ++d) {
    const DeviceId dev(d);
    const DeviceTypeInfo& info = netlist.device_type_info(dev);
    out << "  " << vsanitize(info.name) << ' '
        << vsanitize(netlist.device_name(dev)) << " (";
    auto pins = netlist.device_pins(dev);
    for (std::uint32_t p = 0; p < pins.size(); ++p) {
      if (p) out << ", ";
      out << '.' << info.pins[p].name << '('
          << vsanitize(netlist.net_name(pins[p])) << ')';
    }
    out << ");\n";
  }
  out << "endmodule\n";
}

std::string write_string(const Netlist& netlist) {
  std::ostringstream out;
  write(out, netlist);
  return out.str();
}

}  // namespace subg::verilog
