// Structural Verilog reader/writer (subset) — the gate-level counterpart
// of the SPICE module, so extracted netlists can flow into standard
// digital tooling and gate-level hosts can come from synthesis output.
//
// Writer: one module per netlist. Every device becomes a named-connection
// instantiation of its catalog type ("nand2 g0 (.a0(n1), .a1(n2), .y(n3));"
// — transistors instantiate as "nmos"/"pmos" the same way). Netlist ports
// become module inout ports; global nets are declared as
// "(* subg_global *) wire vdd;". Names are sanitized to Verilog identifier
// rules ('/' → "__", leading '$' → "_S").
//
// Reader (subset):
//   - // and /* */ comments, (* attribute *) lists (only subg_global is
//     interpreted)
//   - module NAME (port, ...); ... endmodule     (non-ANSI header)
//   - input / output / inout / wire declarations (directions ignored —
//     circuit graphs are undirected; all declared ports become netlist
//     ports)
//   - instantiations with named (.pin(net)) or positional connections;
//     the instance type must name a catalog device type or a module defined
//     in the same source (any definition order), which is expanded like a
//     SPICE subcircuit.
// No vectors/buses, parameters, assigns, or behavioural constructs.
#pragma once

#include <iosfwd>
#include <string>
#include <string_view>

#include "netlist/design.hpp"
#include "util/diagnostics.hpp"

namespace subg::verilog {

struct ReadOptions {
  std::shared_ptr<const DeviceCatalog> catalog = DeviceCatalog::cmos();
  /// Strict mode (null, the default): throw subg::Error at the first
  /// malformed construct. Recovering mode (non-null): record each failure
  /// as a Diagnostic, resynchronize at the next ';' / endmodule / module
  /// boundary, and keep parsing — the returned Design contains everything
  /// that did parse.
  DiagnosticSink* diagnostics = nullptr;
  /// Input path used in diagnostics; read_file fills it automatically.
  std::string filename;
};

/// Parse all modules into a design. Throws subg::Error with a line number
/// on malformed or unsupported input.
[[nodiscard]] Design read(std::istream& in, const ReadOptions& options = {});
[[nodiscard]] Design read_string(std::string_view text,
                                 const ReadOptions& options = {});
[[nodiscard]] Design read_file(const std::string& path,
                               const ReadOptions& options = {});

/// Parse and flatten the given module (default: the last one defined,
/// which is conventionally the top).
[[nodiscard]] Netlist read_flat(std::string_view text,
                                const ReadOptions& options = {},
                                std::string_view top = "");

void write(std::ostream& out, const Netlist& netlist);
[[nodiscard]] std::string write_string(const Netlist& netlist);

}  // namespace subg::verilog
