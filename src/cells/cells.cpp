#include "cells/cells.hpp"

#include "util/check.hpp"

namespace subg::cells {

CellLibrary::CellLibrary(std::shared_ptr<const DeviceCatalog> catalog)
    : design_(std::move(catalog)) {
  nmos_ = design_.catalog().require("nmos");
  pmos_ = design_.catalog().require("pmos");
  SUBG_CHECK_MSG(design_.catalog().type(nmos_).pin_count() == 4 &&
                     design_.catalog().type(pmos_).pin_count() == 4,
                 "CellLibrary needs 4-pin nmos/pmos (d,g,s,b)");
  design_.add_global("vdd");
  design_.add_global("gnd");
}

void CellLibrary::nmos(Module& m, NetId d, NetId g, NetId s) {
  m.add_device(nmos_, {d, g, s, gnd(m)});
}

void CellLibrary::pmos(Module& m, NetId d, NetId g, NetId s) {
  m.add_device(pmos_, {d, g, s, vdd(m)});
}

ModuleId CellLibrary::module(std::string_view name) {
  if (auto found = design_.find_module(name)) return *found;
  return build(name);
}

ModuleId CellLibrary::build(std::string_view name) {
  if (name == "inv") return build_inv();
  if (name == "buf") return build_buf();
  if (name == "nand2") return build_nand(2);
  if (name == "nand3") return build_nand(3);
  if (name == "nand4") return build_nand(4);
  if (name == "nor2") return build_nor(2);
  if (name == "nor3") return build_nor(3);
  if (name == "nor4") return build_nor(4);
  if (name == "and2") return build_and_or(true, 2);
  if (name == "and3") return build_and_or(true, 3);
  if (name == "and4") return build_and_or(true, 4);
  if (name == "or2") return build_and_or(false, 2);
  if (name == "or3") return build_and_or(false, 3);
  if (name == "or4") return build_and_or(false, 4);
  if (name == "aoi21") return build_aoi21();
  if (name == "aoi22") return build_aoi22();
  if (name == "oai21") return build_oai21();
  if (name == "xor2") return build_xor2(false);
  if (name == "xnor2") return build_xor2(true);
  if (name == "tgate") return build_tgate();
  if (name == "mux2") return build_mux2();
  if (name == "dlatch") return build_dlatch();
  if (name == "dff") return build_dff();
  if (name == "fulladder") return build_fulladder();
  if (name == "halfadder") return build_halfadder();
  if (name == "sram6t") return build_sram6t();
  SUBG_CHECK_MSG(false, "unknown cell '" << name << "'");
}

const std::vector<std::string>& CellLibrary::all_cells() {
  static const std::vector<std::string> kCells = {
      "inv",   "buf",   "nand2", "nand3",  "nand4",  "nor2",      "nor3",
      "nor4",  "and2",  "and3",  "and4",   "or2",    "or3",       "or4",
      "aoi21", "aoi22", "oai21", "xor2",   "xnor2",  "tgate",
      "mux2",  "dlatch", "dff",  "fulladder", "halfadder", "sram6t"};
  return kCells;
}

Netlist CellLibrary::pattern(std::string_view name) {
  module(name);  // ensure built
  Netlist flat = design_.flatten(name);
  flat.set_name(std::string(name));
  return flat;
}

std::size_t CellLibrary::transistor_count(std::string_view name) {
  module(name);
  return design_.flattened_device_count(name);
}

ModuleId CellLibrary::build_inv() {
  ModuleId id = design_.add_module("inv", {"a", "y"});
  Module& m = design_.module(id);
  NetId a = *m.find_net("a"), y = *m.find_net("y");
  pmos(m, y, a, vdd(m));
  nmos(m, y, a, gnd(m));
  return id;
}

ModuleId CellLibrary::build_buf() {
  ModuleId inv = module("inv");
  ModuleId id = design_.add_module("buf", {"a", "y"});
  Module& m = design_.module(id);
  NetId mid = m.add_net("mid");
  m.add_instance(inv, {*m.find_net("a"), mid});
  m.add_instance(inv, {mid, *m.find_net("y")});
  return id;
}

ModuleId CellLibrary::build_nand(int n) {
  std::vector<std::string> ports;
  for (int i = 0; i < n; ++i) ports.push_back("a" + std::to_string(i));
  ports.push_back("y");
  ModuleId id = design_.add_module("nand" + std::to_string(n), std::move(ports));
  Module& m = design_.module(id);
  NetId y = *m.find_net("y");
  // Pull-up: n parallel pmos.
  for (int i = 0; i < n; ++i) {
    pmos(m, y, *m.find_net("a" + std::to_string(i)), vdd(m));
  }
  // Pull-down: n series nmos.
  NetId top = y;
  for (int i = 0; i < n; ++i) {
    NetId bottom = (i == n - 1) ? gnd(m) : m.add_net("x" + std::to_string(i));
    nmos(m, top, *m.find_net("a" + std::to_string(i)), bottom);
    top = bottom;
  }
  return id;
}

ModuleId CellLibrary::build_nor(int n) {
  std::vector<std::string> ports;
  for (int i = 0; i < n; ++i) ports.push_back("a" + std::to_string(i));
  ports.push_back("y");
  ModuleId id = design_.add_module("nor" + std::to_string(n), std::move(ports));
  Module& m = design_.module(id);
  NetId y = *m.find_net("y");
  // Pull-up: n series pmos.
  NetId top = vdd(m);
  for (int i = 0; i < n; ++i) {
    NetId bottom = (i == n - 1) ? y : m.add_net("x" + std::to_string(i));
    pmos(m, bottom, *m.find_net("a" + std::to_string(i)), top);
    top = bottom;
  }
  // Pull-down: n parallel nmos.
  for (int i = 0; i < n; ++i) {
    nmos(m, y, *m.find_net("a" + std::to_string(i)), gnd(m));
  }
  return id;
}

ModuleId CellLibrary::build_and_or(bool is_and, int n) {
  // Composed: nand/nor followed by an inverter.
  ModuleId inner = module((is_and ? "nand" : "nor") + std::to_string(n));
  ModuleId inv = module("inv");
  std::vector<std::string> ports;
  for (int i = 0; i < n; ++i) ports.push_back("a" + std::to_string(i));
  ports.push_back("y");
  ModuleId id = design_.add_module(
      (is_and ? "and" : "or") + std::to_string(n), std::move(ports));
  Module& m = design_.module(id);
  NetId ny = m.add_net("ny");
  std::vector<NetId> actuals;
  for (int i = 0; i < n; ++i) actuals.push_back(*m.find_net("a" + std::to_string(i)));
  actuals.push_back(ny);
  m.add_instance(inner, actuals);
  m.add_instance(inv, {ny, *m.find_net("y")});
  return id;
}

ModuleId CellLibrary::build_aoi21() {
  // y = !((a & b) | c)
  ModuleId id = design_.add_module("aoi21", {"a", "b", "c", "y"});
  Module& m = design_.module(id);
  NetId a = *m.find_net("a"), b = *m.find_net("b"), c = *m.find_net("c"),
        y = *m.find_net("y");
  // PDN: (a series b) parallel c.
  NetId x = m.add_net("x");
  nmos(m, y, a, x);
  nmos(m, x, b, gnd(m));
  nmos(m, y, c, gnd(m));
  // PUN: (a parallel b) series c.
  NetId u = m.add_net("u");
  pmos(m, u, a, vdd(m));
  pmos(m, u, b, vdd(m));
  pmos(m, y, c, u);
  return id;
}

ModuleId CellLibrary::build_aoi22() {
  // y = !((a & b) | (c & d))
  ModuleId id = design_.add_module("aoi22", {"a", "b", "c", "d", "y"});
  Module& m = design_.module(id);
  NetId a = *m.find_net("a"), b = *m.find_net("b"), c = *m.find_net("c"),
        d = *m.find_net("d"), y = *m.find_net("y");
  NetId x1 = m.add_net("x1"), x2 = m.add_net("x2");
  nmos(m, y, a, x1);
  nmos(m, x1, b, gnd(m));
  nmos(m, y, c, x2);
  nmos(m, x2, d, gnd(m));
  NetId u = m.add_net("u");
  pmos(m, u, a, vdd(m));
  pmos(m, u, b, vdd(m));
  pmos(m, y, c, u);
  pmos(m, y, d, u);
  return id;
}

ModuleId CellLibrary::build_oai21() {
  // y = !((a | b) & c)
  ModuleId id = design_.add_module("oai21", {"a", "b", "c", "y"});
  Module& m = design_.module(id);
  NetId a = *m.find_net("a"), b = *m.find_net("b"), c = *m.find_net("c"),
        y = *m.find_net("y");
  // PDN: (a parallel b) series c.
  NetId x = m.add_net("x");
  nmos(m, x, a, gnd(m));
  nmos(m, x, b, gnd(m));
  nmos(m, y, c, x);
  // PUN: (a series b) parallel c.
  NetId u = m.add_net("u");
  pmos(m, u, a, vdd(m));
  pmos(m, y, b, u);
  pmos(m, y, c, vdd(m));
  return id;
}

ModuleId CellLibrary::build_xor2(bool invert) {
  // Static CMOS XOR/XNOR with internal input inverters (12T).
  ModuleId inv = module("inv");
  ModuleId id =
      design_.add_module(invert ? "xnor2" : "xor2", {"a", "b", "y"});
  Module& m = design_.module(id);
  NetId a = *m.find_net("a"), b = *m.find_net("b"), y = *m.find_net("y");
  NetId an = m.add_net("an"), bn = m.add_net("bn");
  m.add_instance(inv, {a, an});
  m.add_instance(inv, {b, bn});

  // For XOR:  PDN conducts when a==b   (y low),  PUN when a!=b.
  // For XNOR: swap which inputs drive which network.
  NetId pd_g1a = invert ? a : a, pd_g1b = invert ? bn : b;
  NetId pd_g2a = invert ? an : an, pd_g2b = invert ? b : bn;
  NetId pu_g1a = invert ? an : an, pu_g1b = invert ? bn : b;
  NetId pu_g2a = invert ? a : a, pu_g2b = invert ? b : bn;

  NetId x1 = m.add_net("x1"), x2 = m.add_net("x2");
  nmos(m, y, pd_g1a, x1);
  nmos(m, x1, pd_g1b, gnd(m));
  nmos(m, y, pd_g2a, x2);
  nmos(m, x2, pd_g2b, gnd(m));

  NetId u1 = m.add_net("u1"), u2 = m.add_net("u2");
  pmos(m, u1, pu_g1a, vdd(m));
  pmos(m, y, pu_g1b, u1);
  pmos(m, u2, pu_g2a, vdd(m));
  pmos(m, y, pu_g2b, u2);
  return id;
}

ModuleId CellLibrary::build_tgate() {
  ModuleId id = design_.add_module("tgate", {"x", "y", "en", "enb"});
  Module& m = design_.module(id);
  NetId x = *m.find_net("x"), y = *m.find_net("y"), en = *m.find_net("en"),
        enb = *m.find_net("enb");
  nmos(m, x, en, y);
  pmos(m, x, enb, y);
  return id;
}

ModuleId CellLibrary::build_mux2() {
  // y = s ? b : a. Transmission-gate mux with local select inverter (6T).
  ModuleId inv = module("inv");
  ModuleId id = design_.add_module("mux2", {"a", "b", "s", "y"});
  Module& m = design_.module(id);
  NetId a = *m.find_net("a"), b = *m.find_net("b"), s = *m.find_net("s"),
        y = *m.find_net("y");
  NetId sn = m.add_net("sn");
  m.add_instance(inv, {s, sn});
  // Pass a when s==0.
  nmos(m, a, sn, y);
  pmos(m, a, s, y);
  // Pass b when s==1.
  nmos(m, b, s, y);
  pmos(m, b, sn, y);
  return id;
}

ModuleId CellLibrary::build_dlatch() {
  // Transparent-high transmission-gate latch (10T):
  //   en=1: m follows d; en=0: feedback loop holds.
  ModuleId inv = module("inv");
  ModuleId tg = module("tgate");
  ModuleId id = design_.add_module("dlatch", {"d", "en", "q"});
  Module& m = design_.module(id);
  NetId d = *m.find_net("d"), en = *m.find_net("en"), q = *m.find_net("q");
  NetId enb = m.add_net("enb"), mem = m.add_net("mem"), fb = m.add_net("fb");
  m.add_instance(inv, {en, enb});
  m.add_instance(tg, {d, mem, en, enb});   // input gate, open when en=1
  m.add_instance(inv, {mem, q});
  m.add_instance(inv, {q, fb});
  m.add_instance(tg, {fb, mem, enb, en});  // feedback gate, open when en=0
  return id;
}

ModuleId CellLibrary::build_dff() {
  // Master-slave D flip-flop from two latches and a clock inverter (22T).
  ModuleId inv = module("inv");
  ModuleId latch = module("dlatch");
  ModuleId id = design_.add_module("dff", {"d", "clk", "q"});
  Module& m = design_.module(id);
  NetId d = *m.find_net("d"), clk = *m.find_net("clk"), q = *m.find_net("q");
  NetId clkb = m.add_net("clkb"), mid = m.add_net("mid");
  m.add_instance(inv, {clk, clkb});
  m.add_instance(latch, {d, clkb, mid});  // master transparent when clk=0
  m.add_instance(latch, {mid, clk, q});   // slave transparent when clk=1
  return id;
}

ModuleId CellLibrary::build_fulladder() {
  // NAND/XOR composition (36T):
  //   s = (a ^ b) ^ cin
  //   cout = nand(nand(a,b), nand(cin, a^b))
  ModuleId x2 = module("xor2");
  ModuleId nd2 = module("nand2");
  ModuleId id =
      design_.add_module("fulladder", {"a", "b", "cin", "s", "cout"});
  Module& m = design_.module(id);
  NetId a = *m.find_net("a"), b = *m.find_net("b"), cin = *m.find_net("cin"),
        s = *m.find_net("s"), cout = *m.find_net("cout");
  NetId axb = m.add_net("axb"), n1 = m.add_net("n1"), n2 = m.add_net("n2");
  m.add_instance(x2, {a, b, axb});
  m.add_instance(x2, {axb, cin, s});
  m.add_instance(nd2, {a, b, n1});
  m.add_instance(nd2, {cin, axb, n2});
  m.add_instance(nd2, {n1, n2, cout});
  return id;
}

ModuleId CellLibrary::build_halfadder() {
  // s = a ^ b, c = a & b (nand + inv), 18T.
  ModuleId x2 = module("xor2");
  ModuleId nd2 = module("nand2");
  ModuleId inv = module("inv");
  ModuleId id = design_.add_module("halfadder", {"a", "b", "s", "c"});
  Module& m = design_.module(id);
  NetId a = *m.find_net("a"), b = *m.find_net("b"), s = *m.find_net("s"),
        c = *m.find_net("c");
  NetId nc = m.add_net("nc");
  m.add_instance(x2, {a, b, s});
  m.add_instance(nd2, {a, b, nc});
  m.add_instance(inv, {nc, c});
  return id;
}

ModuleId CellLibrary::build_sram6t() {
  // Classic 6T SRAM bit cell: cross-coupled inverters + two access nmos.
  ModuleId id = design_.add_module("sram6t", {"bl", "blb", "wl"});
  Module& m = design_.module(id);
  NetId bl = *m.find_net("bl"), blb = *m.find_net("blb"),
        wl = *m.find_net("wl");
  NetId t = m.add_net("t"), tb = m.add_net("tb");
  // Inverter t→tb and tb→t, written out so the cell is one flat module.
  pmos(m, tb, t, vdd(m));
  nmos(m, tb, t, gnd(m));
  pmos(m, t, tb, vdd(m));
  nmos(m, t, tb, gnd(m));
  nmos(m, bl, wl, t);
  nmos(m, blb, wl, tb);
  return id;
}

}  // namespace subg::cells
