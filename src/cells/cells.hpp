// Transistor-level CMOS standard-cell library.
//
// Every cell is a hierarchical module over the 4-pin nmos/pmos catalog
// (bulk tied to the rails); power comes in through the global nets "vdd"
// and "gnd". `pattern(name)` flattens a cell into a standalone netlist
// whose signal pins are marked as ports and whose rails are global — i.e.
// exactly the shape SubgraphMatcher expects for a pattern. The same
// modules double as building blocks for the workload generators in
// src/gen/.
//
// Available cells (name → signal ports, transistor count):
//   inv        a y                      2     buf       a y             4
//   nand2..4   a0..a{n-1} y             2n    nor2..4   a0..a{n-1} y    2n
//   and2..4    a0..a{n-1} y             2n+2  or2..4    a0..a{n-1} y    2n+2
//   aoi21      a b c y                  6     oai21     a b c y         6
//   aoi22      a b c d y                8
//   xor2       a b y                    12    xnor2     a b y           12
//   tgate      x y en enb               2     mux2      a b s y         6
//   dlatch     d en q                   10    dff       d clk q         22
//   fulladder  a b cin s cout           36    sram6t    bl blb wl       6
//   halfadder  a b s c                  18
#pragma once

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "netlist/design.hpp"

namespace subg::cells {

class CellLibrary {
 public:
  /// The catalog must provide 4-pin "nmos"/"pmos" types (d,g,s,b with d/s
  /// interchangeable), as DeviceCatalog::cmos() does.
  explicit CellLibrary(
      std::shared_ptr<const DeviceCatalog> catalog = DeviceCatalog::cmos());

  /// The design holding the cell modules; generators may add their own
  /// modules here and instantiate cells.
  [[nodiscard]] Design& design() { return design_; }

  /// Get (building on demand) the module implementing `name`.
  /// Throws subg::Error for unknown cell names.
  ModuleId module(std::string_view name);

  /// Flattened pattern netlist for a cell: signal ports marked as ports,
  /// vdd/gnd marked global.
  [[nodiscard]] Netlist pattern(std::string_view name);

  /// Transistors in the flattened cell.
  [[nodiscard]] std::size_t transistor_count(std::string_view name);

  /// All cell names this library can build.
  [[nodiscard]] static const std::vector<std::string>& all_cells();

 private:
  ModuleId build(std::string_view name);
  ModuleId build_inv();
  ModuleId build_buf();
  ModuleId build_nand(int n);
  ModuleId build_nor(int n);
  ModuleId build_and_or(bool is_and, int n);
  ModuleId build_aoi21();
  ModuleId build_aoi22();
  ModuleId build_oai21();
  ModuleId build_xor2(bool invert);
  ModuleId build_tgate();
  ModuleId build_mux2();
  ModuleId build_dlatch();
  ModuleId build_dff();
  ModuleId build_fulladder();
  ModuleId build_halfadder();
  ModuleId build_sram6t();

  // Helpers working inside a module.
  NetId vdd(Module& m) { return m.ensure_net("vdd"); }
  NetId gnd(Module& m) { return m.ensure_net("gnd"); }
  void nmos(Module& m, NetId d, NetId g, NetId s);
  void pmos(Module& m, NetId d, NetId g, NetId s);

  Design design_;
  DeviceTypeId nmos_;
  DeviceTypeId pmos_;
};

}  // namespace subg::cells
