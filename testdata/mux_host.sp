* an and-or-invert mux built from the library cells, plus a spare inverter
.global vdd gnd

.subckt inv a y
mp y a vdd vdd pmos
mn y a gnd gnd nmos
.ends

.subckt nand2 a b y
mp0 y a vdd vdd pmos
mp1 y b vdd vdd pmos
mn0 y a x  gnd nmos
mn1 x b gnd gnd nmos
.ends

* y = (a & s) | (b & ~s)  via nand-nand
x_inv_s   sel   nsel  inv
x_na      a sel  n1   nand2
x_nb      b nsel n2   nand2
x_out     n1 n2  y    nand2
x_spare   y     yb    inv
.end
