* Deck ends inside a .SUBCKT definition — the classic truncated-file
* failure (interrupted download, clipped email attachment).
.subckt inv in out vdd gnd
mp1 out in vdd vdd pmos
mn1 out in gnd gnd nmos
