* Cards whose pin counts disagree with their targets, mixed with valid
* cards a recovering parse must keep.
.subckt inv in out vdd gnd
mp1 out in vdd vdd pmos
mn1 out in gnd gnd nmos
.ends
.global vdd gnd
x1 a b inv
m2 d g
x2 a y vdd gnd inv
q3 a b c npn
.end
