// An instance of a primitive the catalog does not know; the surrounding
// valid devices must survive a recovering parse.
module top (a, y, vdd, gnd);
  inout a;
  inout y;
  (* subg_global *) wire vdd;
  (* subg_global *) wire gnd;
  frob u1 (.x(a), .z(y));
  pmos u2 (.d(y), .g(a), .s(vdd), .b(vdd));
  nmos u3 (.d(y), .g(a), .s(gnd), .b(gnd));
endmodule
