* schematic inverter
.global vdd gnd
mp out in vdd vdd pmos
mn out in gnd gnd nmos
.end
