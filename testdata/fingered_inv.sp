* inverter drawn with fingered devices (reduce collapses it to 2 transistors)
.global vdd gnd
mp0 y a vdd vdd pmos
mp1 y a vdd vdd pmos
mn0 y a gnd gnd nmos
mn1 y a gnd gnd nmos
mn2 y a gnd gnd nmos
.end
