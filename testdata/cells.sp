* small standard-cell library (transistor level)
.global vdd gnd

.subckt inv a y
mp y a vdd vdd pmos
mn y a gnd gnd nmos
.ends

.subckt nand2 a b y
mp0 y a vdd vdd pmos
mp1 y b vdd vdd pmos
mn0 y a x  gnd nmos
mn1 x b gnd gnd nmos
.ends

.subckt nor2 a b y
mp0 u a vdd vdd pmos
mp1 y b u   vdd pmos
mn0 y a gnd gnd nmos
mn1 y b gnd gnd nmos
.ends
