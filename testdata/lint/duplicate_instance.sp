* lint corpus: two instances named x1 — an error the flat netlist can only
* report by throwing (duplicate device names), so lint catches it pre-flatten
* and the flatten failure itself becomes a second finding.
.global vdd gnd
.subckt inv in out vdd gnd
mp out in vdd vdd pmos
mn out in gnd gnd nmos
.ends
x1 a b vdd gnd inv
x1 b c vdd gnd inv
