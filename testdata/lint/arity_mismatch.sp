* lint corpus: 'mbad' is missing its bulk node. The recovering parser turns
* the card into a diagnostic, which lint surfaces as a "parse" finding.
.global vdd gnd
.subckt top in out vdd gnd
mp out in vdd vdd pmos
mbad out in gnd nmos
mn out in gnd gnd nmos
.ends
