* lint corpus: mi1/mi2 form an island touching no port and no rail — the
* surrounding circuit cannot observe them (warnings).
.global vdd gnd
.subckt top in out vdd gnd
mp out in vdd vdd pmos
mn out in gnd gnd nmos
mi1 i1 i2 i3 i3 nmos
mi2 i2 i1 i3 i3 pmos
.ends
