* lint corpus: clean two-stage buffer — zero findings, exit 0.
.global vdd gnd
.subckt buf in out vdd gnd
mp1 mid in vdd vdd pmos
mn1 mid in gnd gnd nmos
mp2 out mid vdd vdd pmos
mn2 out mid gnd gnd nmos
.ends
