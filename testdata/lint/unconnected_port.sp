* lint corpus: port 'nc' is declared but touches no device — error.
.global vdd gnd
.subckt top in out nc vdd gnd
mp out in vdd vdd pmos
mn out in gnd gnd nmos
.ends
