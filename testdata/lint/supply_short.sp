* lint corpus: xbad ties the SAME net (vdd) to both the child's vdd and gnd
* ports — a zero-device VDD-GND short once flattened. Detectable only at the
* design level (after flatten the rails are one net and the evidence is gone).
.global vdd gnd
.subckt inv in out vdd gnd
mp out in vdd vdd pmos
mn out in gnd gnd nmos
.ends
xgood a b vdd gnd inv
xbad b c vdd vdd inv
