* lint corpus: 'dang' has exactly one terminal (a resistor end) — warning.
.global vdd gnd
.subckt top in out vdd gnd
mp out in vdd vdd pmos
mn out in gnd gnd nmos
rstub dang out 100
.ends
