* lint corpus: net 'float' gates the second stage but nothing drives it.
* With ports declared the net is provably internal, so this is an error.
.global vdd gnd
.subckt top in out vdd gnd
mp1 x in vdd vdd pmos
mn1 x in gnd gnd nmos
mp2 out float vdd vdd pmos
mn2 out float gnd gnd nmos
.ends
