// Standalone driver for the fuzz entry points when libFuzzer is not
// available (gcc builds). Replays every file named on the command line
// through LLVMFuzzerTestOneInput, then runs deterministic byte-level
// mutations of those seeds (flip / insert / delete / truncate) so the CI
// smoke job still explores malformed variants under ASan/UBSan. The
// mutation stream is fixed-seed: a failure reproduces by rerunning the
// same command. Set SUBG_FUZZ_DUMP=<path> to write each input to <path>
// before running it — after an abort, the file holds the offending input.
//
//   fuzz_spice [--iterations=N] seed1.sp seed2.sp ...
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <random>
#include <sstream>
#include <string>
#include <vector>

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size);

namespace {

void run_one(const std::string& input) {
  if (const char* dump = std::getenv("SUBG_FUZZ_DUMP")) {
    std::ofstream out(dump, std::ios::binary | std::ios::trunc);
    out << input;
  }
  LLVMFuzzerTestOneInput(reinterpret_cast<const std::uint8_t*>(input.data()),
                         input.size());
}

}  // namespace

int main(int argc, char** argv) {
  std::size_t iterations = 1000;
  std::vector<std::string> seeds;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--iterations=", 0) == 0) {
      iterations = static_cast<std::size_t>(
          std::strtoull(arg.c_str() + 13, nullptr, 10));
      continue;
    }
    std::ifstream in(arg, std::ios::binary);
    if (!in.good()) {
      std::fprintf(stderr, "fuzz driver: cannot open seed '%s'\n", arg.c_str());
      return 1;
    }
    std::ostringstream buffer;
    buffer << in.rdbuf();
    seeds.push_back(buffer.str());
  }

  for (const std::string& seed : seeds) run_one(seed);

  std::mt19937 rng(0x5eedf00d);
  std::size_t mutations = 0;
  if (!seeds.empty()) {
    for (; mutations < iterations; ++mutations) {
      std::string input = seeds[rng() % seeds.size()];
      const std::size_t edits = 1 + rng() % 8;
      for (std::size_t e = 0; e < edits && !input.empty(); ++e) {
        const std::size_t at = rng() % input.size();
        switch (rng() % 4) {
          case 0:  // flip a byte
            input[at] = static_cast<char>(rng() & 0xFF);
            break;
          case 1:  // delete a byte
            input.erase(at, 1);
            break;
          case 2:  // insert a byte
            input.insert(at, 1, static_cast<char>(rng() & 0xFF));
            break;
          default:  // truncate
            input.resize(at);
            break;
        }
      }
      run_one(input);
    }
  }
  std::printf("fuzz driver: %zu seed(s), %zu mutation(s), all clean\n",
              seeds.size(), mutations);
  return 0;
}
