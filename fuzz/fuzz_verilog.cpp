// Verilog reader fuzz target. Contract under ANY byte sequence: strict
// mode either parses or throws subg::Error; recovering mode never throws —
// every malformed construct must become a Diagnostic and the parser must
// resynchronize without looping forever.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "util/check.hpp"
#include "verilog/verilog.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    static_cast<void>(subg::verilog::read_string(text));
  } catch (const subg::Error&) {
  }
  subg::DiagnosticSink sink;
  subg::verilog::ReadOptions options;
  options.diagnostics = &sink;
  static_cast<void>(subg::verilog::read_string(text, options));
  return 0;
}
