// Static-analyzer fuzz target. Contract under ANY byte sequence: the full
// `subgemini analyze` pipeline — recovering SPICE parse, flatten,
// automorphism search, path-label construction, feasibility certificates,
// text and JSON rendering — never crashes and never throws anything but
// subg::Error (the flatten step may reject what the recovering parser
// salvaged).
//
// The analyzer walks hostile graph shapes (self-loop nets, degree spikes,
// duplicate names), so the pattern-only layers run on every salvageable
// deck, and the host layers run the deck against itself — a self-pairing
// can never be infeasible by construction-independent rules alone, but it
// crosses every certificate and path-label code path.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string_view>

#include "analyze/analyze.hpp"
#include "netlist/design.hpp"
#include "report/document.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  subg::DiagnosticSink sink;
  subg::spice::ReadOptions options;
  options.diagnostics = &sink;
  options.filename = "fuzz.sp";
  const subg::Design design = subg::spice::read_string(text, options);

  try {
    const subg::Netlist flat = design.flatten(
        design.module_count() > 0
            ? design.module(subg::ModuleId(0)).name()
            : std::string());

    subg::analyze::AnalyzeOptions ao;
    // Tight caps keep pathological symmetric soups (k identical parallel
    // devices have k! automorphisms) inside the fuzz time budget; capped
    // searches are exactly the complete=false path worth covering.
    ao.max_automorphisms = 32;
    ao.max_search_nodes = 1u << 10;

    const subg::analyze::AnalysisReport pattern_only =
        subg::analyze::analyze(flat, nullptr, ao);
    const subg::analyze::AnalysisReport self_paired =
        subg::analyze::analyze(flat, &flat, ao);

    // Both renderings must cope with whatever names the parser salvaged
    // (control bytes, embedded quotes, invalid UTF-8).
    std::ostringstream out;
    subg::analyze::write_text(pattern_only, out);
    subg::analyze::write_text(self_paired, out);
    subg::report::Document doc("subgemini", "analyze");
    doc.set("analysis", subg::report::to_json(self_paired));
    doc.write(out);
  } catch (const subg::Error&) {
    // Unflattenable-but-parseable decks are rejected upstream of the
    // analyzer; the CLI surfaces them as a parse error.
  }
  return 0;
}
