// Lint entry-point fuzz target. Contract under ANY byte sequence: the full
// `subgemini lint` pipeline — recovering SPICE parse, diagnostic import,
// design-level checks, flatten, flat-netlist checks, text and JSON
// rendering — never crashes and never throws anything but subg::Error (the
// flatten step may reject what the recovering parser salvaged).
//
// The lint layer is the one component whose whole job is digesting sick
// inputs, so it gets the harshest diet: every check runs, with a small
// per-check cap so a pathological deck cannot balloon the report.
#include <cstddef>
#include <cstdint>
#include <sstream>
#include <string_view>

#include "lint/lint.hpp"
#include "netlist/design.hpp"
#include "report/document.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  subg::DiagnosticSink sink;
  subg::spice::ReadOptions options;
  options.diagnostics = &sink;
  options.filename = "fuzz.sp";
  const subg::Design design = subg::spice::read_string(text, options);

  subg::lint::LintOptions lo;
  lo.max_findings_per_check = 8;
  subg::lint::LintReport report;
  report.merge(subg::lint::import_diagnostics(sink, lo));
  report.merge(subg::lint::lint_design(design, lo));
  try {
    const subg::Netlist flat = design.flatten(
        design.module_count() > 0
            ? design.module(subg::ModuleId(0)).name()
            : std::string());
    report.merge(subg::lint::lint_netlist(flat, lo));
  } catch (const subg::Error&) {
    // Unflattenable-but-parseable decks are lint's bread and butter; the
    // CLI reports them as a "flatten" finding.
  }

  // Both renderings must cope with whatever names the parser salvaged
  // (control bytes, embedded quotes, invalid UTF-8).
  std::ostringstream out;
  report.write_text(out);
  subg::report::Document doc("subgemini", "lint");
  doc.set("lint", subg::report::to_json(report));
  doc.write(out);
  return 0;
}
