// SPICE reader fuzz target. Contract under ANY byte sequence: strict mode
// either parses or throws subg::Error (nothing else, no crash, no UB);
// recovering mode never throws at all — every malformed card must become a
// Diagnostic.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "spice/spice.hpp"
#include "util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    static_cast<void>(subg::spice::read_string(text));
  } catch (const subg::Error&) {
    // Strict mode rejecting a malformed deck is the contract, not a bug.
  }
  subg::DiagnosticSink sink;
  subg::spice::ReadOptions options;
  options.diagnostics = &sink;
  static_cast<void>(subg::spice::read_string(text, options));
  return 0;
}
