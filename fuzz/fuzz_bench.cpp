// .bench reader fuzz target. Contract under ANY byte sequence: strict mode
// either parses or throws subg::Error; recovering mode never throws.
#include <cstddef>
#include <cstdint>
#include <string_view>

#include "benchfmt/benchfmt.hpp"
#include "util/check.hpp"

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 16)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);
  try {
    static_cast<void>(subg::benchfmt::read_string(text));
  } catch (const subg::Error&) {
  }
  subg::DiagnosticSink sink;
  subg::benchfmt::ReadOptions options;
  options.diagnostics = &sink;
  try {
    static_cast<void>(subg::benchfmt::read_string(text, options));
  } catch (const subg::Error&) {
    // The final flatten/validate of the surviving statements can still
    // reject (e.g. a port list the recovered gates no longer justify);
    // that is an Error, not a crash.
  }
  return 0;
}
