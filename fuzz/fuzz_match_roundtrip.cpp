// Matcher round-trip fuzz target. Any netlist the SPICE reader accepts (in
// recovering mode, so almost every input yields SOMETHING) must:
//   1. survive write → strict reparse — the writer's output is always a
//      valid deck;
//   2. reparse to a gemini-isomorphic netlist;
//   3. be found whole when matched against itself, under a deadline that
//      must be honored (no unbounded search on adversarial inputs).
// Violations abort; rejected inputs (subg::Error) are not failures.
#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <optional>
#include <string_view>

#include "gemini/gemini.hpp"
#include "util/check.hpp"
#include "match/matcher.hpp"
#include "spice/spice.hpp"

namespace {

[[noreturn]] void die(const char* what, const std::string& deck) {
  std::fprintf(stderr, "fuzz_match_roundtrip: %s\ndeck:\n%s\n", what,
               deck.c_str());
  std::abort();
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size > (1u << 14)) return 0;
  const std::string_view text(reinterpret_cast<const char*>(data), size);

  std::optional<subg::Netlist> net;
  try {
    subg::DiagnosticSink sink;
    subg::spice::ReadOptions options;
    options.diagnostics = &sink;
    subg::Design design = subg::spice::read_string(text, options);
    if (design.flattened_device_count("main") > 64) return 0;
    net = design.flatten("main");
  } catch (const subg::Error&) {
    return 0;  // rejected input (recursive hierarchy etc.) — fine
  }
  if (net->device_count() == 0) return 0;

  const std::string written = subg::spice::write_string(*net);
  std::optional<subg::Netlist> back;
  try {
    back = subg::spice::read_flat(written);
  } catch (const subg::Error& e) {
    die(e.what(), written);
  }

  subg::CompareOptions compare;
  compare.budget = subg::Budget::after(2.0);
  subg::CompareResult same = subg::compare_netlists(*net, *back, compare);
  if (!same.isomorphic && same.outcome == subg::RunOutcome::kComplete) {
    die(("round-trip not isomorphic: " + same.reason).c_str(), written);
  }

  // Self-match under a short deadline: instances found are verified, and
  // the run must come back even on maximally symmetric inputs.
  try {
    subg::MatchOptions options;
    options.budget = subg::Budget::after(0.2);
    subg::SubgraphMatcher matcher(*net, *net, options);
    subg::MatchReport report = matcher.find_all();
    if (report.count() == 0 && report.status.complete()) {
      die("complete self-match found nothing", written);
    }
  } catch (const subg::Error&) {
    // Disconnected patterns are rejected by the matcher up front.
  }
  return 0;
}
