#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "gemini/gemini.hpp"
#include "match/matcher.hpp"
#include "reduce/reduce.hpp"

namespace subg::reduce {
namespace {

class ReduceTest : public ::testing::Test {
 protected:
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId pmos = cat->require("pmos");
  DeviceTypeId res = cat->require("res");
};

TEST_F(ReduceTest, ParallelFingersMerge) {
  // A "3-finger" transistor: three parallel nmos with identical nets.
  Netlist nl(cat);
  NetId d = nl.add_net("d"), g = nl.add_net("g"), s = nl.add_net("s");
  nl.add_device(nmos, {d, g, s}, "f0");
  nl.add_device(nmos, {d, g, s}, "f1");
  nl.add_device(nmos, {s, g, d}, "f2");  // flipped orientation still merges
  Reduced r = reduce_netlist(nl);
  ASSERT_EQ(r.netlist.device_count(), 1u);
  EXPECT_EQ(r.multiplicity(DeviceId(0)), 3u);
  EXPECT_EQ(r.merged_from[0].size(), 3u);
}

TEST_F(ReduceTest, GatePinNotInterchangeable) {
  // Same three nets but the gate differs in position: NOT parallel.
  Netlist nl(cat);
  NetId a = nl.add_net("a"), b = nl.add_net("b"), c = nl.add_net("c");
  nl.add_device(nmos, {a, b, c});  // gate = b
  nl.add_device(nmos, {b, a, c});  // gate = a
  Reduced r = reduce_netlist(nl);
  EXPECT_EQ(r.netlist.device_count(), 2u);
}

TEST_F(ReduceTest, SeriesResistorLadderCollapses) {
  // r1 - r2 - r3 in series through exclusive internal nodes.
  Netlist nl(cat);
  NetId a = nl.add_net("a"), m1 = nl.add_net("m1"), m2 = nl.add_net("m2"),
        b = nl.add_net("b");
  nl.mark_port(a);
  nl.mark_port(b);
  nl.add_device(res, {a, m1});
  nl.add_device(res, {m1, m2});
  nl.add_device(res, {m2, b});
  Reduced r = reduce_netlist(nl);
  ASSERT_EQ(r.netlist.device_count(), 1u);
  EXPECT_EQ(r.multiplicity(DeviceId(0)), 3u);
  // Internal nodes are gone; the endpoints survive as ports.
  EXPECT_FALSE(r.netlist.find_net("m1").has_value());
  ASSERT_EQ(r.netlist.ports().size(), 2u);
}

TEST_F(ReduceTest, SeriesStopsAtProtectedNets) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), tap = nl.add_net("tap"), b = nl.add_net("b");
  nl.mark_port(a);
  nl.mark_port(b);
  nl.add_device(res, {a, tap});
  nl.add_device(res, {tap, b});
  ReduceOptions opts;
  opts.protected_nets = {"tap"};
  Reduced r = reduce_netlist(nl, opts);
  EXPECT_EQ(r.netlist.device_count(), 2u);
  EXPECT_TRUE(r.netlist.find_net("tap").has_value());
}

TEST_F(ReduceTest, SeriesDoesNotCrossHighDegreeNodes) {
  // The middle node also feeds a transistor gate: not exclusive.
  Netlist nl(cat);
  NetId a = nl.add_net("a"), m = nl.add_net("m"), b = nl.add_net("b");
  NetId x = nl.add_net("x"), y = nl.add_net("y");
  nl.add_device(res, {a, m});
  nl.add_device(res, {m, b});
  nl.add_device(nmos, {x, m, y});
  Reduced r = reduce_netlist(nl);
  EXPECT_EQ(r.netlist.device_count(), 3u);
}

TEST_F(ReduceTest, MosNotSeriesMerged) {
  // Series nmos share a node exclusively but MOS stacks are NOT electrically
  // one device (distinct gates); only single-class 2-pin types merge.
  Netlist nl(cat);
  NetId a = nl.add_net("a"), m = nl.add_net("m"), b = nl.add_net("b");
  NetId g1 = nl.add_net("g1"), g2 = nl.add_net("g2");
  nl.add_device(nmos, {a, g1, m});
  nl.add_device(nmos, {m, g2, b});
  Reduced r = reduce_netlist(nl);
  EXPECT_EQ(r.netlist.device_count(), 2u);
}

TEST_F(ReduceTest, FingeredHostMatchesUnsizedPatternAfterReduction) {
  // Host NAND2 whose bottom stack transistor is drawn as two parallel
  // fingers: the pattern's internal stack node has degree 2, the fingered
  // host's has degree 3, so the direct match fails (induced-subgraph rule).
  // After reduction the fingers collapse and the match appears.
  Netlist host(cat, "fingered");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  NetId a = host.add_net("a"), b = host.add_net("b"), y = host.add_net("y"),
        x = host.add_net("x");
  host.add_device(pmos, {y, a, vdd});
  host.add_device(pmos, {y, b, vdd});
  host.add_device(nmos, {y, a, x});
  host.add_device(nmos, {x, b, gnd});
  host.add_device(nmos, {x, b, gnd});  // second finger

  Netlist pattern(cat, "nand2");
  NetId pa = pattern.add_net("a"), pb = pattern.add_net("b"),
        py = pattern.add_net("y"), px = pattern.add_net("x");
  NetId pv = pattern.add_net("vdd"), pg = pattern.add_net("gnd");
  pattern.mark_port(pa);
  pattern.mark_port(pb);
  pattern.mark_port(py);
  pattern.mark_global(pv);
  pattern.mark_global(pg);
  pattern.add_device(pmos, {py, pa, pv});
  pattern.add_device(pmos, {py, pb, pv});
  pattern.add_device(nmos, {py, pa, px});
  pattern.add_device(nmos, {px, pb, pg});

  {
    SubgraphMatcher direct(pattern, host);
    EXPECT_EQ(direct.find_all().count(), 0u);  // fingered stack: no match
  }
  Reduced rhost = reduce_netlist(host);
  EXPECT_EQ(rhost.netlist.device_count(), 4u);
  EXPECT_EQ(rhost.multiplicity(DeviceId(3)), 2u);
  SubgraphMatcher reduced(pattern, rhost.netlist);
  EXPECT_EQ(reduced.find_all().count(), 1u);
}

TEST_F(ReduceTest, IdempotentAndStructurePreserving) {
  cells::CellLibrary lib;
  Netlist cell = lib.pattern("fulladder");
  // A cell with no fingers/ladders must come through untouched.
  Reduced r1 = reduce_netlist(cell);
  EXPECT_EQ(r1.netlist.device_count(), cell.device_count());
  CompareResult cmp = compare_netlists(cell, r1.netlist);
  EXPECT_TRUE(cmp.isomorphic) << cmp.reason;
  // And reducing again changes nothing.
  Reduced r2 = reduce_netlist(r1.netlist);
  EXPECT_EQ(r2.netlist.device_count(), r1.netlist.device_count());
}

TEST_F(ReduceTest, MergedFromCoversAllOriginals) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), m = nl.add_net("m"), b = nl.add_net("b");
  nl.mark_port(a);
  nl.mark_port(b);
  nl.add_device(res, {a, m});
  nl.add_device(res, {a, m});  // parallel pair
  nl.add_device(res, {m, b});
  Reduced r = reduce_netlist(nl);
  std::size_t total = 0;
  for (const auto& origins : r.merged_from) total += origins.size();
  EXPECT_EQ(total, 3u);
  EXPECT_EQ(r.netlist.device_count(), 1u);  // (a=m pair) series (m-b)
}

}  // namespace
}  // namespace subg::reduce
