#include <gtest/gtest.h>

#include <algorithm>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "lvs/lvs.hpp"

namespace subg::lvs {
namespace {

TEST(Lvs, IdenticalNetlistsAreClean) {
  gen::Generated a = gen::ripple_carry_adder(4);
  gen::Generated b = gen::ripple_carry_adder(4);
  LvsReport r = compare(a.netlist, b.netlist);
  EXPECT_TRUE(r.clean);
  EXPECT_TRUE(r.mismatches.empty());
}

TEST(Lvs, FingeredLayoutMatchesSchematicAfterReduction) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos"), pmos = cat->require("pmos");

  // Schematic: plain inverter. Layout: 3-finger pulldown, 2-finger pullup.
  Netlist schem(cat, "schem");
  NetId sv = schem.add_net("vdd"), sg = schem.add_net("gnd");
  schem.mark_global(sv);
  schem.mark_global(sg);
  NetId sa = schem.add_net("a"), sy = schem.add_net("y");
  schem.add_device(pmos, {sy, sa, sv});
  schem.add_device(nmos, {sy, sa, sg});

  Netlist layout(cat, "layout");
  NetId lv = layout.add_net("vdd"), lg = layout.add_net("gnd");
  layout.mark_global(lv);
  layout.mark_global(lg);
  NetId la = layout.add_net("in"), ly = layout.add_net("out");
  for (int i = 0; i < 2; ++i) layout.add_device(pmos, {ly, la, lv});
  for (int i = 0; i < 3; ++i) layout.add_device(nmos, {ly, la, lg});

  LvsReport with = compare(layout, schem);
  EXPECT_TRUE(with.clean) << with.summary;
  EXPECT_EQ(with.left_devices, 2u);  // reduced

  LvsOptions no_reduce;
  no_reduce.reduce_first = false;
  LvsReport without = compare(layout, schem, no_reduce);
  EXPECT_FALSE(without.clean);
}

TEST(Lvs, LocalizesASingleRewiredDevice) {
  gen::Generated a = gen::c17();
  // Build a copy with one nand input moved to the wrong net.
  Netlist bad(a.netlist.catalog_ptr(), "bad");
  for (std::uint32_t n = 0; n < a.netlist.net_count(); ++n) {
    const NetId id(n);
    NetId nn = bad.add_net(a.netlist.net_name(id));
    if (a.netlist.is_global(id)) bad.mark_global(nn);
  }
  for (std::uint32_t d = 0; d < a.netlist.device_count(); ++d) {
    const DeviceId id(d);
    std::vector<NetId> pins;
    for (NetId pn : a.netlist.device_pins(id)) pins.push_back(NetId(pn.value));
    if (d == 18) {
      // Gate 4's top stack nmos (4 devices per nand2): gate pin moved from
      // N10 to N7.
      ASSERT_EQ(a.netlist.net_name(pins[1]), "N10");
      pins[1] = *bad.find_net("N7");
    }
    bad.add_device(a.netlist.device_type(id), pins, a.netlist.device_name(id));
  }

  LvsReport r = compare(a.netlist, bad);
  ASSERT_FALSE(r.clean);
  ASSERT_FALSE(r.mismatches.empty());
  // The defective device or its nets appear in the findings.
  bool mentions_defect = false;
  auto scan = [&](const std::vector<std::string>& names) {
    for (const auto& name : names) {
      if (name.find("x4/") != std::string::npos ||
          name.find("N7") != std::string::npos ||
          name.find("N10") != std::string::npos) {
        mentions_defect = true;
      }
    }
  };
  for (const Mismatch& m : r.mismatches) {
    scan(m.left);
    scan(m.right);
  }
  EXPECT_TRUE(mentions_defect);
}

TEST(Lvs, ReportsDeviceCountMismatch) {
  gen::Generated a = gen::c17();
  gen::Generated b = gen::c17();
  // Drop one device from b.
  std::vector<DeviceId> victim = {DeviceId(0)};
  b.netlist.remove_devices(victim);
  LvsReport r = compare(a.netlist, b.netlist);
  EXPECT_FALSE(r.clean);
  EXPECT_NE(r.summary.find("device counts differ"), std::string::npos);
}

TEST(Lvs, FindingsCapRespected) {
  // Completely different circuits produce many divergences; the report
  // stays bounded.
  gen::Generated a = gen::logic_soup(60, 1);
  gen::Generated b = gen::logic_soup(60, 2);
  LvsOptions opts;
  opts.max_findings = 3;
  LvsReport r = compare(a.netlist, b.netlist, opts);
  EXPECT_FALSE(r.clean);
  EXPECT_LE(r.mismatches.size(), 3u);
}

}  // namespace
}  // namespace subg::lvs
