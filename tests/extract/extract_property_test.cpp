// Extraction property sweep on random standard-cell soups: with a library
// ordered largest-first, every construction-placed cell is recovered
// exactly (composite cells claim their parts first), nothing is left
// unexplained, and expansion round-trips to an isomorphic netlist.
#include <gtest/gtest.h>

#include <map>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"

namespace subg::extract {
namespace {

using cells::CellLibrary;

/// Copy without unconnected nets (never-used soup primary inputs get
/// dropped during extraction's netlist rebuilds).
Netlist drop_dangling(const Netlist& in) {
  Netlist out(in.catalog_ptr(), in.name());
  std::vector<NetId> remap(in.net_count());
  for (std::uint32_t n = 0; n < in.net_count(); ++n) {
    const NetId id(n);
    if (in.net_degree(id) == 0 && !in.is_global(id) && !in.is_port(id)) continue;
    NetId nn = out.add_net(in.net_name(id));
    if (in.is_global(id)) out.mark_global(nn);
    if (in.is_port(id)) out.mark_port(nn);
    remap[n] = nn;
  }
  for (std::uint32_t d = 0; d < in.device_count(); ++d) {
    const DeviceId id(d);
    std::vector<NetId> pins;
    for (NetId pn : in.device_pins(id)) pins.push_back(remap[pn.index()]);
    out.add_device(in.device_type(id), pins, in.device_name(id));
  }
  return out;
}

class ExtractSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ExtractSweep, SoupExtractsExactlyWhatWasPlaced) {
  gen::Generated soup = gen::logic_soup(400, GetParam());

  CellLibrary lib;
  // Exactly the generator's cell mix (no and2/buf, which would absorb
  // nand2+inv / inv+inv combinations the generator didn't intend).
  std::vector<LibraryCell> cells;
  for (const char* name : {"dff", "dlatch", "xor2", "xnor2", "mux2", "aoi22",
                           "aoi21", "oai21", "nand4", "nand3", "nor3", "nand2",
                           "nor2", "inv"}) {
    cells.push_back(LibraryCell{name, lib.pattern(name)});
  }

  ExtractResult result = extract_gates(soup.netlist, cells);
  EXPECT_EQ(result.report.unextracted_primitives, 0u);

  std::map<std::string, std::size_t> found;
  for (const auto& per : result.report.cells) found[per.cell] = per.instances;

  // dlatch is only ever a dff component; the dff claims it first.
  EXPECT_EQ(found["dlatch"], 0u);
  for (const auto& [cell, placed] : soup.placed) {
    EXPECT_EQ(found[cell], placed) << cell << " seed " << GetParam();
  }

  // Round trip.
  Netlist expanded =
      expand_gates(result.netlist, cells, soup.netlist.catalog_ptr());
  CompareResult cmp = compare_netlists(drop_dangling(soup.netlist), expanded);
  EXPECT_TRUE(cmp.isomorphic) << cmp.reason;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ExtractSweep,
                         ::testing::Values(101, 202, 303));

}  // namespace
}  // namespace subg::extract
