#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"

namespace subg::extract {
namespace {

using cells::CellLibrary;

std::vector<LibraryCell> make_library(std::initializer_list<const char*> names) {
  CellLibrary lib;
  std::vector<LibraryCell> cells;
  for (const char* name : names) {
    cells.push_back(LibraryCell{name, lib.pattern(name)});
  }
  return cells;
}

TEST(Extract, ExtendedCatalogAddsCellTypes) {
  auto cells = make_library({"inv", "nand2"});
  auto cat = extended_catalog(*DeviceCatalog::cmos(), cells);
  ASSERT_TRUE(cat->find("nand2").has_value());
  const DeviceTypeInfo& t = cat->type(cat->require("nand2"));
  EXPECT_EQ(t.pin_count(), 3u);  // a0, a1, y
  EXPECT_EQ(t.pins[2].name, "y");
  // Base types survive.
  EXPECT_TRUE(cat->find("nmos").has_value());
}

TEST(Extract, PortEquivalenceClasses) {
  CellLibrary lib;
  // nand2: the inputs are FUNCTIONALLY commutative but STRUCTURALLY
  // ordered — a0 always gates the top of the series stack — so no
  // automorphism exchanges them. (Extraction canonicalizes: a matched
  // instance always reports the top gate as a0, which is why gate-level
  // matching still works; see GateLevelMatchingToleratesSwappedInputs.)
  {
    Netlist p = lib.pattern("nand2");
    auto classes = port_equivalence_classes(p);
    ASSERT_EQ(classes.size(), 3u);
    EXPECT_NE(classes[0], classes[1]);
    EXPECT_NE(classes[0], classes[2]);
  }
  // mux2: a/b NOT interchangeable (swapping them inverts the select sense).
  {
    Netlist p = lib.pattern("mux2");
    auto classes = port_equivalence_classes(p);
    ASSERT_EQ(classes.size(), 4u);
    EXPECT_NE(classes[0], classes[1]);
  }
  // tgate: x/y genuinely interchangeable (source/drain symmetry); en/enb
  // not (they gate different device types).
  {
    Netlist p = lib.pattern("tgate");
    auto classes = port_equivalence_classes(p);
    ASSERT_EQ(classes.size(), 4u);
    EXPECT_EQ(classes[0], classes[1]);
    EXPECT_NE(classes[2], classes[3]);
  }
  // sram6t: bl/blb are exchanged by the cell's mirror automorphism
  // (t <-> tb), wl is fixed.
  {
    Netlist p = lib.pattern("sram6t");
    auto classes = port_equivalence_classes(p);
    ASSERT_EQ(classes.size(), 3u);
    EXPECT_EQ(classes[0], classes[1]);
    EXPECT_NE(classes[0], classes[2]);
  }
}

TEST(Extract, ExtendedCatalogMergesSymmetricPins) {
  auto cells = make_library({"tgate"});
  auto cat = extended_catalog(*DeviceCatalog::cmos(), cells);
  const DeviceTypeInfo& t = cat->type(cat->require("tgate"));
  EXPECT_EQ(t.class_count, 3u);               // {x,y}, {en}, {enb}
  EXPECT_EQ(t.pin_class[0], t.pin_class[1]);  // x/y share a class
}

TEST(Extract, GateLevelMatchingToleratesSwappedInputs) {
  // Two circuits whose NAND actuals are given in opposite order extract to
  // isomorphic gate-level netlists: the matcher binds a0 to whichever net
  // gates the top of the stack, canonicalizing pin order structurally.
  CellLibrary lib;
  auto cells = make_library({"nand2"});

  auto build = [&](bool swapped) {
    CellLibrary l2;
    Design& d = l2.design();
    ModuleId nand2 = l2.module("nand2");
    ModuleId top = d.add_module("top", {"p", "q", "r", "y"});
    Module& m = d.module(top);
    NetId mid = m.add_net("mid");
    if (swapped) {
      m.add_instance(nand2, {*m.find_net("q"), *m.find_net("p"), mid});
    } else {
      m.add_instance(nand2, {*m.find_net("p"), *m.find_net("q"), mid});
    }
    m.add_instance(nand2, {mid, *m.find_net("r"), *m.find_net("y")});
    return d.flatten("top");
  };

  ExtractResult a = extract_gates(build(false), cells);
  ExtractResult b = extract_gates(build(true), cells);
  ASSERT_EQ(a.report.unextracted_primitives, 0u);
  ASSERT_EQ(b.report.unextracted_primitives, 0u);
  // The two gate-level netlists are isomorphic despite the swapped wiring.
  CompareResult cmp = compare_netlists(a.netlist, b.netlist);
  EXPECT_TRUE(cmp.isomorphic) << cmp.reason;
}

TEST(Extract, CloneNetlistPreservesEverything) {
  gen::Generated g = gen::c17();
  auto cells = make_library({"inv"});
  auto cat = extended_catalog(g.netlist.catalog(), cells);
  Netlist clone = clone_netlist(g.netlist, cat);
  clone.validate();
  CompareResult r = compare_netlists(g.netlist, clone);
  EXPECT_TRUE(r.isomorphic) << r.reason;
}

TEST(Extract, C17BecomesSixNandGates) {
  gen::Generated g = gen::c17();
  auto cells = make_library({"nand2", "inv"});
  ExtractResult result = extract_gates(g.netlist, cells);
  EXPECT_EQ(result.report.devices_before, 24u);
  EXPECT_EQ(result.report.devices_after, 6u);
  EXPECT_EQ(result.report.unextracted_primitives, 0u);
  result.netlist.validate();
  // All six devices are nand2 gates.
  for (std::uint32_t d = 0; d < result.netlist.device_count(); ++d) {
    EXPECT_EQ(result.netlist.device_type_info(DeviceId(d)).name, "nand2");
  }
}

TEST(Extract, AdderExtractsCompletely) {
  gen::Generated g = gen::ripple_carry_adder(4);
  auto cells = make_library({"xor2", "nand2"});
  ExtractResult result = extract_gates(g.netlist, cells);
  // Each fulladder = 2 xor2 + 3 nand2.
  std::size_t xor_count = 0, nand_count = 0;
  for (const auto& per : result.report.cells) {
    if (per.cell == "xor2") xor_count = per.instances;
    if (per.cell == "nand2") nand_count = per.instances;
  }
  EXPECT_EQ(xor_count, 8u);
  EXPECT_EQ(nand_count, 12u);
  EXPECT_EQ(result.report.unextracted_primitives, 0u);
  EXPECT_EQ(result.netlist.device_count(), 20u);
}

TEST(Extract, RoundTripIsIsomorphic) {
  gen::Generated g = gen::ripple_carry_adder(3);
  auto cells = make_library({"xor2", "nand2"});
  ExtractResult result = extract_gates(g.netlist, cells);
  ASSERT_EQ(result.report.unextracted_primitives, 0u);
  Netlist expanded = expand_gates(result.netlist, cells, g.netlist.catalog_ptr());
  expanded.validate();
  CompareResult r = compare_netlists(g.netlist, expanded);
  EXPECT_TRUE(r.isomorphic) << r.reason;
}

TEST(Extract, LargestFirstPreventsInverterTheft) {
  // With xor2 disabled and only {inv, nand2} in the library, a full adder's
  // xor cells contain real inverters; nand gates must still not lose their
  // pullups to the inverter pattern. With largest_first the nand2 runs
  // first and claims its transistors; the inverter then extracts the xor
  // input inverters only.
  gen::Generated g = gen::ripple_carry_adder(2);
  auto cells = make_library({"inv", "nand2"});

  ExtractResult ordered = extract_gates(g.netlist, cells);
  std::size_t nands = 0, invs = 0;
  for (const auto& per : ordered.report.cells) {
    if (per.cell == "nand2") nands = per.instances;
    if (per.cell == "inv") invs = per.instances;
  }
  // 3 nand2 per fulladder; 2 inverters per xor2, 2 xor2 per fulladder.
  EXPECT_EQ(nands, 6u);
  EXPECT_EQ(invs, 8u);
}

TEST(Extract, ReportTimesAndCounts) {
  gen::Generated g = gen::c17();
  auto cells = make_library({"nand2"});
  ExtractResult result = extract_gates(g.netlist, cells);
  ASSERT_EQ(result.report.cells.size(), 1u);
  EXPECT_EQ(result.report.cells[0].instances, 6u);
  EXPECT_EQ(result.report.cells[0].devices_replaced, 24u);
  EXPECT_GE(result.report.cells[0].seconds, 0.0);
}

TEST(Extract, UnmatchedPrimitivesSurvive) {
  // A lone pass transistor next to an inverter: the inverter extracts, the
  // pass device stays as a primitive.
  CellLibrary lib;
  Netlist host(DeviceCatalog::cmos(), "mix");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  NetId a = host.add_net("a"), y = host.add_net("y");
  DeviceTypeId nmos = host.catalog().require("nmos");
  DeviceTypeId pmos = host.catalog().require("pmos");
  host.add_device(pmos, {y, a, vdd, vdd});
  host.add_device(nmos, {y, a, gnd, gnd});
  NetId p = host.add_net("p"), q = host.add_net("q"), en = host.add_net("en");
  host.add_device(nmos, {p, en, q, gnd}, "pass1");

  std::vector<LibraryCell> cells;
  cells.push_back(LibraryCell{"inv", lib.pattern("inv")});
  ExtractResult result = extract_gates(host, cells);
  EXPECT_EQ(result.report.devices_after, 2u);  // 1 inv gate + 1 pass nmos
  EXPECT_EQ(result.report.unextracted_primitives, 1u);
  EXPECT_TRUE(result.netlist.find_device("pass1").has_value());
}

}  // namespace
}  // namespace subg::extract
