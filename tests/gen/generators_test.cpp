#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "util/check.hpp"

namespace subg::gen {
namespace {

TEST(Generators, RippleCarryAdderShape) {
  Generated g = ripple_carry_adder(8);
  EXPECT_NO_THROW(g.netlist.validate());
  EXPECT_EQ(g.placed_count("fulladder"), 8u);
  // 8 FAs × 36 transistors.
  EXPECT_EQ(g.netlist.device_count(), 8u * 36u);
  EXPECT_TRUE(g.netlist.find_net("cin").has_value());
  EXPECT_TRUE(g.netlist.find_net("cout").has_value());
  EXPECT_TRUE(g.netlist.is_global(*g.netlist.find_net("vdd")));
}

TEST(Generators, AdderScalesLinearly) {
  EXPECT_EQ(ripple_carry_adder(4).netlist.device_count() * 4,
            ripple_carry_adder(16).netlist.device_count());
}

TEST(Generators, MultiplierShape) {
  const int n = 4;
  Generated g = array_multiplier(n);
  EXPECT_NO_THROW(g.netlist.validate());
  EXPECT_EQ(g.placed_count("nand2"), static_cast<std::size_t>(n * n));
  EXPECT_EQ(g.placed_count("inv"), static_cast<std::size_t>(n * n));
  EXPECT_EQ(g.placed_count("halfadder"), static_cast<std::size_t>(n - 1));
  EXPECT_EQ(g.placed_count("fulladder"),
            static_cast<std::size_t>((n - 1) * (n - 1)));
}

TEST(Generators, SramArrayShape) {
  Generated g = sram_array(8, 16);
  EXPECT_NO_THROW(g.netlist.validate());
  EXPECT_EQ(g.placed_count("sram6t"), 8u * 16u);
  EXPECT_EQ(g.placed_count("nand3"), 8u);  // 3 address bits
  // Wordlines drive a full row: 2 access-gate pins per cell plus the
  // decoder inverter's two drains.
  auto wl0 = g.netlist.find_net("wl0");
  ASSERT_TRUE(wl0.has_value());
  EXPECT_EQ(g.netlist.net_degree(*wl0), 16u * 2u + 2u);
}

TEST(Generators, DecoderShape) {
  Generated g = decoder(3);
  EXPECT_NO_THROW(g.netlist.validate());
  EXPECT_EQ(g.placed_count("nand3"), 8u);
  EXPECT_EQ(g.placed_count("inv"), 8u + 3u);  // per-output + address inverters
}

TEST(Generators, RegisterFileShape) {
  Generated g = register_file(4, 8);
  EXPECT_NO_THROW(g.netlist.validate());
  EXPECT_EQ(g.placed_count("dff"), 32u);
  EXPECT_EQ(g.placed_count("mux2"), 32u);
  EXPECT_EQ(g.netlist.device_count(), 32u * (22u + 6u));
}

TEST(Generators, LogicSoupDeterministicPerSeed) {
  Generated a = logic_soup(200, 42);
  Generated b = logic_soup(200, 42);
  EXPECT_EQ(a.netlist.device_count(), b.netlist.device_count());
  EXPECT_EQ(a.placed, b.placed);
  Generated c = logic_soup(200, 43);
  EXPECT_NE(a.placed, c.placed);  // overwhelmingly likely
}

TEST(Generators, LogicSoupPlacesRequestedGateCount) {
  Generated g = logic_soup(500, 1);
  EXPECT_NO_THROW(g.netlist.validate());
  std::size_t total = 0;
  for (const auto& [cell, count] : g.placed) total += count;
  EXPECT_EQ(total, 500u);
  EXPECT_GT(g.netlist.device_count(), 500u);  // ≥ 2 transistors per gate
}

TEST(Generators, KoggeStoneShape) {
  Generated g = kogge_stone_adder(8);
  EXPECT_NO_THROW(g.netlist.validate());
  // 8 preprocess groups + 3 prefix levels with (8-1)+(8-2)+(8-4) nodes + sums.
  EXPECT_EQ(g.placed_count("xor2"), 8u + 7u);   // preprocess + sum (s0 is buf)
  EXPECT_EQ(g.placed_count("aoi21"), 7u + 6u + 4u);
  EXPECT_EQ(g.placed_count("buf"), 1u);
  // Reconvergent fanout exists: some prefix G net feeds several consumers.
  bool reconverges = false;
  for (std::uint32_t n = 0; n < g.netlist.net_count(); ++n) {
    if (g.netlist.net_name(NetId(n)).rfind("g1_", 0) == 0 &&
        g.netlist.net_degree(NetId(n)) > 2) {
      reconverges = true;
    }
  }
  EXPECT_TRUE(reconverges);
}

TEST(Generators, ParityTreeShape) {
  Generated g = parity_tree(16);
  EXPECT_EQ(g.placed_count("xor2"), 15u);
  EXPECT_NO_THROW(g.netlist.validate());
  Generated odd = parity_tree(9);
  EXPECT_EQ(odd.placed_count("xor2"), 8u);
}

TEST(Generators, C17IsSixNands) {
  Generated g = c17();
  EXPECT_EQ(g.placed_count("nand2"), 6u);
  EXPECT_EQ(g.netlist.device_count(), 24u);
  EXPECT_TRUE(g.netlist.find_net("N22").has_value());
}

TEST(Generators, PlantInstancesAddsExactCopies) {
  Generated host = logic_soup(80, 3);
  // Pool: the soup's primary inputs (xor2 has 3 ports, 5 copies need 15).
  std::vector<NetId> pool;
  for (int i = 0; i < 18; ++i) {
    pool.push_back(*host.netlist.find_net("pi" + std::to_string(i)));
  }
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("xor2");
  const std::size_t before = host.netlist.device_count();
  std::size_t planted = plant_instances(host.netlist, pattern, 5, pool, 99);
  EXPECT_EQ(planted, 5u);
  EXPECT_EQ(host.netlist.device_count(), before + 5 * pattern.device_count());
  EXPECT_NO_THROW(host.netlist.validate());
}

// Size parameters are uint64 (ISSUE 10): absurd requests must throw from
// the pre-allocation guards — checked_mul/checked_add on uint64 overflow,
// check_vertex_space past the uint32 graph-vertex space — instead of
// wrapping around or attempting a multi-terabyte allocation. Each case
// below would deadlock the test machine if the guard were missing, so the
// tests finishing at all is part of what they verify.
TEST(Generators, HugeSizesThrowBeforeAllocating) {
  const std::uint64_t huge = std::uint64_t{1} << 62;  // *32 overflows uint64
  EXPECT_THROW(ripple_carry_adder(huge), Error);
  EXPECT_THROW(array_multiplier(huge), Error);
  EXPECT_THROW(sram_array(huge, huge), Error);
  EXPECT_THROW(register_file(huge, huge), Error);
  EXPECT_THROW(kogge_stone_adder(huge), Error);
  EXPECT_THROW(parity_tree(huge), Error);
  EXPECT_THROW(soc_grid(huge, huge, huge), Error);
}

TEST(Generators, SizesPastTheVertexSpaceThrow) {
  // No uint64 overflow anywhere in these, but the device+net estimate
  // exceeds the 2^32-vertex CircuitGraph space — check_vertex_space fires.
  const std::uint64_t big = std::uint64_t{1} << 30;
  EXPECT_THROW(ripple_carry_adder(big), Error);
  EXPECT_THROW(soc_grid(big, 8, 0), Error);
  EXPECT_THROW(parity_tree(std::uint64_t{1} << 31), Error);
}

TEST(Generators, SocGridShape) {
  Generated g = soc_grid(4, 3, 5, 2);
  EXPECT_NO_THROW(g.netlist.validate());
  // 6 transistors per (nand2, inv) unit, 3 per pad, 2 per bus driver.
  EXPECT_EQ(g.netlist.device_count(), 4u * 3u * 6u + 5u * 3u + 2u * 2u);
  EXPECT_EQ(g.placed_count("nand2"), 12u);
  EXPECT_EQ(g.placed_count("inv"), 12u + 2u);  // units + bus drivers
  // One bus tap per tile. At transistor level each nand2 tap is 2 gate
  // pins and the driving inverter contributes 2 drains: 2·(tiles/bus_bits)
  // + 2 pins per bus net.
  auto bus0 = g.netlist.find_net("bus0");
  ASSERT_TRUE(bus0.has_value());
  EXPECT_EQ(g.netlist.net_degree(*bus0), 2u * (4u / 2u) + 2u);
}

TEST(Generators, PlantRejectsTinyPool) {
  Generated host = logic_soup(10, 3);
  std::vector<NetId> pool = {*host.netlist.find_net("pi0")};
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("xor2");  // 3 ports > 1 pool net
  EXPECT_THROW(plant_instances(host.netlist, pattern, 1, pool, 1), Error);
}

}  // namespace
}  // namespace subg::gen
