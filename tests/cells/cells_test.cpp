#include <gtest/gtest.h>

#include <map>

#include "cells/cells.hpp"
#include "util/check.hpp"

namespace subg::cells {
namespace {

TEST(Cells, TransistorCounts) {
  CellLibrary lib;
  const std::map<std::string, std::size_t> expected = {
      {"inv", 2},    {"buf", 4},    {"nand2", 4},     {"nand3", 6},
      {"nand4", 8},  {"nor2", 4},   {"nor3", 6},      {"nor4", 8},
      {"aoi21", 6},  {"aoi22", 8},  {"oai21", 6},     {"xor2", 12},
      {"xnor2", 12}, {"tgate", 2},  {"mux2", 6},      {"dlatch", 10},
      {"dff", 22},   {"fulladder", 36}, {"halfadder", 18}, {"sram6t", 6},
      {"and2", 6},   {"and3", 8},       {"and4", 10},      {"or2", 6},
      {"or3", 8},    {"or4", 10}};
  for (const auto& [name, count] : expected) {
    EXPECT_EQ(lib.transistor_count(name), count) << name;
  }
}

TEST(Cells, AllCellsFlattenAndValidate) {
  CellLibrary lib;
  for (const std::string& name : CellLibrary::all_cells()) {
    Netlist flat = lib.pattern(name);
    EXPECT_NO_THROW(flat.validate()) << name;
    EXPECT_GT(flat.device_count(), 0u) << name;
    EXPECT_FALSE(flat.ports().empty()) << name;
  }
}

TEST(Cells, PatternsHaveGlobalRails) {
  CellLibrary lib;
  Netlist inv = lib.pattern("inv");
  auto vdd = inv.find_net("vdd");
  auto gnd = inv.find_net("gnd");
  ASSERT_TRUE(vdd.has_value());
  ASSERT_TRUE(gnd.has_value());
  EXPECT_TRUE(inv.is_global(*vdd));
  EXPECT_TRUE(inv.is_global(*gnd));
  EXPECT_FALSE(inv.is_port(*vdd));
}

TEST(Cells, InverterStructure) {
  CellLibrary lib;
  Netlist inv = lib.pattern("inv");
  ASSERT_EQ(inv.ports().size(), 2u);
  NetId a = inv.ports()[0], y = inv.ports()[1];
  EXPECT_EQ(inv.net_name(a), "a");
  EXPECT_EQ(inv.net_name(y), "y");
  EXPECT_EQ(inv.net_degree(a), 2u);   // both gates
  EXPECT_EQ(inv.net_degree(y), 2u);   // both drains
  // vdd: pmos source + pmos bulk.
  EXPECT_EQ(inv.net_degree(*inv.find_net("vdd")), 2u);
}

TEST(Cells, NandPullNetworkShape) {
  CellLibrary lib;
  Netlist nand3 = lib.pattern("nand3");
  // Output: 3 pmos drains + 1 nmos drain.
  NetId y = *nand3.find_net("y");
  EXPECT_EQ(nand3.net_degree(y), 4u);
  // Series stack internal nets have degree 2.
  EXPECT_EQ(nand3.net_degree(*nand3.find_net("x0")), 2u);
  EXPECT_EQ(nand3.net_degree(*nand3.find_net("x1")), 2u);
}

TEST(Cells, DffComposition) {
  CellLibrary lib;
  Netlist dff = lib.pattern("dff");
  EXPECT_EQ(dff.device_count(), 22u);
  ASSERT_EQ(dff.ports().size(), 3u);
  NetlistStats s = dff.stats();
  // 11 nmos + 11 pmos.
  ASSERT_EQ(s.devices_by_type.size(), 2u);
  EXPECT_EQ(s.devices_by_type[0].second, 11u);
  EXPECT_EQ(s.devices_by_type[1].second, 11u);
}

TEST(Cells, ModuleIsMemoized) {
  CellLibrary lib;
  EXPECT_EQ(lib.module("nand2"), lib.module("nand2"));
}

TEST(Cells, UnknownCellThrows) {
  CellLibrary lib;
  EXPECT_THROW(lib.module("nand17"), Error);
}

TEST(Cells, SramCellCrossCoupled) {
  CellLibrary lib;
  Netlist sram = lib.pattern("sram6t");
  NetId t = *sram.find_net("t"), tb = *sram.find_net("tb");
  // Each storage node: pmos drain + nmos drain + 2 gates + access nmos = 5.
  EXPECT_EQ(sram.net_degree(t), 5u);
  EXPECT_EQ(sram.net_degree(tb), 5u);
  EXPECT_EQ(sram.net_degree(*sram.find_net("wl")), 2u);
}

}  // namespace
}  // namespace subg::cells
