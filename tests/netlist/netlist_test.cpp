#include <gtest/gtest.h>

#include "netlist/netlist.hpp"
#include "util/check.hpp"

namespace subg {
namespace {

class NetlistTest : public ::testing::Test {
 protected:
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId pmos = cat->require("pmos");
};

TEST_F(NetlistTest, AddNetsAndDevices) {
  Netlist nl(cat, "t");
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  DeviceId d = nl.add_device(nmos, {y, a, g}, "m1");
  EXPECT_EQ(nl.net_count(), 3u);
  EXPECT_EQ(nl.device_count(), 1u);
  EXPECT_EQ(nl.device_name(d), "m1");
  EXPECT_EQ(nl.device_type(d), nmos);
  auto pins = nl.device_pins(d);
  ASSERT_EQ(pins.size(), 3u);
  EXPECT_EQ(pins[0], y);
  EXPECT_EQ(pins[1], a);
  EXPECT_EQ(pins[2], g);
}

TEST_F(NetlistTest, DegreeCountsPinConnections) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), b = nl.add_net("b");
  // Device with two pins on the same net: degree counts both.
  nl.add_device(nmos, {a, b, a});
  EXPECT_EQ(nl.net_degree(a), 2u);
  EXPECT_EQ(nl.net_degree(b), 1u);
}

TEST_F(NetlistTest, NetPinsBackReferences) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), b = nl.add_net("b"), c = nl.add_net("c");
  DeviceId d1 = nl.add_device(nmos, {a, b, c});
  DeviceId d2 = nl.add_device(pmos, {a, b, c});
  auto pins = nl.net_pins(a);
  ASSERT_EQ(pins.size(), 2u);
  EXPECT_EQ(pins[0].device, d1);
  EXPECT_EQ(pins[0].pin, 0u);
  EXPECT_EQ(pins[1].device, d2);
}

TEST_F(NetlistTest, AutoNamesAreUnique) {
  Netlist nl(cat);
  NetId n1 = nl.add_net(), n2 = nl.add_net();
  EXPECT_NE(nl.net_name(n1), nl.net_name(n2));
  NetId a = nl.add_net("a"), b = nl.add_net("b"), c = nl.add_net("c");
  DeviceId d1 = nl.add_device(nmos, {a, b, c});
  DeviceId d2 = nl.add_device(nmos, {a, b, c});
  EXPECT_NE(nl.device_name(d1), nl.device_name(d2));
}

TEST_F(NetlistTest, DuplicateNamesThrow) {
  Netlist nl(cat);
  nl.add_net("a");
  EXPECT_THROW(nl.add_net("a"), Error);
  NetId b = nl.add_net("b"), c = nl.add_net("c"), d = nl.add_net("d");
  nl.add_device(nmos, {b, c, d}, "m1");
  EXPECT_THROW(nl.add_device(nmos, {b, c, d}, "m1"), Error);
}

TEST_F(NetlistTest, WrongPinCountThrows) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), b = nl.add_net("b");
  EXPECT_THROW(nl.add_device(nmos, {a, b}), Error);
}

TEST_F(NetlistTest, EnsureNetIdempotent) {
  Netlist nl(cat);
  NetId a = nl.ensure_net("vdd");
  EXPECT_EQ(nl.ensure_net("vdd"), a);
  EXPECT_EQ(nl.net_count(), 1u);
}

TEST_F(NetlistTest, PortsAndGlobals) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), v = nl.add_net("vdd");
  nl.mark_port(a);
  nl.mark_port(a);  // idempotent
  nl.mark_global(v);
  EXPECT_TRUE(nl.is_port(a));
  EXPECT_FALSE(nl.is_port(v));
  EXPECT_TRUE(nl.is_global(v));
  ASSERT_EQ(nl.ports().size(), 1u);
  EXPECT_EQ(nl.ports()[0], a);
}

TEST_F(NetlistTest, RemoveDevicesDropsInternalNets) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), mid = nl.add_net("mid"), g = nl.add_net("gnd");
  NetId y = nl.add_net("y");
  nl.mark_global(g);
  DeviceId d1 = nl.add_device(nmos, {y, a, mid}, "m1");
  nl.add_device(nmos, {mid, a, g}, "m2");
  nl.add_device(pmos, {y, a, g}, "m3");

  std::vector<DeviceId> victims = {d1, *nl.find_device("m2")};
  nl.remove_devices(victims);
  nl.validate();

  EXPECT_EQ(nl.device_count(), 1u);
  EXPECT_TRUE(nl.find_device("m3").has_value());
  EXPECT_FALSE(nl.find_device("m1").has_value());
  // "mid" lost all connections and is neither port nor global → removed.
  EXPECT_FALSE(nl.find_net("mid").has_value());
  // Globals survive even when disconnected... gnd still used by m3 anyway.
  EXPECT_TRUE(nl.find_net("gnd").has_value());
  // Surviving device is still wired correctly after the rebuild.
  DeviceId m3 = *nl.find_device("m3");
  auto pins = nl.device_pins(m3);
  EXPECT_EQ(nl.net_name(pins[0]), "y");
  EXPECT_EQ(nl.net_name(pins[1]), "a");
  EXPECT_EQ(nl.net_name(pins[2]), "gnd");
}

TEST_F(NetlistTest, RemoveAllDevicesKeepsGlobalsAndPorts) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  nl.mark_port(a);
  nl.mark_global(g);
  DeviceId d = nl.add_device(nmos, {y, a, g});
  std::vector<DeviceId> victims = {d};
  nl.remove_devices(victims);
  nl.validate();
  EXPECT_EQ(nl.device_count(), 0u);
  EXPECT_TRUE(nl.find_net("a").has_value());
  EXPECT_TRUE(nl.find_net("gnd").has_value());
  EXPECT_FALSE(nl.find_net("y").has_value());
  ASSERT_EQ(nl.ports().size(), 1u);
  EXPECT_EQ(nl.net_name(nl.ports()[0]), "a");
}

TEST_F(NetlistTest, StatsAggregates) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), v = nl.add_net("vdd"),
        g = nl.add_net("gnd");
  nl.mark_global(v);
  nl.mark_global(g);
  nl.add_device(pmos, {y, a, v});
  nl.add_device(nmos, {y, a, g});
  nl.add_device(nmos, {y, a, g});
  NetlistStats s = nl.stats();
  EXPECT_EQ(s.device_count, 3u);
  EXPECT_EQ(s.net_count, 4u);
  EXPECT_EQ(s.pin_count, 9u);
  EXPECT_EQ(s.global_net_count, 2u);
  EXPECT_EQ(s.max_net_degree, 3u);  // a and y have 3 connections
  ASSERT_EQ(s.devices_by_type.size(), 2u);
  EXPECT_EQ(s.devices_by_type[0].first, "nmos");
  EXPECT_EQ(s.devices_by_type[0].second, 2u);
  EXPECT_EQ(s.devices_by_type[1].first, "pmos");
  EXPECT_EQ(s.devices_by_type[1].second, 1u);
}

TEST_F(NetlistTest, ValidatePassesOnWellFormed) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  nl.add_device(nmos, {y, a, g});
  EXPECT_NO_THROW(nl.validate());
}

TEST_F(NetlistTest, RenameNetMovesTheNameNotTheId) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  nl.add_device(nmos, {y, a, g});
  nl.rename_net(a, "a2");
  EXPECT_EQ(nl.net_name(a), "a2");
  EXPECT_EQ(nl.find_net("a2"), a);
  EXPECT_FALSE(nl.find_net("a").has_value());
  // Structure untouched: the device still pins the same NetId.
  EXPECT_EQ(nl.net_degree(a), 1u);
  // Renaming onto itself is a no-op, onto a taken name an error.
  EXPECT_NO_THROW(nl.rename_net(a, "a2"));
  EXPECT_THROW(nl.rename_net(a, "y"), Error);
  EXPECT_THROW(nl.rename_net(a, ""), Error);
  nl.validate();
}

TEST_F(NetlistTest, RenameDeviceMovesTheNameNotTheId) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  DeviceId m1 = nl.add_device(nmos, {y, a, g}, "m1");
  nl.add_device(pmos, {y, a, g}, "m2");
  nl.rename_device(m1, "m1b");
  EXPECT_EQ(nl.device_name(m1), "m1b");
  EXPECT_EQ(nl.find_device("m1b"), m1);
  EXPECT_FALSE(nl.find_device("m1").has_value());
  EXPECT_NO_THROW(nl.rename_device(m1, "m1b"));
  EXPECT_THROW(nl.rename_device(m1, "m2"), Error);
  nl.validate();
}

TEST_F(NetlistTest, RemoveNetShiftsHigherIdsDown) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), dead = nl.add_net("dead"), y = nl.add_net("y"),
        g = nl.add_net("gnd");
  nl.mark_port(a);
  nl.mark_port(y);
  nl.add_device(nmos, {y, a, g});
  nl.remove_net(dead);
  EXPECT_EQ(nl.net_count(), 3u);
  EXPECT_FALSE(nl.find_net("dead").has_value());
  // Ids above the removed slot shifted down; names still resolve and the
  // device's pins follow.
  const NetId y2 = *nl.find_net("y");
  EXPECT_EQ(y2.value, y.value - 1);
  EXPECT_EQ(nl.net_degree(y2), 1u);
  ASSERT_EQ(nl.ports().size(), 2u);
  EXPECT_EQ(nl.net_name(nl.ports()[0]), "a");
  EXPECT_EQ(nl.net_name(nl.ports()[1]), "y");
  nl.validate();
}

TEST_F(NetlistTest, RemoveNetRefusesLiveNets) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  nl.add_device(nmos, {y, a, g});
  EXPECT_THROW(nl.remove_net(y), Error);
  EXPECT_THROW(nl.remove_net(NetId(99)), Error);
  nl.validate();
}

}  // namespace
}  // namespace subg
