// Randomized stress of Netlist mutation invariants: repeated random device
// removal must keep the connectivity index consistent (validate()) and
// never resurrect dangling internal nets.
#include <gtest/gtest.h>

#include "gen/generators.hpp"
#include "util/rng.hpp"

namespace subg {
namespace {

class NetlistStress : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(NetlistStress, RandomRemovalKeepsInvariants) {
  gen::Generated g = gen::logic_soup(120, GetParam());
  Netlist& nl = g.netlist;
  Xoshiro256 rng(GetParam() * 7919 + 1);

  while (nl.device_count() > 0) {
    // Remove a random batch of up to 9 devices.
    const std::size_t batch =
        std::min<std::size_t>(1 + rng.below(9), nl.device_count());
    std::vector<DeviceId> victims;
    std::vector<bool> picked(nl.device_count(), false);
    while (victims.size() < batch) {
      std::uint32_t idx =
          static_cast<std::uint32_t>(rng.below(nl.device_count()));
      if (!picked[idx]) {
        picked[idx] = true;
        victims.push_back(DeviceId(idx));
      }
    }
    const std::size_t before = nl.device_count();
    nl.remove_devices(victims);
    ASSERT_EQ(nl.device_count(), before - batch);
    ASSERT_NO_THROW(nl.validate());
    // No non-port, non-global net may be dangling.
    for (std::uint32_t n = 0; n < nl.net_count(); ++n) {
      const NetId id(n);
      if (nl.net_degree(id) == 0) {
        EXPECT_TRUE(nl.is_port(id) || nl.is_global(id))
            << "dangling net " << nl.net_name(id);
      }
    }
  }
  // Globals survive to the end.
  EXPECT_TRUE(nl.find_net("vdd").has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NetlistStress,
                         ::testing::Values(1, 2, 3, 4, 5));

TEST(NetlistStress, InterleavedAddRemove) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  Netlist nl(cat);
  Xoshiro256 rng(99);
  std::vector<NetId> nets;
  for (int i = 0; i < 8; ++i) nets.push_back(nl.add_net("n" + std::to_string(i)));

  for (int round = 0; round < 50; ++round) {
    // Add a few devices.
    for (int k = 0; k < 3; ++k) {
      nl.add_device(nmos, {nets[rng.below(nets.size())],
                           nets[rng.below(nets.size())],
                           nets[rng.below(nets.size())]});
    }
    // Remove one at random.
    if (nl.device_count() > 0) {
      std::vector<DeviceId> victim = {
          DeviceId(static_cast<std::uint32_t>(rng.below(nl.device_count())))};
      nl.remove_devices(victim);
    }
    ASSERT_NO_THROW(nl.validate());
    // Net handles may be invalidated by removal; re-resolve by name.
    for (int i = 0; i < 8; ++i) {
      nets[i] = nl.ensure_net("n" + std::to_string(i));
    }
  }
  EXPECT_GT(nl.device_count(), 0u);
}

}  // namespace
}  // namespace subg
