#include <gtest/gtest.h>

#include "netlist/catalog.hpp"
#include "util/check.hpp"

namespace subg {
namespace {

TEST(Catalog, PinClassesNumberedByFirstAppearance) {
  DeviceCatalog cat;
  auto id = cat.add_type("nmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}});
  const DeviceTypeInfo& info = cat.type(id);
  EXPECT_EQ(info.pin_count(), 3u);
  EXPECT_EQ(info.class_count, 2u);
  EXPECT_EQ(info.pin_class[0], 0u);  // sd
  EXPECT_EQ(info.pin_class[1], 1u);  // gate
  EXPECT_EQ(info.pin_class[2], 0u);  // sd again
}

TEST(Catalog, CoefficientsPerClassDistinct) {
  DeviceCatalog cat;
  auto id = cat.add_type("nmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}});
  const DeviceTypeInfo& info = cat.type(id);
  ASSERT_EQ(info.class_coefficient.size(), 2u);
  EXPECT_NE(info.class_coefficient[0], info.class_coefficient[1]);
}

TEST(Catalog, TypeLabelDerivedFromNameOnly) {
  DeviceCatalog a, b;
  auto ia = a.add_type("nmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}});
  auto ib = b.add_type("nmos", {{"d", "sd"}, {"g", "gate"}, {"s", "sd"}});
  EXPECT_EQ(a.type(ia).type_label, b.type(ib).type_label);
  EXPECT_EQ(a.type(ia).class_coefficient, b.type(ib).class_coefficient);
}

TEST(Catalog, DuplicateNameThrows) {
  DeviceCatalog cat;
  cat.add_type("res", {{"p1", "t"}, {"p2", "t"}});
  EXPECT_THROW(cat.add_type("res", {{"p1", "t"}, {"p2", "t"}}), Error);
}

TEST(Catalog, EmptyPinsThrows) {
  DeviceCatalog cat;
  EXPECT_THROW(cat.add_type("bad", {}), Error);
}

TEST(Catalog, FindAndRequire) {
  DeviceCatalog cat;
  auto id = cat.add_type("cap", {{"p1", "t"}, {"p2", "t"}});
  EXPECT_EQ(cat.find("cap"), id);
  EXPECT_EQ(cat.require("cap"), id);
  EXPECT_FALSE(cat.find("missing").has_value());
  EXPECT_THROW(static_cast<void>(cat.require("missing")), Error);
}

TEST(Catalog, CompactSyntax) {
  DeviceCatalog cat;
  auto id = cat.add_type_compact("nmos", {"d:sd", "g:gate", "s:sd"});
  const DeviceTypeInfo& info = cat.type(id);
  EXPECT_EQ(info.pins[0].name, "d");
  EXPECT_EQ(info.pins[0].equivalence_class, "sd");
  EXPECT_EQ(info.class_count, 2u);
  // Without a colon, the class defaults to the pin name.
  auto id2 = cat.add_type_compact("diode", {"a", "c"});
  EXPECT_EQ(cat.type(id2).class_count, 2u);
}

TEST(Catalog, CmosCatalogShape) {
  auto cat = DeviceCatalog::cmos();
  const DeviceTypeInfo& n = cat->type(cat->require("nmos"));
  EXPECT_EQ(n.pin_count(), 4u);
  EXPECT_EQ(n.class_count, 3u);                 // sd, gate, bulk
  EXPECT_EQ(n.pin_class[0], n.pin_class[2]);    // d and s interchangeable
  EXPECT_NE(n.pin_class[0], n.pin_class[1]);
  EXPECT_TRUE(cat->find("pmos").has_value());
  EXPECT_TRUE(cat->find("res").has_value());
}

TEST(Catalog, Cmos3CatalogShape) {
  auto cat = DeviceCatalog::cmos3();
  const DeviceTypeInfo& n = cat->type(cat->require("nmos"));
  EXPECT_EQ(n.pin_count(), 3u);
  EXPECT_EQ(n.class_count, 2u);
}

}  // namespace
}  // namespace subg
