#include <gtest/gtest.h>

#include "netlist/design.hpp"
#include "util/check.hpp"

namespace subg {
namespace {

class DesignTest : public ::testing::Test {
 protected:
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId pmos = cat->require("pmos");

  /// Build an inverter module with rails through design globals.
  ModuleId make_inv(Design& d) {
    ModuleId id = d.add_module("inv", {"a", "y"});
    Module& m = d.module(id);
    NetId a = *m.find_net("a"), y = *m.find_net("y");
    m.add_device(pmos, {y, a, m.ensure_net("vdd")}, "mp");
    m.add_device(nmos, {y, a, m.ensure_net("gnd")}, "mn");
    return id;
  }
};

TEST_F(DesignTest, FlattenSingleModule) {
  Design d(cat);
  d.add_global("vdd");
  d.add_global("gnd");
  make_inv(d);
  Netlist flat = d.flatten("inv");
  flat.validate();
  EXPECT_EQ(flat.device_count(), 2u);
  EXPECT_EQ(flat.net_count(), 4u);
  EXPECT_TRUE(flat.is_global(*flat.find_net("vdd")));
  EXPECT_TRUE(flat.is_global(*flat.find_net("gnd")));
  // Top module ports become ports of the flat netlist.
  ASSERT_EQ(flat.ports().size(), 2u);
  EXPECT_EQ(flat.net_name(flat.ports()[0]), "a");
  EXPECT_EQ(flat.net_name(flat.ports()[1]), "y");
}

TEST_F(DesignTest, FlattenHierarchyManglesNames) {
  Design d(cat);
  d.add_global("vdd");
  d.add_global("gnd");
  ModuleId inv = make_inv(d);

  ModuleId top = d.add_module("buf", {"in", "out"});
  Module& m = d.module(top);
  NetId mid = m.add_net("mid");
  m.add_instance(inv, {*m.find_net("in"), mid}, "u1");
  m.add_instance(inv, {mid, *m.find_net("out")}, "u2");

  Netlist flat = d.flatten("buf");
  flat.validate();
  EXPECT_EQ(flat.device_count(), 4u);
  EXPECT_TRUE(flat.find_device("u1/mp").has_value());
  EXPECT_TRUE(flat.find_device("u2/mn").has_value());
  // Port binding: u1's output y is the top-level "mid" net.
  DeviceId u1mp = *flat.find_device("u1/mp");
  EXPECT_EQ(flat.net_name(flat.device_pins(u1mp)[0]), "mid");
  // Globals merged, not mangled.
  EXPECT_EQ(flat.net_degree(*flat.find_net("vdd")), 2u);
}

TEST_F(DesignTest, NestedHierarchyThreeLevels) {
  Design d(cat);
  d.add_global("vdd");
  d.add_global("gnd");
  ModuleId inv = make_inv(d);

  ModuleId buf = d.add_module("buf", {"in", "out"});
  {
    Module& m = d.module(buf);
    NetId mid = m.add_net("mid");
    m.add_instance(inv, {*m.find_net("in"), mid}, "i0");
    m.add_instance(inv, {mid, *m.find_net("out")}, "i1");
  }
  ModuleId chain = d.add_module("chain", {"in", "out"});
  {
    Module& m = d.module(chain);
    NetId mid = m.add_net("mid");
    m.add_instance(buf, {*m.find_net("in"), mid}, "b0");
    m.add_instance(buf, {mid, *m.find_net("out")}, "b1");
  }
  EXPECT_EQ(d.flattened_device_count("chain"), 8u);
  Netlist flat = d.flatten("chain");
  flat.validate();
  EXPECT_EQ(flat.device_count(), 8u);
  EXPECT_TRUE(flat.find_device("b1/i0/mp").has_value());
  EXPECT_TRUE(flat.find_net("b0/mid").has_value());
}

TEST_F(DesignTest, RecursionDetected) {
  Design d(cat);
  ModuleId a = d.add_module("a", {"p"});
  ModuleId b = d.add_module("b", {"p"});
  d.module(a).add_instance(b, {*d.module(a).find_net("p")});
  d.module(b).add_instance(a, {*d.module(b).find_net("p")});
  EXPECT_THROW(d.flatten("a"), Error);
  EXPECT_THROW((void)d.flattened_device_count("a"), Error);
}

TEST_F(DesignTest, UnknownTopThrows) {
  Design d(cat);
  EXPECT_THROW(d.flatten("nope"), Error);
}

TEST_F(DesignTest, InstanceArityChecked) {
  Design d(cat);
  d.add_global("vdd");
  d.add_global("gnd");
  ModuleId inv = make_inv(d);
  ModuleId top = d.add_module("top", {"x"});
  Module& m = d.module(top);
  std::vector<NetId> one = {*m.find_net("x")};
  EXPECT_THROW(m.add_instance(inv, one), Error);
}

TEST_F(DesignTest, DuplicateModuleNameThrows) {
  Design d(cat);
  d.add_module("m");
  EXPECT_THROW(d.add_module("m"), Error);
}

}  // namespace
}  // namespace subg
