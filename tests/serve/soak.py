#!/usr/bin/env python3
"""Soak `subgemini serve` with a seeded, randomized request stream.

Drives one server process with a mixed stream -- valid finds/lints/status,
round-tripping and hostile ECO patches, duplicate loads, malformed JSON,
structurally bad requests, oversized lines, deadline-blown finds -- and
holds the daemon to its contract on every single line:

  * every request line is answered with exactly one schema-valid frame
    (validated against tests/report/schema_v1.json);
  * answered ids match sent ids; unparseable/oversized lines answer id=null;
  * each request kind gets its designated error code (or ok);
  * after the whole stream, a final well-formed find still answers
    correctly -- the daemon survived everything.

With --fault-smoke it instead iterates every registered fault-injection
site: one server per site armed via SUBG_FAULT=<site>:1, asserting the
fault surfaces as one `injected_fault` response and the next request is
answered normally.  In a build without -DSUBG_FAULTS=ON this mode reports
"faults disabled" and exits 0.

Stdlib only.  Exit 0 on success, 1 on any contract violation.
"""
import argparse
import importlib.util
import json
import os
import random
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def load_schema_checker(path):
    spec = importlib.util.spec_from_file_location("check_schema", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


class Failures:
    def __init__(self):
        self.count = 0

    def __call__(self, message):
        self.count += 1
        print(f"soak: FAIL: {message}", file=sys.stderr)


class Server:
    def __init__(self, binary, host, flags=(), env_extra=None):
        env = dict(os.environ)
        if env_extra:
            env.update(env_extra)
        self.proc = subprocess.Popen(
            [binary, "serve", *flags, host],
            stdin=subprocess.PIPE, stdout=subprocess.PIPE, text=True, env=env)

    def send_lines(self, lines):
        for line in lines:
            self.proc.stdin.write(line + "\n")
        self.proc.stdin.flush()

    def read_frame(self):
        line = self.proc.stdout.readline()
        if not line:
            raise EOFError("server closed stdout mid-stream")
        return json.loads(line), line

    def finish(self):
        """Close input (drain) and return the exit code."""
        self.proc.stdin.close()
        return self.proc.wait(timeout=60)


def make_stream(rng, cells_text, cell_names, oversized_bytes):
    """One (line, expectation) pair.  expectation is (id, codes) where codes
    is the set of acceptable error codes, or None for a must-succeed
    request; id is None for lines that by contract answer id=null."""
    kind = rng.choices(
        ["find", "analyze", "status", "lint", "patch", "load_dup", "deadline",
         "bad_shape", "malformed", "oversized"],
        weights=[25, 8, 8, 8, 12, 4, 10, 15, 12, 6])[0]
    rid = rng.randrange(1 << 30)
    if kind == "analyze":
        request = {"id": rid, "op": "analyze", "pattern": cells_text,
                   "pattern_top": rng.choice(cell_names)}
        return json.dumps(request), (rid, None)
    if kind == "find":
        request = {"id": rid, "op": "find", "pattern": cells_text,
                   "pattern_top": rng.choice(cell_names)}
        # Half the finds take the exhaustive (enumerate-every-branch) path,
        # so the stream soaks both Phase II entry points.
        if rng.random() < 0.5:
            request["exhaustive"] = True
        return json.dumps(request), (rid, None)
    if kind == "status":
        return json.dumps({"id": rid, "op": "status"}), (rid, None)
    if kind == "lint":
        return json.dumps({"id": rid, "op": "lint"}), (rid, None)
    if kind == "patch":
        # Half the patches are sound: a scratch net added and removed in
        # the same delta, so the host round-trips unchanged and later finds
        # stay deterministic.  The rest are hostile and must answer
        # bad_delta while leaving the host intact.
        if rng.random() < 0.5:
            scratch = f"soak_{rid}"
            delta = (json.dumps({"op": "add_net", "name": scratch}) + "\n" +
                     json.dumps({"op": "remove_net", "name": scratch}))
            return (json.dumps({"id": rid, "op": "patch", "delta": delta}),
                    (rid, None))
        delta = rng.choice([
            '{"op": "add_net"',                              # malformed line
            json.dumps({"op": "remove_net", "name": "y"}),   # net is live
            json.dumps({"op": "rename_net", "from": "no_such", "to": "x"}),
            json.dumps({"op": "add_device", "type": "warp_core",
                        "nets": ["a"]}),                     # unknown type
        ])
        return (json.dumps({"id": rid, "op": "patch", "delta": delta}),
                (rid, {"bad_delta"}))
    if kind == "load_dup":
        # The startup host's name is taken; re-registering it is refused
        # even with a perfectly valid netlist.
        request = {"id": rid, "op": "load", "name": "mux_host",
                   "netlist": cells_text}
        return json.dumps(request), (rid, {"already_loaded"})
    if kind == "deadline":
        request = {"id": rid, "op": "find", "pattern": cells_text,
                   "pattern_top": rng.choice(cell_names),
                   "timeout_ms": 1e-6}
        return json.dumps(request), (rid, {"deadline_expired"})
    if kind == "bad_shape":
        # Shapes rejected at the parse layer answer id=null (the decoded
        # Request carrying the id is discarded); shapes rejected at
        # dispatch echo the id.
        line, codes, echoed = rng.choice([
            (json.dumps({"id": rid, "op": 7}), {"bad_request"}, False),
            (json.dumps({"id": rid}), {"bad_request"}, False),
            (json.dumps({"id": rid, "op": "find", "timeout_ms": -3}),
             {"bad_request"}, False),
            (json.dumps({"id": rid, "op": "find", "exhaustive": 7}),
             {"bad_request"}, False),
            (json.dumps({"id": rid, "op": "frobnicate"}), {"unknown_op"},
             True),
            (json.dumps({"id": rid, "op": "find"}), {"bad_request"}, True),
            (json.dumps({"id": rid, "op": "find", "pattern": cells_text,
                         "pattern_top": "nand2", "host": "no_such_host"}),
             {"unknown_host"}, True),
            (json.dumps({"id": rid, "op": "analyze"}), {"bad_request"}, True),
            (json.dumps({"id": rid, "op": "analyze", "pattern": cells_text,
                         "pattern_top": "nand2", "host": "no_such_host"}),
             {"unknown_host"}, True),
            (json.dumps({"id": rid, "op": "patch"}), {"bad_request"}, True),
            (json.dumps({"id": rid, "op": "patch", "delta": "x",
                         "host": "no_such_host"}), {"unknown_host"}, True),
        ])
        return line, (rid if echoed else None, codes)
    if kind == "malformed":
        line = rng.choice([
            "{", "not json at all", '{"id": 1,, "op"}', "[1, 2",
            '"just a string"',  # parses, but a frame must be an object
            "{} {}",
        ])
        return line, (None, {"parse_error", "bad_request"})
    # oversized: longer than --max-request-bytes, still newline-framed.
    return "x" * (oversized_bytes + 1), (None, {"oversized"})


def check_frame(frame, checker, schema, fail, context):
    errors = []
    checker.validate(frame, schema, schema, "$", errors)
    for err in errors:
        fail(f"{context}: schema violation: {err}")


def run_soak(args, checker, schema):
    fail = Failures()
    rng = random.Random(args.seed)
    host_path = os.path.join(args.testdata, "mux_host.sp")
    with open(os.path.join(args.testdata, "cells.sp"), encoding="utf-8") as f:
        cells_text = f.read()
    cell_names = ["inv", "nand2", "nor2"]

    max_bytes = len(cells_text) + 4096
    server = Server(args.binary, host_path,
                    ["--serve-workers=2", "--max-pending=64",
                     f"--max-request-bytes={max_bytes}"])

    sent = 0
    while sent < args.requests:
        burst = min(rng.randrange(1, 5), args.requests - sent)
        lines, expectations = [], {}
        null_codes = []
        for _ in range(burst):
            line, (rid, codes) = make_stream(rng, cells_text, cell_names,
                                             max_bytes)
            lines.append(line)
            if rid is None:
                null_codes.append(codes)
            else:
                expectations[rid] = codes
        server.send_lines(lines)
        answered_null = 0
        for _ in range(burst):
            frame, raw = server.read_frame()
            context = f"request {sent}..{sent + burst}"
            check_frame(frame, checker, schema, fail, context)
            rid = frame.get("id")
            if rid is None:
                answered_null += 1
                code = frame.get("error", {}).get("code")
                if not any(code in codes for codes in null_codes):
                    fail(f"{context}: unexpected id=null code {code!r}")
            elif rid not in expectations:
                fail(f"{context}: answer for an id never sent: {rid}")
            else:
                codes = expectations.pop(rid)
                if codes is None:
                    if not frame.get("ok"):
                        fail(f"{context}: id {rid} should succeed, got "
                             f"{raw.strip()}")
                else:
                    code = frame.get("error", {}).get("code")
                    if code not in codes:
                        fail(f"{context}: id {rid} expected {codes}, "
                             f"got {code!r}")
        if expectations:
            fail(f"unanswered ids in burst: {sorted(expectations)}")
        if answered_null != len(null_codes):
            fail(f"expected {len(null_codes)} id=null answers, "
                 f"got {answered_null}")
        sent += burst

    # The daemon must still answer a canonical request correctly.
    final = {"id": "final", "op": "find", "pattern": cells_text,
             "pattern_top": "nand2"}
    server.send_lines([json.dumps(final)])
    frame, raw = server.read_frame()
    check_frame(frame, checker, schema, fail, "final find")
    if not frame.get("ok") or frame.get("id") != "final":
        fail(f"final find not answered ok: {raw.strip()}")
    elif len(frame["result"]["instances"]) != 3:
        fail(f"final find found {len(frame['result']['instances'])} "
             "nand2 instances, wanted 3")

    code = server.finish()
    if code != 0:
        fail(f"server exit code {code} after drain, wanted 0")
    print(f"soak: {args.requests} requests, seed {args.seed}, "
          f"{fail.count} failure(s)")
    return 1 if fail.count else 0


def run_fault_smoke(args, checker, schema):
    fail = Failures()
    host_path = os.path.join(args.testdata, "mux_host.sp")
    with open(os.path.join(args.testdata, "cells.sp"), encoding="utf-8") as f:
        cells_text = f.read()

    probe = Server(args.binary, host_path)
    probe.send_lines([json.dumps({"id": 0, "op": "status"})])
    status, _ = probe.read_frame()
    probe.finish()
    faults = status["result"]["faults"]
    if not faults["enabled"]:
        print("soak: faults disabled in this build, nothing to smoke")
        return 0

    # Exhaustive mode routes Phase II through enumerate() (every fault site
    # on the find path, plus enumerate's own "phase2" crossing); the
    # containment contract is the same either way.  The ECO sites
    # (parse.delta, session.patch) are only crossed by a patch request, so
    # those smoke through a round-tripping patch instead -- which doubles
    # as the rollback check: the post-fault patch applies the SAME delta,
    # which only succeeds if the faulted attempt left the host unchanged.
    find = json.dumps({"id": 1, "op": "find", "pattern": cells_text,
                       "pattern_top": "nand2", "exhaustive": True})
    delta = ('{"op": "add_net", "name": "smoke"}\n'
             '{"op": "remove_net", "name": "smoke"}')
    patch = json.dumps({"id": 1, "op": "patch", "delta": delta})
    patch_sites = {"parse.delta", "session.patch"}
    for site in faults["sites"]:
        probe_request = patch if site in patch_sites else find
        # Some sites are also crossed while the configured host loads at
        # startup (e.g. parse.netlist); an armed fault firing there exits
        # 65 before serving.  Escalate nth past the startup crossings until
        # the fault lands inside the request -- every site is crossed at
        # least once per find, so the first surviving nth fires in-request.
        for nth in range(1, 8):
            server = Server(args.binary, host_path,
                            env_extra={"SUBG_FAULT": f"{site}:{nth}"})
            try:
                server.send_lines([probe_request])
                frame, raw = server.read_frame()
            except (EOFError, BrokenPipeError):
                code = server.proc.wait(timeout=30)
                if code != 65:
                    fail(f"site {site}:{nth}: startup fault exited {code}, "
                         "wanted 65")
                continue  # fired during host load; aim past it
            break
        else:
            fail(f"site {site}: never reached a request within 7 arming"
                 " ordinals")
            continue
        check_frame(frame, checker, schema, fail, f"site {site}")
        code = frame.get("error", {}).get("code")
        if frame.get("ok") or code != "injected_fault":
            fail(f"site {site}: first request answered {raw.strip()}, "
                 "wanted injected_fault")
        # The fault fired once; the daemon must now serve normally.
        server.send_lines([probe_request])
        frame, raw = server.read_frame()
        check_frame(frame, checker, schema, fail, f"site {site} (after)")
        if not frame.get("ok"):
            fail(f"site {site}: service did not continue: {raw.strip()}")
        elif (site not in patch_sites
              and len(frame["result"]["instances"]) != 3):
            fail(f"site {site}: post-fault find degraded: {raw.strip()}")
        code = server.finish()
        if code != 0:
            fail(f"site {site}: server exit {code} after drain, wanted 0")
        print(f"soak: site {site} (nth={nth}): contained, service continued")
    print(f"soak: {len(faults['sites'])} fault site(s), "
          f"{fail.count} failure(s)")
    return 1 if fail.count else 0


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True)
    parser.add_argument("--testdata",
                        default=os.path.join(HERE, "..", "..", "testdata"))
    parser.add_argument("--schema",
                        default=os.path.join(HERE, "..", "report",
                                             "schema_v1.json"))
    parser.add_argument("--checker",
                        default=os.path.join(HERE, "..", "report",
                                             "check_schema.py"))
    parser.add_argument("--requests", type=int, default=1000)
    parser.add_argument("--seed", type=int, default=20260809)
    parser.add_argument("--fault-smoke", action="store_true")
    args = parser.parse_args(argv[1:])

    checker = load_schema_checker(args.checker)
    with open(args.schema, encoding="utf-8") as f:
        schema = json.load(f)
    if args.fault_smoke:
        return run_fault_smoke(args, checker, schema)
    return run_soak(args, checker, schema)


if __name__ == "__main__":
    sys.exit(main(sys.argv))
