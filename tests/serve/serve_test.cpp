// In-process tests of the serve daemon: a Server over real pipe(2) pairs,
// driven through the same JSON-lines protocol a client speaks.
//
// The robustness contract under test: every failure (malformed line, bad
// request shape, unknown host, expired deadline, oversized line, full
// queue, drain) yields ONE schema-shaped error response and the daemon
// keeps answering; EOF drains every accepted request; shutdown exits 0.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <fstream>
#include <map>
#include <memory>
#include <sstream>
#include <string>
#include <thread>

#include "serve/protocol.hpp"
#include "serve/server.hpp"
#include "util/fault.hpp"
#include "util/json.hpp"
#include "util/json_parse.hpp"
#include "util/line_io.hpp"

namespace subg::serve {
namespace {

std::string testdata(const std::string& file) {
  return std::string(SUBG_TESTDATA_DIR) + "/" + file;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// A minimal NAND2 pattern deck (same cell the testdata library defines).
constexpr const char* kNandPattern =
    ".global vdd gnd\n"
    ".subckt nand2 a b y\n"
    "mp0 y a vdd vdd pmos\n"
    "mp1 y b vdd vdd pmos\n"
    "mn0 y a x gnd nmos\n"
    "mn1 x b gnd gnd nmos\n"
    ".ends\n";

/// One live server over two pipes; the test is the client.
struct ServeFixture {
  int req[2] = {-1, -1};   // test writes -> server stdin
  int resp[2] = {-1, -1};  // server stdout -> test reads
  std::unique_ptr<Server> server;
  std::unique_ptr<LineReader> reader;
  std::thread thread;
  int exit_code = -1;

  explicit ServeFixture(ServeOptions options) {
    EXPECT_EQ(pipe(req), 0);
    EXPECT_EQ(pipe(resp), 0);
    options.in_fd = req[0];
    options.out_fd = resp[1];
    server = std::make_unique<Server>(std::move(options));
    reader = std::make_unique<LineReader>(resp[0], 1 << 22);
    thread = std::thread([this] { exit_code = server->run(); });
  }

  ~ServeFixture() {
    close_input();
    if (thread.joinable()) thread.join();
    for (int fd : {req[0], resp[0], resp[1]}) {
      if (fd >= 0) close(fd);
    }
  }

  void send_line(const std::string& line) {
    ASSERT_TRUE(write_line(req[1], line));
  }
  void send(const json::Value& request) { send_line(request.dump(0)); }

  void close_input() {
    if (req[1] >= 0) {
      close(req[1]);
      req[1] = -1;
    }
  }

  /// Read + parse one response frame, asserting the envelope members every
  /// answer must carry.
  json::Value next() {
    std::string line;
    EXPECT_EQ(reader->read_line(&line), LineReader::Status::kLine) << line;
    json::ParseResult parsed = json::parse(line);
    EXPECT_TRUE(parsed.ok()) << line << " -> " << parsed.error;
    EXPECT_TRUE(parsed.value.is_object());
    const json::Value* version = parsed.value.find("schema_version");
    EXPECT_NE(version, nullptr);
    if (version != nullptr) {
      EXPECT_EQ(version->as_uint(), 1u);
    }
    EXPECT_NE(parsed.value.find("id"), nullptr);
    EXPECT_NE(parsed.value.find("op"), nullptr);
    const json::Value* ok = parsed.value.find("ok");
    EXPECT_NE(ok, nullptr);
    if (ok != nullptr && ok->dump(0) == "false") {
      const json::Value* error = parsed.value.find("error");
      EXPECT_NE(error, nullptr);
      if (error != nullptr) {
        EXPECT_NE(error->find("code"), nullptr);
        EXPECT_NE(error->find("message"), nullptr);
      }
    }
    return std::move(parsed.value);
  }
};

bool response_ok(const json::Value& frame) {
  const json::Value* ok = frame.find("ok");
  return ok != nullptr && ok->dump(0) == "true";
}

std::string error_code(const json::Value& frame) {
  const json::Value* error = frame.find("error");
  if (error == nullptr || error->find("code") == nullptr) return "";
  return error->find("code")->as_string();
}

ServeOptions mux_options() {
  ServeOptions options;
  options.hosts.push_back({"mux_host", testdata("mux_host.sp"), ""});
  options.workers = 2;
  options.jobs = 2;
  return options;
}

json::Value make_request(std::string_view op, std::uint64_t id) {
  json::Value v = json::Value::object();
  v.set("id", id);
  v.set("op", std::string(op));
  return v;
}

json::Value find_request(std::uint64_t id,
                         const std::string& host = std::string()) {
  json::Value v = make_request("find", id);
  v.set("pattern", kNandPattern);
  v.set("pattern_top", "nand2");
  if (!host.empty()) v.set("host", host);
  return v;
}

TEST(Serve, StatusReportsServerShape) {
  ServeFixture fx(mux_options());
  fx.send(make_request("status", 1));
  json::Value frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  EXPECT_EQ(frame.find("id")->as_uint(), 1u);
  const json::Value* result = frame.find("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->find("hosts"), nullptr);
  ASSERT_EQ(result->find("hosts")->elements().size(), 1u);
  const json::Value& host = result->find("hosts")->elements()[0];
  EXPECT_EQ(host.find("host")->as_string(), "mux_host");
  EXPECT_NE(host.find("summary"), nullptr);
  EXPECT_EQ(result->find("workers")->as_uint(), 2u);
  const json::Value* queue = result->find("queue");
  ASSERT_NE(queue, nullptr);
  EXPECT_NE(queue->find("pending"), nullptr);
  EXPECT_NE(queue->find("max_pending"), nullptr);
  const json::Value* counters = result->find("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_NE(counters->find("served"), nullptr);
  EXPECT_NE(counters->find("shed"), nullptr);
  const json::Value* faults = result->find("faults");
  ASSERT_NE(faults, nullptr);
  EXPECT_EQ(faults->find("enabled")->dump(0),
            fault::kFaultsEnabled ? "true" : "false");
  EXPECT_EQ(faults->find("sites")->elements().size(), fault::kSiteCount);
  EXPECT_EQ(result->find("draining")->dump(0), "false");
}

TEST(Serve, FindReturnsVerifiedInstances) {
  ServeFixture fx(mux_options());
  fx.send(find_request(7));
  json::Value frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  EXPECT_EQ(frame.find("id")->as_uint(), 7u);
  EXPECT_EQ(frame.find("op")->as_string(), "find");
  const json::Value* result = frame.find("result");
  ASSERT_NE(result, nullptr);
  ASSERT_NE(result->find("instances"), nullptr);
  // The same 3 NAND2 gates the one-shot CLI finds in mux_host.sp.
  EXPECT_EQ(result->find("instances")->elements().size(), 3u);
  for (const json::Value& inst : result->find("instances")->elements()) {
    ASSERT_NE(inst.find("ports"), nullptr);
    ASSERT_NE(inst.find("devices"), nullptr);
    EXPECT_EQ(inst.find("devices")->elements().size(), 4u);
  }
  const json::Value* report = result->find("report");
  ASSERT_NE(report, nullptr);
}

TEST(Serve, WarmCacheAnswersRepeatedFindsIdentically) {
  // The whole point of serving: the second find reuses the warm host state
  // and must produce the identical instances document.
  ServeFixture fx(mux_options());
  fx.send(find_request(1));
  json::Value first = fx.next();
  ASSERT_TRUE(response_ok(first));
  fx.send(find_request(2));
  json::Value second = fx.next();
  ASSERT_TRUE(response_ok(second));
  EXPECT_EQ(first.find("result")->find("instances")->dump(0),
            second.find("result")->find("instances")->dump(0));
}

TEST(Serve, MalformedLineIsAnsweredAndServingContinues) {
  ServeFixture fx(mux_options());
  fx.send_line("this is not json");
  json::Value frame = fx.next();
  EXPECT_FALSE(response_ok(frame));
  EXPECT_EQ(error_code(frame), "parse_error");
  // The id cannot be echoed from an unparseable line.
  EXPECT_EQ(frame.find("id")->kind(), json::Value::Kind::kNull);

  fx.send(make_request("status", 2));
  EXPECT_TRUE(response_ok(fx.next()));
}

TEST(Serve, BadRequestShapesAreRejectedStructurally) {
  ServeFixture fx(mux_options());
  fx.send_line("[1, 2, 3]");  // JSON, but not an object
  EXPECT_EQ(error_code(fx.next()), "bad_request");

  fx.send_line(R"({"id": 4, "op": 7})");  // op must be a string
  EXPECT_EQ(error_code(fx.next()), "bad_request");

  fx.send_line(R"({"id": 5})");  // missing op
  EXPECT_EQ(error_code(fx.next()), "bad_request");

  fx.send_line(R"({"id": 6, "op": "find", "timeout_ms": -3})");
  EXPECT_EQ(error_code(fx.next()), "bad_request");

  json::Value no_pattern = make_request("find", 8);
  fx.send(no_pattern);  // find without a pattern
  json::Value frame = fx.next();
  EXPECT_EQ(error_code(frame), "bad_request");
  EXPECT_EQ(frame.find("id")->as_uint(), 8u);

  fx.send(make_request("frobnicate", 9));
  EXPECT_EQ(error_code(fx.next()), "unknown_op");

  // After the whole gauntlet the daemon still works.
  fx.send(find_request(10));
  EXPECT_TRUE(response_ok(fx.next()));
}

TEST(Serve, UnknownHostAndSickPatternAreRequestErrors) {
  ServeFixture fx(mux_options());
  fx.send(find_request(1, "no_such_host"));
  EXPECT_EQ(error_code(fx.next()), "unknown_host");

  json::Value sick = make_request("find", 2);
  sick.set("pattern", ".subckt broken\nmx y a\n");  // unterminated, bad card
  fx.send(sick);
  json::Value frame = fx.next();
  EXPECT_FALSE(response_ok(frame));
  EXPECT_EQ(error_code(frame), "parse_error");

  fx.send(make_request("status", 3));
  EXPECT_TRUE(response_ok(fx.next()));
}

TEST(Serve, ExpiredDeadlineAnswersInBandWithPartialResult) {
  ServeFixture fx(mux_options());
  json::Value request = find_request(11);
  request.set("timeout_ms", 1e-6);  // expires before the first budget poll
  fx.send(request);
  json::Value frame = fx.next();
  EXPECT_FALSE(response_ok(frame));
  EXPECT_EQ(error_code(frame), "deadline_expired");
  EXPECT_EQ(frame.find("id")->as_uint(), 11u);
  // The partial (verified-only) result document still attaches — the
  // in-band mapping of the one-shot exit-75 contract.
  const json::Value* result = frame.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_NE(result->find("report"), nullptr);
  EXPECT_NE(result->find("instances"), nullptr);

  // The daemon is not poisoned: the same find without the timeout works.
  fx.send(find_request(12));
  EXPECT_TRUE(response_ok(fx.next()));
}

TEST(Serve, ServerDefaultTimeoutAppliesAndZeroOverridesIt) {
  ServeOptions options = mux_options();
  options.request_timeout = 1e-9;  // every defaulted request expires
  ServeFixture fx(options);

  fx.send(find_request(1));  // no timeout_ms: server default applies
  EXPECT_EQ(error_code(fx.next()), "deadline_expired");

  json::Value unlimited = find_request(2);
  unlimited.set("timeout_ms", 0);  // 0 = explicitly unlimited
  fx.send(unlimited);
  EXPECT_TRUE(response_ok(fx.next()));
}

TEST(Serve, LoadInlineThenFindAndDuplicateRefused) {
  ServeOptions options;  // no preloaded hosts at all
  ServeFixture fx(options);

  // With nothing loaded, "" cannot resolve (bad_request: nothing to
  // default to); a NAMED missing host is unknown_host.
  fx.send(find_request(1));
  EXPECT_EQ(error_code(fx.next()), "bad_request");
  fx.send(find_request(11, "ghost"));
  EXPECT_EQ(error_code(fx.next()), "unknown_host");

  json::Value load = make_request("load", 2);
  load.set("name", "inline_mux");
  load.set("netlist", read_file(testdata("mux_host.sp")));
  fx.send(load);
  json::Value frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  const json::Value* result = frame.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("host")->as_string(), "inline_mux");
  EXPECT_EQ(result->find("csr_core")->dump(0), "true");

  // The sole loaded host resolves as the default.
  fx.send(find_request(3));
  frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  EXPECT_EQ(frame.find("result")->find("instances")->elements().size(), 3u);

  // Re-registering the same name is refused (a silent replacement would
  // throw away any ECO patches clients applied); the host survives intact.
  fx.send(load);
  frame = fx.next();
  EXPECT_EQ(error_code(frame), "already_loaded");
  fx.send(find_request(31));
  frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  EXPECT_EQ(frame.find("result")->find("instances")->elements().size(), 3u);

  json::Value bad_load = make_request("load", 4);
  bad_load.set("name", "both");
  bad_load.set("netlist", "x");
  bad_load.set("path", "/nonexistent");
  fx.send(bad_load);
  EXPECT_EQ(error_code(fx.next()), "bad_request");
}

/// A delta wiring a fourth NAND2 (inputs y / yb, output z) into mux_host.
constexpr const char* kFourthNandDelta =
    "# one more nand2, fed by the mux output and the spare inverter\n"
    R"({"op":"add_device","type":"pmos","name":"xp0","nets":["z","y","vdd","vdd"]})"
    "\n"
    R"({"op":"add_device","type":"pmos","name":"xp1","nets":["z","yb","vdd","vdd"]})"
    "\n"
    R"({"op":"add_device","type":"nmos","name":"xn0","nets":["z","y","zx","gnd"]})"
    "\n"
    R"({"op":"add_device","type":"nmos","name":"xn1","nets":["zx","yb","gnd","gnd"]})"
    "\n";

TEST(Serve, PatchAppliesDeltaAndFindSeesIt) {
  ServeFixture fx(mux_options());
  fx.send(find_request(1));
  json::Value frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  EXPECT_EQ(frame.find("result")->find("instances")->elements().size(), 3u);

  json::Value patch = make_request("patch", 2);
  patch.set("delta", std::string(kFourthNandDelta));
  fx.send(patch);
  frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  const json::Value* result = frame.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_EQ(result->find("host")->as_string(), "mux_host");
  const json::Value* eco = result->find("eco");
  ASSERT_NE(eco, nullptr);
  EXPECT_EQ(eco->find("patched_devices")->as_uint(), 4u);
  EXPECT_EQ(eco->find("renames")->as_uint(), 0u);
  EXPECT_GT(eco->find("invalidated_labels")->as_uint(), 0u);
  EXPECT_EQ(result->find("patch_count")->as_uint(), 1u);
  // The summary reflects the post-patch netlist (4 new devices).
  EXPECT_EQ(result->find("summary")->find("devices")->as_uint(), 20u);

  // The warm session answers through the patched host: 4 NAND2s now.
  fx.send(find_request(3));
  frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  EXPECT_EQ(frame.find("result")->find("instances")->elements().size(), 4u);

  // status reports the per-host ECO odometer.
  fx.send(make_request("status", 4));
  frame = fx.next();
  ASSERT_TRUE(response_ok(frame));
  const json::Value& host = frame.find("result")->find("hosts")->elements()[0];
  const json::Value* host_eco = host.find("eco");
  ASSERT_NE(host_eco, nullptr);
  EXPECT_EQ(host_eco->find("patch_count")->as_uint(), 1u);
  EXPECT_NE(host_eco->find("spill_bytes"), nullptr);
  EXPECT_NE(host_eco->find("last_compaction"), nullptr);
}

TEST(Serve, PatchFailuresLeaveTheSessionUntouched) {
  ServeFixture fx(mux_options());

  json::Value patch = make_request("patch", 1);
  fx.send(patch);  // no delta at all
  EXPECT_EQ(error_code(fx.next()), "bad_request");

  patch = make_request("patch", 2);
  patch.set("delta", "{\"op\": \"add_net\"");  // malformed JSON line
  fx.send(patch);
  json::Value frame = fx.next();
  EXPECT_EQ(error_code(frame), "bad_delta");
  EXPECT_EQ(frame.find("id")->as_uint(), 2u);

  patch = make_request("patch", 3);  // parses, but inapplicable: y is live
  patch.set("delta", R"({"op":"remove_net","name":"y"})");
  fx.send(patch);
  EXPECT_EQ(error_code(fx.next()), "bad_delta");

  patch = make_request("patch", 4);
  patch.set("delta", R"({"op":"add_net","name":"fresh"})");
  patch.set("host", "no_such_host");
  fx.send(patch);
  EXPECT_EQ(error_code(fx.next()), "unknown_host");

  // Every failure rolled back (or never started): the host still answers
  // with the original 3 instances and a zero patch odometer.
  fx.send(find_request(5));
  frame = fx.next();
  ASSERT_TRUE(response_ok(frame)) << frame.dump(0);
  EXPECT_EQ(frame.find("result")->find("instances")->elements().size(), 3u);
  fx.send(make_request("status", 6));
  frame = fx.next();
  const json::Value& host = frame.find("result")->find("hosts")->elements()[0];
  EXPECT_EQ(host.find("eco")->find("patch_count")->as_uint(), 0u);
}

TEST(Serve, OversizedLineIsSheddedAndFramingSurvives) {
  ServeOptions options = mux_options();
  options.max_request_bytes = 96;
  ServeFixture fx(options);

  std::string big = R"({"id": 1, "op": "lint", "netlist": ")";
  big += std::string(500, 'x');
  big += "\"}";
  fx.send_line(big);
  json::Value frame = fx.next();
  EXPECT_FALSE(response_ok(frame));
  EXPECT_EQ(error_code(frame), "oversized");
  // Fast rejection is id-less by design: echoing the id would require
  // parsing the very line being refused.
  EXPECT_EQ(frame.find("id")->kind(), json::Value::Kind::kNull);

  // The long line was consumed exactly to its newline: the next (short)
  // request parses cleanly.
  fx.send(make_request("status", 2));
  frame = fx.next();
  ASSERT_TRUE(response_ok(frame));
  EXPECT_EQ(frame.find("id")->as_uint(), 2u);
  EXPECT_EQ(frame.find("result")
                ->find("counters")
                ->find("oversized")
                ->as_uint(),
            1u);
}

TEST(Serve, EofDrainStillAnswersEveryAcceptedRequest) {
  // A client that writes N requests and closes stdin gets N answers: EOF
  // stops intake, never the workers.
  ServeFixture fx(mux_options());
  constexpr std::uint64_t kRequests = 5;
  for (std::uint64_t i = 0; i < kRequests; ++i) fx.send(find_request(i));
  fx.close_input();

  std::map<std::uint64_t, bool> answered;  // id -> ok (workers race, ids sort)
  for (std::uint64_t i = 0; i < kRequests; ++i) {
    json::Value frame = fx.next();
    answered[frame.find("id")->as_uint()] = response_ok(frame);
  }
  ASSERT_EQ(answered.size(), kRequests);
  for (const auto& [id, ok] : answered) {
    EXPECT_TRUE(ok) << "request " << id;
  }
  fx.thread.join();
  EXPECT_EQ(fx.exit_code, 0);
}

TEST(Serve, ShutdownOpDrainsAndExitsZero) {
  ServeFixture fx(mux_options());
  fx.send(make_request("shutdown", 99));
  json::Value frame = fx.next();
  ASSERT_TRUE(response_ok(frame));
  EXPECT_EQ(frame.find("result")->find("draining")->dump(0), "true");
  fx.thread.join();
  EXPECT_EQ(fx.exit_code, 0);
}

TEST(Serve, FullQueueShedsAndDrainAnswersQueuedRequests) {
  // One worker wedged on a slow load (a FIFO with no writer), a one-slot
  // queue: the next request queues, the one after that is shed with
  // `overloaded`; a drain then answers the queued request `shutting_down`
  // once the worker is unwedged.
  char dir_template[] = "/tmp/subg_serve_test_XXXXXX";
  char* dir = mkdtemp(dir_template);
  ASSERT_NE(dir, nullptr);
  const std::string fifo = std::string(dir) + "/slow.fifo";
  ASSERT_EQ(mkfifo(fifo.c_str(), 0600), 0);

  {
    ServeOptions options;
    options.workers = 1;
    options.max_pending = 1;
    ServeFixture fx(options);

    json::Value slow_load = make_request("load", 1);
    slow_load.set("name", "slow");
    slow_load.set("path", fifo);
    fx.send(slow_load);
    // Let the single worker pop the load and block opening the FIFO.
    std::this_thread::sleep_for(std::chrono::milliseconds(500));

    // `find` (not `status`: status still executes during a drain, which is
    // what lets operators watch a draining server).
    fx.send(find_request(2));            // fills the 1-slot queue
    fx.send(make_request("status", 3));  // queue full: shed immediately
    json::Value shed = fx.next();
    EXPECT_FALSE(response_ok(shed));
    EXPECT_EQ(error_code(shed), "overloaded");
    EXPECT_EQ(shed.find("id")->kind(), json::Value::Kind::kNull);

    fx.server->request_shutdown();
    // Unwedge the load: open the writer side and give it EOF.
    const int wfd = open(fifo.c_str(), O_WRONLY);
    ASSERT_GE(wfd, 0);
    close(wfd);

    // The wedged load answers (an empty FIFO is a parse error — the point
    // is the worker survived), then the queued request is drained.
    json::Value load_frame = fx.next();
    EXPECT_EQ(load_frame.find("id")->as_uint(), 1u);
    json::Value queued = fx.next();
    EXPECT_EQ(queued.find("id")->as_uint(), 2u);
    EXPECT_EQ(error_code(queued), "shutting_down");

    fx.thread.join();
    EXPECT_EQ(fx.exit_code, 0);
  }
  unlink(fifo.c_str());
  rmdir(dir);
}

TEST(Serve, InjectedFaultIsContainedToOneResponse) {
  if (!fault::kFaultsEnabled) {
    GTEST_SKIP() << "built without -DSUBG_FAULTS=ON";
  }
  ServeFixture fx(mux_options());
  // Warm up so arming cannot hit a concurrent stray dispatch.
  fx.send(make_request("status", 1));
  ASSERT_TRUE(response_ok(fx.next()));

  ASSERT_TRUE(fault::arm("serve.dispatch", 1));
  fx.send(make_request("status", 2));
  json::Value frame = fx.next();
  EXPECT_FALSE(response_ok(frame));
  EXPECT_EQ(error_code(frame), "injected_fault");

  // One throw per arming: the daemon serves normally afterwards.
  fx.send(make_request("status", 3));
  EXPECT_TRUE(response_ok(fx.next()));
  fault::disarm();
}

TEST(Serve, MissingConfiguredHostExitsDataError) {
  ServeOptions options;
  options.hosts.push_back({"ghost", "/nonexistent/ghost.sp", ""});
  ServeFixture fx(options);
  fx.close_input();
  fx.thread.join();
  EXPECT_EQ(fx.exit_code, 65);
}

}  // namespace
}  // namespace subg::serve
