#!/usr/bin/env python3
"""Serve answers must be byte-identical to the one-shot CLI.

The warm daemon is an optimization, never a different matcher: for the same
pattern/host pair, `subgemini serve`'s `find` result document and the
one-shot `subgemini find --format=json` document must carry identical
pattern/host/instances/report members -- modulo the wall-clock timing
fields, which are zeroed on both sides before comparing the canonical JSON
bytes.  Also covers `lint` against `subgemini lint --format=json`.

Stdlib only.  Exit 0 when every pair matches, 1 otherwise.
"""
import argparse
import json
import os
import subprocess
import sys

HERE = os.path.dirname(os.path.abspath(__file__))


def zero_timings(node):
    """Zero every *seconds member, recursively, in place."""
    if isinstance(node, dict):
        for key, value in node.items():
            if key == "seconds" or key.endswith("_seconds"):
                node[key] = 0
            else:
                zero_timings(value)
    elif isinstance(node, list):
        for item in node:
            zero_timings(item)


def canonical(doc, members):
    picked = {key: doc[key] for key in members if key in doc}
    missing = [key for key in members if key not in doc]
    if missing:
        raise SystemExit(f"document is missing members {missing}: "
                         f"{json.dumps(doc)[:200]}")
    zero_timings(picked)
    return json.dumps(picked, sort_keys=True)


def one_shot(binary, argv):
    done = subprocess.run([binary, *argv], capture_output=True, text=True)
    if done.returncode != 0:
        raise SystemExit(f"one-shot {argv} exited {done.returncode}: "
                         f"{done.stderr}")
    return json.loads(done.stdout)


def serve_once(binary, host_path, request):
    proc = subprocess.Popen([binary, "serve", host_path],
                            stdin=subprocess.PIPE, stdout=subprocess.PIPE,
                            text=True)
    out, _ = proc.communicate(json.dumps(request) + "\n", timeout=60)
    if proc.returncode != 0:
        raise SystemExit(f"serve exited {proc.returncode}")
    frame = json.loads(out.splitlines()[0])
    if not frame.get("ok"):
        raise SystemExit(f"serve answered an error: {out.splitlines()[0]}")
    return frame["result"]


def main(argv):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--binary", required=True)
    parser.add_argument("--testdata",
                        default=os.path.join(HERE, "..", "..", "testdata"))
    args = parser.parse_args(argv[1:])

    host_path = os.path.join(args.testdata, "mux_host.sp")
    cells_path = os.path.join(args.testdata, "cells.sp")
    with open(cells_path, encoding="utf-8") as f:
        cells_text = f.read()

    failures = 0
    for cell in ["inv", "nand2", "nor2"]:
        cli = one_shot(args.binary,
                       ["find", "--format=json", cells_path, host_path,
                        f"--pattern-top={cell}"])
        served = serve_once(args.binary, host_path,
                            {"id": 0, "op": "find", "pattern": cells_text,
                             "pattern_top": cell})
        members = ["pattern", "host", "instances", "report"]
        if canonical(cli, members) != canonical(served, members):
            failures += 1
            print(f"roundtrip: FAIL: find {cell} differs", file=sys.stderr)
            print(f"  one-shot: {canonical(cli, members)}", file=sys.stderr)
            print(f"  serve:    {canonical(served, members)}",
                  file=sys.stderr)
        else:
            print(f"roundtrip: find {cell}: identical")

    # Lint an inline deck: that path runs the same lint_deck pipeline
    # (hierarchy checks + flatten + flat checks) as the one-shot CLI.  The
    # loaded-host lint intentionally differs -- it lints the warm,
    # already-flattened netlist.
    with open(host_path, encoding="utf-8") as f:
        host_text = f.read()
    cli = one_shot(args.binary, ["lint", "--format=json", host_path,
                                 "--fail-on=error"])
    served = serve_once(args.binary, host_path,
                        {"id": 0, "op": "lint", "netlist": host_text})
    if canonical(cli, ["lint"]) != canonical(served, ["lint"]):
        failures += 1
        print("roundtrip: FAIL: lint differs", file=sys.stderr)
    else:
        print("roundtrip: lint: identical")

    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
