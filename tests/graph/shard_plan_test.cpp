// ShardPlan structural invariants (DESIGN.md §11).
//
// The sharded Phase I sweep leans on four properties of the plan, each
// pinned here against the plain CircuitGraph as ground truth:
//   1. PARTITION — every device is owned by exactly one shard; every net is
//      owned by exactly one shard XOR is a boundary anchor.
//   2. DETERMINISM — the plan is a pure function of (graph, options).
//   3. FIDELITY — the per-shard CSR slice, label columns, bloom filters,
//      and type histogram agree with the graph they summarize.
//   4. SOUNDNESS — Shard::rejects(labels, kind) is true iff NO owned vertex
//      of that kind carries a label in the set (brute force over the owned
//      lists), because that emptiness is what licenses the round-0
//      bulk-skip in match/phase1.cpp.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <set>
#include <vector>

#include "gen/generators.hpp"
#include "graph/circuit_graph.hpp"
#include "graph/shard_plan.hpp"
#include "util/rng.hpp"

namespace subg {
namespace {

/// 32 tiles x 8 units on a 2-net bus with a 16-cell pad ring: each bus net
/// reaches 32/2 + 1 = 17 pins, past the 16-pin anchor threshold below, so
/// the plan has both anchor flavors (rails by is_special, bus by fanout);
/// each 48-device tile fits the 256-device target.
gen::Generated small_soc() { return gen::soc_grid(32, 8, 16, 2); }

ShardPlanOptions small_options() {
  ShardPlanOptions o;
  o.target_devices = 256;
  o.anchor_fanout = 16;
  return o;
}

TEST(ShardPlan, PartitionsDevicesAndNets) {
  gen::Generated g = small_soc();
  CircuitGraph graph(g.netlist);
  ShardPlan plan = ShardPlan::build(graph, small_options());
  ASSERT_FALSE(plan.shards().empty());

  std::vector<int> device_owner(graph.vertex_count(), 0);
  std::vector<int> net_owner(graph.vertex_count(), 0);
  for (const ShardPlan::Shard& s : plan.shards()) {
    for (Vertex v : s.devices) {
      ASSERT_TRUE(graph.is_device(v));
      ++device_owner[v];
    }
    for (Vertex v : s.nets) {
      ASSERT_TRUE(graph.is_net(v));
      ++net_owner[v];
    }
  }
  std::set<Vertex> anchors(plan.anchor_nets().begin(),
                           plan.anchor_nets().end());
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    if (graph.is_device(v)) {
      EXPECT_EQ(device_owner[v], 1) << "device vertex " << v;
    } else if (anchors.contains(v)) {
      EXPECT_EQ(net_owner[v], 0) << "anchor net owned by a shard: " << v;
    } else {
      EXPECT_EQ(net_owner[v], 1) << "net vertex " << v;
    }
  }
}

TEST(ShardPlan, AnchorsAreTheSpecialAndHighFanoutNets) {
  gen::Generated g = small_soc();
  CircuitGraph graph(g.netlist);
  const ShardPlanOptions opts = small_options();
  ShardPlan plan = ShardPlan::build(graph, opts);
  std::set<Vertex> anchors(plan.anchor_nets().begin(),
                           plan.anchor_nets().end());
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    if (!graph.is_net(v)) continue;
    const bool expect_anchor =
        graph.is_special(v) || graph.degree(v) >= opts.anchor_fanout;
    EXPECT_EQ(anchors.contains(v), expect_anchor)
        << "net vertex " << v << " degree " << graph.degree(v);
  }
  // Both anchor flavors must actually occur: the rails (is_special) and the
  // two 17-pin bus nets (fanout >= 16 but not special).
  std::size_t special = 0;
  std::size_t by_fanout = 0;
  for (Vertex v : plan.anchor_nets()) {
    graph.is_special(v) ? ++special : ++by_fanout;
  }
  EXPECT_GE(special, 2u);
  EXPECT_GE(by_fanout, 2u);
}

TEST(ShardPlan, BuildIsDeterministic) {
  gen::Generated g = small_soc();
  CircuitGraph graph(g.netlist);
  ShardPlan a = ShardPlan::build(graph, small_options());
  ShardPlan b = ShardPlan::build(graph, small_options());
  ASSERT_EQ(a.shards().size(), b.shards().size());
  for (std::size_t i = 0; i < a.shards().size(); ++i) {
    const ShardPlan::Shard& sa = a.shards()[i];
    const ShardPlan::Shard& sb = b.shards()[i];
    EXPECT_EQ(sa.devices, sb.devices) << "shard " << i;
    EXPECT_EQ(sa.nets, sb.nets) << "shard " << i;
    EXPECT_EQ(sa.anchor_refs, sb.anchor_refs) << "shard " << i;
    EXPECT_EQ(sa.slice_begin, sb.slice_begin) << "shard " << i;
    EXPECT_EQ(sa.slice_adj, sb.slice_adj) << "shard " << i;
    EXPECT_EQ(sa.device_labels, sb.device_labels) << "shard " << i;
    EXPECT_EQ(sa.net_labels, sb.net_labels) << "shard " << i;
    EXPECT_EQ(sa.device_bloom, sb.device_bloom) << "shard " << i;
    EXPECT_EQ(sa.net_bloom, sb.net_bloom) << "shard " << i;
    EXPECT_EQ(sa.type_histogram, sb.type_histogram) << "shard " << i;
  }
  EXPECT_EQ(std::vector<Vertex>(a.anchor_nets().begin(),
                                a.anchor_nets().end()),
            std::vector<Vertex>(b.anchor_nets().begin(),
                                b.anchor_nets().end()));
}

TEST(ShardPlan, RespectsTheDeviceTarget) {
  gen::Generated g = small_soc();
  CircuitGraph graph(g.netlist);
  const ShardPlanOptions opts = small_options();
  ShardPlan plan = ShardPlan::build(graph, opts);
  // Every component of the small soc (a 48-device tile, a pad cell, a bus
  // driver) fits under the 256-device target, so no shard may exceed it.
  EXPECT_LE(plan.max_shard_devices(), opts.target_devices);
  // 32 tiles x 48 devices pack at most 5 to a 256-device shard, plus the
  // pad bucket: at least 7 shards.
  EXPECT_GE(plan.shards().size(), 7u);
  EXPECT_GT(plan.bytes(), 0u);
}

TEST(ShardPlan, CsrSliceMatchesGraphAdjacency) {
  gen::Generated g = small_soc();
  CircuitGraph graph(g.netlist);
  ShardPlan plan = ShardPlan::build(graph, small_options());
  for (const ShardPlan::Shard& s : plan.shards()) {
    // Local id space: [devices | nets | anchor_refs].
    std::map<Vertex, std::uint32_t> local;
    std::vector<Vertex> global;
    for (Vertex v : s.devices) {
      local.emplace(v, static_cast<std::uint32_t>(global.size()));
      global.push_back(v);
    }
    for (Vertex v : s.nets) {
      local.emplace(v, static_cast<std::uint32_t>(global.size()));
      global.push_back(v);
    }
    for (Vertex v : s.anchor_refs) {
      local.emplace(v, static_cast<std::uint32_t>(global.size()));
      global.push_back(v);
    }
    ASSERT_EQ(s.slice_begin.size(), s.devices.size() + 1);
    for (std::size_t i = 0; i < s.devices.size(); ++i) {
      const Vertex d = s.devices[i];
      std::vector<std::uint32_t> expect;
      for (const auto& e : graph.edges(d)) {
        auto it = local.find(e.to);
        ASSERT_NE(it, local.end())
            << "device " << d << " touches net " << e.to
            << " that is neither owned nor an anchor ref of its shard";
        expect.push_back(it->second);
      }
      const std::vector<std::uint32_t> got(
          s.slice_adj.begin() + static_cast<std::ptrdiff_t>(s.slice_begin[i]),
          s.slice_adj.begin() +
              static_cast<std::ptrdiff_t>(s.slice_begin[i + 1]));
      EXPECT_EQ(got, expect) << "device " << d;
    }
  }
}

TEST(ShardPlan, LabelColumnsBloomAndHistogramAreExact) {
  gen::Generated g = small_soc();
  CircuitGraph graph(g.netlist);
  ShardPlan plan = ShardPlan::build(graph, small_options());
  for (const ShardPlan::Shard& s : plan.shards()) {
    std::set<Label> dev_labels;
    std::map<Label, std::uint64_t> histogram;
    for (Vertex v : s.devices) {
      dev_labels.insert(graph.initial_label(v));
      ++histogram[graph.initial_label(v)];
    }
    std::set<Label> net_labels;
    for (Vertex v : s.nets) net_labels.insert(graph.initial_label(v));

    EXPECT_EQ(std::vector<Label>(dev_labels.begin(), dev_labels.end()),
              s.device_labels);
    EXPECT_EQ(std::vector<Label>(net_labels.begin(), net_labels.end()),
              s.net_labels);
    using HistogramRows = std::vector<std::pair<Label, std::uint64_t>>;
    EXPECT_EQ(HistogramRows(histogram.begin(), histogram.end()),
              s.type_histogram);
    // Bloom completeness: a label actually present must never probe
    // negative (negatives are definite; that is the whole contract).
    auto probes_positive = [](const std::array<std::uint64_t, 4>& bloom,
                              Label l) {
      const std::uint64_t h = splitmix64_mix(l);
      const std::uint32_t b1 = static_cast<std::uint32_t>(h) & 255u;
      const std::uint32_t b2 = static_cast<std::uint32_t>(h >> 32) & 255u;
      return ((bloom[b1 / 64] >> (b1 % 64)) & 1) != 0 &&
             ((bloom[b2 / 64] >> (b2 % 64)) & 1) != 0;
    };
    for (Label l : s.device_labels) {
      EXPECT_TRUE(probes_positive(s.device_bloom, l));
    }
    for (Label l : s.net_labels) {
      EXPECT_TRUE(probes_positive(s.net_bloom, l));
    }
  }
}

TEST(ShardPlan, RejectsMatchesBruteForceEmptiness) {
  gen::Generated g = small_soc();
  CircuitGraph graph(g.netlist);
  ShardPlan plan = ShardPlan::build(graph, small_options());

  // Probe sets: each shard's own columns (never rejected), other shards'
  // columns (rejected iff disjoint), the empty set (always rejected), and
  // a synthetic all-miss set.
  std::vector<std::vector<Label>> probes;
  for (const ShardPlan::Shard& s : plan.shards()) {
    probes.push_back(s.device_labels);
    probes.push_back(s.net_labels);
  }
  probes.push_back({});
  probes.push_back({Label{0xdeadbeefu}});

  for (const ShardPlan::Shard& s : plan.shards()) {
    for (const std::vector<Label>& probe : probes) {
      for (bool device_kind : {true, false}) {
        const std::vector<Vertex>& owned = device_kind ? s.devices : s.nets;
        bool any = false;
        for (Vertex v : owned) {
          if (std::binary_search(probe.begin(), probe.end(),
                                 graph.initial_label(v))) {
            any = true;
            break;
          }
        }
        EXPECT_EQ(s.rejects(probe, device_kind), !any)
            << "kind=" << device_kind << " probe size " << probe.size();
      }
    }
  }
}

TEST(ShardPlan, PatternRound0LabelsAreSortedDistinct) {
  gen::Generated g = gen::soc_grid(2, 4, 2, 1);
  CircuitGraph graph(g.netlist);
  Round0PatternLabels labels = pattern_round0_labels(graph);
  EXPECT_TRUE(std::is_sorted(labels.devices.begin(), labels.devices.end()));
  EXPECT_TRUE(std::is_sorted(labels.nets.begin(), labels.nets.end()));
  EXPECT_EQ(std::adjacent_find(labels.devices.begin(), labels.devices.end()),
            labels.devices.end());
  EXPECT_EQ(std::adjacent_find(labels.nets.begin(), labels.nets.end()),
            labels.nets.end());
  EXPECT_FALSE(labels.devices.empty());
}

}  // namespace
}  // namespace subg
