// CsrCore structural tests: the flat arrays must mirror CircuitGraph
// exactly — same vertices, same edge ORDER (not just the same edge set;
// the byte-identity of --core=csr vs --core=legacy depends on iterating
// edges in the same sequence), same labels and rail flags — plus the
// precomputed round-0 host labels and the footprint accounting the obs
// layer reports.
#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "graph/circuit_graph.hpp"
#include "graph/csr_core.hpp"
#include "util/hash.hpp"

namespace subg {
namespace {

void expect_mirrors_graph(const CircuitGraph& graph, const CsrCore& core) {
  ASSERT_EQ(core.vertex_count(), graph.vertex_count());
  EXPECT_EQ(&core.graph(), &graph);
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    SCOPED_TRACE(v);
    const auto edges = graph.edges(v);
    const auto nbrs = core.neighbors(v);
    const auto coeffs = core.coefficients(v);
    ASSERT_EQ(nbrs.size(), edges.size());
    ASSERT_EQ(coeffs.size(), edges.size());
    EXPECT_EQ(core.degree(v), graph.degree(v));
    for (std::size_t k = 0; k < edges.size(); ++k) {
      EXPECT_EQ(nbrs[k], edges[k].to) << "edge " << k;
      EXPECT_EQ(coeffs[k], edges[k].coefficient) << "edge " << k;
    }
    EXPECT_EQ(core.initial_label(v), graph.initial_label(v));
    EXPECT_EQ(core.is_special(v), graph.is_special(v));
    // Round-0 host labels: invariant label for devices, pure degree label
    // for nets (rail overrides are applied by the caller, not baked in).
    if (graph.is_device(v)) {
      EXPECT_EQ(core.host_base_label(v), graph.initial_label(v));
    } else {
      EXPECT_EQ(core.host_base_label(v), degree_label(graph.degree(v)));
    }
  }
}

TEST(CsrCore, MirrorsPatternGraph) {
  cells::CellLibrary lib;
  for (const char* cell : {"inv", "nand2", "fulladder", "dff", "sram6t"}) {
    SCOPED_TRACE(cell);
    Netlist pattern = lib.pattern(cell);
    CircuitGraph graph(pattern);
    CsrCore core(graph);
    expect_mirrors_graph(graph, core);
  }
}

TEST(CsrCore, MirrorsGeneratedHosts) {
  for (const gen::Generated& g :
       {gen::c17(), gen::ripple_carry_adder(8), gen::register_file(2, 4),
        gen::logic_soup(100, 42)}) {
    SCOPED_TRACE(g.netlist.device_count());
    CircuitGraph graph(g.netlist);
    CsrCore core(graph);
    expect_mirrors_graph(graph, core);
  }
}

TEST(CsrCore, FootprintAccounting) {
  gen::Generated g = gen::ripple_carry_adder(8);
  CircuitGraph graph(g.netlist);
  CsrCore core(graph);
  // bytes() is the heap footprint of the flat arrays: at minimum the
  // offsets array plus per-vertex label/flag arrays must be accounted.
  const std::size_t nv = graph.vertex_count();
  EXPECT_GE(core.bytes(), (nv + 1) * sizeof(std::uint32_t) +
                              nv * (2 * sizeof(Label) + sizeof(std::uint8_t)));
  EXPECT_GE(core.build_seconds(), 0.0);
}

}  // namespace
}  // namespace subg
