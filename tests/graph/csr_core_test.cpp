// CsrCore structural tests: the flat arrays must mirror CircuitGraph
// exactly — same vertices, same edge ORDER (not just the same edge set;
// the byte-identity of --core=csr vs --core=legacy depends on iterating
// edges in the same sequence), same labels and rail flags — plus the
// precomputed round-0 host labels and the footprint accounting the obs
// layer reports.
#include <gtest/gtest.h>

#include <cstdint>
#include <limits>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "graph/circuit_graph.hpp"
#include "graph/csr_core.hpp"
#include "util/hash.hpp"

namespace subg {
namespace {

void expect_mirrors_graph(const CircuitGraph& graph, const CsrCore& core) {
  ASSERT_EQ(core.vertex_count(), graph.vertex_count());
  EXPECT_EQ(&core.graph(), &graph);
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    SCOPED_TRACE(v);
    const auto edges = graph.edges(v);
    const auto nbrs = core.neighbors(v);
    const auto coeffs = core.coefficients(v);
    ASSERT_EQ(nbrs.size(), edges.size());
    ASSERT_EQ(coeffs.size(), edges.size());
    EXPECT_EQ(core.degree(v), graph.degree(v));
    for (std::size_t k = 0; k < edges.size(); ++k) {
      EXPECT_EQ(nbrs[k], edges[k].to) << "edge " << k;
      EXPECT_EQ(coeffs[k], edges[k].coefficient) << "edge " << k;
    }
    EXPECT_EQ(core.initial_label(v), graph.initial_label(v));
    EXPECT_EQ(core.is_special(v), graph.is_special(v));
    // Round-0 host labels: invariant label for devices, pure degree label
    // for nets (rail overrides are applied by the caller, not baked in).
    if (graph.is_device(v)) {
      EXPECT_EQ(core.host_base_label(v), graph.initial_label(v));
    } else {
      EXPECT_EQ(core.host_base_label(v), degree_label(graph.degree(v)));
    }
  }
}

TEST(CsrCore, MirrorsPatternGraph) {
  cells::CellLibrary lib;
  for (const char* cell : {"inv", "nand2", "fulladder", "dff", "sram6t"}) {
    SCOPED_TRACE(cell);
    Netlist pattern = lib.pattern(cell);
    CircuitGraph graph(pattern);
    CsrCore core(graph);
    expect_mirrors_graph(graph, core);
  }
}

TEST(CsrCore, MirrorsGeneratedHosts) {
  for (const gen::Generated& g :
       {gen::c17(), gen::ripple_carry_adder(8), gen::register_file(2, 4),
        gen::logic_soup(100, 42)}) {
    SCOPED_TRACE(g.netlist.device_count());
    CircuitGraph graph(g.netlist);
    CsrCore core(graph);
    expect_mirrors_graph(graph, core);
  }
}

TEST(CsrCore, FootprintAccounting) {
  gen::Generated g = gen::ripple_carry_adder(8);
  CircuitGraph graph(g.netlist);
  CsrCore core(graph);
  // bytes() is the heap footprint of the flat arrays: at minimum the
  // offsets array plus per-vertex label/flag arrays must be accounted.
  const std::size_t nv = graph.vertex_count();
  EXPECT_GE(core.bytes(), (nv + 1) * sizeof(std::uint32_t) +
                              nv * (2 * sizeof(Label) + sizeof(std::uint8_t)));
  EXPECT_GE(core.build_seconds(), 0.0);
}

// --- 32-bit offset overflow guard ------------------------------------------
// CSR edge offsets are uint32, so a host beyond kMaxEdges edges must be
// refused BEFORE construction with a structured status, never built into a
// silently wrapped core. Building a real > 4-billion-edge graph is not an
// option in a unit test; the boundary arithmetic and the status document
// are, and the constructor's SUBG_CHECK backstop covers the rest.

TEST(CsrCore, OffsetsFitBoundary) {
  EXPECT_TRUE(CsrCore::offsets_fit(0));
  EXPECT_TRUE(CsrCore::offsets_fit(CsrCore::kMaxEdges - 1));
  EXPECT_TRUE(CsrCore::offsets_fit(CsrCore::kMaxEdges));
  if (CsrCore::kMaxEdges < std::numeric_limits<std::size_t>::max()) {
    // Only meaningful at the 32-bit width: at 64 bits kMaxEdges IS the
    // size_t range, so no representable count overflows it.
    EXPECT_FALSE(CsrCore::offsets_fit(CsrCore::kMaxEdges + 1));
    EXPECT_FALSE(CsrCore::offsets_fit(static_cast<std::size_t>(-1)));
  }
}

TEST(CsrCore, MaxEdgesMatchesTheOffsetWidth) {
  // The limit IS the configured offset range; kMaxEdges and the refusal in
  // capacity_status must move with CsrOffset (DESIGN.md §11).
  EXPECT_EQ(CsrCore::kMaxEdges,
            static_cast<std::size_t>(
                std::numeric_limits<CsrCore::Offset>::max()));
}

// The width policy itself, testable at BOTH widths regardless of which one
// the build selected: 32-bit limits cap at the uint32 range, 64-bit limits
// never refuse a representable edge count.
TEST(CsrCore, OffsetLimitsAtBothWidths) {
  using L32 = CsrOffsetLimits<std::uint32_t>;
  using L64 = CsrOffsetLimits<std::uint64_t>;
  EXPECT_EQ(L32::max_edges, std::numeric_limits<std::uint32_t>::max());
  EXPECT_EQ(L64::max_edges, std::numeric_limits<std::uint64_t>::max());
  EXPECT_TRUE(L32::fits(0));
  EXPECT_TRUE(L32::fits(L32::max_edges));
  EXPECT_FALSE(L32::fits(L32::max_edges + 1));
  EXPECT_FALSE(L32::fits(std::numeric_limits<std::uint64_t>::max()));
  EXPECT_TRUE(L64::fits(0));
  EXPECT_TRUE(L64::fits(L32::max_edges + 1));
  EXPECT_TRUE(L64::fits(std::numeric_limits<std::uint64_t>::max()));
}

TEST(CsrCore, CapacityStatusCompleteForRealGraphs) {
  gen::Generated g = gen::c17();
  CircuitGraph graph(g.netlist);
  const RunStatus status = CsrCore::capacity_status(graph);
  EXPECT_TRUE(status.complete());
  EXPECT_TRUE(status.reason.empty());
}

// --- rebuild / spill / compaction (the ECO patch path) ----------------------

TEST(CsrCore, RebuildIntoRetainedStorageMirrorsAndAccountsSpill) {
  gen::Generated big = gen::ripple_carry_adder(16);
  gen::Generated small = gen::ripple_carry_adder(4);
  CircuitGraph big_graph(big.netlist);
  CircuitGraph small_graph(small.netlist);

  CsrCore core(big_graph);
  const std::size_t big_bytes = core.bytes();
  EXPECT_EQ(core.spill_bytes(), 0u);  // a cold build is exactly sized

  // Rebuild onto a much smaller graph: contents must mirror the new graph
  // while bytes() keeps the retained capacity — the difference is spill.
  core.rebuild(small_graph);
  expect_mirrors_graph(small_graph, core);
  EXPECT_EQ(core.bytes(), big_bytes);
  EXPECT_GT(core.spill_bytes(), 0u);
  EXPECT_EQ(core.bytes(), core.used_bytes() + core.spill_bytes());

  // A cold core over the same graph is structurally identical (A17's
  // comparison), spill or no spill.
  CsrCore cold(small_graph);
  EXPECT_TRUE(core.structurally_equal(cold));
  EXPECT_TRUE(cold.structurally_equal(core));

  // shrink() releases the spill and changes nothing structural.
  core.shrink();
  EXPECT_EQ(core.spill_bytes(), 0u);
  EXPECT_LT(core.bytes(), big_bytes);
  expect_mirrors_graph(small_graph, core);
  EXPECT_TRUE(core.structurally_equal(cold));
}

TEST(CsrCore, StructurallyEqualSeesRealDifferences) {
  gen::Generated a = gen::c17();
  CircuitGraph graph_a(a.netlist);
  CsrCore core_a(graph_a);
  EXPECT_TRUE(core_a.structurally_equal(core_a));

  Netlist edited = a.netlist;
  NetId out = edited.add_net("eco_out");
  NetId in = *edited.find_net("N1");
  edited.add_device(edited.catalog().require("nmos"), {out, in, out, out});
  CircuitGraph graph_b(edited);
  CsrCore core_b(graph_b);
  EXPECT_FALSE(core_a.structurally_equal(core_b));
  EXPECT_FALSE(core_b.structurally_equal(core_a));
}

TEST(CsrCore, CapacityStatusHonorsACustomEdgeBudget) {
  gen::Generated g = gen::c17();
  CircuitGraph graph(g.netlist);
  const std::size_t edges = CsrCore::edge_count(graph);
  EXPECT_TRUE(CsrCore::capacity_status(graph, edges).complete());
  const RunStatus refused = CsrCore::capacity_status(graph, edges - 1);
  EXPECT_FALSE(refused.complete());
  EXPECT_FALSE(refused.reason.empty());
}

TEST(CsrCore, EdgeCountMatchesGraphDegrees) {
  // capacity_status compares edge_count against the limit; edge_count must
  // agree with what the builder would actually lay out (sum of degrees).
  gen::Generated g = gen::ripple_carry_adder(4);
  CircuitGraph graph(g.netlist);
  std::size_t total = 0;
  for (Vertex v = 0; v < graph.vertex_count(); ++v) total += graph.degree(v);
  EXPECT_EQ(CsrCore::edge_count(graph), total);
}

}  // namespace
}  // namespace subg
