#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "graph/circuit_graph.hpp"

namespace subg {
namespace {

class CircuitGraphTest : public ::testing::Test {
 protected:
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId pmos = cat->require("pmos");
};

TEST_F(CircuitGraphTest, BipartiteLayout) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  DeviceId d = nl.add_device(nmos, {y, a, g});
  CircuitGraph graph(nl);
  EXPECT_EQ(graph.device_count(), 1u);
  EXPECT_EQ(graph.net_count(), 3u);
  EXPECT_EQ(graph.vertex_count(), 4u);
  Vertex dv = graph.vertex_of(d);
  EXPECT_TRUE(graph.is_device(dv));
  EXPECT_FALSE(graph.is_net(dv));
  Vertex av = graph.vertex_of(a);
  EXPECT_TRUE(graph.is_net(av));
  EXPECT_EQ(graph.device_of(dv), d);
  EXPECT_EQ(graph.net_of(av), a);
}

TEST_F(CircuitGraphTest, EdgesMirroredWithCoefficients) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  DeviceId d = nl.add_device(nmos, {y, a, g});
  CircuitGraph graph(nl);
  Vertex dv = graph.vertex_of(d);
  auto de = graph.edges(dv);
  ASSERT_EQ(de.size(), 3u);
  // Pin 0 (d) and pin 2 (s) share the sd class coefficient; pin 1 (g)
  // differs.
  EXPECT_EQ(de[0].coefficient, de[2].coefficient);
  EXPECT_NE(de[0].coefficient, de[1].coefficient);
  // Net side sees the same coefficient back.
  auto ae = graph.edges(graph.vertex_of(a));
  ASSERT_EQ(ae.size(), 1u);
  EXPECT_EQ(ae[0].to, dv);
  EXPECT_EQ(ae[0].coefficient, de[1].coefficient);
}

TEST_F(CircuitGraphTest, InitialLabels) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), v = nl.add_net("vdd"),
        g = nl.add_net("gnd");
  nl.mark_global(v);
  DeviceId mp = nl.add_device(pmos, {y, a, v});
  DeviceId mn = nl.add_device(nmos, {y, a, g});
  CircuitGraph graph(nl);
  // Devices: type hash.
  EXPECT_EQ(graph.initial_label(graph.vertex_of(mp)), hash_string("pmos"));
  EXPECT_EQ(graph.initial_label(graph.vertex_of(mn)), hash_string("nmos"));
  // Nets: degree hash; a and y both have degree 2.
  EXPECT_EQ(graph.initial_label(graph.vertex_of(a)), degree_label(2));
  EXPECT_EQ(graph.initial_label(graph.vertex_of(a)),
            graph.initial_label(graph.vertex_of(y)));
  EXPECT_EQ(graph.initial_label(graph.vertex_of(g)), degree_label(1));
  // Special nets: fixed name-derived label, independent of degree.
  EXPECT_TRUE(graph.is_special(graph.vertex_of(v)));
  EXPECT_EQ(graph.initial_label(graph.vertex_of(v)),
            CircuitGraph::special_net_label("vdd"));
}

TEST_F(CircuitGraphTest, DegreeMatchesNetlist) {
  cells::CellLibrary lib;
  Netlist nand3 = lib.pattern("nand3");
  CircuitGraph graph(nand3);
  for (std::uint32_t n = 0; n < nand3.net_count(); ++n) {
    NetId net(n);
    EXPECT_EQ(graph.degree(graph.vertex_of(net)), nand3.net_degree(net));
  }
  std::size_t edge_total = 0;
  for (Vertex v = 0; v < graph.vertex_count(); ++v) {
    edge_total += graph.degree(v);
  }
  // Each pin contributes one edge seen from both endpoints.
  EXPECT_EQ(edge_total, 2 * nand3.stats().pin_count);
}

TEST_F(CircuitGraphTest, VertexNames) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), y = nl.add_net("y"), g = nl.add_net("gnd");
  DeviceId d = nl.add_device(nmos, {y, a, g}, "m1");
  CircuitGraph graph(nl);
  EXPECT_EQ(graph.vertex_name(graph.vertex_of(d)), "dev:m1");
  EXPECT_EQ(graph.vertex_name(graph.vertex_of(a)), "net:a");
}

}  // namespace
}  // namespace subg
