// CircuitGraph edge cases: multi-edges, self-referential connections,
// degree-0 nets, big fanout, and label stability guarantees.
#include <gtest/gtest.h>

#include "graph/circuit_graph.hpp"

namespace subg {
namespace {

class GraphEdgeCases : public ::testing::Test {
 protected:
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId res = cat->require("res");
};

TEST_F(GraphEdgeCases, DeviceWithTwoPinsOnOneNet) {
  // Diode-connected transistor: d and g on the same net → two parallel
  // edges with different coefficients.
  Netlist nl(cat);
  NetId a = nl.add_net("a"), s = nl.add_net("s");
  DeviceId d = nl.add_device(nmos, {a, a, s});
  CircuitGraph g(nl);
  const Vertex dv = g.vertex_of(d);
  const Vertex av = g.vertex_of(a);
  EXPECT_EQ(g.degree(dv), 3u);
  EXPECT_EQ(g.degree(av), 2u);
  // The two a-edges carry different class coefficients (sd vs gate).
  auto edges = g.edges(av);
  EXPECT_NE(edges[0].coefficient, edges[1].coefficient);
  EXPECT_EQ(edges[0].to, dv);
  EXPECT_EQ(edges[1].to, dv);
}

TEST_F(GraphEdgeCases, ResistorLoopBothPinsOneNet) {
  Netlist nl(cat);
  NetId a = nl.add_net("a");
  DeviceId d = nl.add_device(res, {a, a});
  CircuitGraph g(nl);
  EXPECT_EQ(g.degree(g.vertex_of(a)), 2u);
  auto edges = g.edges(g.vertex_of(a));
  // Same class → same coefficient on both parallel edges.
  EXPECT_EQ(edges[0].coefficient, edges[1].coefficient);
  EXPECT_EQ(g.degree(g.vertex_of(d)), 2u);
}

TEST_F(GraphEdgeCases, IsolatedNetHasNoEdges) {
  Netlist nl(cat);
  NetId lonely = nl.add_net("lonely");
  NetId a = nl.add_net("a"), b = nl.add_net("b"), c = nl.add_net("c");
  nl.add_device(nmos, {a, b, c});
  CircuitGraph g(nl);
  EXPECT_EQ(g.degree(g.vertex_of(lonely)), 0u);
  EXPECT_EQ(g.initial_label(g.vertex_of(lonely)), degree_label(0));
}

TEST_F(GraphEdgeCases, HighFanoutNetDegreeAndLabel) {
  Netlist nl(cat);
  NetId hub = nl.add_net("hub");
  for (int i = 0; i < 1000; ++i) {
    NetId x = nl.add_net("x" + std::to_string(i));
    NetId y = nl.add_net("y" + std::to_string(i));
    nl.add_device(nmos, {x, hub, y});
  }
  CircuitGraph g(nl);
  EXPECT_EQ(g.degree(g.vertex_of(hub)), 1000u);
  EXPECT_EQ(g.initial_label(g.vertex_of(hub)), degree_label(1000));
}

TEST_F(GraphEdgeCases, InitialLabelsStableAcrossRebuilds) {
  Netlist nl(cat);
  NetId a = nl.add_net("a"), b = nl.add_net("b"), c = nl.add_net("c");
  nl.add_device(nmos, {a, b, c});
  CircuitGraph g1(nl);
  CircuitGraph g2(nl);
  for (Vertex v = 0; v < g1.vertex_count(); ++v) {
    EXPECT_EQ(g1.initial_label(v), g2.initial_label(v));
  }
}

TEST_F(GraphEdgeCases, SpecialLabelIndependentOfDegree) {
  auto make = [&](int fanout) {
    Netlist nl(cat);
    NetId rail = nl.add_net("vdd");
    nl.mark_global(rail);
    for (int i = 0; i < fanout; ++i) {
      NetId x = nl.add_net("x" + std::to_string(i));
      NetId gnet = nl.add_net("g" + std::to_string(i));
      nl.add_device(nmos, {x, gnet, rail});
    }
    CircuitGraph g(nl);
    return g.initial_label(g.vertex_of(rail));
  };
  EXPECT_EQ(make(1), make(500));
  EXPECT_EQ(make(1), CircuitGraph::special_net_label("vdd"));
}

}  // namespace
}  // namespace subg
