// Lint subsystem tests: check-by-check unit coverage over hand-built
// netlists/designs, report mechanics (caps, merge, rendering), the
// recovering-parser interaction, and byte-exact golden comparisons over the
// corpus in testdata/lint/ (mirroring the `subgemini lint` pipeline).
#include "lint/lint.hpp"

#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "netlist/catalog.hpp"
#include "netlist/design.hpp"
#include "netlist/netlist.hpp"
#include "obs/metrics.hpp"
#include "report/document.hpp"
#include "spice/spice.hpp"
#include "util/check.hpp"
#include "util/diagnostics.hpp"

namespace subg {
namespace {

using lint::Finding;
using lint::LintOptions;
using lint::LintReport;
using lint::RailClass;
using lint::Severity;

std::string render(const LintReport& report) {
  std::ostringstream os;
  report.write_text(os);
  return os.str();
}

/// Findings for one check id, in report order.
std::vector<const Finding*> of_check(const LintReport& report,
                                     std::string_view check) {
  std::vector<const Finding*> out;
  for (const Finding& f : report.findings) {
    if (f.check == check) out.push_back(&f);
  }
  return out;
}

Finding make_finding(const char* check, Severity sev, std::string msg) {
  Finding f;
  f.check = check;
  f.severity = sev;
  f.message = std::move(msg);
  return f;
}

// --- classify_rail ------------------------------------------------------

TEST(ClassifyRail, SupplyNames) {
  EXPECT_EQ(lint::classify_rail("vdd"), RailClass::kSupply);
  EXPECT_EQ(lint::classify_rail("VDD!"), RailClass::kSupply);
  EXPECT_EQ(lint::classify_rail("vdd3"), RailClass::kSupply);
  EXPECT_EQ(lint::classify_rail("VCC"), RailClass::kSupply);
  EXPECT_EQ(lint::classify_rail("pwr"), RailClass::kSupply);
  EXPECT_EQ(lint::classify_rail("POWER"), RailClass::kSupply);
}

TEST(ClassifyRail, GroundNames) {
  EXPECT_EQ(lint::classify_rail("gnd"), RailClass::kGround);
  EXPECT_EQ(lint::classify_rail("GND!"), RailClass::kGround);
  EXPECT_EQ(lint::classify_rail("vss"), RailClass::kGround);
  EXPECT_EQ(lint::classify_rail("0"), RailClass::kGround);
  EXPECT_EQ(lint::classify_rail("Ground"), RailClass::kGround);
}

TEST(ClassifyRail, OrdinaryNames) {
  EXPECT_EQ(lint::classify_rail("a"), RailClass::kNone);
  EXPECT_EQ(lint::classify_rail("out"), RailClass::kNone);
  EXPECT_EQ(lint::classify_rail("vd"), RailClass::kNone);
  EXPECT_EQ(lint::classify_rail("data0"), RailClass::kNone);
  EXPECT_EQ(lint::classify_rail(""), RailClass::kNone);
}

// --- LintReport mechanics ----------------------------------------------

TEST(LintReport, PerCheckCapSuppressesButStillTallies) {
  LintReport report;
  for (int i = 0; i < 5; ++i) {
    report.add(make_finding(lint::kDanglingNet, Severity::kWarning, "w"),
               /*max_per_check=*/2);
  }
  EXPECT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.suppressed, 3u);
  // Severity tallies count every finding, stored or suppressed.
  EXPECT_EQ(report.warnings, 5u);
  EXPECT_FALSE(report.clean());
}

TEST(LintReport, CapIsPerCheckNotGlobal) {
  LintReport report;
  report.add(make_finding(lint::kDanglingNet, Severity::kWarning, "a"), 1);
  report.add(make_finding(lint::kUnusedNet, Severity::kInfo, "b"), 1);
  EXPECT_EQ(report.findings.size(), 2u);
  EXPECT_EQ(report.suppressed, 0u);
}

TEST(LintReport, MergeSumsTalliesAndPreservesOrder) {
  LintReport a;
  a.checks_run = 2;
  a.add(make_finding(lint::kFloatingGate, Severity::kError, "first"), 10);
  LintReport b;
  b.checks_run = 3;
  b.add(make_finding(lint::kDanglingNet, Severity::kWarning, "second"), 10);
  b.add(make_finding(lint::kUnusedNet, Severity::kInfo, "third"), 10);
  b.suppressed = 1;
  a.merge(std::move(b));
  EXPECT_EQ(a.checks_run, 5u);
  EXPECT_EQ(a.errors, 1u);
  EXPECT_EQ(a.warnings, 1u);
  EXPECT_EQ(a.infos, 1u);
  EXPECT_EQ(a.suppressed, 1u);
  ASSERT_EQ(a.findings.size(), 3u);
  EXPECT_EQ(a.findings[0].message, "first");
  EXPECT_EQ(a.findings[1].message, "second");
  EXPECT_EQ(a.findings[2].message, "third");
}

TEST(LintReport, MergeFoldsPerCheckCounts) {
  // The cap must hold across merged reports: one finding pre-merge and one
  // merged in leaves no headroom at max_per_check=2.
  LintReport a;
  a.add(make_finding(lint::kParse, Severity::kError, "one"), 2);
  LintReport b;
  b.add(make_finding(lint::kParse, Severity::kError, "two"), 2);
  a.merge(std::move(b));
  a.add(make_finding(lint::kParse, Severity::kError, "three"), 2);
  EXPECT_EQ(a.findings.size(), 2u);
  EXPECT_EQ(a.suppressed, 1u);
}

TEST(LintReport, WriteTextEmptyReportIsEmpty) {
  LintReport report;
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(render(report), "");
}

TEST(LintReport, WriteTextFormat) {
  LintReport report;
  report.checks_run = 4;
  Finding f = make_finding(lint::kFloatingGate, Severity::kError, "msg");
  f.nets = {"n1"};
  f.devices = {"m1", "m2"};
  report.add(std::move(f), 10);
  EXPECT_EQ(render(report),
            "error floating-gate: msg [nets: n1] [devices: m1 m2]\n"
            "# 4 checks, 1 errors, 0 warnings, 0 infos\n");
}

TEST(LintReport, FindingToStringIncludesModule) {
  Finding f = make_finding(lint::kSupplyShort, Severity::kError, "boom");
  f.module = "main";
  f.devices = {"x1"};
  EXPECT_EQ(f.to_string(), "error supply-short: boom [module: main] "
                           "[devices: x1]");
}

// --- flat netlist checks ------------------------------------------------

/// Inverter-shaped fixture with one extra net that only feeds MOS gates.
/// With `with_ports`, in/out are declared ports (floating gate is provably
/// internal → error); without, the deck is portless (→ warning).
Netlist floating_gate_netlist(bool with_ports) {
  auto cat = DeviceCatalog::cmos();
  Netlist n(cat);
  const DeviceTypeId nmos = cat->require("nmos");
  const DeviceTypeId pmos = cat->require("pmos");
  const NetId in = n.ensure_net("in");
  const NetId out = n.ensure_net("out");
  const NetId vdd = n.ensure_net("vdd");
  const NetId gnd = n.ensure_net("gnd");
  const NetId fl = n.ensure_net("float");
  n.mark_global(vdd);
  n.mark_global(gnd);
  if (with_ports) {
    n.mark_port(in);
    n.mark_port(out);
  }
  n.add_device(pmos, {out, in, vdd, vdd}, "mp1");
  n.add_device(nmos, {out, in, gnd, gnd}, "mn1");
  // 'float' touches only gate-class pins: no driver anywhere.
  n.add_device(pmos, {vdd, fl, vdd, vdd}, "mp2");
  n.add_device(nmos, {gnd, fl, gnd, gnd}, "mn2");
  return n;
}

TEST(LintNetlist, FloatingGateIsErrorWhenPortsDeclared) {
  const LintReport report = lint::lint_netlist(floating_gate_netlist(true));
  const auto found = of_check(report, lint::kFloatingGate);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(found[0]->nets, std::vector<std::string>{"float"});
  EXPECT_EQ(found[0]->devices, (std::vector<std::string>{"mp2", "mn2"}));
  EXPECT_TRUE(report.has_errors());
}

TEST(LintNetlist, FloatingGateDowngradesToWarningWithoutPorts) {
  // A portless deck cannot tell a primary input from a floating gate.
  const LintReport report = lint::lint_netlist(floating_gate_netlist(false));
  const auto found = of_check(report, lint::kFloatingGate);
  // 'in' is also gate-only once it is not a port.
  ASSERT_GE(found.size(), 1u);
  for (const Finding* f : found) EXPECT_EQ(f->severity, Severity::kWarning);
  EXPECT_FALSE(report.has_errors());
}

TEST(LintNetlist, CleanInverterHasNoFindings) {
  auto cat = DeviceCatalog::cmos();
  Netlist n(cat);
  const NetId in = n.ensure_net("in");
  const NetId out = n.ensure_net("out");
  const NetId vdd = n.ensure_net("vdd");
  const NetId gnd = n.ensure_net("gnd");
  n.mark_global(vdd);
  n.mark_global(gnd);
  n.mark_port(in);
  n.mark_port(out);
  n.add_device(cat->require("pmos"), {out, in, vdd, vdd}, "mp");
  n.add_device(cat->require("nmos"), {out, in, gnd, gnd}, "mn");
  const LintReport report = lint::lint_netlist(n);
  EXPECT_TRUE(report.clean()) << render(report);
  EXPECT_GT(report.checks_run, 0u);
}

TEST(LintNetlist, DanglingAndUnusedNets) {
  auto cat = DeviceCatalog::cmos();
  Netlist n(cat);
  const NetId a = n.ensure_net("a");
  const NetId b = n.ensure_net("b");
  n.mark_port(a);
  n.mark_port(b);
  const NetId dang = n.ensure_net("dang");
  n.ensure_net("ghost");  // zero terminals
  n.add_device(cat->require("res"), {a, b}, "r1");
  n.add_device(cat->require("res"), {a, dang}, "rstub");
  const LintReport report = lint::lint_netlist(n);
  const auto dangling = of_check(report, lint::kDanglingNet);
  ASSERT_EQ(dangling.size(), 1u);
  EXPECT_EQ(dangling[0]->severity, Severity::kWarning);
  EXPECT_EQ(dangling[0]->nets, std::vector<std::string>{"dang"});
  EXPECT_EQ(dangling[0]->devices, std::vector<std::string>{"rstub"});
  const auto unused = of_check(report, lint::kUnusedNet);
  ASSERT_EQ(unused.size(), 1u);
  EXPECT_EQ(unused[0]->severity, Severity::kInfo);
  EXPECT_EQ(unused[0]->nets, std::vector<std::string>{"ghost"});
}

TEST(LintNetlist, PortsAndGlobalsAreExemptFromNetChecks) {
  // A declared port or rail with odd connectivity is the interface's
  // business, not lint's: only the unconnected-port check may fire.
  auto cat = DeviceCatalog::cmos();
  Netlist n(cat);
  const NetId a = n.ensure_net("a");
  const NetId vdd = n.ensure_net("vdd");
  n.mark_port(a);
  n.mark_global(vdd);
  n.add_device(cat->require("res"), {a, vdd}, "r1");
  const LintReport report = lint::lint_netlist(n);
  EXPECT_TRUE(of_check(report, lint::kDanglingNet).empty()) << render(report);
}

TEST(LintNetlist, UnconnectedPortAndPatternChecksGate) {
  auto cat = DeviceCatalog::cmos();
  Netlist n(cat);
  const NetId a = n.ensure_net("a");
  const NetId b = n.ensure_net("b");
  const NetId nc = n.ensure_net("nc");
  n.mark_port(a);
  n.mark_port(b);
  n.mark_port(nc);
  n.add_device(cat->require("res"), {a, b}, "r1");

  const LintReport with = lint::lint_netlist(n);
  const auto found = of_check(with, lint::kUnconnectedPort);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(found[0]->nets, std::vector<std::string>{"nc"});

  // Host decks run with pattern_checks off: the port check must not fire.
  LintOptions host;
  host.pattern_checks = false;
  const LintReport without = lint::lint_netlist(n, host);
  EXPECT_TRUE(of_check(without, lint::kUnconnectedPort).empty());
  EXPECT_LT(without.checks_run, with.checks_run);
}

TEST(LintNetlist, UnreachableIsland) {
  auto cat = DeviceCatalog::cmos();
  Netlist n(cat);
  const NetId in = n.ensure_net("in");
  const NetId out = n.ensure_net("out");
  const NetId vdd = n.ensure_net("vdd");
  const NetId gnd = n.ensure_net("gnd");
  n.mark_port(in);
  n.mark_port(out);
  n.mark_global(vdd);
  n.mark_global(gnd);
  n.add_device(cat->require("pmos"), {out, in, vdd, vdd}, "mp");
  n.add_device(cat->require("nmos"), {out, in, gnd, gnd}, "mn");
  // Island: touches neither a port nor a rail.
  const NetId i1 = n.ensure_net("i1");
  const NetId i2 = n.ensure_net("i2");
  n.add_device(cat->require("res"), {i1, i2}, "ri");
  const LintReport report = lint::lint_netlist(n);
  const auto found = of_check(report, lint::kUnreachable);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kWarning);
  EXPECT_EQ(found[0]->devices, std::vector<std::string>{"ri"});
}

TEST(LintNetlist, FindingsAreDeterministic) {
  const Netlist n = floating_gate_netlist(true);
  const std::string first = render(lint::lint_netlist(n));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(render(lint::lint_netlist(n)), first);
  }
}

TEST(LintNetlist, CapBoundsReportOnSickDeck) {
  // 50 dangling nets with a cap of 5: report stays small, nothing is lost
  // from the tallies.
  auto cat = DeviceCatalog::cmos();
  Netlist n(cat);
  const NetId hub = n.ensure_net("hub");
  n.mark_port(hub);
  for (int i = 0; i < 50; ++i) {
    const NetId d = n.ensure_net("d" + std::to_string(i));
    n.add_device(cat->require("res"), {hub, d},
                 "r" + std::to_string(i));
  }
  LintOptions lo;
  lo.max_findings_per_check = 5;
  const LintReport report = lint::lint_netlist(n, lo);
  EXPECT_EQ(of_check(report, lint::kDanglingNet).size(), 5u);
  EXPECT_EQ(report.warnings, 50u);
  EXPECT_EQ(report.suppressed, 45u);
  EXPECT_FALSE(report.clean());
}

// --- design-level checks ------------------------------------------------

TEST(LintDesign, DuplicateInstanceName) {
  auto cat = DeviceCatalog::cmos();
  Design d(cat);
  const ModuleId inv = d.add_module("inv", {"in", "out", "vdd", "gnd"});
  {
    Module& m = d.module(inv);
    m.add_device(cat->require("pmos"),
                 {m.ensure_net("out"), m.ensure_net("in"),
                  m.ensure_net("vdd"), m.ensure_net("vdd")},
                 "mp");
  }
  const ModuleId top = d.add_module("top");
  Module& m = d.module(top);
  const NetId a = m.ensure_net("a");
  const NetId b = m.ensure_net("b");
  const NetId c = m.ensure_net("c");
  const NetId vdd = m.ensure_net("vdd");
  const NetId gnd = m.ensure_net("gnd");
  m.add_instance(inv, {a, b, vdd, gnd}, "x1");
  m.add_instance(inv, {b, c, vdd, gnd}, "x1");
  const LintReport report = lint::lint_design(d);
  const auto found = of_check(report, lint::kDuplicateInstance);
  ASSERT_EQ(found.size(), 1u);  // each duplicated name reported once
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_EQ(found[0]->module, "top");
  EXPECT_EQ(found[0]->devices, std::vector<std::string>{"x1"});
}

/// inv child plus one top instance binding (supply_actual, ground_actual)
/// to the child's (vdd, gnd) ports.
Design rail_design(const char* supply_actual, const char* ground_actual) {
  auto cat = DeviceCatalog::cmos();
  Design d(cat);
  const ModuleId inv = d.add_module("inv", {"in", "out", "vdd", "gnd"});
  {
    Module& m = d.module(inv);
    m.add_device(cat->require("pmos"),
                 {m.ensure_net("out"), m.ensure_net("in"),
                  m.ensure_net("vdd"), m.ensure_net("vdd")},
                 "mp");
    m.add_device(cat->require("nmos"),
                 {m.ensure_net("out"), m.ensure_net("in"),
                  m.ensure_net("gnd"), m.ensure_net("gnd")},
                 "mn");
  }
  const ModuleId top = d.add_module("top");
  Module& m = d.module(top);
  m.add_instance(inv,
                 {m.ensure_net("a"), m.ensure_net("b"),
                  m.ensure_net(supply_actual), m.ensure_net(ground_actual)},
                 "x1");
  return d;
}

TEST(LintDesign, SupplyShortThroughZeroDevicePath) {
  const Design d = rail_design("vdd", "vdd");
  const LintReport report = lint::lint_design(d);
  const auto shorts = of_check(report, lint::kSupplyShort);
  ASSERT_EQ(shorts.size(), 1u);
  EXPECT_EQ(shorts[0]->severity, Severity::kError);
  EXPECT_EQ(shorts[0]->nets, std::vector<std::string>{"vdd"});
  EXPECT_EQ(shorts[0]->devices, std::vector<std::string>{"x1"});
  // Binding supply net 'vdd' to ground port 'gnd' is also a mismatch.
  EXPECT_EQ(of_check(report, lint::kRailMismatch).size(), 1u);
}

TEST(LintDesign, RailMismatchOnSwappedRails) {
  const Design d = rail_design("gnd", "vdd");
  const LintReport report = lint::lint_design(d);
  EXPECT_EQ(of_check(report, lint::kRailMismatch).size(), 2u);
  // Two different nets: mismatched polarity, but no short.
  EXPECT_TRUE(of_check(report, lint::kSupplyShort).empty());
}

TEST(LintDesign, CleanBindingHasNoFindings) {
  const Design d = rail_design("vdd", "gnd");
  const LintReport report = lint::lint_design(d);
  EXPECT_TRUE(report.clean()) << render(report);
}

// --- parser-diagnostic import and recovery interaction ------------------

TEST(ImportDiagnostics, SurfacesParseFindings) {
  DiagnosticSink sink;
  spice::ReadOptions opts;
  opts.diagnostics = &sink;
  opts.filename = "bad.sp";
  const Design d = spice::read_string(
      ".subckt top in out vdd gnd\n"
      "mp out in vdd vdd pmos\n"
      "mbad out in gnd nmos\n"
      ".ends\n",
      opts);
  ASSERT_EQ(sink.error_count(), 1u);
  const LintReport report = lint::import_diagnostics(sink);
  const auto found = of_check(report, lint::kParse);
  ASSERT_EQ(found.size(), 1u);
  EXPECT_EQ(found[0]->severity, Severity::kError);
  EXPECT_NE(found[0]->message.find("bad.sp:3:"), std::string::npos)
      << found[0]->message;
  // Recovery kept the rest of the module: lint still runs on it.
  const LintReport flat = lint::lint_netlist(d.flatten("top"));
  EXPECT_GT(flat.checks_run, 0u);
}

TEST(ImportDiagnostics, SinkOverflowCountsAsSuppressed) {
  DiagnosticSink sink(/*max_diagnostics=*/2);
  spice::ReadOptions opts;
  opts.diagnostics = &sink;
  std::string deck;
  for (int i = 0; i < 5; ++i) deck += "mbad out in gnd nmos\n";
  (void)spice::read_string(deck, opts);
  ASSERT_EQ(sink.diagnostics().size(), 2u);
  ASSERT_EQ(sink.dropped(), 3u);
  const LintReport report = lint::import_diagnostics(sink);
  EXPECT_EQ(of_check(report, lint::kParse).size(), 2u);
  EXPECT_EQ(report.suppressed, 3u);
  EXPECT_FALSE(report.clean());
}

// --- metrics sink -------------------------------------------------------

TEST(LintMetrics, CountersRecorded) {
  obs::Metrics metrics;
  LintOptions lo;
  lo.metrics = &metrics;
  (void)lint::lint_netlist(floating_gate_netlist(true), lo);
  const obs::Snapshot snap = metrics.collect();
  EXPECT_GT(snap.counter("lint.checks"), 0u);
  EXPECT_GT(snap.counter("lint.findings"), 0u);
  EXPECT_GT(snap.counter("lint.errors"), 0u);
}

// --- corpus goldens -----------------------------------------------------
//
// Mirrors cmd_lint's spice pipeline (recovering parse → diagnostics →
// design checks → flatten → flat checks) with two normalizations that keep
// the goldens path-stable: the parser sees the bare basename as its
// filename, and a flatten failure is reported with a fixed message instead
// of the throw site's absolute __FILE__ path.

std::string read_file_or_die(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  SUBG_CHECK_MSG(in.good(), "cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

LintReport corpus_lint(const std::string& stem, const std::string& top) {
  const std::string dir = std::string(SUBG_TESTDATA_DIR) + "/lint/";
  DiagnosticSink sink;
  spice::ReadOptions opts;
  opts.diagnostics = &sink;
  opts.filename = stem + ".sp";
  const Design design =
      spice::read_string(read_file_or_die(dir + stem + ".sp"), opts);
  LintOptions lo;
  LintReport report;
  report.merge(lint::import_diagnostics(sink, lo));
  report.merge(lint::lint_design(design, lo));
  try {
    const Netlist flat = design.flatten(top);
    report.merge(lint::lint_netlist(flat, lo));
  } catch (const Error&) {
    Finding f =
        make_finding(lint::kFlatten, Severity::kError, "netlist flatten failed");
    LintReport flatten_report;
    flatten_report.checks_run = 1;
    flatten_report.add(std::move(f), lo.max_findings_per_check);
    report.merge(std::move(flatten_report));
  }
  return report;
}

struct CorpusCase {
  const char* stem;
  const char* top;
  int errors;
  int warnings;
};

class LintCorpus : public ::testing::TestWithParam<CorpusCase> {};

/// Byte-compare `actual` against a golden file; SUBG_UPDATE_GOLDENS=1
/// rewrites the file instead (same contract as the report goldens).
void compare_against_golden(const std::string& actual,
                            const std::string& path) {
  if (std::getenv("SUBG_UPDATE_GOLDENS") != nullptr) {
    std::ofstream out(path, std::ios::binary);
    ASSERT_TRUE(out.good()) << "cannot write golden " << path;
    out << actual;
    return;
  }
  EXPECT_EQ(actual, read_file_or_die(path)) << "diverged from " << path;
}

TEST_P(LintCorpus, MatchesGolden) {
  const CorpusCase& c = GetParam();
  const LintReport report = corpus_lint(c.stem, c.top);
  EXPECT_EQ(static_cast<int>(report.errors), c.errors);
  EXPECT_EQ(static_cast<int>(report.warnings), c.warnings);
  const std::string dir = std::string(SUBG_TESTDATA_DIR) + "/lint/golden/";
  compare_against_golden(render(report), dir + c.stem + ".txt");
  // The JSON goldens pin the schema-v1 "lint" member byte-for-byte —
  // additive-only, so a diff here is an intentional schema change.
  compare_against_golden(report::to_json(report).dump() + "\n",
                         dir + c.stem + ".json");
}

INSTANTIATE_TEST_SUITE_P(
    Corpus, LintCorpus,
    ::testing::Values(CorpusCase{"clean", "buf", 0, 0},
                      CorpusCase{"floating_gate", "top", 1, 0},
                      CorpusCase{"dangling_net", "top", 0, 1},
                      CorpusCase{"unconnected_port", "top", 1, 0},
                      CorpusCase{"supply_short", "main", 1, 2},
                      CorpusCase{"duplicate_instance", "main", 2, 0},
                      CorpusCase{"arity_mismatch", "top", 1, 0},
                      CorpusCase{"unreachable", "top", 0, 2}),
    [](const ::testing::TestParamInfo<CorpusCase>& param_info) {
      return std::string(param_info.param.stem);
    });

}  // namespace
}  // namespace subg
