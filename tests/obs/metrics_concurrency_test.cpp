// obs::Metrics under real contention: many threads hammering one registry,
// collect() racing the writers. Runs under the `concurrency` ctest label,
// so the ThreadSanitizer CI job covers the sharded update paths.
#include <atomic>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.hpp"

namespace subg::obs {
namespace {

TEST(MetricsConcurrency, CountersAreExactAcrossThreads) {
  Metrics m;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < kPerThread; ++i) {
        m.add("shared");
        m.add("weighted", 3);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  Snapshot s = m.collect();
  EXPECT_EQ(s.counter("shared"),
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_EQ(s.counter("weighted"),
            static_cast<std::uint64_t>(kThreads) * kPerThread * 3);
}

TEST(MetricsConcurrency, GaugesMergeByMaxAcrossShards) {
  // The lower write happens-before the higher one, so the result is 9
  // whether the two threads share a shard (last write wins within it) or
  // not (max across shards).
  Metrics m;
  m.gauge("high_water", 5.0);
  std::thread t([&m] { m.gauge("high_water", 9.0); });
  t.join();
  Snapshot s = m.collect();
  ASSERT_EQ(s.gauges.count("high_water"), 1u);
  EXPECT_DOUBLE_EQ(s.gauges.at("high_water"), 9.0);
}

TEST(MetricsConcurrency, SpansSumExactlyAcrossThreads) {
  Metrics m;
  constexpr int kThreads = 6;
  constexpr int kPerThread = 1'000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&m] {
      for (int i = 0; i < kPerThread; ++i) m.span_add("lane", 0.5);
    });
  }
  for (std::thread& t : threads) t.join();
  Snapshot s = m.collect();
  ASSERT_EQ(s.spans.count("lane"), 1u);
  EXPECT_EQ(s.spans.at("lane").count,
            static_cast<std::uint64_t>(kThreads) * kPerThread);
  EXPECT_DOUBLE_EQ(s.spans.at("lane").seconds, kThreads * kPerThread * 0.5);
}

TEST(MetricsConcurrency, CollectRacesWritersSafely) {
  Metrics m;
  std::atomic<bool> stop{false};
  std::vector<std::thread> writers;
  writers.reserve(4);
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&] {
      do {  // at least one write even if stop wins the startup race
        m.add("racing");
        m.gauge("racing.gauge", 1.0);
        m.span_add("racing.span", 0.001);
      } while (!stop.load(std::memory_order_relaxed));
    });
  }
  // Concurrent snapshots must be internally consistent and monotone in the
  // counter (each collect happens-after everything an earlier one saw).
  std::uint64_t last = 0;
  for (int i = 0; i < 50; ++i) {
    Snapshot s = m.collect();
    EXPECT_GE(s.counter("racing"), last);
    last = s.counter("racing");
  }
  stop.store(true, std::memory_order_relaxed);
  for (std::thread& t : writers) t.join();
  EXPECT_GT(m.collect().counter("racing"), 0u);
}

}  // namespace
}  // namespace subg::obs
