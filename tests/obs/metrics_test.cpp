// obs::Metrics — single-threaded semantics of the search-metrics registry.
// (Cross-shard merging under real contention is covered by
// metrics_concurrency_test.cpp, which runs under the TSan `concurrency`
// label.)
#include "obs/metrics.hpp"

#include "gtest/gtest.h"

namespace subg::obs {
namespace {

TEST(Metrics, CountersAccumulate) {
  Metrics m;
  m.add("a");
  m.add("a", 4);
  m.add("b", 2);
  Snapshot s = m.collect();
  EXPECT_EQ(s.counter("a"), 5u);
  EXPECT_EQ(s.counter("b"), 2u);
  EXPECT_EQ(s.counter("absent"), 0u);
}

TEST(Metrics, GaugesLastWriteWinsWithinAThread) {
  Metrics m;
  m.gauge("depth", 3.0);
  m.gauge("depth", 1.0);  // same thread = same shard: last write wins
  Snapshot s = m.collect();
  ASSERT_EQ(s.gauges.count("depth"), 1u);
  EXPECT_DOUBLE_EQ(s.gauges.at("depth"), 1.0);
}

TEST(Metrics, SpansSumCountAndSeconds) {
  Metrics m;
  m.span_add("phase", 0.25);
  m.span_add("phase", 0.5);
  Snapshot s = m.collect();
  ASSERT_EQ(s.spans.count("phase"), 1u);
  EXPECT_EQ(s.spans.at("phase").count, 2u);
  EXPECT_DOUBLE_EQ(s.spans.at("phase").seconds, 0.75);
}

TEST(Metrics, EmptySnapshot) {
  Metrics m;
  Snapshot s = m.collect();
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.to_text(), "");
}

TEST(Metrics, NullSafeHelpersAreNoOps) {
  count(nullptr, "x");
  gauge(nullptr, "x", 1.0);
  span_add(nullptr, "x", 1.0);

  Metrics m;
  count(&m, "x", 3);
  gauge(&m, "g", 2.0);
  span_add(&m, "s", 0.1);
  Snapshot s = m.collect();
  EXPECT_EQ(s.counter("x"), 3u);
  EXPECT_EQ(s.gauges.count("g"), 1u);
  EXPECT_EQ(s.spans.count("s"), 1u);
}

TEST(Metrics, SpanTimerRecordsOnDestruction) {
  Metrics m;
  {
    Metrics::SpanTimer timer(&m, "scoped");
  }
  { Metrics::SpanTimer timer(nullptr, "scoped"); }  // null sink: no-op
  Snapshot s = m.collect();
  ASSERT_EQ(s.spans.count("scoped"), 1u);
  EXPECT_EQ(s.spans.at("scoped").count, 1u);
  EXPECT_GE(s.spans.at("scoped").seconds, 0.0);
}

TEST(Metrics, ToTextIsSortedAndKindGrouped) {
  Metrics m;
  m.add("b.count", 2);
  m.add("a.count", 1);
  m.gauge("g", 1.5);
  m.span_add("s", 0.0);
  EXPECT_EQ(m.collect().to_text(),
            "counter a.count 1\n"
            "counter b.count 2\n"
            "gauge g 1.5\n"
            "span s 1 0\n");
}

}  // namespace
}  // namespace subg::obs
