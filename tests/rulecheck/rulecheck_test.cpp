#include <gtest/gtest.h>

#include "rulecheck/rulecheck.hpp"

namespace subg::rulecheck {
namespace {

/// A small design with known problems: one crowbar nmos, one always-on
/// nmos pass device, and a clean inverter.
Netlist troubled_design() {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos"), pmos = cat->require("pmos");
  Netlist nl(cat, "troubled");
  NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd");
  nl.mark_global(vdd);
  nl.mark_global(gnd);
  // Clean inverter.
  NetId a = nl.add_net("a"), y = nl.add_net("y");
  nl.add_device(pmos, {y, a, vdd}, "mp_ok");
  nl.add_device(nmos, {y, a, gnd}, "mn_ok");
  // Crowbar: nmos straight across the rails.
  NetId g = nl.add_net("g");
  nl.add_device(nmos, {vdd, g, gnd}, "mn_crowbar");
  // Always-on pass transistor.
  NetId p = nl.add_net("p"), q = nl.add_net("q");
  nl.add_device(nmos, {p, vdd, q}, "mn_alwayson");
  return nl;
}

TEST(RuleCheck, FlagsKnownBadConstructs) {
  CheckReport report = check(troubled_design(), builtin_rules());
  EXPECT_EQ(report.rules_checked, 4u);
  ASSERT_EQ(report.violations.size(), 2u);
  EXPECT_EQ(report.errors, 1u);
  EXPECT_EQ(report.warnings, 1u);

  bool saw_crowbar = false, saw_always_on = false;
  for (const Violation& v : report.violations) {
    if (v.rule == "crowbar-nmos") {
      saw_crowbar = true;
      ASSERT_EQ(v.devices.size(), 1u);
      EXPECT_EQ(v.devices[0], "mn_crowbar");
    }
    if (v.rule == "nmos-gate-tied-high") {
      saw_always_on = true;
      ASSERT_EQ(v.devices.size(), 1u);
      EXPECT_EQ(v.devices[0], "mn_alwayson");
    }
  }
  EXPECT_TRUE(saw_crowbar);
  EXPECT_TRUE(saw_always_on);
}

TEST(RuleCheck, FourPinCatalogSupported) {
  auto cat = DeviceCatalog::cmos();
  DeviceTypeId nmos = cat->require("nmos");
  Netlist nl(cat, "dut4");
  NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd");
  nl.mark_global(vdd);
  nl.mark_global(gnd);
  NetId g = nl.add_net("g");
  nl.add_device(nmos, {vdd, g, gnd, gnd}, "mn_crowbar");

  CheckReport report = check(nl, builtin_rules(cat));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].rule, "crowbar-nmos");
  EXPECT_EQ(report.violations[0].devices[0], "mn_crowbar");
}

TEST(RuleCheck, CleanDesignPasses) {
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos"), pmos = cat->require("pmos");
  Netlist nl(cat, "clean");
  NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd");
  nl.mark_global(vdd);
  nl.mark_global(gnd);
  NetId a = nl.add_net("a"), y = nl.add_net("y");
  nl.add_device(pmos, {y, a, vdd});
  nl.add_device(nmos, {y, a, gnd});
  CheckReport report = check(nl, builtin_rules());
  EXPECT_TRUE(report.clean());
  EXPECT_EQ(report.errors, 0u);
}

TEST(RuleCheck, UserDefinedRule) {
  // Rules are just pattern circuits: flag any transmission gate whose both
  // control nets are the same (en == enb means it is a plain resistor).
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos"), pmos = cat->require("pmos");
  Netlist pat(cat, "degenerate_tgate");
  NetId x = pat.add_net("x"), y = pat.add_net("y"), c = pat.add_net("c");
  pat.add_device(nmos, {x, c, y});
  pat.add_device(pmos, {x, c, y});
  pat.mark_port(x);
  pat.mark_port(y);
  pat.mark_port(c);
  Rule rule{"degenerate-tgate", "tgate with tied controls never isolates",
            Severity::kError, std::move(pat)};

  Netlist design(cat, "dut");
  NetId dx = design.add_net("dx"), dy = design.add_net("dy"),
        dc = design.add_net("dc"), dcb = design.add_net("dcb");
  // Proper tgate (distinct controls) — fine.
  design.add_device(nmos, {dx, dc, dy}, "good_n");
  design.add_device(pmos, {dx, dcb, dy}, "good_p");
  // Degenerate tgate.
  NetId ex = design.add_net("ex"), ey = design.add_net("ey"),
        ec = design.add_net("ec");
  design.add_device(nmos, {ex, ec, ey}, "bad_n");
  design.add_device(pmos, {ex, ec, ey}, "bad_p");

  std::vector<Rule> rules;
  rules.push_back(std::move(rule));
  CheckReport report = check(design, rules);
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_EQ(report.violations[0].devices.size(), 2u);
  EXPECT_EQ(report.errors, 1u);
}

}  // namespace
}  // namespace subg::rulecheck
