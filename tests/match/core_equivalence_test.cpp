// Csr-vs-legacy core equivalence: --core must change the memory layout only.
//
// The contract (MatchOptions::core, graph/csr_core.hpp): the flattened SoA
// core visits the same edges in the same order with the same label
// arithmetic as the legacy CircuitGraph walks, so reports — instances,
// their order, every Phase I/II statistic including the deterministic work
// counters, traces, and the serialized JSON — are BYTE-identical across
// cores, at every jobs value, in both matching semantics, and through the
// extract sweep. These tests pin that contract; the CI bench gate re-checks
// it end to end on the quick bench workloads.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cells/cells.hpp"
#include "extract/extract.hpp"
#include "gemini/gemini.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "report/document.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

void expect_reports_equal(const MatchReport& legacy, const MatchReport& csr,
                          const std::string& what) {
  SCOPED_TRACE(what);
  ASSERT_EQ(legacy.instances.size(), csr.instances.size());
  for (std::size_t i = 0; i < legacy.instances.size(); ++i) {
    EXPECT_EQ(legacy.instances[i].device_image, csr.instances[i].device_image)
        << "instance " << i;
    EXPECT_EQ(legacy.instances[i].net_image, csr.instances[i].net_image)
        << "instance " << i;
  }
  EXPECT_EQ(legacy.phase1.feasible, csr.phase1.feasible);
  EXPECT_EQ(legacy.phase1.key, csr.phase1.key);
  EXPECT_EQ(legacy.phase1.candidates, csr.phase1.candidates);
  EXPECT_EQ(legacy.phase1.rounds, csr.phase1.rounds);
  EXPECT_EQ(legacy.phase1.relabel_ops, csr.phase1.relabel_ops);
  EXPECT_EQ(legacy.phase1.valid_pattern_vertices,
            csr.phase1.valid_pattern_vertices);
  EXPECT_EQ(legacy.phase1.possible_host_vertices,
            csr.phase1.possible_host_vertices);
  EXPECT_EQ(legacy.phase2.candidates_tried, csr.phase2.candidates_tried);
  EXPECT_EQ(legacy.phase2.candidates_matched, csr.phase2.candidates_matched);
  EXPECT_EQ(legacy.phase2.passes, csr.phase2.passes);
  EXPECT_EQ(legacy.phase2.bindings, csr.phase2.bindings);
  EXPECT_EQ(legacy.phase2.guesses, csr.phase2.guesses);
  EXPECT_EQ(legacy.phase2.backtracks, csr.phase2.backtracks);
  EXPECT_EQ(legacy.phase2.verify_failures, csr.phase2.verify_failures);
  EXPECT_EQ(legacy.phase2.max_guess_depth, csr.phase2.max_guess_depth);
  EXPECT_EQ(legacy.phase2.expansion_ops, csr.phase2.expansion_ops);
  EXPECT_EQ(legacy.status.outcome, csr.status.outcome);
  EXPECT_EQ(legacy.status.reason, csr.status.reason);
  EXPECT_EQ(legacy.status.candidates_skipped, csr.status.candidates_skipped);
  EXPECT_EQ(legacy.status.guesses_abandoned, csr.status.guesses_abandoned);
}

/// The serialized report with the wall-clock members zeroed: byte equality
/// of this string is the report-identity claim of the --core toggle.
std::string report_json(MatchReport report) {
  report.phase1_seconds = 0;
  report.phase2_seconds = 0;
  return report::to_json(report).dump();
}

MatchReport run_with_core(const Netlist& pattern, const Netlist& host,
                          CoreMode core, std::size_t jobs = 1,
                          bool exhaustive = false) {
  MatchOptions opts;
  opts.core = core;
  opts.jobs = jobs;
  opts.exhaustive = exhaustive;
  SubgraphMatcher matcher(pattern, host, opts);
  return matcher.find_all();
}

TEST(CoreEquivalence, GeneratedCircuitsAllCells) {
  cells::CellLibrary lib;
  struct Case {
    const char* cell;
    gen::Generated host;
  };
  std::vector<Case> cases;
  cases.push_back({"fulladder", gen::ripple_carry_adder(12)});
  cases.push_back({"nand2", gen::logic_soup(250, 7)});
  cases.push_back({"xor2", gen::kogge_stone_adder(8)});
  cases.push_back({"dff", gen::register_file(4, 4)});
  cases.push_back({"sram6t", gen::sram_array(4, 8)});
  for (const Case& c : cases) {
    Netlist pattern = lib.pattern(c.cell);
    MatchReport legacy =
        run_with_core(pattern, c.host.netlist, CoreMode::kLegacy);
    MatchReport csr = run_with_core(pattern, c.host.netlist, CoreMode::kCsr);
    expect_reports_equal(legacy, csr, c.cell);
    EXPECT_EQ(report_json(legacy), report_json(csr)) << c.cell;
  }
}

TEST(CoreEquivalence, PaperNand2Example) {
  // The paper's Fig 1 shape: hand-built NAND2 pattern against a small host
  // of gates on shared rails — the deck the phase tests also pin.
  test::Cmos3 f;
  Netlist host = f.netlist("host");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  NetId a = host.add_net("a"), b = host.add_net("b"), c = host.add_net("c");
  NetId u = host.add_net("u"), v = host.add_net("v"), w = host.add_net("w");
  f.nand2(host, a, b, u, vdd, gnd);
  f.nand2(host, u, c, v, vdd, gnd);
  f.nor2(host, a, c, w, vdd, gnd);
  f.inv(host, v, host.add_net("y"), vdd, gnd);

  Netlist pattern = f.nand2_pattern(/*global_rails=*/true);
  MatchReport legacy = run_with_core(pattern, host, CoreMode::kLegacy);
  MatchReport csr = run_with_core(pattern, host, CoreMode::kCsr);
  expect_reports_equal(legacy, csr, "nand2 paper example");
  EXPECT_EQ(report_json(legacy), report_json(csr));
  EXPECT_EQ(csr.instances.size(), 2u);
}

/// A symmetric k-wide parallel-transistor pattern plus fatter decoys: the
/// shape that forces Phase II through its guess/backtrack machinery, where
/// the fresh-label rng draws make any cross-core divergence visible
/// immediately.
struct AmbiguityDeck {
  test::Cmos3 f;
  Netlist pattern = f.netlist("par3");
  Netlist host = f.netlist("host");

  AmbiguityDeck() {
    NetId pa = pattern.add_net("a"), pd = pattern.add_net("d"),
          ps = pattern.add_net("s");
    for (int i = 0; i < 3; ++i) pattern.add_device(f.nmos, {pd, pa, ps});
    pattern.mark_port(pa);
    pattern.mark_port(pd);
    pattern.mark_port(ps);

    // Two true instances and one 5-wide decoy (contains instances too).
    for (int copy = 0; copy < 2; ++copy) {
      NetId ha = host.add_net(), hd = host.add_net(), hs = host.add_net();
      for (int i = 0; i < 3; ++i) host.add_device(f.nmos, {hd, ha, hs});
    }
    NetId fa = host.add_net(), fd = host.add_net(), fs = host.add_net();
    for (int i = 0; i < 5; ++i) host.add_device(f.nmos, {fd, fa, fs});
  }
};

TEST(CoreEquivalence, SymmetricAmbiguityDeck) {
  AmbiguityDeck deck;
  MatchReport legacy = run_with_core(deck.pattern, deck.host,
                                     CoreMode::kLegacy);
  MatchReport csr = run_with_core(deck.pattern, deck.host, CoreMode::kCsr);
  expect_reports_equal(legacy, csr, "ambiguity");
  EXPECT_EQ(report_json(legacy), report_json(csr));
  EXPECT_GT(csr.phase2.guesses, 0u) << "deck must exercise the guess path";
}

TEST(CoreEquivalence, ExhaustiveSemantics) {
  AmbiguityDeck deck;
  MatchReport legacy = run_with_core(deck.pattern, deck.host,
                                     CoreMode::kLegacy, 1, true);
  MatchReport csr =
      run_with_core(deck.pattern, deck.host, CoreMode::kCsr, 1, true);
  expect_reports_equal(legacy, csr, "exhaustive ambiguity");
  EXPECT_EQ(report_json(legacy), report_json(csr));
  EXPECT_GT(csr.phase2.backtracks, 0u);
}

TEST(CoreEquivalence, TracesBitIdentical) {
  // The pass-by-pass trace exposes every intermediate label, including the
  // rng-drawn fresh labels — the strictest equality the cores can satisfy.
  test::Cmos3 f;
  Netlist pattern = f.inv_pattern(/*global_rails=*/true);
  Netlist host = f.netlist("host");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  NetId a = host.add_net("a"), b = host.add_net("b");
  f.inv(host, a, b, vdd, gnd);
  f.inv(host, b, host.add_net("c"), vdd, gnd);

  auto traced = [&](CoreMode core) {
    Phase2Trace trace;
    MatchOptions opts;
    opts.core = core;
    opts.trace = &trace;
    SubgraphMatcher matcher(pattern, host, opts);
    (void)matcher.find_all();
    return trace;
  };
  Phase2Trace legacy = traced(CoreMode::kLegacy);
  Phase2Trace csr = traced(CoreMode::kCsr);
  ASSERT_EQ(legacy.entries.size(), csr.entries.size());
  for (std::size_t i = 0; i < legacy.entries.size(); ++i) {
    SCOPED_TRACE(i);
    EXPECT_EQ(legacy.entries[i].candidate, csr.entries[i].candidate);
    EXPECT_EQ(legacy.entries[i].pass, csr.entries[i].pass);
    EXPECT_EQ(legacy.entries[i].host, csr.entries[i].host);
    EXPECT_EQ(legacy.entries[i].vertex, csr.entries[i].vertex);
    EXPECT_EQ(legacy.entries[i].label, csr.entries[i].label);
    EXPECT_EQ(legacy.entries[i].safe, csr.entries[i].safe);
    EXPECT_EQ(legacy.entries[i].matched, csr.entries[i].matched);
  }
}

TEST(CoreEquivalence, ExtractSweepBothCores) {
  // The extract machinery (per-tier shared host core, greedy application)
  // must hand back the same gate netlist device-for-device in both modes.
  cells::CellLibrary lib;
  gen::Generated host = gen::register_file(4, 4);
  std::vector<extract::LibraryCell> library;
  for (const char* cell : {"dff", "mux2", "nand2", "inv"}) {
    library.push_back(extract::LibraryCell{cell, lib.pattern(cell)});
  }
  auto run = [&](CoreMode core) {
    extract::ExtractOptions opts;
    opts.match.core = core;
    return extract::extract_gates(host.netlist, library, opts);
  };
  extract::ExtractResult legacy = run(CoreMode::kLegacy);
  extract::ExtractResult csr = run(CoreMode::kCsr);

  ASSERT_EQ(legacy.report.cells.size(), csr.report.cells.size());
  for (std::size_t i = 0; i < legacy.report.cells.size(); ++i) {
    EXPECT_EQ(legacy.report.cells[i].cell, csr.report.cells[i].cell);
    EXPECT_EQ(legacy.report.cells[i].instances, csr.report.cells[i].instances);
    EXPECT_EQ(legacy.report.cells[i].devices_replaced,
              csr.report.cells[i].devices_replaced);
    EXPECT_EQ(legacy.report.cells[i].outcome, csr.report.cells[i].outcome);
  }
  EXPECT_EQ(legacy.report.devices_after, csr.report.devices_after);
  ASSERT_EQ(legacy.netlist.device_count(), csr.netlist.device_count());
  for (std::uint32_t d = 0; d < legacy.netlist.device_count(); ++d) {
    const DeviceId id(d);
    EXPECT_EQ(legacy.netlist.device_name(id), csr.netlist.device_name(id));
    EXPECT_EQ(legacy.netlist.device_type_info(id).name,
              csr.netlist.device_type_info(id).name);
  }
  EXPECT_TRUE(compare_netlists(legacy.netlist, csr.netlist).isomorphic);
}

TEST(CoreEquivalence, CsrCountersIdenticalAcrossJobs) {
  // The deterministic work counters the CI bench gate relies on must be
  // jobs-invariant under the csr core (the --jobs contract extended to the
  // new counters). Runs under TSan via the concurrency label.
  cells::CellLibrary lib;
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    gen::Generated host = gen::logic_soup(180, seed);
    for (const char* cell : {"nand2", "nor2", "mux2"}) {
      Netlist pattern = lib.pattern(cell);
      MatchReport serial =
          run_with_core(pattern, host.netlist, CoreMode::kCsr, 1);
      MatchReport parallel =
          run_with_core(pattern, host.netlist, CoreMode::kCsr, 8);
      expect_reports_equal(serial, parallel,
                           std::string(cell) + " soup " +
                               std::to_string(seed));
      EXPECT_EQ(report_json(serial), report_json(parallel)) << cell;
    }
  }
}

TEST(CoreEquivalence, MixedCoreOptionsAgree) {
  // Phase1Options allows the cores to be set independently; every
  // combination must agree (the csr sweep and the legacy sweep are the
  // same arithmetic, so mixing sides cannot drift).
  cells::CellLibrary lib;
  gen::Generated host = gen::ripple_carry_adder(8);
  Netlist pattern = lib.pattern("fulladder");
  CircuitGraph pattern_graph(pattern);
  CircuitGraph host_graph(host.netlist);
  CsrCore pattern_core(pattern_graph);
  CsrCore host_core(host_graph);

  auto run_p1 = [&](const CsrCore* pc, const CsrCore* hc) {
    Phase1Options o;
    o.pattern_core = pc;
    o.host_core = hc;
    return run_phase1(pattern_graph, host_graph, o);
  };
  Phase1Result both_legacy = run_p1(nullptr, nullptr);
  const CsrCore* pattern_cores[] = {nullptr, &pattern_core};
  const CsrCore* host_cores[] = {nullptr, &host_core};
  for (const CsrCore* pc : pattern_cores) {
    for (const CsrCore* hc : host_cores) {
      Phase1Result r = run_p1(pc, hc);
      EXPECT_EQ(both_legacy.feasible, r.feasible);
      EXPECT_EQ(both_legacy.key, r.key);
      EXPECT_EQ(both_legacy.candidates, r.candidates);
      EXPECT_EQ(both_legacy.rounds, r.rounds);
      EXPECT_EQ(both_legacy.relabel_ops, r.relabel_ops);
    }
  }
}

}  // namespace
}  // namespace subg
