// Patterns with multi-edges (two pins of one device on one net) stress the
// relabeling sum and the pin-multiset verification: a diode-connected
// transistor must match only diode-connected host devices with the same
// tie (d+g, never d+s), and parallel multi-edges must count with
// multiplicity.
#include <gtest/gtest.h>

#include "match/matcher.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

TEST(DiodeConnected, TieKindIsDistinguished) {
  Cmos3 c;
  // Pattern: d+g tied (diode).
  Netlist pattern = c.netlist("diode");
  NetId a = pattern.add_net("a"), s = pattern.add_net("s");
  pattern.add_device(c.nmos, {a, a, s});
  pattern.mark_port(a);
  pattern.mark_port(s);

  Netlist host = c.netlist();
  NetId h1 = host.add_net("h1"), h2 = host.add_net("h2");
  host.add_device(c.nmos, {h1, h1, h2}, "diode_tie");   // d+g: matches
  NetId h3 = host.add_net("h3"), h4 = host.add_net("h4");
  host.add_device(c.nmos, {h3, h4, h3}, "ds_tie");      // d+s: does NOT
  NetId h5 = host.add_net("h5"), h6 = host.add_net("h6"), h7 = host.add_net("h7");
  host.add_device(c.nmos, {h5, h6, h7}, "plain");

  SubgraphMatcher matcher(pattern, host);
  MatchReport r = matcher.find_all();
  ASSERT_EQ(r.count(), 1u);
  EXPECT_EQ(host.device_name(r.instances[0].device_image[0]), "diode_tie");
}

TEST(DiodeConnected, SourceDrainTiePattern) {
  Cmos3 c;
  // Pattern: d+s tied (capacitor-connected transistor).
  Netlist pattern = c.netlist("dstie");
  NetId x = pattern.add_net("x"), g = pattern.add_net("g");
  pattern.add_device(c.nmos, {x, g, x});
  pattern.mark_port(x);
  pattern.mark_port(g);

  Netlist host = c.netlist();
  NetId h1 = host.add_net("h1"), h2 = host.add_net("h2");
  host.add_device(c.nmos, {h1, h1, h2}, "diode_tie");
  NetId h3 = host.add_net("h3"), h4 = host.add_net("h4");
  host.add_device(c.nmos, {h3, h4, h3}, "ds_tie");

  SubgraphMatcher matcher(pattern, host);
  MatchReport r = matcher.find_all();
  ASSERT_EQ(r.count(), 1u);
  EXPECT_EQ(host.device_name(r.instances[0].device_image[0]), "ds_tie");
}

TEST(DiodeConnected, AllThreePinsOneNet) {
  Cmos3 c;
  Netlist pattern = c.netlist("allone");
  NetId x = pattern.add_net("x");
  pattern.add_device(c.nmos, {x, x, x});
  pattern.mark_port(x);

  Netlist host = c.netlist();
  NetId h1 = host.add_net("h1");
  host.add_device(c.nmos, {h1, h1, h1}, "all_tied");
  NetId h2 = host.add_net("h2"), h3 = host.add_net("h3");
  host.add_device(c.nmos, {h2, h2, h3}, "diode_tie");

  SubgraphMatcher matcher(pattern, host);
  MatchReport r = matcher.find_all();
  ASSERT_EQ(r.count(), 1u);
  EXPECT_EQ(host.device_name(r.instances[0].device_image[0]), "all_tied");
}

TEST(DiodeConnected, DiodeInsideLargerPattern) {
  // Current-mirror-with-cascode-ish: diode device + plain device sharing
  // gate and source; must bind the diode role to the tied host device.
  Cmos3 c;
  Netlist pattern = c.netlist("mirror");
  NetId iref = pattern.add_net("iref"), iout = pattern.add_net("iout"),
        rail = pattern.add_net("rail");
  pattern.add_device(c.nmos, {iref, iref, rail}, "m_diode");
  pattern.add_device(c.nmos, {iout, iref, rail}, "m_mirror");
  for (NetId p : {iref, iout, rail}) pattern.mark_port(p);

  Netlist host = c.netlist();
  NetId b = host.add_net("b"), t = host.add_net("t"), g = host.add_net("g");
  host.add_device(c.nmos, {b, b, g}, "h_diode");
  host.add_device(c.nmos, {t, b, g}, "h_mirror");
  // A reversed decoy: mirror first, diode second, wired differently.
  NetId p = host.add_net("p"), q = host.add_net("q"), r = host.add_net("r");
  host.add_device(c.nmos, {p, q, r}, "h_plain1");
  host.add_device(c.nmos, {q, q, r}, "h_plain2");

  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  // Both the (h_diode, h_mirror) pair and the (h_plain2, h_plain1) pair
  // are valid mirrors (h_plain2 is diode-tied, h_plain1 mirrors it).
  EXPECT_EQ(report.count(), 2u);
  for (const auto& inst : report.instances) {
    const std::string diode_image =
        host.device_name(inst.device_image[0]);
    EXPECT_TRUE(diode_image == "h_diode" || diode_image == "h_plain2")
        << diode_image;
  }
}

}  // namespace
}  // namespace subg
