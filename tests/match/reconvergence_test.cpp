// The paper's §I claims generality over tree-based technology mapping:
// patterns are found in circuits with reconvergent fanout (and the matcher
// itself handles cyclic structures — see the ring tests). Exercise both on
// the Kogge-Stone prefix adder, whose carry tree reconverges heavily.
#include <gtest/gtest.h>

#include "baseline/baseline.hpp"
#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"

namespace subg {
namespace {

TEST(Reconvergence, CellsFoundInsideKoggeStone) {
  gen::Generated ks = gen::kogge_stone_adder(8);
  cells::CellLibrary lib;
  for (const char* cell : {"aoi21", "xor2", "nand2"}) {
    Netlist pattern = lib.pattern(cell);
    SubgraphMatcher matcher(pattern, ks.netlist);
    MatchReport r = matcher.find_all();
    EXPECT_GE(r.count(), ks.placed_count(cell)) << cell;
  }
}

TEST(Reconvergence, CountsAgreeWithUllmann) {
  gen::Generated ks = gen::kogge_stone_adder(6);
  cells::CellLibrary lib;
  for (const char* cell : {"aoi21", "xor2"}) {
    Netlist pattern = lib.pattern(cell);
    SubgraphMatcher matcher(pattern, ks.netlist);
    BaselineResult ull = match_ullmann(pattern, ks.netlist);
    ASSERT_FALSE(ull.budget_exhausted);
    EXPECT_EQ(matcher.find_all().count(), ull.count()) << cell;
  }
}

TEST(Reconvergence, MultiLevelPatternAcrossPrefixNodes) {
  // A two-gate pattern spanning a prefix node: aoi21 feeding an inverter —
  // the G' computation. Appears once per prefix node.
  gen::Generated ks = gen::kogge_stone_adder(8);
  cells::CellLibrary lib;
  Design& d = lib.design();
  ModuleId aoi = lib.module("aoi21");
  ModuleId inv = lib.module("inv");
  ModuleId pat = d.add_module("gprime", {"p", "gprev", "g", "y"});
  Module& m = d.module(pat);
  NetId mid = m.add_net("mid");
  m.add_instance(aoi, {*m.find_net("p"), *m.find_net("gprev"),
                       *m.find_net("g"), mid});
  m.add_instance(inv, {mid, *m.find_net("y")});
  Netlist pattern = d.flatten("gprime");

  SubgraphMatcher matcher(pattern, ks.netlist);
  MatchReport r = matcher.find_all();
  // 7 + 6 + 4 prefix nodes in an 8-bit Kogge-Stone.
  EXPECT_EQ(r.count(), 17u);
}

TEST(Reconvergence, ParityTreeXorCount) {
  gen::Generated tree = gen::parity_tree(32);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("xor2");
  SubgraphMatcher matcher(pattern, tree.netlist);
  EXPECT_EQ(matcher.find_all().count(), 31u);
}

}  // namespace
}  // namespace subg
