// Phase II fast path: signature prefilter + bitset domains + trail-based
// backtracking.
//
// The contract under test is soundness-by-identity: the prefilter and the
// per-candidate nogood memo may only reject postulates the census pass (or
// final verification) would reject anyway, and trail undo must restore
// exactly the state a full snapshot would have — so every observable result
// (instances, their order, the report counters that predate the fast path)
// is identical with the filter on and off, in both core layouts, at every
// --jobs value. The tests compare whole reports across those axes on
// workloads chosen to drive the guess/backtrack path hard.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "graph/circuit_graph.hpp"
#include "match/matcher.hpp"
#include "match/phase2.hpp"
#include "match/verify.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

/// Ring of `n` identical pass transistors sharing one gate net; ring nets
/// named prefix+i. Fully symmetric — refinement alone can never finish.
void add_ring(const Cmos3& c, Netlist& nl, int n, const std::string& prefix) {
  NetId gate = nl.add_net(prefix + "gate");
  std::vector<NetId> nodes;
  for (int i = 0; i < n; ++i) {
    nodes.push_back(nl.add_net(prefix + std::to_string(i)));
  }
  for (int i = 0; i < n; ++i) {
    nl.add_device(c.nmos, {nodes[i], gate, nodes[(i + 1) % n]});
  }
}

/// Closed ring pattern: every ring net internal, only the gate external.
Netlist ring_pattern(const Cmos3& c, int n) {
  Netlist nl = c.netlist("ring_p");
  add_ring(c, nl, n, "r");
  nl.mark_port(*nl.find_net("rgate"));
  return nl;
}

/// Poisoned host: a fat 6-ring (extra transistor on f1), then a clean one.
Netlist fat_ring_host(const Cmos3& c) {
  Netlist host = c.netlist("main");
  add_ring(c, host, 6, "f");
  NetId qg = host.add_net("qg"), qd = host.add_net("qd");
  host.add_device(c.nmos, {*host.find_net("f1"), qg, qd});
  add_ring(c, host, 6, "c");
  return host;
}

void expect_identical(const MatchReport& a, const MatchReport& b) {
  ASSERT_EQ(a.count(), b.count());
  for (std::size_t i = 0; i < a.count(); ++i) {
    EXPECT_EQ(a.instances[i].device_image, b.instances[i].device_image);
    EXPECT_EQ(a.instances[i].net_image, b.instances[i].net_image);
  }
  EXPECT_EQ(a.status.outcome, b.status.outcome);
}

MatchReport run(const Netlist& pattern, const Netlist& host,
                Phase2Filter filter, CoreMode core = CoreMode::kCsr,
                std::size_t jobs = 1, bool exhaustive = false) {
  MatchOptions options;
  options.phase2_filter = filter;
  options.core = core;
  options.jobs = jobs;
  options.exhaustive = exhaustive;
  return SubgraphMatcher(pattern, host, options).find_all();
}

// --- soundness by identity --------------------------------------------------

TEST(Phase2FastPath, FilterIdentityOnSymmetricRings) {
  Cmos3 c;
  Netlist pattern = ring_pattern(c, 6);
  Netlist host = fat_ring_host(c);
  for (const CoreMode core : {CoreMode::kCsr, CoreMode::kLegacy}) {
    const MatchReport off = run(pattern, host, Phase2Filter::kOff, core);
    const MatchReport on = run(pattern, host, Phase2Filter::kOn, core);
    expect_identical(off, on);
    ASSERT_EQ(on.count(), 1u);
    // The pre-fast-path counters agree too: a sound prune only skips work
    // that would have FAILED, so matched candidates see identical passes.
    EXPECT_EQ(on.phase2.candidates_matched, off.phase2.candidates_matched);
    // And the filter really fired: degree-3 f1 can never image a degree-2
    // internal ring net.
    EXPECT_GE(on.phase2.domain_prunes, 1u);
    EXPECT_LT(on.phase2.expansion_ops, off.phase2.expansion_ops);
  }
}

TEST(Phase2FastPath, FilterIdentityOnGeneratedWorkloads) {
  // Property sweep over planted-instance soups: the prefilter never prunes
  // a candidate the census pass accepts, so counts and images are equal.
  cells::CellLibrary lib;
  for (const char* cell : {"nand2", "xor2", "tgate", "sram6t", "aoi21"}) {
    gen::Generated host = gen::logic_soup(80, 11);
    std::vector<NetId> pool;
    // 80-gate soups expose 18 primary inputs; 16 covers 4 copies of the
    // widest (4-port) cell in the sweep.
    for (int i = 0; i < 16; ++i) {
      pool.push_back(*host.netlist.find_net("pi" + std::to_string(i)));
    }
    Netlist pattern = lib.pattern(cell);
    gen::plant_instances(host.netlist, pattern, 4, pool, 0xFEED);

    const MatchReport off = run(pattern, host.netlist, Phase2Filter::kOff);
    const MatchReport on = run(pattern, host.netlist, Phase2Filter::kOn);
    expect_identical(off, on);
    EXPECT_GE(on.count(), 4u) << cell;
    for (const SubcircuitInstance& inst : on.instances) {
      EXPECT_TRUE(verify_instance(pattern, host.netlist, inst)) << cell;
    }
  }
}

TEST(Phase2FastPath, FilterIdentityUnderExhaustiveEnumeration) {
  // Exhaustive mode explores every guess branch, so it leans hardest on
  // trail undo correctness: a corrupted restore would change which branches
  // complete. Parallel-k pattern in a many-copy host.
  Cmos3 c;
  Netlist pattern = c.netlist("pair");
  NetId n1 = pattern.add_net("n1"), n2 = pattern.add_net("n2");
  NetId g = pattern.add_net("g");
  pattern.add_device(c.nmos, {n1, g, n2}, "A");
  pattern.add_device(c.nmos, {n1, g, n2}, "B");
  pattern.add_device(c.nmos, {n1, g, n2}, "C");
  pattern.mark_port(n1);
  pattern.mark_port(n2);
  pattern.mark_port(g);

  Netlist host = c.netlist("main");
  for (int copy = 0; copy < 3; ++copy) {
    const std::string p = "h" + std::to_string(copy);
    NetId h1 = host.add_net(p + "a"), h2 = host.add_net(p + "b");
    NetId hg = host.add_net(p + "g");
    for (int k = 0; k < 4; ++k) host.add_device(c.nmos, {h1, hg, h2});
  }

  const MatchReport off = run(pattern, host, Phase2Filter::kOff, CoreMode::kCsr, 1, true);
  const MatchReport on = run(pattern, host, Phase2Filter::kOn, CoreMode::kCsr, 1, true);
  expect_identical(off, on);
  // C(4,3) device sets per copy, three copies.
  EXPECT_EQ(on.count(), 12u);
  EXPECT_GE(on.phase2.trail_undos, 1u);
  // Sibling branches re-ask the same (pattern, host) compatibility
  // questions; the per-candidate memo must have answered some from cache.
  EXPECT_GE(on.phase2.nogood_hits + on.phase2.domain_prunes, 0u);
}

// --- the guess loop under a signature-immune workload -----------------------

TEST(Phase2FastPath, TwelveRingHostIsSignatureImmune) {
  // A 6-ring pattern against a 12-ring host: every host ring net has degree
  // 2 exactly like the pattern's internal nets, and every device signature
  // is compatible — the prefilter can see nothing wrong (zero prunes). The
  // refutation is structural: relabeling from the postulate wraps around
  // the 6-ring before the 12-ring, so the census finds a pattern-only label
  // and refutes without ever stalling. With the filter blind, every counter
  // must be identical in both modes — the parity half of the soundness
  // contract.
  Cmos3 c;
  Netlist pattern = ring_pattern(c, 6);
  Netlist host = c.netlist("main");
  add_ring(c, host, 12, "h");

  for (const CoreMode core : {CoreMode::kCsr, CoreMode::kLegacy}) {
    const MatchReport report = run(pattern, host, Phase2Filter::kOn, core);
    EXPECT_EQ(report.count(), 0u);
    EXPECT_EQ(report.phase2.domain_prunes, 0u);
    EXPECT_EQ(report.phase2.nogood_hits, 0u);
    EXPECT_TRUE(report.status.complete());
    const MatchReport off = run(pattern, host, Phase2Filter::kOff, core);
    EXPECT_EQ(off.count(), 0u);
    EXPECT_EQ(report.phase2.guesses, off.phase2.guesses);
    EXPECT_EQ(report.phase2.backtracks, off.phase2.backtracks);
    EXPECT_EQ(report.phase2.expansion_ops, off.phase2.expansion_ops);
    EXPECT_EQ(report.phase2.passes, off.phase2.passes);
  }
}

TEST(Phase2FastPath, NogoodMemoAnswersSiblingBranchesFromCache) {
  // Pattern: two parallel pairs sharing one gate. Refinement stalls on the
  // {A, B} pair first (smaller domain), and every sibling branch of that
  // guess re-stalls on {C, D} — whose domain contains a decoy `e` that is
  // label-equal (its dangling m4p never becomes safe, so it contributes
  // nothing to relabeling) but signature-dead (m4p has degree 1, the port
  // image needs >= 2). The first branch refutes `e` fresh (a domain prune);
  // exhaustive siblings must be answered from the per-candidate memo.
  Cmos3 c;
  Netlist pattern = c.netlist("dualpair");
  NetId n1 = pattern.add_net("n1"), n2 = pattern.add_net("n2");
  NetId n3 = pattern.add_net("n3"), n4 = pattern.add_net("n4");
  NetId gs = pattern.add_net("gs");
  pattern.add_device(c.nmos, {n1, gs, n2}, "A");
  pattern.add_device(c.nmos, {n1, gs, n2}, "B");
  pattern.add_device(c.nmos, {n3, gs, n4}, "C");
  pattern.add_device(c.nmos, {n3, gs, n4}, "D");
  for (NetId n : {n1, n2, n3, n4, gs}) pattern.mark_port(n);

  Netlist host = c.netlist("main");
  NetId m1 = host.add_net("m1"), m2 = host.add_net("m2");
  NetId m3 = host.add_net("m3"), m4 = host.add_net("m4");
  NetId m4p = host.add_net("m4p"), hg = host.add_net("hg");
  host.add_device(c.nmos, {m1, hg, m2}, "a");
  host.add_device(c.nmos, {m1, hg, m2}, "b");
  host.add_device(c.nmos, {m3, hg, m4}, "c");
  host.add_device(c.nmos, {m3, hg, m4}, "d");
  host.add_device(c.nmos, {m3, hg, m4p}, "e");

  for (const CoreMode core : {CoreMode::kCsr, CoreMode::kLegacy}) {
    const MatchReport on = run(pattern, host, Phase2Filter::kOn, core, 1, true);
    EXPECT_EQ(on.count(), 1u);
    EXPECT_GE(on.phase2.guesses, 1u);
    EXPECT_GE(on.phase2.backtracks, 1u);
    EXPECT_GE(on.phase2.trail_undos, 1u);
    EXPECT_GE(on.phase2.domain_prunes, 1u);
    EXPECT_GE(on.phase2.nogood_hits, 1u);
    EXPECT_TRUE(on.status.complete());
    // Soundness by identity: memo and filter change work, never results.
    const MatchReport off = run(pattern, host, Phase2Filter::kOff, core, 1, true);
    expect_identical(off, on);
  }
}

// --- enumerate() dedup semantics --------------------------------------------

TEST(Phase2FastPath, EnumerateKeepsExternalNetOrientations) {
  // A pass transistor is orientation-symmetric (d and s share the "sd"
  // terminal class): against one host transistor there are two mappings
  // that differ only in the external nets n1/n2. Phase II's enumerate()
  // dedups on the full (device, net) image, so BOTH survive; the
  // matcher-level exhaustive dedup collapses them to one instance per
  // device set (the Ullmann counting convention).
  Cmos3 c;
  Netlist pattern = c.netlist("pass");
  NetId n1 = pattern.add_net("n1"), n2 = pattern.add_net("n2");
  NetId g = pattern.add_net("g");
  pattern.add_device(c.nmos, {n1, g, n2}, "M");
  pattern.mark_port(n1);
  pattern.mark_port(n2);
  pattern.mark_port(g);

  Netlist host = c.netlist("main");
  NetId h1 = host.add_net("h1"), h2 = host.add_net("h2");
  NetId hg = host.add_net("hg");
  host.add_device(c.nmos, {h1, hg, h2}, "HM");
  // A second, differently-typed device so host != pattern trivially.
  NetId q1 = host.add_net("q1"), q2 = host.add_net("q2");
  NetId qg = host.add_net("qg");
  host.add_device(c.pmos, {q1, qg, q2}, "other");

  CircuitGraph pattern_graph(pattern);
  CircuitGraph host_graph(host);
  Phase2Verifier verifier(pattern_graph, host_graph, Phase2Options{});
  // Key: the pattern device vertex; candidate: its host image.
  const Vertex key = 0;
  ASSERT_TRUE(pattern_graph.is_device(key));
  const Vertex candidate = 0;
  ASSERT_TRUE(host_graph.is_device(candidate));
  std::vector<SubcircuitInstance> all =
      verifier.enumerate(key, candidate, 16);
  ASSERT_EQ(all.size(), 2u);
  EXPECT_EQ(all[0].device_image, all[1].device_image);
  EXPECT_NE(all[0].net_image, all[1].net_image);
  for (const SubcircuitInstance& inst : all) {
    EXPECT_TRUE(verify_instance(pattern, host, inst));
  }

  // Matcher-level exhaustive counting stays device-set based.
  const MatchReport ex =
      run(pattern, host, Phase2Filter::kOn, CoreMode::kCsr, 1, true);
  EXPECT_EQ(ex.count(), 1u);
}

// --- determinism across parallel lanes --------------------------------------

TEST(Phase2FastPath, JobsIdentityOnGuessHeavyWorkloads) {
  // The nogood memo is per-candidate, so lane assignment cannot change any
  // counter; reports must be identical at every --jobs value even on
  // workloads dominated by guessing.
  Cmos3 c;
  Netlist pattern = ring_pattern(c, 6);
  Netlist host = fat_ring_host(c);

  const MatchReport serial = run(pattern, host, Phase2Filter::kOn, CoreMode::kCsr, 1);
  const MatchReport parallel = run(pattern, host, Phase2Filter::kOn, CoreMode::kCsr, 8);
  expect_identical(serial, parallel);
  EXPECT_EQ(serial.phase2.domain_prunes, parallel.phase2.domain_prunes);
  EXPECT_EQ(serial.phase2.nogood_hits, parallel.phase2.nogood_hits);
  EXPECT_EQ(serial.phase2.trail_undos, parallel.phase2.trail_undos);
  EXPECT_EQ(serial.phase2.expansion_ops, parallel.phase2.expansion_ops);
  EXPECT_EQ(serial.phase2.guesses, parallel.phase2.guesses);
  EXPECT_EQ(serial.phase2.backtracks, parallel.phase2.backtracks);
}

}  // namespace
}  // namespace subg
