// Direct checks of the paper's two label invariants on real matches:
//
//   (1) Phase I:  if g = image(s) and s is valid (not corrupt), then
//                 label(g) == label(s)                            (§III)
//   (2) Phase II: if g = image(s) then label(g) == label(s) at every pass,
//                 and g and s are both safe or both suspect        (§IV)
#include <gtest/gtest.h>

#include <map>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "match/phase1.hpp"

namespace subg {
namespace {

struct Workload {
  const char* cell;
  int which;  // 0 = adder, 1 = sram, 2 = soup
};

class LabelInvariant1 : public ::testing::TestWithParam<Workload> {};

TEST_P(LabelInvariant1, ValidPatternVerticesShareLabelsWithImages) {
  const auto [cell, which] = GetParam();
  gen::Generated host = which == 0   ? gen::ripple_carry_adder(4)
                        : which == 1 ? gen::sram_array(4, 6)
                                     : gen::logic_soup(120, 31);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern(cell);

  MatchOptions opts;
  opts.phase1.keep_labels = true;
  SubgraphMatcher matcher(pattern, host.netlist, opts);
  MatchReport report = matcher.find_all();
  ASSERT_TRUE(report.phase1.feasible);
  ASSERT_FALSE(report.instances.empty());
  const CircuitGraph& sg = matcher.pattern_graph();
  const CircuitGraph& gg = matcher.host_graph();

  for (const SubcircuitInstance& inst : report.instances) {
    for (Vertex v = 0; v < sg.vertex_count(); ++v) {
      if (sg.is_special(v) || !report.phase1.pattern_valid[v]) continue;
      Vertex image;
      if (sg.is_device(v)) {
        image = gg.vertex_of(inst.device_image[sg.device_of(v).index()]);
      } else {
        image = gg.vertex_of(inst.net_image[sg.net_of(v).index()]);
      }
      EXPECT_EQ(report.phase1.pattern_labels[v],
                report.phase1.host_labels[image])
          << "invariant (1) broken at " << sg.vertex_name(v);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, LabelInvariant1,
    ::testing::Values(Workload{"fulladder", 0}, Workload{"xor2", 0},
                      Workload{"nand2", 0}, Workload{"sram6t", 1},
                      Workload{"inv", 1}, Workload{"aoi21", 2},
                      Workload{"mux2", 2}, Workload{"dff", 2}),
    [](const auto& info) {
      return std::string(info.param.cell) + "_w" +
             std::to_string(info.param.which);
    });

TEST(LabelInvariant2, ImagesShareLabelsAndSafetyEveryPass) {
  // Run the paper's worked-example-sized problem with a trace and check
  // that, for the successful candidate, every traced pass gives equal
  // labels and equal safety to each matched (s, image) pair.
  gen::Generated host = gen::ripple_carry_adder(2);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("xor2");

  Phase2Trace trace;
  MatchOptions opts;
  opts.trace = &trace;
  SubgraphMatcher matcher(pattern, host.netlist, opts);
  MatchReport report = matcher.find_all();
  ASSERT_GE(report.count(), 1u);
  const CircuitGraph& sg = matcher.pattern_graph();
  const CircuitGraph& gg = matcher.host_graph();

  // Map pattern vertex -> host vertex for the first instance.
  const SubcircuitInstance& inst = report.instances.front();
  std::map<Vertex, Vertex> image;
  for (Vertex v = 0; v < sg.vertex_count(); ++v) {
    if (sg.is_special(v)) continue;
    image[v] = sg.is_device(v)
                   ? gg.vertex_of(inst.device_image[sg.device_of(v).index()])
                   : gg.vertex_of(inst.net_image[sg.net_of(v).index()]);
  }

  // Collect per (candidate, pass): vertex -> (label, safe) on both sides.
  struct Snap {
    std::map<Vertex, std::pair<Label, bool>> s, g;
  };
  std::map<std::pair<std::size_t, std::size_t>, Snap> snaps;
  for (const auto& e : trace.entries) {
    Snap& snap = snaps[{e.candidate, e.pass}];
    auto& side = e.host ? snap.g : snap.s;
    side[e.vertex] = {e.label, e.safe || e.matched};
  }

  // Find candidates whose FINAL pass fully matches our instance's key
  // mapping; check invariant (2) on all of that candidate's passes.
  std::size_t checked = 0;
  for (const auto& [key, snap] : snaps) {
    // Candidate attempt matches if every traced s-vertex's image is traced
    // with the same label.
    bool belongs = true;
    for (const auto& [sv, info] : snap.s) {
      auto it = image.find(sv);
      if (it == image.end()) continue;
      auto git = snap.g.find(it->second);
      if (git == snap.g.end()) {
        belongs = false;
        break;
      }
    }
    if (!belongs) continue;
    // Tentatively treat this snapshot as "on the successful path" only if
    // labels agree for every traced pair — which is exactly invariant (2).
    // To avoid assuming what we test, anchor on the key vertex instead:
    Vertex key_vertex = report.phase1.key;
    auto sit = snap.s.find(key_vertex);
    auto git = snap.g.find(image[key_vertex]);
    if (sit == snap.s.end() || git == snap.g.end()) continue;
    if (sit->second.first != git->second.first) continue;  // other candidate
    for (const auto& [sv, info] : snap.s) {
      auto img = image.find(sv);
      if (img == image.end()) continue;
      auto g2 = snap.g.find(img->second);
      if (g2 == snap.g.end()) continue;  // image not yet considered
      EXPECT_EQ(info.first, g2->second.first)
          << "labels diverge at " << sg.vertex_name(sv) << " pass "
          << key.second;
      EXPECT_EQ(info.second, g2->second.second)
          << "safety diverges at " << sg.vertex_name(sv) << " pass "
          << key.second;
      ++checked;
    }
  }
  EXPECT_GT(checked, 20u);  // the invariant was actually exercised
}

}  // namespace
}  // namespace subg
