// Technology independence (paper §I): the matcher has no built-in notion
// of gates — analog idioms are just patterns too. Current mirrors,
// differential pairs and RC networks exercise device types beyond MOS
// logic (res/cap with fully interchangeable pins) and diode-connected
// transistors (two pins of one device on one net).
#include <gtest/gtest.h>

#include "match/matcher.hpp"

namespace subg {
namespace {

struct Analog {
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId pmos = cat->require("pmos");
  DeviceTypeId res = cat->require("res");
  DeviceTypeId cap = cat->require("cap");

  /// nmos current mirror: m1 diode-connected (gate = drain = iref),
  /// m2 mirrors onto iout; common source rail.
  void mirror(Netlist& nl, NetId iref, NetId iout, NetId rail) const {
    nl.add_device(nmos, {iref, iref, rail});
    nl.add_device(nmos, {iout, iref, rail});
  }

  /// Differential pair: two nmos with common source (tail), separate
  /// gates/drains.
  void diff_pair(Netlist& nl, NetId inp, NetId inn, NetId outp, NetId outn,
                 NetId tail) const {
    nl.add_device(nmos, {outp, inp, tail});
    nl.add_device(nmos, {outn, inn, tail});
  }
};

TEST(Analog, CurrentMirrorFound) {
  Analog a;
  Netlist pattern(a.cat, "mirror");
  NetId iref = pattern.add_net("iref"), iout = pattern.add_net("iout"),
        rail = pattern.add_net("rail");
  a.mirror(pattern, iref, iout, rail);
  for (NetId p : {iref, iout, rail}) pattern.mark_port(p);

  // Host: a five-transistor OTA — diff pair + nmos tail mirror + pmos load
  // mirror.
  Netlist host(a.cat, "ota");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  NetId inp = host.add_net("inp"), inn = host.add_net("inn");
  NetId out = host.add_net("out"), x = host.add_net("x"),
        tail = host.add_net("tail"), bias = host.add_net("bias");
  a.diff_pair(host, inp, inn, x, out, tail);
  // pmos load mirror (diode-connected on x).
  host.add_device(a.pmos, {x, x, vdd});
  host.add_device(a.pmos, {out, x, vdd});
  // nmos tail current mirror from bias.
  host.add_device(a.nmos, {bias, bias, gnd});
  host.add_device(a.nmos, {tail, bias, gnd});

  SubgraphMatcher matcher(pattern, host);
  MatchReport r = matcher.find_all();
  // The nmos tail mirror. (The diff pair shares tail but has no
  // diode-connected device; the pmos mirror is the wrong type.)
  ASSERT_EQ(r.count(), 1u);
  const SubcircuitInstance& inst = r.instances.front();
  EXPECT_EQ(host.net_name(inst.net_image[iref.index()]), "bias");
  EXPECT_EQ(host.net_name(inst.net_image[iout.index()]), "tail");
  EXPECT_EQ(host.net_name(inst.net_image[rail.index()]), "gnd");
}

TEST(Analog, PmosMirrorNeedsPmosPattern) {
  Analog a;
  Netlist pattern(a.cat, "pmirror");
  NetId iref = pattern.add_net("iref"), iout = pattern.add_net("iout"),
        rail = pattern.add_net("rail");
  pattern.add_device(a.pmos, {iref, iref, rail});
  pattern.add_device(a.pmos, {iout, iref, rail});
  for (NetId p : {iref, iout, rail}) pattern.mark_port(p);

  Netlist host(a.cat, "h");
  NetId vdd = host.add_net("vdd"), x = host.add_net("x"), y = host.add_net("y");
  host.add_device(a.pmos, {x, x, vdd});
  host.add_device(a.pmos, {y, x, vdd});
  NetId gnd = host.add_net("gnd"), p = host.add_net("p"), q = host.add_net("q");
  host.add_device(a.nmos, {p, p, gnd});
  host.add_device(a.nmos, {q, p, gnd});

  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 1u);
}

TEST(Analog, DiodeConnectedPinsMustStayDiodeConnected) {
  // The pattern's m1 has gate and drain on ONE net; a host pair where the
  // "diode" device's gate goes elsewhere must not match.
  Analog a;
  Netlist pattern(a.cat, "mirror");
  NetId iref = pattern.add_net("iref"), iout = pattern.add_net("iout"),
        rail = pattern.add_net("rail");
  a.mirror(pattern, iref, iout, rail);
  for (NetId p : {iref, iout, rail}) pattern.mark_port(p);

  Netlist host(a.cat, "h");
  NetId g = host.add_net("g"), d1 = host.add_net("d1"), d2 = host.add_net("d2"),
        s = host.add_net("s");
  // Two matched transistors sharing gate and source — but no diode tie.
  host.add_device(a.nmos, {d1, g, s});
  host.add_device(a.nmos, {d2, g, s});
  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 0u);
}

TEST(Analog, RcLowpassLadder) {
  Analog a;
  // Pattern: one RC stage — series res into a shunt cap.
  Netlist pattern(a.cat, "rc");
  NetId in = pattern.add_net("in"), out = pattern.add_net("out"),
        gnd = pattern.add_net("gnd");
  pattern.add_device(a.res, {in, out});
  pattern.add_device(a.cap, {out, gnd});
  pattern.mark_port(in);
  pattern.mark_port(out);
  pattern.mark_global(gnd);

  // Host: 4-stage ladder.
  Netlist host(a.cat, "ladder");
  NetId hgnd = host.add_net("gnd");
  host.mark_global(hgnd);
  NetId prev = host.add_net("n0");
  for (int i = 1; i <= 4; ++i) {
    NetId next = host.add_net("n" + std::to_string(i));
    host.add_device(a.res, {prev, next});
    host.add_device(a.cap, {next, hgnd});
    prev = next;
  }
  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 4u);
}

TEST(Analog, MixedSignalHostKeepsDomainsSeparate) {
  // Digital gates next to analog blocks: searching for the mirror must not
  // be confused by logic transistors.
  Analog a;
  Netlist host(a.cat, "mixed");
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  // Some inverters.
  for (int i = 0; i < 5; ++i) {
    NetId in = host.add_net("di" + std::to_string(i));
    NetId out = host.add_net("do" + std::to_string(i));
    host.add_device(a.pmos, {out, in, vdd});
    host.add_device(a.nmos, {out, in, gnd});
  }
  // One mirror.
  NetId bias = host.add_net("bias"), tail = host.add_net("tail");
  a.mirror(host, bias, tail, gnd);

  Netlist pattern(a.cat, "mirror");
  NetId iref = pattern.add_net("iref"), iout = pattern.add_net("iout");
  NetId rail = pattern.add_net("gnd");
  pattern.mark_global(rail);
  a.mirror(pattern, iref, iout, rail);
  pattern.mark_port(iref);
  pattern.mark_port(iout);

  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 1u);
}

}  // namespace
}  // namespace subg
