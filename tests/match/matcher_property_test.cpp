// Property-based matcher tests: plant known instances into random hosts and
// check completeness, soundness, and determinism (parameterized sweep).
#include <gtest/gtest.h>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "match/verify.hpp"

namespace subg {
namespace {

struct Params {
  const char* cell;
  std::size_t planted;
  std::uint64_t seed;
};

class PlantedInstances : public ::testing::TestWithParam<Params> {};

TEST_P(PlantedInstances, AllPlantedInstancesAreFound) {
  const Params p = GetParam();
  gen::Generated host = gen::logic_soup(80, p.seed);
  // Plant targets: primary inputs plus inter-gate wires (both are port
  // images of soup cells, so extra connections cannot break anything).
  std::vector<NetId> pool;
  for (int i = 0; i < 18; ++i) {
    pool.push_back(*host.netlist.find_net("pi" + std::to_string(i)));
  }
  for (int i = 0; i < 12; ++i) {
    pool.push_back(*host.netlist.find_net("w" + std::to_string(i)));
  }
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern(p.cell);
  gen::plant_instances(host.netlist, pattern, p.planted, pool, p.seed ^ 0xABCDEF);

  SubgraphMatcher matcher(pattern, host.netlist);
  MatchReport report = matcher.find_all();

  // Completeness: at least the planted copies plus whatever the soup
  // already contained.
  EXPECT_GE(report.count(), p.planted + host.placed_count(p.cell));

  // Soundness: every reported instance passes independent verification.
  for (const SubcircuitInstance& inst : report.instances) {
    EXPECT_TRUE(verify_instance(pattern, host.netlist, inst));
  }

  // Determinism: a second run reproduces the same result.
  SubgraphMatcher matcher2(pattern, host.netlist);
  MatchReport report2 = matcher2.find_all();
  ASSERT_EQ(report.count(), report2.count());
  for (std::size_t i = 0; i < report.count(); ++i) {
    EXPECT_EQ(report.instances[i].device_image,
              report2.instances[i].device_image);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, PlantedInstances,
    ::testing::Values(Params{"inv", 4, 1}, Params{"inv", 9, 2},
                      Params{"nand2", 5, 3}, Params{"nand3", 4, 4},
                      Params{"nor2", 6, 5}, Params{"aoi21", 3, 6},
                      Params{"xor2", 4, 7}, Params{"mux2", 3, 8},
                      Params{"dlatch", 3, 9}, Params{"dff", 2, 10},
                      Params{"fulladder", 2, 11}, Params{"sram6t", 8, 12},
                      Params{"tgate", 5, 13}, Params{"oai21", 4, 14},
                      Params{"xnor2", 3, 15}, Params{"aoi22", 3, 16},
                      Params{"nand4", 3, 17}, Params{"nor3", 4, 18}),
    [](const auto& info) {
      return std::string(info.param.cell) + "_x" +
             std::to_string(info.param.planted);
    });

TEST(MatcherInvariants, Phase1CandidateCountBoundsPhase2Work) {
  gen::Generated host = gen::ripple_carry_adder(6);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  SubgraphMatcher matcher(pattern, host.netlist);
  MatchReport report = matcher.find_all();
  EXPECT_EQ(report.count(), 6u);
  // One Phase II attempt per candidate, nothing more.
  EXPECT_EQ(report.phase2.candidates_tried, report.phase1.candidates.size());
  EXPECT_GE(report.phase1.candidates.size(), report.count());
}

TEST(MatcherInvariants, HostUntouchedByMatching) {
  gen::Generated host = gen::c17();
  const std::size_t devices = host.netlist.device_count();
  const std::size_t nets = host.netlist.net_count();
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");
  SubgraphMatcher matcher(pattern, host.netlist);
  (void)matcher.find_all();
  EXPECT_EQ(host.netlist.device_count(), devices);
  EXPECT_EQ(host.netlist.net_count(), nets);
  EXPECT_NO_THROW(host.netlist.validate());
}

}  // namespace
}  // namespace subg
