// The sharded-metrics determinism contract: counters that measure search
// work (not scheduling) merge to identical totals at every --jobs value,
// because shard merging is commutative addition and the candidate sweep does
// the same work regardless of lane count. Runs under the `concurrency` ctest
// label so the TSan CI job covers lanes recording into one registry.
#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "gtest/gtest.h"
#include "match/matcher.hpp"
#include "obs/metrics.hpp"

namespace subg {
namespace {

obs::Snapshot run_with_jobs(const Netlist& pattern, const Netlist& host,
                            std::size_t jobs, std::size_t* instances) {
  obs::Metrics metrics;
  MatchOptions options;
  options.jobs = jobs;
  options.metrics = &metrics;
  SubgraphMatcher matcher(pattern, host, options);
  MatchReport report = matcher.find_all();
  EXPECT_TRUE(report.status.complete());
  *instances = report.count();
  return metrics.collect();
}

TEST(MetricsJobs, DeterministicCountersIdenticalAcrossLaneCounts) {
  cells::CellLibrary lib;
  gen::Generated g = gen::array_multiplier(8);
  Netlist pattern = lib.pattern("fulladder");

  std::size_t serial_instances = 0;
  std::size_t parallel_instances = 0;
  obs::Snapshot serial = run_with_jobs(pattern, g.netlist, 1,
                                       &serial_instances);
  obs::Snapshot parallel = run_with_jobs(pattern, g.netlist, 8,
                                         &parallel_instances);
  EXPECT_EQ(serial_instances, parallel_instances);

  // Work counters: identical merged totals whether recorded by one thread
  // or by eight lanes into different shards.
  for (const char* name :
       {"phase1.rounds", "phase1.candidates", "phase2.seeds_tried",
        "phase2.seeds_matched", "phase2.passes", "phase2.bindings",
        "phase2.ambiguity_guesses", "phase2.backtracks", "match.instances"}) {
    EXPECT_EQ(serial.counter(name), parallel.counter(name))
        << "counter " << name << " diverged between jobs=1 and jobs=8";
  }

  // Timing quantities are scheduling-dependent; require sanity, not
  // equality: every gauge and span total must be finite and non-negative.
  for (const auto& [name, value] : parallel.gauges) {
    EXPECT_GE(value, 0.0) << "gauge " << name;
  }
  for (const auto& [name, span] : parallel.spans) {
    EXPECT_GT(span.count, 0u) << "span " << name;
    EXPECT_GE(span.seconds, 0.0) << "span " << name;
  }
}

}  // namespace
}  // namespace subg
