// Invariant-auditor exercise paths (ctest label: audit).
//
// The SUBG_AUDIT assertions in phase1/phase2/host_labels/matcher are
// compiled in only under -DSUBG_AUDIT=ON; this suite drives every
// instrumented code path so the audit build actually evaluates them:
// partition-refinement monotonicity and corrupt-neighbor propagation
// (phase1), candidate-vector/host-partition consistency (phase1),
// postulate/bind discipline and final-map injectivity (phase2), parallel
// vs serial label-sweep equivalence and rail-key stability (host_labels),
// and instance-shape/limit postconditions (matcher). In a normal build the
// macros are no-ops and this is an ordinary smoke suite — it must pass
// identically either way.
#include <gtest/gtest.h>

#include <string>

#include "cells/cells.hpp"
#include "gen/generators.hpp"
#include "match/matcher.hpp"
#include "test_circuits.hpp"
#include "util/check.hpp"

namespace subg {
namespace {

TEST(Audit, ModeIsReported) {
  // Not an assertion on the mode itself (both builds run this suite);
  // the record makes "which build ran?" visible in ctest logs.
  RecordProperty("audit_enabled", kAuditEnabled ? "true" : "false");
  SUCCEED();
}

// Every cell in the library against a soup host: covers phase1 refinement
// rounds (monotone valid set, corrupt-neighbor spread), candidate-vector
// selection, and phase2's full postulate/pass/guess/backtrack cycle.
class AuditCellSweep : public ::testing::TestWithParam<std::string> {};

TEST_P(AuditCellSweep, MatchRunsCleanUnderAudit) {
  gen::Generated host = gen::logic_soup(60, /*seed=*/0x5eed);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern(GetParam());
  SubgraphMatcher matcher(pattern, host.netlist);
  MatchReport report = matcher.find_all();
  EXPECT_GE(report.count(), host.placed_count(GetParam()));
  for (const SubcircuitInstance& inst : report.instances) {
    EXPECT_EQ(inst.device_image.size(), pattern.device_count());
    EXPECT_EQ(inst.net_image.size(), pattern.net_count());
  }
}

INSTANTIATE_TEST_SUITE_P(
    Cells, AuditCellSweep,
    ::testing::ValuesIn(cells::CellLibrary::all_cells()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

TEST(Audit, ParallelJobsMatchSerial) {
  // jobs>1 routes host relabeling through ThreadPool::parallel_for; under
  // audit every parallel sweep is re-run serially and compared
  // (host_labels.cpp), making this the label-cache stability proof.
  gen::Generated host = gen::logic_soup(120, /*seed=*/0xA0D17);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("nand2");

  MatchOptions serial;
  SubgraphMatcher m1(pattern, host.netlist, serial);
  MatchReport r1 = m1.find_all();

  MatchOptions parallel;
  parallel.jobs = 4;
  SubgraphMatcher m2(pattern, host.netlist, parallel);
  MatchReport r2 = m2.find_all();

  ASSERT_EQ(r1.count(), r2.count());
  for (std::size_t i = 0; i < r1.count(); ++i) {
    EXPECT_EQ(r1.instances[i].device_image, r2.instances[i].device_image);
  }
}

TEST(Audit, PlantedInstancesSurviveAudit) {
  // Dense hit path: many overlapping-candidate postulations and
  // backtracks, the heaviest load on the phase2 bind/release assertions.
  gen::Generated host = gen::logic_soup(80, /*seed=*/0xBEEF);
  std::vector<NetId> pool;
  for (int i = 0; i < 12; ++i) {
    pool.push_back(*host.netlist.find_net("pi" + std::to_string(i)));
  }
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("inv");
  const std::size_t planted =
      gen::plant_instances(host.netlist, pattern, 6, pool, 0xF00D);
  SubgraphMatcher matcher(pattern, host.netlist);
  EXPECT_GE(matcher.find_all().count(), planted + host.placed_count("inv"));
}

TEST(Audit, TrailUndoRestoresStateAcrossGuessBranches) {
  // A workload whose guess branches genuinely fail, so under SUBG_AUDIT=ON
  // every branch exit runs the trail-undo-vs-snapshot state comparison and
  // the live-bitset/slot-flag consistency sweep. A 6-ring pattern against a
  // host with a poisoned fat ring (extra transistor on one ring net) and a
  // clean one: fat-ring candidates far from the poison pass the signature
  // prefilter, stall on the ring's mirror symmetry, and both orientations
  // fail only after the guess — real backtracks. The filter is pinned to
  // kOn: the default path-label refuter would reject the fat ring before
  // the first guess, and this test exists to drive the trail machinery.
  test::Cmos3 c;
  Netlist pattern = c.netlist("ring_p");
  NetId gate = pattern.add_net("rgate");
  std::vector<NetId> nodes;
  for (int i = 0; i < 6; ++i) {
    nodes.push_back(pattern.add_net("r" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    pattern.add_device(c.nmos, {nodes[i], gate, nodes[(i + 1) % 6]});
  }
  pattern.mark_port(gate);

  Netlist host = c.netlist("main");
  NetId hgate = host.add_net("fgate");
  std::vector<NetId> hnodes;
  for (int i = 0; i < 6; ++i) {
    hnodes.push_back(host.add_net("f" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    host.add_device(c.nmos, {hnodes[i], hgate, hnodes[(i + 1) % 6]});
  }
  NetId qg = host.add_net("qg"), qd = host.add_net("qd");
  host.add_device(c.nmos, {hnodes[1], qg, qd});
  NetId cgate = host.add_net("cgate");
  std::vector<NetId> cnodes;
  for (int i = 0; i < 6; ++i) {
    cnodes.push_back(host.add_net("c" + std::to_string(i)));
  }
  for (int i = 0; i < 6; ++i) {
    host.add_device(c.nmos, {cnodes[i], cgate, cnodes[(i + 1) % 6]});
  }

  MatchOptions options;
  options.phase2_filter = Phase2Filter::kOn;
  SubgraphMatcher matcher(pattern, host, options);
  MatchReport report = matcher.find_all();
  EXPECT_EQ(report.count(), 1u);
  EXPECT_GE(report.phase2.backtracks, 1u);
  EXPECT_GE(report.phase2.trail_undos, 1u);
}

TEST(Audit, MatchLimitPostcondition) {
  // Exercises the matcher-level "sweep exceeded the match limit" audit.
  gen::Generated host = gen::logic_soup(60, /*seed=*/0xCAFE);
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("inv");
  MatchOptions opts;
  opts.max_matches = 1;
  SubgraphMatcher matcher(pattern, host.netlist, opts);
  EXPECT_LE(matcher.find_all().count(), 1u);
}

}  // namespace
}  // namespace subg
