// E4 — special signals (paper §IV.A, Fig 7).
//
// Without treating Vdd/GND as special, the CMOS inverter pattern is found
// inside every NAND gate: the p-pullup/n-stack pair driven by the same
// input looks exactly like an inverter whose "gnd" is the NAND's internal
// stack net. Declaring the rails global (matched by name) eliminates the
// spurious instances.
#include <gtest/gtest.h>

#include "match/matcher.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

/// Host: one real inverter plus one NAND2, sharing rails.
struct Fig7Host {
  Cmos3 c;
  Netlist nl = c.netlist("fig7");
  NetId vdd, gnd;

  explicit Fig7Host(bool global_rails) {
    vdd = nl.add_net("vdd");
    gnd = nl.add_net("gnd");
    if (global_rails) {
      nl.mark_global(vdd);
      nl.mark_global(gnd);
    }
    c.inv(nl, nl.add_net("ia"), nl.add_net("iy"), vdd, gnd);
    c.nand2(nl, nl.add_net("na"), nl.add_net("nb"), nl.add_net("ny"), vdd,
            gnd);
  }
};

TEST(SpecialSignals, InverterFoundInsideNandWithoutSpecials) {
  Cmos3 c;
  Netlist pattern = c.inv_pattern(/*global_rails=*/false);
  Fig7Host host(/*global_rails=*/false);
  SubgraphMatcher matcher(pattern, host.nl);
  MatchReport report = matcher.find_all();
  // The real inverter + the false one inside the NAND (pmos on input a
  // sharing drain with the top nmos of the stack).
  EXPECT_EQ(report.count(), 2u);
}

TEST(SpecialSignals, GlobalRailsEliminateFalseInstances) {
  Cmos3 c;
  Netlist pattern = c.inv_pattern(/*global_rails=*/true);
  Fig7Host host(/*global_rails=*/true);
  SubgraphMatcher matcher(pattern, host.nl);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  // And it is the real inverter: its output is "iy".
  const SubcircuitInstance& inst = report.instances.front();
  NetId y_img = inst.net_image[pattern.find_net("y")->index()];
  EXPECT_EQ(host.nl.net_name(y_img), "iy");
}

TEST(SpecialSignals, GlobalImagesResolvedByName) {
  Cmos3 c;
  Netlist pattern = c.inv_pattern(true);
  Fig7Host host(true);
  SubgraphMatcher matcher(pattern, host.nl);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  const SubcircuitInstance& inst = report.instances.front();
  EXPECT_EQ(inst.net_image[pattern.find_net("vdd")->index()], host.vdd);
  EXPECT_EQ(inst.net_image[pattern.find_net("gnd")->index()], host.gnd);
}

TEST(SpecialSignals, RailFanoutDoesNotEnterRefinement) {
  // Many inverters on the same rails: per-candidate Phase II work must not
  // scale with rail fanout. We can't measure time here, but we can check
  // the pass count stays flat as fanout grows.
  Cmos3 c;
  auto passes_for = [&](int fanout) {
    Netlist host = c.netlist();
    NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
    host.mark_global(vdd);
    host.mark_global(gnd);
    for (int i = 0; i < fanout; ++i) {
      c.inv(host, host.add_net("a" + std::to_string(i)),
            host.add_net("y" + std::to_string(i)), vdd, gnd);
    }
    Netlist pattern = c.inv_pattern(true);
    SubgraphMatcher matcher(pattern, host);
    MatchReport report = matcher.find_all();
    EXPECT_EQ(report.count(), static_cast<std::size_t>(fanout));
    // Normalize by candidate count.
    return static_cast<double>(report.phase2.passes) /
           static_cast<double>(report.phase2.candidates_tried);
  };
  double small = passes_for(4);
  double large = passes_for(64);
  EXPECT_LE(large, small * 2.0);
}

TEST(SpecialSignals, SpecialnessIsPatternDriven) {
  // A host-declared global the pattern does not name is an ordinary net for
  // that match: a pattern with vdd/gnd as plain ports still finds the real
  // inverter (and the false one inside the NAND) in a host with global
  // rails.
  Cmos3 c;
  Netlist pattern = c.inv_pattern(/*global_rails=*/false);
  Fig7Host host(/*global_rails=*/true);
  SubgraphMatcher matcher(pattern, host.nl);
  EXPECT_EQ(matcher.find_all().count(), 2u);
}

TEST(SpecialSignals, HostRailNeedNotBeMarkedGlobal) {
  // Pattern globals resolve to same-named host nets by name alone.
  Cmos3 c;
  Netlist pattern = c.inv_pattern(/*global_rails=*/true);
  Fig7Host host(/*global_rails=*/false);  // host rails named vdd/gnd, unmarked
  SubgraphMatcher matcher(pattern, host.nl);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u);
  NetId y_img =
      report.instances.front().net_image[pattern.find_net("y")->index()];
  EXPECT_EQ(host.nl.net_name(y_img), "iy");
}

TEST(SpecialSignals, UnusedPatternGlobalPlacesNoConstraint) {
  // A pattern that declares a global it never connects (e.g. a library-wide
  // rail list) must still match hosts lacking that net.
  Cmos3 c;
  Netlist pattern = c.netlist("pair");
  NetId n1 = pattern.add_net("n1"), n2 = pattern.add_net("n2"),
        g = pattern.add_net("g");
  NetId unused = pattern.add_net("vsub");
  pattern.mark_global(unused);
  pattern.add_device(c.nmos, {n1, g, n2});
  for (NetId p : {n1, n2, g}) pattern.mark_port(p);

  Netlist host = c.netlist();
  NetId a = host.add_net("a"), b = host.add_net("b"), hg = host.add_net("hg");
  host.add_device(c.nmos, {a, hg, b});
  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 1u);
}

TEST(SpecialSignals, GlobalOnlyInPatternSideNamedDifferentlyFails) {
  // Pattern rail "vcc" has no same-named host global → zero instances.
  Cmos3 c;
  Netlist pattern = c.netlist("inv");
  NetId a = pattern.add_net("a"), y = pattern.add_net("y");
  NetId vcc = pattern.add_net("vcc"), gnd = pattern.add_net("gnd");
  c.inv(pattern, a, y, vcc, gnd);
  pattern.mark_port(a);
  pattern.mark_port(y);
  pattern.mark_global(vcc);
  pattern.mark_global(gnd);

  Fig7Host host(true);
  SubgraphMatcher matcher(pattern, host.nl);
  EXPECT_EQ(matcher.find_all().count(), 0u);
}

}  // namespace
}  // namespace subg
