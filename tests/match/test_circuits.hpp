// Shared hand-built circuits for the matcher tests.
//
// Gates here use the 3-pin MOS catalog (d,g,s — no bulk), matching the
// paper's figures: with 4-pin transistors the bulk rail connection already
// disambiguates Vdd/GND and the Fig 7 inverter-in-NAND phenomenon cannot
// occur.
#pragma once

#include <memory>

#include "netlist/netlist.hpp"

namespace subg::test {

struct Cmos3 {
  std::shared_ptr<const DeviceCatalog> cat = DeviceCatalog::cmos3();
  DeviceTypeId nmos = cat->require("nmos");
  DeviceTypeId pmos = cat->require("pmos");

  [[nodiscard]] Netlist netlist(std::string name = "") const {
    return Netlist(cat, std::move(name));
  }

  void inv(Netlist& nl, NetId a, NetId y, NetId vdd, NetId gnd) const {
    nl.add_device(pmos, {y, a, vdd});
    nl.add_device(nmos, {y, a, gnd});
  }

  void nand2(Netlist& nl, NetId a, NetId b, NetId y, NetId vdd,
             NetId gnd) const {
    nl.add_device(pmos, {y, a, vdd});
    nl.add_device(pmos, {y, b, vdd});
    NetId x = nl.add_net();
    nl.add_device(nmos, {y, a, x});
    nl.add_device(nmos, {x, b, gnd});
  }

  void nor2(Netlist& nl, NetId a, NetId b, NetId y, NetId vdd,
            NetId gnd) const {
    NetId u = nl.add_net();
    nl.add_device(pmos, {u, a, vdd});
    nl.add_device(pmos, {y, b, u});
    nl.add_device(nmos, {y, a, gnd});
    nl.add_device(nmos, {y, b, gnd});
  }

  /// Inverter pattern; rails global when `global_rails`.
  [[nodiscard]] Netlist inv_pattern(bool global_rails) const {
    Netlist nl = netlist("inv");
    NetId a = nl.add_net("a"), y = nl.add_net("y");
    NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd");
    inv(nl, a, y, vdd, gnd);
    nl.mark_port(a);
    nl.mark_port(y);
    if (global_rails) {
      nl.mark_global(vdd);
      nl.mark_global(gnd);
    } else {
      nl.mark_port(vdd);
      nl.mark_port(gnd);
    }
    return nl;
  }

  /// NAND2 pattern — the paper's Fig 1 subgraph S when `global_rails` is
  /// false (vdd/gnd are plain external nets there).
  [[nodiscard]] Netlist nand2_pattern(bool global_rails) const {
    Netlist nl = netlist("nand2");
    NetId a = nl.add_net("a"), b = nl.add_net("b"), y = nl.add_net("y");
    NetId vdd = nl.add_net("vdd"), gnd = nl.add_net("gnd");
    nand2(nl, a, b, y, vdd, gnd);
    nl.mark_port(a);
    nl.mark_port(b);
    nl.mark_port(y);
    if (global_rails) {
      nl.mark_global(vdd);
      nl.mark_global(gnd);
    } else {
      nl.mark_port(vdd);
      nl.mark_port(gnd);
    }
    return nl;
  }
};

}  // namespace subg::test
