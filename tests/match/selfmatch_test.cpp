// Self-match sweep: every library cell, used both as pattern and host, is
// found exactly once, covering every device — across the whole cell
// library (parameterized). A basic completeness/soundness floor for the
// matcher on every structure we ship (series stacks, parallel networks,
// pass gates, cross-coupled feedback loops, composed cells).
#include <gtest/gtest.h>

#include <set>

#include "baseline/baseline.hpp"
#include "cells/cells.hpp"
#include "match/matcher.hpp"
#include "match/verify.hpp"

namespace subg {
namespace {

class SelfMatch : public ::testing::TestWithParam<std::string> {};

TEST_P(SelfMatch, CellFoundExactlyOnceInItself) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern(GetParam());
  Netlist host = lib.pattern(GetParam());

  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 1u) << GetParam();

  std::set<std::uint32_t> devices;
  for (DeviceId d : report.instances.front().device_image) {
    devices.insert(d.value);
  }
  EXPECT_EQ(devices.size(), host.device_count()) << GetParam();
  // Sound by construction, but double-check with the independent verifier.
  EXPECT_TRUE(verify_instance(pattern, host, report.instances.front()));
}

TEST_P(SelfMatch, UllmannAgrees) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern(GetParam());
  Netlist host = lib.pattern(GetParam());
  BaselineResult r = match_ullmann(pattern, host);
  EXPECT_EQ(r.count(), 1u) << GetParam();
}

TEST_P(SelfMatch, TwoDisjointCopiesFoundTwice) {
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern(GetParam());

  // Host: two copies side by side (fresh nets per copy, shared rails).
  Netlist host(pattern.catalog_ptr(), "two");
  for (int copy = 0; copy < 2; ++copy) {
    const std::string prefix = "c" + std::to_string(copy) + "_";
    std::vector<NetId> remap(pattern.net_count());
    for (std::uint32_t n = 0; n < pattern.net_count(); ++n) {
      const NetId id(n);
      if (pattern.is_global(id)) {
        remap[n] = host.ensure_net(pattern.net_name(id));
        host.mark_global(remap[n]);
      } else {
        remap[n] = host.add_net(prefix + pattern.net_name(id));
      }
    }
    std::vector<NetId> pins;
    for (std::uint32_t d = 0; d < pattern.device_count(); ++d) {
      const DeviceId id(d);
      pins.clear();
      for (NetId pn : pattern.device_pins(id)) pins.push_back(remap[pn.index()]);
      host.add_device(pattern.device_type(id), pins);
    }
  }

  SubgraphMatcher matcher(pattern, host);
  EXPECT_EQ(matcher.find_all().count(), 2u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllCells, SelfMatch,
    ::testing::ValuesIn(cells::CellLibrary::all_cells()),
    [](const auto& info) { return info.param; });

}  // namespace
}  // namespace subg
