// Phase I generic properties (beyond the paper's worked example).
#include <gtest/gtest.h>

#include <algorithm>

#include "cells/cells.hpp"
#include "match/matcher.hpp"
#include "match/phase1.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

TEST(Phase1, CandidateVectorContainsEveryKeyImage) {
  // Completeness (Label Invariant 1): the image of the key vertex in every
  // true instance must appear in the candidate vector.
  Cmos3 c;
  Netlist host = c.netlist();
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  host.mark_global(vdd);
  host.mark_global(gnd);
  NetId prev = host.add_net("pi");
  for (int i = 0; i < 6; ++i) {
    NetId b = host.add_net("b" + std::to_string(i));
    NetId y = host.add_net("y" + std::to_string(i));
    c.nand2(host, prev, b, y, vdd, gnd);
    prev = y;
  }
  Netlist pattern = c.nand2_pattern(true);
  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  ASSERT_EQ(report.count(), 6u);

  const CircuitGraph& sg = matcher.pattern_graph();
  const CircuitGraph& gg = matcher.host_graph();
  for (const SubcircuitInstance& inst : report.instances) {
    Vertex key_image;
    if (report.phase1.key_is_device) {
      key_image = gg.vertex_of(inst.device_image[sg.device_of(report.phase1.key).index()]);
    } else {
      key_image = gg.vertex_of(inst.net_image[sg.net_of(report.phase1.key).index()]);
    }
    EXPECT_TRUE(std::find(report.phase1.candidates.begin(),
                          report.phase1.candidates.end(),
                          key_image) != report.phase1.candidates.end());
  }
}

TEST(Phase1, RoundsBoundedByPatternRadius) {
  // Corruption spreads one ring per round from the ports, so the loop ends
  // after O(pattern diameter) rounds regardless of host size.
  cells::CellLibrary lib;
  Netlist pattern = lib.pattern("fulladder");
  Netlist host = lib.pattern("fulladder");  // host == pattern is fine
  CircuitGraph sg(pattern), gg(host);
  Phase1Result r = run_phase1(sg, gg);
  ASSERT_TRUE(r.feasible);
  EXPECT_LE(r.rounds, 2 * (pattern.device_count() + pattern.net_count()));
  EXPECT_GE(r.rounds, 1u);
}

TEST(Phase1, SingleDevicePatternCandidatesAreAllSameTypeDevices) {
  Cmos3 c;
  Netlist pattern = c.netlist();
  NetId a = pattern.add_net("a"), y = pattern.add_net("y"),
        g = pattern.add_net("g");
  pattern.add_device(c.nmos, {y, a, g});
  for (NetId p : {a, y, g}) pattern.mark_port(p);

  Netlist host = c.netlist();
  NetId vdd = host.add_net("vdd"), gnd = host.add_net("gnd");
  c.inv(host, host.add_net("ia"), host.add_net("iy"), vdd, gnd);
  c.nand2(host, host.add_net("na"), host.add_net("nb"), host.add_net("ny"),
          vdd, gnd);

  CircuitGraph sg(pattern), gg(host);
  Phase1Result r = run_phase1(sg, gg);
  ASSERT_TRUE(r.feasible);
  EXPECT_TRUE(r.key_is_device);
  // 1 inverter nmos + 2 NAND nmos.
  EXPECT_EQ(r.candidates.size(), 3u);
  for (Vertex v : r.candidates) {
    ASSERT_TRUE(gg.is_device(v));
    EXPECT_EQ(host.device_type_info(gg.device_of(v)).name, "nmos");
  }
}

TEST(Phase1, InterchangeablePinDevicesPartitionTogether) {
  // Resistor dividers: both pins are in one equivalence class, so a
  // resistor seen "backwards" must still be a candidate.
  auto cat = DeviceCatalog::cmos3();
  DeviceTypeId res = cat->require("res");
  Netlist pattern(cat);
  NetId top = pattern.add_net("top"), mid = pattern.add_net("mid"),
        bot = pattern.add_net("bot");
  pattern.add_device(res, {top, mid});
  pattern.add_device(res, {mid, bot});
  pattern.mark_port(top);
  pattern.mark_port(bot);

  Netlist host(cat);
  NetId a = host.add_net("a"), m1 = host.add_net("m1"), b = host.add_net("b");
  host.add_device(res, {a, m1});
  host.add_device(res, {b, m1});  // second resistor flipped
  NetId x = host.add_net("x"), y = host.add_net("y");
  host.add_device(res, {x, y});  // unrelated single resistor

  SubgraphMatcher matcher(pattern, host);
  MatchReport report = matcher.find_all();
  EXPECT_EQ(report.count(), 1u);
}

TEST(Phase1, HostSmallerThanPatternInfeasible) {
  Cmos3 c;
  Netlist pattern = c.nand2_pattern(false);
  Netlist host = c.netlist();
  NetId a = host.add_net("a"), y = host.add_net("y"), g = host.add_net("g");
  host.add_device(c.nmos, {y, a, g});
  CircuitGraph sg(pattern), gg(host);
  Phase1Result r = run_phase1(sg, gg);
  EXPECT_FALSE(r.feasible);
}

TEST(Phase1, PossibleHostCountShrinksWithStructure) {
  // The more structure the pattern retains (more internal nets), the more
  // host vertices consistency checks can discard.
  cells::CellLibrary lib;
  Netlist host = lib.pattern("fulladder");
  Netlist weak = lib.pattern("inv");    // no internal nets at all
  Netlist strong = lib.pattern("xor2"); // several internal nets
  CircuitGraph gg(host), wg(weak), sg(strong);
  Phase1Result rw = run_phase1(wg, gg);
  Phase1Result rs = run_phase1(sg, gg);
  ASSERT_TRUE(rw.feasible);
  ASSERT_TRUE(rs.feasible);
  EXPECT_LE(rs.possible_host_vertices, rw.possible_host_vertices);
}

}  // namespace
}  // namespace subg
