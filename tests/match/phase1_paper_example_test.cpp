// E1 — the paper's worked example, Phase I (Figs 1, 2, 4).
//
// The subgraph S is a 2-input NAND (3-pin transistors, rails as ordinary
// external nets): devices D1,D2 (pmos, parallel between vdd and out) and
// D3,D4 (nmos, series from out through internal net N4 to gnd). All nets
// except N4 are external. Phase I must (a) corrupt outward from the
// external nets, (b) end with the internal net N4 as the only valid net —
// the key vertex — and (c) return a candidate vector containing exactly
// the host nets that look like an N4: degree-2 nets joining two nmos
// source/drain terminals.
#include <gtest/gtest.h>

#include <algorithm>

#include "match/phase1.hpp"
#include "test_circuits.hpp"

namespace subg {
namespace {

using test::Cmos3;

/// Host: one NAND2 instance plus surrounding devices, including a decoy
/// series-nmos pair whose middle net looks exactly like N4 to Phase I
/// (the paper's CV = {N13, N14} has one true and potentially false hits).
struct PaperHost {
  Cmos3 c;
  Netlist nl = c.netlist("main");
  NetId vdd, gnd, in1, in2, out, decoy_mid;

  PaperHost() {
    vdd = nl.add_net("vdd");
    gnd = nl.add_net("gnd");
    in1 = nl.add_net("in1");
    in2 = nl.add_net("in2");
    out = nl.add_net("out");
    c.nand2(nl, in1, in2, out, vdd, gnd);
    // Inverter driving in1 from some primary input.
    NetId pi = nl.add_net("pi");
    c.inv(nl, pi, in1, vdd, gnd);
    // Decoy: two series nmos pass transistors; their middle net has the
    // same initial shape as the NAND's internal net.
    NetId da = nl.add_net("da"), db = nl.add_net("db"), dg1 = nl.add_net("dg1"),
          dg2 = nl.add_net("dg2");
    decoy_mid = nl.add_net("decoy_mid");
    nl.add_device(c.nmos, {da, dg1, decoy_mid});
    nl.add_device(c.nmos, {decoy_mid, dg2, db});
    // Load on the output.
    c.inv(nl, out, nl.add_net("out_inv"), vdd, gnd);
  }
};

TEST(Phase1PaperExample, KeyVertexIsInternalNet) {
  Cmos3 c;
  Netlist pattern = c.nand2_pattern(/*global_rails=*/false);
  PaperHost host;
  CircuitGraph sg(pattern), gg(host.nl);

  Phase1Result r = run_phase1(sg, gg);
  ASSERT_TRUE(r.feasible);
  // The only net of S with no external connection is the series-stack
  // midpoint (named "$n0" by Cmos3::nand2 — the only non-port net).
  EXPECT_FALSE(r.key_is_device);
  ASSERT_TRUE(sg.is_net(r.key));
  NetId key_net = sg.net_of(r.key);
  EXPECT_FALSE(pattern.is_port(key_net));
  // It is the unique valid vertex left.
  EXPECT_EQ(r.valid_pattern_vertices, 1u);
}

TEST(Phase1PaperExample, CandidateVectorIsTrueInstancePlusDecoy) {
  Cmos3 c;
  Netlist pattern = c.nand2_pattern(false);
  PaperHost host;
  CircuitGraph sg(pattern), gg(host.nl);

  Phase1Result r = run_phase1(sg, gg);
  ASSERT_TRUE(r.feasible);
  // CV must contain the true internal net of the host NAND2 (added by
  // Cmos3::nand2 as an auto-named net of degree 2) and the decoy midpoint.
  std::vector<std::string> names;
  for (Vertex v : r.candidates) {
    ASSERT_TRUE(gg.is_net(v));
    names.push_back(host.nl.net_name(gg.net_of(v)));
  }
  EXPECT_EQ(names.size(), 2u);
  EXPECT_TRUE(std::find(names.begin(), names.end(), "decoy_mid") != names.end());
}

TEST(Phase1PaperExample, CorruptionStopsAfterDeviceRound) {
  // Round 1 relabels nets (only N4 stays valid); round 2 corrupts every
  // device (each touches an external net), ending the loop.
  Cmos3 c;
  Netlist pattern = c.nand2_pattern(false);
  PaperHost host;
  CircuitGraph sg(pattern), gg(host.nl);
  Phase1Result r = run_phase1(sg, gg);
  EXPECT_EQ(r.rounds, 2u);
}

TEST(Phase1PaperExample, ConsistencyPrunesHostVertices) {
  Cmos3 c;
  Netlist pattern = c.nand2_pattern(false);
  PaperHost host;
  CircuitGraph sg(pattern), gg(host.nl);
  Phase1Result r = run_phase1(sg, gg);
  // Far fewer host vertices remain possible than exist (Fig 4's "-" marks).
  EXPECT_LT(r.possible_host_vertices, gg.vertex_count());
  EXPECT_GE(r.possible_host_vertices, r.candidates.size());
}

TEST(Phase1PaperExample, GlobalRailsDoNotCorruptLabels) {
  // Marking vdd/gnd global must not change feasibility: rails are valid
  // forever instead of corrupt, and the internal net's one-ring shape is
  // identical, so the CV is still {true instance, decoy}.
  Cmos3 c;
  Netlist pattern = c.nand2_pattern(/*global_rails=*/true);
  PaperHost host;
  host.nl.mark_global(host.vdd);
  host.nl.mark_global(host.gnd);
  CircuitGraph sg(pattern), gg(host.nl);
  Phase1Result r = run_phase1(sg, gg);
  ASSERT_TRUE(r.feasible);
  EXPECT_EQ(r.candidates.size(), 2u);
}

TEST(Phase1PaperExample, AbsentPatternIsInfeasible) {
  // A NOR2 pattern has an internal net joining two pmos source/drains;
  // the host has no such net, so the consistency check proves infeasibility
  // without any Phase II work.
  Cmos3 c;
  Netlist pattern = c.netlist("nor2");
  NetId a = pattern.add_net("a"), b = pattern.add_net("b"),
        y = pattern.add_net("y"), vdd = pattern.add_net("vdd"),
        gnd = pattern.add_net("gnd");
  c.nor2(pattern, a, b, y, vdd, gnd);
  for (NetId port : {a, b, y, vdd, gnd}) pattern.mark_port(port);

  PaperHost host;
  CircuitGraph sg(pattern), gg(host.nl);
  Phase1Result r = run_phase1(sg, gg);
  EXPECT_FALSE(r.feasible);
  EXPECT_TRUE(r.candidates.empty());
}

}  // namespace
}  // namespace subg
